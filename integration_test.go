// Integration tests: full pipelines across module boundaries — geometry →
// decomposition → distributed solve → post-processing → checkpoint →
// restart, and the Sunway-simulated engine inside a realistic case. These
// are the "downstream user" workflows the framework exists for (Fig. 4).
package sunwaylb_test

import (
	"bytes"
	"math"
	"os"
	"testing"

	"sunwaylb/internal/boundary"
	"sunwaylb/internal/config"
	"sunwaylb/internal/core"
	"sunwaylb/internal/geometry"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/psolve"
	"sunwaylb/internal/sunway"
	"sunwaylb/internal/swio"
	"sunwaylb/internal/swlb"
	"sunwaylb/internal/vis"
)

// TestPipelineSTLToDistributedSolve: an STL body is voxelized, solved
// across 6 simulated MPI ranks with inlet/outlet boundary conditions, and
// the result matches the single-rank run bit for bit; the wake it leaves
// is physically sensible.
func TestPipelineSTLToDistributedSolve(t *testing.T) {
	// Build an STL box obstacle in memory (CAD-path stand-in).
	box := geometry.BoxMesh(geometry.AABB{
		Min: geometry.Vec3{X: 10, Y: 8, Z: 2},
		Max: geometry.Vec3{X: 16, Y: 16, Z: 8},
	})
	var stl bytes.Buffer
	if err := box.WriteBinarySTL(&stl); err != nil {
		t.Fatal(err)
	}
	mesh, err := geometry.ReadSTL(&stl)
	if err != nil {
		t.Fatal(err)
	}
	const nx, ny, nz = 36, 24, 10
	mask := geometry.Voxelize(mesh, geometry.VoxelGrid{NX: nx, NY: ny, NZ: nz, H: 1})
	walls := func(x, y, z int) bool { return mask[(y*nx+x)*nz+z] }

	opts := psolve.Options{
		GNX: nx, GNY: ny, GNZ: nz,
		Tau: 0.7,
		FaceBC: map[core.Face]boundary.Condition{
			core.FaceXMin: &boundary.VelocityInlet{Face: core.FaceXMin, U: [3]float64{0.04, 0, 0}},
			core.FaceXMax: &boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
		},
		PeriodicY: true, PeriodicZ: true,
		Walls:    walls,
		Init:     func(x, y, z int) (float64, float64, float64, float64) { return 1, 0.04, 0, 0 },
		OnTheFly: true,
	}
	run := func(px, py int) *core.MacroField {
		o := opts
		o.PX, o.PY = px, py
		m, err := psolve.Run(o, 60)
		if err != nil {
			t.Fatalf("%dx%d: %v", px, py, err)
		}
		return m
	}
	serial := run(1, 1)
	par := run(3, 2)
	for i := range serial.Rho {
		if serial.Rho[i] != par.Rho[i] || serial.Ux[i] != par.Ux[i] {
			t.Fatalf("distributed STL case diverged from serial at %d", i)
		}
	}
	// Physics: the wake behind the box is slower than the free stream
	// beside it.
	wake := serial.Ux[serial.Idx(20, 12, 5)]
	free := serial.Ux[serial.Idx(20, 2, 5)]
	if wake >= free {
		t.Errorf("wake (%v) should lag free stream (%v)", wake, free)
	}
	// Post-processing runs off the gathered field.
	q := vis.QCriterion(serial)
	if len(q) != nx*ny*nz {
		t.Fatal("Q-criterion size mismatch")
	}
	var img bytes.Buffer
	if err := vis.WritePPM(&img, vis.SpeedSlice(serial, vis.AxisZ, nz/2), 0, 0); err != nil {
		t.Fatal(err)
	}
	if img.Len() == 0 {
		t.Fatal("empty PPM")
	}
}

// TestPipelineCheckpointRestartContinuation: interrupting a run with a
// checkpoint + restore yields exactly the same trajectory as running
// straight through.
func TestPipelineCheckpointRestartContinuation(t *testing.T) {
	build := func() (*core.Lattice, *boundary.Set) {
		l, err := core.NewLattice(&lattice.D3Q19, 20, 12, 8, 0.65)
		if err != nil {
			t.Fatal(err)
		}
		l.Smagorinsky = 0.17
		cyl := geometry.CylinderZ{CX: 6, CY: 6, Radius: 2.5, ZMin: -1, ZMax: 9}
		if err := geometry.VoxelizeInto(l, cyl, geometry.VoxelGrid{NX: 20, NY: 12, NZ: 8, H: 1}); err != nil {
			t.Fatal(err)
		}
		var s boundary.Set
		s.Add(
			&boundary.Periodic{Axis: 2},
			&boundary.FreeSlip{Face: core.FaceYMin}, &boundary.FreeSlip{Face: core.FaceYMax},
			&boundary.NEEInlet{Face: core.FaceXMin, U: [3]float64{0.05, 0, 0}},
			&boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
		)
		return l, &s
	}
	// Straight-through run: 40 steps.
	ref, refBC := build()
	for s := 0; s < 40; s++ {
		refBC.Apply(ref)
		ref.StepFused()
	}
	// Interrupted run: 25 steps, checkpoint, restore, 15 more.
	l1, bc1 := build()
	for s := 0; s < 25; s++ {
		bc1.Apply(l1)
		l1.StepFused()
	}
	var cp bytes.Buffer
	if err := swio.WriteCheckpoint(&cp, l1); err != nil {
		t.Fatal(err)
	}
	l2, err := swio.ReadCheckpoint(bytes.NewReader(cp.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if l2.Step() != 25 {
		t.Fatalf("restored step = %d", l2.Step())
	}
	_, bc2 := build()
	for s := 0; s < 15; s++ {
		bc2.Apply(l2)
		l2.StepFused()
	}
	fa, fb := ref.Src(), l2.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("restarted trajectory diverged at %d", i)
		}
	}
}

// TestPipelineSunwayEngineCase: a full case (city geometry + LES + wind
// BCs) stepped through the simulated Sunway core group is bit-identical to
// the reference kernel and produces a positive simulated GLUPS figure.
func TestPipelineSunwayEngineCase(t *testing.T) {
	build := func() (*core.Lattice, *boundary.Set) {
		l, err := core.NewLattice(&lattice.D3Q19, 16, 24, 12, 0.58)
		if err != nil {
			t.Fatal(err)
		}
		l.Smagorinsky = 0.17
		p := geometry.DefaultUrbanParams()
		p.SizeX, p.SizeY = 16, 24
		p.BlocksX, p.BlocksY = 2, 3
		p.MinHeight, p.MaxHeight = 3, 8
		if err := geometry.VoxelizeInto(l, geometry.City(p),
			geometry.VoxelGrid{NX: 16, NY: 24, NZ: 12, H: 1}); err != nil {
			t.Fatal(err)
		}
		var s boundary.Set
		s.Add(
			&boundary.Periodic{Axis: 1},
			&boundary.VelocityInlet{Face: core.FaceXMin, U: [3]float64{0.04, 0, 0}},
			&boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
			&boundary.FreeSlip{Face: core.FaceZMax},
			&boundary.NoSlip{Face: core.FaceZMin},
		)
		return l, &s
	}
	ref, refBC := build()
	lat, bcs := build()
	// Boundary conditions must be applied once before engine
	// construction so the column partition sees the wall flags.
	refBC.Apply(ref)
	bcs.Apply(lat)
	eng, err := swlb.New(lat, sunway.TestChip(8, 64*1024),
		swlb.Options{UseCPEs: true, Fused: true, YSharing: true, ComputeEff: 0.5, BZ: 12})
	if err != nil {
		t.Fatal(err)
	}
	var simT float64
	for s := 0; s < 10; s++ {
		refBC.Apply(ref)
		ref.StepFused()
		bcs.Apply(lat)
		simT = eng.Step()
	}
	fa, fb := ref.Src(), lat.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("Sunway engine diverged from reference at %d", i)
		}
	}
	if simT <= 0 {
		t.Error("simulated step time must be positive")
	}
	if eng.MixedColumns() == 0 {
		t.Error("city case must exercise the MPE collaboration path")
	}
}

// TestPipelineCaseConfigRoundTrip: a JSON case drives a run end to end.
func TestPipelineCaseConfigRoundTrip(t *testing.T) {
	js := `{"name":"itest","nx":12,"ny":10,"nz":8,"re":80,"u":0.05,"l":8,"steps":20}`
	c, err := config.Read(bytes.NewReader([]byte(js)))
	if err != nil {
		t.Fatal(err)
	}
	l, err := core.NewLattice(&lattice.D3Q19, c.NX, c.NY, c.NZ, c.Tau)
	if err != nil {
		t.Fatal(err)
	}
	l.InitEquilibrium(1, c.U, 0, 0)
	for s := 0; s < c.Steps; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	if v := l.MaxVelocity(); math.Abs(v-c.U) > 1e-9 {
		t.Errorf("uniform periodic flow changed speed: %v", v)
	}
}

// TestShippedCaseFiles: every case file under cases/ parses and validates.
func TestShippedCaseFiles(t *testing.T) {
	entries, err := os.ReadDir("cases")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected ≥3 shipped cases, found %d", len(entries))
	}
	for _, e := range entries {
		f, err := os.Open("cases/" + e.Name())
		if err != nil {
			t.Fatal(err)
		}
		c, err := config.Read(f)
		f.Close()
		if err != nil {
			t.Errorf("case %s: %v", e.Name(), err)
			continue
		}
		if c.Tau <= 0.5 || c.Steps <= 0 {
			t.Errorf("case %s: derived tau=%v steps=%d", e.Name(), c.Tau, c.Steps)
		}
	}
}
