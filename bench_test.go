// Package sunwaylb_test is the paper's benchmark harness: one testing.B
// benchmark per evaluation figure (Figs. 8, 11, 13–17 plus the §V-A
// roofline), each reporting the figure's headline quantities as custom
// benchmark metrics, plus functional kernel micro-benchmarks measured on
// the host machine.
//
// Run with:
//
//	go test -bench=. -benchmem
package sunwaylb_test

import (
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/gpu"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/network"
	"sunwaylb/internal/perf"
	"sunwaylb/internal/psolve"
	"sunwaylb/internal/scaling"
	"sunwaylb/internal/sunway"
	"sunwaylb/internal/swlb"
	"sunwaylb/internal/trace"
)

// BenchmarkFig08_OptimizationAblation regenerates the Fig. 8 staircase and
// reports the cumulative speedup and final step time.
func BenchmarkFig08_OptimizationAblation(b *testing.B) {
	var stages []scaling.Stage
	for i := 0; i < b.N; i++ {
		stages = scaling.Fig8Ablation(sunway.SW26010)
	}
	last := stages[len(stages)-1]
	b.ReportMetric(last.Speedup, "speedup_x")
	b.ReportMetric(last.StepTime, "final_step_s")
	b.ReportMetric(stages[0].StepTime, "baseline_step_s")
}

// BenchmarkFig11_GPUOptimization regenerates the GPU-node ablation.
func BenchmarkFig11_GPUOptimization(b *testing.B) {
	var stages []gpu.Stage
	for i := 0; i < b.N; i++ {
		stages = gpu.Fig11Ablation(gpu.RTX3090Cluster)
	}
	last := stages[len(stages)-1]
	b.ReportMetric(last.Speedup, "speedup_x")
	_, util := gpu.RTX3090Cluster.Headline()
	b.ReportMetric(util*100, "kernel_bw_util_%")
}

// BenchmarkFig13_WeakScalingTaihuLight regenerates the TaihuLight weak
// scaling and reports the 160000-CG endpoint.
func BenchmarkFig13_WeakScalingTaihuLight(b *testing.B) {
	m := scaling.TaihuLightModel()
	var pts []scaling.Point
	for i := 0; i < b.N; i++ {
		pts = m.WeakScaling(scaling.Fig13Block[0], scaling.Fig13Block[1],
			scaling.Fig13Block[2], scaling.Fig13Grids)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.Rate.GLUPS(), "GLUPS")
	b.ReportMetric(last.PFlops, "PFlops")
	b.ReportMetric(last.BWUtil*100, "bw_util_%")
	b.ReportMetric(last.Efficiency*100, "parallel_eff_%")
}

// BenchmarkFig14_StrongScalingTaihuLight reports the three endpoint
// efficiencies of Fig. 14.
func BenchmarkFig14_StrongScalingTaihuLight(b *testing.B) {
	m := scaling.TaihuLightModel()
	effs := make([]float64, len(scaling.Fig14Cases))
	for i := 0; i < b.N; i++ {
		for j, c := range scaling.Fig14Cases {
			pts := m.StrongScaling(c.GNX, c.GNY, c.GNZ, scaling.Fig14Grids)
			effs[j] = pts[len(pts)-1].Efficiency
		}
	}
	b.ReportMetric(effs[0]*100, "cylinder_eff_%")
	b.ReportMetric(effs[1]*100, "suboff_eff_%")
	b.ReportMetric(effs[2]*100, "urban_eff_%")
}

// BenchmarkFig15_WeakScalingNewSunway regenerates the new-Sunway weak
// scaling endpoint.
func BenchmarkFig15_WeakScalingNewSunway(b *testing.B) {
	m := scaling.NewSunwayModel()
	var pts []scaling.Point
	for i := 0; i < b.N; i++ {
		pts = m.WeakScaling(scaling.Fig15Block[0], scaling.Fig15Block[1],
			scaling.Fig15Block[2], scaling.Fig15Grids)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.Rate.GLUPS(), "GLUPS")
	b.ReportMetric(last.PFlops, "PFlops")
	b.ReportMetric(last.BWUtil*100, "bw_util_%")
}

// BenchmarkFig16_StrongScalingNewSunway reports the cylinder endpoint on
// the new Sunway.
func BenchmarkFig16_StrongScalingNewSunway(b *testing.B) {
	m := scaling.NewSunwayModel()
	var eff float64
	for i := 0; i < b.N; i++ {
		for _, c := range scaling.Fig16Cases {
			pts := m.StrongScaling(c.GNX, c.GNY, c.GNZ, c.Grids)
			if c.Name == "flow past cylinder" {
				eff = pts[len(pts)-1].Efficiency
			}
		}
	}
	b.ReportMetric(eff*100, "cylinder_eff_%")
}

// BenchmarkFig17_GPUStrongScaling reports the 8-node efficiency of the
// GPU cluster.
func BenchmarkFig17_GPUStrongScaling(b *testing.B) {
	var pts []gpu.ClusterPoint
	for i := 0; i < b.N; i++ {
		pts = gpu.RTX3090Cluster.StrongScaling(1400, 2800, 100,
			[]int{1, 2, 4, 8}, network.GPUClusterNet)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.Efficiency*100, "eff_8nodes_%")
	b.ReportMetric(last.Rate.GLUPS(), "GLUPS")
}

// BenchmarkRoofline reports the §V-A per-CG roofline quantities.
func BenchmarkRoofline(b *testing.B) {
	var r perf.LUPS
	for i := 0; i < b.N; i++ {
		r = perf.TaihuLight.Roofline()
	}
	b.ReportMetric(r.MLUPS(), "roofline_MLUPS_per_CG")
	b.ReportMetric(perf.TaihuLight.Utilization()*100, "paper_util_%")
}

// BenchmarkAblation_Decomposition reports the step-time penalty of the 1-D
// and 3-D decompositions against the paper's 2-D scheme (§IV-C-1).
func BenchmarkAblation_Decomposition(b *testing.B) {
	m := scaling.TaihuLightModel()
	var pts []scaling.DecompPoint
	for i := 0; i < b.N; i++ {
		pts = m.DecompositionAblation(500*400, 700*400, 100, 160000)
	}
	var t1, t2, t3 float64
	for _, p := range pts {
		switch p.Name {
		case "1-D (x slabs)":
			t1 = p.StepTime
		case "2-D (xy, full z)":
			t2 = p.StepTime
		case "3-D (xyz)":
			t3 = p.StepTime
		}
	}
	b.ReportMetric(t1/t2, "penalty_1D_x")
	b.ReportMetric(t3/t2, "penalty_3D_x")
}

// BenchmarkAblation_BlockLength reports the DMA-efficiency knee of the
// z-run-length sweep (§IV-C-2's 70-cell blocking).
func BenchmarkAblation_BlockLength(b *testing.B) {
	m := scaling.TaihuLightModel()
	var pts []scaling.BlockLengthPoint
	for i := 0; i < b.N; i++ {
		pts = m.BlockLengthSweep([]int{8, 70, 512})
	}
	b.ReportMetric(pts[0].Rate.MLUPS(), "bz8_MLUPS")
	b.ReportMetric(pts[1].Rate.MLUPS(), "bz70_MLUPS")
	b.ReportMetric(pts[2].Rate.MLUPS(), "bz512_MLUPS")
}

// BenchmarkAblation_OnTheFly reports the overlap gain at the strong-scaling
// endpoint block size.
func BenchmarkAblation_OnTheFly(b *testing.B) {
	m := scaling.TaihuLightModel()
	var pts []scaling.OnTheFlyPoint
	for i := 0; i < b.N; i++ {
		pts = m.OnTheFlySweep([][2]int{{64, 64}}, 100, 400, 400)
	}
	b.ReportMetric(pts[0].Gain*100, "gain_%")
}

// --- Functional kernel micro-benchmarks (host-machine times) ---

// BenchmarkKernelFused measures the reference fused collide–stream kernel.
func BenchmarkKernelFused(b *testing.B) {
	l, err := core.NewLattice(&lattice.D3Q19, 48, 48, 48, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	cells := int64(l.NX * l.NY * l.NZ)
	b.SetBytes(cells * 19 * 8 * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PeriodicAll()
		l.StepFused()
	}
	b.StopTimer()
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUPS")
}

// BenchmarkKernelFusedParallel measures the goroutine-parallel driver.
func BenchmarkKernelFusedParallel(b *testing.B) {
	l, err := core.NewLattice(&lattice.D3Q19, 64, 64, 64, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	cells := int64(l.NX * l.NY * l.NZ)
	b.SetBytes(cells * 19 * 8 * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PeriodicAll()
		l.StepFusedParallel(0)
	}
	b.StopTimer()
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUPS")
}

// BenchmarkKernelUnfused measures the pre-fusion two-pass baseline — the
// host-level analogue of the Fig. 8 fusion comparison.
func BenchmarkKernelUnfused(b *testing.B) {
	l, err := core.NewLattice(&lattice.D3Q19, 48, 48, 48, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	cells := int64(l.NX * l.NY * l.NZ)
	b.SetBytes(cells * 19 * 8 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PeriodicAll()
		l.StepUnfused()
	}
	b.StopTimer()
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUPS")
}

// BenchmarkSunwaySimulatedCG measures the functional CPE-cluster simulator
// running the fully optimized kernel, reporting both host time and the
// simulated per-CG rate.
func BenchmarkSunwaySimulatedCG(b *testing.B) {
	l, err := core.NewLattice(&lattice.D3Q19, 4, 64, 70, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := swlb.New(l, sunway.SW26010, swlb.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cells := float64(l.NX * l.NY * l.NZ)
	var simT float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PeriodicAll()
		simT = eng.Step()
	}
	b.StopTimer()
	b.ReportMetric(cells/simT/1e6, "simulated_MLUPS_per_CG")
}

// BenchmarkDistributedHaloExchange measures a 2×2-rank distributed step
// (functional MPI runtime) including halo exchange.
func BenchmarkDistributedHaloExchange(b *testing.B) {
	opts := psolve.Options{
		GNX: 64, GNY: 64, GNZ: 32,
		PX: 2, PY: 2,
		Tau:       0.8,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		OnTheFly: true,
	}
	err := mpi.Run(4, func(c *mpi.Comm) error {
		s, err := psolve.New(c, opts)
		if err != nil {
			return err
		}
		c.Barrier()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			s.Step()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	cells := int64(opts.GNX) * int64(opts.GNY) * int64(opts.GNZ)
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUPS")
}

// --- Tracing overhead (internal/trace) ---

// benchTracedStep times a 2×2-rank distributed step loop under the given
// tracer. The Disabled/Enabled pair quantifies the instrumentation cost:
// with a nil tracer every trace call is one nil-checked branch, so
// Disabled must match BenchmarkDistributedHaloExchange within noise.
func benchTracedStep(b *testing.B, tracer *trace.Tracer) {
	opts := psolve.Options{
		GNX: 64, GNY: 64, GNZ: 32,
		PX: 2, PY: 2,
		Tau:       0.8,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Trace: tracer,
	}
	w, err := mpi.NewWorld(4)
	if err != nil {
		b.Fatal(err)
	}
	w.SetTracer(tracer)
	err = mpi.RunWorld(w, func(c *mpi.Comm) error {
		s, err := psolve.New(c, opts)
		if err != nil {
			return err
		}
		c.Barrier()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			s.Step()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	cells := int64(opts.GNX) * int64(opts.GNY) * int64(opts.GNZ)
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUPS")
	if tracer != nil {
		b.ReportMetric(float64(len(tracer.Events()))/float64(b.N), "events/step")
	}
}

// BenchmarkStepTraceDisabled is the nil-tracer baseline.
func BenchmarkStepTraceDisabled(b *testing.B) { benchTracedStep(b, nil) }

// BenchmarkStepTraceEnabled records full per-rank timelines into a
// bounded ring (so arbitrarily long -benchtime runs stay flat on memory).
func BenchmarkStepTraceEnabled(b *testing.B) {
	benchTracedStep(b, trace.New(trace.Options{MaxEventsPerRank: 1 << 15}))
}
