#!/usr/bin/env bash
# CI tiers for SunwayLB-Go.
#
#   tier 1  — build + full test suite (the repo's acceptance gate)
#   tier 2  — vet + race detector on every package
#   chaos   — race-checked chaos smoke: the supervisor must survive a
#             deterministic rank kill + checkpoint corruption
#
# Usage: scripts/ci.sh [tier1|tier2|chaos|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

tier1() {
    echo "== tier 1: build + tests =="
    go build ./...
    go test ./...
}

tier2() {
    echo "== tier 2: vet + race =="
    go vet ./...
    go test -race ./...
}

chaos() {
    echo "== chaos smoke: supervised recovery under fault injection =="
    go test -race -run TestSupervisorRecovers -timeout 120s ./internal/psolve
    go test -race -run 'TestRecvFromExitedRank|TestAbortUnblocksEveryone' -timeout 120s ./internal/mpi
}

case "${1:-all}" in
    tier1) tier1 ;;
    tier2) tier2 ;;
    chaos) chaos ;;
    all)   tier1; tier2; chaos ;;
    *) echo "usage: $0 [tier1|tier2|chaos|all]" >&2; exit 2 ;;
esac
echo "ok"
