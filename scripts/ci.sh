#!/usr/bin/env bash
# CI tiers for SunwayLB-Go.
#
#   tier 1  — build + full test suite (the repo's acceptance gate)
#   tier 2  — gofmt cleanliness + vet + race detector on every package
#   race    — focused race-detector sweep over the concurrent packages
#             (mpi transport, psolve rank goroutines, swlb MPE/CPE
#             collaboration, sunway CPE cluster, trace ring buffers,
#             conform's in-process multi-rank matrix), run twice to
#             shake schedule-dependent interleavings
#   conform — differential + metamorphic conformance suite: ≥25 seeded
#             cases through every backend (serial core, all swlb stages,
#             gpu model, 1-D/2-D/3-D decompositions at 1..8 ranks) plus
#             the mutation self-test proving the oracles catch injected
#             numerical bugs; any violation exits non-zero with a
#             minimal replay string
#   analyze — lbmvet, the domain-specific static-analysis suite: the
#             whole module must be free of LDM-budget, mpi-error,
#             span-pairing, hot-allocation, float-determinism,
#             goroutine-leak, lock-safety, channel-protocol and
#             memory-traffic findings, and go vet must be clean
#   chaos   — race-checked chaos matrix: the supervisor must survive
#             deterministic rank kills (single and per-group), link
#             flaps under the phi detector, multi-loss escalation to
#             the disk tier, checkpoint corruption and straggler skew —
#             hot-swapping from the in-memory L2/L3 snapshot hierarchy
#             where the loss pattern allows it
#   trace   — observability smoke: a traced distributed chaos run must
#             export a Chrome trace that round-trips through
#             postproc -tracestat (ReadChrome + Validate + Analyze)
#   serve   — lbmserve service tier: the full internal/serve suite under
#             the race detector (chaos isolation with concurrent faulty
#             tenants bit-identical to solo runs, journal-replay restart,
#             HTTP API, admission/backpressure, cancellation/deadlines)
#             including the load soak (hundreds of queued jobs, mixed
#             fault plans, bounded trace ring and heap), the daemon
#             SIGTERM-drain smoke, and the spanpair/hotalloc static
#             rules over the service code
#   patch   — patch-decomposition tier: the internal/patch suite under
#             the race detector (tiling fuzz seeds, bit-identity across
#             tilings/backends/forced migrations, the balancer's
#             straggler response, and the migration chaos tests that
#             kill owners mid-run), the mixed-backend conformance slice
#             with mid-run migrations, and the hotalloc/spanpair static
#             rules over the patch code
#   perf    — AA-kernel performance-critical contracts: the AA conform
#             slice (serial/blocked/pool backends MaxULP=0 against the
#             reference at both storage parities), the race-checked
#             worker-pool soak plus the AVX-512 row kernel's bitwise
#             equivalence tests, and the memtraffic/hotalloc/goleak
#             static budgets over the kernel and resilience code
#   bench   — refresh BENCH_results.json from the measured benchmark
#             cases so every CI run extends the perf trajectory; when a
#             committed baseline exists, the fused-kernel MLUPS must not
#             regress more than 10% against it
#
# Usage: scripts/ci.sh [tier1|tier2|race|conform|analyze|perf|chaos|serve|trace|patch|bench|all]
# (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

tier1() {
    echo "== tier 1: build + tests =="
    go build ./...
    go test ./...
}

tier2() {
    echo "== tier 2: gofmt + vet + race =="
    unformatted=$(gofmt -l .)
    if [ -n "$unformatted" ]; then
        echo "gofmt: files need formatting:" >&2
        echo "$unformatted" >&2
        exit 1
    fi
    go vet ./...
    go test -race ./...
}

race() {
    echo "== race: concurrent packages under the race detector =="
    go test -race -count=2 -timeout 600s \
        ./internal/mpi ./internal/psolve ./internal/swlb \
        ./internal/sunway ./internal/trace ./internal/conform
}

conform() {
    echo "== conform: differential + metamorphic conformance suite =="
    # Deterministic 25-case matrix; non-zero exit on any oracle violation.
    go run ./cmd/conform -seed 1 -cases 25
    # Mutation sensitivity: every injected bug must be caught and shrunk.
    go run ./cmd/conform -selftest -seed 1 -cases 10
    # A known-bad replay must reproduce (exit 1) — guards the replay path.
    if go run ./cmd/conform \
        -replay 'v1;seed=1;grid=2x2x2;tau=0.8;steps=1;bc=periodic' \
        -run 'mutant/drop-population' >/dev/null; then
        echo "conform: mutant replay unexpectedly passed" >&2
        exit 1
    fi
}

bench() {
    echo "== bench: refresh BENCH_results.json =="
    # Gate against the committed baseline (if any) before overwriting it:
    # a fused-kernel MLUPS regression beyond 10% fails the tier.
    base=""
    if git cat-file -e HEAD:BENCH_results.json 2>/dev/null; then
        base=$(mktemp)
        trap 'rm -f "$base"' RETURN
        git show HEAD:BENCH_results.json > "$base"
    fi
    go run ./cmd/benchsuite -json BENCH_results.json ${base:+-baseline "$base"}
    test -s BENCH_results.json
}

perf() {
    echo "== perf: AA kernel conformance + pool soak + static budgets =="
    # AA backends (serial, cache-blocked, worker pool) must stay
    # bit-identical (MaxULP=0) to the serial reference at every storage
    # parity, and the parity metamorphic property must hold.
    go run ./cmd/conform -seed 1 -cases 10 -run 'core/aa|psolve/2x2-aa|prop/aa-parity'
    # Race-checked AA suite: pool soak, step/blocked/pool bit-identity,
    # parity-aware halo pack/unpack, and (on capable hardware) the
    # AVX-512 row kernel's bitwise equivalence to the scalar canon.
    go test -race -count=1 -timeout 600s \
        -run 'TestAA|TestPool|TestPack|TestPeriodic' ./internal/core
    # Static budgets over the performance-critical code: per-cell memory
    # traffic of every //lbm:hot kernel, no hot-loop allocations, no
    # leaked worker goroutines.
    go run ./cmd/lbmvet -rules memtraffic,hotalloc,goleak \
        ./internal/core ./internal/resil
}

analyze() {
    echo "== analyze: lbmvet static-analysis suite =="
    go vet ./...
    # The command and library trees carry the full nine-rule contract:
    # every //lbm:hot kernel inside them must also meet its declared
    # //lbm:traffic per-cell byte budget.
    go run ./cmd/lbmvet ./cmd/... ./internal/...
    go run ./cmd/lbmvet ./...
    # The -json mode must emit a well-formed (empty) array on a clean tree.
    out=$(go run ./cmd/lbmvet -json ./...)
    [ "$(echo "$out" | head -c 1)" = "[" ] || {
        echo "lbmvet -json: expected a JSON array, got: $out" >&2
        exit 1
    }
}

chaos() {
    echo "== chaos: supervised recovery matrix under fault injection =="
    # Crash / flap / multi-kill / corrupt matrix plus the severity-aware
    # recovery paths: memory-tier hot swaps (buddy + parity), multi-loss
    # escalation to the L4 disk checkpoint, spare-budget exhaustion and
    # phi-accrual straggler tolerance — all under the race detector.
    go test -race -timeout 300s -run \
        'TestChaosMatrix|TestSupervisorRecovers|TestSupervisorHotSwap|TestSupervisorMultiLoss|TestSupervisorSpareBudget|TestSupervisorPhi|TestSupervisorSnapshotCadence|TestSupervisorShrinkingRecovery' \
        ./internal/psolve
    go test -race -timeout 120s -run \
        'TestRecvFromExitedRank|TestAbortUnblocksEveryone|TestRecvSuspectsSilentPeer|TestRecvNoFalseSuspicionUnderLoad' \
        ./internal/mpi
    go test -race -timeout 120s ./internal/fault ./internal/resil
    # CLI-level smoke: a group kill must hot-swap with zero disk rollbacks.
    swap=$(go run ./cmd/sunwaylb -preset cavity -nx 16 -ny 16 -nz 16 -steps 8 \
        -decomp 2x2 -snapshot-every 2 -ckpt-levels 123 -ckpt-group 2 \
        -spare-ranks 2 -detector phi -max-restarts 2 \
        -fault-plan 'seed=7;crash@group=0,count=1,step=5' 2>&1)
    echo "$swap" | grep -q 'hot-swaps=1, disk=0'
}

serve() {
    echo "== serve: multi-tenant service tier =="
    # Full service suite under the race detector, load soak included:
    # per-job fault isolation must hold bit-identically with hundreds of
    # concurrent tenants and the daemon's memory must stay bounded.
    go test -race -count=1 -timeout 600s ./internal/serve
    # Static contracts on the service code: spans paired, no hot-loop
    # allocation regressions in the scheduler, every worker goroutine
    # cancellable, locks released on all paths, channel protocol sound.
    go run ./cmd/lbmvet -rules spanpair,hotalloc,goleak,locksafe,chanproto ./internal/serve
    # Daemon smoke: SIGTERM must drain cleanly (exit 0) and leave a
    # replayable journal behind.
    out=$(mktemp -d)
    trap 'rm -rf "$out"' RETURN
    go build -o "$out/lbmserve" ./cmd/lbmserve
    "$out/lbmserve" -addr 127.0.0.1:18431 -data "$out/data" -workers 2 &
    pid=$!
    sleep 1
    curl -sf -X POST 127.0.0.1:18431/jobs -d \
        '{"tenant":"ci","case":{"name":"smoke","nx":12,"ny":10,"nz":6,"tau":0.7,"steps":400000},"decomp":"2x1","snapshot_every":2}' \
        >/dev/null
    sleep 1
    kill -TERM "$pid"
    wait "$pid"   # non-zero drain exit fails the tier via set -e
    test -s "$out/data/jobs.journal"
}

patch() {
    echo "== patch: patch decomposition + measured-throughput balancing =="
    # The whole patch suite — including the migration chaos tests that
    # kill an owner mid-step — must hold under the race detector.
    go test -race -count=1 -timeout 600s ./internal/patch
    # Mixed-backend stitched oracles: homogeneous, core+swlb+gpu, and
    # core+swlb+gpu with a forced migration after every step, all
    # bit-identical (MaxULP=0) to the serial kernel across seeds.
    go run ./cmd/conform -seed 3 -cases 8 -run 'patch/'
    # Static contracts on the patch code: spans paired, no hot-loop
    # allocation regressions in the exchange/migration paths, migration
    # goroutines cancellable, locks and channel handoffs sound.
    go run ./cmd/lbmvet -rules hotalloc,spanpair,goleak,locksafe,chanproto ./internal/patch
}

trace() {
    echo "== trace smoke: traced chaos run + analysis round trip =="
    out=$(mktemp -d)
    trap 'rm -rf "$out"' RETURN
    go run ./cmd/sunwaylb -preset cavity -nx 24 -ny 24 -nz 24 -steps 60 \
        -decomp 2x2 -sunway \
        -checkpoint-every 20 -checkpoint "$out/state.cpk" -max-restarts 1 \
        -fault-plan 'seed=42;crash@rank=1,step=35;straggle@rank=3,x=3' \
        -trace "$out/run.trace.json"
    test -s "$out/run.trace.json"
    stat=$(go run ./cmd/postproc -tracestat "$out/run.trace.json")
    echo "$stat"
    # "events, valid" (not just "valid": INVALID traces print "INVALID"
    # but a substring grep for "valid" would still match them).
    echo "$stat" | grep -q "events, valid"
    echo "$stat" | grep -q "STRAGGLER rank 3"
    echo "$stat" | grep -q "fault-crash=1"
    # The supervised-trace integration test covers the same path under -race.
    go test -race -run TestSupervisedRunTraceTimeline -timeout 120s ./internal/psolve
}

case "${1:-all}" in
    tier1) tier1 ;;
    tier2) tier2 ;;
    race) race ;;
    conform) conform ;;
    analyze) analyze ;;
    perf) perf ;;
    chaos) chaos ;;
    serve) serve ;;
    trace) trace ;;
    patch) patch ;;
    bench) bench ;;
    all)   tier1; tier2; race; conform; analyze; perf; chaos; serve; trace; patch; bench ;;
    *) echo "usage: $0 [tier1|tier2|race|conform|analyze|perf|chaos|serve|trace|patch|bench|all]" >&2; exit 2 ;;
esac
echo "ok"
