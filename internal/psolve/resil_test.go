package psolve

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"sunwaylb/internal/fault"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/resil"
)

// TestSupervisorHotSwapBuddy is the headline severity-aware recovery
// scenario: one injected death per parity group, repaired from L2 buddy
// copies and spare ranks. The run must finish with zero disk rollbacks,
// zero shrinks, and a final field bit-identical to the fault-free
// reference.
func TestSupervisorHotSwapBuddy(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	const steps = 30

	ref, err := Run(opts, steps)
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}

	// Groups of 2 over 4 ranks: {0,1} and {2,3}. Rank 1 and rank 2 die
	// in the same step — one death per group, the worst case the memory
	// hierarchy must still repair in one plan.
	plan, err := fault.ParsePlan("seed=3;crash@rank=1,step=13;crash@rank=2,step=13")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(plan)
	got, stats, err := Supervise(SupervisorOptions{
		Opts:          opts,
		Steps:         steps,
		SnapshotEvery: 2,
		Levels:        resil.L1 | resil.L2 | resil.L3,
		GroupSize:     2,
		SpareRanks:    2,
		MaxRestarts:   2,
		Injector:      inj,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (stats: %s)", err, stats)
	}
	if n, worst := fieldsEqual(ref, got); n != 0 {
		t.Fatalf("hot-swapped run differs from fault-free reference in %d values (worst %g)", n, worst)
	}
	if stats.HotSwaps != 1 || stats.DiskRollbacks != 0 {
		t.Errorf("hot-swaps=%d disk-rollbacks=%d, want 1/0", stats.HotSwaps, stats.DiskRollbacks)
	}
	if stats.Shrinks != 0 {
		t.Errorf("shrinks = %d, want 0 (hot swap preserves world size)", stats.Shrinks)
	}
	if stats.SparesUsed != 2 {
		t.Errorf("spares used = %d, want 2", stats.SparesUsed)
	}
	if stats.BuddyRestores != 2 || stats.Reconstructions != 0 {
		t.Errorf("restores: buddy=%d parity=%d, want 2/0 (both buddies alive)",
			stats.BuddyRestores, stats.Reconstructions)
	}
	// Crash before step 14; the latest complete wave is at step 12, so
	// at most a couple of steps replay.
	if stats.LostSteps > 2*2 {
		t.Errorf("lost steps = %d, want ≤ 4 with SnapshotEvery=2", stats.LostSteps)
	}
	if stats.MTTR() <= 0 {
		t.Errorf("MTTR = %v, want > 0 after a repair", stats.MTTR())
	}
	b := stats.SnapshotBytes
	if b[0] == 0 || b[1] == 0 || b[2] == 0 {
		t.Errorf("snapshot byte ledger missing levels: %v", b)
	}
	if b[3] != 0 {
		t.Errorf("disk bytes = %d, want 0 (no L4 in this run)", b[3])
	}
}

// TestSupervisorHotSwapParity forces the L3 algebra: without L2 buddy
// copies, a dead block can only come back as parity ⊕ survivors.
func TestSupervisorHotSwapParity(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	const steps = 24

	ref, err := Run(opts, steps)
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}
	inj := fault.NewInjector(fault.Plan{Seed: 5, Crashes: []fault.Crash{{Rank: 2, Step: 11}}})
	got, stats, err := Supervise(SupervisorOptions{
		Opts:          opts,
		Steps:         steps,
		SnapshotEvery: 3,
		Levels:        resil.L1 | resil.L3, // no buddy copies: parity or bust
		GroupSize:     4,
		SpareRanks:    1,
		MaxRestarts:   1,
		Injector:      inj,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (stats: %s)", err, stats)
	}
	if n, worst := fieldsEqual(ref, got); n != 0 {
		t.Fatalf("parity-recovered run differs in %d values (worst %g)", n, worst)
	}
	if stats.HotSwaps != 1 || stats.DiskRollbacks != 0 {
		t.Errorf("hot-swaps=%d disk-rollbacks=%d, want 1/0", stats.HotSwaps, stats.DiskRollbacks)
	}
	if stats.Reconstructions != 1 || stats.BuddyRestores != 0 {
		t.Errorf("restores: buddy=%d parity=%d, want 0/1", stats.BuddyRestores, stats.Reconstructions)
	}
}

// TestSupervisorMultiLossEscalates: two deaths inside one parity group
// leave the XOR equation with two unknowns — the memory hierarchy must
// refuse, and the supervisor must fall back to the L4 disk checkpoint
// and still converge to the exact reference.
func TestSupervisorMultiLossEscalates(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	const steps = 30

	ref, err := Run(opts, steps)
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}
	// Both members of group {0,1} die together (via the group DSL).
	plan, err := fault.ParsePlan("seed=11;crash@group=0,count=2,step=13")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(plan)
	path := filepath.Join(t.TempDir(), "escalate.cpk")
	got, stats, err := Supervise(SupervisorOptions{
		Opts:            opts,
		Steps:           steps,
		SnapshotEvery:   2,
		Levels:          resil.L1 | resil.L2 | resil.L3 | resil.L4,
		GroupSize:       2,
		SpareRanks:      4,
		CheckpointEvery: 5,
		CheckpointPath:  path,
		MaxRestarts:     2,
		Injector:        inj,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (stats: %s)", err, stats)
	}
	if n, worst := fieldsEqual(ref, got); n != 0 {
		t.Fatalf("escalated recovery differs in %d values (worst %g)", n, worst)
	}
	if stats.DiskRollbacks != 1 || stats.HotSwaps != 0 {
		t.Errorf("disk-rollbacks=%d hot-swaps=%d, want 1/0 (multi-loss in one group)",
			stats.DiskRollbacks, stats.HotSwaps)
	}
	if fs := inj.Stats(); fs.Crashes != 2 {
		t.Errorf("injector crashes = %d, want 2 (group expansion)", fs.Crashes)
	}
	if stats.SnapshotBytes[3] == 0 {
		t.Errorf("disk byte ledger empty despite L4 checkpoints")
	}
}

// TestSupervisorSpareBudgetExhausted: deaths beyond the spare budget
// cannot hot-swap even when the algebra could repair them.
func TestSupervisorSpareBudgetExhausted(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	const steps = 20
	inj := fault.NewInjector(fault.Plan{Seed: 2, Crashes: []fault.Crash{
		{Rank: 1, Step: 9}, {Rank: 2, Step: 9},
	}})
	path := filepath.Join(t.TempDir(), "budget.cpk")
	_, stats, err := Supervise(SupervisorOptions{
		Opts:            opts,
		Steps:           steps,
		SnapshotEvery:   2,
		Levels:          resil.L1 | resil.L2 | resil.L3 | resil.L4,
		GroupSize:       2,
		SpareRanks:      1, // two deaths, one spare
		CheckpointEvery: 4,
		CheckpointPath:  path,
		MaxRestarts:     1,
		Injector:        inj,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (stats: %s)", err, stats)
	}
	if stats.HotSwaps != 0 || stats.DiskRollbacks != 1 {
		t.Errorf("hot-swaps=%d disk-rollbacks=%d, want 0/1 (spare budget exceeded)",
			stats.HotSwaps, stats.DiskRollbacks)
	}
	if stats.SparesUsed != 0 {
		t.Errorf("spares used = %d, want 0", stats.SparesUsed)
	}
}

// TestSupervisorPhiToleratesStragglers is the detector acceptance test:
// a rank that is 4× slower on the wall clock but keeps heartbeating must
// never be declared dead by the phi detector — the run completes with
// zero restarts where a tight fixed deadline (below) fails.
func TestSupervisorPhiToleratesStragglers(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	const steps = 12
	mkInj := func() *fault.Injector {
		return fault.NewInjector(fault.Plan{
			Seed:       1,
			Stragglers: []fault.Straggler{{Rank: 1, Factor: 4}},
		})
	}

	ref, err := Run(opts, steps)
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}

	got, stats, err := Supervise(SupervisorOptions{
		Opts:               opts,
		Steps:              steps,
		SnapshotEvery:      3,
		Levels:             resil.L1 | resil.L2 | resil.L3,
		GroupSize:          2,
		MaxRestarts:        0, // any false suspicion fails the run outright
		Injector:           mkInj(),
		Detector:           "phi",
		StragglerWallDelay: 10 * time.Millisecond,
		Logf:               t.Logf,
	})
	if err != nil {
		t.Fatalf("phi detector falsely killed a straggling run: %v (stats: %s)", err, stats)
	}
	if stats.Restarts != 0 {
		t.Errorf("restarts = %d, want 0 (no false suspicion)", stats.Restarts)
	}
	if n, worst := fieldsEqual(ref, got); n != 0 {
		t.Fatalf("straggling run differs in %d values (worst %g)", n, worst)
	}

	// The same scenario under a fixed deadline shorter than the
	// straggler's step time: the deadline detector cannot tell slow from
	// dead and the run must fail — the weakness phi exists to fix.
	_, _, err = Supervise(SupervisorOptions{
		Opts:               opts,
		Steps:              steps,
		MaxRestarts:        0,
		Injector:           mkInj(),
		RecvTimeout:        10 * time.Millisecond,
		StragglerWallDelay: 10 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("fixed 10ms deadline should have killed the 30ms-per-step straggler")
	}
	if !errors.Is(err, mpi.ErrTimeout) {
		t.Errorf("deadline failure should wrap ErrTimeout, got: %v", err)
	}
}

// TestChaosMatrix drives the CI chaos tier: a matrix of failure shapes
// through the full hierarchy, each asserting convergence and the
// expected recovery class. All scenarios must reproduce the fault-free
// field bit-exactly.
func TestChaosMatrix(t *testing.T) {
	base := chaosBase()
	base.PX, base.PY = 2, 2
	const steps = 24

	ref, err := Run(base, steps)
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}

	cases := []struct {
		name      string
		plan      string
		detector  string
		wallStrag time.Duration
		wantHot   int // -1 = don't care
		wantDisk  int
	}{
		{
			name:    "single-crash-hot-swap",
			plan:    "seed=21;crash@rank=3,step=11",
			wantHot: 1, wantDisk: 0,
		},
		{
			name:    "one-per-group-multi-kill",
			plan:    "seed=22;crash@rank=0,step=9;crash@rank=3,step=9",
			wantHot: 1, wantDisk: 0,
		},
		{
			name:    "group-wipe-escalates",
			plan:    "seed=23;crash@group=1,count=2,step=11",
			wantHot: 0, wantDisk: 1,
		},
		{
			name:    "crash-plus-corrupt-ckpt",
			plan:    "seed=24;crash@rank=1,step=13;corrupt@ckpt=2",
			wantHot: 1, wantDisk: 0,
		},
		{
			name:      "flap-under-phi",
			plan:      "seed=25;straggle@rank=1,x=4;flap@rank=1,step=6,len=40",
			detector:  "phi",
			wallStrag: 10 * time.Millisecond,
			wantHot:   -1, wantDisk: 0,
		},
		{
			name:    "sequential-crashes",
			plan:    "seed=26;crash@rank=1,step=7;crash@rank=2,step=15",
			wantHot: 2, wantDisk: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := fault.ParsePlan(tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			inj := fault.NewInjector(plan)
			path := filepath.Join(t.TempDir(), "chaos.cpk")
			got, stats, err := Supervise(SupervisorOptions{
				Opts:               base,
				Steps:              steps,
				SnapshotEvery:      2,
				Levels:             resil.L1 | resil.L2 | resil.L3 | resil.L4,
				GroupSize:          2,
				SpareRanks:         4,
				CheckpointEvery:    5,
				CheckpointPath:     path,
				MaxRestarts:        3,
				Injector:           inj,
				Detector:           tc.detector,
				StragglerWallDelay: tc.wallStrag,
				Logf:               t.Logf,
			})
			if err != nil {
				t.Fatalf("supervised run failed: %v (stats: %s)", err, stats)
			}
			if n, worst := fieldsEqual(ref, got); n != 0 {
				t.Fatalf("recovered run differs from reference in %d values (worst %g)", n, worst)
			}
			if tc.wantHot >= 0 && stats.HotSwaps != tc.wantHot {
				t.Errorf("hot swaps = %d, want %d (stats: %s)", stats.HotSwaps, tc.wantHot, stats)
			}
			if stats.DiskRollbacks != tc.wantDisk {
				t.Errorf("disk rollbacks = %d, want %d (stats: %s)", stats.DiskRollbacks, tc.wantDisk, stats)
			}
		})
	}
}

// TestSupervisorSnapshotCadence: the byte ledger must grow linearly with
// the wave count — the overhead story of the hierarchy (L1+L2+L3 deposit
// per wave, nothing on disk unless L4 fires).
func TestSupervisorSnapshotCadence(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	const steps = 12
	_, stats, err := Supervise(SupervisorOptions{
		Opts:          opts,
		Steps:         steps,
		SnapshotEvery: 2,
		Levels:        resil.L1 | resil.L2 | resil.L3,
		GroupSize:     2,
		MaxRestarts:   0,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Waves at steps 2,4,6,8,10 (never at the final step): 5 waves × 4
	// ranks deposit the same payload at every level.
	b := stats.SnapshotBytes
	if b[0] == 0 || b[0] != b[1] || b[0] != b[2] {
		t.Errorf("L1/L2/L3 ledgers should match for equal blocks: %v", b)
	}
	if b[3] != 0 {
		t.Errorf("no disk writes expected, ledger says %d", b[3])
	}
}
