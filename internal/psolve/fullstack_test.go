package psolve

import (
	"fmt"
	"math"
	"testing"

	"sunwaylb/internal/boundary"
	"sunwaylb/internal/core"
	"sunwaylb/internal/gpu"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/sunway"
	"sunwaylb/internal/swlb"
)

// TestFullStackMPIPlusSunwayEngine is the paper's complete two-level
// architecture (§IV-A: "MPI with Athread"): simulated MPI ranks exchange
// halos while each rank's kernel runs on its own simulated Sunway core
// group — and the whole stack stays bit-identical to the plain serial
// solver.
func TestFullStackMPIPlusSunwayEngine(t *testing.T) {
	wall := func(gx, gy, gz int) bool {
		return gx >= 7 && gx <= 9 && gy >= 6 && gy <= 8 && gz >= 2 && gz <= 4
	}
	base := Options{
		GNX: 18, GNY: 14, GNZ: 8,
		Tau:       0.7,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Walls: wall,
		Init:  shearInit,
	}

	// Reference: plain serial run.
	refOpts := base
	refOpts.PX, refOpts.PY = 1, 1
	ref, err := Run(refOpts, 12)
	if err != nil {
		t.Fatal(err)
	}

	// Full stack: 2×2 ranks, each with a simulated CPE cluster.
	simTimes := make([]float64, 4)
	full := base
	full.PX, full.PY = 2, 2
	full.Stepper = func(lat *core.Lattice) (Stepper, error) {
		return swlb.New(lat, sunway.TestChip(4, 64*1024),
			swlb.Options{UseCPEs: true, Fused: true, YSharing: true, ComputeEff: 0.5, BZ: 8})
	}
	var got *core.MacroField
	err = mpi.Run(4, func(c *mpi.Comm) error {
		s, err := New(c, full)
		if err != nil {
			return err
		}
		for i := 0; i < 12; i++ {
			s.Step()
		}
		if s.SimTime <= 0 {
			return fmt.Errorf("rank %d: no simulated time accumulated", c.Rank())
		}
		simTimes[c.Rank()] = s.SimTime
		if g := s.GatherMacro(0); g != nil {
			got = g
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range ref.Rho {
		if ref.Rho[i] != got.Rho[i] || ref.Ux[i] != got.Ux[i] ||
			ref.Uy[i] != got.Uy[i] || ref.Uz[i] != got.Uz[i] {
			diff++
		}
	}
	if diff != 0 {
		t.Fatalf("full MPI+Sunway stack diverged from serial in %d values", diff)
	}
	t.Logf("full stack: 12 steps, %.3g s simulated CG time on rank 0", simTimes[0])
}

// TestFullStackWithBoundaryConditions: the stack also works with
// inlet/outlet conditions whose wall flags only appear at the first
// application (exercising the Rebuild-after-first-exchange path).
func TestFullStackWithBoundaryConditions(t *testing.T) {
	base := Options{
		GNX: 16, GNY: 10, GNZ: 6,
		Tau: 0.72,
		FaceBC: map[core.Face]boundary.Condition{
			core.FaceXMin: &boundary.VelocityInlet{Face: core.FaceXMin, U: [3]float64{0.04, 0, 0}},
			core.FaceXMax: &boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
			core.FaceYMin: &boundary.NoSlip{Face: core.FaceYMin},
			core.FaceYMax: &boundary.NoSlip{Face: core.FaceYMax},
		},
		PeriodicZ: true,
		Init:      func(x, y, z int) (float64, float64, float64, float64) { return 1, 0.04, 0, 0 },
	}
	refOpts := base
	refOpts.PX, refOpts.PY = 1, 1
	ref, err := Run(refOpts, 25)
	if err != nil {
		t.Fatal(err)
	}
	full := base
	full.PX, full.PY = 2, 2
	full.Stepper = func(lat *core.Lattice) (Stepper, error) {
		return swlb.New(lat, sunway.TestChip(4, 64*1024),
			swlb.Options{UseCPEs: true, Fused: true, ComputeEff: 0.5, BZ: 6})
	}
	got, err := Run(full, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Rho {
		if ref.Rho[i] != got.Rho[i] || math.Abs(ref.Ux[i]-got.Ux[i]) != 0 {
			t.Fatalf("full stack with BCs diverged at %d", i)
		}
	}
	// And the channel actually flows.
	mid := ref.Idx(8, 5, 3)
	if ref.Ux[mid] < 0.01 {
		t.Errorf("channel not flowing: Ux=%v", ref.Ux[mid])
	}
}

// TestFullStackGPUCluster: the same distributed composition with the GPU
// node model as the per-rank kernel driver — a functional model of the
// paper's MPI+CUDA stack (§IV-E).
func TestFullStackGPUCluster(t *testing.T) {
	base := Options{
		GNX: 16, GNY: 12, GNZ: 6,
		Tau:       0.7,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Init: shearInit,
	}
	refOpts := base
	refOpts.PX, refOpts.PY = 1, 1
	ref, err := Run(refOpts, 10)
	if err != nil {
		t.Fatal(err)
	}
	full := base
	full.PX, full.PY = 2, 1
	full.Stepper = func(lat *core.Lattice) (Stepper, error) {
		return gpu.NewEngine(lat, gpu.RTX3090Cluster, gpu.Fig11Final())
	}
	got, err := Run(full, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Rho {
		if ref.Rho[i] != got.Rho[i] || ref.Ux[i] != got.Ux[i] {
			t.Fatalf("GPU-cluster stack diverged at %d", i)
		}
	}
}
