package psolve

import (
	"bytes"
	"testing"

	"sunwaylb/internal/fault"
	"sunwaylb/internal/trace"
)

// TestSupervisedRunTraceTimeline is the tracing acceptance scenario: a
// supervised 2×2 run with an injected crash and an injected straggler
// must produce a timeline that (a) exports to Chrome JSON and
// round-trips through ReadChrome+Validate, and (b) analyses to the
// expected story — per-rank step spans, the crash/rank-death/restart
// instants, and a straggler flag on the Sim clock for the slowed rank.
func TestSupervisedRunTraceTimeline(t *testing.T) {
	const steps = 30
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	tracer := trace.New(trace.Options{})
	opts.Trace = tracer

	plan, err := fault.ParsePlan("seed=42;crash@rank=1,step=13;straggle@rank=3,x=3")
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Supervise(SupervisorOptions{
		Opts:            opts,
		Steps:           steps,
		CheckpointEvery: 5,
		MaxRestarts:     1,
		Injector:        fault.NewInjector(plan),
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (stats: %s)", err, stats)
	}
	if got == nil {
		t.Fatal("supervised run returned no field")
	}
	if stats.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", stats.Restarts)
	}

	events := tracer.Events()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}

	// Export round trip: the file must parse back and validate.
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(back); err != nil {
		t.Fatalf("exported timeline invalid: %v", err)
	}

	// Analysis tells the recovery story.
	rep := trace.Analyze(back)
	if rep.Steps < steps {
		t.Fatalf("busiest rank recorded %d steps, want ≥ %d (restart replays)", rep.Steps, steps)
	}
	for _, name := range []string{"fault-crash", "rank-dead", "restart", "attempt", "ckpt-accepted"} {
		if rep.Instants[name] == 0 {
			t.Errorf("instant %q missing from analysis: %v", name, rep.Instants)
		}
	}
	if rep.FlowsOut == 0 || rep.FlowsIn == 0 {
		t.Errorf("no message flows recorded: %d/%d", rep.FlowsOut, rep.FlowsIn)
	}

	// The ×3 straggler must be flagged on the Sim clock (the wall clock
	// measures real host time, which the model does not slow down).
	var flagged bool
	for _, s := range rep.Stragglers {
		if s.Rank == 3 && s.Clock == trace.Sim {
			flagged = true
			if s.Ratio < 1.5 {
				t.Errorf("straggler ratio = %g, want ≥ 1.5", s.Ratio)
			}
		}
	}
	if !flagged {
		t.Errorf("rank 3 (×3 straggler) not flagged: %+v", rep.Stragglers)
	}

	// Per-rank step spans exist for all four ranks on both clocks.
	seen := make(map[int]bool)
	for _, rs := range rep.Ranks {
		if rs.Clock == trace.Wall && rs.Steps > 0 {
			seen[rs.Rank] = true
		}
	}
	for rank := 0; rank < 4; rank++ {
		if !seen[rank] {
			t.Errorf("rank %d has no wall-clock step spans", rank)
		}
	}
}

// TestRunWithoutTracer pins the disabled path: a nil Trace option must
// run exactly as before and record nothing.
func TestRunWithoutTracer(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	if _, err := Run(opts, 5); err != nil {
		t.Fatalf("untraced run failed: %v", err)
	}
	var tr *trace.Tracer
	if tr.Enabled() || tr.Events() != nil {
		t.Fatal("nil tracer not inert")
	}
}
