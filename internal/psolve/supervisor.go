package psolve

// Self-healing run supervisor: the recovery loop around the §IV-B
// checkpoint/restart controller, upgraded with severity-aware recovery
// over the multi-level in-memory checkpoint hierarchy (internal/resil).
//
// A supervised run takes two kinds of state copies: periodic in-memory
// snapshot waves (L1 per-rank copy, L2 buddy copy, L3 XOR parity —
// cheap, every few steps) and periodic health-gated, CRC-verified disk
// checkpoints (L4 — expensive, rare). On a failure the supervisor
// classifies the damage before deciding how to heal:
//
//   - Injected rank deaths covering at most one member per parity group
//     (and within the spare budget) are repaired from memory: the dead
//     blocks come back from a buddy copy or the parity equation, the
//     world restarts at full size on spare ranks, and the run resumes
//     from the latest snapshot wave — no disk access, no shrink, and at
//     most SnapshotEvery-1 steps to replay.
//   - Everything else — multi-loss inside one parity group, corrupted
//     deposits, diverged health checks, non-injected errors — escalates
//     to the PR 1 path: roll back to the last verified-good L4
//     checkpoint, optionally shrinking the world.
//
// Because the solver is deterministic, both paths produce states
// bit-identical to a fault-free run.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"sunwaylb/internal/core"
	"sunwaylb/internal/decomp"
	"sunwaylb/internal/fault"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/perf"
	"sunwaylb/internal/resil"
	"sunwaylb/internal/swio"
	"sunwaylb/internal/trace"
)

// ErrCanceled reports that a supervised run was stopped through its
// context before reaching the target step count. The run is not broken:
// the supervisor drains first — it preserves the newest recoverable
// state as an L4 checkpoint at CheckpointPath — so a canceled job can be
// resumed later via Opts.Restore. Callers test with errors.Is.
var ErrCanceled = errors.New("psolve: run canceled")

// SupervisorOptions configures a supervised distributed run.
type SupervisorOptions struct {
	// Ctx, when non-nil, bounds the run's lifetime. Cancellation tears
	// the current world down promptly (blocked receives wake, compute
	// loops observe it at the next step boundary), after which the
	// supervisor drains — writes the newest recoverable state to
	// CheckpointPath — and returns an error wrapping ErrCanceled instead
	// of restarting. A nil Ctx preserves the original run-to-completion
	// behaviour.
	Ctx context.Context
	// ContainPanics runs every world in bulkhead mode: a panic in solver
	// code becomes that rank's error (wrapping mpi.ErrRankPanic) and the
	// attempt fails through the normal escalation path instead of
	// crashing the host process. Service deployments set this; the CLI
	// keeps the default loud crash.
	ContainPanics bool
	// Opts is the base solver configuration. Opts.Restore, if set,
	// seeds the supervisor's last-good state (resume + rollback base).
	Opts Options
	// Steps is the target step count.
	Steps int
	// CheckpointEvery takes a health-gated L4 checkpoint every N
	// completed steps (0 disables disk checkpointing: an escalated
	// failure restarts from the beginning).
	CheckpointEvery int
	// CheckpointPath is the checkpoint file (atomic rename + retry).
	// Empty keeps verified checkpoints in memory only.
	CheckpointPath string
	// MaxRestarts bounds the recovery budget (hot swaps and disk
	// rollbacks combined); the run fails once a restart would exceed it.
	MaxRestarts int
	// AllowShrink re-decomposes onto one fewer rank after an escalated
	// rank-death failure (shrinking recovery), down to MinRanks. Hot
	// swaps never shrink.
	AllowShrink bool
	// MinRanks floors shrinking recovery (default 1).
	MinRanks int
	// Injector, if non-nil, drives deterministic fault injection: rank
	// crashes, heartbeat flaps, message faults (via the mpi hook) and
	// checkpoint corruption.
	Injector *fault.Injector
	// RecvTimeout bounds every receive; 0 defaults to 5 s when an
	// injector is present (dropped messages must become ErrTimeout, not
	// hangs) and to no deadline otherwise.
	RecvTimeout time.Duration
	// Retry is the checkpoint-write retry policy (zero = defaults).
	Retry swio.RetryPolicy
	// Logf receives recovery-path diagnostics (nil = silent).
	Logf func(format string, args ...any)

	// SnapshotEvery runs an in-memory snapshot wave every N completed
	// steps (0 disables the memory hierarchy entirely).
	SnapshotEvery int
	// Levels selects the active checkpoint levels. Zero means L4 only,
	// which is the PR 1 behaviour; resil.L1|resil.L2|resil.L3|resil.L4
	// enables the full hierarchy.
	Levels resil.Levels
	// GroupSize is the parity-group size (default 4): contiguous rank
	// intervals whose members buddy and parity-protect each other. Any
	// single loss per group is memory-repairable.
	GroupSize int
	// SpareRanks is the hot-swap budget: how many dead ranks may be
	// replaced by spares (world size preserved) before rank loss
	// escalates to the disk path.
	SpareRanks int
	// Detector selects failure detection: "deadline" (default, the PR 1
	// fixed receive deadline) or "phi" (heartbeat-driven phi-accrual
	// suspicion with the deadline kept as a last resort).
	Detector string
	// PhiThreshold overrides the phi detector's suspicion threshold
	// (0 = mpi.DefaultPhiThreshold).
	PhiThreshold float64
	// StragglerWallDelay, when > 0, makes injected stragglers actually
	// sleep (factor−1)×delay per step on the wall clock — so detector
	// tests exercise real slowness, not just the performance model.
	StragglerWallDelay time.Duration
}

// Supervise runs a distributed simulation to completion under the
// recovery loop and returns the gathered global field plus recovery
// metrics. The returned error is non-nil only when the restart budget is
// exhausted or the configuration is unusable.
func Supervise(o SupervisorOptions) (field *core.MacroField, stats perf.RecoveryStats, err error) {
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if o.Steps <= 0 {
		return nil, stats, fmt.Errorf("psolve: supervisor needs Steps > 0")
	}
	opts := o.Opts
	if opts.PX == 0 || opts.PY == 0 {
		opts.PX, opts.PY = mpi.FactorGrid(1, opts.GNX, opts.GNY)
	}
	minRanks := o.MinRanks
	if minRanks < 1 {
		minRanks = 1
	}
	levels := o.Levels
	if levels == 0 {
		levels = resil.L4 // PR 1 behaviour: disk only
	}
	groupSize := o.GroupSize
	if groupSize < 1 {
		groupSize = 4
	}
	// lastGood is the L4 rollback target: only ever a state that passed
	// the health gate and read back through CRC validation (or the
	// caller's explicit restore seed).
	lastGood := opts.Restore
	opts.Restore = nil
	ranks := opts.PX * opts.PY
	writeAttempts := 0 // checkpoint writes across all attempts (1-based index for fault plans)
	sparesLeft := o.SpareRanks

	// store models every rank's local memory for the L1–L3 hierarchy.
	var store *resil.Store
	if levels.Memory() && o.SnapshotEvery > 0 {
		store, err = newStoreFor(&opts, ranks, groupSize)
		if err != nil {
			return nil, stats, err
		}
	}
	defer func() {
		if store != nil {
			stats.SnapshotBytes = store.Bytes()
		}
	}()
	if o.Injector != nil {
		o.Injector.ExpandGroups(groupSize, ranks)
	}
	// resume, when non-nil, is a one-shot memory-recovery state that
	// overrides lastGood for exactly the next attempt.
	var resume *core.Lattice

	// ctl is the control-plane timeline: restarts, swaps and attempt
	// markers live on the supervisor pseudo-rank, not on any solver rank.
	ctl := opts.Trace.ForRank(trace.RankSupervisor)
	if o.Injector != nil {
		o.Injector.SetTracer(opts.Trace)
	}

	for attempt := 0; ; attempt++ {
		ctl.InstantV(trace.Wall, trace.TrackCtl, "attempt", ctl.Now(), float64(attempt))
		if o.Injector != nil {
			o.Injector.BeginAttempt()
		}
		w, werr := mpi.NewWorld(ranks)
		if werr != nil {
			return nil, stats, werr
		}
		w.SetTracer(opts.Trace)
		w.SetContainPanics(o.ContainPanics)
		if o.Injector != nil {
			w.SetFaultHook(o.Injector)
		}
		timeout := o.RecvTimeout
		if timeout == 0 && o.Injector != nil {
			timeout = 5 * time.Second
		}
		if timeout > 0 {
			w.SetRecvTimeout(timeout)
		}
		if o.Detector == "phi" {
			det := mpi.NewPhiDetector()
			if o.PhiThreshold > 0 {
				det.Threshold = o.PhiThreshold
			}
			w.SetDetector(det)
		}

		runOpts := opts
		restore := lastGood
		if resume != nil {
			restore = resume
			resume = nil
		}
		runOpts.Restore = restore
		resumeStep := 0
		if restore != nil {
			resumeStep = restore.Step()
		}

		var result *core.MacroField
		var maxStep atomic.Int64
		maxStep.Store(int64(resumeStep))

		body := func(c *mpi.Comm) error {
			s, err := New(c, runOpts)
			if err != nil {
				return err
			}
			if o.Injector != nil {
				// Straggler injection slows the performance model; the
				// factor inflates the Sim-clock step spans so the trace
				// analysis sees the slow rank. With StragglerWallDelay it
				// additionally slows the host wall clock (below), which is
				// what the failure detector observes.
				s.StragglerFactor = o.Injector.StragglerFactor(c.Rank())
			}
			for s.Lat.Step() < o.Steps {
				step := s.Lat.Step()
				// Step-boundary cancellation check: the watcher goroutine
				// below wakes blocked receives, but a rank deep in compute
				// only observes cancellation here.
				if o.Ctx != nil && o.Ctx.Err() != nil {
					return fmt.Errorf("rank %d at step %d: %w", c.Rank(), step, ErrCanceled)
				}
				if o.Injector == nil || !o.Injector.FlapNow(c.Rank(), step) {
					c.Heartbeat()
				}
				if o.Injector != nil && o.Injector.CrashNow(c.Rank(), step) {
					cerr := fmt.Errorf("rank %d at step %d: %w", c.Rank(), step, fault.ErrInjectedCrash)
					c.Crash(cerr)
					return cerr
				}
				if o.StragglerWallDelay > 0 && s.StragglerFactor > 1 {
					time.Sleep(time.Duration(float64(o.StragglerWallDelay) * (s.StragglerFactor - 1)))
				}
				s.Step()
				for done := int64(s.Lat.Step()); ; {
					cur := maxStep.Load()
					if done <= cur || maxStep.CompareAndSwap(cur, done) {
						break
					}
				}
				if store != nil && s.Lat.Step()%o.SnapshotEvery == 0 && s.Lat.Step() < o.Steps {
					if serr := s.ResilCapture(store, levels); serr != nil {
						return serr
					}
				}
				if levels.Has(resil.L4) && o.CheckpointEvery > 0 &&
					s.Lat.Step()%o.CheckpointEvery == 0 && s.Lat.Step() < o.Steps {
					// Collective: every rank gathers, root validates and
					// publishes while the others proceed.
					tr := c.Trace()
					var g *core.Lattice
					var gerr error
					func() {
						// Deferred close: a collective aborted by a
						// dead peer must still nest its span.
						if tr != nil {
							defer tr.Scope(trace.TrackCkpt, "ckpt-gather")()
						}
						g, gerr = s.GatherLattice(0)
					}()
					if gerr != nil {
						return gerr
					}
					if c.Rank() == 0 {
						if cerr := superviseCheckpoint(&o, c, g, store, &stats, &writeAttempts, &lastGood, logf); cerr != nil {
							return cerr
						}
					}
				}
			}
			if g := s.GatherMacro(0); g != nil {
				result = g
			}
			return nil
		}

		// The watcher tears the world down the moment the context fires,
		// so ranks blocked in receives or barriers wake with ErrWorldDown
		// instead of waiting out their deadlines.
		var watchDone chan struct{}
		if o.Ctx != nil {
			watchDone = make(chan struct{})
			go func() {
				select {
				case <-o.Ctx.Done():
					w.Fail(fmt.Errorf("%w: %v", ErrCanceled, context.Cause(o.Ctx)))
				case <-watchDone:
				}
			}()
		}
		runErr := mpi.RunWorld(w, body)
		if watchDone != nil {
			close(watchDone)
		}
		if runErr == nil {
			return result, stats, nil
		}
		if o.Ctx != nil && o.Ctx.Err() != nil {
			return nil, stats, superviseDrain(&o, opts, store, lastGood, int(maxStep.Load()), &stats, ctl, logf)
		}
		cause := w.FailureCause()
		if cause == nil {
			cause = runErr
		}
		if attempt >= o.MaxRestarts {
			return nil, stats, fmt.Errorf("psolve: giving up after %d restarts (%s): %w",
				stats.Restarts, stats.String(), runErr)
		}

		// Recovery: classify the damage, then repair from memory (hot
		// swap onto spares) or escalate to the disk rollback path.
		recoveryStart := time.Now()
		stats.Restarts++
		dead, injected := classifyDead(w.DeadRanks())

		if g, rec, ok := planHotSwap(store, dead, injected, sparesLeft, &opts); ok {
			resume = g
			sparesLeft -= len(dead)
			stats.HotSwaps++
			stats.SparesUsed += len(dead)
			stats.BuddyRestores += rec.BuddyRestores
			stats.Reconstructions += rec.Reconstructions
			if lost := int(maxStep.Load()) - rec.Step; lost > 0 {
				stats.LostSteps += lost
			}
			store.Invalidate(dead)
			store.Reseed(rec)
			ctl.InstantV(trace.Wall, trace.TrackCtl, "hotswap", ctl.Now(), float64(len(dead)))
			logf("supervisor: hot swap %d: ranks %v replaced by spares (%d buddy, %d parity); resuming from snapshot step %d",
				stats.HotSwaps, dead, rec.BuddyRestores, rec.Reconstructions, rec.Step)
		} else {
			// Escalate: disk rollback, optionally shrinking.
			stats.DiskRollbacks++
			nextResume := 0
			if lastGood != nil {
				nextResume = lastGood.Step()
			}
			if lost := int(maxStep.Load()) - nextResume; lost > 0 {
				stats.LostSteps += lost
			}
			rankLoss := errors.Is(cause, fault.ErrInjectedCrash) || errors.Is(cause, mpi.ErrRankDead)
			if o.AllowShrink && rankLoss && ranks > minRanks {
				ranks--
				opts.PX, opts.PY = mpi.FactorGrid(ranks, opts.GNX, opts.GNY)
				stats.Shrinks++
				ctl.InstantV(trace.Wall, trace.TrackCtl, "shrink", ctl.Now(), float64(ranks))
				logf("supervisor: shrinking recovery onto %d ranks (%d×%d)", ranks, opts.PX, opts.PY)
			}
			if store != nil {
				// The memory hierarchy is void after an escalated failure:
				// its generations may hold states from the abandoned
				// timeline (and a shrink changes the block layout). Rebuild
				// empty; coverage returns at the next snapshot wave.
				store, err = newStoreFor(&opts, ranks, groupSize)
				if err != nil {
					return nil, stats, err
				}
			}
			ctl.InstantV(trace.Wall, trace.TrackCtl, "restart", ctl.Now(), float64(nextResume))
			logf("supervisor: restart %d/%d after %v; resuming from step %d (lost %d steps)",
				stats.Restarts, o.MaxRestarts, cause, nextResume, stats.LostSteps)
		}
		stats.TimeToRecover += time.Since(recoveryStart)
		stats.Downtime += time.Since(recoveryStart)
	}
}

// superviseDrain handles cooperative shutdown: the run's context was
// canceled, so instead of restarting, preserve the newest recoverable
// state as an L4 checkpoint and report ErrCanceled. The best state is
// whichever is newer of the last verified disk checkpoint and the latest
// complete in-memory snapshot wave — the same sources the recovery paths
// trust, so a drained checkpoint is always resumable.
func superviseDrain(o *SupervisorOptions, opts Options, store *resil.Store,
	lastGood *core.Lattice, atStep int, stats *perf.RecoveryStats,
	ctl *trace.RankTracer, logf func(string, ...any)) error {
	drain := lastGood
	if store != nil {
		if rec, ok := store.LatestWave(); ok && (drain == nil || rec.Step > drain.Step()) {
			if g, aerr := resil.Assemble(rec, opts.GNX, opts.GNY, opts.GNZ,
				opts.Tau, opts.Smagorinsky, opts.Force); aerr == nil {
				drain = g
			}
		}
	}
	drainStep := 0
	if drain != nil {
		drainStep = drain.Step()
		if o.CheckpointPath != "" {
			if werr := swio.CheckpointRetry(o.CheckpointPath, drain, o.Retry); werr != nil {
				logf("supervisor: drain checkpoint at step %d failed: %v", drainStep, werr)
			} else {
				stats.CheckpointsWritten++
				logf("supervisor: drained; checkpoint at step %d written to %s", drainStep, o.CheckpointPath)
			}
		}
	}
	ctl.InstantV(trace.Wall, trace.TrackCtl, "canceled", ctl.Now(), float64(drainStep))
	return fmt.Errorf("psolve: canceled at step %d (drained at step %d): %w", atStep, drainStep, ErrCanceled)
}

// newStoreFor builds an empty snapshot store for the current layout.
func newStoreFor(opts *Options, ranks, groupSize int) (*resil.Store, error) {
	blocks, err := decomp.Decompose2D(opts.GNX, opts.GNY, opts.GNZ, opts.PX, opts.PY)
	if err != nil {
		return nil, err
	}
	return resil.NewStore(ranks, groupSize, blocks)
}

// classifyDead separates root failures from collateral ones in the
// world's death ledger. A rank that died on its own error (an injected
// crash, a solver error, a timeout) is a root death; a rank whose cause
// wraps ErrRankDead or ErrWorldDown merely tripped over someone else's
// (that includes phi-detector suspicion, which wraps ErrRankDead).
// injected reports whether every root death was an injected crash —
// the only damage class eligible for memory repair.
func classifyDead(ledger map[int]error) (dead []int, injected bool) {
	injected = true
	for r, e := range ledger {
		if e == nil {
			continue // clean exit
		}
		if errors.Is(e, mpi.ErrRankDead) || errors.Is(e, mpi.ErrWorldDown) {
			continue // collateral
		}
		dead = append(dead, r)
		if !errors.Is(e, fault.ErrInjectedCrash) {
			injected = false
		}
	}
	sort.Ints(dead)
	return dead, injected
}

// planHotSwap decides whether the failure is memory-repairable and, if
// so, assembles the recovery lattice. Two shapes qualify:
//
//   - injected rank deaths within the spare budget whose blocks the
//     store can restore (one loss per parity group, valid deposits);
//   - a world torn down with no root deaths at all (e.g. every failed
//     receive was collateral suspicion of a flapping-but-alive rank),
//     which resumes from the latest complete snapshot wave for free.
func planHotSwap(store *resil.Store, dead []int, injected bool, sparesLeft int,
	opts *Options) (*core.Lattice, *resil.Recovery, bool) {
	if store == nil || !injected {
		return nil, nil, false
	}
	if len(dead) > sparesLeft {
		return nil, nil, false
	}
	rec, ok := store.RecoveryPlan(dead)
	if !ok {
		return nil, nil, false
	}
	g, err := resil.Assemble(rec, opts.GNX, opts.GNY, opts.GNZ,
		opts.Tau, opts.Smagorinsky, opts.Force)
	if err != nil {
		return nil, nil, false
	}
	return g, rec, true
}

// superviseCheckpoint runs on rank 0 at an L4 checkpoint boundary:
// health gate, durable write (with retry), optional injected corruption,
// and read-back verification. Only a state that survives all of it
// becomes the new rollback target; a corrupted write keeps the previous
// one.
func superviseCheckpoint(o *SupervisorOptions, c *mpi.Comm, g *core.Lattice,
	store *resil.Store, stats *perf.RecoveryStats, writeAttempts *int,
	lastGood **core.Lattice, logf func(string, ...any)) error {
	tr := c.Trace()
	if _, herr := g.CheckHealth(); herr != nil {
		// Never checkpoint a diverged state — and a diverged state also
		// means the run itself is unusable: tear down and roll back
		// (after SDC the replay is clean; genuine instability exhausts
		// the restart budget instead of writing garbage).
		stats.CheckpointsRejected++
		if tr != nil {
			tr.InstantV(trace.Wall, trace.TrackCkpt, "ckpt-rejected", tr.Now(), float64(g.Step()))
		}
		err := fmt.Errorf("psolve: health gate refused checkpoint at step %d: %w", g.Step(), herr)
		c.Abort(err)
		return err
	}
	*writeAttempts++
	idx := *writeAttempts

	var restored *core.Lattice
	var diskBytes int64
	if o.CheckpointPath != "" {
		var endWrite func()
		if tr != nil {
			endWrite = tr.Scope(trace.TrackCkpt, "ckpt-write")
		}
		err := swio.CheckpointRetry(o.CheckpointPath, g, o.Retry)
		if endWrite != nil {
			endWrite()
		}
		if err != nil {
			return err
		}
		if fi, serr := os.Stat(o.CheckpointPath); serr == nil {
			diskBytes = fi.Size()
		}
		if o.Injector != nil {
			corrupted, err := o.Injector.CorruptCheckpointFile(o.CheckpointPath, idx)
			if err != nil {
				return err
			}
			if corrupted {
				logf("supervisor: fault plan corrupted checkpoint write %d", idx)
			}
		}
		var endVerify func()
		if tr != nil {
			endVerify = tr.Scope(trace.TrackCkpt, "ckpt-verify")
		}
		restored, err = swio.Restart(o.CheckpointPath)
		if endVerify != nil {
			endVerify()
		}
		if err != nil {
			stats.CheckpointsRejected++
			if tr != nil {
				tr.InstantV(trace.Wall, trace.TrackCkpt, "ckpt-rejected", tr.Now(), float64(idx))
			}
			logf("supervisor: checkpoint %d failed verification (%v); keeping step-%d rollback target",
				idx, err, lastGoodStep(*lastGood))
			return nil
		}
	} else {
		var buf bytes.Buffer
		var endWrite func()
		if tr != nil {
			endWrite = tr.Scope(trace.TrackCkpt, "ckpt-write")
		}
		err := swio.WriteCheckpoint(&buf, g)
		if endWrite != nil {
			endWrite()
		}
		if err != nil {
			return err
		}
		data := buf.Bytes()
		diskBytes = int64(len(data))
		if o.Injector != nil && o.Injector.CorruptCheckpointBytes(data, idx) {
			logf("supervisor: fault plan corrupted in-memory checkpoint %d", idx)
		}
		var endVerify func()
		if tr != nil {
			endVerify = tr.Scope(trace.TrackCkpt, "ckpt-verify")
		}
		restored, err = swio.ReadCheckpoint(bytes.NewReader(data))
		if endVerify != nil {
			endVerify()
		}
		if err != nil {
			stats.CheckpointsRejected++
			if tr != nil {
				tr.InstantV(trace.Wall, trace.TrackCkpt, "ckpt-rejected", tr.Now(), float64(idx))
			}
			logf("supervisor: checkpoint %d failed verification (%v); keeping step-%d rollback target",
				idx, err, lastGoodStep(*lastGood))
			return nil
		}
	}
	*lastGood = restored
	stats.CheckpointsWritten++
	if store != nil {
		store.AccountDisk(diskBytes)
	}
	if tr != nil {
		tr.InstantV(trace.Wall, trace.TrackCkpt, "ckpt-accepted", tr.Now(), float64(g.Step()))
	}
	return nil
}

func lastGoodStep(l *core.Lattice) int {
	if l == nil {
		return 0
	}
	return l.Step()
}
