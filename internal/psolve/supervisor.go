package psolve

// Self-healing run supervisor: the recovery loop around the §IV-B
// checkpoint/restart controller. A supervised run takes periodic
// health-gated checkpoints (a diverged state is never accepted as a
// rollback target), verifies every checkpoint by reading it back through
// the CRC-validated decoder, and on any failure — a crashed rank, a
// timed-out or failed collective, a diverged health check — tears the
// world down, optionally re-decomposes onto fewer ranks (shrinking
// recovery), restores from the last verified-good checkpoint and
// resumes. Because the solver is deterministic, replayed steps are
// bit-identical to the steps the failure destroyed.

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"sunwaylb/internal/core"
	"sunwaylb/internal/fault"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/perf"
	"sunwaylb/internal/swio"
	"sunwaylb/internal/trace"
)

// SupervisorOptions configures a supervised distributed run.
type SupervisorOptions struct {
	// Opts is the base solver configuration. Opts.Restore, if set,
	// seeds the supervisor's last-good state (resume + rollback base).
	Opts Options
	// Steps is the target step count.
	Steps int
	// CheckpointEvery takes a health-gated checkpoint every N completed
	// steps (0 disables checkpointing: every failure restarts from the
	// beginning).
	CheckpointEvery int
	// CheckpointPath is the checkpoint file (atomic rename + retry).
	// Empty keeps verified checkpoints in memory only.
	CheckpointPath string
	// MaxRestarts bounds the recovery budget; the run fails once a
	// restart would exceed it.
	MaxRestarts int
	// AllowShrink re-decomposes onto one fewer rank after a rank-death
	// failure (shrinking recovery), down to MinRanks.
	AllowShrink bool
	// MinRanks floors shrinking recovery (default 1).
	MinRanks int
	// Injector, if non-nil, drives deterministic fault injection: rank
	// crashes, message faults (via the mpi hook) and checkpoint
	// corruption.
	Injector *fault.Injector
	// RecvTimeout bounds every receive; 0 defaults to 5 s when an
	// injector is present (dropped messages must become ErrTimeout, not
	// hangs) and to no deadline otherwise.
	RecvTimeout time.Duration
	// Retry is the checkpoint-write retry policy (zero = defaults).
	Retry swio.RetryPolicy
	// Logf receives recovery-path diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

// Supervise runs a distributed simulation to completion under the
// recovery loop and returns the gathered global field plus recovery
// metrics. The returned error is non-nil only when the restart budget is
// exhausted or the configuration is unusable.
func Supervise(o SupervisorOptions) (*core.MacroField, perf.RecoveryStats, error) {
	var stats perf.RecoveryStats
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if o.Steps <= 0 {
		return nil, stats, fmt.Errorf("psolve: supervisor needs Steps > 0")
	}
	opts := o.Opts
	if opts.PX == 0 || opts.PY == 0 {
		opts.PX, opts.PY = mpi.FactorGrid(1, opts.GNX, opts.GNY)
	}
	minRanks := o.MinRanks
	if minRanks < 1 {
		minRanks = 1
	}
	// lastGood is the rollback target: only ever a state that passed the
	// health gate and read back through CRC validation (or the caller's
	// explicit restore seed).
	lastGood := opts.Restore
	opts.Restore = nil
	ranks := opts.PX * opts.PY
	writeAttempts := 0 // checkpoint writes across all attempts (1-based index for fault plans)

	// ctl is the control-plane timeline: restarts, shrinks and attempt
	// markers live on the supervisor pseudo-rank, not on any solver rank.
	ctl := opts.Trace.ForRank(trace.RankSupervisor)
	if o.Injector != nil {
		o.Injector.SetTracer(opts.Trace)
	}

	for attempt := 0; ; attempt++ {
		ctl.InstantV(trace.Wall, trace.TrackCtl, "attempt", ctl.Now(), float64(attempt))
		w, err := mpi.NewWorld(ranks)
		if err != nil {
			return nil, stats, err
		}
		w.SetTracer(opts.Trace)
		if o.Injector != nil {
			w.SetFaultHook(o.Injector)
		}
		timeout := o.RecvTimeout
		if timeout == 0 && o.Injector != nil {
			timeout = 5 * time.Second
		}
		if timeout > 0 {
			w.SetRecvTimeout(timeout)
		}

		runOpts := opts
		runOpts.Restore = lastGood
		resumeStep := 0
		if lastGood != nil {
			resumeStep = lastGood.Step()
		}

		var result *core.MacroField
		var maxStep atomic.Int64
		maxStep.Store(int64(resumeStep))

		body := func(c *mpi.Comm) error {
			s, err := New(c, runOpts)
			if err != nil {
				return err
			}
			if o.Injector != nil {
				// Straggler injection only slows the performance model;
				// the factor inflates the Sim-clock step spans so the
				// trace analysis sees the slow rank.
				s.StragglerFactor = o.Injector.StragglerFactor(c.Rank())
			}
			for s.Lat.Step() < o.Steps {
				step := s.Lat.Step()
				if o.Injector != nil && o.Injector.CrashNow(c.Rank(), step) {
					cerr := fmt.Errorf("rank %d at step %d: %w", c.Rank(), step, fault.ErrInjectedCrash)
					c.Crash(cerr)
					return cerr
				}
				s.Step()
				for done := int64(s.Lat.Step()); ; {
					cur := maxStep.Load()
					if done <= cur || maxStep.CompareAndSwap(cur, done) {
						break
					}
				}
				if o.CheckpointEvery > 0 && s.Lat.Step()%o.CheckpointEvery == 0 && s.Lat.Step() < o.Steps {
					// Collective: every rank gathers, root validates and
					// publishes while the others proceed.
					tr := c.Trace()
					var g *core.Lattice
					var gerr error
					func() {
						// Deferred close: a collective aborted by a
						// dead peer must still nest its span.
						if tr != nil {
							defer tr.Scope(trace.TrackCkpt, "ckpt-gather")()
						}
						g, gerr = s.GatherLattice(0)
					}()
					if gerr != nil {
						return gerr
					}
					if c.Rank() == 0 {
						if cerr := superviseCheckpoint(&o, c, g, &stats, &writeAttempts, &lastGood, logf); cerr != nil {
							return cerr
						}
					}
				}
			}
			if g := s.GatherMacro(0); g != nil {
				result = g
			}
			return nil
		}

		runErr := mpi.RunWorld(w, body)
		if runErr == nil {
			return result, stats, nil
		}
		cause := w.FailureCause()
		if cause == nil {
			cause = runErr
		}
		if attempt >= o.MaxRestarts {
			return nil, stats, fmt.Errorf("psolve: giving up after %d restarts (%s): %w",
				stats.Restarts, stats.String(), runErr)
		}

		// Rollback: account lost progress, optionally shrink, resume
		// from the last verified-good state.
		rollback := time.Now()
		stats.Restarts++
		nextResume := 0
		if lastGood != nil {
			nextResume = lastGood.Step()
		}
		if lost := int(maxStep.Load()) - nextResume; lost > 0 {
			stats.LostSteps += lost
		}
		rankLoss := errors.Is(cause, fault.ErrInjectedCrash) || errors.Is(cause, mpi.ErrRankDead)
		if o.AllowShrink && rankLoss && ranks > minRanks {
			ranks--
			opts.PX, opts.PY = mpi.FactorGrid(ranks, opts.GNX, opts.GNY)
			stats.Shrinks++
			ctl.InstantV(trace.Wall, trace.TrackCtl, "shrink", ctl.Now(), float64(ranks))
			logf("supervisor: shrinking recovery onto %d ranks (%d×%d)", ranks, opts.PX, opts.PY)
		}
		ctl.InstantV(trace.Wall, trace.TrackCtl, "restart", ctl.Now(), float64(nextResume))
		logf("supervisor: restart %d/%d after %v; resuming from step %d (lost %d steps)",
			stats.Restarts, o.MaxRestarts, cause, nextResume, stats.LostSteps)
		stats.TimeToRecover += time.Since(rollback)
	}
}

// superviseCheckpoint runs on rank 0 at a checkpoint boundary: health
// gate, durable write (with retry), optional injected corruption, and
// read-back verification. Only a state that survives all of it becomes
// the new rollback target; a corrupted write keeps the previous one.
func superviseCheckpoint(o *SupervisorOptions, c *mpi.Comm, g *core.Lattice,
	stats *perf.RecoveryStats, writeAttempts *int, lastGood **core.Lattice,
	logf func(string, ...any)) error {
	tr := c.Trace()
	if _, herr := g.CheckHealth(); herr != nil {
		// Never checkpoint a diverged state — and a diverged state also
		// means the run itself is unusable: tear down and roll back
		// (after SDC the replay is clean; genuine instability exhausts
		// the restart budget instead of writing garbage).
		stats.CheckpointsRejected++
		if tr != nil {
			tr.InstantV(trace.Wall, trace.TrackCkpt, "ckpt-rejected", tr.Now(), float64(g.Step()))
		}
		err := fmt.Errorf("psolve: health gate refused checkpoint at step %d: %w", g.Step(), herr)
		c.Abort(err)
		return err
	}
	*writeAttempts++
	idx := *writeAttempts

	var restored *core.Lattice
	if o.CheckpointPath != "" {
		var endWrite func()
		if tr != nil {
			endWrite = tr.Scope(trace.TrackCkpt, "ckpt-write")
		}
		err := swio.CheckpointRetry(o.CheckpointPath, g, o.Retry)
		if endWrite != nil {
			endWrite()
		}
		if err != nil {
			return err
		}
		if o.Injector != nil {
			corrupted, err := o.Injector.CorruptCheckpointFile(o.CheckpointPath, idx)
			if err != nil {
				return err
			}
			if corrupted {
				logf("supervisor: fault plan corrupted checkpoint write %d", idx)
			}
		}
		var endVerify func()
		if tr != nil {
			endVerify = tr.Scope(trace.TrackCkpt, "ckpt-verify")
		}
		restored, err = swio.Restart(o.CheckpointPath)
		if endVerify != nil {
			endVerify()
		}
		if err != nil {
			stats.CheckpointsRejected++
			if tr != nil {
				tr.InstantV(trace.Wall, trace.TrackCkpt, "ckpt-rejected", tr.Now(), float64(idx))
			}
			logf("supervisor: checkpoint %d failed verification (%v); keeping step-%d rollback target",
				idx, err, lastGoodStep(*lastGood))
			return nil
		}
	} else {
		var buf bytes.Buffer
		var endWrite func()
		if tr != nil {
			endWrite = tr.Scope(trace.TrackCkpt, "ckpt-write")
		}
		err := swio.WriteCheckpoint(&buf, g)
		if endWrite != nil {
			endWrite()
		}
		if err != nil {
			return err
		}
		data := buf.Bytes()
		if o.Injector != nil && o.Injector.CorruptCheckpointBytes(data, idx) {
			logf("supervisor: fault plan corrupted in-memory checkpoint %d", idx)
		}
		var endVerify func()
		if tr != nil {
			endVerify = tr.Scope(trace.TrackCkpt, "ckpt-verify")
		}
		restored, err = swio.ReadCheckpoint(bytes.NewReader(data))
		if endVerify != nil {
			endVerify()
		}
		if err != nil {
			stats.CheckpointsRejected++
			if tr != nil {
				tr.InstantV(trace.Wall, trace.TrackCkpt, "ckpt-rejected", tr.Now(), float64(idx))
			}
			logf("supervisor: checkpoint %d failed verification (%v); keeping step-%d rollback target",
				idx, err, lastGoodStep(*lastGood))
			return nil
		}
	}
	*lastGood = restored
	stats.CheckpointsWritten++
	if tr != nil {
		tr.InstantV(trace.Wall, trace.TrackCkpt, "ckpt-accepted", tr.Now(), float64(g.Step()))
	}
	return nil
}

func lastGoodStep(l *core.Lattice) int {
	if l == nil {
		return 0
	}
	return l.Step()
}
