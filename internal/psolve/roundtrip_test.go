package psolve

import (
	"bytes"
	"fmt"
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/swio"
)

// latticesIdentical asserts bit-identical populations, flags and step.
func latticesIdentical(t *testing.T, tag string, a, b *core.Lattice) {
	t.Helper()
	if a.Step() != b.Step() {
		t.Errorf("%s: step %d != %d", tag, a.Step(), b.Step())
	}
	if a.NX != b.NX || a.NY != b.NY || a.NZ != b.NZ {
		t.Fatalf("%s: dims %d×%d×%d != %d×%d×%d", tag, a.NX, a.NY, a.NZ, b.NX, b.NY, b.NZ)
	}
	fa, fb := a.Src(), b.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("%s: population %d differs (%g != %g)", tag, i, fa[i], fb[i])
		}
	}
	for i := range a.Flags {
		if a.Flags[i] != b.Flags[i] {
			t.Fatalf("%s: flag %d differs", tag, i)
		}
	}
}

// TestGatherCheckpointRestoreRoundTrip is the satellite round-trip:
// GatherLattice → swio.WriteCheckpoint → swio.ReadCheckpoint →
// Options.Restore must reproduce populations, flags and step counter
// bit-identically on 1-, 4- and 8-rank worlds.
func TestGatherCheckpointRestoreRoundTrip(t *testing.T) {
	base := chaosBase()
	const steps = 9

	for _, grid := range []struct{ px, py int }{{1, 1}, {2, 2}, {4, 2}} {
		grid := grid
		ranks := grid.px * grid.py
		t.Run(fmt.Sprintf("%dranks", ranks), func(t *testing.T) {
			opts := base
			opts.PX, opts.PY = grid.px, grid.py

			// Phase 1: run, gather, serialise through the checkpoint codec.
			var gathered *core.Lattice
			var blob []byte
			err := mpi.Run(ranks, func(c *mpi.Comm) error {
				s, err := New(c, opts)
				if err != nil {
					return err
				}
				for i := 0; i < steps; i++ {
					s.Step()
				}
				g, err := s.GatherLattice(0)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					gathered = g
					var buf bytes.Buffer
					if err := swio.WriteCheckpoint(&buf, g); err != nil {
						return err
					}
					blob = buf.Bytes()
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if gathered.Step() != steps {
				t.Fatalf("gathered step = %d, want %d", gathered.Step(), steps)
			}

			// Codec round trip is bit-exact.
			decoded, err := swio.ReadCheckpoint(bytes.NewReader(blob))
			if err != nil {
				t.Fatal(err)
			}
			latticesIdentical(t, "decode", gathered, decoded)

			// Phase 2: restore into a fresh world of the same shape and
			// gather again — scatter/gather through Options.Restore loses
			// nothing.
			ropts := opts
			ropts.Restore = decoded
			var regathered *core.Lattice
			err = mpi.Run(ranks, func(c *mpi.Comm) error {
				s, err := New(c, ropts)
				if err != nil {
					return err
				}
				if s.Lat.Step() != steps {
					return fmt.Errorf("rank %d restored at step %d, want %d", c.Rank(), s.Lat.Step(), steps)
				}
				g, err := s.GatherLattice(0)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					regathered = g
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			latticesIdentical(t, "restore+regather", gathered, regathered)
		})
	}
}
