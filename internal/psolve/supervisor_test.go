package psolve

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"sunwaylb/internal/fault"
)

// chaosBase is the shared physical problem for the supervisor tests:
// fully periodic with an obstacle crossing rank boundaries, matching the
// checkpoint tests.
func chaosBase() Options {
	return Options{
		GNX: 18, GNY: 14, GNZ: 8,
		Tau:       0.7,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Walls: func(gx, gy, gz int) bool { return gx == 9 && gy == 7 && gz >= 2 && gz <= 5 },
		Init:  shearInit,
	}
}

// TestSupervisorRecovers is the acceptance chaos scenario: a fixed-seed
// fault plan kills rank 3 mid-run and corrupts the second checkpoint
// file. The supervisor must detect both — the corruption at write
// verification (keeping the step-5 rollback target), the crash via the
// typed mpi errors — restore from the last verified-good checkpoint,
// finish the run, and produce a final field bit-identical to a
// fault-free reference (deterministic step replay).
func TestSupervisorRecovers(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	const steps = 30

	ref, err := Run(opts, steps)
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}

	plan, err := fault.ParsePlan("seed=42;crash@rank=3,step=13;corrupt@ckpt=2")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(plan)
	path := filepath.Join(t.TempDir(), "chaos.cpk")
	got, stats, err := Supervise(SupervisorOptions{
		Opts:            opts,
		Steps:           steps,
		CheckpointEvery: 5,
		CheckpointPath:  path,
		MaxRestarts:     2,
		Injector:        inj,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (stats: %s)", err, stats)
	}
	if got == nil {
		t.Fatal("supervised run returned no field")
	}
	if n, worst := fieldsEqual(ref, got); n != 0 {
		t.Fatalf("supervised run differs from fault-free reference in %d values (worst %g)", n, worst)
	}

	if stats.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", stats.Restarts)
	}
	if stats.CheckpointsRejected < 1 {
		t.Errorf("checkpoints rejected = %d, want ≥ 1 (injected corruption)", stats.CheckpointsRejected)
	}
	// Crash at step 13 rolls back to the step-5 checkpoint (the step-10
	// one was corrupted): 8 steps of lost progress.
	if stats.LostSteps != 8 {
		t.Errorf("lost steps = %d, want 8", stats.LostSteps)
	}
	fs := inj.Stats()
	if fs.Crashes != 1 || fs.CkptsCorrupted != 1 {
		t.Errorf("injector fired crashes=%d ckpts=%d, want 1/1", fs.Crashes, fs.CkptsCorrupted)
	}
}

// TestSupervisorShrinkingRecovery: after a rank death with AllowShrink,
// the run re-decomposes onto fewer ranks and still reproduces the
// fault-free result exactly (restart on a different process grid).
func TestSupervisorShrinkingRecovery(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	const steps = 20

	ref, err := Run(opts, steps)
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}

	inj := fault.NewInjector(fault.Plan{
		Seed:    7,
		Crashes: []fault.Crash{{Rank: 1, Step: 9}},
	})
	got, stats, err := Supervise(SupervisorOptions{
		Opts:            opts,
		Steps:           steps,
		CheckpointEvery: 4, // in-memory checkpoints
		MaxRestarts:     1,
		AllowShrink:     true,
		Injector:        inj,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (stats: %s)", err, stats)
	}
	if stats.Restarts != 1 || stats.Shrinks != 1 {
		t.Errorf("restarts=%d shrinks=%d, want 1/1", stats.Restarts, stats.Shrinks)
	}
	if n, worst := fieldsEqual(ref, got); n != 0 {
		t.Fatalf("shrunk recovery differs from reference in %d values (worst %g)", n, worst)
	}
}

// TestSupervisorHealthGate: a supersonic initial condition diverges; the
// health gate must refuse to checkpoint it and the run must fail once the
// restart budget is spent — never writing a garbage rollback target.
func TestSupervisorHealthGate(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 1
	opts.Init = func(gx, gy, gz int) (float64, float64, float64, float64) {
		return 1, 0.9, 0, 0 // far above the lattice sound speed
	}
	_, stats, err := Supervise(SupervisorOptions{
		Opts:            opts,
		Steps:           10,
		CheckpointEvery: 2,
		MaxRestarts:     1,
		Logf:            t.Logf,
	})
	if err == nil {
		t.Fatal("diverged run must exhaust the restart budget and fail")
	}
	if !strings.Contains(err.Error(), "health gate") {
		t.Errorf("error should carry the health-gate cause, got: %v", err)
	}
	if stats.CheckpointsWritten != 0 {
		t.Errorf("%d diverged checkpoints were accepted", stats.CheckpointsWritten)
	}
	if stats.CheckpointsRejected < 1 {
		t.Errorf("health gate rejected %d checkpoints, want ≥ 1", stats.CheckpointsRejected)
	}
}

// TestSupervisorRestartBudget: a crash with no checkpoints and a zero
// restart budget must surface the injected-crash cause.
func TestSupervisorRestartBudget(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 1
	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Rank: 0, Step: 3}}})
	_, stats, err := Supervise(SupervisorOptions{
		Opts:     opts,
		Steps:    10,
		Injector: inj,
	})
	if err == nil {
		t.Fatal("want failure with MaxRestarts=0")
	}
	if !errors.Is(err, fault.ErrInjectedCrash) {
		t.Errorf("error should wrap the injected crash, got: %v", err)
	}
	if stats.Restarts != 0 {
		t.Errorf("restarts = %d, want 0", stats.Restarts)
	}
}
