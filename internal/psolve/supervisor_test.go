package psolve

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sunwaylb/internal/core"
	"sunwaylb/internal/fault"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/resil"
	"sunwaylb/internal/swio"
)

// chaosBase is the shared physical problem for the supervisor tests:
// fully periodic with an obstacle crossing rank boundaries, matching the
// checkpoint tests.
func chaosBase() Options {
	return Options{
		GNX: 18, GNY: 14, GNZ: 8,
		Tau:       0.7,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Walls: func(gx, gy, gz int) bool { return gx == 9 && gy == 7 && gz >= 2 && gz <= 5 },
		Init:  shearInit,
	}
}

// TestSupervisorRecovers is the acceptance chaos scenario: a fixed-seed
// fault plan kills rank 3 mid-run and corrupts the second checkpoint
// file. The supervisor must detect both — the corruption at write
// verification (keeping the step-5 rollback target), the crash via the
// typed mpi errors — restore from the last verified-good checkpoint,
// finish the run, and produce a final field bit-identical to a
// fault-free reference (deterministic step replay).
func TestSupervisorRecovers(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	const steps = 30

	ref, err := Run(opts, steps)
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}

	plan, err := fault.ParsePlan("seed=42;crash@rank=3,step=13;corrupt@ckpt=2")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(plan)
	path := filepath.Join(t.TempDir(), "chaos.cpk")
	got, stats, err := Supervise(SupervisorOptions{
		Opts:            opts,
		Steps:           steps,
		CheckpointEvery: 5,
		CheckpointPath:  path,
		MaxRestarts:     2,
		Injector:        inj,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (stats: %s)", err, stats)
	}
	if got == nil {
		t.Fatal("supervised run returned no field")
	}
	if n, worst := fieldsEqual(ref, got); n != 0 {
		t.Fatalf("supervised run differs from fault-free reference in %d values (worst %g)", n, worst)
	}

	if stats.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", stats.Restarts)
	}
	if stats.CheckpointsRejected < 1 {
		t.Errorf("checkpoints rejected = %d, want ≥ 1 (injected corruption)", stats.CheckpointsRejected)
	}
	// Crash at step 13 rolls back to the step-5 checkpoint (the step-10
	// one was corrupted): 8 steps of lost progress.
	if stats.LostSteps != 8 {
		t.Errorf("lost steps = %d, want 8", stats.LostSteps)
	}
	fs := inj.Stats()
	if fs.Crashes != 1 || fs.CkptsCorrupted != 1 {
		t.Errorf("injector fired crashes=%d ckpts=%d, want 1/1", fs.Crashes, fs.CkptsCorrupted)
	}
}

// TestSupervisorShrinkingRecovery: after a rank death with AllowShrink,
// the run re-decomposes onto fewer ranks and still reproduces the
// fault-free result exactly (restart on a different process grid).
func TestSupervisorShrinkingRecovery(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	const steps = 20

	ref, err := Run(opts, steps)
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}

	inj := fault.NewInjector(fault.Plan{
		Seed:    7,
		Crashes: []fault.Crash{{Rank: 1, Step: 9}},
	})
	got, stats, err := Supervise(SupervisorOptions{
		Opts:            opts,
		Steps:           steps,
		CheckpointEvery: 4, // in-memory checkpoints
		MaxRestarts:     1,
		AllowShrink:     true,
		Injector:        inj,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (stats: %s)", err, stats)
	}
	if stats.Restarts != 1 || stats.Shrinks != 1 {
		t.Errorf("restarts=%d shrinks=%d, want 1/1", stats.Restarts, stats.Shrinks)
	}
	if n, worst := fieldsEqual(ref, got); n != 0 {
		t.Fatalf("shrunk recovery differs from reference in %d values (worst %g)", n, worst)
	}
}

// TestSupervisorHealthGate: a supersonic initial condition diverges; the
// health gate must refuse to checkpoint it and the run must fail once the
// restart budget is spent — never writing a garbage rollback target.
func TestSupervisorHealthGate(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 1
	opts.Init = func(gx, gy, gz int) (float64, float64, float64, float64) {
		return 1, 0.9, 0, 0 // far above the lattice sound speed
	}
	_, stats, err := Supervise(SupervisorOptions{
		Opts:            opts,
		Steps:           10,
		CheckpointEvery: 2,
		MaxRestarts:     1,
		Logf:            t.Logf,
	})
	if err == nil {
		t.Fatal("diverged run must exhaust the restart budget and fail")
	}
	if !strings.Contains(err.Error(), "health gate") {
		t.Errorf("error should carry the health-gate cause, got: %v", err)
	}
	if stats.CheckpointsWritten != 0 {
		t.Errorf("%d diverged checkpoints were accepted", stats.CheckpointsWritten)
	}
	if stats.CheckpointsRejected < 1 {
		t.Errorf("health gate rejected %d checkpoints, want ≥ 1", stats.CheckpointsRejected)
	}
}

// TestSupervisorCancelDrains: cancelling the run's context mid-flight
// must stop the run with ErrCanceled — not a restart, not a hang — and
// drain the newest recoverable state into the L4 checkpoint file so the
// job can be resumed later.
func TestSupervisorCancelDrains(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 2
	path := filepath.Join(t.TempDir(), "drain.cpk")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		// Let the run make some progress (and snapshot waves land), then
		// pull the plug. The exact cut point doesn't matter: drain
		// correctness is asserted structurally below.
		time.Sleep(60 * time.Millisecond)
		cancel()
		close(done)
	}()
	_, stats, err := Supervise(SupervisorOptions{
		Ctx:             ctx,
		Opts:            opts,
		Steps:           1_000_000, // far more than fits in the cancel window
		SnapshotEvery:   2,
		Levels:          resil.L1 | resil.L2 | resil.L3 | resil.L4,
		CheckpointEvery: 50,
		CheckpointPath:  path,
		MaxRestarts:     3,
		Logf:            t.Logf,
	})
	<-done
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled run returned %v, want ErrCanceled", err)
	}
	if stats.Restarts != 0 {
		t.Errorf("cancellation consumed %d restarts; drain must not retry", stats.Restarts)
	}
	if stats.CheckpointsWritten >= 1 {
		// A drain checkpoint was published: it must be a valid, resumable
		// L4 state (CRC-verified read-back, step within the run).
		restored, rerr := swio.Restart(path)
		if rerr != nil {
			t.Fatalf("drain checkpoint unreadable: %v", rerr)
		}
		if restored.Step() <= 0 || restored.Step() > 1_000_000 {
			t.Errorf("drain checkpoint at impossible step %d", restored.Step())
		}
	}
}

// TestSupervisorCancelBeforeStart: a context that is already dead must
// stop the run at the first step boundary; with a restore seed, the
// drain preserves exactly that seed.
func TestSupervisorCancelBeforeStart(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 1
	const steps = 12

	// Build a mid-run state to restore from: 6 steps, gathered on rank 0.
	var lat *core.Lattice
	if err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := New(c, opts)
		if err != nil {
			return err
		}
		for i := 0; i < 6; i++ {
			s.Step()
		}
		g, err := s.GatherLattice(0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			lat = g
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	restoreOpts := opts
	restoreOpts.Restore = lat
	path := filepath.Join(t.TempDir(), "predrain.cpk")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Supervise(SupervisorOptions{
		Ctx:            ctx,
		Opts:           restoreOpts,
		Steps:          steps,
		CheckpointPath: path,
		MaxRestarts:    1,
		Logf:           t.Logf,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled run returned %v, want ErrCanceled", err)
	}
	restored, rerr := swio.Restart(path)
	if rerr != nil {
		t.Fatalf("drain of the restore seed unreadable: %v", rerr)
	}
	if restored.Step() != 6 {
		t.Errorf("drained checkpoint at step %d, want the restore seed's step 6", restored.Step())
	}
}

// TestSupervisorContainsPanics: in bulkhead mode a panic inside solver
// setup becomes a contained failure of that run — the error wraps
// mpi.ErrRankPanic and the hosting process (this test) survives.
func TestSupervisorContainsPanics(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 1
	opts.Init = func(gx, gy, gz int) (float64, float64, float64, float64) {
		if gx == 3 && gy == 2 && gz == 1 {
			panic("tenant bug: init exploded")
		}
		return 1, 0, 0, 0
	}
	_, _, err := Supervise(SupervisorOptions{
		Opts:          opts,
		Steps:         5,
		ContainPanics: true,
	})
	if err == nil {
		t.Fatal("panicking run must fail")
	}
	if !errors.Is(err, mpi.ErrRankPanic) {
		t.Errorf("contained panic should wrap mpi.ErrRankPanic, got: %v", err)
	}
}

// TestSupervisorRestartBudget: a crash with no checkpoints and a zero
// restart budget must surface the injected-crash cause.
func TestSupervisorRestartBudget(t *testing.T) {
	opts := chaosBase()
	opts.PX, opts.PY = 2, 1
	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Rank: 0, Step: 3}}})
	_, stats, err := Supervise(SupervisorOptions{
		Opts:     opts,
		Steps:    10,
		Injector: inj,
	})
	if err == nil {
		t.Fatal("want failure with MaxRestarts=0")
	}
	if !errors.Is(err, fault.ErrInjectedCrash) {
		t.Errorf("error should wrap the injected crash, got: %v", err)
	}
	if stats.Restarts != 0 {
		t.Errorf("restarts = %d, want 0", stats.Restarts)
	}
}
