package psolve

// In-memory snapshot collective: the rank-side half of the multi-level
// checkpoint hierarchy in internal/resil. Every SnapshotEvery steps each
// rank captures its interior block (L1), pushes a copy to its ring buddy
// (L2) and exchanges snapshots within its parity group to compute the
// group XOR (L3). The supervisor's Store plays the role of every rank's
// local memory; after a failure it decides from those deposits whether
// the loss is repairable without touching the L4 disk checkpoint.

import (
	"fmt"

	"sunwaylb/internal/mpi"
	"sunwaylb/internal/resil"
	"sunwaylb/internal/trace"
)

// Snapshot-exchange tags continue the face-exchange tag block.
const (
	tagSnapBuddy  = tagYMinus + 1
	tagSnapParity = tagYMinus + 2
)

// resilState is the per-rank scratch of the snapshot collective, reused
// across captures so the steady-state path allocates nothing.
type resilState struct {
	own    resil.Snapshot // this rank's L1 capture
	recv   resil.Snapshot // unpack scratch for buddy/parity messages
	parity resil.Snapshot // the group XOR this rank computes (L3)
	data   []float64      // pack scratch
	aux    []byte
}

// ResilCapture runs one snapshot wave: L1 capture and deposit, L2 buddy
// push/receive, L3 parity exchange — the levels selected by the mask.
// It is a group-wise collective: every rank of a parity group must call
// it at the same step, like a checkpoint gather. Receive errors (a peer
// dying mid-wave) are returned, failing the attempt; the store's older
// double-buffered generation stays intact for recovery.
func (s *Solver) ResilCapture(st *resil.Store, levels resil.Levels) error {
	if st == nil || !levels.Memory() {
		return nil
	}
	me := s.Comm.Rank()
	rs := &s.resil

	// L1: capture the interior block and deposit it as this rank's own
	// snapshot.
	func() {
		if s.tr != nil {
			defer s.tr.Scope(trace.TrackCkpt, "snap-l1")()
		}
		resil.Capture(&rs.own, s.Lat, s.Block, me)
	}()
	if levels.Has(resil.L1) {
		st.DepositOwn(&rs.own)
	}

	lo, hi := st.Group(me)
	if hi-lo < 2 {
		return nil // singleton group: no buddy, no parity algebra
	}

	// L2: push my snapshot to the ring-next member; receive ring-prev's.
	if levels.Has(resil.L2) {
		if err := s.buddyExchange(st, rs, me); err != nil {
			return err
		}
	}

	// L3: exchange snapshots within the group and fold them into the
	// replicated parity record (every member computes the same XOR, so
	// any single survivor can serve the reconstruction).
	if levels.Has(resil.L3) {
		if err := s.parityExchange(st, rs, me, lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// buddyExchange is the L2 wave: a ring shift of snapshots inside the
// parity group.
func (s *Solver) buddyExchange(st *resil.Store, rs *resilState, me int) error {
	if s.tr != nil {
		defer s.tr.Scope(trace.TrackCkpt, "snap-l2")()
	}
	rs.data, rs.aux = rs.own.Pack(rs.data, rs.aux)
	s.Comm.Isend(st.Buddy(me), tagSnapBuddy, cloneSnapMsg(rs.data, rs.aux))
	m, err := s.Comm.RecvE(st.BuddySource(me), tagSnapBuddy)
	if err != nil {
		return fmt.Errorf("psolve: L2 buddy wave at step %d: %w", s.Lat.Step(), err)
	}
	if err := resil.UnpackInto(&rs.recv, m.Data, m.Aux); err != nil {
		return err
	}
	st.DepositBuddy(me, &rs.recv)
	return nil
}

// parityExchange is the L3 wave: an all-to-all of snapshots within the
// group, folded locally into the XOR parity record.
func (s *Solver) parityExchange(st *resil.Store, rs *resilState, me, lo, hi int) error {
	if s.tr != nil {
		defer s.tr.Scope(trace.TrackCkpt, "snap-l3")()
	}
	rs.data, rs.aux = rs.own.Pack(rs.data, rs.aux)
	for r := lo; r < hi; r++ {
		if r != me {
			s.Comm.Isend(r, tagSnapParity, cloneSnapMsg(rs.data, rs.aux))
		}
	}
	resil.ParityReset(&rs.parity, me, rs.own.Step, len(rs.own.Pops), len(rs.own.Flags))
	resil.ParityAdd(&rs.parity, &rs.own)
	for r := lo; r < hi; r++ {
		if r == me {
			continue
		}
		m, err := s.Comm.RecvE(r, tagSnapParity)
		if err != nil {
			return fmt.Errorf("psolve: L3 parity wave at step %d: %w", s.Lat.Step(), err)
		}
		if err := resil.UnpackInto(&rs.recv, m.Data, m.Aux); err != nil {
			return err
		}
		resil.ParityAdd(&rs.parity, &rs.recv)
	}
	resil.Seal(&rs.parity)
	st.DepositParity(me, &rs.parity)
	return nil
}

// cloneSnapMsg copies the pack scratch into a fresh message: the scratch
// is reused every wave and the transport passes references (and the
// fault hook may mutate payloads in place).
func cloneSnapMsg(data []float64, aux []byte) mpi.Message {
	return mpi.Message{
		Data: append([]float64(nil), data...),
		Aux:  append([]byte(nil), aux...),
	}
}
