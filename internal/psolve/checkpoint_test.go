package psolve

import (
	"bytes"
	"fmt"
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/swio"
)

// TestDistributedCheckpointRestart: a distributed run interrupted by
// gather→checkpoint→restore continues on the exact trajectory of an
// uninterrupted run — even when the restart uses a different process grid.
func TestDistributedCheckpointRestart(t *testing.T) {
	base := Options{
		GNX: 18, GNY: 14, GNZ: 8,
		Tau:       0.7,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Walls: func(gx, gy, gz int) bool { return gx == 9 && gy == 7 && gz >= 2 && gz <= 5 },
		Init:  shearInit,
	}

	// Uninterrupted reference: 30 steps on 2×2.
	refOpts := base
	refOpts.PX, refOpts.PY = 2, 2
	ref, err := Run(refOpts, 30)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: 18 steps on 2×2, checkpoint through swio, restore on
	// 3×1, 12 more steps.
	var cpBytes []byte
	o1 := base
	o1.PX, o1.PY = 2, 2
	err = mpi.Run(4, func(c *mpi.Comm) error {
		s, err := New(c, o1)
		if err != nil {
			return err
		}
		for i := 0; i < 18; i++ {
			s.Step()
		}
		g, err := s.GatherLattice(0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if g.Step() != 18 {
				return fmt.Errorf("gathered step = %d", g.Step())
			}
			var buf bytes.Buffer
			if err := swio.WriteCheckpoint(&buf, g); err != nil {
				return err
			}
			cpBytes = buf.Bytes()
		} else if g != nil {
			return fmt.Errorf("non-root gather must be nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	restored, err := swio.ReadCheckpoint(bytes.NewReader(cpBytes))
	if err != nil {
		t.Fatal(err)
	}
	o2 := base
	o2.PX, o2.PY = 3, 1
	o2.Restore = restored
	var cont *core.MacroField
	err = mpi.Run(3, func(c *mpi.Comm) error {
		s, err := New(c, o2)
		if err != nil {
			return err
		}
		if s.Lat.Step() != 18 {
			return fmt.Errorf("rank %d restored step = %d", c.Rank(), s.Lat.Step())
		}
		for i := 0; i < 12; i++ {
			s.Step()
		}
		if g := s.GatherMacro(0); g != nil {
			cont = g
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	diff := 0
	for i := range ref.Rho {
		if ref.Rho[i] != cont.Rho[i] || ref.Ux[i] != cont.Ux[i] ||
			ref.Uy[i] != cont.Uy[i] || ref.Uz[i] != cont.Uz[i] {
			diff++
		}
	}
	if diff != 0 {
		t.Fatalf("restarted distributed run diverged in %d values", diff)
	}
}

// TestRestoreValidation: dimension mismatches are caught.
func TestRestoreValidation(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		g, err2 := core.NewLattice(&lattice.D3Q19, 4, 4, 4, 0.8)
		if err2 != nil {
			return err2
		}
		_, err2 = New(c, Options{
			GNX: 8, GNY: 8, GNZ: 8, PX: 1, PY: 1, Tau: 0.8,
			Restore: g,
		})
		if err2 == nil {
			return fmt.Errorf("want dimension-mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
