// Package psolve is the distributed LBM solver: it combines the core
// kernel, the 2-D domain decomposition and the mpi runtime into multi-rank
// simulations with halo exchange, in both the sequential scheme (exchange,
// then compute — Fig. 6(1)) and the paper's on-the-fly scheme (overlap the
// inner-region computation with communication, then finish the boundary
// strips — Fig. 6(2)). Both schemes produce bit-identical states; they
// differ only in when communication happens relative to computation, which
// is what the performance model in internal/scaling charges for.
package psolve

import (
	"fmt"

	"sunwaylb/internal/boundary"
	"sunwaylb/internal/core"
	"sunwaylb/internal/decomp"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/trace"
)

// Exchange tags: one per face direction so streams never mix.
const (
	tagXPlus = iota + 1
	tagXMinus
	tagYPlus
	tagYMinus
)

// Options configures a distributed run.
type Options struct {
	// Global interior dimensions.
	GNX, GNY, GNZ int
	// Process grid (PX·PY ranks).
	PX, PY int
	// Tau is the LBGK relaxation time; Smagorinsky enables LES.
	Tau         float64
	Smagorinsky float64
	// Force is the body-force density (Guo scheme).
	Force [3]float64
	// PeriodicX/Y wrap the decomposed axes through neighbour exchange;
	// PeriodicZ wraps the undecomposed axis locally.
	PeriodicX, PeriodicY, PeriodicZ bool
	// FaceBC supplies boundary conditions for non-periodic global faces.
	// Conditions for X/Y faces are applied only by edge ranks; Z faces
	// by every rank. Nil entries leave the halo as-is.
	FaceBC map[core.Face]boundary.Condition
	// Walls marks global cells as solid obstacles at initialisation.
	Walls func(gx, gy, gz int) bool
	// Init supplies the initial macroscopic state per global cell;
	// nil means ρ=1, u=0.
	Init func(gx, gy, gz int) (rho, ux, uy, uz float64)
	// OnTheFly selects the overlapped halo-exchange scheme.
	OnTheFly bool
	// Kernel selects the local compute kernel: "" or "fused" is the
	// double-buffer pull kernel, "aa" the in-place AA-pattern kernel
	// (single distribution array, both storage phases handled
	// transparently by the halo exchange and checkpoint paths).
	Kernel string
	// Restore, if non-nil, initialises each rank's sub-block from this
	// global lattice (e.g. one read back by swio.ReadCheckpoint),
	// overriding Walls and Init.
	Restore *core.Lattice
	// Stepper, if non-nil, builds a custom kernel driver per rank (e.g.
	// the simulated Sunway engine from internal/swlb), reproducing the
	// paper's full MPI+Athread stack. The sequential halo-exchange
	// scheme is used around it. Rebuild is called once after the first
	// halo exchange so the driver sees the final wall flags.
	Stepper func(lat *core.Lattice) (Stepper, error)
	// Trace, if non-nil, records per-rank timelines (steps, halo
	// exchange, compute phases). Run installs it on the world it
	// creates; supervised runs install it through SupervisorOptions.
	Trace *trace.Tracer
}

// traceSetter is implemented by steppers that can record their internal
// phases (CPE/MPE kernels, DMA counters, GPU copies) onto the rank's
// timeline. New type-asserts it so Options.Stepper needs no signature
// change.
type traceSetter interface {
	SetTrace(tr *trace.RankTracer)
}

// Stepper advances the local lattice one time step (halos already
// exchanged) and returns a simulated or measured step time.
type Stepper interface {
	Step() float64
	// Rebuild refreshes any geometry-derived state after flags change.
	Rebuild()
}

// Solver is the per-rank state of a distributed simulation.
type Solver struct {
	Opts  Options
	Comm  *mpi.Comm
	Cart  *mpi.Cart2D
	Block decomp.Block
	Lat   *core.Lattice

	bcs []faceBC

	stepper      Stepper
	stepperFresh bool
	// SimTime accumulates the stepper-reported (e.g. simulated Sunway)
	// time across steps.
	SimTime float64

	// StragglerFactor inflates this rank's modelled (Sim-clock) step
	// time; 0 or 1 means nominal speed. The supervisor sets it from the
	// fault plan's straggle@ directives so trace.Analyze can flag the
	// slow rank even though the injection only affects the performance
	// model, not the host wall clock.
	StragglerFactor float64

	// tr is this rank's trace handle (nil-safe no-op when tracing is
	// off); simCursor is the rank's position on the modelled Sim clock;
	// lastSimDt is the most recent stepper-reported step time.
	tr        *trace.RankTracer
	simCursor float64
	lastSimDt float64

	// Scratch exchange buffers, reused across steps (messages are
	// cloned before handing to the transport).
	sendX, sendY [2][]float64
	flagX, flagY [2][]core.CellType
	rflX, rflY   [2][]core.CellType

	// resil is the snapshot-collective scratch (see resil.go), reused
	// across captures so steady-state waves allocate nothing.
	resil resilState
}

type faceBC struct {
	cond boundary.Condition
}

// New builds the per-rank solver: decomposes the domain, allocates the
// local lattice (block + halo), applies geometry and initial conditions.
func New(c *mpi.Comm, opts Options) (*Solver, error) {
	if opts.PX*opts.PY != c.Size() {
		return nil, fmt.Errorf("psolve: grid %d×%d != world size %d", opts.PX, opts.PY, c.Size())
	}
	cart, err := mpi.NewCart2D(c, opts.PX, opts.PY, opts.PeriodicX, opts.PeriodicY)
	if err != nil {
		return nil, err
	}
	blocks, err := decomp.Decompose2D(opts.GNX, opts.GNY, opts.GNZ, opts.PX, opts.PY)
	if err != nil {
		return nil, err
	}
	blk := blocks[c.Rank()]
	lat, err := core.NewLattice(&lattice.D3Q19, blk.NX, blk.NY, blk.NZ, opts.Tau)
	if err != nil {
		return nil, err
	}
	lat.Smagorinsky = opts.Smagorinsky
	lat.Force = opts.Force
	switch opts.Kernel {
	case "", "fused":
	case "aa":
		// Convert before any restore so the phase-aware writes land in
		// the layout the stepper will read.
		lat.EnableAA()
	default:
		return nil, fmt.Errorf("psolve: unknown kernel %q (want \"fused\" or \"aa\")", opts.Kernel)
	}

	s := &Solver{Opts: opts, Comm: c, Cart: cart, Block: blk, Lat: lat, tr: c.Trace()}
	// Resume the modelled clock where a previous attempt (before a
	// supervised restart) left off, so attempts lay out consecutively.
	s.simCursor = s.tr.SimWatermark()
	if opts.Restore != nil {
		if err := s.restoreFrom(opts.Restore); err != nil {
			return nil, err
		}
	} else {
		s.applyGeometry()
		s.applyInit()
	}
	s.collectBCs()
	s.allocBuffers()
	if opts.Stepper != nil {
		st, err := opts.Stepper(lat)
		if err != nil {
			return nil, err
		}
		s.stepper = st
		s.stepperFresh = true
		if ts, ok := st.(traceSetter); ok {
			ts.SetTrace(s.tr)
		}
	}
	return s, nil
}

func (s *Solver) applyGeometry() {
	if s.Opts.Walls == nil {
		return
	}
	b := s.Block
	for y := 0; y < b.NY; y++ {
		for x := 0; x < b.NX; x++ {
			for z := 0; z < b.NZ; z++ {
				if s.Opts.Walls(b.X0+x, b.Y0+y, b.Z0+z) {
					s.Lat.SetWall(x, y, z)
				}
			}
		}
	}
}

func (s *Solver) applyInit() {
	if s.Opts.Init == nil {
		return
	}
	b := s.Block
	for y := 0; y < b.NY; y++ {
		for x := 0; x < b.NX; x++ {
			for z := 0; z < b.NZ; z++ {
				if s.Lat.CellTypeAt(x, y, z) != core.Fluid {
					continue
				}
				rho, ux, uy, uz := s.Opts.Init(b.X0+x, b.Y0+y, b.Z0+z)
				s.Lat.SetCell(x, y, z, rho, ux, uy, uz)
			}
		}
	}
}

// collectBCs figures out which global-face conditions this rank applies.
func (s *Solver) collectBCs() {
	cx, cy := s.Cart.Coords()
	touches := map[core.Face]bool{
		core.FaceXMin: cx == 0 && !s.Opts.PeriodicX,
		core.FaceXMax: cx == s.Opts.PX-1 && !s.Opts.PeriodicX,
		core.FaceYMin: cy == 0 && !s.Opts.PeriodicY,
		core.FaceYMax: cy == s.Opts.PY-1 && !s.Opts.PeriodicY,
		core.FaceZMin: !s.Opts.PeriodicZ,
		core.FaceZMax: !s.Opts.PeriodicZ,
	}
	for _, f := range []core.Face{core.FaceXMin, core.FaceXMax, core.FaceYMin,
		core.FaceYMax, core.FaceZMin, core.FaceZMax} {
		if !touches[f] {
			continue
		}
		if cond, ok := s.Opts.FaceBC[f]; ok && cond != nil {
			s.bcs = append(s.bcs, faceBC{cond: cond})
		}
	}
}

func (s *Solver) allocBuffers() {
	q := s.Lat.Desc.Q
	nx := s.Lat.FaceCells(core.FaceXMin)
	ny := s.Lat.FaceCells(core.FaceYMin)
	for i := 0; i < 2; i++ {
		s.sendX[i] = make([]float64, q*nx)
		s.flagX[i] = make([]core.CellType, nx)
		s.rflX[i] = make([]core.CellType, nx)
		s.sendY[i] = make([]float64, q*ny)
		s.flagY[i] = make([]core.CellType, ny)
		s.rflY[i] = make([]core.CellType, ny)
	}
}

// applyLocalBCs fills halos that do not come from neighbours: the z axis
// (periodic or face conditions) and the global-face conditions of edge
// ranks.
func (s *Solver) applyLocalBCs() {
	if s.Opts.PeriodicZ {
		s.Lat.PeriodicAxis(2)
	}
	for _, bc := range s.bcs {
		bc.cond.Apply(s.Lat)
	}
}

// exchangeAxis swaps one axis' face layers with the two neighbours. When
// the neighbour is this rank itself (periodic with one rank along the
// axis), it short-circuits to a local periodic wrap.
func (s *Solver) exchangeAxis(axis int) {
	var minusFace, plusFace core.Face
	var send [2][]float64
	var flg, rfl [2][]core.CellType
	var tagToPlus, tagToMinus int
	var dm, dp int
	if axis == 0 {
		minusFace, plusFace = core.FaceXMin, core.FaceXMax
		send, flg, rfl = s.sendX, s.flagX, s.rflX
		tagToPlus, tagToMinus = tagXPlus, tagXMinus
		dm, dp = s.Cart.Neighbor(-1, 0), s.Cart.Neighbor(1, 0)
	} else {
		minusFace, plusFace = core.FaceYMin, core.FaceYMax
		send, flg, rfl = s.sendY, s.flagY, s.rflY
		tagToPlus, tagToMinus = tagYPlus, tagYMinus
		dm, dp = s.Cart.Neighbor(0, -1), s.Cart.Neighbor(0, 1)
	}
	me := s.Comm.Rank()
	if dm == me && dp == me {
		// Single rank along this axis with periodic wrap.
		s.Lat.PeriodicAxis(axis)
		return
	}
	if s.tr != nil {
		defer s.tr.Scope(trace.TrackMPI, haloName(axis))()
	}
	var reqs []*mpi.Request
	if dp >= 0 {
		s.Lat.PackFace(plusFace, send[1], flg[1])
		reqs = append(reqs, s.Comm.Isend(dp, tagToPlus, cloneMsg(send[1], flg[1])))
	}
	if dm >= 0 {
		s.Lat.PackFace(minusFace, send[0], flg[0])
		reqs = append(reqs, s.Comm.Isend(dm, tagToMinus, cloneMsg(send[0], flg[0])))
	}
	if dm >= 0 {
		m := s.Comm.Recv(dm, tagToPlus)
		s.Lat.UnpackFace(minusFace, m.Data, decodeFlags(m.Aux, rfl[0]))
	}
	if dp >= 0 {
		m := s.Comm.Recv(dp, tagToMinus)
		s.Lat.UnpackFace(plusFace, m.Data, decodeFlags(m.Aux, rfl[1]))
	}
	mpi.WaitAll(reqs...)
}

// haloName labels a halo-exchange span by decomposed axis.
func haloName(axis int) string {
	if axis == 0 {
		return "halo-x"
	}
	return "halo-y"
}

// cloneMsg copies the pack buffers into a fresh message (the scratch
// buffers are reused every step, and the transport passes references).
func cloneMsg(data []float64, flags []core.CellType) mpi.Message {
	d := append([]float64(nil), data...)
	a := make([]byte, len(flags))
	for i, f := range flags {
		a[i] = byte(f)
	}
	return mpi.Message{Data: d, Aux: a}
}

func decodeFlags(aux []byte, out []core.CellType) []core.CellType {
	for i := range out {
		out[i] = core.CellType(aux[i])
	}
	return out
}

// exchangeAsync starts the sends of one axis and returns the pending
// receives; used by the on-the-fly scheme to overlap with computation.
func (s *Solver) exchangeAsyncStart(axis int) (recvM, recvP *mpi.Request, dm, dp int) {
	var minusFace, plusFace core.Face
	var send [2][]float64
	var flg [2][]core.CellType
	var tagToPlus, tagToMinus int
	if axis == 0 {
		minusFace, plusFace = core.FaceXMin, core.FaceXMax
		send, flg = s.sendX, s.flagX
		tagToPlus, tagToMinus = tagXPlus, tagXMinus
		dm, dp = s.Cart.Neighbor(-1, 0), s.Cart.Neighbor(1, 0)
	} else {
		minusFace, plusFace = core.FaceYMin, core.FaceYMax
		send, flg = s.sendY, s.flagY
		tagToPlus, tagToMinus = tagYPlus, tagYMinus
		dm, dp = s.Cart.Neighbor(0, -1), s.Cart.Neighbor(0, 1)
	}
	me := s.Comm.Rank()
	if dm == me && dp == me {
		s.Lat.PeriodicAxis(axis)
		return nil, nil, -1, -1
	}
	if dp >= 0 {
		s.Lat.PackFace(plusFace, send[1], flg[1])
		s.Comm.Isend(dp, tagToPlus, cloneMsg(send[1], flg[1]))
		recvP = s.Comm.Irecv(dp, tagToMinus)
	}
	if dm >= 0 {
		s.Lat.PackFace(minusFace, send[0], flg[0])
		s.Comm.Isend(dm, tagToMinus, cloneMsg(send[0], flg[0]))
		recvM = s.Comm.Irecv(dm, tagToPlus)
	}
	return recvM, recvP, dm, dp
}

func (s *Solver) exchangeAsyncFinish(axis int, recvM, recvP *mpi.Request) {
	var minusFace, plusFace core.Face
	var rfl [2][]core.CellType
	if axis == 0 {
		minusFace, plusFace = core.FaceXMin, core.FaceXMax
		rfl = s.rflX
	} else {
		minusFace, plusFace = core.FaceYMin, core.FaceYMax
		rfl = s.rflY
	}
	if recvM != nil {
		m := recvM.Wait()
		s.Lat.UnpackFace(minusFace, m.Data, decodeFlags(m.Aux, rfl[0]))
	}
	if recvP != nil {
		m := recvP.Wait()
		s.Lat.UnpackFace(plusFace, m.Data, decodeFlags(m.Aux, rfl[1]))
	}
}

// Step advances the distributed simulation by one time step.
//
// With tracing on, each step records a wall-clock "step" span plus a
// modelled Sim-clock "step" span: the stepper-reported device time when
// a stepper exists, the wall duration otherwise, either way inflated by
// StragglerFactor — that is how an injected straggler (which slows the
// performance model, not the host) becomes visible to trace.Analyze.
func (s *Solver) Step() {
	if s.tr != nil {
		t0 := s.tr.Now()
		s.tr.Begin(trace.Wall, trace.TrackStep, "step", t0)
		// Deferred so a rank aborted mid-step (a peer died, the world
		// went down) still closes its span during the panic unwind.
		defer func() {
			t1 := s.tr.Now()
			s.tr.End(trace.Wall, trace.TrackStep, t1)
			dt := t1 - t0 // modelled step time defaults to the wall duration
			if s.stepper != nil {
				dt = s.lastSimDt
			}
			if s.StragglerFactor > 1 {
				dt *= s.StragglerFactor
			}
			s.tr.Span(trace.Sim, trace.TrackStep, "step", s.simCursor, s.simCursor+dt)
			s.simCursor += dt
		}()
	}
	if s.stepper != nil {
		s.stepWithStepper()
	} else if s.Opts.OnTheFly {
		s.stepOnTheFly()
	} else {
		s.stepSequential()
	}
}

// stepWithStepper runs the sequential exchange around a custom kernel
// driver (the simulated Sunway core group).
func (s *Solver) stepWithStepper() {
	s.tracedBCs()
	s.exchangeAxis(0)
	s.exchangeAxis(1)
	if s.stepperFresh {
		// The first exchange may have imported wall flags from the
		// neighbours and the boundary conditions; refresh the
		// driver's geometry-derived state before its first step.
		s.stepper.Rebuild()
		s.stepperFresh = false
	}
	var done func()
	if s.tr != nil {
		done = s.tr.Scope(trace.TrackStep, "compute")
	}
	dt := s.stepper.Step()
	if done != nil {
		done()
	}
	s.SimTime += dt
	s.lastSimDt = dt
}

// tracedBCs applies the local boundary conditions under a span.
func (s *Solver) tracedBCs() {
	if s.tr != nil {
		defer s.tr.Scope(trace.TrackStep, "bc")()
	}
	s.applyLocalBCs()
}

// stepSequential is the original scheme of Fig. 6(1): halo exchange fully
// completes, then the whole subdomain is computed.
func (s *Solver) stepSequential() {
	s.tracedBCs()
	s.exchangeAxis(0)
	s.exchangeAxis(1)
	var done func()
	if s.tr != nil {
		done = s.tr.Scope(trace.TrackStep, "compute")
	}
	s.Lat.StepFused()
	if done != nil {
		done()
	}
}

// stepOnTheFly is the overlapped scheme of Fig. 6(2): the inner region
// (which depends on no x/y halo) is computed while the halo exchange is in
// flight; the boundary strips follow once the halo has arrived. The final
// state is bit-identical to stepSequential.
func (s *Solver) stepOnTheFly() {
	s.tracedBCs()
	l := s.Lat
	// Start the x exchange.
	rxm, rxp, _, _ := s.exchangeAsyncStart(0)
	// Inner region: cells whose 1-neighbourhood stays inside the
	// interior, i.e. x∈[1,NX-1), y∈[1,NY-1).
	if l.NX > 2 && l.NY > 2 {
		var done func()
		if s.tr != nil {
			done = s.tr.Scope(trace.TrackStep, "compute-inner")
		}
		l.StepRegion(1, l.NX-1, 1, l.NY-1)
		if done != nil {
			done()
		}
	}
	// Finish x; then the y exchange can pack its corners. The span is
	// closed by defer so an abort inside Wait still nests.
	func() {
		if s.tr != nil {
			defer s.tr.Scope(trace.TrackMPI, "halo-x-wait")()
		}
		s.exchangeAsyncFinish(0, rxm, rxp)
	}()
	s.exchangeAxis(1)
	// Boundary strips.
	var done func()
	if s.tr != nil {
		done = s.tr.Scope(trace.TrackStep, "compute-boundary")
	}
	if l.NX > 2 && l.NY > 2 {
		l.StepRegion(0, 1, 0, l.NY)         // west column, full y
		l.StepRegion(l.NX-1, l.NX, 0, l.NY) // east column, full y
		l.StepRegion(1, l.NX-1, 0, 1)       // south strip
		l.StepRegion(1, l.NX-1, l.NY-1, l.NY)
	} else {
		l.StepRegion(0, l.NX, 0, l.NY)
	}
	l.CompleteStep()
	if done != nil {
		done()
	}
}

// GatherMacro assembles the global macroscopic fields on rank root;
// other ranks return nil.
func (s *Solver) GatherMacro(root int) *core.MacroField {
	local := s.Lat.ComputeMacro()
	b := s.Block
	header := []float64{float64(b.X0), float64(b.Y0), float64(b.Z0),
		float64(b.NX), float64(b.NY), float64(b.NZ)}
	payload := header
	payload = append(payload, local.Rho...)
	payload = append(payload, local.Ux...)
	payload = append(payload, local.Uy...)
	payload = append(payload, local.Uz...)
	msgs := s.Comm.Gather(root, mpi.Message{Data: payload})
	if msgs == nil {
		return nil
	}
	g := &core.MacroField{
		NX: s.Opts.GNX, NY: s.Opts.GNY, NZ: s.Opts.GNZ,
		Rho: make([]float64, s.Opts.GNX*s.Opts.GNY*s.Opts.GNZ),
		Ux:  make([]float64, s.Opts.GNX*s.Opts.GNY*s.Opts.GNZ),
		Uy:  make([]float64, s.Opts.GNX*s.Opts.GNY*s.Opts.GNZ),
		Uz:  make([]float64, s.Opts.GNX*s.Opts.GNY*s.Opts.GNZ),
	}
	for _, m := range msgs {
		h := m.Data[:6]
		x0, y0 := int(h[0]), int(h[1])
		nx, ny, nz := int(h[3]), int(h[4]), int(h[5])
		n := nx * ny * nz
		rho := m.Data[6 : 6+n]
		ux := m.Data[6+n : 6+2*n]
		uy := m.Data[6+2*n : 6+3*n]
		uz := m.Data[6+3*n : 6+4*n]
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				for z := 0; z < nz; z++ {
					li := (y*nx+x)*nz + z
					gi := g.Idx(x0+x, y0+y, z)
					g.Rho[gi] = rho[li]
					g.Ux[gi] = ux[li]
					g.Uy[gi] = uy[li]
					g.Uz[gi] = uz[li]
				}
			}
		}
	}
	return g
}

// GlobalMass returns the total mass across all ranks (on every rank).
func (s *Solver) GlobalMass() float64 {
	return s.Comm.AllreduceSum(s.Lat.TotalMass())
}

// Run executes a full distributed simulation with the given number of
// ranks and steps and returns the gathered global macroscopic field from
// rank 0.
func Run(opts Options, steps int) (*core.MacroField, error) {
	if opts.PX == 0 || opts.PY == 0 {
		opts.PX, opts.PY = mpi.FactorGrid(1, opts.GNX, opts.GNY)
	}
	w, err := mpi.NewWorld(opts.PX * opts.PY)
	if err != nil {
		return nil, err
	}
	w.SetTracer(opts.Trace)
	var result *core.MacroField
	err = mpi.RunWorld(w, func(c *mpi.Comm) error {
		s, err := New(c, opts)
		if err != nil {
			return err
		}
		for i := 0; i < steps; i++ {
			s.Step()
		}
		if g := s.GatherMacro(0); g != nil {
			result = g
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}
