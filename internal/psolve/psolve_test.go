package psolve

import (
	"fmt"
	"math"
	"testing"

	"sunwaylb/internal/boundary"
	"sunwaylb/internal/core"
	"sunwaylb/internal/mpi"
)

// runCase executes the same physical problem with the given process grid
// and returns the gathered global field.
func runCase(t *testing.T, opts Options, px, py, steps int) *core.MacroField {
	t.Helper()
	opts.PX, opts.PY = px, py
	g, err := Run(opts, steps)
	if err != nil {
		t.Fatalf("Run(%d×%d): %v", px, py, err)
	}
	if g == nil {
		t.Fatalf("Run(%d×%d): nil gather", px, py)
	}
	return g
}

func fieldsEqual(a, b *core.MacroField) (int, float64) {
	count := 0
	worst := 0.0
	for i := range a.Rho {
		for _, d := range []float64{
			a.Rho[i] - b.Rho[i], a.Ux[i] - b.Ux[i],
			a.Uy[i] - b.Uy[i], a.Uz[i] - b.Uz[i],
		} {
			if d != 0 {
				count++
				if math.Abs(d) > worst {
					worst = math.Abs(d)
				}
			}
		}
	}
	return count, worst
}

// shearInit is a non-trivial initial condition exercising all axes.
func shearInit(gx, gy, gz int) (rho, ux, uy, uz float64) {
	return 1.0 + 0.01*math.Sin(0.3*float64(gx)),
		0.03 * math.Sin(0.2*float64(gy)),
		0.02 * math.Cos(0.25*float64(gz)),
		0.01 * math.Sin(0.15*float64(gx+gy))
}

// TestParallelMatchesSerialPeriodic: a fully periodic run decomposed
// 2×2 must be bit-identical to the single-rank run.
func TestParallelMatchesSerialPeriodic(t *testing.T) {
	opts := Options{
		GNX: 16, GNY: 16, GNZ: 8,
		Tau:       0.7,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Init: shearInit,
	}
	serial := runCase(t, opts, 1, 1, 10)
	par := runCase(t, opts, 2, 2, 10)
	if n, worst := fieldsEqual(serial, par); n != 0 {
		t.Fatalf("parallel differs from serial in %d values (worst %g)", n, worst)
	}
}

// TestParallelMatchesSerialWithObstacle: an obstacle spanning rank
// boundaries must bounce identically.
func TestParallelMatchesSerialWithObstacle(t *testing.T) {
	wall := func(gx, gy, gz int) bool {
		// A box crossing the 2×2 rank boundary at (8,8).
		return gx >= 6 && gx <= 10 && gy >= 6 && gy <= 10 && gz >= 2 && gz <= 5
	}
	opts := Options{
		GNX: 16, GNY: 16, GNZ: 8,
		Tau:       0.8,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Init:  shearInit,
		Walls: wall,
	}
	serial := runCase(t, opts, 1, 1, 12)
	par := runCase(t, opts, 2, 2, 12)
	if n, worst := fieldsEqual(serial, par); n != 0 {
		t.Fatalf("obstacle run differs in %d values (worst %g)", n, worst)
	}
	par41 := runCase(t, opts, 4, 1, 12)
	if n, _ := fieldsEqual(serial, par41); n != 0 {
		t.Fatalf("4×1 obstacle run differs in %d values", n)
	}
}

// TestOnTheFlyMatchesSequential: the overlapped halo-exchange scheme is
// bit-identical to the sequential scheme (the paper's correctness claim
// for Fig. 6).
func TestOnTheFlyMatchesSequential(t *testing.T) {
	base := Options{
		GNX: 20, GNY: 12, GNZ: 6,
		Tau:       0.65,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Init: shearInit,
	}
	seq := runCase(t, base, 2, 2, 15)
	otf := base
	otf.OnTheFly = true
	over := runCase(t, otf, 2, 2, 15)
	if n, worst := fieldsEqual(seq, over); n != 0 {
		t.Fatalf("on-the-fly differs from sequential in %d values (worst %g)", n, worst)
	}
}

// TestChannelFlowAcrossRanks: inlet/outlet BCs live on edge ranks only;
// the decomposed channel must match the single-rank channel.
func TestChannelFlowAcrossRanks(t *testing.T) {
	opts := Options{
		GNX: 24, GNY: 8, GNZ: 6,
		Tau: 0.8,
		FaceBC: map[core.Face]boundary.Condition{
			core.FaceXMin: &boundary.VelocityInlet{Face: core.FaceXMin, U: [3]float64{0.04, 0, 0}},
			core.FaceXMax: &boundary.PressureOutlet{Face: core.FaceXMax, Rho: 1},
		},
		PeriodicY: true, PeriodicZ: true,
	}
	serial := runCase(t, opts, 1, 1, 60)
	par := runCase(t, opts, 4, 2, 60)
	if n, worst := fieldsEqual(serial, par); n != 0 {
		t.Fatalf("channel flow differs in %d values (worst %g)", n, worst)
	}
	// And the flow is actually moving.
	mid := serial.Idx(12, 4, 3)
	if serial.Ux[mid] <= 0.01 {
		t.Errorf("mid-channel Ux = %v, want > 0.01", serial.Ux[mid])
	}
}

// TestMassConservedAcrossRanks: global mass is conserved by the
// distributed update with periodic boundaries.
func TestMassConservedAcrossRanks(t *testing.T) {
	opts := Options{
		GNX: 12, GNY: 12, GNZ: 6,
		PX: 2, PY: 2,
		Tau:       0.9,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Init: shearInit,
	}
	err := mpi.Run(4, func(c *mpi.Comm) error {
		s, err := New(c, opts)
		if err != nil {
			return err
		}
		m0 := s.GlobalMass()
		for i := 0; i < 25; i++ {
			s.Step()
		}
		m1 := s.GlobalMass()
		if math.Abs(m1-m0)/m0 > 1e-12 {
			return fmt.Errorf("mass drift %v -> %v", m0, m1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := New(c, Options{GNX: 8, GNY: 8, GNZ: 4, PX: 3, PY: 1, Tau: 0.8}); err == nil {
			return fmt.Errorf("want grid-size mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUnevenDecomposition: global sizes that do not divide evenly still
// reproduce the serial result.
func TestUnevenDecomposition(t *testing.T) {
	opts := Options{
		GNX: 17, GNY: 13, GNZ: 5,
		Tau:       0.75,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Init: shearInit,
	}
	serial := runCase(t, opts, 1, 1, 8)
	par := runCase(t, opts, 3, 2, 8)
	if n, worst := fieldsEqual(serial, par); n != 0 {
		t.Fatalf("uneven run differs in %d values (worst %g)", n, worst)
	}
}

func BenchmarkDistributedStep4Ranks(b *testing.B) {
	opts := Options{
		GNX: 32, GNY: 32, GNZ: 16,
		PX: 2, PY: 2,
		Tau:       0.8,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
	}
	b.ResetTimer()
	err := mpi.Run(4, func(c *mpi.Comm) error {
		s, err := New(c, opts)
		if err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			s.Step()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
