package psolve

import (
	"fmt"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/mpi"
)

// GatherLattice assembles the complete global solver state — populations,
// cell flags and the step counter — into one core.Lattice on rank root
// (nil elsewhere). The result can be written with swio.WriteCheckpoint and
// later redistributed through Options.Restore, giving the distributed
// solver the same fault-recovery path as the serial one (§IV-B's
// checkpoint/restart controller; on the real machine the leaders of the
// group-I/O plan do this aggregation).
func (s *Solver) GatherLattice(root int) (*core.Lattice, error) {
	l := s.Lat
	q := l.Desc.Q
	b := s.Block
	interior := b.NX * b.NY * b.NZ
	payload := make([]float64, 0, 7+interior*q)
	payload = append(payload,
		float64(b.X0), float64(b.Y0), float64(b.Z0),
		float64(b.NX), float64(b.NY), float64(b.NZ),
		float64(l.Step()))
	src := l.Src()
	// Per-population bases resolve the AA storage phase, so the gathered
	// payload is the logical state regardless of the local layout.
	base := make([]int, q)
	for i := range base {
		base[i] = l.PopBase(i)
	}
	flags := make([]byte, interior)
	k := 0
	for y := 0; y < b.NY; y++ {
		for x := 0; x < b.NX; x++ {
			for z := 0; z < b.NZ; z++ {
				idx := l.Idx(x, y, z)
				for i := 0; i < q; i++ {
					payload = append(payload, src[base[i]+idx])
				}
				flags[k] = byte(l.Flags[idx])
				k++
			}
		}
	}
	msgs := s.Comm.Gather(root, mpi.Message{Data: payload, Aux: flags})
	if msgs == nil {
		return nil, nil
	}
	g, err := core.NewLattice(&lattice.D3Q19, s.Opts.GNX, s.Opts.GNY, s.Opts.GNZ, s.Opts.Tau)
	if err != nil {
		return nil, fmt.Errorf("psolve: building gathered lattice: %w", err)
	}
	g.Smagorinsky = s.Opts.Smagorinsky
	g.Force = s.Opts.Force
	dst := g.Src()
	for _, m := range msgs {
		h := m.Data[:7]
		x0, y0, z0 := int(h[0]), int(h[1]), int(h[2])
		nx, ny, nz := int(h[3]), int(h[4]), int(h[5])
		g.SetStep(int(h[6]))
		pos := 7
		k := 0
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				for z := 0; z < nz; z++ {
					idx := g.Idx(x0+x, y0+y, z0+z)
					for i := 0; i < q; i++ {
						dst[i*g.N+idx] = m.Data[pos]
						pos++
					}
					g.Flags[idx] = core.CellType(m.Aux[k])
					k++
				}
			}
		}
	}
	return g, nil
}

// restoreFrom copies this rank's sub-block of a global lattice (same
// dimensions and descriptor) into the local state: populations, interior
// flags and the step counter.
func (s *Solver) restoreFrom(g *core.Lattice) error {
	if g.NX != s.Opts.GNX || g.NY != s.Opts.GNY || g.NZ != s.Opts.GNZ {
		return fmt.Errorf("psolve: restore lattice %d×%d×%d does not match case %d×%d×%d",
			g.NX, g.NY, g.NZ, s.Opts.GNX, s.Opts.GNY, s.Opts.GNZ)
	}
	if g.Desc.Q != s.Lat.Desc.Q {
		return fmt.Errorf("psolve: restore descriptor %s does not match %s", g.Desc.Name, s.Lat.Desc.Name)
	}
	b := s.Block
	q := g.Desc.Q
	gsrc := g.Src()
	lsrc := s.Lat.Src()
	// Adopt the checkpoint's step BEFORE writing populations: on an AA
	// lattice the step parity selects the storage layout, and the writes
	// below must land in the slots the resumed stepper will read.
	s.Lat.SetStep(g.Step())
	gBase := make([]int, q)
	lBase := make([]int, q)
	for i := range gBase {
		gBase[i] = g.PopBase(i)
		lBase[i] = s.Lat.PopBase(i)
	}
	for y := 0; y < b.NY; y++ {
		for x := 0; x < b.NX; x++ {
			for z := 0; z < b.NZ; z++ {
				gi := g.Idx(b.X0+x, b.Y0+y, b.Z0+z)
				li := s.Lat.Idx(x, y, z)
				for i := 0; i < q; i++ {
					lsrc[lBase[i]+li] = gsrc[gBase[i]+gi]
				}
				s.Lat.Flags[li] = g.Flags[gi]
			}
		}
	}
	return nil
}
