// Package perf implements the performance accounting of the paper's
// evaluation (§V): LUPS metrics, the roofline model for the memory-bound
// LBM kernel, bandwidth-utilization arithmetic, and the machine constants
// used to convert between cell updates, bytes and flops.
package perf

import "fmt"

// BytesPerLUP is the main-memory traffic of one D3Q19 lattice cell update
// in the paper's accounting (§IV-C-3): 19 population loads, 19 stores and
// the write-allocate traffic — 380 bytes.
const BytesPerLUP = 380.0

// FlopsPerLUP is the floating-point work per cell update implied by the
// paper's headline numbers (4.7 PFlops at 11245 GLUPS ≈ 418 flops/LUP).
const FlopsPerLUP = 418.0

// LUPS expresses a lattice-update rate.
type LUPS float64

// MLUPS and GLUPS convert to the paper's reporting units.
func (l LUPS) MLUPS() float64 { return float64(l) / 1e6 }

// GLUPS returns billions of lattice updates per second.
func (l LUPS) GLUPS() float64 { return float64(l) / 1e9 }

// String implements fmt.Stringer with the unit the magnitude suggests.
func (l LUPS) String() string {
	switch {
	case l >= 1e9:
		return fmt.Sprintf("%.1f GLUPS", l.GLUPS())
	case l >= 1e6:
		return fmt.Sprintf("%.1f MLUPS", l.MLUPS())
	default:
		return fmt.Sprintf("%.0f LUPS", float64(l))
	}
}

// Rate computes the update rate for a domain of cells advanced one step in
// stepSeconds (eq. (2) of the paper: P = M / t_s).
func Rate(cells int64, stepSeconds float64) LUPS {
	if stepSeconds <= 0 {
		return 0
	}
	return LUPS(float64(cells) / stepSeconds)
}

// Flops converts an update rate to sustained flops.
func (l LUPS) Flops() float64 { return float64(l) * FlopsPerLUP }

// RooflineLUPS returns the memory-bandwidth-bound upper limit on the
// update rate for the given aggregate bandwidth (§V-A: 32 GB/s ÷ 380 B/LUP
// = 90.4 MLUPS for one SW26010 CG).
func RooflineLUPS(bandwidth float64) LUPS {
	return LUPS(bandwidth / BytesPerLUP)
}

// BandwidthUtilization returns achieved/roofline for a measured rate on a
// machine with the given aggregate bandwidth — the paper's §V-A formula:
//
//	util = measured_LUPS × 380 B/LUP ÷ aggregate_bandwidth
func BandwidthUtilization(measured LUPS, bandwidth float64) float64 {
	if bandwidth <= 0 {
		return 0
	}
	return float64(measured) * BytesPerLUP / bandwidth
}

// ParallelEfficiency quantifies scaling quality. For weak scaling, rates
// are per-unit rates at the base and scaled configuration; for strong
// scaling pass speedup/idealSpeedup.
func ParallelEfficiency(baseRate, scaledRate LUPS, baseUnits, scaledUnits int) float64 {
	if baseRate <= 0 || baseUnits <= 0 || scaledUnits <= 0 {
		return 0
	}
	ideal := float64(baseRate) * float64(scaledUnits) / float64(baseUnits)
	return float64(scaledRate) / ideal
}

// Machine groups the constants the scaling experiments need per system.
type Machine struct {
	Name string
	// CGBandwidth is the DMA bandwidth of one core group (or the device
	// bandwidth of one GPU).
	CGBandwidth float64
	// CoresPerCG counts cores per scheduling unit (65 on Sunway CGs:
	// 1 MPE + 64 CPEs).
	CoresPerCG int
	// MeasuredCGRate is the per-CG update rate achieved by the
	// simulated fully-optimized kernel (calibrated by internal/swlb).
	MeasuredCGRate LUPS
}

// TaihuLight describes one SW26010 core group: roofline 90.4 MLUPS; the
// paper measures 77% of it.
var TaihuLight = Machine{
	Name:           "Sunway TaihuLight (SW26010)",
	CGBandwidth:    32 << 30, // the paper's 32 GB/s is binary: 32·1024³ (§V-A)
	CoresPerCG:     65,
	MeasuredCGRate: LUPS(0.77 * float64(32<<30) / BytesPerLUP),
}

// NewSunway describes one SW26010-Pro core group: roofline 134.7 MLUPS;
// the paper measures 81.4% of it.
var NewSunway = Machine{
	Name:           "New Sunway (SW26010-Pro)",
	CGBandwidth:    51.2e9,
	CoresPerCG:     65,
	MeasuredCGRate: LUPS(0.814 * 51.2e9 / BytesPerLUP),
}

// RTX3090 describes one GPU of the paper's cluster: 936 GB/s device
// bandwidth, 83.8% utilisation measured.
var RTX3090 = Machine{
	Name:           "NVIDIA RTX 3090",
	CGBandwidth:    936e9,
	CoresPerCG:     1,
	MeasuredCGRate: LUPS(0.838 * 936e9 / BytesPerLUP),
}

// Roofline returns the machine's per-unit roofline rate.
func (m Machine) Roofline() LUPS { return RooflineLUPS(m.CGBandwidth) }

// Utilization returns the machine's measured fraction of its roofline.
func (m Machine) Utilization() float64 {
	return BandwidthUtilization(m.MeasuredCGRate, m.CGBandwidth)
}
