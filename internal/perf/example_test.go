package perf_test

import (
	"fmt"

	"sunwaylb/internal/perf"
)

// ExampleRooflineLUPS reproduces the paper's §V-A roofline arithmetic.
func ExampleRooflineLUPS() {
	perCG := perf.RooflineLUPS(32 << 30) // one SW26010 core group
	fmt.Printf("%.1f MLUPS per CG\n", perCG.MLUPS())
	fmt.Printf("%.0f GLUPS ceiling for 160000 CGs\n", perCG.GLUPS()*160000)
	// Output:
	// 90.4 MLUPS per CG
	// 14467 GLUPS ceiling for 160000 CGs
}

// ExampleBandwidthUtilization recomputes the paper's 77% headline.
func ExampleBandwidthUtilization() {
	measured := perf.LUPS(11245e9 / 160000) // per-CG share of 11245 GLUPS
	util := perf.BandwidthUtilization(measured, 32<<30)
	fmt.Printf("%.0f%%\n", util*100)
	// Output: 78%
}

// ExampleRate applies eq. (2) of the paper: P = M / t_s.
func ExampleRate() {
	r := perf.Rate(5.6e12, 0.4802) // 5.6T cells, one step
	fmt.Println(r)
	// Output: 11661.8 GLUPS
}
