package perf

import (
	"math"
	"strings"
	"testing"
)

// TestRooflinePaperArithmetic reproduces the §V-A calculation exactly:
// 32 GB/s ÷ 380 B/LUP = 90.4 MLUPS per CG, hence 14464 GLUPS for 160000
// CGs, and the measured 11245 GLUPS is 77% of it.
func TestRooflinePaperArithmetic(t *testing.T) {
	perCG := RooflineLUPS(32 << 30)
	if math.Abs(perCG.MLUPS()-90.4) > 0.5 {
		t.Errorf("per-CG roofline = %.2f MLUPS, paper says 90.4", perCG.MLUPS())
	}
	total := LUPS(float64(perCG) * 160000)
	if math.Abs(total.GLUPS()-14464) > 100 {
		t.Errorf("160000-CG roofline = %.0f GLUPS, paper says 14464", total.GLUPS())
	}
	util := BandwidthUtilization(LUPS(11245e9/160000.0), 32<<30)
	if math.Abs(util-0.77) > 0.015 {
		t.Errorf("utilization of 11245 GLUPS = %.3f, paper says 0.77", util)
	}
}

// TestHeadlineFlops: 11245 GLUPS × 418 flops/LUP ≈ 4.7 PFlops, and the new
// Sunway's 6583 GLUPS ≈ 2.76 PFlops — the same flops/LUP on both machines,
// confirming the constant.
func TestHeadlineFlops(t *testing.T) {
	if got := LUPS(11245e9).Flops(); math.Abs(got-4.7e15)/4.7e15 > 0.01 {
		t.Errorf("TaihuLight sustained = %.3g, paper says 4.7 PFlops", got)
	}
	if got := LUPS(6583e9).Flops(); math.Abs(got-2.76e15)/2.76e15 > 0.01 {
		t.Errorf("new Sunway sustained = %.3g, paper says 2.76 PFlops", got)
	}
}

// TestNewSunwayRoofline: 51.2 GB/s ÷ 380 = 134.7 MLUPS/CG; 60000 CGs at
// 81.4% gives the paper's 6583 GLUPS.
func TestNewSunwayRoofline(t *testing.T) {
	perCG := NewSunway.Roofline()
	if math.Abs(perCG.MLUPS()-134.7) > 0.5 {
		t.Errorf("Pro per-CG roofline = %.2f MLUPS, want 134.7", perCG.MLUPS())
	}
	total := LUPS(float64(NewSunway.MeasuredCGRate) * 60000)
	if math.Abs(total.GLUPS()-6583)/6583 > 0.01 {
		t.Errorf("60000-CG measured = %.0f GLUPS, paper says 6583", total.GLUPS())
	}
}

func TestRate(t *testing.T) {
	// The paper's urban case: 271 billion cells — at 8000 GLUPS one step
	// takes ~34 ms.
	r := Rate(271e9, 0.034)
	if math.Abs(r.GLUPS()-7970)/7970 > 0.01 {
		t.Errorf("rate = %v", r)
	}
	if Rate(100, 0) != 0 {
		t.Error("zero time must yield zero rate")
	}
}

func TestLUPSString(t *testing.T) {
	for l, want := range map[LUPS]string{
		LUPS(11245e9): "GLUPS",
		LUPS(90.4e6):  "MLUPS",
		LUPS(100):     "LUPS",
	} {
		if !strings.Contains(l.String(), want) {
			t.Errorf("%v.String() = %q, want unit %q", float64(l), l.String(), want)
		}
	}
}

func TestParallelEfficiency(t *testing.T) {
	// Perfect weak scaling: rate scales with units.
	if got := ParallelEfficiency(LUPS(70e6), LUPS(70e6*100), 1, 100); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect scaling efficiency = %v", got)
	}
	// The paper's weak-scaling endpoint: 11245 GLUPS at 160000 CGs vs
	// one CG at ~74.8 MLUPS → ≈94%.
	base := LUPS(74.8e6)
	got := ParallelEfficiency(base, LUPS(11245e9), 1, 160000)
	if math.Abs(got-0.94) > 0.01 {
		t.Errorf("paper weak-scaling efficiency = %.3f, want ≈0.94", got)
	}
	if ParallelEfficiency(0, LUPS(1), 1, 2) != 0 {
		t.Error("degenerate input must yield 0")
	}
}

func TestMachineUtilizations(t *testing.T) {
	cases := []struct {
		m    Machine
		want float64
	}{
		{TaihuLight, 0.77},
		{NewSunway, 0.814},
		{RTX3090, 0.838},
	}
	for _, c := range cases {
		if got := c.m.Utilization(); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s utilization = %v, want %v", c.m.Name, got, c.want)
		}
	}
}

// TestBFRatio checks the paper's §III-C motivation number: SW26010-Pro has
// B/F ≈ 0.022, far below a balanced machine.
func TestBFRatio(t *testing.T) {
	bf := 307.2e9 / 14.03e12
	if math.Abs(bf-0.022) > 0.001 {
		t.Errorf("SW26010-Pro B/F = %.4f, paper says 0.022", bf)
	}
}

// TestPaperTrafficClaims checks §IV-C-3's arithmetic: "each core group
// contains 35 million cells, resulting in a total of 12 GB data
// transferred between main memory and LDM for one time step".
func TestPaperTrafficClaims(t *testing.T) {
	cells := 500.0 * 700 * 100 // the weak-scaling block per CG
	if cells != 35e6 {
		t.Fatalf("block holds %g cells, paper says 35 million", cells)
	}
	gb := cells * BytesPerLUP / 1e9
	// 35e6 × 380 B = 13.3 GB; the paper rounds to "12 GB".
	if gb < 11 || gb > 14 {
		t.Errorf("per-step traffic = %.1f GB, paper says ≈12 GB", gb)
	}
}

// TestPaperPerStepTime: 5.6 T cells at 11245 GLUPS is ≈0.5 s per step,
// and the urban case's reported 0.054 s/step at >8000 GLUPS implies
// 271 G cells — internally consistent within the paper's rounding.
func TestPaperPerStepTime(t *testing.T) {
	step := 5.6e12 / 11245e9
	if math.Abs(step-0.498) > 0.005 {
		t.Errorf("weak-scaling step = %.3f s", step)
	}
	// Urban: 271e9 cells / 8000 GLUPS = 0.034 s; the paper quotes
	// 0.054 s — the discrepancy is the paper's own (we note it, not
	// reproduce it).
	urban := 271e9 / 8000e9
	if urban > 0.054 {
		t.Errorf("urban step lower bound %.3f s exceeds the paper's 0.054 s", urban)
	}
}
