package perf

import (
	"fmt"
	"time"
)

// RecoveryStats accounts for the fault-tolerance overhead of a supervised
// run — the §IV-B checkpoint/restart controller's scorecard. LostSteps ×
// the per-step LUPS rate gives the recomputation cost of a failure;
// Restarts and TimeToRecover bound the control-plane overhead; the
// checkpoint counters show how often the health gate and the integrity
// verification earned their keep. The multi-level counters split the
// restarts by severity: HotSwaps recovered from memory (L2 buddy copies
// or L3 parity) with no disk access and no global rollback past the last
// snapshot, DiskRollbacks escalated to the L4 checkpoint file.
type RecoveryStats struct {
	// Restarts counts supervised world teardown + restore cycles
	// (HotSwaps + DiskRollbacks).
	Restarts int `json:"restarts"`
	// LostSteps is the total forward progress discarded by rollbacks
	// (furthest step reached minus the step resumed from, summed over
	// restarts).
	LostSteps int `json:"lost_steps"`
	// Shrinks counts restarts that re-decomposed onto fewer ranks.
	Shrinks int `json:"shrinks"`
	// CheckpointsWritten counts verified-good checkpoints accepted as
	// rollback targets.
	CheckpointsWritten int `json:"checkpoints_written"`
	// CheckpointsRejected counts checkpoints refused by the health gate
	// or failing read-back verification (corruption).
	CheckpointsRejected int `json:"checkpoints_rejected"`
	// TimeToRecover is the wall-clock time spent in rollback machinery
	// (teardown, re-decomposition, restore), excluding step replay —
	// replay cost is LostSteps at the solver's step rate.
	TimeToRecover time.Duration `json:"time_to_recover_ns"`

	// HotSwaps counts restarts repaired from the in-memory snapshot
	// hierarchy with the world size preserved (no disk, no shrink).
	HotSwaps int `json:"hot_swaps"`
	// DiskRollbacks counts restarts that escalated to the L4 disk
	// checkpoint (multi-loss in a parity group, no valid generation).
	DiskRollbacks int `json:"disk_rollbacks"`
	// BuddyRestores counts dead blocks recovered from an L2 buddy copy.
	BuddyRestores int `json:"buddy_restores"`
	// Reconstructions counts dead blocks rebuilt from L3 parity algebra.
	Reconstructions int `json:"reconstructions"`
	// SparesUsed counts spare ranks consumed by hot swaps.
	SparesUsed int `json:"spares_used"`
	// SnapshotBytes is the cumulative bytes deposited per checkpoint
	// level (L1 own, L2 buddy, L3 parity, L4 disk).
	SnapshotBytes [4]int64 `json:"snapshot_bytes"`
	// Downtime is the wall-clock time the simulation made no forward
	// progress because of failures: from failure detection to the world
	// resuming (either recovery path).
	Downtime time.Duration `json:"downtime_ns"`
}

// Merge accumulates another run's recovery scorecard into r — the
// service-level aggregation: the lbmserve /metrics endpoint sums every
// job's stats into one fleet view. Counters and byte ledgers add;
// durations add (MTTR stays consistent because Downtime and Restarts
// both accumulate).
func (r *RecoveryStats) Merge(o RecoveryStats) {
	r.Restarts += o.Restarts
	r.LostSteps += o.LostSteps
	r.Shrinks += o.Shrinks
	r.CheckpointsWritten += o.CheckpointsWritten
	r.CheckpointsRejected += o.CheckpointsRejected
	r.TimeToRecover += o.TimeToRecover
	r.HotSwaps += o.HotSwaps
	r.DiskRollbacks += o.DiskRollbacks
	r.BuddyRestores += o.BuddyRestores
	r.Reconstructions += o.Reconstructions
	r.SparesUsed += o.SparesUsed
	for i := range r.SnapshotBytes {
		r.SnapshotBytes[i] += o.SnapshotBytes[i]
	}
	r.Downtime += o.Downtime
}

// Clean reports whether the run needed no recovery at all.
func (r RecoveryStats) Clean() bool {
	return r.Restarts == 0 && r.CheckpointsRejected == 0
}

// MTTR returns the mean time to repair: total downtime divided by the
// number of repairs (zero when nothing failed).
func (r RecoveryStats) MTTR() time.Duration {
	if r.Restarts == 0 {
		return 0
	}
	return r.Downtime / time.Duration(r.Restarts)
}

// String implements fmt.Stringer.
func (r RecoveryStats) String() string {
	s := fmt.Sprintf("restarts=%d (hot-swaps=%d, disk=%d, shrinks=%d), lost steps=%d, checkpoints %d good/%d rejected, recovery time %v",
		r.Restarts, r.HotSwaps, r.DiskRollbacks, r.Shrinks, r.LostSteps,
		r.CheckpointsWritten, r.CheckpointsRejected,
		r.TimeToRecover.Round(time.Microsecond))
	if r.Restarts > 0 {
		s += fmt.Sprintf(", MTTR %v", r.MTTR().Round(time.Microsecond))
	}
	if r.BuddyRestores > 0 || r.Reconstructions > 0 {
		s += fmt.Sprintf(", blocks recovered %d buddy/%d parity", r.BuddyRestores, r.Reconstructions)
	}
	if r.SparesUsed > 0 {
		s += fmt.Sprintf(", spares used %d", r.SparesUsed)
	}
	return s
}

// ReplayCost returns the modelled recomputation time of the lost steps
// for a domain of cells advancing at the given rate.
func (r RecoveryStats) ReplayCost(cells int64, rate LUPS) float64 {
	if rate <= 0 {
		return 0
	}
	return float64(r.LostSteps) * float64(cells) / float64(rate)
}
