package perf

import (
	"fmt"
	"time"
)

// RecoveryStats accounts for the fault-tolerance overhead of a supervised
// run — the §IV-B checkpoint/restart controller's scorecard. LostSteps ×
// the per-step LUPS rate gives the recomputation cost of a failure;
// Restarts and TimeToRecover bound the control-plane overhead; the
// checkpoint counters show how often the health gate and the integrity
// verification earned their keep.
type RecoveryStats struct {
	// Restarts counts supervised world teardown + restore cycles.
	Restarts int
	// LostSteps is the total forward progress discarded by rollbacks
	// (furthest step reached minus the step resumed from, summed over
	// restarts).
	LostSteps int
	// Shrinks counts restarts that re-decomposed onto fewer ranks.
	Shrinks int
	// CheckpointsWritten counts verified-good checkpoints accepted as
	// rollback targets.
	CheckpointsWritten int
	// CheckpointsRejected counts checkpoints refused by the health gate
	// or failing read-back verification (corruption).
	CheckpointsRejected int
	// TimeToRecover is the wall-clock time spent in rollback machinery
	// (teardown, re-decomposition, restore), excluding step replay —
	// replay cost is LostSteps at the solver's step rate.
	TimeToRecover time.Duration
}

// Clean reports whether the run needed no recovery at all.
func (r RecoveryStats) Clean() bool {
	return r.Restarts == 0 && r.CheckpointsRejected == 0
}

// String implements fmt.Stringer.
func (r RecoveryStats) String() string {
	return fmt.Sprintf("restarts=%d (shrinks=%d), lost steps=%d, checkpoints %d good/%d rejected, recovery time %v",
		r.Restarts, r.Shrinks, r.LostSteps, r.CheckpointsWritten, r.CheckpointsRejected,
		r.TimeToRecover.Round(time.Microsecond))
}

// ReplayCost returns the modelled recomputation time of the lost steps
// for a domain of cells advancing at the given rate.
func (r RecoveryStats) ReplayCost(cells int64, rate LUPS) float64 {
	if rate <= 0 {
		return 0
	}
	return float64(r.LostSteps) * float64(cells) / float64(rate)
}
