package perf

import (
	"math"
	"strings"
	"testing"
)

func TestMonitorRecord(t *testing.T) {
	m := NewMonitor(1000)
	for _, s := range []float64{0.01, 0.02, 0.03} {
		m.Record(s)
	}
	if m.Steps() != 3 {
		t.Fatalf("steps = %d", m.Steps())
	}
	if math.Abs(m.Total()-0.06) > 1e-12 {
		t.Errorf("total = %v", m.Total())
	}
	if math.Abs(m.Mean()-0.02) > 1e-12 {
		t.Errorf("mean = %v", m.Mean())
	}
	// 3000 cells in 0.06 s = 50 kLUPS.
	if got := float64(m.Rate()); math.Abs(got-50000) > 1e-6 {
		t.Errorf("rate = %v", got)
	}
	if got := m.SustainedFlops(); math.Abs(got-50000*FlopsPerLUP) > 1e-3 {
		t.Errorf("flops = %v", got)
	}
}

func TestMonitorPercentiles(t *testing.T) {
	m := NewMonitor(1)
	for i := 1; i <= 100; i++ {
		m.Record(float64(i))
	}
	if p := m.Percentile(0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := m.Percentile(100); p != 100 {
		t.Errorf("p100 = %v", p)
	}
	if p := m.Percentile(50); math.Abs(p-50.5) > 1e-9 {
		t.Errorf("p50 = %v", p)
	}
}

func TestMonitorStartEnd(t *testing.T) {
	m := NewMonitor(10)
	m.StepStart()
	m.StepEnd()
	if m.Steps() != 1 || m.Total() < 0 {
		t.Errorf("timed step not recorded: %d", m.Steps())
	}
	// StepEnd without StepStart is a no-op.
	m.StepEnd()
	if m.Steps() != 1 {
		t.Error("unmatched StepEnd recorded a sample")
	}
}

func TestMonitorSummaryAndReset(t *testing.T) {
	m := NewMonitor(100)
	if !strings.Contains(m.Summary(), "no steps") {
		t.Error("empty summary wrong")
	}
	m.Record(0.5)
	if s := m.Summary(); !strings.Contains(s, "1 steps") {
		t.Errorf("summary = %q", s)
	}
	m.Reset()
	if m.Steps() != 0 {
		t.Error("reset failed")
	}
	if m.Rate() != 0 {
		t.Error("rate after reset must be 0")
	}
	if m.Percentile(50) != 0 || m.Mean() != 0 {
		t.Error("stats after reset must be 0")
	}
}

func TestDominantPeriod(t *testing.T) {
	// A clean sinusoid with period 25.
	sig := make([]float64, 300)
	for i := range sig {
		sig[i] = 3 + math.Sin(2*math.Pi*float64(i)/25)
	}
	p, ok := DominantPeriod(sig)
	if !ok || math.Abs(p-25) > 0.5 {
		t.Errorf("period = %v (ok=%v), want 25", p, ok)
	}
	// Flat and short signals are rejected.
	if _, ok := DominantPeriod(make([]float64, 300)); ok {
		t.Error("flat signal must not report a period")
	}
	if _, ok := DominantPeriod([]float64{1, 2}); ok {
		t.Error("short signal must not report a period")
	}
}

func TestMonitorSamples(t *testing.T) {
	m := NewMonitor(100)
	in := []float64{0.03, 0.01, 0.02}
	for _, s := range in {
		m.Record(s)
	}
	got := m.Samples()
	if len(got) != len(in) {
		t.Fatalf("samples = %v, want %v", got, in)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("samples[%d] = %v, want %v (recording order)", i, got[i], in[i])
		}
	}
	// The returned slice is a copy: mutating it must not touch the monitor.
	got[0] = 99
	if m.Samples()[0] != in[0] {
		t.Error("Samples must return a copy")
	}
	if m.Total() != 0.06 {
		t.Errorf("total changed to %v after mutating the copy", m.Total())
	}
}

func TestMonitorSummaryStats(t *testing.T) {
	m := NewMonitor(1000)
	for _, s := range []float64{0.01, 0.02, 0.03, 0.04} {
		m.Record(s)
	}
	sum := m.SummaryStats()
	if sum.Steps != 4 || sum.Cells != 1000 {
		t.Fatalf("summary = %+v", sum)
	}
	if math.Abs(sum.TotalSec-0.10) > 1e-12 || math.Abs(sum.MeanSec-0.025) > 1e-12 {
		t.Errorf("total/mean = %v/%v", sum.TotalSec, sum.MeanSec)
	}
	if math.Abs(sum.P50Sec-m.Percentile(50)) > 1e-15 || math.Abs(sum.P99Sec-m.Percentile(99)) > 1e-15 {
		t.Errorf("percentiles = %v/%v", sum.P50Sec, sum.P99Sec)
	}
	wantMLUPS := float64(m.Rate()) / 1e6
	if math.Abs(sum.MLUPS-wantMLUPS) > 1e-12 {
		t.Errorf("mlups = %v, want %v", sum.MLUPS, wantMLUPS)
	}
	// Empty monitor: zero stats (only Cells carries over), no panic.
	if got := NewMonitor(5).SummaryStats(); got != (Summary{Cells: 5}) {
		t.Errorf("empty monitor summary = %+v", got)
	}
}
