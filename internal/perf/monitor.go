package perf

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Monitor accumulates per-step timings during a run — the role the PERF
// performance monitor plays on Sunway TaihuLight (§V: "The performance in
// terms of Flops is measured by a performance monitor ... called PERF").
// It reports rates, sustained flops and step-time statistics.
type Monitor struct {
	// Cells is the number of lattice cells updated per step.
	Cells int64

	samples []float64
	started time.Time
	running bool
}

// NewMonitor creates a monitor for a domain of the given size.
func NewMonitor(cells int64) *Monitor { return &Monitor{Cells: cells} }

// StepStart marks the beginning of a step.
func (m *Monitor) StepStart() {
	m.started = time.Now()
	m.running = true
}

// StepEnd marks the end of a step and records its duration.
func (m *Monitor) StepEnd() {
	if !m.running {
		return
	}
	m.Record(time.Since(m.started).Seconds())
	m.running = false
}

// Record adds an externally measured step duration (e.g. a simulated
// time from the Sunway engine).
func (m *Monitor) Record(seconds float64) {
	m.samples = append(m.samples, seconds)
}

// Steps returns the number of recorded steps.
func (m *Monitor) Steps() int { return len(m.samples) }

// Total returns the summed step time.
func (m *Monitor) Total() float64 {
	t := 0.0
	for _, s := range m.samples {
		t += s
	}
	return t
}

// Mean returns the average step time.
func (m *Monitor) Mean() float64 {
	if len(m.samples) == 0 {
		return 0
	}
	return m.Total() / float64(len(m.samples))
}

// Percentile returns the p-th percentile step time (p in [0,100]).
func (m *Monitor) Percentile(p float64) float64 {
	if len(m.samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), m.samples...)
	sort.Float64s(sorted)
	idx := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Rate returns the average update rate over all recorded steps.
func (m *Monitor) Rate() LUPS {
	t := m.Total()
	if t <= 0 {
		return 0
	}
	return Rate(m.Cells*int64(len(m.samples)), t)
}

// SustainedFlops returns the implied floating-point rate.
func (m *Monitor) SustainedFlops() float64 { return m.Rate().Flops() }

// Summary formats a one-line report.
func (m *Monitor) Summary() string {
	if len(m.samples) == 0 {
		return "no steps recorded"
	}
	return fmt.Sprintf("%d steps, %s, mean %.3g s/step (p50 %.3g, p99 %.3g)",
		m.Steps(), m.Rate(), m.Mean(), m.Percentile(50), m.Percentile(99))
}

// Samples returns a copy of the recorded per-step durations in
// recording order, so consumers (benchsuite, trace tooling) build on
// the public API instead of re-deriving statistics.
func (m *Monitor) Samples() []float64 {
	return append([]float64(nil), m.samples...)
}

// Summary is the machine-readable digest of a monitored run, shaped for
// JSON (the BENCH_results.json schema of cmd/benchsuite).
type Summary struct {
	Steps    int     `json:"steps"`
	Cells    int64   `json:"cells"`
	TotalSec float64 `json:"total_sec"`
	MeanSec  float64 `json:"mean_sec"`
	P50Sec   float64 `json:"p50_sec"`
	P99Sec   float64 `json:"p99_sec"`
	MLUPS    float64 `json:"mlups"`
}

// SummaryStats computes the digest from the recorded samples.
func (m *Monitor) SummaryStats() Summary {
	return Summary{
		Steps:    m.Steps(),
		Cells:    m.Cells,
		TotalSec: m.Total(),
		MeanSec:  m.Mean(),
		P50Sec:   m.Percentile(50),
		P99Sec:   m.Percentile(99),
		MLUPS:    float64(m.Rate()) / 1e6,
	}
}

// Reset clears all samples.
func (m *Monitor) Reset() { m.samples = m.samples[:0]; m.running = false }

// DominantPeriod estimates the period of an oscillating signal from the
// mean spacing of its upward mean-crossings — the estimator behind the
// Strouhal-number measurements of the cylinder benchmark. It returns
// ok=false when fewer than three crossings exist (signal not yet
// periodic).
func DominantPeriod(signal []float64) (period float64, ok bool) {
	if len(signal) < 8 {
		return 0, false
	}
	mean := 0.0
	for _, v := range signal {
		mean += v
	}
	mean /= float64(len(signal))
	var crossings []int
	for i := 1; i < len(signal); i++ {
		if signal[i-1]-mean < 0 && signal[i]-mean >= 0 {
			crossings = append(crossings, i)
		}
	}
	if len(crossings) < 3 {
		return 0, false
	}
	return float64(crossings[len(crossings)-1]-crossings[0]) / float64(len(crossings)-1), true
}
