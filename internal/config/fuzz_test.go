package config

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadCase: arbitrary bytes through the case-file parser must never
// panic; anything Read accepts must satisfy the documented invariants and
// survive a Write/Read round trip unchanged. The corpus is seeded from
// the shipped cases/*.json so the fuzzer starts from real inputs.
func FuzzReadCase(f *testing.F) {
	for _, name := range []string{"cavity.json", "cylinder.json", "urban-les.json"} {
		b, err := os.ReadFile(filepath.Join("..", "..", "cases", name))
		if err != nil {
			f.Fatalf("seed corpus: %v", err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"t","nx":4,"ny":4,"nz":4,"tau":0.8,"steps":1}`))
	f.Add([]byte(`{"nx":4,"ny":4,"nz":4,"re":100,"u":0.05,"l":4,"steps":2}`))
	f.Add([]byte(`{"nx":-1,"ny":4,"nz":4,"tau":0.8,"steps":1}`))
	f.Add([]byte(`{"nx":4,"ny":4,"nz":4,"tau":0.5,"steps":1}`))
	f.Add([]byte(`{"nx":4,"ny":4,"nz":4,"tau":0.8,"steps":1,"units":{"Dx":0.01,"Dt":0.001}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking or accepting garbage is not
		}
		if c.NX < 1 || c.NY < 1 || c.NZ < 1 {
			t.Fatalf("accepted invalid dimensions %d×%d×%d", c.NX, c.NY, c.NZ)
		}
		if c.Steps < 0 {
			t.Fatalf("accepted negative step count %d", c.Steps)
		}
		if c.Tau <= 0.5 {
			t.Fatalf("accepted unstable tau=%v (Validate must derive or reject)", c.Tau)
		}
		if c.U > 0.3 {
			t.Fatalf("accepted super-low-Mach inlet velocity %v", c.U)
		}
		// Round trip: the serialised form re-reads to the same case.
		var buf bytes.Buffer
		if err := c.Write(&buf); err != nil {
			t.Fatalf("accepted case does not serialise: %v", err)
		}
		first := buf.String()
		c2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\ncase: %s", err, first)
		}
		var buf2 bytes.Buffer
		if err := c2.Write(&buf2); err != nil {
			t.Fatal(err)
		}
		if buf2.String() != first {
			t.Fatalf("round trip not a fixed point:\n%s\nvs\n%s", first, buf2.String())
		}
	})
}
