package config

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestUnitsRoundTrip(t *testing.T) {
	u := Units{Dx: 0.1, Dt: 0.001}
	// The paper's urban case: 8 m/s wind, 0.1 m resolution.
	vLat := u.VelocityToLattice(8.0)
	if math.Abs(vLat-0.08) > 1e-12 {
		t.Errorf("8 m/s -> %v lattice, want 0.08", vLat)
	}
	if back := u.VelocityToPhysical(vLat); math.Abs(back-8.0) > 1e-12 {
		t.Errorf("round trip = %v", back)
	}
	// Air: ν ≈ 1.5e-5 m²/s.
	nuLat := u.ViscosityToLattice(1.5e-5)
	if math.Abs(nuLat-1.5e-6) > 1e-18 {
		t.Errorf("viscosity -> %v", nuLat)
	}
	if got := u.TimeToPhysical(2000); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("2000 steps = %v s", got)
	}
}

func TestReynoldsAndTau(t *testing.T) {
	// Re = u·L/ν.
	if got := Reynolds(0.05, 40, 0.0005128); math.Abs(got-3900)/3900 > 0.01 {
		t.Errorf("Re = %v, want ≈3900 (the paper's cylinder)", got)
	}
	if Reynolds(0.1, 10, 0) != 0 {
		t.Error("zero viscosity must yield 0")
	}
	tau, err := TauForReynolds(3900, 0.05, 40)
	if err != nil {
		t.Fatal(err)
	}
	nu := (2*tau - 1) / 6
	if math.Abs(0.05*40/nu-3900)/3900 > 1e-9 {
		t.Errorf("tau=%v does not realise Re=3900", tau)
	}
	// Unstable setups are rejected with guidance.
	if _, err := TauForReynolds(-1, 0.05, 40); err == nil {
		t.Error("negative Re must error")
	}
}

func TestCaseValidate(t *testing.T) {
	good := Case{Name: "ok", NX: 10, NY: 10, NZ: 10, Tau: 0.8, Steps: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid case rejected: %v", err)
	}
	cases := []Case{
		{Name: "dims", NX: 0, NY: 1, NZ: 1, Tau: 0.8},
		{Name: "steps", NX: 2, NY: 2, NZ: 2, Tau: 0.8, Steps: -1},
		{Name: "tau", NX: 2, NY: 2, NZ: 2, Tau: 0.4},
		{Name: "mach", NX: 2, NY: 2, NZ: 2, Tau: 0.8, U: 0.5},
		{Name: "re", NX: 2, NY: 2, NZ: 2, Re: -5},
	}
	for _, c := range cases {
		c := c
		if err := c.Validate(); err == nil {
			t.Errorf("case %q should be rejected", c.Name)
		}
	}
}

func TestCaseDerivesTau(t *testing.T) {
	c := Case{Name: "cyl", NX: 100, NY: 50, NZ: 10, Re: 100, U: 0.05, L: 10, Steps: 1}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Tau <= 0.5 {
		t.Errorf("derived tau = %v", c.Tau)
	}
}

func TestCaseJSONRoundTrip(t *testing.T) {
	c := Case{
		Name: "round", NX: 12, NY: 8, NZ: 4, Tau: 0.72,
		Smagorinsky: 0.17, Steps: 100, OutputEvery: 10,
		Units: &Units{Dx: 0.5, Dt: 0.01},
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *c2.Units != *c.Units {
		t.Error("units lost")
	}
	c2.Units = c.Units
	if *c2 != c {
		t.Errorf("round trip changed the case: %+v vs %+v", *c2, c)
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"name":"x","nx":2,"ny":2,"nz":2,"tau":0.8,"steps":1,"typo_field":3}`)); err == nil {
		t.Error("unknown field must be rejected")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage must be rejected")
	}
	if _, err := Read(strings.NewReader(`{"name":"x","nx":0,"ny":2,"nz":2,"tau":0.8}`)); err == nil {
		t.Error("invalid case must be rejected at read")
	}
}
