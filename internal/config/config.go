// Package config defines SunwayLB's case configuration (the "outline
// described directly inside SunwayLB" input path of the pre-processing
// module, §IV-B) and the unit conversion between physical and lattice
// quantities that every CFD setup needs.
package config

import (
	"encoding/json"
	"fmt"
	"io"

	"sunwaylb/internal/lattice"
)

// Units converts between physical (SI) and lattice units. A lattice is
// fixed by the cell size Dx [m] and time step Dt [s]; velocities scale by
// Dx/Dt and kinematic viscosities by Dx²/Dt.
type Units struct {
	// Dx is the lattice spacing in metres.
	Dx float64
	// Dt is the time-step length in seconds.
	Dt float64
}

// VelocityToLattice converts a physical velocity [m/s] to lattice units.
func (u Units) VelocityToLattice(v float64) float64 { return v * u.Dt / u.Dx }

// VelocityToPhysical converts a lattice velocity to m/s.
func (u Units) VelocityToPhysical(v float64) float64 { return v * u.Dx / u.Dt }

// ViscosityToLattice converts a kinematic viscosity [m²/s] to lattice
// units.
func (u Units) ViscosityToLattice(nu float64) float64 { return nu * u.Dt / (u.Dx * u.Dx) }

// TimeToPhysical converts a step count to seconds.
func (u Units) TimeToPhysical(steps int) float64 { return float64(steps) * u.Dt }

// Reynolds returns the Reynolds number for characteristic velocity U
// and length L given in lattice units with lattice viscosity nu.
func Reynolds(uLat, lLat, nuLat float64) float64 {
	if nuLat == 0 {
		return 0
	}
	return uLat * lLat / nuLat
}

// TauForReynolds returns the LBGK relaxation time that realises the target
// Reynolds number with characteristic lattice velocity uLat and length
// lLat (in cells): τ = 3·(u·L/Re) + ½.
func TauForReynolds(re, uLat, lLat float64) (float64, error) {
	if re <= 0 || uLat <= 0 || lLat <= 0 {
		return 0, fmt.Errorf("config: invalid Reynolds setup Re=%v u=%v L=%v", re, uLat, lLat)
	}
	nu := uLat * lLat / re
	tau := lattice.Tau(nu)
	if tau <= 0.5 {
		return 0, fmt.Errorf("config: Re=%v with u=%v L=%v needs tau=%v ≤ 0.5 (unstable); refine the mesh", re, uLat, lLat, tau)
	}
	return tau, nil
}

// Case is a complete simulation description, serialisable as JSON.
type Case struct {
	// Name labels outputs.
	Name string `json:"name"`
	// NX, NY, NZ are the lattice dimensions.
	NX int `json:"nx"`
	NY int `json:"ny"`
	NZ int `json:"nz"`
	// Tau is the relaxation time; if zero it is derived from Re, U and L.
	Tau float64 `json:"tau,omitempty"`
	// Re, U, L specify the flow when Tau is not given directly: Reynolds
	// number, inlet velocity (lattice units) and characteristic length
	// (cells).
	Re float64 `json:"re,omitempty"`
	U  float64 `json:"u,omitempty"`
	L  float64 `json:"l,omitempty"`
	// Smagorinsky enables LES with the given constant.
	Smagorinsky float64 `json:"smagorinsky,omitempty"`
	// Steps is the number of time steps to run.
	Steps int `json:"steps"`
	// OutputEvery writes diagnostics every n steps (0 = only at the end).
	OutputEvery int `json:"output_every,omitempty"`
	// CheckpointEvery writes a checkpoint every n steps (0 = never).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Units for physical output (optional).
	Units *Units `json:"units,omitempty"`
}

// Validate checks the case for consistency and derives Tau if needed.
func (c *Case) Validate() error {
	if c.NX < 1 || c.NY < 1 || c.NZ < 1 {
		return fmt.Errorf("config: case %q has invalid dimensions %d×%d×%d", c.Name, c.NX, c.NY, c.NZ)
	}
	if c.Steps < 0 {
		return fmt.Errorf("config: case %q has negative step count", c.Name)
	}
	if c.Tau == 0 {
		tau, err := TauForReynolds(c.Re, c.U, c.L)
		if err != nil {
			return fmt.Errorf("config: case %q: %w", c.Name, err)
		}
		c.Tau = tau
	}
	if c.Tau <= 0.5 {
		return fmt.Errorf("config: case %q has tau=%v ≤ 0.5", c.Name, c.Tau)
	}
	if c.U > 0.3 {
		return fmt.Errorf("config: case %q inlet velocity %v exceeds the low-Mach limit (≈0.3 c_s·√3)", c.Name, c.U)
	}
	return nil
}

// Read parses and validates a JSON case.
func Read(r io.Reader) (*Case, error) {
	var c Case
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("config: parsing case: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Write serialises the case as indented JSON.
func (c *Case) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("config: writing case: %w", err)
	}
	return nil
}
