package patch

import (
	"fmt"
	"strconv"
	"strings"

	"sunwaylb/internal/core"
	"sunwaylb/internal/gpu"
	"sunwaylb/internal/psolve"
	"sunwaylb/internal/sunway"
	"sunwaylb/internal/swlb"
	"sunwaylb/internal/trace"
)

// Backend selects the executor a worker uses to advance its patches.
type Backend uint8

const (
	// BackendCore steps patches with the serial fused core kernel.
	BackendCore Backend = iota
	// BackendSunway steps patches with the internal/swlb CPE-group engine.
	BackendSunway
	// BackendGPU steps patches with the internal/gpu engine.
	BackendGPU
)

func (b Backend) String() string {
	switch b {
	case BackendCore:
		return "core"
	case BackendSunway:
		return "sunway"
	case BackendGPU:
		return "gpu"
	}
	return fmt.Sprintf("backend(%d)", uint8(b))
}

// Worker describes one owner slot of the patch world: which executor it
// runs and how the straggler model scales its measured cost. The zero
// value is a clean core-kernel worker.
type Worker struct {
	Backend Backend
	// Straggle inflates this worker's per-patch cost samples (the
	// modelled "slow node"); values ≤ 1 mean no inflation. It biases the
	// balancer only — wall-clock execution is untouched, so results stay
	// bit-identical.
	Straggle float64
	// Stepper overrides the backend's default executor factory; nil uses
	// the factory implied by Backend.
	Stepper func(*core.Lattice) (psolve.Stepper, error)
}

// coreStepper adapts the serial fused kernel to the psolve.Stepper
// contract (zero sim-time: the wall clock is the measurement).
type coreStepper struct{ l *core.Lattice }

func (s coreStepper) Step() float64 { s.l.StepFused(); return 0 }
func (s coreStepper) Rebuild()      {}

// newStepper builds the executor for one patch lattice on this worker.
func (w Worker) newStepper(l *core.Lattice) (psolve.Stepper, error) {
	if w.Stepper != nil {
		return w.Stepper(l)
	}
	switch w.Backend {
	case BackendSunway:
		return swlb.New(l, sunway.SW26010, swlb.DefaultOptions())
	case BackendGPU:
		return gpu.NewEngine(l, gpu.RTX3090Cluster, gpu.Fig11Final())
	default:
		return coreStepper{l: l}, nil
	}
}

// traceSetter mirrors psolve's: steppers that can record their internal
// phases accept the rank's trace handle.
type traceSetter interface {
	SetTrace(tr *trace.RankTracer)
}

// ParseWorkers parses a worker roster like "core,core*8,sunway,gpu":
// a comma-separated list of backend names, each optionally scaled by a
// straggle factor (`name*F`) and repeatable as `name xN` is not — write
// the entry N times instead. Whitespace around entries is ignored.
func ParseWorkers(s string) ([]Worker, error) {
	var out []Worker
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(strings.ToLower(tok))
		if tok == "" {
			continue
		}
		name, factor := tok, ""
		if i := strings.IndexByte(tok, '*'); i >= 0 {
			name, factor = tok[:i], tok[i+1:]
		}
		var w Worker
		switch name {
		case "core", "cpu":
			w.Backend = BackendCore
		case "sunway", "swlb":
			w.Backend = BackendSunway
		case "gpu":
			w.Backend = BackendGPU
		default:
			return nil, fmt.Errorf("patch: unknown worker backend %q (want core|sunway|gpu)", name)
		}
		if factor != "" {
			f, err := strconv.ParseFloat(factor, 64)
			if err != nil || f <= 0 {
				return nil, fmt.Errorf("patch: bad straggle factor %q in %q", factor, tok)
			}
			w.Straggle = f
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("patch: empty worker roster %q", s)
	}
	return out, nil
}
