package patch

import (
	"sort"

	"sunwaylb/internal/mpi"
)

// Stats summarises a patch-mode run for benchmarks and the service
// gauges. Only rank 0 writes it (during the run), and it is read after
// the world joins.
type Stats struct {
	// Patches and Workers describe the final topology (Workers shrinks
	// when a supervised run loses owners).
	Patches int `json:"patches"`
	Workers int `json:"workers"`
	// Rebalances counts adopted balancer plans; Migrations counts the
	// individual patch moves they caused (including forced rotations).
	Rebalances int `json:"rebalances"`
	Migrations int `json:"migrations"`
	// ImbalancePre is the per-worker step-cost imbalance (max/mean) at
	// the first measurement boundary; ImbalancePost is the ratio at the
	// end of the run — the balancer's effect is Pre − Post.
	ImbalancePre  float64 `json:"imbalance_pre"`
	ImbalancePost float64 `json:"imbalance_post"`
	// PatchesPerOwner is the final ownership histogram.
	PatchesPerOwner []int `json:"patches_per_owner"`
	// PatchMLUPS is the final modelled throughput of each patch
	// (cells / measured cost), indexed by patch ID.
	PatchMLUPS []float64 `json:"patch_mlups"`
	// Recoveries counts supervised migrations of dead owners' patches to
	// healthy workers; Restarts counts escalations that replayed from an
	// L4 checkpoint or from scratch.
	Recoveries int `json:"recoveries"`
	Restarts   int `json:"restarts"`
}

// rebalanceDue reports whether a balance boundary falls after `done`
// completed steps. Nothing moves after the final step.
func (n *node) rebalanceDue(done int) bool {
	if done >= n.rc.steps {
		return false
	}
	opt := n.rc.opt
	if opt.ForceMigrateEvery > 0 && done%opt.ForceMigrateEvery == 0 {
		return true
	}
	return opt.RebalanceEvery > 0 && done%opt.RebalanceEvery == 0
}

// collectCosts allgathers the per-patch EWMA costs masked to ownership
// and merges them into one vector every rank agrees on: entry p comes
// from p's owner. The contribution is freshly allocated because the
// transport passes references across ranks.
func (n *node) collectCosts() []float64 {
	P := n.til.P()
	vec := make([]float64, P)
	for _, p := range n.mine {
		vec[p] = n.cost[p]
	}
	msgs := n.c.Allgather(mpi.Message{Data: vec})
	merged := make([]float64, P)
	for p := 0; p < P; p++ {
		merged[p] = msgs[n.owner[p]].Data[p]
	}
	return merged
}

// workerLoads folds merged per-patch costs into per-worker loads and the
// max/mean imbalance ratio.
func (n *node) workerLoads(merged []float64) (loads []float64, imbalance float64) {
	loads = make([]float64, len(n.rc.opt.Workers))
	for p, c := range merged {
		loads[n.owner[p]] += c
	}
	total, max := 0.0, 0.0
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total > 0 {
		imbalance = max / (total / float64(len(loads)))
	}
	return loads, imbalance
}

// rebalance runs one balance boundary: merge measurements, decide a plan
// (forced rotation or greedy replan past the imbalance threshold), and
// migrate. Every rank computes the identical plan from the identical
// merged vector, so ownership stays replicated without a coordinator.
func (n *node) rebalance(done int) error {
	opt := n.rc.opt
	merged := n.collectCosts()
	loads, imbalance := n.workerLoads(merged)
	if n.me == 0 && n.rc.stats != nil {
		if n.rc.stats.ImbalancePre == 0 {
			n.rc.stats.ImbalancePre = imbalance
		}
		n.rc.stats.ImbalancePost = imbalance
	}

	var newOwner []int
	if opt.ForceMigrateEvery > 0 && done%opt.ForceMigrateEvery == 0 {
		newOwner = n.rotatePlan()
	} else if imbalance > opt.Threshold {
		newOwner = n.greedyPlan(merged, loads)
	}
	if newOwner == nil {
		return nil
	}
	if err := n.migrate(newOwner); err != nil {
		return err
	}
	// New owners inherit the merged estimates until they re-measure.
	copy(n.cost, merged)
	return nil
}

// rotatePlan moves every patch to the next worker — the deterministic
// forced-migration mode the conform oracle uses.
func (n *node) rotatePlan() []int {
	W := len(n.rc.opt.Workers)
	if W < 2 {
		return nil
	}
	newOwner := make([]int, len(n.owner))
	for p, o := range n.owner {
		newOwner[p] = (o + 1) % W
	}
	return newOwner
}

// greedyPlan is the measured-throughput replan: estimate each worker's
// seconds-per-cell from its current patches, then assign patches largest
// first to the worker with the least predicted load (LPT). The plan is
// adopted only if it shortens the predicted makespan by at least 2%, so
// noisy measurements cannot thrash patches back and forth.
func (n *node) greedyPlan(merged, loads []float64) []int {
	W := len(n.rc.opt.Workers)
	if W < 2 {
		return nil
	}
	cells := make([]float64, W)
	for p, o := range n.owner {
		cells[o] += float64(n.til.Patches[p].Cells())
	}
	spc := make([]float64, W)
	knownSum, known := 0.0, 0
	for w := 0; w < W; w++ {
		if cells[w] > 0 && loads[w] > 0 {
			spc[w] = loads[w] / cells[w]
			knownSum += spc[w]
			known++
		}
	}
	if known == 0 {
		return nil
	}
	mean := knownSum / float64(known)
	for w := 0; w < W; w++ {
		if spc[w] == 0 {
			spc[w] = mean // idle or unmeasured worker: assume average speed
		}
	}

	order := make([]int, len(n.owner))
	for p := range order {
		order[p] = p
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		ca, cb := n.til.Patches[a].Cells(), n.til.Patches[b].Cells()
		if ca != cb {
			return ca > cb
		}
		return a < b
	})
	newOwner := make([]int, len(n.owner))
	newLoad := make([]float64, W)
	for _, p := range order {
		best, bestCost := 0, 0.0
		for w := 0; w < W; w++ {
			c := newLoad[w] + float64(n.til.Patches[p].Cells())*spc[w]
			if w == 0 || c < bestCost {
				best, bestCost = w, c
			}
		}
		newOwner[p] = best
		newLoad[best] += float64(n.til.Patches[p].Cells()) * spc[best]
	}
	cur, pred := 0.0, 0.0
	for w := 0; w < W; w++ {
		if loads[w] > cur {
			cur = loads[w]
		}
		if newLoad[w] > pred {
			pred = newLoad[w]
		}
	}
	if pred >= cur*0.98 {
		return nil
	}
	return newOwner
}

// finishStats runs the final measurement collective and fills the
// throughput/ownership summary on rank 0. Every rank must call it (the
// cost merge is an allgather).
func (n *node) finishStats() error {
	merged := n.collectCosts()
	if n.me != 0 || n.rc.stats == nil {
		return nil
	}
	st := n.rc.stats
	_, imbalance := n.workerLoads(merged)
	if st.ImbalancePre == 0 {
		st.ImbalancePre = imbalance
	}
	st.ImbalancePost = imbalance
	st.Workers = len(n.rc.opt.Workers)
	st.PatchesPerOwner = make([]int, len(n.rc.opt.Workers))
	for _, o := range n.owner {
		st.PatchesPerOwner[o]++
	}
	st.PatchMLUPS = make([]float64, n.til.P())
	for p := range st.PatchMLUPS {
		if merged[p] > 0 {
			st.PatchMLUPS[p] = float64(n.til.Patches[p].Cells()) / merged[p] / 1e6
		}
	}
	return nil
}
