// Package patch implements the patch-based domain decomposition with
// measured-throughput load balancing of Feichtinger et al. ("A Flexible
// Patch-Based Lattice Boltzmann Parallelization for Heterogeneous
// GPU–CPU Clusters"): the global lattice is tiled into uniform patches —
// the unit of ownership — and an owner map assigns each patch to a
// worker backed by a heterogeneous executor (serial core kernel,
// internal/swlb, internal/gpu). A balancer samples per-patch step cost
// through internal/trace counters and migrates patches between workers
// when measurements (or the straggler model) skew step times beyond a
// threshold, so a slow backend no longer drags every BSP step.
//
// Unlike the static 1-D/2-D/3-D splits of internal/decomp, where a rank
// owns a fixed slab forever, patches outnumber workers and move: the
// spare-rank hot-swap of internal/resil generalises to "migrate this
// patch to a healthy owner" (see supervise.go), and elastic resize
// becomes an owner-map edit rather than a world rebuild.
package patch

import (
	"fmt"

	"sunwaylb/internal/decomp"
)

// Patch is one tile of the global lattice: a patch ID plus the cuboid it
// covers. IDs are dense and ordered z-major/y-mid/x-minor, matching
// decomp.Decompose3D's block layout, so id = (cz·TY+cy)·TX+cx.
type Patch struct {
	ID int
	decomp.Block
}

// Tiling is the uniform patch grid over a global lattice, together with
// its face-adjacency structure. It is immutable after NewTiling: the
// owner map (see world.go) changes at runtime, the tiling never does.
type Tiling struct {
	GNX, GNY, GNZ int // global lattice extents
	TX, TY, TZ    int // patches per axis
	Patches       []Patch
}

// NewTiling tiles a gnx×gny×gnz lattice into tx×ty×tz uniform patches
// using the fair-extent Split of internal/decomp (no two patch extents
// along an axis differ by more than one cell). Along any axis that is
// actually cut (parts > 1) every extent must be at least 2 cells, since
// the halo Pack/UnpackFace layers of a thinner patch would alias.
func NewTiling(gnx, gny, gnz, tx, ty, tz int) (*Tiling, error) {
	blocks, err := decomp.Decompose3D(gnx, gny, gnz, tx, ty, tz)
	if err != nil {
		return nil, err
	}
	t := &Tiling{GNX: gnx, GNY: gny, GNZ: gnz, TX: tx, TY: ty, TZ: tz}
	for id, b := range blocks {
		if (tx > 1 && b.NX < 2) || (ty > 1 && b.NY < 2) || (tz > 1 && b.NZ < 2) {
			return nil, fmt.Errorf("patch: tile %dx%dx%d too thin for %dx%dx%d tiling of %dx%dx%d",
				b.NX, b.NY, b.NZ, tx, ty, tz, gnx, gny, gnz)
		}
		t.Patches = append(t.Patches, Patch{ID: id, Block: b})
	}
	return t, nil
}

// P returns the number of patches.
func (t *Tiling) P() int { return len(t.Patches) }

// parts returns the number of patches along axis (0=x, 1=y, 2=z).
func (t *Tiling) parts(axis int) int {
	switch axis {
	case 0:
		return t.TX
	case 1:
		return t.TY
	default:
		return t.TZ
	}
}

// At returns the patch ID at tile coordinate (cx, cy, cz).
func (t *Tiling) At(cx, cy, cz int) int { return (cz*t.TY+cy)*t.TX + cx }

// Coords returns the tile coordinate of patch id.
func (t *Tiling) Coords(id int) (cx, cy, cz int) {
	cx = id % t.TX
	cy = (id / t.TX) % t.TY
	cz = id / (t.TX * t.TY)
	return
}

// Neighbor returns the patch ID adjacent to id across axis in direction
// dir (+1 or −1), wrapping across the global boundary when periodic, or
// −1 when there is no neighbour (non-periodic edge).
func (t *Tiling) Neighbor(id, axis, dir int, periodic bool) int {
	c := [3]int{}
	c[0], c[1], c[2] = t.Coords(id)
	parts := t.parts(axis)
	n := c[axis] + dir
	if n < 0 || n >= parts {
		if !periodic {
			return -1
		}
		n = (n + parts) % parts
	}
	c[axis] = n
	return t.At(c[0], c[1], c[2])
}

// Edge is one face-adjacency of the patch graph: patches A and B share
// a face normal to Axis, with B on A's positive side. Wrap marks edges
// that cross the global periodic boundary.
type Edge struct {
	A, B int
	Axis int
	Wrap bool
}

// Edges enumerates the face-adjacency graph under the given per-axis
// periodicity, in deterministic (axis, then A) order. Each physical face
// appears once, as the edge from the lower patch to its +axis neighbour.
func (t *Tiling) Edges(periodic [3]bool) []Edge {
	var out []Edge
	for axis := 0; axis < 3; axis++ {
		parts := t.parts(axis)
		if parts == 1 {
			continue
		}
		for _, p := range t.Patches {
			c := [3]int{}
			c[0], c[1], c[2] = t.Coords(p.ID)
			wrap := c[axis] == parts-1
			if wrap && !periodic[axis] {
				continue
			}
			nb := t.Neighbor(p.ID, axis, +1, periodic[axis])
			out = append(out, Edge{A: p.ID, B: nb, Axis: axis, Wrap: wrap})
		}
	}
	return out
}
