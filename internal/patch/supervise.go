package patch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"sunwaylb/internal/core"
	"sunwaylb/internal/decomp"
	"sunwaylb/internal/fault"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/resil"
	"sunwaylb/internal/swio"
)

// ErrCanceled marks a supervised patch run stopped through its context.
var ErrCanceled = errors.New("patch: run canceled")

// SupervisorOptions extends Options with the resilience policy of a
// supervised patch run. The checkpoint hierarchy is the same L1–L4
// stack psolve rides, keyed by patch instead of rank: L1/L2/L3 deposits
// live in the store under patch IDs, and L4 assembles the latest
// complete wave into a global on-disk checkpoint.
type SupervisorOptions struct {
	Opts  Options
	Steps int

	// SnapshotEvery runs a snapshot wave every N completed steps
	// (default 5). Levels selects the active levels (zero = L1|L2|L3).
	// GroupSize is the parity-group size over patch IDs (default 2).
	SnapshotEvery int
	Levels        resil.Levels
	GroupSize     int

	// CheckpointEvery writes an L4 disk checkpoint (assembled from the
	// latest complete wave) every N steps to CheckpointPath.
	CheckpointEvery int
	CheckpointPath  string
	Retry           swio.RetryPolicy

	// MaxRestarts bounds the recovery budget. A dead worker's patches
	// migrate to healthy owners when the wave deposits cover the loss;
	// otherwise the run escalates to the L4 checkpoint or a restart.
	MaxRestarts int

	Injector *fault.Injector
	Ctx      context.Context
	Logf     func(format string, args ...any)
}

// waveLog remembers the owner map at recent snapshot waves. Deposits
// keyed by patch are "held by" the patch's owner at deposit time, so
// recovery must invalidate by wave-time ownership, not by the ownership
// at the crash. Every rank records the identical values; last write
// wins.
type waveLog struct {
	mu    sync.Mutex
	owner map[int][]int
	order []int
}

func (w *waveLog) record(step int, owner []int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.owner == nil {
		w.owner = make(map[int][]int)
	}
	if _, ok := w.owner[step]; !ok {
		w.order = append(w.order, step)
		// The store keeps two generations; a small tail is plenty.
		for len(w.order) > 4 {
			delete(w.owner, w.order[0])
			w.order = w.order[1:]
		}
	}
	w.owner[step] = append(w.owner[step][:0], owner...)
}

// recent returns the recorded wave steps, newest first, plus a copy of
// each wave's owner map.
func (w *waveLog) recent() []struct {
	Step  int
	Owner []int
} {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]struct {
		Step  int
		Owner []int
	}, 0, len(w.order))
	for i := len(w.order) - 1; i >= 0; i-- {
		s := w.order[i]
		out = append(out, struct {
			Step  int
			Owner []int
		}{s, append([]int(nil), w.owner[s]...)})
	}
	return out
}

// Supervise runs a patch-mode simulation under failure supervision.
// When a worker dies, its patches are the unit of recovery: the newest
// snapshot wave whose deposits survive (L1 if the patch didn't move,
// its buddy's L2 copy or the group's L3 parity otherwise) is restored,
// the dead worker's patches migrate to the surviving owners, and the
// run resumes — the patch-world generalisation of psolve's spare-rank
// hot swap, at a shrunken world size instead of a spare budget.
func Supervise(o SupervisorOptions) (*core.MacroField, *Stats, error) {
	opt := o.Opts
	if err := opt.normalize(); err != nil {
		return nil, nil, err
	}
	til, err := NewTiling(opt.GNX, opt.GNY, opt.GNZ, opt.TX, opt.TY, opt.TZ)
	if err != nil {
		return nil, nil, err
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 5
	}
	if o.GroupSize <= 0 {
		o.GroupSize = 2
	}
	if o.Levels == 0 {
		o.Levels = resil.L1 | resil.L2 | resil.L3
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	newStore := func() (*resil.Store, error) { return storeFor(til, o.GroupSize) }
	store, err := newStore()
	if err != nil {
		return nil, nil, err
	}
	if o.Injector != nil {
		o.Injector.ExpandGroups(o.GroupSize, len(opt.Workers))
		if opt.Trace != nil {
			o.Injector.SetTracer(opt.Trace)
		}
	}

	stats := &Stats{Patches: til.P(), Workers: len(opt.Workers)}
	owner := initialOwner(til.P(), len(opt.Workers))
	var restore map[int]*resil.Snapshot
	start := 0
	var lastGood *core.Lattice
	waves := &waveLog{}

	for attempt := 0; ; attempt++ {
		if o.Injector != nil {
			o.Injector.BeginAttempt()
		}
		rc := &runConfig{
			opt:           &opt,
			til:           til,
			steps:         o.Steps,
			start:         start,
			owner:         owner,
			restore:       restore,
			store:         store,
			levels:        o.Levels,
			snapshotEvery: o.SnapshotEvery,
			waves:         waves,
			inj:           o.Injector,
			ctx:           o.Ctx,
			contain:       true,
			stats:         stats,
		}
		if o.CheckpointEvery > 0 && o.CheckpointPath != "" {
			rc.ckptEvery = o.CheckpointEvery
			rc.onCheckpoint = func(done int) error {
				rec, ok := store.LatestWave()
				if !ok || rec.Step != done {
					return nil // incomplete wave: skip this checkpoint
				}
				g, aerr := resil.Assemble(rec, opt.GNX, opt.GNY, opt.GNZ,
					opt.Tau, opt.Smagorinsky, opt.Force)
				if aerr != nil {
					return aerr
				}
				if werr := swio.CheckpointRetry(o.CheckpointPath, g, o.Retry); werr != nil {
					logf("patch: L4 checkpoint at step %d failed: %v", done, werr)
					return nil // disk trouble degrades, not fails, the run
				}
				lastGood = g
				return nil
			}
		}

		var world *mpi.World
		field, runErr := runAttempt(rc, func(w *mpi.World) { world = w })
		if runErr == nil {
			return field, stats, nil
		}
		if o.Ctx != nil && o.Ctx.Err() != nil {
			return nil, stats, fmt.Errorf("%w: %v", ErrCanceled, runErr)
		}
		if attempt >= o.MaxRestarts {
			return nil, stats, fmt.Errorf("patch: giving up after %d attempts: %w", attempt+1, runErr)
		}

		deadWorkers, _ := classifyDead(world.DeadRanks())
		survivors := surviving(len(opt.Workers), deadWorkers)
		if len(survivors) == 0 {
			return nil, stats, fmt.Errorf("patch: no surviving workers: %w", runErr)
		}

		if rec, waveOwner, ok := planRecovery(store, waves, deadWorkers); ok {
			// Patch-migration recovery: restore the wave, hand the dead
			// workers' patches to survivors, resume.
			deadPatches := patchesOwnedBy(waveOwner, deadWorkers)
			store.Invalidate(deadPatches)
			store.Reseed(rec)
			restore = rec.Blocks
			start = rec.Step
			owner = remapOwners(waveOwner, deadWorkers, survivors)
			stats.Recoveries++
			// Each dead-owned patch changes hands: the recovery path is
			// "migrate this patch to a healthy owner", so it counts.
			stats.Migrations += len(deadPatches)
			logf("patch: workers %v died; %d patches migrate to %d survivors, resuming from wave at step %d (%d buddy, %d parity restores)",
				deadWorkers, len(deadPatches), len(survivors), rec.Step, rec.BuddyRestores, rec.Reconstructions)
		} else if lastGood != nil {
			// Escalate to the L4 checkpoint: re-tile its global state.
			restore = snapshotsFromGlobal(til, lastGood)
			start = lastGood.Step()
			owner = initialOwner(til.P(), len(survivors))
			stats.Restarts++
			store, err = newStore()
			if err != nil {
				return nil, stats, err
			}
			waves = &waveLog{}
			logf("patch: workers %v died beyond memory repair; rolling back to L4 checkpoint at step %d on %d workers",
				deadWorkers, start, len(survivors))
		} else {
			// Restart from scratch on the survivors.
			restore = nil
			start = 0
			owner = initialOwner(til.P(), len(survivors))
			stats.Restarts++
			store, err = newStore()
			if err != nil {
				return nil, stats, err
			}
			waves = &waveLog{}
			logf("patch: workers %v died with no recoverable state; restarting from step 0 on %d workers",
				deadWorkers, len(survivors))
		}
		shrunk := make([]Worker, 0, len(survivors))
		for _, w := range survivors {
			shrunk = append(shrunk, opt.Workers[w])
		}
		opt.Workers = shrunk
	}
}

// storeFor builds a patch-keyed snapshot store: one slot per patch ID,
// parity groups over contiguous patch IDs.
func storeFor(til *Tiling, groupSize int) (*resil.Store, error) {
	blocks := make([]decomp.Block, 0, til.P())
	for _, p := range til.Patches {
		blocks = append(blocks, p.Block)
	}
	return resil.NewStore(til.P(), groupSize, blocks)
}

// planRecovery walks the recorded waves newest first and returns the
// first one whose deposits cover the dead workers' patches.
func planRecovery(store *resil.Store, waves *waveLog, deadWorkers []int) (*resil.Recovery, []int, bool) {
	for _, w := range waves.recent() {
		deadPatches := patchesOwnedBy(w.Owner, deadWorkers)
		rec, ok := store.RecoveryPlan(deadPatches)
		if ok && rec.Step == w.Step {
			return rec, w.Owner, true
		}
	}
	return nil, nil, false
}

// patchesOwnedBy lists the patches the given workers owned under the
// given owner map.
func patchesOwnedBy(owner []int, workers []int) []int {
	isDead := make(map[int]bool, len(workers))
	for _, w := range workers {
		isDead[w] = true
	}
	var out []int
	for p, o := range owner {
		if isDead[o] {
			out = append(out, p)
		}
	}
	return out
}

// surviving lists the worker indices not in dead, ascending.
func surviving(workers int, dead []int) []int {
	isDead := make(map[int]bool, len(dead))
	for _, w := range dead {
		isDead[w] = true
	}
	var out []int
	for w := 0; w < workers; w++ {
		if !isDead[w] {
			out = append(out, w)
		}
	}
	return out
}

// remapOwners rebuilds the owner map for the shrunken roster: a patch
// whose wave-time owner survived keeps it (re-indexed); a dead worker's
// patch is dealt round-robin to the survivors.
func remapOwners(waveOwner []int, dead []int, survivors []int) []int {
	newIndex := make(map[int]int, len(survivors))
	for i, w := range survivors {
		newIndex[w] = i
	}
	out := make([]int, len(waveOwner))
	for p, o := range waveOwner {
		if ni, ok := newIndex[o]; ok {
			out[p] = ni
		} else {
			out[p] = p % len(survivors)
		}
	}
	return out
}

// snapshotsFromGlobal slices a global lattice (an L4 checkpoint) back
// into per-patch snapshots for re-tiled restore.
func snapshotsFromGlobal(til *Tiling, g *core.Lattice) map[int]*resil.Snapshot {
	q := g.Desc.Q
	out := make(map[int]*resil.Snapshot, til.P())
	for _, p := range til.Patches {
		s := &resil.Snapshot{
			Rank: p.ID, Step: g.Step(),
			X0: p.X0, Y0: p.Y0, Z0: p.Z0,
			NX: p.NX, NY: p.NY, NZ: p.NZ,
			Q:     q,
			Pops:  make([]float64, p.Cells()*q),
			Flags: make([]byte, p.Cells()),
		}
		src := g.Src()
		k := 0
		for y := 0; y < p.NY; y++ {
			for x := 0; x < p.NX; x++ {
				for z := 0; z < p.NZ; z++ {
					idx := g.Idx(p.X0+x, p.Y0+y, p.Z0+z)
					for i := 0; i < q; i++ {
						s.Pops[k*q+i] = src[i*g.N+idx]
					}
					s.Flags[k] = byte(g.Flags[idx])
					k++
				}
			}
		}
		resil.Seal(s)
		out[p.ID] = s
	}
	return out
}

// classifyDead separates root worker deaths from collateral ones, as
// psolve's supervisor does: a worker whose cause wraps ErrRankDead or
// ErrWorldDown merely tripped over someone else's death.
func classifyDead(ledger map[int]error) (dead []int, injected bool) {
	injected = true
	for r, e := range ledger {
		if e == nil {
			continue
		}
		if errors.Is(e, mpi.ErrRankDead) || errors.Is(e, mpi.ErrWorldDown) {
			continue
		}
		dead = append(dead, r)
		if !errors.Is(e, fault.ErrInjectedCrash) {
			injected = false
		}
	}
	sort.Ints(dead)
	return dead, injected
}
