package patch_test

import (
	"path/filepath"
	"testing"

	"sunwaylb/internal/conform"
	"sunwaylb/internal/fault"
	"sunwaylb/internal/patch"
)

// TestMigrationChaos is the owner-death acceptance scenario: worker 1 of
// three is killed mid-run. Its two patches must migrate to the healthy
// owners from the in-memory wave (L1 for patches whose deposits survive,
// L2/L3 for the rest), the run resumes at a shrunken world, and the
// final field is bit-identical to both the unfaulted patch run and the
// serial kernel. Run under -race by scripts/ci.sh patch.
func TestMigrationChaos(t *testing.T) {
	const steps = 12
	ref := serialRef(t, boxOptions(1, 1, 1, workers(1)), steps)

	clean, cleanStats, err := patch.Run(boxOptions(3, 2, 1, workers(3)), steps)
	if err != nil {
		t.Fatal(err)
	}
	if err := conform.Compare(ref, clean, conform.Exact); err != nil {
		t.Fatalf("unfaulted patch run diverged from serial: %v", err)
	}
	if cleanStats.Recoveries != 0 || cleanStats.Restarts != 0 {
		t.Fatalf("unfaulted run recovered: %+v", cleanStats)
	}

	plan, err := fault.ParsePlan("seed=11;crash@rank=1,step=5")
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := patch.Supervise(patch.SupervisorOptions{
		Opts:          boxOptions(3, 2, 1, workers(3)),
		Steps:         steps,
		SnapshotEvery: 2,
		GroupSize:     2,
		MaxRestarts:   2,
		Injector:      fault.NewInjector(plan),
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (stats %+v)", err, stats)
	}
	if stats.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1 (memory-plan patch migration)", stats.Recoveries)
	}
	if stats.Restarts != 0 {
		t.Errorf("restarts = %d, want 0: single owner loss must not escalate", stats.Restarts)
	}
	if stats.Workers != 2 {
		t.Errorf("final workers = %d, want 2 after losing one of three", stats.Workers)
	}
	if err := conform.Compare(ref, got, conform.Exact); err != nil {
		t.Errorf("recovered run diverged from serial: %v", err)
	}
	if err := conform.Compare(clean, got, conform.Exact); err != nil {
		t.Errorf("recovered run diverged from unfaulted run: %v", err)
	}
}

// TestChaosEscalatesToCheckpoint: kill two of three workers at once —
// more than the buddy/parity algebra can repair when their patches share
// groups — and verify the supervisor rolls back to the L4 disk
// checkpoint and still converges to the serial answer.
func TestChaosEscalatesToCheckpoint(t *testing.T) {
	const steps = 12
	ref := serialRef(t, boxOptions(1, 1, 1, workers(1)), steps)
	plan, err := fault.ParsePlan("seed=7;crash@rank=1,step=7;crash@rank=2,step=7")
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := patch.Supervise(patch.SupervisorOptions{
		Opts:            boxOptions(3, 2, 1, workers(3)),
		Steps:           steps,
		SnapshotEvery:   2,
		GroupSize:       2,
		MaxRestarts:     3,
		CheckpointEvery: 4,
		CheckpointPath:  filepath.Join(t.TempDir(), "patch.ckpt"),
		Injector:        fault.NewInjector(plan),
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (stats %+v)", err, stats)
	}
	if stats.Recoveries+stats.Restarts == 0 {
		t.Error("double loss triggered no recovery at all")
	}
	if err := conform.Compare(ref, got, conform.Exact); err != nil {
		t.Errorf("recovered run diverged from serial: %v", err)
	}
}
