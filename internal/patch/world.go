package patch

import (
	"context"
	"fmt"
	"time"

	"sunwaylb/internal/boundary"
	"sunwaylb/internal/core"
	"sunwaylb/internal/fault"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/psolve"
	"sunwaylb/internal/resil"
	"sunwaylb/internal/trace"
)

// Options configures a patch-mode run. The physics fields mirror
// psolve.Options; the patch-specific fields describe the tiling, the
// worker roster and the balancer policy.
type Options struct {
	// Global lattice extents.
	GNX, GNY, GNZ int
	// Patches per axis. Zero means 1 (no cut along that axis).
	TX, TY, TZ int

	Tau         float64
	Smagorinsky float64
	Force       [3]float64

	PeriodicX, PeriodicY, PeriodicZ bool
	// FaceBC maps global faces to boundary conditions; a patch applies
	// the condition of every global face it touches, in the same fixed
	// face order psolve and the conform stitchers use.
	FaceBC map[core.Face]boundary.Condition
	// Walls marks solid cells in global coordinates.
	Walls func(gx, gy, gz int) bool
	// Init yields the initial macroscopic state in global coordinates;
	// nil means rest equilibrium (rho=1, u=0).
	Init func(gx, gy, gz int) (rho, ux, uy, uz float64)

	// Workers is the owner roster: one world rank per entry. The world
	// size is len(Workers).
	Workers []Worker

	// RebalanceEvery triggers the measured-cost balancer every k steps
	// (0 disables it). The balancer migrates patches when the per-worker
	// step-cost imbalance (max/mean) exceeds Threshold and the greedy
	// replan predicts a shorter makespan.
	RebalanceEvery int
	Threshold      float64 // imbalance trigger, default 1.2
	SmoothAlpha    float64 // EWMA weight of the newest cost sample, default 0.5

	// ForceMigrateEvery rotates every patch to the next worker every k
	// steps regardless of measurements — the conform oracle uses it to
	// prove migration bit-identity. It overrides the balancer at the
	// boundaries where it fires.
	ForceMigrateEvery int

	// CostModel, when set, replaces the wall-clock per-patch cost sample
	// with a deterministic model (benchmarks and tests use it so balancer
	// decisions are reproducible). It must be a pure function.
	CostModel func(worker int, p Patch) float64

	Trace *trace.Tracer
}

func (o *Options) normalize() error {
	if o.TX == 0 {
		o.TX = 1
	}
	if o.TY == 0 {
		o.TY = 1
	}
	if o.TZ == 0 {
		o.TZ = 1
	}
	if len(o.Workers) == 0 {
		return fmt.Errorf("patch: empty worker roster")
	}
	if o.Threshold <= 0 {
		o.Threshold = 1.2
	}
	if o.SmoothAlpha <= 0 || o.SmoothAlpha > 1 {
		o.SmoothAlpha = 0.5
	}
	if o.Init == nil {
		o.Init = func(_, _, _ int) (float64, float64, float64, float64) { return 1, 0, 0, 0 }
	}
	return nil
}

// Message tags. Halo tags identify (destination patch, packed face);
// migration and parity tags identify the patch being shipped. All are
// ≥ 1 as the mpi transport requires.
func haloTag(dstPatch int, face core.Face) int { return 1 + dstPatch*6 + int(face) }

func (t *Tiling) migTag(p int) int    { return 1 + 6*t.P() + p }
func (t *Tiling) parityTag(p int) int { return 1 + 7*t.P() + p }

// runConfig is the shared state of one attempt: the tiling, the starting
// owner map, optional restore snapshots, and the supervisor's store and
// bookkeeping hooks. Plain Run uses a bare config; Supervise threads the
// resilience machinery through the same path.
type runConfig struct {
	opt           *Options
	til           *Tiling
	steps         int
	start         int
	owner         []int // starting owner map (copied per rank)
	restore       map[int]*resil.Snapshot
	store         *resil.Store
	levels        resil.Levels
	snapshotEvery int
	waves         *waveLog
	inj           *fault.Injector
	ctx           context.Context
	contain       bool
	onCheckpoint  func(done int) error // rank-0 L4 hook, after a synced wave
	ckptEvery     int
	stats         *Stats
}

// node is the per-rank state of the patch world: the patches this worker
// currently owns, their executors, and the scratch the exchange and
// snapshot paths reuse.
type node struct {
	rc  *runConfig
	c   *mpi.Comm
	me  int
	tr  *trace.RankTracer
	til *Tiling

	owner []int // replicated owner map, updated in lockstep on every rank
	mine  []int // owned patch IDs, ascending (derived from owner)

	lats  map[int]*core.Lattice
	strs  map[int]psolve.Stepper
	fresh map[int]bool
	conds [][]boundary.Condition // per patch, static

	cost     []float64 // EWMA step-cost per patch (meaningful for owned entries)
	straggle float64   // straggler-model multiplier for this worker's samples
	names    []string  // precomputed per-patch counter names

	// Face scratch sized for the largest face over all patches.
	buf []float64
	flg []core.CellType
	rfl []core.CellType

	// Snapshot scratch for waves and migrations.
	snap  resil.Snapshot
	rsnap resil.Snapshot
	par   resil.Snapshot
	group []resil.Snapshot
	data  []float64
	aux   []byte
}

func newNode(rc *runConfig, c *mpi.Comm) (*node, error) {
	n := &node{
		rc:    rc,
		c:     c,
		me:    c.Rank(),
		tr:    c.Trace(),
		til:   rc.til,
		owner: append([]int(nil), rc.owner...),
		lats:  make(map[int]*core.Lattice),
		strs:  make(map[int]psolve.Stepper),
		fresh: make(map[int]bool),
		cost:  make([]float64, rc.til.P()),
	}
	w := rc.opt.Workers[n.me]
	n.straggle = w.Straggle
	if rc.inj != nil {
		if f := rc.inj.StragglerFactor(n.me); f > 1 {
			if n.straggle < 1 {
				n.straggle = 1
			}
			n.straggle *= f
		}
	}
	maxFace := 0
	for _, p := range n.til.Patches {
		fx := (p.NY + 2) * (p.NZ + 2)
		fy := (p.NX + 2) * (p.NZ + 2)
		fz := (p.NX + 2) * (p.NY + 2)
		for _, f := range [3]int{fx, fy, fz} {
			if f > maxFace {
				maxFace = f
			}
		}
		n.names = append(n.names, fmt.Sprintf("patch%d", p.ID))
		n.conds = append(n.conds, n.patchConds(p))
	}
	q := lattice.D3Q19.Q
	n.buf = make([]float64, maxFace*q)
	n.flg = make([]core.CellType, maxFace)
	n.rfl = make([]core.CellType, maxFace)
	if rc.store != nil {
		n.group = make([]resil.Snapshot, rc.store.GroupSize())
	}
	for _, p := range n.til.Patches {
		if n.owner[p.ID] != n.me {
			continue
		}
		if s, ok := rc.restore[p.ID]; ok {
			if err := n.installPatch(p.ID, s); err != nil {
				return nil, err
			}
			continue
		}
		if err := n.buildFresh(p); err != nil {
			return nil, err
		}
	}
	n.rebuildMine()
	return n, nil
}

// buildFresh constructs a patch lattice from the case's walls and initial
// state, exactly as the stitched conform driver builds its blocks.
func (n *node) buildFresh(p Patch) error {
	opt := n.rc.opt
	l, err := core.NewLattice(&lattice.D3Q19, p.NX, p.NY, p.NZ, opt.Tau)
	if err != nil {
		return err
	}
	l.Smagorinsky = opt.Smagorinsky
	l.Force = opt.Force
	for y := 0; y < p.NY; y++ {
		for x := 0; x < p.NX; x++ {
			for z := 0; z < p.NZ; z++ {
				if opt.Walls != nil && opt.Walls(p.X0+x, p.Y0+y, p.Z0+z) {
					l.SetWall(x, y, z)
				}
			}
		}
	}
	for y := 0; y < p.NY; y++ {
		for x := 0; x < p.NX; x++ {
			for z := 0; z < p.NZ; z++ {
				if l.CellTypeAt(x, y, z) != core.Fluid {
					continue
				}
				rho, ux, uy, uz := opt.Init(p.X0+x, p.Y0+y, p.Z0+z)
				l.SetCell(x, y, z, rho, ux, uy, uz)
			}
		}
	}
	l.SetStep(n.rc.start)
	return n.adopt(p.ID, l)
}

// adopt registers a lattice as an owned patch and builds its executor.
func (n *node) adopt(id int, l *core.Lattice) error {
	st, err := n.rc.opt.Workers[n.me].newStepper(l)
	if err != nil {
		return fmt.Errorf("patch: worker %d executor for patch %d: %w", n.me, id, err)
	}
	if ts, ok := st.(traceSetter); ok {
		ts.SetTrace(n.tr)
	}
	n.lats[id] = l
	n.strs[id] = st
	n.fresh[id] = true
	return nil
}

// installPatch rebuilds a patch from a verified snapshot — the receive
// half of a migration and the restore half of a recovery. Only the
// interior is restored; every halo cell the kernel reads is rewritten
// from current interior state by the z→BC→x→y exchange sequence before
// the next kernel application, so an installed patch is bit-identical
// to one that never moved.
func (n *node) installPatch(id int, s *resil.Snapshot) error {
	if !s.Verify() {
		return fmt.Errorf("patch: snapshot of patch %d fails checksum at install", id)
	}
	p := n.til.Patches[id]
	if s.NX != p.NX || s.NY != p.NY || s.NZ != p.NZ {
		return fmt.Errorf("patch: snapshot of patch %d is %dx%dx%d, tile wants %dx%dx%d",
			id, s.NX, s.NY, s.NZ, p.NX, p.NY, p.NZ)
	}
	opt := n.rc.opt
	l, err := core.NewLattice(&lattice.D3Q19, p.NX, p.NY, p.NZ, opt.Tau)
	if err != nil {
		return err
	}
	l.Smagorinsky = opt.Smagorinsky
	l.Force = opt.Force
	q := l.Desc.Q
	dst := l.Src()
	k := 0
	for y := 0; y < p.NY; y++ {
		for x := 0; x < p.NX; x++ {
			for z := 0; z < p.NZ; z++ {
				idx := l.Idx(x, y, z)
				for i := 0; i < q; i++ {
					dst[i*l.N+idx] = s.Pops[k*q+i]
				}
				l.Flags[idx] = core.CellType(s.Flags[k])
				k++
			}
		}
	}
	l.SetStep(s.Step)
	return n.adopt(id, l)
}

// patchConds selects the global-face conditions this patch applies, in
// the fixed face order psolve and the conform stitchers share.
func (n *node) patchConds(p Patch) []boundary.Condition {
	opt := n.rc.opt
	if opt.FaceBC == nil {
		return nil
	}
	touches := map[core.Face]bool{
		core.FaceXMin: p.X0 == 0,
		core.FaceXMax: p.X0+p.NX == opt.GNX,
		core.FaceYMin: p.Y0 == 0,
		core.FaceYMax: p.Y0+p.NY == opt.GNY,
		core.FaceZMin: p.Z0 == 0,
		core.FaceZMax: p.Z0+p.NZ == opt.GNZ,
	}
	var out []boundary.Condition
	for _, f := range []core.Face{core.FaceXMin, core.FaceXMax, core.FaceYMin,
		core.FaceYMax, core.FaceZMin, core.FaceZMax} {
		if touches[f] && opt.FaceBC[f] != nil {
			out = append(out, opt.FaceBC[f])
		}
	}
	return out
}

func (n *node) rebuildMine() {
	n.mine = n.mine[:0]
	for p, o := range n.owner {
		if o == n.me {
			n.mine = append(n.mine, p)
		}
	}
}

func (n *node) periodic(axis int) bool {
	switch axis {
	case 0:
		return n.rc.opt.PeriodicX
	case 1:
		return n.rc.opt.PeriodicY
	default:
		return n.rc.opt.PeriodicZ
	}
}

// stepOnce advances every patch one time step: z halos, global-face
// conditions, x halos, y halos, then each owned patch's kernel — the
// same phase order as psolve and the conform stitchers, so halo corners
// resolve identically regardless of how patches are distributed.
func (n *node) stepOnce() {
	if n.tr != nil {
		n.tr.Begin(trace.Wall, trace.TrackStep, "step", n.tr.Now())
		defer func() { n.tr.End(trace.Wall, trace.TrackStep, n.tr.Now()) }()
	}
	n.exchange(2)
	for _, p := range n.mine {
		for _, bc := range n.conds[p] {
			bc.Apply(n.lats[p])
		}
	}
	n.exchange(0)
	n.exchange(1)
	n.compute()
}

// compute steps the owned patches in ID order, sampling per-patch cost
// into the EWMA the balancer reads and onto the trace's patch track.
func (n *node) compute() {
	opt := n.rc.opt
	for _, p := range n.mine {
		st := n.strs[p]
		if n.fresh[p] {
			// The first exchange may have imported wall flags from the
			// neighbours; refresh the executor's geometry-derived state.
			st.Rebuild()
			n.fresh[p] = false
		}
		t0 := time.Now()
		dt := st.Step()
		if dt <= 0 {
			dt = time.Since(t0).Seconds()
		}
		if opt.CostModel != nil {
			dt = opt.CostModel(n.me, n.til.Patches[p])
		}
		if n.straggle > 1 {
			dt *= n.straggle
		}
		if prev := n.cost[p]; prev > 0 {
			n.cost[p] = opt.SmoothAlpha*dt + (1-opt.SmoothAlpha)*prev
		} else {
			n.cost[p] = dt
		}
		if n.tr != nil {
			n.tr.Counter(trace.Wall, trace.TrackPatch, n.names[p], n.tr.Now(), n.cost[p])
		}
	}
}

func opposite(f core.Face) core.Face {
	switch f {
	case core.FaceXMin:
		return core.FaceXMax
	case core.FaceXMax:
		return core.FaceXMin
	case core.FaceYMin:
		return core.FaceYMax
	case core.FaceYMax:
		return core.FaceYMin
	case core.FaceZMin:
		return core.FaceZMax
	default:
		return core.FaceZMin
	}
}

// eachPair enumerates the face-adjacent patch pairs of one axis in the
// deterministic order the conform stitcher uses: for every tile (plus
// the periodic wrap), the pair (a, a's +axis neighbour).
func (n *node) eachPair(axis int, fn func(a, b int)) {
	t := n.til
	parts := t.parts(axis)
	periodic := n.periodic(axis)
	for cz := 0; cz < t.TZ; cz++ {
		for cy := 0; cy < t.TY; cy++ {
			for cx := 0; cx < t.TX; cx++ {
				coord := [3]int{cx, cy, cz}
				if coord[axis] == parts-1 && !periodic {
					continue
				}
				next := coord
				next[axis] = (coord[axis] + 1) % parts
				fn(t.At(coord[0], coord[1], coord[2]), t.At(next[0], next[1], next[2]))
			}
		}
	}
}

// exchange runs one axis phase of the halo protocol. Same-owner pairs
// copy locally; cross-owner pairs ship packed faces over mpi. All sends
// are posted before any receive (the transport's sends never block), so
// the phase is deadlock-free for every owner map. Pack reads the
// interior boundary layer and Unpack writes the halo layer, so transfers
// within one phase never alias.
func (n *node) exchange(axis int) {
	parts := n.til.parts(axis)
	var minFace, maxFace core.Face
	switch axis {
	case 0:
		minFace, maxFace = core.FaceXMin, core.FaceXMax
	case 1:
		minFace, maxFace = core.FaceYMin, core.FaceYMax
	default:
		minFace, maxFace = core.FaceZMin, core.FaceZMax
	}
	if parts == 1 {
		if n.periodic(axis) {
			for _, p := range n.mine {
				n.lats[p].PeriodicAxis(axis)
			}
		}
		return
	}
	n.eachPair(axis, func(a, b int) {
		n.ship(a, b, maxFace)
		n.ship(b, a, minFace)
	})
	n.eachPair(axis, func(a, b int) {
		n.absorb(a, b, maxFace)
		n.absorb(b, a, minFace)
	})
}

// ship packs face of patch src for patch dst: a local unpack when both
// are owned here, a non-blocking send otherwise.
func (n *node) ship(src, dst int, face core.Face) {
	if n.owner[src] != n.me {
		return
	}
	ls := n.lats[src]
	cells := ls.FaceCells(face)
	q := ls.Desc.Q
	ls.PackFace(face, n.buf[:cells*q], n.flg[:cells])
	if n.owner[dst] == n.me {
		n.lats[dst].UnpackFace(opposite(face), n.buf[:cells*q], n.flg[:cells])
		return
	}
	n.c.Send(n.owner[dst], haloTag(dst, face), cloneFaceMsg(n.buf[:cells*q], n.flg[:cells]))
}

// absorb receives the face of patch src into patch dst's halo when dst
// is owned here and src is remote.
func (n *node) absorb(src, dst int, face core.Face) {
	if n.owner[dst] != n.me || n.owner[src] == n.me {
		return
	}
	m := n.c.Recv(n.owner[src], haloTag(dst, face))
	ld := n.lats[dst]
	cells := ld.FaceCells(opposite(face))
	ld.UnpackFace(opposite(face), m.Data, decodeFlags(m.Aux, n.rfl[:cells]))
}

func cloneFaceMsg(data []float64, flags []core.CellType) mpi.Message {
	d := append([]float64(nil), data...)
	a := make([]byte, len(flags))
	for i, f := range flags {
		a[i] = byte(f)
	}
	return mpi.Message{Data: d, Aux: a}
}

func decodeFlags(aux []byte, out []core.CellType) []core.CellType {
	for i := range out {
		out[i] = core.CellType(aux[i])
	}
	return out
}

// gather stitches every patch's macroscopic field into the global field
// on rank 0 (nil elsewhere). The payload per owned patch is its ID
// followed by the rho/ux/uy/uz channels in interior (y,x,z) order.
func (n *node) gather() *core.MacroField {
	var payload []float64
	for _, p := range n.mine {
		b := n.til.Patches[p].Block
		m := n.lats[p].ComputeMacro()
		payload = append(payload, float64(p))
		for _, ch := range [4][]float64{m.Rho, m.Ux, m.Uy, m.Uz} {
			for y := 0; y < b.NY; y++ {
				for x := 0; x < b.NX; x++ {
					for z := 0; z < b.NZ; z++ {
						payload = append(payload, ch[m.Idx(x, y, z)])
					}
				}
			}
		}
	}
	msgs := n.c.Gather(0, mpi.Message{Data: payload})
	if msgs == nil {
		return nil
	}
	opt := n.rc.opt
	out := &core.MacroField{
		NX: opt.GNX, NY: opt.GNY, NZ: opt.GNZ,
		Rho: make([]float64, opt.GNX*opt.GNY*opt.GNZ),
		Ux:  make([]float64, opt.GNX*opt.GNY*opt.GNZ),
		Uy:  make([]float64, opt.GNX*opt.GNY*opt.GNZ),
		Uz:  make([]float64, opt.GNX*opt.GNY*opt.GNZ),
	}
	for _, m := range msgs {
		d := m.Data
		for len(d) > 0 {
			p := int(d[0])
			d = d[1:]
			b := n.til.Patches[p].Block
			cells := b.Cells()
			chans := [4][]float64{out.Rho, out.Ux, out.Uy, out.Uz}
			for ci, ch := range chans {
				src := d[ci*cells : (ci+1)*cells]
				k := 0
				for y := 0; y < b.NY; y++ {
					for x := 0; x < b.NX; x++ {
						for z := 0; z < b.NZ; z++ {
							ch[out.Idx(b.X0+x, b.Y0+y, b.Z0+z)] = src[k]
							k++
						}
					}
				}
			}
			d = d[4*cells:]
		}
	}
	return out
}

// Run executes a patch-mode simulation to completion on a fresh world
// and returns the gathered global field plus the balancer statistics.
func Run(opt Options, steps int) (*core.MacroField, *Stats, error) {
	if err := opt.normalize(); err != nil {
		return nil, nil, err
	}
	til, err := NewTiling(opt.GNX, opt.GNY, opt.GNZ, opt.TX, opt.TY, opt.TZ)
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{Patches: til.P(), Workers: len(opt.Workers)}
	rc := &runConfig{
		opt:   &opt,
		til:   til,
		steps: steps,
		owner: initialOwner(til.P(), len(opt.Workers)),
		stats: stats,
	}
	field, err := runAttempt(rc, nil)
	if err != nil {
		return nil, stats, err
	}
	return field, stats, nil
}

// initialOwner distributes patches round-robin over the workers.
func initialOwner(patches, workers int) []int {
	owner := make([]int, patches)
	for p := range owner {
		owner[p] = p % workers
	}
	return owner
}

// runAttempt drives one world through the step loop. onWorld, when set,
// receives the world handle before the run starts (the supervisor uses
// it to inspect the death ledger afterwards).
func runAttempt(rc *runConfig, onWorld func(*mpi.World)) (*core.MacroField, error) {
	w, err := mpi.NewWorld(len(rc.opt.Workers))
	if err != nil {
		return nil, err
	}
	w.SetTracer(rc.opt.Trace)
	w.SetContainPanics(rc.contain)
	if rc.inj != nil {
		w.SetFaultHook(rc.inj)
		w.SetRecvTimeout(5 * time.Second)
	}
	if onWorld != nil {
		onWorld(w)
	}
	var result *core.MacroField
	var watchDone chan struct{}
	if rc.ctx != nil {
		watchDone = make(chan struct{})
		go func() {
			select {
			case <-rc.ctx.Done():
				w.Fail(fmt.Errorf("patch: run canceled: %w", context.Cause(rc.ctx)))
			case <-watchDone:
			}
		}()
	}
	runErr := mpi.RunWorld(w, func(c *mpi.Comm) error {
		n, err := newNode(rc, c)
		if err != nil {
			return err
		}
		for s := rc.start; s < rc.steps; s++ {
			if rc.ctx != nil && rc.ctx.Err() != nil {
				return fmt.Errorf("patch: worker %d canceled at step %d: %w", n.me, s, rc.ctx.Err())
			}
			if rc.inj != nil {
				if !rc.inj.FlapNow(n.me, s) {
					c.Heartbeat()
				}
				if rc.inj.CrashNow(n.me, s) {
					cerr := fmt.Errorf("worker %d at step %d: %w", n.me, s, fault.ErrInjectedCrash)
					c.Crash(cerr)
					return cerr
				}
			}
			n.stepOnce()
			done := s + 1
			if rc.store != nil && rc.snapshotEvery > 0 && done%rc.snapshotEvery == 0 && done < rc.steps {
				if rc.waves != nil {
					rc.waves.record(done, n.owner)
				}
				if werr := n.wave(done); werr != nil {
					return werr
				}
				if rc.onCheckpoint != nil && rc.ckptEvery > 0 && done%rc.ckptEvery == 0 {
					// Sync so every deposit of this wave is in the store
					// before rank 0 assembles the L4 checkpoint from it.
					if berr := c.BarrierE(); berr != nil {
						return berr
					}
					if n.me == 0 {
						if cerr := rc.onCheckpoint(done); cerr != nil {
							return cerr
						}
					}
				}
			}
			if n.rebalanceDue(done) {
				if rerr := n.rebalance(done); rerr != nil {
					return rerr
				}
			}
		}
		if ferr := n.finishStats(); ferr != nil {
			return ferr
		}
		if g := n.gather(); g != nil {
			result = g
		}
		return nil
	})
	if watchDone != nil {
		close(watchDone)
	}
	if runErr != nil {
		return nil, runErr
	}
	return result, nil
}
