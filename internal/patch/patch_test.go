package patch_test

import (
	"math"
	"testing"

	"sunwaylb/internal/boundary"
	"sunwaylb/internal/conform"
	"sunwaylb/internal/core"
	"sunwaylb/internal/decomp"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/patch"
)

// shearInit is the deterministic non-trivial initial state the bitwise
// tests share: a gentle three-axis shear, safely subsonic.
func shearInit(gx, gy, gz int) (rho, ux, uy, uz float64) {
	return 1.0 + 0.01*math.Sin(0.3*float64(gx)),
		0.03 * math.Sin(0.2*float64(gy)),
		0.02 * math.Cos(0.25*float64(gz)),
		0.01 * math.Sin(0.15*float64(gx+gy))
}

// boxOptions is a fully periodic shear box over the given tiling.
func boxOptions(tx, ty, tz int, workers []patch.Worker) patch.Options {
	return patch.Options{
		GNX: 12, GNY: 10, GNZ: 8,
		TX: tx, TY: ty, TZ: tz,
		Tau:       0.7,
		PeriodicX: true, PeriodicY: true, PeriodicZ: true,
		Init:    shearInit,
		Workers: workers,
	}
}

// serialRef runs the same case on one serial lattice with the canonical
// per-step phase order (z wrap, face conditions, x wrap, y wrap, fused
// kernel) — the bit-identity reference every distributed path matches.
func serialRef(t *testing.T, opt patch.Options, steps int) *core.MacroField {
	t.Helper()
	l, err := core.NewLattice(&lattice.D3Q19, opt.GNX, opt.GNY, opt.GNZ, opt.Tau)
	if err != nil {
		t.Fatal(err)
	}
	l.Smagorinsky = opt.Smagorinsky
	l.Force = opt.Force
	for y := 0; y < opt.GNY; y++ {
		for x := 0; x < opt.GNX; x++ {
			for z := 0; z < opt.GNZ; z++ {
				if opt.Walls != nil && opt.Walls(x, y, z) {
					l.SetWall(x, y, z)
				}
			}
		}
	}
	init := opt.Init
	if init == nil {
		init = func(_, _, _ int) (float64, float64, float64, float64) { return 1, 0, 0, 0 }
	}
	for y := 0; y < opt.GNY; y++ {
		for x := 0; x < opt.GNX; x++ {
			for z := 0; z < opt.GNZ; z++ {
				if l.CellTypeAt(x, y, z) != core.Fluid {
					continue
				}
				rho, ux, uy, uz := init(x, y, z)
				l.SetCell(x, y, z, rho, ux, uy, uz)
			}
		}
	}
	faces := []core.Face{core.FaceXMin, core.FaceXMax, core.FaceYMin,
		core.FaceYMax, core.FaceZMin, core.FaceZMax}
	for s := 0; s < steps; s++ {
		if opt.PeriodicZ {
			l.PeriodicAxis(2)
		}
		for _, f := range faces {
			if opt.FaceBC[f] != nil {
				opt.FaceBC[f].Apply(l)
			}
		}
		if opt.PeriodicX {
			l.PeriodicAxis(0)
		}
		if opt.PeriodicY {
			l.PeriodicAxis(1)
		}
		l.StepFused()
	}
	return l.ComputeMacro()
}

func workers(n int) []patch.Worker { return make([]patch.Worker, n) }

func TestTilingCoverAndAdjacency(t *testing.T) {
	cases := [][6]int{
		{12, 10, 8, 3, 2, 2},
		{13, 11, 9, 4, 3, 2},
		{8, 8, 8, 1, 1, 1},
		{17, 5, 6, 5, 1, 3},
	}
	for _, c := range cases {
		til, err := patch.NewTiling(c[0], c[1], c[2], c[3], c[4], c[5])
		if err != nil {
			t.Fatalf("NewTiling(%v): %v", c, err)
		}
		blocks := make([]decomp.Block, 0, til.P())
		for _, p := range til.Patches {
			blocks = append(blocks, p.Block)
		}
		if err := decomp.Cover(blocks, c[0], c[1], c[2]); err != nil {
			t.Errorf("tiling %v does not cover: %v", c, err)
		}
		for _, per := range []bool{false, true} {
			for _, p := range til.Patches {
				for axis := 0; axis < 3; axis++ {
					for _, dir := range []int{-1, +1} {
						nb := til.Neighbor(p.ID, axis, dir, per)
						if nb < 0 {
							continue
						}
						back := til.Neighbor(nb, axis, -dir, per)
						if back != p.ID {
							t.Fatalf("tiling %v: Neighbor(%d,%d,%+d)=%d but Neighbor back=%d",
								c, p.ID, axis, dir, nb, back)
						}
					}
				}
			}
		}
	}
	if _, err := patch.NewTiling(12, 10, 3, 1, 1, 2); err == nil {
		t.Error("NewTiling accepted a 1-cell-thin cut axis")
	}
}

// TestRunMatchesSerial: the patch world must be bit-identical (MaxULP=0)
// to the serial kernel for any tiling and any worker count, including
// workers that own nothing.
func TestRunMatchesSerial(t *testing.T) {
	const steps = 8
	ref := serialRef(t, boxOptions(1, 1, 1, workers(1)), steps)
	for _, tc := range []struct {
		name       string
		tx, ty, tz int
		w          int
	}{
		{"1x1x1-1w", 1, 1, 1, 1},
		{"2x1x1-2w", 2, 1, 1, 2},
		{"3x2x1-2w", 3, 2, 1, 2},
		{"2x2x2-3w", 2, 2, 2, 3},
		{"3x2x2-5w", 3, 2, 2, 5},
		{"1x1x1-3w", 1, 1, 1, 3}, // more workers than patches
	} {
		opt := boxOptions(tc.tx, tc.ty, tc.tz, workers(tc.w))
		got, _, err := patch.Run(opt, steps)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := conform.Compare(ref, got, conform.Exact); err != nil {
			t.Errorf("%s diverged from serial: %v", tc.name, err)
		}
	}
}

// TestRunWithWallsAndBCs: a lid-driven box (moving lid, no-slip walls,
// an interior pillar) exercises wall flags crossing patch halos and
// global-face conditions applying only on edge patches.
func TestRunWithWallsAndBCs(t *testing.T) {
	const steps = 6
	opt := patch.Options{
		GNX: 12, GNY: 10, GNZ: 6,
		Tau:  0.65,
		Init: shearInit,
		Walls: func(gx, gy, gz int) bool {
			return gx >= 5 && gx <= 6 && gy >= 4 && gy <= 5 && gz >= 2 && gz <= 3
		},
		FaceBC: map[core.Face]boundary.Condition{
			core.FaceXMin: &boundary.NoSlip{Face: core.FaceXMin},
			core.FaceXMax: &boundary.NoSlip{Face: core.FaceXMax},
			core.FaceYMin: &boundary.NoSlip{Face: core.FaceYMin},
			core.FaceYMax: &boundary.MovingNoSlip{Face: core.FaceYMax, U: [3]float64{0.05, 0, 0}},
		},
		PeriodicZ: true,
	}
	ref := serialRef(t, opt, steps)
	for _, tiles := range [][3]int{{2, 2, 1}, {3, 1, 2}} {
		opt.TX, opt.TY, opt.TZ = tiles[0], tiles[1], tiles[2]
		opt.Workers = workers(2)
		got, _, err := patch.Run(opt, steps)
		if err != nil {
			t.Fatalf("tiles %v: %v", tiles, err)
		}
		if err := conform.Compare(ref, got, conform.Exact); err != nil {
			t.Errorf("tiles %v diverged from serial: %v", tiles, err)
		}
	}
}

// TestMigrationBitIdentity: with ForceMigrateEvery=1 every patch hops to
// the next worker after every step; the result must still be bitwise
// equal to the serial reference — the core guarantee that lets the
// balancer move patches freely.
func TestMigrationBitIdentity(t *testing.T) {
	const steps = 7
	ref := serialRef(t, boxOptions(1, 1, 1, workers(1)), steps)
	opt := boxOptions(3, 2, 1, workers(3))
	opt.ForceMigrateEvery = 1
	got, stats, err := patch.Run(opt, steps)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Migrations == 0 {
		t.Fatal("forced rotation produced no migrations")
	}
	if err := conform.Compare(ref, got, conform.Exact); err != nil {
		t.Errorf("migrated run diverged from serial (after %d migrations): %v",
			stats.Migrations, err)
	}
}

// TestBalancerRebalancesStraggler: a deterministic cost model makes
// worker 1 ten times slower per cell; the balancer must move patches off
// it and the measured imbalance ratio must drop.
func TestBalancerRebalancesStraggler(t *testing.T) {
	const steps = 16
	ref := serialRef(t, boxOptions(1, 1, 1, workers(1)), steps)
	opt := boxOptions(3, 2, 1, workers(3))
	opt.RebalanceEvery = 3
	opt.CostModel = func(worker int, p patch.Patch) float64 {
		spc := [3]float64{1, 10, 1}[worker]
		return spc * float64(p.Cells()) * 1e-8
	}
	got, stats, err := patch.Run(opt, steps)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Migrations == 0 {
		t.Fatalf("balancer never migrated despite a 10x straggler: %+v", stats)
	}
	if stats.ImbalancePost >= stats.ImbalancePre {
		t.Errorf("imbalance did not improve: pre=%.3f post=%.3f", stats.ImbalancePre, stats.ImbalancePost)
	}
	if err := conform.Compare(ref, got, conform.Exact); err != nil {
		t.Errorf("rebalanced run diverged from serial: %v", err)
	}
}

// TestMixedBackendsMatchSerial: core, swlb and gpu executors stitched in
// one world must agree bitwise with the serial kernel, migrations
// included. (The conform matrix covers this across random cases; this is
// the fast in-package guard.)
func TestMixedBackendsMatchSerial(t *testing.T) {
	const steps = 5
	ref := serialRef(t, boxOptions(1, 1, 1, workers(1)), steps)
	ws := []patch.Worker{
		{Backend: patch.BackendCore},
		{Backend: patch.BackendSunway},
		{Backend: patch.BackendGPU},
	}
	opt := boxOptions(3, 2, 1, ws)
	opt.ForceMigrateEvery = 2
	got, _, err := patch.Run(opt, steps)
	if err != nil {
		t.Fatal(err)
	}
	if err := conform.Compare(ref, got, conform.Exact); err != nil {
		t.Errorf("mixed-backend run diverged from serial: %v", err)
	}
}

func TestParseWorkers(t *testing.T) {
	ws, err := patch.ParseWorkers("core, sunway*1.5 ,gpu,core*8")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("got %d workers, want 4", len(ws))
	}
	if ws[0].Backend != patch.BackendCore || ws[1].Backend != patch.BackendSunway ||
		ws[2].Backend != patch.BackendGPU || ws[3].Backend != patch.BackendCore {
		t.Errorf("backends wrong: %+v", ws)
	}
	if ws[1].Straggle != 1.5 || ws[3].Straggle != 8 {
		t.Errorf("straggle factors wrong: %+v", ws)
	}
	if _, err := patch.ParseWorkers("quantum"); err == nil {
		t.Error("accepted unknown backend")
	}
	if _, err := patch.ParseWorkers(""); err == nil {
		t.Error("accepted empty roster")
	}
}
