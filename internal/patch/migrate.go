package patch

import (
	"fmt"

	"sunwaylb/internal/mpi"
	"sunwaylb/internal/resil"
	"sunwaylb/internal/trace"
)

// migrate executes an adopted plan: every moving patch is serialized as
// a checksummed interior snapshot on its old owner, shipped, verified
// and reinstalled on its new owner, and the replicated owner map flips.
// All sends are posted before any receive, so any permutation of owners
// is deadlock-free. Migration happens at a step boundary, before the
// next z exchange, so the freshly installed lattice's halos are rebuilt
// from current interior state before its kernel reads them — migrated
// runs are bit-identical to pinned ones.
func (n *node) migrate(newOwner []int) error {
	moves := 0
	for p := range newOwner {
		if n.owner[p] == newOwner[p] {
			continue
		}
		moves++
		if n.owner[p] != n.me {
			continue
		}
		resil.Capture(&n.snap, n.lats[p], n.til.Patches[p].Block, p)
		data, aux := n.snap.Pack(nil, nil)
		n.c.Send(newOwner[p], n.til.migTag(p), mpi.Message{Data: data, Aux: aux})
		delete(n.lats, p)
		delete(n.strs, p)
		delete(n.fresh, p)
		if n.tr != nil {
			n.tr.InstantV(trace.Wall, trace.TrackPatch, "migrate-out", n.tr.Now(), float64(p))
		}
	}
	for p := range newOwner {
		if n.owner[p] == newOwner[p] || newOwner[p] != n.me {
			continue
		}
		m := n.c.Recv(n.owner[p], n.til.migTag(p))
		if err := resil.UnpackInto(&n.rsnap, m.Data, m.Aux); err != nil {
			return fmt.Errorf("patch: migrating patch %d to worker %d: %w", p, n.me, err)
		}
		if err := n.installPatch(p, &n.rsnap); err != nil {
			return err
		}
		if n.tr != nil {
			n.tr.InstantV(trace.Wall, trace.TrackPatch, "migrate-in", n.tr.Now(), float64(p))
		}
	}
	copy(n.owner, newOwner)
	n.rebuildMine()
	if n.me == 0 && n.rc.stats != nil {
		n.rc.stats.Rebalances++
		n.rc.stats.Migrations += moves
	}
	return nil
}

// wave runs one snapshot wave over the owned patches: L1 deposits each
// patch's own snapshot, L2 places a copy with the patch's ring buddy,
// L3 folds the XOR parity of each patch's group. The store is keyed by
// patch ID — a deposit "held by" patch p lives in p's current owner's
// memory, so the supervisor invalidates exactly the patches a dead
// worker owned at the wave (see supervise.go).
func (n *node) wave(done int) error {
	rc := n.rc
	if n.tr != nil {
		defer n.tr.Scope(trace.TrackCkpt, "patch-wave")()
	}
	for _, p := range n.mine {
		resil.Capture(&n.snap, n.lats[p], n.til.Patches[p].Block, p)
		if rc.levels.Has(resil.L1) {
			rc.store.DepositOwn(&n.snap)
		}
		if rc.levels.Has(resil.L2) {
			if b := rc.store.Buddy(p); b != p {
				rc.store.DepositBuddy(b, &n.snap)
			}
		}
	}
	if rc.levels.Has(resil.L3) && rc.store.GroupSize() >= 2 {
		return n.parityWave(done)
	}
	return nil
}

// parityWave computes the L3 group XOR for every parity group this
// worker owns patches in. Group members owned by other workers are
// exchanged over mpi: each owner sends its members once to every other
// distinct owner of the group, then folds the full group locally, so
// every member patch deposits the identical parity record. Groups are
// processed in ascending order on every rank and sends always precede
// receives, which keeps the wave deadlock-free.
func (n *node) parityWave(done int) error {
	st := n.rc.store
	P := n.til.P()
	gs := st.GroupSize()
	for lo := 0; lo < P; lo += gs {
		hi := lo + gs
		if hi > P {
			hi = P
		}
		if hi-lo < 2 {
			continue // singleton group: no parity algebra
		}
		mineIn := 0
		for p := lo; p < hi; p++ {
			if n.owner[p] == n.me {
				mineIn++
			}
		}
		if mineIn == 0 {
			continue
		}
		// Ship my members once to each other distinct owner of the group.
		for q := lo; q < hi; q++ {
			if n.owner[q] != n.me {
				continue
			}
			resil.Capture(&n.snap, n.lats[q], n.til.Patches[q].Block, q)
			n.data, n.aux = n.snap.Pack(n.data, n.aux)
			sent := make(map[int]bool, hi-lo)
			for r := lo; r < hi; r++ {
				t := n.owner[r]
				if t == n.me || sent[t] {
					continue
				}
				sent[t] = true
				n.c.Isend(t, n.til.parityTag(q), mpi.Message{
					Data: append([]float64(nil), n.data...),
					Aux:  append([]byte(nil), n.aux...),
				})
			}
		}
		// Collect the full group: local captures plus one receive per
		// remote member.
		for j, r := 0, lo; r < hi; j, r = j+1, r+1 {
			if n.owner[r] == n.me {
				resil.Capture(&n.group[j], n.lats[r], n.til.Patches[r].Block, r)
				continue
			}
			m, err := n.c.RecvE(n.owner[r], n.til.parityTag(r))
			if err != nil {
				return fmt.Errorf("patch: L3 parity wave at step %d: %w", done, err)
			}
			if err := resil.UnpackInto(&n.group[j], m.Data, m.Aux); err != nil {
				return err
			}
		}
		// Fold and deposit the identical parity record for each of my
		// members.
		for p := lo; p < hi; p++ {
			if n.owner[p] != n.me {
				continue
			}
			cells := n.til.Patches[p].Cells()
			q := n.lats[p].Desc.Q
			resil.ParityReset(&n.par, p, done, cells*q, cells)
			for j := 0; j < hi-lo; j++ {
				resil.ParityAdd(&n.par, &n.group[j])
			}
			resil.Seal(&n.par)
			st.DepositParity(p, &n.par)
		}
	}
	return nil
}
