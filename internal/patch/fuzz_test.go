package patch_test

import (
	"testing"

	"sunwaylb/internal/decomp"
	"sunwaylb/internal/patch"
)

// FuzzTilePatches: every grid/tiling input NewTiling accepts must yield
// a full cover with no overlap and a symmetric adjacency graph, under
// both periodic and bounded topologies.
func FuzzTilePatches(f *testing.F) {
	f.Add(12, 10, 8, 3, 2, 2)
	f.Add(13, 11, 9, 4, 3, 1)
	f.Add(8, 8, 8, 1, 1, 1)
	f.Add(31, 7, 5, 7, 3, 2)
	f.Add(2, 2, 2, 1, 2, 1)
	f.Fuzz(func(t *testing.T, gnx, gny, gnz, tx, ty, tz int) {
		clamp := func(v, lo, hi int) int {
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		gnx, gny, gnz = clamp(gnx, 1, 40), clamp(gny, 1, 40), clamp(gnz, 1, 40)
		tx, ty, tz = clamp(tx, 1, 8), clamp(ty, 1, 8), clamp(tz, 1, 8)
		til, err := patch.NewTiling(gnx, gny, gnz, tx, ty, tz)
		if err != nil {
			t.Skip() // rejected input: nothing to assert
		}
		if til.P() != tx*ty*tz {
			t.Fatalf("%d patches, want %d", til.P(), tx*ty*tz)
		}
		blocks := make([]decomp.Block, 0, til.P())
		for _, p := range til.Patches {
			blocks = append(blocks, p.Block)
		}
		// Full cover, in bounds, pairwise disjoint.
		if err := decomp.Cover(blocks, gnx, gny, gnz); err != nil {
			t.Fatalf("tiling %dx%dx%d/%dx%dx%d: %v", gnx, gny, gnz, tx, ty, tz, err)
		}
		// Fair extents: no two patches differ by more than one cell per axis.
		for _, p := range til.Patches {
			for _, q := range til.Patches {
				dx := p.NX - q.NX
				dy := p.NY - q.NY
				dz := p.NZ - q.NZ
				if dx < -1 || dx > 1 || dy < -1 || dy > 1 || dz < -1 || dz > 1 {
					t.Fatalf("patches %d and %d differ by >1 cell: %+v vs %+v", p.ID, q.ID, p.Block, q.Block)
				}
			}
		}
		// Symmetric adjacency: every neighbour relation inverts exactly.
		for _, per := range []bool{false, true} {
			for _, p := range til.Patches {
				for axis := 0; axis < 3; axis++ {
					for _, dir := range []int{-1, +1} {
						nb := til.Neighbor(p.ID, axis, dir, per)
						if nb < 0 {
							continue
						}
						if back := til.Neighbor(nb, axis, -dir, per); back != p.ID {
							t.Fatalf("asymmetric adjacency: %d --%d/%+d--> %d --back--> %d",
								p.ID, axis, dir, nb, back)
						}
					}
				}
			}
			// Edge list symmetry: each edge's endpoints see each other.
			for _, e := range til.Edges([3]bool{per, per, per}) {
				if til.Neighbor(e.A, e.Axis, +1, per) != e.B {
					t.Fatalf("edge %+v not reproduced by Neighbor", e)
				}
				if til.Neighbor(e.B, e.Axis, -1, per) != e.A {
					t.Fatalf("edge %+v asymmetric", e)
				}
			}
		}
	})
}
