package resil

import (
	"errors"
	"math"
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/decomp"
	"sunwaylb/internal/lattice"
)

// aaPair builds a double-buffer reference lattice and an AA twin with
// identical perturbed state and a wall cell.
func aaPair(t *testing.T, nx, ny, nz int) (ref, aa *core.Lattice) {
	t.Helper()
	mk := func() *core.Lattice {
		l, err := core.NewLattice(&lattice.D3Q19, nx, ny, nz, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				for z := 0; z < nz; z++ {
					l.SetCell(x, y, z, 1+0.04*math.Sin(float64(x+2*y+3*z)),
						0.02*math.Cos(float64(x-z)), 0.01*math.Sin(float64(y)), 0.015*math.Cos(float64(z)))
				}
			}
		}
		l.SetWall(1, 1, 1)
		return l
	}
	ref, aa = mk(), mk()
	aa.EnableAA()
	return ref, aa
}

func stepPair(ls ...*core.Lattice) {
	for _, l := range ls {
		l.PeriodicAll()
		l.StepFused()
	}
}

// TestCaptureAAPhaseIndependent pins the L1 capture wire format: the
// serialised snapshot of an AA lattice is bit-identical to the reference
// lattice's at every step, in particular at the odd storage phase where
// the in-memory layout differs completely.
func TestCaptureAAPhaseIndependent(t *testing.T) {
	ref, aa := aaPair(t, 5, 4, 6)
	b := decomp.Block{NX: 5, NY: 4, NZ: 6}
	var sr, sa Snapshot
	for s := 1; s <= 4; s++ {
		stepPair(ref, aa)
		Capture(&sr, ref, b, 0)
		Capture(&sa, aa, b, 0)
		for k := range sr.Pops {
			// Fluid-cell payload must match bitwise; wall-cell slots are
			// semantically undefined in both schemes, so skip them.
			if sr.Flags[k/sr.Q] != byte(core.Fluid) {
				continue
			}
			if math.Float64bits(sr.Pops[k]) != math.Float64bits(sa.Pops[k]) {
				t.Fatalf("step %d (parity %d): payload word %d differs: ref %v aa %v",
					s, s&1, k, sr.Pops[k], sa.Pops[k])
			}
		}
		for k := range sr.Flags {
			if sr.Flags[k] != sa.Flags[k] {
				t.Fatalf("step %d: flag %d differs", s, k)
			}
		}
		if !sa.Verify() {
			t.Fatalf("step %d: AA snapshot failed checksum", s)
		}
	}
}

// TestRestoreIntoResume is the phase-parity metamorphic oracle: capture
// an AA run at an odd step, restore the snapshot into a fresh AA lattice
// placed at the right parity, resume, and require bit-identity with the
// uninterrupted run at every subsequent step.
func TestRestoreIntoResume(t *testing.T) {
	for _, stop := range []int{2, 3} {
		ref, aa := aaPair(t, 5, 4, 6)
		for s := 0; s < stop; s++ {
			stepPair(ref, aa)
		}
		b := decomp.Block{NX: 5, NY: 4, NZ: 6}
		var snap Snapshot
		Capture(&snap, aa, b, 0)

		fresh, err := core.NewLattice(&lattice.D3Q19, 5, 4, 6, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		fresh.EnableAA()
		fresh.SetStep(snap.Step)
		if err := RestoreInto(fresh, &snap); err != nil {
			t.Fatalf("stop %d: RestoreInto: %v", stop, err)
		}
		for s := stop; s < stop+3; s++ {
			stepPair(ref, aa, fresh)
			var fr, fa []float64
			for y := 0; y < ref.NY; y++ {
				for x := 0; x < ref.NX; x++ {
					for z := 0; z < ref.NZ; z++ {
						if ref.Flags[ref.Idx(x, y, z)] != core.Fluid {
							continue
						}
						fr = ref.Populations(x, y, z, fr)
						fa = fresh.Populations(x, y, z, fa)
						for q := range fr {
							if math.Float64bits(fr[q]) != math.Float64bits(fa[q]) {
								t.Fatalf("stop %d resume step %d cell (%d,%d,%d) pop %d: ref %v restored %v",
									stop, s, x, y, z, q, fr[q], fa[q])
							}
						}
					}
				}
			}
		}
	}
}

// TestRestoreIntoPhaseMatrix is the table-driven parity contract: every
// combination of snapshot parity and AA-lattice phase, plus the non-AA
// lattice which accepts any parity.
func TestRestoreIntoPhaseMatrix(t *testing.T) {
	_, aa := aaPair(t, 4, 4, 4)
	b := decomp.Block{NX: 4, NY: 4, NZ: 4}
	snaps := map[int]*Snapshot{} // parity → snapshot
	for s := 1; s <= 2; s++ {
		stepPair(aa)
		var snap Snapshot
		Capture(&snap, aa, b, 0)
		snaps[s&1] = &snap
	}
	cases := []struct {
		name                string
		aaLat               bool
		latStep, snapParity int
		wantMismatch        bool
	}{
		{"aa-even-into-even", true, 2, 0, false},
		{"aa-odd-into-odd", true, 3, 1, false},
		{"aa-odd-into-even", true, 2, 1, true},
		{"aa-even-into-odd", true, 3, 0, true},
		{"plain-even-any-step", false, 3, 0, false},
		{"plain-odd-any-step", false, 2, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, err := core.NewLattice(&lattice.D3Q19, 4, 4, 4, 0.8)
			if err != nil {
				t.Fatal(err)
			}
			if tc.aaLat {
				l.EnableAA()
			}
			l.SetStep(tc.latStep)
			err = RestoreInto(l, snaps[tc.snapParity])
			if tc.wantMismatch {
				if !errors.Is(err, ErrPhaseMismatch) {
					t.Fatalf("want ErrPhaseMismatch, got %v", err)
				}
				if l.Step() != tc.latStep {
					t.Fatalf("failed restore moved the step counter to %d", l.Step())
				}
			} else if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

// TestRestoreIntoGeometryErrors pins the validation failures.
func TestRestoreIntoGeometryErrors(t *testing.T) {
	_, aa := aaPair(t, 4, 4, 4)
	b := decomp.Block{NX: 4, NY: 4, NZ: 4}
	var snap Snapshot
	Capture(&snap, aa, b, 0)

	wrong, err := core.NewLattice(&lattice.D3Q19, 5, 4, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := RestoreInto(wrong, &snap); err == nil {
		t.Fatal("restore into mismatched block succeeded")
	}
	short := snap
	short.Pops = snap.Pops[:len(snap.Pops)-1]
	ok, err := core.NewLattice(&lattice.D3Q19, 4, 4, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := RestoreInto(ok, &short); err == nil {
		t.Fatal("restore of truncated payload succeeded")
	}
}
