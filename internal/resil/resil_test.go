package resil

import (
	"math"
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/decomp"
	"sunwaylb/internal/lattice"
)

func TestParseLevelsRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Levels
	}{
		{"", 0},
		{"1", L1},
		{"12", L1 | L2},
		{"123", L1 | L2 | L3},
		{"1234", L1 | L2 | L3 | L4},
		{"4", L4},
		{"31", L1 | L3},
	}
	for _, c := range cases {
		got, err := ParseLevels(c.in)
		if err != nil {
			t.Fatalf("ParseLevels(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseLevels(%q) = %v, want %v", c.in, got, c.want)
		}
		if c.in != "" {
			back, err := ParseLevels(got.String())
			if err != nil || back != got {
				t.Errorf("String/Parse round trip of %q: got %v (%v)", c.in, back, err)
			}
		}
	}
	if _, err := ParseLevels("15"); err == nil {
		t.Error("ParseLevels(\"15\") accepted an invalid level")
	}
}

// testLattice builds a small lattice with distinctive populations.
func testLattice(t *testing.T, nx, ny, nz int) *core.Lattice {
	t.Helper()
	l, err := core.NewLattice(&lattice.D3Q19, nx, ny, nz, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	l.InitEquilibrium(1, 0.03, -0.01, 0.02)
	l.SetWall(0, 0, 0)
	l.PeriodicAll()
	l.StepFused()
	l.StepFused()
	return l
}

func TestCapturePackUnpackRoundTrip(t *testing.T) {
	l := testLattice(t, 4, 3, 5)
	b := decomp.Block{X0: 2, Y0: 1, Z0: 0, NX: 4, NY: 3, NZ: 5}
	var s Snapshot
	Capture(&s, l, b, 7)
	if s.Rank != 7 || s.Step != 2 || s.Q != 19 {
		t.Fatalf("capture header: rank=%d step=%d q=%d", s.Rank, s.Step, s.Q)
	}
	if !s.Verify() {
		t.Fatal("fresh capture fails Verify")
	}
	if got, want := len(s.Pops), 4*3*5*19; got != want {
		t.Fatalf("pops length %d, want %d", got, want)
	}

	data, aux := s.Pack(nil, nil)
	var u Snapshot
	if err := UnpackInto(&u, data, aux); err != nil {
		t.Fatal(err)
	}
	if u.Rank != s.Rank || u.Step != s.Step || u.X0 != s.X0 || u.NX != s.NX || u.Sum != s.Sum {
		t.Fatalf("unpack header mismatch: %+v vs %+v", u, s)
	}
	for i := range s.Pops {
		if u.Pops[i] != s.Pops[i] {
			t.Fatalf("pops[%d] = %g, want %g", i, u.Pops[i], s.Pops[i])
		}
	}
	if !u.Verify() {
		t.Fatal("unpacked snapshot fails Verify")
	}
	// A flipped payload bit must fail verification.
	u.Pops[3] = math.Float64frombits(math.Float64bits(u.Pops[3]) ^ 1)
	if u.Verify() {
		t.Fatal("corrupted snapshot passes Verify")
	}
}

func TestCaptureSteadyStateAllocFree(t *testing.T) {
	l := testLattice(t, 6, 6, 6)
	b := decomp.Block{NX: 6, NY: 6, NZ: 6}
	var s Snapshot
	Capture(&s, l, b, 0) // sizing capture
	allocs := testing.AllocsPerRun(20, func() {
		Capture(&s, l, b, 0)
	})
	if allocs != 0 {
		t.Errorf("steady-state capture allocates %.1f times per run, want 0", allocs)
	}
}

// groupSnapshots captures nranks uneven blocks of a shared lattice.
func groupSnapshots(t *testing.T, l *core.Lattice, blocks []decomp.Block) []*Snapshot {
	t.Helper()
	out := make([]*Snapshot, len(blocks))
	for r, b := range blocks {
		// Each "rank" snapshots its own sub-block from a lattice of the
		// block's size, carved from the same global state for realism.
		sub, err := core.NewLattice(&lattice.D3Q19, b.NX, b.NY, b.NZ, l.Tau)
		if err != nil {
			t.Fatal(err)
		}
		src, dst := l.Src(), sub.Src()
		for y := 0; y < b.NY; y++ {
			for x := 0; x < b.NX; x++ {
				for z := 0; z < b.NZ; z++ {
					gi := l.Idx(b.X0+x, b.Y0+y, b.Z0+z)
					li := sub.Idx(x, y, z)
					for q := 0; q < 19; q++ {
						dst[q*sub.N+li] = src[q*l.N+gi]
					}
					sub.Flags[li] = l.Flags[gi]
				}
			}
		}
		sub.SetStep(l.Step())
		out[r] = &Snapshot{}
		Capture(out[r], sub, b, r)
	}
	return out
}

func TestParityReconstructUnevenBlocks(t *testing.T) {
	l := testLattice(t, 7, 4, 3)
	// Uneven x split: 3 + 2 + 2 cells wide.
	blocks := []decomp.Block{
		{X0: 0, NX: 3, NY: 4, NZ: 3},
		{X0: 3, NX: 2, NY: 4, NZ: 3},
		{X0: 5, NX: 2, NY: 4, NZ: 3},
	}
	snaps := groupSnapshots(t, l, blocks)

	var p Snapshot
	ParityReset(&p, 0, l.Step(), 0, 0)
	for _, s := range snaps {
		ParityAdd(&p, s)
	}
	Seal(&p)
	if !p.Verify() {
		t.Fatal("sealed parity fails Verify")
	}

	for missing := range snaps {
		survivors := make([]*Snapshot, 0, 2)
		for r, s := range snaps {
			if r != missing {
				survivors = append(survivors, s)
			}
		}
		var out Snapshot
		if err := Reconstruct(&out, &p, survivors, missing, blocks[missing], 19, l.Step()); err != nil {
			t.Fatalf("reconstruct rank %d: %v", missing, err)
		}
		want := snaps[missing]
		if out.Sum != want.Sum || len(out.Pops) != len(want.Pops) {
			t.Fatalf("rank %d reconstruction checksum mismatch", missing)
		}
		for i := range want.Pops {
			if math.Float64bits(out.Pops[i]) != math.Float64bits(want.Pops[i]) {
				t.Fatalf("rank %d pops[%d] = %g, want %g", missing, i, out.Pops[i], want.Pops[i])
			}
		}
		for i := range want.Flags {
			if out.Flags[i] != want.Flags[i] {
				t.Fatalf("rank %d flags[%d] mismatch", missing, i)
			}
		}
	}
}

// storeFixture deposits a complete generation for 4 ranks in 2 groups
// of 2 and returns the store plus the per-rank snapshots.
func storeFixture(t *testing.T) (*Store, []*Snapshot, []decomp.Block) {
	t.Helper()
	l := testLattice(t, 8, 4, 3)
	blocks := []decomp.Block{
		{X0: 0, NX: 2, NY: 4, NZ: 3},
		{X0: 2, NX: 2, NY: 4, NZ: 3},
		{X0: 4, NX: 2, NY: 4, NZ: 3},
		{X0: 6, NX: 2, NY: 4, NZ: 3},
	}
	snaps := groupSnapshots(t, l, blocks)
	st, err := NewStore(4, 2, blocks)
	if err != nil {
		t.Fatal(err)
	}
	depositAll(st, snaps)
	return st, snaps, blocks
}

// depositAll deposits a full L1+L2+L3 generation from the snapshots.
func depositAll(st *Store, snaps []*Snapshot) {
	for _, s := range snaps {
		st.DepositOwn(s)
	}
	for r, s := range snaps {
		if b := st.Buddy(r); b != r {
			st.DepositBuddy(b, s)
		}
	}
	for r := range snaps {
		lo, hi := st.Group(r)
		var p Snapshot
		ParityReset(&p, r, snaps[r].Step, 0, 0)
		for m := lo; m < hi; m++ {
			ParityAdd(&p, snaps[m])
		}
		Seal(&p)
		st.DepositParity(r, &p)
	}
}

func TestStoreBuddyRecovery(t *testing.T) {
	st, snaps, _ := storeFixture(t)
	rec, ok := st.RecoveryPlan([]int{1})
	if !ok {
		t.Fatal("single death in a buddied group must be recoverable")
	}
	if rec.BuddyRestores != 1 || rec.Reconstructions != 0 {
		t.Fatalf("restores: buddy=%d parity=%d, want 1/0", rec.BuddyRestores, rec.Reconstructions)
	}
	if rec.Blocks[1].Sum != snaps[1].Sum {
		t.Fatal("buddy-restored block differs from the original")
	}
}

func TestStoreParityRecoveryWhenBuddyCorrupt(t *testing.T) {
	st, snaps, _ := storeFixture(t)
	// Corrupt the buddy copy of rank 1 (held by rank 0): the plan must
	// detect the checksum failure and fall through to parity.
	st.mu.Lock()
	g := &st.gen[st.cur]
	g.buddy[0].Pops[0] = math.Float64frombits(math.Float64bits(g.buddy[0].Pops[0]) ^ 4)
	st.mu.Unlock()

	rec, ok := st.RecoveryPlan([]int{1})
	if !ok {
		t.Fatal("parity must cover a corrupted buddy copy")
	}
	if rec.Reconstructions != 1 {
		t.Fatalf("reconstructions = %d, want 1", rec.Reconstructions)
	}
	if rec.Blocks[1].Sum != snaps[1].Sum {
		t.Fatal("parity-reconstructed block differs from the original")
	}
}

func TestStoreOneDeathPerGroup(t *testing.T) {
	st, snaps, _ := storeFixture(t)
	rec, ok := st.RecoveryPlan([]int{1, 2})
	if !ok {
		t.Fatal("one death per parity group must be recoverable")
	}
	for _, d := range []int{1, 2} {
		if rec.Blocks[d].Sum != snaps[d].Sum {
			t.Fatalf("rank %d block differs from the original", d)
		}
	}
	if rec.BuddyRestores != 2 {
		t.Fatalf("buddy restores = %d, want 2 (both partners alive)", rec.BuddyRestores)
	}
}

func TestStoreTwoDeathsOneGroupEscalates(t *testing.T) {
	st, _, _ := storeFixture(t)
	// Ranks 0 and 1 are a buddy pair: both L2 copies die with them and
	// the group parity has two unknowns. Must escalate.
	if _, ok := st.RecoveryPlan([]int{0, 1}); ok {
		t.Fatal("two deaths in one parity group must escalate to L4")
	}
}

func TestStoreTornGenerationFallsBack(t *testing.T) {
	st, snaps, _ := storeFixture(t)
	// A newer, torn generation: only ranks 0 and 1 deposited.
	newer := make([]*Snapshot, len(snaps))
	for r, s := range snaps {
		c := &Snapshot{}
		copyInto(c, s)
		c.Step = s.Step + 5
		c.Sum = checksum(c.Pops, c.Flags)
		newer[r] = c
	}
	st.DepositOwn(newer[0])
	st.DepositOwn(newer[1])

	rec, ok := st.RecoveryPlan([]int{2})
	if !ok {
		t.Fatal("fallback to the previous complete generation failed")
	}
	if rec.Step != snaps[0].Step {
		t.Fatalf("recovered at step %d, want the older complete step %d", rec.Step, snaps[0].Step)
	}
}

func TestStoreBuddyChainInGroup(t *testing.T) {
	// One group of 4: ring buddies 0→1→2→3→0. Kill 1 and 3 (not a
	// buddy pair): 1's copy is on 2 (alive), 3's copy is on 0 (alive).
	l := testLattice(t, 8, 4, 3)
	blocks := []decomp.Block{
		{X0: 0, NX: 2, NY: 4, NZ: 3},
		{X0: 2, NX: 2, NY: 4, NZ: 3},
		{X0: 4, NX: 2, NY: 4, NZ: 3},
		{X0: 6, NX: 2, NY: 4, NZ: 3},
	}
	snaps := groupSnapshots(t, l, blocks)
	st, err := NewStore(4, 4, blocks)
	if err != nil {
		t.Fatal(err)
	}
	depositAll(st, snaps)
	rec, ok := st.RecoveryPlan([]int{1, 3})
	if !ok {
		t.Fatal("two non-adjacent deaths in a 4-group with L2 must be recoverable")
	}
	if rec.BuddyRestores != 2 {
		t.Fatalf("buddy restores = %d, want 2", rec.BuddyRestores)
	}
	// Kill a buddy pair (2,3): 3's copy on 0 survives; 2's copy died
	// with 3 — parity has one unknown left after the L2 restore.
	rec2, ok := st.RecoveryPlan([]int{2, 3})
	if !ok {
		t.Fatal("buddy-chain + parity must recover an adjacent pair in a 4-group")
	}
	if rec2.BuddyRestores != 1 || rec2.Reconstructions != 1 {
		t.Fatalf("restores: buddy=%d parity=%d, want 1/1", rec2.BuddyRestores, rec2.Reconstructions)
	}
	for _, d := range []int{2, 3} {
		if rec2.Blocks[d].Sum != snaps[d].Sum {
			t.Fatalf("rank %d block differs from the original", d)
		}
	}
}

func TestStoreInvalidate(t *testing.T) {
	st, _, _ := storeFixture(t)
	st.Invalidate([]int{0})
	// Rank 0's memory is gone: rank 1's buddy copy (held by 0) and
	// rank 0's own snapshot are unavailable. A death of rank 1 must now
	// lean on parity (held by rank 0's partner... rank 0 held group
	// {0,1}'s parity too, but rank 1's replica survives on rank 1 —
	// which is the dead one). With both parity replicas out of reach
	// (rank 0 invalidated, rank 1 dead) the loss must escalate.
	if _, ok := st.RecoveryPlan([]int{1}); ok {
		t.Fatal("death of rank 1 after rank 0's memory loss must escalate")
	}
	// A different group is untouched.
	if _, ok := st.RecoveryPlan([]int{3}); !ok {
		t.Fatal("group {2,3} must still be recoverable")
	}
}

func TestAssembleMatchesOriginal(t *testing.T) {
	l := testLattice(t, 6, 4, 3)
	blocks := []decomp.Block{
		{X0: 0, NX: 3, NY: 4, NZ: 3},
		{X0: 3, NX: 3, NY: 4, NZ: 3},
	}
	snaps := groupSnapshots(t, l, blocks)
	rec := &Recovery{Step: l.Step(), Blocks: map[int]*Snapshot{0: snaps[0], 1: snaps[1]}}
	g, err := Assemble(rec, 6, 4, 3, l.Tau, l.Smagorinsky, l.Force)
	if err != nil {
		t.Fatal(err)
	}
	if g.Step() != l.Step() {
		t.Fatalf("assembled step %d, want %d", g.Step(), l.Step())
	}
	gsrc, lsrc := g.Src(), l.Src()
	for y := 0; y < 4; y++ {
		for x := 0; x < 6; x++ {
			for z := 0; z < 3; z++ {
				gi, li := g.Idx(x, y, z), l.Idx(x, y, z)
				if g.Flags[gi] != l.Flags[li] {
					t.Fatalf("flags differ at %d,%d,%d", x, y, z)
				}
				for q := 0; q < 19; q++ {
					if math.Float64bits(gsrc[q*g.N+gi]) != math.Float64bits(lsrc[q*l.N+li]) {
						t.Fatalf("pops differ at %d,%d,%d q=%d", x, y, z, q)
					}
				}
			}
		}
	}
}

func TestStoreBytesLedger(t *testing.T) {
	st, snaps, _ := storeFixture(t)
	b := st.Bytes()
	per := snaps[0].PayloadBytes()
	if b[0] != 4*per {
		t.Errorf("L1 bytes = %d, want %d", b[0], 4*per)
	}
	if b[1] != 4*per {
		t.Errorf("L2 bytes = %d, want %d", b[1], 4*per)
	}
	if b[2] == 0 || b[3] != 0 {
		t.Errorf("L3/L4 bytes = %d/%d, want >0/0", b[2], b[3])
	}
	st.AccountDisk(123)
	if st.Bytes()[3] != 123 {
		t.Error("AccountDisk not reflected in ledger")
	}
}
