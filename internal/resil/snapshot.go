package resil

import (
	"fmt"
	"math"

	"sunwaylb/internal/core"
	"sunwaylb/internal/decomp"
)

// Snapshot is one rank's serialised subdomain state at a step boundary:
// the interior populations and cell flags of the rank's block, plus
// enough geometry to place the block back into the global lattice. The
// same struct doubles as a parity record (XOR of a group's snapshots),
// in which case the geometry fields describe no block and only the
// padded payload matters.
type Snapshot struct {
	// Rank is the owner (for L1), the original owner of a buddy copy
	// (for L2), or the computing member (for parity).
	Rank int
	// Step is the completed-step count the state belongs to.
	Step int
	// X0, Y0, Z0, NX, NY, NZ locate the block in the global domain.
	X0, Y0, Z0 int
	NX, NY, NZ int
	// Q is the descriptor population count.
	Q int
	// Pops holds the interior populations in (y, x, z) block order with
	// q innermost — the same order GatherLattice serialises.
	Pops []float64
	// Flags holds the interior cell flags in the same order.
	Flags []byte
	// Sum is the FNV-1a checksum of Pops and Flags, so a corrupted
	// buddy push or parity replica is detected at use time.
	Sum uint64
}

// PayloadBytes returns the in-memory size of the snapshot payload.
func (s *Snapshot) PayloadBytes() int64 {
	return int64(8*len(s.Pops) + len(s.Flags))
}

// fnv-1a 64-bit constants.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// fnvU64 folds one 64-bit word into an FNV-1a hash, byte by byte.
//
//lbm:hot
func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// checksum computes the snapshot payload checksum.
//
// Per-element traffic: one float64 read (the flag pass reads a byte).
//
//lbm:hot traffic budget=8
func checksum(pops []float64, flags []byte) uint64 {
	h := uint64(fnvOffset)
	for _, v := range pops {
		h = fnvU64(h, math.Float64bits(v))
	}
	for _, f := range flags {
		h ^= uint64(f)
		h *= fnvPrime
	}
	return h
}

// Verify reports whether the payload still matches the checksum.
func (s *Snapshot) Verify() bool { return checksum(s.Pops, s.Flags) == s.Sum }

// ensure grows the snapshot's payload buffers to hold n populations and
// m flags. Kept out of the hot capture path so the per-step capture
// stays allocation-free in steady state.
func (s *Snapshot) ensure(n, m int) {
	if cap(s.Pops) < n {
		s.Pops = make([]float64, n)
	}
	s.Pops = s.Pops[:n]
	if cap(s.Flags) < m {
		s.Flags = make([]byte, m)
	}
	s.Flags = s.Flags[:m]
}

// Capture records the lattice's interior block state into the snapshot,
// reusing the snapshot's buffers (steady-state allocation-free; the
// first capture sizes them). The lattice holds the rank's local block
// (interior NX×NY×NZ); b locates that block globally.
func Capture(s *Snapshot, lat *core.Lattice, b decomp.Block, rank int) {
	q := lat.Desc.Q
	cells := b.NX * b.NY * b.NZ
	s.Rank, s.Step = rank, lat.Step()
	s.X0, s.Y0, s.Z0 = b.X0, b.Y0, b.Z0
	s.NX, s.NY, s.NZ = b.NX, b.NY, b.NZ
	s.Q = q
	s.ensure(cells*q, cells)
	s.Sum = captureInto(s.Pops, s.Flags, lat, q)
}

// captureInto copies the interior populations and flags into the
// pre-sized buffers and returns the payload checksum (computed in the
// same canonical pops-then-flags order Verify uses). This is the
// per-step L1 capture loop: no allocation, no formatting, leaf calls
// only. Population slots are resolved through the lattice's per-pop
// bases, so the serialised logical state is identical at both AA
// storage phases (and on non-AA lattices).
//
// Per-cell traffic: 19 population reads + 19 buffer writes plus the
// flag byte in and out.
//
//lbm:hot traffic budget=320 assume q=19
func captureInto(pops []float64, flags []byte, lat *core.Lattice, q int) uint64 {
	src := lat.Src()
	var baseArr [core.MaxQ]int
	base := baseArr[:q]
	for i := range base {
		base[i] = lat.PopBase(i)
	}
	k := 0
	for y := 0; y < lat.NY; y++ {
		for x := 0; x < lat.NX; x++ {
			for z := 0; z < lat.NZ; z++ {
				idx := lat.Idx(x, y, z)
				for i := 0; i < q; i++ {
					pops[k*q+i] = src[base[i]+idx]
				}
				flags[k] = byte(lat.Flags[idx])
				k++
			}
		}
	}
	return checksum(pops, flags)
}

// copyInto deep-copies src into dst, reusing dst's buffers.
func copyInto(dst, src *Snapshot) {
	*dst = Snapshot{
		Rank: src.Rank, Step: src.Step,
		X0: src.X0, Y0: src.Y0, Z0: src.Z0,
		NX: src.NX, NY: src.NY, NZ: src.NZ,
		Q: src.Q, Sum: src.Sum,
		Pops:  dst.Pops,
		Flags: dst.Flags,
	}
	dst.ensure(len(src.Pops), len(src.Flags))
	copy(dst.Pops, src.Pops)
	copy(dst.Flags, src.Flags)
}

// packHeader is the number of float64 header words of a packed snapshot.
const packHeader = 11

// Pack serialises the snapshot for an mpi transfer, appending to the
// provided buffers (pass nil-or-reused slices; the returned slices are
// the message payload). The checksum travels split across two words so
// it survives the float64 payload type exactly.
func (s *Snapshot) Pack(data []float64, aux []byte) ([]float64, []byte) {
	data = data[:0]
	data = append(data,
		float64(s.Rank), float64(s.Step),
		float64(s.X0), float64(s.Y0), float64(s.Z0),
		float64(s.NX), float64(s.NY), float64(s.NZ),
		float64(s.Q),
		float64(s.Sum>>32), float64(s.Sum&0xffffffff))
	data = append(data, s.Pops...)
	aux = append(aux[:0], s.Flags...)
	return data, aux
}

// UnpackInto decodes a packed snapshot into dst, reusing dst's buffers.
func UnpackInto(dst *Snapshot, data []float64, aux []byte) error {
	if len(data) < packHeader {
		return fmt.Errorf("resil: packed snapshot too short (%d words)", len(data))
	}
	dst.Rank, dst.Step = int(data[0]), int(data[1])
	dst.X0, dst.Y0, dst.Z0 = int(data[2]), int(data[3]), int(data[4])
	dst.NX, dst.NY, dst.NZ = int(data[5]), int(data[6]), int(data[7])
	dst.Q = int(data[8])
	dst.Sum = uint64(data[9])<<32 | uint64(data[10])
	body := data[packHeader:]
	dst.ensure(len(body), len(aux))
	copy(dst.Pops, body)
	copy(dst.Flags, aux)
	return nil
}
