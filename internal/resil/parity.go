package resil

import (
	"fmt"
	"math"

	"sunwaylb/internal/decomp"
)

// Parity algebra. A parity record is the bitwise XOR of every group
// member's snapshot payload, padded to the longest member (uneven
// decompositions give uneven blocks). XOR is associative and its own
// inverse, so the missing member equals the parity XORed with every
// surviving member — one unknown per group, exactly the RAID-5
// guarantee.

// xorFloats XORs src's float bit patterns into dst[:len(src)].
//
// Per-element traffic: read dst and src, write dst — three float64s.
//
//lbm:hot traffic budget=24
func xorFloats(dst, src []float64) {
	for i, v := range src {
		dst[i] = math.Float64frombits(math.Float64bits(dst[i]) ^ math.Float64bits(v))
	}
}

// xorBytes XORs src into dst[:len(src)].
//
// Per-element traffic: read dst and src, write dst — three bytes.
//
//lbm:hot traffic budget=3
func xorBytes(dst, src []byte) {
	for i, b := range src {
		dst[i] ^= b
	}
}

// ParityReset initialises p as an empty parity record for the given
// computing rank and step, with capacity for payloads up to n
// populations and m flags.
func ParityReset(p *Snapshot, rank, step, n, m int) {
	p.Rank, p.Step = rank, step
	p.X0, p.Y0, p.Z0 = 0, 0, 0
	p.NX, p.NY, p.NZ = 0, 0, 0
	p.Q = 0
	p.ensure(n, m)
	for i := range p.Pops {
		p.Pops[i] = 0
	}
	for i := range p.Flags {
		p.Flags[i] = 0
	}
}

// ParityAdd folds one member snapshot into the parity record, growing
// the record if the member's payload is longer than anything seen so
// far. Call Seal once every member has been added.
func ParityAdd(p *Snapshot, member *Snapshot) {
	if len(member.Pops) > len(p.Pops) || len(member.Flags) > len(p.Flags) {
		growParity(p, len(member.Pops), len(member.Flags))
	}
	xorFloats(p.Pops, member.Pops)
	xorBytes(p.Flags, member.Flags)
}

// growParity extends the parity payload with zero padding, preserving
// the accumulated prefix.
func growParity(p *Snapshot, n, m int) {
	if n < len(p.Pops) {
		n = len(p.Pops)
	}
	if m < len(p.Flags) {
		m = len(p.Flags)
	}
	pops := p.Pops
	flags := p.Flags
	if cap(pops) < n {
		pops = make([]float64, n)
		copy(pops, p.Pops)
	} else {
		old := len(pops)
		pops = pops[:n]
		for i := old; i < n; i++ {
			pops[i] = 0
		}
	}
	if cap(flags) < m {
		flags = make([]byte, m)
		copy(flags, p.Flags)
	} else {
		old := len(flags)
		flags = flags[:m]
		for i := old; i < m; i++ {
			flags[i] = 0
		}
	}
	p.Pops, p.Flags = pops, flags
}

// Seal stamps the parity record's checksum after the last ParityAdd.
func Seal(p *Snapshot) { p.Sum = checksum(p.Pops, p.Flags) }

// Reconstruct recovers the snapshot of the missing rank from a sealed
// parity record and the snapshots of every other group member. The
// missing block's geometry comes from the decomposition table (the
// payload stores no geometry for a dead rank). dst is reused.
func Reconstruct(dst *Snapshot, parity *Snapshot, survivors []*Snapshot,
	missing int, b decomp.Block, q, step int) error {
	if !parity.Verify() {
		return fmt.Errorf("resil: parity record from rank %d fails checksum", parity.Rank)
	}
	cells := b.NX * b.NY * b.NZ
	n := cells * q
	if n > len(parity.Pops) || cells > len(parity.Flags) {
		return fmt.Errorf("resil: parity payload (%d pops) shorter than missing block (%d)",
			len(parity.Pops), n)
	}
	// Accumulate parity ⊕ survivors into a full-width scratch, then
	// truncate to the missing block's size.
	dst.ensure(len(parity.Pops), len(parity.Flags))
	copy(dst.Pops, parity.Pops)
	copy(dst.Flags, parity.Flags)
	for _, s := range survivors {
		if s.Step != step {
			return fmt.Errorf("resil: survivor rank %d snapshot at step %d, want %d", s.Rank, s.Step, step)
		}
		if !s.Verify() {
			return fmt.Errorf("resil: survivor rank %d snapshot fails checksum", s.Rank)
		}
		xorFloats(dst.Pops, s.Pops)
		xorBytes(dst.Flags, s.Flags)
	}
	// Beyond the missing block's extent the XOR must cancel to zero;
	// a nonzero tail means the equation had more than one unknown.
	for _, v := range dst.Pops[n:] {
		if math.Float64bits(v) != 0 {
			return fmt.Errorf("resil: parity residue beyond missing block (multiple unknowns?)")
		}
	}
	dst.Pops = dst.Pops[:n]
	dst.Flags = dst.Flags[:cells]
	dst.Rank, dst.Step = missing, step
	dst.X0, dst.Y0, dst.Z0 = b.X0, b.Y0, b.Z0
	dst.NX, dst.NY, dst.NZ = b.NX, b.NY, b.NZ
	dst.Q = q
	dst.Sum = checksum(dst.Pops, dst.Flags)
	return nil
}
