package resil

import (
	"errors"
	"fmt"

	"sunwaylb/internal/core"
)

// ErrPhaseMismatch is returned by RestoreInto when a snapshot's step
// parity disagrees with the target lattice's AA storage phase. An
// AA-pattern lattice stores populations in one of two layouts selected by
// the parity of its step counter; writing an odd-parity snapshot into an
// even-phase lattice (or vice versa) would scatter the payload into the
// wrong slots. Callers must SetStep to the snapshot's step (or one with
// the same parity) before restoring.
var ErrPhaseMismatch = errors.New("resil: snapshot step parity does not match lattice AA phase")

// RestoreInto writes a snapshot's interior state back into a lattice
// whose interior dimensions match the snapshot block. It validates the
// geometry and, for AA lattices, the storage phase — the lattice's step
// counter must already carry the snapshot's parity (SetStep first, then
// restore). The step counter itself is NOT modified: restore placement
// is the caller's contract, phase correctness is this function's.
func RestoreInto(lat *core.Lattice, s *Snapshot) error {
	if s.NX != lat.NX || s.NY != lat.NY || s.NZ != lat.NZ {
		return fmt.Errorf("resil: snapshot block %dx%dx%d does not fit lattice interior %dx%dx%d",
			s.NX, s.NY, s.NZ, lat.NX, lat.NY, lat.NZ)
	}
	if s.Q != lat.Desc.Q {
		return fmt.Errorf("resil: snapshot has %d populations, lattice descriptor %s has %d",
			s.Q, lat.Desc.Name, lat.Desc.Q)
	}
	if want := s.NX * s.NY * s.NZ; len(s.Pops) != want*s.Q || len(s.Flags) != want {
		return fmt.Errorf("resil: snapshot payload sized for %d pops / %d flags, got %d / %d",
			want*s.Q, want, len(s.Pops), len(s.Flags))
	}
	if lat.AA() && lat.Step()&1 != s.Step&1 {
		return fmt.Errorf("%w (snapshot step %d, lattice step %d)",
			ErrPhaseMismatch, s.Step, lat.Step())
	}
	q := s.Q
	src := lat.Src()
	k := 0
	for y := 0; y < lat.NY; y++ {
		for x := 0; x < lat.NX; x++ {
			for z := 0; z < lat.NZ; z++ {
				idx := lat.Idx(x, y, z)
				for i := 0; i < q; i++ {
					src[lat.PopIndex(i, idx)] = s.Pops[k*q+i]
				}
				lat.Flags[idx] = core.CellType(s.Flags[k])
				k++
			}
		}
	}
	return nil
}
