package resil

import (
	"fmt"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

// Assemble builds the global lattice of a completed recovery: every
// rank's block snapshot is placed at its global coordinates, producing
// a state indistinguishable from a gathered checkpoint at rec.Step.
// The supervisor hands the result to Options.Restore, so a hot-swapped
// world resumes with the world size preserved and at most the steps
// since the snapshot to replay.
func Assemble(rec *Recovery, gnx, gny, gnz int, tau, smag float64, force [3]float64) (*core.Lattice, error) {
	g, err := core.NewLattice(&lattice.D3Q19, gnx, gny, gnz, tau)
	if err != nil {
		return nil, fmt.Errorf("resil: assembling recovery lattice: %w", err)
	}
	g.Smagorinsky = smag
	g.Force = force
	dst := g.Src()
	for _, s := range rec.Blocks {
		if s.Q != g.Desc.Q {
			return nil, fmt.Errorf("resil: rank %d snapshot has q=%d, lattice wants %d", s.Rank, s.Q, g.Desc.Q)
		}
		if !s.Verify() {
			return nil, fmt.Errorf("resil: rank %d snapshot fails checksum at assembly", s.Rank)
		}
		if s.X0 < 0 || s.Y0 < 0 || s.Z0 < 0 ||
			s.X0+s.NX > gnx || s.Y0+s.NY > gny || s.Z0+s.NZ > gnz {
			return nil, fmt.Errorf("resil: rank %d block %d,%d,%d+%d×%d×%d outside %d×%d×%d",
				s.Rank, s.X0, s.Y0, s.Z0, s.NX, s.NY, s.NZ, gnx, gny, gnz)
		}
		q := s.Q
		k := 0
		for y := 0; y < s.NY; y++ {
			for x := 0; x < s.NX; x++ {
				for z := 0; z < s.NZ; z++ {
					idx := g.Idx(s.X0+x, s.Y0+y, s.Z0+z)
					for i := 0; i < q; i++ {
						dst[i*g.N+idx] = s.Pops[k*q+i]
					}
					g.Flags[idx] = core.CellType(s.Flags[k])
					k++
				}
			}
		}
	}
	g.SetStep(rec.Step)
	return g, nil
}
