package resil

import (
	"fmt"
	"sort"
	"sync"

	"sunwaylb/internal/decomp"
)

// Store is the supervisor-side ledger of the in-memory checkpoint
// hierarchy: it models each rank's local memory in the simulated
// machine. Ranks deposit their own L1 snapshots, the L2 buddy copies
// they received, and the L3 parity replicas they computed; the
// supervisor consults RecoveryPlan after a failure to decide whether
// the dead set is repairable from memory or must escalate to the disk
// path. Two generations are double-buffered so a failure mid-capture
// still finds the previous complete generation.
//
// All methods are safe for concurrent use by rank goroutines; the
// returned recovery snapshots are read only after the world has been
// torn down (no rank goroutine is running).
type Store struct {
	mu        sync.Mutex
	ranks     int
	groupSize int
	blocks    []decomp.Block

	// Two double-buffered generations; cur receives deposits for the
	// newest step.
	gen [2]generation
	cur int

	bytes    [4]int64 // cumulative deposited bytes per level (L1..L4)
	deposits [4]int64
}

// generation is one snapshot wave at a single step boundary.
type generation struct {
	step   int               // -1 = empty
	own    map[int]*Snapshot // L1: rank → its own snapshot
	buddy  map[int]*Snapshot // L2: holder rank → copy of ring-prev's snapshot
	parity map[int]*Snapshot // L3: holder rank → group parity replica
}

// NewStore builds a store for a world of the given size, parity-group
// size and decomposition table (blocks[r] is rank r's subdomain).
func NewStore(ranks, groupSize int, blocks []decomp.Block) (*Store, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("resil: store needs ≥ 1 rank, got %d", ranks)
	}
	if groupSize < 1 {
		return nil, fmt.Errorf("resil: group size %d < 1", groupSize)
	}
	if len(blocks) != ranks {
		return nil, fmt.Errorf("resil: %d blocks for %d ranks", len(blocks), ranks)
	}
	st := &Store{ranks: ranks, groupSize: groupSize, blocks: blocks}
	for i := range st.gen {
		st.gen[i] = generation{
			step:   -1,
			own:    make(map[int]*Snapshot),
			buddy:  make(map[int]*Snapshot),
			parity: make(map[int]*Snapshot),
		}
	}
	return st, nil
}

// Ranks returns the world size the store was built for.
func (st *Store) Ranks() int { return st.ranks }

// GroupSize returns the parity-group size.
func (st *Store) GroupSize() int { return st.groupSize }

// Group returns the rank interval [lo, hi) of the parity group
// containing rank r.
func (st *Store) Group(r int) (lo, hi int) {
	lo = (r / st.groupSize) * st.groupSize
	hi = lo + st.groupSize
	if hi > st.ranks {
		hi = st.ranks
	}
	return lo, hi
}

// GroupOf returns the parity-group index of rank r.
func (st *Store) GroupOf(r int) int { return r / st.groupSize }

// Buddy returns the ring-next member of r's group — the rank that holds
// r's L2 copy. Returns r itself for a singleton group (no buddy).
func (st *Store) Buddy(r int) int {
	lo, hi := st.Group(r)
	if hi-lo < 2 {
		return r
	}
	n := hi - lo
	return lo + (r-lo+1)%n
}

// BuddySource returns the rank whose L2 copy rank r holds (ring-prev).
func (st *Store) BuddySource(r int) int {
	lo, hi := st.Group(r)
	if hi-lo < 2 {
		return r
	}
	n := hi - lo
	return lo + (r-lo+n-1)%n
}

// genFor returns the generation receiving deposits for step, flipping
// the double buffer when a new step arrives. Callers hold st.mu.
func (st *Store) genFor(step int) *generation {
	if st.gen[st.cur].step == step {
		return &st.gen[st.cur]
	}
	if st.gen[1-st.cur].step == step {
		return &st.gen[1-st.cur]
	}
	// A new step: overwrite the older buffer.
	if st.gen[1-st.cur].step < st.gen[st.cur].step {
		st.cur = 1 - st.cur
	}
	st.gen[st.cur].step = step
	return &st.gen[st.cur]
}

// slot returns (lazily creating) the reusable snapshot slot of a rank
// in one of a generation's maps. Callers hold st.mu.
func slot(m map[int]*Snapshot, rank int) *Snapshot {
	s, ok := m[rank]
	if !ok {
		s = &Snapshot{}
		m[rank] = s
	}
	return s
}

// DepositOwn records rank's L1 snapshot (copied into the store's
// double-buffered slot, so the caller may keep reusing s).
func (st *Store) DepositOwn(s *Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	g := st.genFor(s.Step)
	copyInto(slot(g.own, s.Rank), s)
	st.bytes[0] += s.PayloadBytes()
	st.deposits[0]++
}

// DepositBuddy records the L2 copy of s held by holder.
func (st *Store) DepositBuddy(holder int, s *Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	g := st.genFor(s.Step)
	copyInto(slot(g.buddy, holder), s)
	st.bytes[1] += s.PayloadBytes()
	st.deposits[1]++
}

// DepositParity records the L3 parity replica computed by holder.
func (st *Store) DepositParity(holder int, p *Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	g := st.genFor(p.Step)
	copyInto(slot(g.parity, holder), p)
	st.bytes[2] += p.PayloadBytes()
	st.deposits[2]++
}

// AccountDisk adds an L4 (disk) checkpoint write to the byte ledger.
func (st *Store) AccountDisk(n int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.bytes[3] += n
	st.deposits[3]++
}

// Bytes returns the cumulative deposited bytes per level (L1..L4).
func (st *Store) Bytes() [4]int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bytes
}

// Invalidate wipes every entry held by the given ranks — called after a
// hot swap, when the dead ranks' memory (their own L1, the buddy copies
// and parity replicas they stored) is gone for good.
func (st *Store) Invalidate(ranks []int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, r := range ranks {
		for i := range st.gen {
			delete(st.gen[i].own, r)
			delete(st.gen[i].buddy, r)
			delete(st.gen[i].parity, r)
		}
	}
}

// Reseed deposits a completed recovery as a fresh L1 generation: the
// restore distributed rec.Blocks into every rank's memory, which is
// exactly a new snapshot wave at rec.Step. Buddy and parity coverage
// rebuilds at the next capture (the post-swap vulnerability window).
func (st *Store) Reseed(rec *Recovery) {
	for _, s := range rec.Blocks {
		st.DepositOwn(s)
	}
}

// Recovery is a memory-only repair plan: a consistent set of block
// snapshots at one step for every rank of the world.
type Recovery struct {
	// Step is the snapshot generation every block belongs to.
	Step int
	// Blocks maps every rank to its block state: survivors from their
	// own L1, dead ranks from a buddy copy or a parity reconstruction.
	Blocks map[int]*Snapshot
	// BuddyRestores counts dead blocks recovered from an L2 copy.
	BuddyRestores int
	// Reconstructions counts dead blocks rebuilt from L3 parity.
	Reconstructions int
}

// RecoveryPlan decides whether the dead set is repairable purely from
// memory. It walks the two generations newest-first; for each it needs
// a valid own snapshot from every survivor, and for every dead rank
// either a valid buddy copy on a surviving holder (L2) or a parity
// equation with exactly one remaining unknown (L3) — L2-recovered
// blocks feed back into the parity equations, so a buddy chain inside
// one group resolves as far as the algebra allows. Returns (nil,
// false) when no generation can repair the loss (multi-loss in one
// group with no surviving copies, torn capture, checksum failures):
// the caller escalates to L4.
func (st *Store) RecoveryPlan(dead []int) (*Recovery, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	isDead := make(map[int]bool, len(dead))
	for _, d := range dead {
		if d < 0 || d >= st.ranks {
			return nil, false
		}
		isDead[d] = true
	}
	// Try generations newest-first.
	order := []int{st.cur, 1 - st.cur}
	if st.gen[1-st.cur].step > st.gen[st.cur].step {
		order = []int{1 - st.cur, st.cur}
	}
	for _, gi := range order {
		g := &st.gen[gi]
		if g.step < 0 {
			continue
		}
		if rec, ok := st.planFromGen(g, isDead); ok {
			return rec, true
		}
	}
	return nil, false
}

// LatestWave returns a consistent recovery plan built from the newest
// complete snapshot generation with every rank alive — the graceful-drain
// path's source of truth: a canceled run's supervisor assembles this wave
// and persists it as an L4 checkpoint so the job can resume where it
// stopped. It is RecoveryPlan with an empty dead set; ok is false when no
// generation is complete and verified.
func (st *Store) LatestWave() (*Recovery, bool) {
	return st.RecoveryPlan(nil)
}

// planFromGen attempts a repair from one generation. Callers hold st.mu.
func (st *Store) planFromGen(g *generation, isDead map[int]bool) (*Recovery, bool) {
	step := g.step
	blocks := make(map[int]*Snapshot, st.ranks)
	// Survivors with a valid own snapshot anchor the plan; a survivor
	// whose own copy is missing or stale (a torn capture, or memory
	// invalidated after a swap) becomes one more unknown for the buddy
	// and parity passes to solve — its holders are still alive.
	unresolved := make([]int, 0, st.ranks)
	for r := 0; r < st.ranks; r++ {
		if isDead[r] {
			unresolved = append(unresolved, r)
			continue
		}
		s, ok := g.own[r]
		if !ok || s.Step != step || !s.Verify() {
			unresolved = append(unresolved, r)
			continue
		}
		blocks[r] = s
	}
	rec := &Recovery{Step: step, Blocks: blocks}
	// Pass 1: buddy copies. The holder of d's copy is Buddy(d); it must
	// be alive and its copy must be d's state at this step.
	sort.Ints(unresolved)
	remaining := unresolved[:0]
	for _, d := range unresolved {
		h := st.Buddy(d)
		if h != d && !isDead[h] {
			if c, ok := g.buddy[h]; ok && c.Rank == d && c.Step == step && c.Verify() {
				blocks[d] = c
				rec.BuddyRestores++
				continue
			}
		}
		remaining = append(remaining, d)
	}
	// Pass 2: parity, iterated to let each reconstruction unlock the
	// next (at most one unknown per group per pass).
	for len(remaining) > 0 {
		progress := false
		next := remaining[:0]
		for _, d := range remaining {
			if st.reconstructLocked(g, blocks, isDead, d, step, rec) {
				progress = true
			} else {
				next = append(next, d)
			}
		}
		remaining = next
		if !progress {
			return nil, false
		}
	}
	return rec, true
}

// reconstructLocked tries to rebuild dead rank d's block from a parity
// replica plus every other member's known block. Callers hold st.mu.
func (st *Store) reconstructLocked(g *generation, blocks map[int]*Snapshot,
	isDead map[int]bool, d, step int, rec *Recovery) bool {
	lo, hi := st.Group(d)
	// Every other member's block must already be known.
	survivors := make([]*Snapshot, 0, hi-lo-1)
	for r := lo; r < hi; r++ {
		if r == d {
			continue
		}
		s, ok := blocks[r]
		if !ok {
			return false // another unknown in the group
		}
		survivors = append(survivors, s)
	}
	// Any live member's parity replica will do.
	for r := lo; r < hi; r++ {
		if r == d || isDead[r] {
			continue
		}
		p, ok := g.parity[r]
		if !ok || p.Step != step || !p.Verify() {
			continue
		}
		out := &Snapshot{}
		if err := Reconstruct(out, p, survivors, d, st.blocks[d], st.blockQ(survivors), step); err != nil {
			continue
		}
		blocks[d] = out
		rec.Reconstructions++
		return true
	}
	return false
}

// blockQ infers the descriptor population count from any survivor.
func (st *Store) blockQ(survivors []*Snapshot) int {
	for _, s := range survivors {
		if s.Q > 0 {
			return s.Q
		}
	}
	return 0
}
