// Package resil is the multi-level in-memory checkpoint hierarchy that
// turns single-rank loss from a full rollback into a local repair. The
// flat disk-checkpoint model of the §IV-B controller (psolve's PR-1
// supervisor) is the wrong recovery path for the common failure at the
// paper's 160 000-process scale: one dead rank should cost the fleet at
// most the steps since the last in-memory snapshot, not a global
// teardown plus a disk restore. Following exascale LBM practice (Holzer
// et al.) and the buddy/parity checkpointing used by production
// training stacks, resil layers four levels:
//
//	L1  per-rank in-memory snapshot of the rank's own subdomain
//	    (survives everything except the rank's own death)
//	L2  buddy copy: the snapshot is pushed to the ring-next partner
//	    inside the rank's parity group over internal/mpi (survives the
//	    owner's death as long as the buddy lives)
//	L3  XOR parity: every member of a parity group holds the bitwise
//	    XOR of the whole group's snapshots, so any single loss per
//	    group is reconstructible from the survivors (RAID-5 style,
//	    with the parity replicated instead of rotated — in simulation
//	    the memory is cheap and it removes the "parity holder died"
//	    special case)
//	L4  the CRC-verified swio disk checkpoint — the last resort,
//	    owned by the supervisor, not by this package
//
// The Store is the supervisor-side ledger of who holds what: it is
// "each rank's local memory" in the simulated machine, so when a rank
// dies every entry that rank held (its own L1, the buddy copies it
// stored for its partner, its parity replica) becomes unavailable.
// RecoveryPlan walks the generations newest-first and decides whether
// the dead set is repairable purely from memory — L2 first, then L3,
// resolving buddy chains and cross-feeding L2-recovered blocks into the
// parity equations — or whether the failure must escalate to L4.
//
// Every snapshot carries an FNV-1a checksum so a bit-flipped buddy push
// (the fault injector corrupts user-tag messages) is detected at use
// time and falls through to the next level instead of silently
// restoring garbage.
package resil

import (
	"fmt"
	"strings"
)

// Levels is a bitmask of enabled checkpoint levels.
type Levels uint8

// The four checkpoint levels, ordered cheapest-first.
const (
	// L1 keeps a per-rank snapshot in the rank's own memory.
	L1 Levels = 1 << iota
	// L2 pushes a copy of the snapshot to the ring-next buddy rank.
	L2
	// L3 replicates the parity-group XOR on every group member.
	L3
	// L4 is the supervisor's CRC-verified disk checkpoint path.
	L4
)

// Memory reports whether any in-memory level (L1–L3) is enabled.
func (l Levels) Memory() bool { return l&(L1|L2|L3) != 0 }

// Has reports whether every level in q is enabled.
func (l Levels) Has(q Levels) bool { return l&q == q }

// String renders the mask in the "1234" CLI form.
func (l Levels) String() string {
	var b strings.Builder
	for i, lv := range []Levels{L1, L2, L3, L4} {
		if l&lv != 0 {
			fmt.Fprintf(&b, "%d", i+1)
		}
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// ParseLevels decodes the "1234"-style level mask of the -ckpt-levels
// flag: each digit enables one level, order and repetition are
// irrelevant. The empty string parses to 0 (caller applies defaults).
func ParseLevels(s string) (Levels, error) {
	var l Levels
	for _, r := range strings.TrimSpace(s) {
		switch r {
		case '1':
			l |= L1
		case '2':
			l |= L2
		case '3':
			l |= L3
		case '4':
			l |= L4
		default:
			return 0, fmt.Errorf("resil: bad level %q in %q (want digits 1-4)", string(r), s)
		}
	}
	return l, nil
}
