package swio

import (
	"bytes"
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

// FuzzReadCheckpoint: arbitrary bytes must never panic or allocate
// unboundedly — the reader either reconstructs a lattice or errors.
func FuzzReadCheckpoint(f *testing.F) {
	l, err := core.NewLattice(&lattice.D3Q19, 3, 3, 3, 0.8)
	if err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if err := WriteCheckpoint(&good, l); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:40])
	f.Add([]byte{})
	corrupt := append([]byte(nil), good.Bytes()...)
	corrupt[10] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		lat, err := ReadCheckpointLimit(bytes.NewReader(data), int64(len(data))+1024)
		if err == nil && lat != nil {
			if lat.NX < 1 || lat.NY < 1 || lat.NZ < 1 {
				t.Fatalf("accepted invalid dimensions %d×%d×%d", lat.NX, lat.NY, lat.NZ)
			}
		}
	})
}
