package swio

import (
	"bytes"
	"errors"
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

// FuzzReadCheckpoint: arbitrary bytes must never panic or allocate
// unboundedly — the reader either reconstructs a lattice or errors.
func FuzzReadCheckpoint(f *testing.F) {
	l, err := core.NewLattice(&lattice.D3Q19, 3, 3, 3, 0.8)
	if err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if err := WriteCheckpoint(&good, l); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:40])
	f.Add([]byte{})
	corrupt := append([]byte(nil), good.Bytes()...)
	corrupt[10] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		lat, err := ReadCheckpointLimit(bytes.NewReader(data), int64(len(data))+1024)
		if err == nil && lat != nil {
			if lat.NX < 1 || lat.NY < 1 || lat.NZ < 1 {
				t.Fatalf("accepted invalid dimensions %d×%d×%d", lat.NX, lat.NY, lat.NZ)
			}
		}
	})
}

// FuzzCheckpointMutation: every effective single-byte corruption or
// truncation of a well-formed checkpoint must be rejected with
// ErrCorrupt — never a panic, never a silently restored lattice. Every
// byte of the V2 format is either covered by a record CRC or is part of
// one, so there is no offset where a flip can hide.
func FuzzCheckpointMutation(f *testing.F) {
	l, err := core.NewLattice(&lattice.D3Q19, 4, 3, 5, 0.77)
	if err != nil {
		f.Fatal(err)
	}
	l.SetWall(1, 1, 2)
	l.SetStep(12)
	var good bytes.Buffer
	if err := WriteCheckpoint(&good, l); err != nil {
		f.Fatal(err)
	}
	golden := good.Bytes()

	f.Add(uint(0), byte(0x01), uint(len(golden)))             // flip magic
	f.Add(uint(8), byte(0x80), uint(len(golden)))             // flip a header dim
	f.Add(uint(88), byte(0x01), uint(len(golden)))            // flip the header CRC
	f.Add(uint(200), byte(0x40), uint(len(golden)))           // flip a flag byte
	f.Add(uint(len(golden)-1), byte(0xff), uint(len(golden))) // flip the last CRC byte
	f.Add(uint(0), byte(0), uint(40))                         // truncate mid-header
	f.Add(uint(0), byte(0), uint(len(golden)-4))              // drop the trailing CRC

	f.Fuzz(func(t *testing.T, pos uint, mask byte, keep uint) {
		data := append([]byte(nil), golden...)
		mutated := false
		if int(pos) >= 0 && int(pos) < len(data) && mask != 0 {
			data[pos] ^= mask
			mutated = true
		}
		if int(keep) >= 0 && int(keep) < len(data) {
			data = data[:keep]
			mutated = true
		}
		lat, err := ReadCheckpointLimit(bytes.NewReader(data), int64(len(golden))+1024)
		if !mutated {
			if err != nil {
				t.Fatalf("unmutated checkpoint rejected: %v", err)
			}
			return
		}
		if err == nil {
			t.Fatalf("mutation (pos=%d mask=%#x keep=%d) silently accepted (lat=%v)", pos, mask, keep, lat != nil)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mutation error %v does not wrap ErrCorrupt", err)
		}
	})
}
