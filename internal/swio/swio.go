// Package swio is SunwayLB's I/O layer (§IV-B): checkpoint/restart with
// integrity validation ("a checkpoint and restart controller which enables
// fast recover from system-level or hardware fault") and group I/O, where
// ranks are organised into groups whose leaders aggregate and write data
// (the pattern used on the real machine to avoid overwhelming the global
// file system with 160000 writers).
package swio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

// checkpointMagic identifies SunwayLB checkpoint files.
const checkpointMagic = 0x53574c42_43504b31 // "SWLB" "CPK1"

var crcTable = crc64.MakeTable(crc64.ECMA)

// WriteCheckpoint serialises the full solver state — dimensions, step
// count, relaxation parameters, cell flags and the current populations —
// with a trailing CRC64 for fault detection.
func WriteCheckpoint(w io.Writer, l *core.Lattice) error {
	bw := bufio.NewWriter(w)
	crc := crc64.New(crcTable)
	mw := io.MultiWriter(bw, crc)

	head := []uint64{
		checkpointMagic,
		uint64(l.NX), uint64(l.NY), uint64(l.NZ),
		uint64(l.Desc.Q),
		uint64(l.Step()),
		math.Float64bits(l.Tau),
		math.Float64bits(l.Smagorinsky),
		math.Float64bits(l.Force[0]),
		math.Float64bits(l.Force[1]),
		math.Float64bits(l.Force[2]),
	}
	for _, v := range head {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("swio: writing checkpoint header: %w", err)
		}
	}
	// Flags for the full allocated extent (halo walls matter for
	// restart).
	flags := make([]byte, l.N)
	for i, f := range l.Flags {
		flags[i] = byte(f)
	}
	if _, err := mw.Write(flags); err != nil {
		return fmt.Errorf("swio: writing checkpoint flags: %w", err)
	}
	// Populations of the current buffer.
	src := l.Src()
	buf := make([]byte, 8)
	for _, v := range src {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := mw.Write(buf); err != nil {
			return fmt.Errorf("swio: writing checkpoint populations: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum64()); err != nil {
		return fmt.Errorf("swio: writing checkpoint CRC: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("swio: flushing checkpoint: %w", err)
	}
	return nil
}

// DefaultCheckpointLimit bounds how much memory ReadCheckpoint will
// allocate based on a checkpoint header before the CRC has been verified:
// a corrupted dimension field must fail cleanly instead of exhausting
// memory (found by FuzzReadCheckpoint). Restart passes the actual file
// size instead, which is exact.
const DefaultCheckpointLimit = 4 << 30

// ReadCheckpoint reconstructs a lattice from a checkpoint, validating the
// magic number and CRC. The returned lattice resumes at the recorded step
// count.
func ReadCheckpoint(r io.Reader) (*core.Lattice, error) {
	return ReadCheckpointLimit(r, DefaultCheckpointLimit)
}

// ReadCheckpointLimit is ReadCheckpoint with an explicit upper bound on
// the serialized size the header may claim.
func ReadCheckpointLimit(r io.Reader, maxBytes int64) (*core.Lattice, error) {
	br := bufio.NewReader(r)
	crc := crc64.New(crcTable)
	tr := io.TeeReader(br, crc)

	head := make([]uint64, 11)
	for i := range head {
		if err := binary.Read(tr, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("swio: reading checkpoint header: %w", err)
		}
	}
	if head[0] != checkpointMagic {
		return nil, fmt.Errorf("swio: bad checkpoint magic %#x", head[0])
	}
	nx, ny, nz, q := int(head[1]), int(head[2]), int(head[3]), int(head[4])
	if q != lattice.D3Q19.Q {
		return nil, fmt.Errorf("swio: checkpoint uses Q=%d, only D3Q19 supported", q)
	}
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("swio: checkpoint claims invalid dimensions %d×%d×%d", nx, ny, nz)
	}
	// Size sanity before allocating: header + flags + populations + CRC.
	alloc := int64(nx+2) * int64(ny+2) * int64(nz+2)
	need := 11*8 + alloc + alloc*int64(q)*8 + 8 // header + flags + populations + CRC
	if alloc <= 0 || need <= 0 || need > maxBytes {
		return nil, fmt.Errorf("swio: checkpoint claims %d×%d×%d (%d bytes), above the %d-byte limit (corrupt header?)",
			nx, ny, nz, need, maxBytes)
	}
	tau := math.Float64frombits(head[6])
	l, err := core.NewLattice(&lattice.D3Q19, nx, ny, nz, tau)
	if err != nil {
		return nil, fmt.Errorf("swio: rebuilding lattice: %w", err)
	}
	l.Smagorinsky = math.Float64frombits(head[7])
	l.Force = [3]float64{
		math.Float64frombits(head[8]),
		math.Float64frombits(head[9]),
		math.Float64frombits(head[10]),
	}
	flags := make([]byte, l.N)
	if _, err := io.ReadFull(tr, flags); err != nil {
		return nil, fmt.Errorf("swio: reading checkpoint flags: %w", err)
	}
	for i, f := range flags {
		l.Flags[i] = core.CellType(f)
	}
	src := l.Src()
	buf := make([]byte, 8)
	for i := range src {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return nil, fmt.Errorf("swio: reading checkpoint populations: %w", err)
		}
		src[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	sum := crc.Sum64()
	var stored uint64
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("swio: reading checkpoint CRC: %w", err)
	}
	if stored != sum {
		return nil, fmt.Errorf("swio: checkpoint CRC mismatch: stored %#x computed %#x (corrupt file)", stored, sum)
	}
	l.SetStep(int(head[5]))
	return l, nil
}

// Checkpoint writes the lattice to path atomically (via a temp file +
// rename), so a crash mid-write never corrupts the previous checkpoint.
func Checkpoint(path string, l *core.Lattice) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("swio: creating checkpoint: %w", err)
	}
	if err := WriteCheckpoint(f, l); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("swio: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("swio: publishing checkpoint: %w", err)
	}
	return nil
}

// Restart loads a checkpoint from path, bounding allocations by the
// actual file size so header corruption cannot exhaust memory.
func Restart(path string) (*core.Lattice, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("swio: opening checkpoint: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("swio: checkpoint stat: %w", err)
	}
	return ReadCheckpointLimit(f, st.Size())
}

// GroupPlan organises ranks into I/O groups: each group's leader gathers
// its members' data and performs the file-system access, bounding the
// number of concurrent writers (the "group I/O" option of §IV-B).
type GroupPlan struct {
	Ranks     int
	GroupSize int
}

// NewGroupPlan validates and builds a plan.
func NewGroupPlan(ranks, groupSize int) (GroupPlan, error) {
	if ranks < 1 || groupSize < 1 {
		return GroupPlan{}, fmt.Errorf("swio: invalid group plan %d/%d", ranks, groupSize)
	}
	return GroupPlan{Ranks: ranks, GroupSize: groupSize}, nil
}

// Leader returns the leader rank of the given rank's group.
func (g GroupPlan) Leader(rank int) int { return rank - rank%g.GroupSize }

// IsLeader reports whether the rank performs file-system access.
func (g GroupPlan) IsLeader(rank int) bool { return rank%g.GroupSize == 0 }

// Groups returns the number of groups (= concurrent writers).
func (g GroupPlan) Groups() int { return (g.Ranks + g.GroupSize - 1) / g.GroupSize }

// Members lists the ranks in the group led by leader.
func (g GroupPlan) Members(leader int) []int {
	var out []int
	for r := leader; r < leader+g.GroupSize && r < g.Ranks; r++ {
		out = append(out, r)
	}
	return out
}
