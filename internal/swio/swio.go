// Package swio is SunwayLB's I/O layer (§IV-B): checkpoint/restart with
// integrity validation ("a checkpoint and restart controller which enables
// fast recover from system-level or hardware fault") and group I/O, where
// ranks are organised into groups whose leaders aggregate and write data
// (the pattern used on the real machine to avoid overwhelming the global
// file system with 160000 writers).
//
// Checkpoints are written in a record-checksummed format (one CRC32-C per
// header/flags/populations record) so corruption is detected before the
// corrupted record is interpreted, published atomically (temp file +
// rename) and re-readable with allocation bombs rejected. Every
// corruption failure wraps ErrCorrupt, which is what the self-healing
// supervisor in internal/psolve keys its rollback on.
package swio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"hash/crc64"
	"io"
	"math"
	"os"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

// Checkpoint magics: "SWLB" + version tag. V1 used one trailing CRC64
// over the whole file; V2 checksums each record (header, flags,
// populations) separately with CRC32-C, so a flipped bit is caught before
// the record it lives in is interpreted. The reader accepts both.
const (
	checkpointMagicV1 = 0x53574c42_43504b31 // "SWLB" "CPK1"
	checkpointMagicV2 = 0x53574c42_43504b32 // "SWLB" "CPK2"
)

// ErrCorrupt marks a checkpoint that failed integrity validation (bad
// magic, truncation, or a CRC mismatch). Test with errors.Is.
var ErrCorrupt = errors.New("checkpoint corrupt")

var crcTable = crc64.MakeTable(crc64.ECMA)

// crc32c is the Castagnoli polynomial (hardware-accelerated on most CPUs).
var crc32c = crc32.MakeTable(crc32.Castagnoli)

// corruptf builds an ErrCorrupt-wrapping error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("swio: %s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// WriteCheckpoint serialises the full solver state — dimensions, step
// count, relaxation parameters, cell flags and the current populations —
// in the V2 record-checksummed format.
func WriteCheckpoint(w io.Writer, l *core.Lattice) error {
	bw := bufio.NewWriter(w)

	// Header record: magic + 10 parameter words + CRC32-C.
	crc := crc32.New(crc32c)
	mw := io.MultiWriter(bw, crc)
	head := []uint64{
		checkpointMagicV2,
		uint64(l.NX), uint64(l.NY), uint64(l.NZ),
		uint64(l.Desc.Q),
		uint64(l.Step()),
		math.Float64bits(l.Tau),
		math.Float64bits(l.Smagorinsky),
		math.Float64bits(l.Force[0]),
		math.Float64bits(l.Force[1]),
		math.Float64bits(l.Force[2]),
	}
	for _, v := range head {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("swio: writing checkpoint header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("swio: writing checkpoint header CRC: %w", err)
	}

	// Flags record: the full allocated extent (halo walls matter for
	// restart) + CRC32-C.
	crc.Reset()
	mw = io.MultiWriter(bw, crc)
	flags := make([]byte, l.N)
	for i, f := range l.Flags {
		flags[i] = byte(f)
	}
	if _, err := mw.Write(flags); err != nil {
		return fmt.Errorf("swio: writing checkpoint flags: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("swio: writing checkpoint flags CRC: %w", err)
	}

	// Populations record: the current buffer + CRC32-C.
	crc.Reset()
	mw = io.MultiWriter(bw, crc)
	buf := make([]byte, 8)
	for _, v := range l.Src() {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := mw.Write(buf); err != nil {
			return fmt.Errorf("swio: writing checkpoint populations: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("swio: writing checkpoint populations CRC: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("swio: flushing checkpoint: %w", err)
	}
	return nil
}

// DefaultCheckpointLimit bounds how much memory ReadCheckpoint will
// allocate based on a checkpoint header before the CRC has been verified:
// a corrupted dimension field must fail cleanly instead of exhausting
// memory (found by FuzzReadCheckpoint). Restart passes the actual file
// size instead, which is exact.
const DefaultCheckpointLimit = 4 << 30

// ReadCheckpoint reconstructs a lattice from a checkpoint, validating the
// magic number and record checksums. The returned lattice resumes at the
// recorded step count. Corruption of any kind yields an error wrapping
// ErrCorrupt — never a panic, never a silently wrong lattice.
func ReadCheckpoint(r io.Reader) (*core.Lattice, error) {
	return ReadCheckpointLimit(r, DefaultCheckpointLimit)
}

// ReadCheckpointLimit is ReadCheckpoint with an explicit upper bound on
// the serialized size the header may claim. It accepts both the V1
// (whole-file CRC64) and V2 (per-record CRC32-C) formats.
func ReadCheckpointLimit(r io.Reader, maxBytes int64) (*core.Lattice, error) {
	br := bufio.NewReader(r)
	var magic uint64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, corruptf("reading checkpoint magic: %v", err)
	}
	switch magic {
	case checkpointMagicV1:
		return readV1(br, maxBytes)
	case checkpointMagicV2:
		return readV2(br, maxBytes)
	}
	return nil, corruptf("bad checkpoint magic %#x", magic)
}

// checkDims validates header-claimed dimensions against the size budget
// before anything is allocated. extra is the per-format framing overhead.
func checkDims(nx, ny, nz, q int, maxBytes, extra int64) error {
	if q != lattice.D3Q19.Q {
		return corruptf("checkpoint uses Q=%d, only D3Q19 supported", q)
	}
	if nx < 1 || ny < 1 || nz < 1 {
		return corruptf("checkpoint claims invalid dimensions %d×%d×%d", nx, ny, nz)
	}
	alloc := int64(nx+2) * int64(ny+2) * int64(nz+2)
	need := extra + alloc + alloc*int64(q)*8
	if alloc <= 0 || need <= 0 || need > maxBytes {
		return corruptf("checkpoint claims %d×%d×%d (%d bytes), above the %d-byte limit (corrupt header?)",
			nx, ny, nz, need, maxBytes)
	}
	return nil
}

// buildLattice materialises a lattice from decoded header words
// (indexed as in the on-disk layout, magic excluded).
func buildLattice(head []uint64) (*core.Lattice, error) {
	nx, ny, nz := int(head[0]), int(head[1]), int(head[2])
	tau := math.Float64frombits(head[5])
	l, err := core.NewLattice(&lattice.D3Q19, nx, ny, nz, tau)
	if err != nil {
		return nil, fmt.Errorf("swio: rebuilding lattice: %w", err)
	}
	l.Smagorinsky = math.Float64frombits(head[6])
	l.Force = [3]float64{
		math.Float64frombits(head[7]),
		math.Float64frombits(head[8]),
		math.Float64frombits(head[9]),
	}
	return l, nil
}

// readV1 decodes the legacy whole-file-CRC64 format (magic already
// consumed; it is re-fed into the checksum here).
func readV1(br *bufio.Reader, maxBytes int64) (*core.Lattice, error) {
	crc := crc64.New(crcTable)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], checkpointMagicV1)
	crc.Write(b8[:])
	tr := io.TeeReader(br, crc)

	head := make([]uint64, 10)
	for i := range head {
		if err := binary.Read(tr, binary.LittleEndian, &head[i]); err != nil {
			return nil, corruptf("reading checkpoint header: %v", err)
		}
	}
	nx, ny, nz, q := int(head[0]), int(head[1]), int(head[2]), int(head[3])
	if err := checkDims(nx, ny, nz, q, maxBytes, 11*8+8); err != nil {
		return nil, err
	}
	l, err := buildLattice(head)
	if err != nil {
		return nil, err
	}
	flags := make([]byte, l.N)
	if _, err := io.ReadFull(tr, flags); err != nil {
		return nil, corruptf("reading checkpoint flags: %v", err)
	}
	for i, f := range flags {
		l.Flags[i] = core.CellType(f)
	}
	src := l.Src()
	buf := make([]byte, 8)
	for i := range src {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return nil, corruptf("reading checkpoint populations: %v", err)
		}
		src[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	sum := crc.Sum64()
	var stored uint64
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, corruptf("reading checkpoint CRC: %v", err)
	}
	if stored != sum {
		return nil, corruptf("checkpoint CRC mismatch: stored %#x computed %#x (corrupt file)", stored, sum)
	}
	l.SetStep(int(head[4]))
	return l, nil
}

// readRecordCRC verifies one record's trailing CRC32-C.
func readRecordCRC(br *bufio.Reader, crc hash.Hash32, record string) error {
	var stored uint32
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return corruptf("reading checkpoint %s CRC: %v", record, err)
	}
	if stored != crc.Sum32() {
		return corruptf("checkpoint %s CRC mismatch: stored %#x computed %#x", record, stored, crc.Sum32())
	}
	return nil
}

// readV2 decodes the record-checksummed format. The header CRC is
// verified before the dimensions it claims are used to allocate, so a
// flipped header bit can never trigger a bogus allocation.
func readV2(br *bufio.Reader, maxBytes int64) (*core.Lattice, error) {
	crc := crc32.New(crc32c)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], checkpointMagicV2)
	crc.Write(b8[:])
	tr := io.TeeReader(br, crc)

	head := make([]uint64, 10)
	for i := range head {
		if err := binary.Read(tr, binary.LittleEndian, &head[i]); err != nil {
			return nil, corruptf("reading checkpoint header: %v", err)
		}
	}
	if err := readRecordCRC(br, crc, "header"); err != nil {
		return nil, err
	}
	nx, ny, nz, q := int(head[0]), int(head[1]), int(head[2]), int(head[3])
	if err := checkDims(nx, ny, nz, q, maxBytes, 11*8+3*4); err != nil {
		return nil, err
	}
	l, err := buildLattice(head)
	if err != nil {
		return nil, err
	}

	crc.Reset()
	tr = io.TeeReader(br, crc)
	flags := make([]byte, l.N)
	if _, err := io.ReadFull(tr, flags); err != nil {
		return nil, corruptf("reading checkpoint flags: %v", err)
	}
	if err := readRecordCRC(br, crc, "flags"); err != nil {
		return nil, err
	}
	for i, f := range flags {
		l.Flags[i] = core.CellType(f)
	}

	crc.Reset()
	tr = io.TeeReader(br, crc)
	src := l.Src()
	buf := make([]byte, 8)
	for i := range src {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return nil, corruptf("reading checkpoint populations: %v", err)
		}
		src[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	if err := readRecordCRC(br, crc, "populations"); err != nil {
		return nil, err
	}
	l.SetStep(int(head[4]))
	return l, nil
}

// Checkpoint writes the lattice to path atomically (via a temp file +
// rename), so a crash mid-write never corrupts the previous checkpoint.
func Checkpoint(path string, l *core.Lattice) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("swio: creating checkpoint: %w", err)
	}
	if err := WriteCheckpoint(f, l); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("swio: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("swio: publishing checkpoint: %w", err)
	}
	return nil
}

// Restart loads a checkpoint from path, bounding allocations by the
// actual file size so header corruption cannot exhaust memory.
func Restart(path string) (*core.Lattice, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("swio: opening checkpoint: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("swio: checkpoint stat: %w", err)
	}
	return ReadCheckpointLimit(f, st.Size())
}

// GroupPlan organises ranks into I/O groups: each group's leader gathers
// its members' data and performs the file-system access, bounding the
// number of concurrent writers (the "group I/O" option of §IV-B).
type GroupPlan struct {
	Ranks     int
	GroupSize int
}

// NewGroupPlan validates and builds a plan.
func NewGroupPlan(ranks, groupSize int) (GroupPlan, error) {
	if ranks < 1 || groupSize < 1 {
		return GroupPlan{}, fmt.Errorf("swio: invalid group plan %d/%d", ranks, groupSize)
	}
	return GroupPlan{Ranks: ranks, GroupSize: groupSize}, nil
}

// Leader returns the leader rank of the given rank's group.
func (g GroupPlan) Leader(rank int) int { return rank - rank%g.GroupSize }

// IsLeader reports whether the rank performs file-system access.
func (g GroupPlan) IsLeader(rank int) bool { return rank%g.GroupSize == 0 }

// Groups returns the number of groups (= concurrent writers).
func (g GroupPlan) Groups() int { return (g.Ranks + g.GroupSize - 1) / g.GroupSize }

// Members lists the ranks in the group led by leader.
func (g GroupPlan) Members(leader int) []int {
	var out []int
	for r := leader; r < leader+g.GroupSize && r < g.Ranks; r++ {
		out = append(out, r)
	}
	return out
}
