package swio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"math"
	"testing"

	"sunwaylb/internal/core"
)

// writeV1 serialises a lattice in the legacy V1 layout (whole-file
// CRC64-ECMA trailer) so the upgraded reader can be tested against
// checkpoints written before the record-checksummed V2 format existed.
func writeV1(t *testing.T, l *core.Lattice) []byte {
	t.Helper()
	var body bytes.Buffer
	head := []uint64{
		checkpointMagicV1,
		uint64(l.NX), uint64(l.NY), uint64(l.NZ),
		uint64(l.Desc.Q),
		uint64(l.Step()),
		math.Float64bits(l.Tau),
		math.Float64bits(l.Smagorinsky),
		math.Float64bits(l.Force[0]),
		math.Float64bits(l.Force[1]),
		math.Float64bits(l.Force[2]),
	}
	for _, v := range head {
		binary.Write(&body, binary.LittleEndian, v)
	}
	for _, f := range l.Flags {
		body.WriteByte(byte(f))
	}
	for _, v := range l.Src() {
		binary.Write(&body, binary.LittleEndian, math.Float64bits(v))
	}
	sum := crc64.Checksum(body.Bytes(), crcTable)
	binary.Write(&body, binary.LittleEndian, sum)
	return body.Bytes()
}

// TestReadV1Compat: a legacy V1 checkpoint restores bit-identically
// through the upgraded reader (old checkpoint files stay usable).
func TestReadV1Compat(t *testing.T) {
	orig := buildState(t)
	data := writeV1(t, orig)
	restored, err := ReadCheckpointLimit(bytes.NewReader(data), int64(len(data))+16)
	if err != nil {
		t.Fatalf("reading V1 checkpoint: %v", err)
	}
	if restored.Step() != orig.Step() {
		t.Errorf("step = %d, want %d", restored.Step(), orig.Step())
	}
	if restored.Tau != orig.Tau || restored.Smagorinsky != orig.Smagorinsky || restored.Force != orig.Force {
		t.Error("V1 parameters not restored")
	}
	fa, fb := orig.Src(), restored.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("V1 population %d differs after restore", i)
		}
	}
	for i := range orig.Flags {
		if orig.Flags[i] != restored.Flags[i] {
			t.Fatalf("V1 flag %d differs after restore", i)
		}
	}
}

// TestReadV1CorruptionDetected: a bit flip anywhere in a V1 file fails
// the whole-file CRC with ErrCorrupt.
func TestReadV1CorruptionDetected(t *testing.T) {
	data := writeV1(t, buildState(t))
	for _, off := range []int{9, 90, len(data) / 2, len(data) - 9} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		_, err := ReadCheckpointLimit(bytes.NewReader(bad), int64(len(bad))+16)
		if err == nil {
			t.Errorf("V1 flip at byte %d not detected", off)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("V1 flip at byte %d: error %v does not wrap ErrCorrupt", off, err)
		}
	}
}

// TestWriterEmitsV2: new checkpoints carry the V2 magic — the format
// upgrade is actually in effect, not just supported.
func TestWriterEmitsV2(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, buildState(t)); err != nil {
		t.Fatal(err)
	}
	magic := binary.LittleEndian.Uint64(buf.Bytes()[:8])
	if magic != checkpointMagicV2 {
		t.Errorf("writer magic = %#x, want V2 %#x", magic, uint64(checkpointMagicV2))
	}
}
