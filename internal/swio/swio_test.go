package swio

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

func buildState(t testing.TB) *core.Lattice {
	t.Helper()
	l, err := core.NewLattice(&lattice.D3Q19, 6, 8, 10, 0.73)
	if err != nil {
		t.Fatal(err)
	}
	l.Smagorinsky = 0.17
	l.Force = [3]float64{1e-6, 0, -2e-6}
	l.SetWall(3, 3, 3)
	l.SetWall(3, 4, 3)
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				if l.CellTypeAt(x, y, z) == core.Fluid {
					l.SetCell(x, y, z, 1+0.01*math.Sin(float64(x*y+z)),
						0.02*math.Cos(float64(z)), 0.01, -0.005)
				}
			}
		}
	}
	for s := 0; s < 7; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	return l
}

// TestCheckpointRoundTrip: a restart must reproduce the state exactly and
// continue the simulation identically.
func TestCheckpointRoundTrip(t *testing.T) {
	orig := buildState(t)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, orig); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Step() != orig.Step() {
		t.Errorf("step = %d, want %d", restored.Step(), orig.Step())
	}
	if restored.Tau != orig.Tau || restored.Smagorinsky != orig.Smagorinsky || restored.Force != orig.Force {
		t.Error("parameters not restored")
	}
	fa, fb := orig.Src(), restored.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("population %d differs after restart", i)
		}
	}
	for i := range orig.Flags {
		if orig.Flags[i] != restored.Flags[i] {
			t.Fatalf("flag %d differs after restart", i)
		}
	}
	// Continue both for a few steps: identical trajectories.
	for s := 0; s < 5; s++ {
		orig.PeriodicAll()
		orig.StepFused()
		restored.PeriodicAll()
		restored.StepFused()
	}
	fa, fb = orig.Src(), restored.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("trajectories diverged after restart at %d", i)
		}
	}
}

// TestCheckpointCorruptionDetected (failure injection): flipping any byte
// must be caught by the CRC, truncation by the reader.
func TestCheckpointCorruptionDetected(t *testing.T) {
	orig := buildState(t)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, orig); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, pos := range []int{100, len(data) / 2, len(data) - 20} {
		corrupted := append([]byte(nil), data...)
		corrupted[pos] ^= 0x40
		if _, err := ReadCheckpoint(bytes.NewReader(corrupted)); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}
	// Truncation.
	if _, err := ReadCheckpoint(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Error("truncated checkpoint not detected")
	}
	// Wrong magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic not detected")
	}
}

func TestCheckpointFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.cpk")
	orig := buildState(t)
	if err := Checkpoint(path, orig); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
	restored, err := Restart(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Step() != orig.Step() {
		t.Errorf("restart step = %d, want %d", restored.Step(), orig.Step())
	}
	if _, err := Restart(filepath.Join(dir, "missing.cpk")); err == nil {
		t.Error("missing file must error")
	}
}

func TestGroupPlan(t *testing.T) {
	g, err := NewGroupPlan(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Groups() != 3 {
		t.Errorf("groups = %d, want 3", g.Groups())
	}
	if !g.IsLeader(0) || !g.IsLeader(4) || !g.IsLeader(8) || g.IsLeader(5) {
		t.Error("leader detection wrong")
	}
	if g.Leader(6) != 4 || g.Leader(9) != 8 {
		t.Error("leader lookup wrong")
	}
	members := g.Members(8)
	if len(members) != 2 || members[0] != 8 || members[1] != 9 {
		t.Errorf("members(8) = %v", members)
	}
	if _, err := NewGroupPlan(0, 4); err == nil {
		t.Error("want validation error")
	}
}

// TestGroupPlanPartition (property): every rank belongs to exactly one
// group, led by its leader.
func TestGroupPlanPartition(t *testing.T) {
	f := func(r, gs uint8) bool {
		ranks := int(r%200) + 1
		size := int(gs%16) + 1
		g, err := NewGroupPlan(ranks, size)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		leaders := 0
		for rank := 0; rank < ranks; rank++ {
			if g.IsLeader(rank) {
				leaders++
				for _, m := range g.Members(rank) {
					if seen[m] {
						return false
					}
					seen[m] = true
					if g.Leader(m) != rank {
						return false
					}
				}
			}
		}
		return leaders == g.Groups() && len(seen) == ranks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCheckpointWriteFailurePaths: failures while writing leave no partial
// file behind.
func TestCheckpointWriteFailurePaths(t *testing.T) {
	orig := buildState(t)
	// Unwritable directory.
	if err := Checkpoint("/nonexistent-dir/x.cpk", orig); err == nil {
		t.Error("unwritable path must error")
	}
	// Path collision with a directory.
	dir := t.TempDir()
	sub := filepath.Join(dir, "taken")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := Checkpoint(sub, orig); err == nil {
		t.Error("directory-shaped target must error")
	}
	if _, err := os.Stat(sub + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after failure")
	}
}
