package swio

import (
	"fmt"
	"time"

	"sunwaylb/internal/core"
)

// RetryPolicy bounds how persistently a transient I/O failure is retried.
// On the real machine a checkpoint write competes with 160 000 ranks for
// the global file system; transient ENOSPC/EIO-style failures are
// expected and retried with exponential backoff rather than aborting a
// multi-hour run.
//
// The backoff is full-jitter (AWS style): the k-th sleep is a uniform
// draw from (0, min(MaxDelay, BaseDelay·2^k)]. Without jitter, N ranks
// that hit the same file-system fault retry in lockstep and re-collide
// on every attempt; the jitter spreads the herd. The draw is a pure
// function of (Seed, attempt) — no global RNG — so a replayed scenario
// backs off identically (the detfloat/replay contract), while distinct
// seeds (e.g. per rank) decorrelate.
type RetryPolicy struct {
	// Attempts is the total number of tries (≥ 1).
	Attempts int
	// BaseDelay scales the backoff envelope: attempt k draws its sleep
	// from (0, BaseDelay·2^k], capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff envelope.
	MaxDelay time.Duration
	// Seed drives the deterministic jitter. Equal seeds back off
	// identically; callers that must not collide (N ranks sharing a file
	// system) pass distinct seeds, conventionally their rank.
	Seed int64
}

// DefaultRetryPolicy is the supervisor's default: 4 attempts, 5 ms → 250 ms.
var DefaultRetryPolicy = RetryPolicy{Attempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond}

// norm fills zero fields with defaults so the zero value is usable.
func (p RetryPolicy) norm() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = DefaultRetryPolicy.Attempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryPolicy.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryPolicy.MaxDelay
	}
	return p
}

// splitmix64 is the SplitMix64 finalizer — the same seeded mixer the
// fault injector uses, so jitter decisions are pure functions of their
// coordinates, never of scheduling.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Delay returns the full-jitter sleep before retry attempt k (0-based:
// the sleep after the first failure is Delay(0)). The result is in
// (0, min(MaxDelay, BaseDelay·2^k)] and deterministic in (Seed, k).
// Exported so other backoff consumers (the service scheduler's
// retry-after-worker-loss path) share one jitter discipline.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	p = p.norm()
	envelope := p.BaseDelay
	for i := 0; i < attempt; i++ {
		envelope *= 2
		if envelope >= p.MaxDelay {
			envelope = p.MaxDelay
			break
		}
	}
	if envelope > p.MaxDelay {
		envelope = p.MaxDelay
	}
	// Uniform (0, envelope]: scale a 53-bit fraction, round up past 0.
	h := splitmix64(uint64(p.Seed) ^ 0x52_45_54_52_59) // "RETRY"
	h = splitmix64(h ^ uint64(attempt))
	frac := float64(h>>11) / float64(1<<53)
	d := time.Duration(frac * float64(envelope))
	if d <= 0 {
		d = 1
	}
	return d
}

// Do runs op until it succeeds or the attempt budget is exhausted,
// sleeping with full-jitter exponential backoff between tries. The last
// error is returned annotated with the attempt count.
func (p RetryPolicy) Do(op func() error) error {
	p = p.norm()
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt >= p.Attempts {
			return fmt.Errorf("swio: giving up after %d attempts: %w", attempt, err)
		}
		time.Sleep(p.Delay(attempt - 1))
	}
}

// CheckpointRetry is Checkpoint with bounded retry: the atomic
// temp-file + rename publication is retried under the policy, so a
// transiently failing file system costs backoff time, not the run.
func CheckpointRetry(path string, l *core.Lattice, p RetryPolicy) error {
	return p.Do(func() error { return Checkpoint(path, l) })
}
