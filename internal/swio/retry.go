package swio

import (
	"fmt"
	"time"

	"sunwaylb/internal/core"
)

// RetryPolicy bounds how persistently a transient I/O failure is retried.
// On the real machine a checkpoint write competes with 160 000 ranks for
// the global file system; transient ENOSPC/EIO-style failures are
// expected and retried with exponential backoff rather than aborting a
// multi-hour run.
type RetryPolicy struct {
	// Attempts is the total number of tries (≥ 1).
	Attempts int
	// BaseDelay is the sleep after the first failure; it doubles per
	// retry up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the supervisor's default: 4 attempts, 5 ms → 40 ms.
var DefaultRetryPolicy = RetryPolicy{Attempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond}

// norm fills zero fields with defaults so the zero value is usable.
func (p RetryPolicy) norm() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = DefaultRetryPolicy.Attempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryPolicy.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryPolicy.MaxDelay
	}
	return p
}

// Do runs op until it succeeds or the attempt budget is exhausted,
// sleeping with exponential backoff between tries. The last error is
// returned annotated with the attempt count.
func (p RetryPolicy) Do(op func() error) error {
	p = p.norm()
	var err error
	delay := p.BaseDelay
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt >= p.Attempts {
			return fmt.Errorf("swio: giving up after %d attempts: %w", attempt, err)
		}
		time.Sleep(delay)
		if delay *= 2; delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// CheckpointRetry is Checkpoint with bounded retry: the atomic
// temp-file + rename publication is retried under the policy, so a
// transiently failing file system costs backoff time, not the run.
func CheckpointRetry(path string, l *core.Lattice, p RetryPolicy) error {
	return p.Do(func() error { return Checkpoint(path, l) })
}
