package swio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Striped I/O is the layer's "MPI I/O" option (§IV-B): a large field is
// written as N stripe files in parallel-friendly chunks, each with its own
// CRC, plus a manifest. On the real machine each I/O group leader writes
// one stripe; here the layout and integrity machinery are identical and
// the parallelism is the caller's choice.

const stripeMagic = 0x53574c42_53545231 // "SWLB" "STR1"

// WriteStriped writes data as `stripes` files named <name>.sNNN plus a
// manifest <name>.manifest in dir.
func WriteStriped(dir, name string, data []float64, stripes int) error {
	if stripes < 1 {
		return fmt.Errorf("swio: stripe count %d < 1", stripes)
	}
	if stripes > len(data) && len(data) > 0 {
		stripes = len(data)
	}
	// Manifest.
	mf, err := os.Create(filepath.Join(dir, name+".manifest"))
	if err != nil {
		return fmt.Errorf("swio: creating manifest: %w", err)
	}
	defer mf.Close()
	bw := bufio.NewWriter(mf)
	for _, v := range []uint64{stripeMagic, uint64(len(data)), uint64(stripes)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("swio: writing manifest: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("swio: flushing manifest: %w", err)
	}

	for s := 0; s < stripes; s++ {
		lo, hi := stripeRange(len(data), stripes, s)
		if err := writeStripeFile(stripePath(dir, name, s), data[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// ReadStriped reassembles a field written by WriteStriped, validating
// every stripe's CRC.
func ReadStriped(dir, name string) ([]float64, error) {
	mf, err := os.Open(filepath.Join(dir, name+".manifest"))
	if err != nil {
		return nil, fmt.Errorf("swio: opening manifest: %w", err)
	}
	defer mf.Close()
	var head [3]uint64
	for i := range head {
		if err := binary.Read(mf, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("swio: reading manifest: %w", err)
		}
	}
	if head[0] != stripeMagic {
		return nil, fmt.Errorf("swio: bad manifest magic %#x", head[0])
	}
	total, stripes := int(head[1]), int(head[2])
	if stripes < 1 || total < 0 {
		return nil, fmt.Errorf("swio: manifest claims %d values in %d stripes", total, stripes)
	}
	data := make([]float64, total)
	for s := 0; s < stripes; s++ {
		lo, hi := stripeRange(total, stripes, s)
		if err := readStripeFile(stripePath(dir, name, s), data[lo:hi]); err != nil {
			return nil, fmt.Errorf("swio: stripe %d: %w", s, err)
		}
	}
	return data, nil
}

func stripePath(dir, name string, s int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.s%03d", name, s))
}

// stripeRange returns the [lo, hi) slice of stripe s of n values.
func stripeRange(n, stripes, s int) (lo, hi int) {
	base := n / stripes
	rem := n % stripes
	if s < rem {
		lo = s * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (s-rem)*base
	return lo, lo + base
}

func writeStripeFile(path string, vals []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("swio: creating stripe: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	crc := crc64.New(crcTable)
	mw := io.MultiWriter(bw, crc)
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(len(vals)))
	if _, err := mw.Write(buf); err != nil {
		return fmt.Errorf("swio: writing stripe header: %w", err)
	}
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := mw.Write(buf); err != nil {
			return fmt.Errorf("swio: writing stripe data: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum64()); err != nil {
		return fmt.Errorf("swio: writing stripe CRC: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("swio: flushing stripe: %w", err)
	}
	return nil
}

func readStripeFile(path string, into []float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	crc := crc64.New(crcTable)
	tr := io.TeeReader(br, crc)
	buf := make([]byte, 8)
	if _, err := io.ReadFull(tr, buf); err != nil {
		return fmt.Errorf("reading header: %w", err)
	}
	if n := binary.LittleEndian.Uint64(buf); int(n) != len(into) {
		return fmt.Errorf("stripe holds %d values, manifest expects %d", n, len(into))
	}
	for i := range into {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return fmt.Errorf("reading data: %w", err)
		}
		into[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	var stored uint64
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return fmt.Errorf("reading CRC: %w", err)
	}
	if stored != crc.Sum64() {
		return fmt.Errorf("CRC mismatch (corrupt stripe)")
	}
	return nil
}
