package swio

import (
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// TestRetryPolicyEventualSuccess: a transiently failing op succeeds once
// the flake clears, within the attempt budget.
func TestRetryPolicyEventualSuccess(t *testing.T) {
	p := RetryPolicy{Attempts: 5, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient EIO")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
}

// TestRetryPolicyExhaustion: a permanently failing op returns the last
// error, annotated with the attempt count, after exactly Attempts tries.
func TestRetryPolicyExhaustion(t *testing.T) {
	p := RetryPolicy{Attempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	sentinel := errors.New("disk full")
	calls := 0
	err := p.Do(func() error { calls++; return sentinel })
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("error %v does not wrap the last failure", err)
	}
}

// TestRetryPolicyZeroValue: the zero policy normalises to the defaults
// instead of never retrying or dividing by zero.
func TestRetryPolicyZeroValue(t *testing.T) {
	n := RetryPolicy{}.norm()
	if n != DefaultRetryPolicy.norm() {
		t.Errorf("zero policy normalised to %+v, want defaults %+v", n, DefaultRetryPolicy)
	}
	calls := 0
	RetryPolicy{BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}.Do(func() error {
		calls++
		return errors.New("x")
	})
	if calls != DefaultRetryPolicy.Attempts {
		t.Errorf("zero-Attempts policy tried %d times, want default %d", calls, DefaultRetryPolicy.Attempts)
	}
}

// TestCheckpointRetry: the retried checkpoint write lands atomically and
// restarts cleanly; an unwritable path fails with the attempt count.
func TestCheckpointRetry(t *testing.T) {
	l := buildState(t)
	path := filepath.Join(t.TempDir(), "r.cpk")
	p := RetryPolicy{Attempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	if err := CheckpointRetry(path, l, p); err != nil {
		t.Fatal(err)
	}
	restored, err := Restart(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Step() != l.Step() {
		t.Errorf("restored step %d, want %d", restored.Step(), l.Step())
	}

	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "r.cpk")
	if err := CheckpointRetry(bad, l, p); err == nil {
		t.Error("checkpoint into a missing directory must fail after retries")
	}
}
