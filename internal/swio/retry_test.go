package swio

import (
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// TestRetryPolicyEventualSuccess: a transiently failing op succeeds once
// the flake clears, within the attempt budget.
func TestRetryPolicyEventualSuccess(t *testing.T) {
	p := RetryPolicy{Attempts: 5, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient EIO")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
}

// TestRetryPolicyExhaustion: a permanently failing op returns the last
// error, annotated with the attempt count, after exactly Attempts tries.
func TestRetryPolicyExhaustion(t *testing.T) {
	p := RetryPolicy{Attempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	sentinel := errors.New("disk full")
	calls := 0
	err := p.Do(func() error { calls++; return sentinel })
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("error %v does not wrap the last failure", err)
	}
}

// TestRetryPolicyZeroValue: the zero policy normalises to the defaults
// instead of never retrying or dividing by zero.
func TestRetryPolicyZeroValue(t *testing.T) {
	n := RetryPolicy{}.norm()
	if n != DefaultRetryPolicy.norm() {
		t.Errorf("zero policy normalised to %+v, want defaults %+v", n, DefaultRetryPolicy)
	}
	calls := 0
	RetryPolicy{BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}.Do(func() error {
		calls++
		return errors.New("x")
	})
	if calls != DefaultRetryPolicy.Attempts {
		t.Errorf("zero-Attempts policy tried %d times, want default %d", calls, DefaultRetryPolicy.Attempts)
	}
}

// TestRetryDelayJitterBounds: every jittered delay stays inside the
// full-jitter envelope (0, min(MaxDelay, BaseDelay·2^k)].
func TestRetryDelayJitterBounds(t *testing.T) {
	p := RetryPolicy{Attempts: 8, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}
	for seed := int64(0); seed < 50; seed++ {
		p.Seed = seed
		for k := 0; k < 8; k++ {
			env := p.BaseDelay << k
			if env > p.MaxDelay {
				env = p.MaxDelay
			}
			d := p.Delay(k)
			if d <= 0 || d > env {
				t.Fatalf("seed %d attempt %d: delay %v outside (0, %v]", seed, k, d, env)
			}
		}
	}
}

// TestRetryDelayDeterministic: equal seeds back off identically (replay
// contract); distinct seeds decorrelate so a herd of ranks retrying the
// same shared-file-system fault does not re-collide in lockstep.
func TestRetryDelayDeterministic(t *testing.T) {
	a := RetryPolicy{Attempts: 6, BaseDelay: time.Millisecond, MaxDelay: 64 * time.Millisecond, Seed: 7}
	b := a
	same := 0
	for k := 0; k < 6; k++ {
		if a.Delay(k) != b.Delay(k) {
			t.Fatalf("attempt %d: same seed gave different delays", k)
		}
		other := a
		other.Seed = 8
		if a.Delay(k) == other.Delay(k) {
			same++
		}
	}
	if same == 6 {
		t.Error("distinct seeds produced identical backoff sequences; jitter is not decorrelating")
	}
}

// TestCheckpointRetry: the retried checkpoint write lands atomically and
// restarts cleanly; an unwritable path fails with the attempt count.
func TestCheckpointRetry(t *testing.T) {
	l := buildState(t)
	path := filepath.Join(t.TempDir(), "r.cpk")
	p := RetryPolicy{Attempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	if err := CheckpointRetry(path, l, p); err != nil {
		t.Fatal(err)
	}
	restored, err := Restart(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Step() != l.Step() {
		t.Errorf("restored step %d, want %d", restored.Step(), l.Step())
	}

	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "r.cpk")
	if err := CheckpointRetry(bad, l, p); err == nil {
		t.Error("checkpoint into a missing directory must fail after retries")
	}
}
