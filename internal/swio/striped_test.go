package swio

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestStripedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	data := make([]float64, 1003) // deliberately not divisible by stripes
	for i := range data {
		data[i] = math.Sin(float64(i)) * float64(i)
	}
	if err := WriteStriped(dir, "field", data, 7); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStriped(dir, "field")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("length %d, want %d", len(got), len(data))
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("value %d changed: %v vs %v", i, got[i], data[i])
		}
	}
	// Exactly 7 stripe files plus the manifest exist.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Errorf("%d files, want 8 (7 stripes + manifest)", len(entries))
	}
}

// TestStripedCorruptionIsolated (failure injection): corrupting one stripe
// is detected and attributed to that stripe.
func TestStripedCorruptionIsolated(t *testing.T) {
	dir := t.TempDir()
	data := make([]float64, 256)
	for i := range data {
		data[i] = float64(i)
	}
	if err := WriteStriped(dir, "f", data, 4); err != nil {
		t.Fatal(err)
	}
	// Corrupt stripe 2.
	path := filepath.Join(dir, "f.s002")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ReadStriped(dir, "f")
	if err == nil {
		t.Fatal("corruption not detected")
	}
	if want := "stripe 2"; err != nil && !contains(err.Error(), want) {
		t.Errorf("error %q does not name the corrupt stripe", err)
	}
	// A missing stripe is reported too.
	if err := os.Remove(filepath.Join(dir, "f.s001")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStriped(dir, "f"); err == nil {
		t.Fatal("missing stripe not detected")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestStripeRangePartition (property): stripes tile [0, n) exactly.
func TestStripeRangePartition(t *testing.T) {
	f := func(n0, s0 uint16) bool {
		n := int(n0 % 5000)
		stripes := int(s0%32) + 1
		prev := 0
		for s := 0; s < stripes; s++ {
			lo, hi := stripeRange(n, stripes, s)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestStripedValidation(t *testing.T) {
	dir := t.TempDir()
	if err := WriteStriped(dir, "x", []float64{1, 2}, 0); err == nil {
		t.Error("zero stripes must be rejected")
	}
	// More stripes than values clamps rather than creating empty files
	// beyond the data.
	if err := WriteStriped(dir, "x", []float64{1, 2}, 10); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStriped(dir, "x")
	if err != nil || len(got) != 2 {
		t.Fatalf("clamped read: %v %v", got, err)
	}
	if _, err := ReadStriped(dir, "missing"); err == nil {
		t.Error("missing manifest must error")
	}
}
