package geometry

import (
	"fmt"

	"sunwaylb/internal/core"
)

// VoxelGrid maps lattice cell coordinates to world space: cell (x, y, z)
// samples the world point Origin + H·(x+½, y+½, z+½).
type VoxelGrid struct {
	NX, NY, NZ int
	// Origin is the world position of the lattice corner (0,0,0).
	Origin Vec3
	// H is the cell size (lattice spacing) in world units.
	H float64
}

// Center returns the world-space center of cell (x, y, z).
func (g VoxelGrid) Center(x, y, z int) Vec3 {
	return Vec3{
		g.Origin.X + g.H*(float64(x)+0.5),
		g.Origin.Y + g.H*(float64(y)+0.5),
		g.Origin.Z + g.H*(float64(z)+0.5),
	}
}

// Voxelize samples the shape at every cell center and returns a solid mask
// in the usual z-fastest ordering (idx = (y·NX+x)·NZ+z).
func Voxelize(s Shape, g VoxelGrid) []bool {
	mask := make([]bool, g.NX*g.NY*g.NZ)
	b := s.Bounds()
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			// Column-level bounding-box rejection.
			c := g.Center(x, y, 0)
			if c.X < b.Min.X-g.H || c.X > b.Max.X+g.H ||
				c.Y < b.Min.Y-g.H || c.Y > b.Max.Y+g.H {
				continue
			}
			for z := 0; z < g.NZ; z++ {
				if s.Contains(g.Center(x, y, z)) {
					mask[(y*g.NX+x)*g.NZ+z] = true
				}
			}
		}
	}
	return mask
}

// SolidFraction returns the fraction of true cells in a mask.
func SolidFraction(mask []bool) float64 {
	if len(mask) == 0 {
		return 0
	}
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	return float64(n) / float64(len(mask))
}

// ApplyMask marks every masked cell of the lattice as a Wall. The mask
// dimensions must match the lattice interior.
func ApplyMask(l *core.Lattice, mask []bool, nx, ny, nz int) error {
	if nx != l.NX || ny != l.NY || nz != l.NZ {
		return fmt.Errorf("geometry: mask %d×%d×%d does not match lattice %d×%d×%d",
			nx, ny, nz, l.NX, l.NY, l.NZ)
	}
	if len(mask) != nx*ny*nz {
		return fmt.Errorf("geometry: mask length %d != %d", len(mask), nx*ny*nz)
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			for z := 0; z < nz; z++ {
				if mask[(y*nx+x)*nz+z] {
					l.SetWall(x, y, z)
				}
			}
		}
	}
	return nil
}

// VoxelizeInto voxelizes the shape directly into the lattice walls using
// the given grid mapping (grid dims must match the lattice interior).
func VoxelizeInto(l *core.Lattice, s Shape, g VoxelGrid) error {
	if g.NX != l.NX || g.NY != l.NY || g.NZ != l.NZ {
		return fmt.Errorf("geometry: grid %d×%d×%d does not match lattice %d×%d×%d",
			g.NX, g.NY, g.NZ, l.NX, l.NY, l.NZ)
	}
	mask := Voxelize(s, g)
	return ApplyMask(l, mask, g.NX, g.NY, g.NZ)
}
