package geometry

import "math"

// rng is a small deterministic linear congruential generator so synthetic
// geometry is reproducible without importing math/rand (and stable across
// Go releases).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// UrbanParams configures the synthetic city generator.
type UrbanParams struct {
	// Extent of the urban area in world units (x × y footprint).
	SizeX, SizeY float64
	// BlocksX, BlocksY is the number of city blocks along each axis.
	BlocksX, BlocksY int
	// StreetFrac is the fraction of each block pitch left as street.
	StreetFrac float64
	// MinHeight, MaxHeight bound the building heights.
	MinHeight, MaxHeight float64
	// Seed makes the layout reproducible.
	Seed uint64
}

// DefaultUrbanParams mimics the paper's Shanghai district case at reduced
// scale: dense blocks, heights up to ~80 m on a 1 km × 1 km area (here in
// arbitrary world units; scale via the voxelizer).
func DefaultUrbanParams() UrbanParams {
	return UrbanParams{
		SizeX: 1000, SizeY: 1000,
		BlocksX: 10, BlocksY: 10,
		StreetFrac: 0.3,
		MinHeight:  10, MaxHeight: 80,
		Seed: 42,
	}
}

// City generates a synthetic urban area: a grid of box buildings with
// deterministic pseudo-random heights and slight footprint jitter,
// standing on the z=0 plane. It stands in for the GIS building data of the
// paper's wind-flow case (§V-C); the solver only sees the voxelized
// obstacle mask, so a synthetic city with a comparable built fraction and
// height distribution exercises the identical code path.
func City(p UrbanParams) Union {
	r := rng{s: p.Seed ^ 0x9e3779b97f4a7c15}
	if p.BlocksX <= 0 || p.BlocksY <= 0 {
		return nil
	}
	pitchX := p.SizeX / float64(p.BlocksX)
	pitchY := p.SizeY / float64(p.BlocksY)
	var u Union
	for by := 0; by < p.BlocksY; by++ {
		for bx := 0; bx < p.BlocksX; bx++ {
			// Jitter the building footprint within its block.
			fill := 1 - p.StreetFrac
			w := pitchX * fill * (0.7 + 0.3*r.float())
			d := pitchY * fill * (0.7 + 0.3*r.float())
			cx := (float64(bx)+0.5)*pitchX + (r.float()-0.5)*pitchX*p.StreetFrac*0.5
			cy := (float64(by)+0.5)*pitchY + (r.float()-0.5)*pitchY*p.StreetFrac*0.5
			h := p.MinHeight + (p.MaxHeight-p.MinHeight)*r.float()*r.float()
			u = append(u, Box{AABB{
				Min: Vec3{cx - w/2, cy - d/2, 0},
				Max: Vec3{cx + w/2, cy + d/2, h},
			}})
		}
	}
	return u
}

// Terrain is a heightmap solid: all points with z ≤ Height(x, y) are
// inside. It stands in for GIS terrain input.
type Terrain struct {
	// Height returns the terrain elevation at (x, y).
	Height func(x, y float64) float64
	// Box bounds the terrain extent (Max.Z must bound Height).
	Box AABB
}

// Contains implements Shape.
func (t Terrain) Contains(p Vec3) bool {
	if p.X < t.Box.Min.X || p.X > t.Box.Max.X || p.Y < t.Box.Min.Y || p.Y > t.Box.Max.Y {
		return false
	}
	return p.Z <= t.Height(p.X, p.Y)
}

// Bounds implements Shape.
func (t Terrain) Bounds() AABB { return t.Box }

// RollingHills returns a smooth synthetic terrain of superposed sinusoidal
// ridges with mean elevation base and amplitude amp over the given extent.
func RollingHills(sizeX, sizeY, base, amp float64, seed uint64) Terrain {
	r := rng{s: seed ^ 0xdeadbeefcafef00d}
	p1 := 2 + 3*r.float()
	p2 := 2 + 3*r.float()
	ph1 := 2 * math.Pi * r.float()
	ph2 := 2 * math.Pi * r.float()
	h := func(x, y float64) float64 {
		return base +
			0.5*amp*math.Sin(2*math.Pi*p1*x/sizeX+ph1) +
			0.5*amp*math.Cos(2*math.Pi*p2*y/sizeY+ph2)
	}
	return Terrain{
		Height: h,
		Box: AABB{
			Min: Vec3{0, 0, 0},
			Max: Vec3{sizeX, sizeY, base + amp},
		},
	}
}
