package geometry

import (
	"bytes"
	"testing"
)

// FuzzReadSTL: the STL reader must never panic on malformed input — it
// either parses or returns an error. The seeds cover the ASCII and binary
// branches; `go test` replays them, `go test -fuzz=FuzzReadSTL` explores.
func FuzzReadSTL(f *testing.F) {
	var ascii bytes.Buffer
	_ = BoxMesh(AABB{Max: Vec3{1, 1, 1}}).WriteASCIISTL(&ascii, "seed")
	var bin bytes.Buffer
	_ = BoxMesh(AABB{Max: Vec3{1, 1, 1}}).WriteBinarySTL(&bin)
	f.Add(ascii.Bytes())
	f.Add(bin.Bytes())
	f.Add([]byte("solid x\nfacet normal 0 0 1\nouter loop\nvertex a b c\nendloop\nendfacet\nendsolid"))
	f.Add(make([]byte, 84))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadSTL(bytes.NewReader(data))
		if err == nil && m != nil {
			// A successful parse must yield a usable mesh.
			_ = m.Bounds()
			_ = m.Contains(Vec3{0.1, 0.1, 0.1})
		}
	})
}
