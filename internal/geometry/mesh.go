package geometry

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"
)

// Triangle is one facet of a surface mesh.
type Triangle struct {
	V [3]Vec3
}

// Normal returns the (unnormalised) facet normal.
func (t Triangle) Normal() Vec3 {
	return t.V[1].Sub(t.V[0]).Cross(t.V[2].Sub(t.V[0]))
}

// TriMesh is a triangle surface mesh; when watertight it also acts as a
// solid Shape via ray-parity point classification.
type TriMesh struct {
	Tris []Triangle

	bounds   AABB
	hasCache bool
}

// NewTriMesh builds a mesh from triangles.
func NewTriMesh(tris []Triangle) *TriMesh {
	m := &TriMesh{Tris: tris}
	m.computeBounds()
	return m
}

func (m *TriMesh) computeBounds() {
	if len(m.Tris) == 0 {
		m.bounds = AABB{}
		m.hasCache = true
		return
	}
	b := AABB{Min: m.Tris[0].V[0], Max: m.Tris[0].V[0]}
	for _, t := range m.Tris {
		for _, v := range t.V {
			b.Min.X = math.Min(b.Min.X, v.X)
			b.Min.Y = math.Min(b.Min.Y, v.Y)
			b.Min.Z = math.Min(b.Min.Z, v.Z)
			b.Max.X = math.Max(b.Max.X, v.X)
			b.Max.Y = math.Max(b.Max.Y, v.Y)
			b.Max.Z = math.Max(b.Max.Z, v.Z)
		}
	}
	m.bounds = b
	m.hasCache = true
}

// Bounds implements Shape.
func (m *TriMesh) Bounds() AABB {
	if !m.hasCache {
		m.computeBounds()
	}
	return m.bounds
}

// Contains implements Shape using ray parity: a point is inside a
// watertight mesh iff a ray in +z crosses the surface an odd number of
// times. A tiny offset on the ray origin avoids edge-on degeneracies for
// lattice-aligned sample points.
func (m *TriMesh) Contains(p Vec3) bool {
	if !m.Bounds().Contains(p) {
		return false
	}
	// Offset breaks ties with axis-aligned facet edges.
	ox, oy := p.X+1.23456789e-7, p.Y+2.3456789e-7
	crossings := 0
	for _, t := range m.Tris {
		if rayZIntersects(t, ox, oy, p.Z) {
			crossings++
		}
	}
	return crossings%2 == 1
}

// rayZIntersects reports whether the vertical ray from (x, y, z) towards
// +z passes through triangle t.
func rayZIntersects(t Triangle, x, y, z float64) bool {
	// Project onto the xy plane and do a 2-D point-in-triangle test,
	// then check the intersection height.
	x0, y0 := t.V[0].X, t.V[0].Y
	x1, y1 := t.V[1].X, t.V[1].Y
	x2, y2 := t.V[2].X, t.V[2].Y
	d := (y1-y2)*(x0-x2) + (x2-x1)*(y0-y2)
	if d == 0 {
		return false // degenerate in projection (vertical facet)
	}
	a := ((y1-y2)*(x-x2) + (x2-x1)*(y-y2)) / d
	b := ((y2-y0)*(x-x2) + (x0-x2)*(y-y2)) / d
	c := 1 - a - b
	if a < 0 || b < 0 || c < 0 {
		return false
	}
	zi := a*t.V[0].Z + b*t.V[1].Z + c*t.V[2].Z
	return zi > z
}

// ReadSTL parses an STL file, auto-detecting the ASCII and binary
// variants.
func ReadSTL(r io.Reader) (*TriMesh, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(5)
	if err != nil {
		return nil, fmt.Errorf("geometry: reading STL header: %w", err)
	}
	if string(head) == "solid" {
		// Could still be binary with a header starting with "solid";
		// try ASCII first and fall back.
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("geometry: reading STL: %w", err)
		}
		if m, err := parseASCIISTL(string(data)); err == nil {
			return m, nil
		}
		return parseBinarySTL(data)
	}
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("geometry: reading STL: %w", err)
	}
	return parseBinarySTL(data)
}

func parseASCIISTL(s string) (*TriMesh, error) {
	var tris []Triangle
	var cur []Vec3
	sc := bufio.NewScanner(strings.NewReader(s))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "vertex":
			if len(fields) != 4 {
				return nil, fmt.Errorf("geometry: malformed STL vertex line %q", sc.Text())
			}
			var v Vec3
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2]+" "+fields[3], "%g %g %g", &v.X, &v.Y, &v.Z); err != nil {
				return nil, fmt.Errorf("geometry: parsing STL vertex: %w", err)
			}
			cur = append(cur, v)
		case "endfacet":
			if len(cur) != 3 {
				return nil, fmt.Errorf("geometry: STL facet with %d vertices", len(cur))
			}
			tris = append(tris, Triangle{V: [3]Vec3{cur[0], cur[1], cur[2]}})
			cur = cur[:0]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("geometry: scanning ASCII STL: %w", err)
	}
	if len(tris) == 0 {
		return nil, fmt.Errorf("geometry: ASCII STL contains no facets")
	}
	return NewTriMesh(tris), nil
}

func parseBinarySTL(data []byte) (*TriMesh, error) {
	if len(data) < 84 {
		return nil, fmt.Errorf("geometry: binary STL truncated (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data[80:84])
	want := 84 + int(n)*50
	if len(data) < want {
		return nil, fmt.Errorf("geometry: binary STL claims %d facets but has %d bytes", n, len(data))
	}
	tris := make([]Triangle, 0, n)
	off := 84
	for i := uint32(0); i < n; i++ {
		var t Triangle
		p := off + 12 // skip the normal
		for v := 0; v < 3; v++ {
			t.V[v] = Vec3{
				X: float64(math.Float32frombits(binary.LittleEndian.Uint32(data[p : p+4]))),
				Y: float64(math.Float32frombits(binary.LittleEndian.Uint32(data[p+4 : p+8]))),
				Z: float64(math.Float32frombits(binary.LittleEndian.Uint32(data[p+8 : p+12]))),
			}
			p += 12
		}
		tris = append(tris, t)
		off += 50
	}
	return NewTriMesh(tris), nil
}

// WriteBinarySTL serialises the mesh in the binary STL format.
func (m *TriMesh) WriteBinarySTL(w io.Writer) error {
	header := make([]byte, 80)
	copy(header, "sunwaylb binary stl")
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("geometry: writing STL header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(m.Tris))); err != nil {
		return fmt.Errorf("geometry: writing STL count: %w", err)
	}
	buf := make([]byte, 50)
	for _, t := range m.Tris {
		n := t.Normal()
		if l := n.Norm(); l > 0 {
			n = n.Scale(1 / l)
		}
		vals := []float64{n.X, n.Y, n.Z,
			t.V[0].X, t.V[0].Y, t.V[0].Z,
			t.V[1].X, t.V[1].Y, t.V[1].Z,
			t.V[2].X, t.V[2].Y, t.V[2].Z}
		for i, v := range vals {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
		}
		buf[48], buf[49] = 0, 0
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("geometry: writing STL facet: %w", err)
		}
	}
	return nil
}

// WriteASCIISTL serialises the mesh in the ASCII STL format.
func (m *TriMesh) WriteASCIISTL(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "solid %s\n", name)
	for _, t := range m.Tris {
		n := t.Normal()
		if l := n.Norm(); l > 0 {
			n = n.Scale(1 / l)
		}
		fmt.Fprintf(bw, "  facet normal %g %g %g\n    outer loop\n", n.X, n.Y, n.Z)
		for _, v := range t.V {
			fmt.Fprintf(bw, "      vertex %g %g %g\n", v.X, v.Y, v.Z)
		}
		fmt.Fprintf(bw, "    endloop\n  endfacet\n")
	}
	fmt.Fprintf(bw, "endsolid %s\n", name)
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("geometry: writing ASCII STL: %w", err)
	}
	return nil
}

// BoxMesh returns a watertight 12-triangle mesh of an axis-aligned box,
// useful for tests and as a building block for synthetic cities.
func BoxMesh(b AABB) *TriMesh {
	lo, hi := b.Min, b.Max
	v := [8]Vec3{
		{lo.X, lo.Y, lo.Z}, {hi.X, lo.Y, lo.Z}, {hi.X, hi.Y, lo.Z}, {lo.X, hi.Y, lo.Z},
		{lo.X, lo.Y, hi.Z}, {hi.X, lo.Y, hi.Z}, {hi.X, hi.Y, hi.Z}, {lo.X, hi.Y, hi.Z},
	}
	quad := func(a, b, c, d int) []Triangle {
		return []Triangle{
			{V: [3]Vec3{v[a], v[b], v[c]}},
			{V: [3]Vec3{v[a], v[c], v[d]}},
		}
	}
	var tris []Triangle
	tris = append(tris, quad(0, 3, 2, 1)...) // bottom (z-)
	tris = append(tris, quad(4, 5, 6, 7)...) // top (z+)
	tris = append(tris, quad(0, 1, 5, 4)...) // y-
	tris = append(tris, quad(2, 3, 7, 6)...) // y+
	tris = append(tris, quad(0, 4, 7, 3)...) // x-
	tris = append(tris, quad(1, 2, 6, 5)...) // x+
	return NewTriMesh(tris)
}
