// Package geometry provides the mesh-generation substrate of SunwayLB's
// pre-processing module: analytic primitives, STL triangle meshes (the
// "geometries from CAD tools" input), synthetic terrain and urban layouts
// (the "terrain files from GIS software" input), and a voxelizer that
// converts any shape into the solid-cell mask consumed by the solver.
package geometry

import "math"

// Vec3 is a point or vector in 3-D space.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// AABB is an axis-aligned bounding box.
type AABB struct{ Min, Max Vec3 }

// Contains reports whether p lies inside the box (inclusive).
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Union returns the smallest box containing both boxes.
func (b AABB) Union(o AABB) AABB {
	return AABB{
		Min: Vec3{math.Min(b.Min.X, o.Min.X), math.Min(b.Min.Y, o.Min.Y), math.Min(b.Min.Z, o.Min.Z)},
		Max: Vec3{math.Max(b.Max.X, o.Max.X), math.Max(b.Max.Y, o.Max.Y), math.Max(b.Max.Z, o.Max.Z)},
	}
}

// Size returns the box edge lengths.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Shape is a solid body that can report whether a point is inside it.
type Shape interface {
	Contains(p Vec3) bool
	Bounds() AABB
}

// Sphere is a solid ball.
type Sphere struct {
	Center Vec3
	Radius float64
}

// Contains implements Shape.
func (s Sphere) Contains(p Vec3) bool {
	d := p.Sub(s.Center)
	return d.Dot(d) <= s.Radius*s.Radius
}

// Bounds implements Shape.
func (s Sphere) Bounds() AABB {
	r := Vec3{s.Radius, s.Radius, s.Radius}
	return AABB{Min: s.Center.Sub(r), Max: s.Center.Add(r)}
}

// CylinderZ is a solid circular cylinder with its axis parallel to z — the
// paper's flow-past-cylinder benchmark geometry.
type CylinderZ struct {
	CX, CY     float64 // axis position
	Radius     float64
	ZMin, ZMax float64
}

// Contains implements Shape.
func (c CylinderZ) Contains(p Vec3) bool {
	if p.Z < c.ZMin || p.Z > c.ZMax {
		return false
	}
	dx, dy := p.X-c.CX, p.Y-c.CY
	return dx*dx+dy*dy <= c.Radius*c.Radius
}

// Bounds implements Shape.
func (c CylinderZ) Bounds() AABB {
	return AABB{
		Min: Vec3{c.CX - c.Radius, c.CY - c.Radius, c.ZMin},
		Max: Vec3{c.CX + c.Radius, c.CY + c.Radius, c.ZMax},
	}
}

// Box is a solid axis-aligned box.
type Box struct{ AABB }

// Contains implements Shape.
func (b Box) Contains(p Vec3) bool { return b.AABB.Contains(p) }

// Bounds implements Shape.
func (b Box) Bounds() AABB { return b.AABB }

// Union combines several shapes into one solid.
type Union []Shape

// Contains implements Shape.
func (u Union) Contains(p Vec3) bool {
	for _, s := range u {
		if s.Contains(p) {
			return true
		}
	}
	return false
}

// Bounds implements Shape.
func (u Union) Bounds() AABB {
	if len(u) == 0 {
		return AABB{}
	}
	b := u[0].Bounds()
	for _, s := range u[1:] {
		b = b.Union(s.Bounds())
	}
	return b
}

// Revolution is a solid of revolution around the x axis: the body occupies
// all points with sqrt(y²+z²) ≤ Radius(x) for X0 ≤ x ≤ X1. Center gives
// the axis position in y,z.
type Revolution struct {
	X0, X1 float64
	CY, CZ float64
	// Radius returns the hull radius at axial position x∈[X0,X1];
	// it must return ≤ 0 outside the body.
	Radius func(x float64) float64
	// RMax bounds Radius for the bounding box.
	RMax float64
}

// Contains implements Shape.
func (r Revolution) Contains(p Vec3) bool {
	if p.X < r.X0 || p.X > r.X1 {
		return false
	}
	rad := r.Radius(p.X)
	if rad <= 0 {
		return false
	}
	dy, dz := p.Y-r.CY, p.Z-r.CZ
	return dy*dy+dz*dz <= rad*rad
}

// Bounds implements Shape.
func (r Revolution) Bounds() AABB {
	return AABB{
		Min: Vec3{r.X0, r.CY - r.RMax, r.CZ - r.RMax},
		Max: Vec3{r.X1, r.CY + r.RMax, r.CZ + r.RMax},
	}
}

// Suboff returns a DARPA-Suboff-like axisymmetric hull (without
// appendages): an elliptical bow, a cylindrical parallel middle body and a
// tapered stern, with overall length L and maximum radius R, positioned
// with the nose at x0 on an axis through (cy, cz). The real Suboff hull is
// defined by polynomial offsets; this three-segment approximation has the
// same topology and comparable fineness ratio, which is what the flow
// benchmark exercises.
func Suboff(x0, cy, cz, L, R float64) Revolution {
	bow := 0.22 * L
	stern := 0.30 * L
	return Revolution{
		X0: x0, X1: x0 + L,
		CY: cy, CZ: cz,
		RMax: R,
		Radius: func(x float64) float64 {
			t := x - x0
			switch {
			case t < 0 || t > L:
				return 0
			case t < bow:
				// Elliptical nose.
				u := 1 - t/bow
				return R * math.Sqrt(math.Max(0, 1-u*u))
			case t > L-stern:
				// Cubic stern taper down to a small tail radius.
				u := (L - t) / stern
				return R * (0.1 + 0.9*u*u*(3-2*u))
			default:
				return R
			}
		},
	}
}
