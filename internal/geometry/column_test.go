package geometry

import (
	"testing"
	"testing/quick"
)

// TestColumnVoxelizerMatchesPointwise (property): for random box meshes
// and grids, the column voxelizer agrees with per-point classification on
// every cell.
func TestColumnVoxelizerMatchesPointwise(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz uint8, gn uint8) bool {
		lo := Vec3{float64(ax%10) + 0.3, float64(ay%10) + 0.7, float64(az%6) + 0.1}
		hi := lo.Add(Vec3{float64(bx%8) + 1.3, float64(by%8) + 1.9, float64(bz%6) + 1.7})
		m := BoxMesh(AABB{Min: lo, Max: hi})
		n := int(gn%12) + 4
		g := VoxelGrid{NX: n, NY: n, NZ: n, H: 20.0 / float64(n)}
		a := Voxelize(m, g)
		b := VoxelizeMeshColumns(m, g)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestColumnVoxelizerSuboffMesh(t *testing.T) {
	// Tessellate the Suboff hull crudely as boxes is not watertight;
	// instead check a two-box city fragment.
	m := NewTriMesh(append(
		BoxMesh(AABB{Min: Vec3{2, 2, 0}, Max: Vec3{6, 6, 8}}).Tris,
		BoxMesh(AABB{Min: Vec3{10, 3, 0}, Max: Vec3{14, 7, 5}}).Tris...))
	g := VoxelGrid{NX: 16, NY: 10, NZ: 10, H: 1}
	a := Voxelize(m, g)
	b := VoxelizeMeshColumns(m, g)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff != 0 {
		t.Fatalf("column voxelizer differs from pointwise in %d cells", diff)
	}
	if SolidFraction(b) == 0 {
		t.Fatal("nothing voxelized")
	}
}

func BenchmarkVoxelizePointwise(b *testing.B) {
	m := cityMesh()
	g := VoxelGrid{NX: 48, NY: 48, NZ: 16, H: 1000.0 / 48}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Voxelize(m, g)
	}
}

func BenchmarkVoxelizeColumns(b *testing.B) {
	m := cityMesh()
	g := VoxelGrid{NX: 48, NY: 48, NZ: 16, H: 1000.0 / 48}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VoxelizeMeshColumns(m, g)
	}
}

func cityMesh() *TriMesh {
	var tris []Triangle
	for _, bld := range City(DefaultUrbanParams()) {
		tris = append(tris, BoxMesh(bld.Bounds()).Tris...)
	}
	return NewTriMesh(tris)
}
