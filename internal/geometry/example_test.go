package geometry_test

import (
	"fmt"

	"sunwaylb/internal/geometry"
)

// ExampleCity generates a deterministic synthetic urban area and voxelizes
// it (the paper's §V-C wind-flow pre-processing).
func ExampleCity() {
	params := geometry.DefaultUrbanParams()
	params.BlocksX, params.BlocksY = 4, 4
	city := geometry.City(params)
	grid := geometry.VoxelGrid{NX: 32, NY: 32, NZ: 16, H: 1000.0 / 32}
	mask := geometry.Voxelize(city, grid)
	fmt.Printf("%d buildings, solid fraction %.2f\n",
		len(city), geometry.SolidFraction(mask))
	// Output: 16 buildings, solid fraction 0.03
}

// ExampleSuboff voxelizes the submarine hull (the §V-B benchmark body).
func ExampleSuboff() {
	hull := geometry.Suboff(10, 20, 20, 80, 8)
	grid := geometry.VoxelGrid{NX: 100, NY: 40, NZ: 40, H: 1}
	mask := geometry.Voxelize(hull, grid)
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	fmt.Printf("hull occupies %v cells\n", n > 5000)
	// Output: hull occupies true cells
}
