package geometry

import "math"

// Transformations for placing CAD geometry (STL input) into the lattice
// frame — the pre-processing step between reading a hull model and
// voxelizing it.

// Translate returns a copy of the mesh shifted by d.
func (m *TriMesh) Translate(d Vec3) *TriMesh {
	out := make([]Triangle, len(m.Tris))
	for i, t := range m.Tris {
		for v := 0; v < 3; v++ {
			out[i].V[v] = t.V[v].Add(d)
		}
	}
	return NewTriMesh(out)
}

// Scale returns a copy of the mesh scaled by s about the origin.
func (m *TriMesh) Scale(s float64) *TriMesh {
	out := make([]Triangle, len(m.Tris))
	for i, t := range m.Tris {
		for v := 0; v < 3; v++ {
			out[i].V[v] = t.V[v].Scale(s)
		}
	}
	return NewTriMesh(out)
}

// RotateZ returns a copy of the mesh rotated by the angle (radians) about
// the z axis through the origin.
func (m *TriMesh) RotateZ(angle float64) *TriMesh {
	c, s := math.Cos(angle), math.Sin(angle)
	out := make([]Triangle, len(m.Tris))
	for i, t := range m.Tris {
		for v := 0; v < 3; v++ {
			p := t.V[v]
			out[i].V[v] = Vec3{X: c*p.X - s*p.Y, Y: s*p.X + c*p.Y, Z: p.Z}
		}
	}
	return NewTriMesh(out)
}

// FitTo returns a copy of the mesh uniformly scaled and translated so its
// bounding box fills the target box (preserving aspect ratio, centred).
func (m *TriMesh) FitTo(target AABB) *TriMesh {
	b := m.Bounds()
	size := b.Size()
	tsize := target.Size()
	s := math.Inf(1)
	for _, r := range []float64{safeDiv(tsize.X, size.X), safeDiv(tsize.Y, size.Y), safeDiv(tsize.Z, size.Z)} {
		if r < s {
			s = r
		}
	}
	if math.IsInf(s, 1) || s <= 0 {
		s = 1
	}
	scaled := m.Scale(s)
	sb := scaled.Bounds()
	center := target.Min.Add(target.Max).Scale(0.5)
	scenter := sb.Min.Add(sb.Max).Scale(0.5)
	return scaled.Translate(center.Sub(scenter))
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}
