package geometry

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != (Vec3{-3, 6, -3}) {
		t.Errorf("Cross = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		bound := func(v float64) float64 { return math.Mod(v, 100) }
		a := Vec3{bound(ax), bound(ay), bound(az)}
		b := Vec3{bound(bx), bound(by), bound(bz)}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		tol := 1e-9 * (scale + 1)
		return math.Abs(c.Dot(a)) < tol && math.Abs(c.Dot(b)) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSphereContains(t *testing.T) {
	s := Sphere{Center: Vec3{1, 1, 1}, Radius: 0.5}
	if !s.Contains(Vec3{1, 1, 1.4}) {
		t.Error("point inside sphere rejected")
	}
	if s.Contains(Vec3{1, 1, 1.6}) {
		t.Error("point outside sphere accepted")
	}
	b := s.Bounds()
	if b.Min != (Vec3{0.5, 0.5, 0.5}) || b.Max != (Vec3{1.5, 1.5, 1.5}) {
		t.Errorf("bounds = %+v", b)
	}
}

func TestCylinderZContains(t *testing.T) {
	c := CylinderZ{CX: 0, CY: 0, Radius: 1, ZMin: 0, ZMax: 10}
	cases := []struct {
		p    Vec3
		want bool
	}{
		{Vec3{0.5, 0.5, 5}, true},
		{Vec3{0.9, 0.9, 5}, false}, // outside radius
		{Vec3{0, 0, -1}, false},    // below
		{Vec3{0, 0, 11}, false},    // above
		{Vec3{1, 0, 0}, true},      // on the surface
	}
	for _, tc := range cases {
		if got := c.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestUnionBounds(t *testing.T) {
	u := Union{
		Box{AABB{Min: Vec3{0, 0, 0}, Max: Vec3{1, 1, 1}}},
		Box{AABB{Min: Vec3{2, 2, 2}, Max: Vec3{3, 3, 3}}},
	}
	b := u.Bounds()
	if b.Min != (Vec3{0, 0, 0}) || b.Max != (Vec3{3, 3, 3}) {
		t.Errorf("union bounds = %+v", b)
	}
	if !u.Contains(Vec3{0.5, 0.5, 0.5}) || !u.Contains(Vec3{2.5, 2.5, 2.5}) {
		t.Error("union must contain both members")
	}
	if u.Contains(Vec3{1.5, 1.5, 1.5}) {
		t.Error("union must not contain the gap")
	}
	if (Union{}).Contains(Vec3{0, 0, 0}) {
		t.Error("empty union contains nothing")
	}
}

func TestSuboffShape(t *testing.T) {
	s := Suboff(0, 0, 0, 10, 1)
	// Axis points inside the hull.
	if !s.Contains(Vec3{5, 0, 0}) {
		t.Error("mid-body on axis must be inside")
	}
	// Parallel middle body has full radius.
	if !s.Contains(Vec3{5, 0.99, 0}) || s.Contains(Vec3{5, 1.01, 0}) {
		t.Error("mid-body radius wrong")
	}
	// The nose tapers.
	if s.Contains(Vec3{0.05, 0.8, 0}) {
		t.Error("nose should taper")
	}
	// Outside the axial extent.
	if s.Contains(Vec3{-0.1, 0, 0}) || s.Contains(Vec3{10.1, 0, 0}) {
		t.Error("outside axial extent must be outside")
	}
	// Stern is thinner than mid-body.
	if s.Contains(Vec3{9.9, 0.5, 0}) {
		t.Error("stern should taper")
	}
	// The radius function is continuous across segment joints.
	r := s.Radius
	for _, x := range []float64{2.2, 7.0} {
		lo, hi := r(x-1e-6), r(x+1e-6)
		if math.Abs(lo-hi) > 1e-3 {
			t.Errorf("radius discontinuity at x=%v: %v vs %v", x, lo, hi)
		}
	}
}

func TestBoxMeshWatertight(t *testing.T) {
	b := AABB{Min: Vec3{0, 0, 0}, Max: Vec3{2, 3, 4}}
	m := BoxMesh(b)
	if len(m.Tris) != 12 {
		t.Fatalf("box mesh has %d triangles, want 12", len(m.Tris))
	}
	// Ray-parity classification must agree with the analytic box for a
	// sample grid.
	for _, tc := range []struct {
		p    Vec3
		want bool
	}{
		{Vec3{1, 1.5, 2}, true},
		{Vec3{0.1, 0.1, 0.1}, true},
		{Vec3{-0.1, 1, 1}, false},
		{Vec3{1, 3.5, 1}, false},
		{Vec3{1.9, 2.9, 3.9}, true},
		{Vec3{1, 1, 4.5}, false},
	} {
		if got := m.Contains(tc.p); got != tc.want {
			t.Errorf("mesh.Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestSTLBinaryRoundTrip(t *testing.T) {
	m := BoxMesh(AABB{Min: Vec3{0, 0, 0}, Max: Vec3{1, 2, 3}})
	var buf bytes.Buffer
	if err := m.WriteBinarySTL(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadSTL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Tris) != len(m.Tris) {
		t.Fatalf("round trip lost facets: %d -> %d", len(m.Tris), len(m2.Tris))
	}
	for i := range m.Tris {
		for v := 0; v < 3; v++ {
			d := m.Tris[i].V[v].Sub(m2.Tris[i].V[v])
			if d.Norm() > 1e-6 {
				t.Fatalf("vertex %d/%d moved by %v", i, v, d.Norm())
			}
		}
	}
}

func TestSTLASCIIRoundTrip(t *testing.T) {
	m := BoxMesh(AABB{Min: Vec3{0, 0, 0}, Max: Vec3{1, 1, 1}})
	var buf bytes.Buffer
	if err := m.WriteASCIISTL(&buf, "box"); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadSTL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Tris) != 12 {
		t.Fatalf("ASCII round trip: %d facets", len(m2.Tris))
	}
	if !m2.Contains(Vec3{0.5, 0.5, 0.5}) {
		t.Error("round-tripped mesh lost its interior")
	}
}

func TestReadSTLErrors(t *testing.T) {
	if _, err := ReadSTL(bytes.NewReader([]byte("solid x\nendsolid x\n"))); err == nil {
		t.Error("want error for facet-free ASCII STL")
	}
	if _, err := ReadSTL(bytes.NewReader(make([]byte, 10))); err == nil {
		t.Error("want error for truncated binary STL")
	}
	// Binary header claiming more facets than present.
	data := make([]byte, 90)
	data[80] = 200
	if _, err := ReadSTL(bytes.NewReader(data)); err == nil {
		t.Error("want error for facet-count overflow")
	}
}

func TestVoxelizeSphereVolume(t *testing.T) {
	s := Sphere{Center: Vec3{8, 8, 8}, Radius: 6}
	g := VoxelGrid{NX: 16, NY: 16, NZ: 16, H: 1}
	mask := Voxelize(s, g)
	vol := SolidFraction(mask) * float64(16*16*16)
	want := 4.0 / 3.0 * math.Pi * 6 * 6 * 6
	if math.Abs(vol-want)/want > 0.05 {
		t.Errorf("voxelized sphere volume %v, want %v ± 5%%", vol, want)
	}
}

func TestVoxelizeMeshMatchesAnalytic(t *testing.T) {
	b := AABB{Min: Vec3{2, 2, 2}, Max: Vec3{6, 7, 8}}
	g := VoxelGrid{NX: 10, NY: 10, NZ: 10, H: 1}
	analytic := Voxelize(Box{b}, g)
	mesh := Voxelize(BoxMesh(b), g)
	diff := 0
	for i := range analytic {
		if analytic[i] != mesh[i] {
			diff++
		}
	}
	if diff != 0 {
		t.Errorf("mesh and analytic voxelization differ in %d cells", diff)
	}
}

func TestCityDeterministicAndGrounded(t *testing.T) {
	p := DefaultUrbanParams()
	a := City(p)
	b := City(p)
	if len(a) != len(b) || len(a) != p.BlocksX*p.BlocksY {
		t.Fatalf("city has %d buildings, want %d (and deterministic)", len(a), p.BlocksX*p.BlocksY)
	}
	for i := range a {
		ba, bb := a[i].Bounds(), b[i].Bounds()
		if ba != bb {
			t.Fatalf("city generation not deterministic at building %d", i)
		}
		if ba.Min.Z != 0 {
			t.Errorf("building %d floats above ground: z0=%v", i, ba.Min.Z)
		}
		if ba.Max.Z < p.MinHeight || ba.Max.Z > p.MaxHeight {
			t.Errorf("building %d height %v outside [%v,%v]", i, ba.Max.Z, p.MinHeight, p.MaxHeight)
		}
	}
	// Different seeds give different cities.
	p2 := p
	p2.Seed++
	c := City(p2)
	same := true
	for i := range a {
		if a[i].Bounds() != c[i].Bounds() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical cities")
	}
}

func TestTerrainRollingHills(t *testing.T) {
	tr := RollingHills(100, 100, 10, 4, 7)
	if !tr.Contains(Vec3{50, 50, 1}) {
		t.Error("point below terrain must be inside")
	}
	if tr.Contains(Vec3{50, 50, 20}) {
		t.Error("point above terrain must be outside")
	}
	if tr.Contains(Vec3{-5, 50, 1}) {
		t.Error("point outside footprint must be outside")
	}
	// Height stays within base ± amp.
	for x := 0.0; x <= 100; x += 7 {
		for y := 0.0; y <= 100; y += 7 {
			h := tr.Height(x, y)
			if h < 6-1e-9 || h > 14+1e-9 {
				t.Fatalf("height %v out of [6,14] at (%v,%v)", h, x, y)
			}
		}
	}
}

func TestVoxelizeIntoLattice(t *testing.T) {
	l, err := core.NewLattice(&lattice.D3Q19, 12, 12, 12, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	cyl := CylinderZ{CX: 6, CY: 6, Radius: 3, ZMin: 0, ZMax: 12}
	g := VoxelGrid{NX: 12, NY: 12, NZ: 12, H: 1}
	if err := VoxelizeInto(l, cyl, g); err != nil {
		t.Fatal(err)
	}
	if l.CellTypeAt(6, 6, 6) != core.Wall {
		t.Error("cylinder center must be wall")
	}
	if l.CellTypeAt(0, 0, 6) != core.Fluid {
		t.Error("far corner must stay fluid")
	}
	// Mismatched grid must error.
	if err := VoxelizeInto(l, cyl, VoxelGrid{NX: 4, NY: 4, NZ: 4, H: 1}); err == nil {
		t.Error("want dimension-mismatch error")
	}
}

func TestApplyMaskErrors(t *testing.T) {
	l, err := core.NewLattice(&lattice.D3Q19, 4, 4, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyMask(l, make([]bool, 10), 4, 4, 4); err == nil {
		t.Error("want length-mismatch error")
	}
	if err := ApplyMask(l, make([]bool, 64), 8, 4, 2); err == nil {
		t.Error("want dim-mismatch error")
	}
}

func BenchmarkVoxelizeCity(b *testing.B) {
	city := City(DefaultUrbanParams())
	g := VoxelGrid{NX: 64, NY: 64, NZ: 16, Origin: Vec3{0, 0, 0}, H: 1000.0 / 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Voxelize(city, g)
	}
}

func TestMeshTransforms(t *testing.T) {
	m := BoxMesh(AABB{Min: Vec3{0, 0, 0}, Max: Vec3{2, 2, 2}})
	tr := m.Translate(Vec3{10, 0, 0})
	if b := tr.Bounds(); b.Min.X != 10 || b.Max.X != 12 || b.Min.Y != 0 {
		t.Errorf("translate bounds = %+v", b)
	}
	sc := m.Scale(3)
	if b := sc.Bounds(); b.Max.X != 6 || b.Max.Z != 6 {
		t.Errorf("scale bounds = %+v", b)
	}
	// 90° rotation about z maps (2,0) to (0,2).
	rot := m.RotateZ(math.Pi / 2)
	b := rot.Bounds()
	if math.Abs(b.Min.X+2) > 1e-12 || math.Abs(b.Max.Y-2) > 1e-12 {
		t.Errorf("rotate bounds = %+v", b)
	}
	// Volume is preserved by rotation: voxel counts agree.
	g := VoxelGrid{NX: 12, NY: 12, NZ: 6, Origin: Vec3{-4, -2, -1}, H: 0.5}
	if a, bb := SolidFraction(Voxelize(m, g)), SolidFraction(Voxelize(rot, g)); math.Abs(a-bb) > 0.02 {
		t.Errorf("rotation changed the voxel volume: %v vs %v", a, bb)
	}
	// The original mesh is untouched.
	if ob := m.Bounds(); ob.Max.X != 2 {
		t.Error("transforms must not mutate the source mesh")
	}
}

func TestMeshFitTo(t *testing.T) {
	m := BoxMesh(AABB{Min: Vec3{5, 5, 5}, Max: Vec3{7, 9, 6}}) // 2×4×1 box
	target := AABB{Min: Vec3{0, 0, 0}, Max: Vec3{8, 8, 8}}
	fit := m.FitTo(target)
	b := fit.Bounds()
	// Limited by y: scale 2 → 4×8×2, centred in the 8³ target.
	if math.Abs(b.Size().Y-8) > 1e-9 || math.Abs(b.Size().X-4) > 1e-9 {
		t.Errorf("fit size = %+v", b.Size())
	}
	cx := (b.Min.X + b.Max.X) / 2
	if math.Abs(cx-4) > 1e-9 {
		t.Errorf("fit centre x = %v, want 4", cx)
	}
	if b.Min.X < -1e-9 || b.Max.Z > 8+1e-9 {
		t.Errorf("fit escapes the target: %+v", b)
	}
}
