package geometry

import "sort"

// VoxelizeMeshColumns voxelizes a watertight triangle mesh by casting one
// vertical ray per (x, y) column and filling between crossing pairs —
// O(columns·triangles) instead of the O(cells·triangles) of per-point
// classification, and the approach a production mesh pipeline uses. The
// result matches Voxelize(mesh, g) exactly (both use the same parity
// rule).
func VoxelizeMeshColumns(m *TriMesh, g VoxelGrid) []bool {
	mask := make([]bool, g.NX*g.NY*g.NZ)
	b := m.Bounds()
	var zs []float64
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			c := g.Center(x, y, 0)
			if c.X < b.Min.X-g.H || c.X > b.Max.X+g.H ||
				c.Y < b.Min.Y-g.H || c.Y > b.Max.Y+g.H {
				continue
			}
			// The same tie-breaking offsets as TriMesh.Contains, so
			// the two voxelizers agree bit for bit.
			rx, ry := c.X+1.23456789e-7, c.Y+2.3456789e-7
			zs = zs[:0]
			for _, t := range m.Tris {
				if z, ok := rayZHeight(t, rx, ry); ok {
					zs = append(zs, z)
				}
			}
			if len(zs) < 2 {
				continue
			}
			sort.Float64s(zs)
			// Contains counts crossings strictly above the point, so
			// a centre is inside iff the number of crossings ≤ cz is
			// odd: the half-open intervals [z₁,z₂) ∪ [z₃,z₄) ∪ ….
			for i := 0; i+1 < len(zs); i += 2 {
				lo, hi := zs[i], zs[i+1]
				for z := 0; z < g.NZ; z++ {
					cz := g.Origin.Z + g.H*(float64(z)+0.5)
					if cz >= lo && cz < hi {
						mask[(y*g.NX+x)*g.NZ+z] = true
					}
				}
			}
		}
	}
	return mask
}

// rayZHeight returns the z height where the vertical line through (x, y)
// pierces triangle t, using the same projection test as rayZIntersects.
func rayZHeight(t Triangle, x, y float64) (float64, bool) {
	x0, y0 := t.V[0].X, t.V[0].Y
	x1, y1 := t.V[1].X, t.V[1].Y
	x2, y2 := t.V[2].X, t.V[2].Y
	d := (y1-y2)*(x0-x2) + (x2-x1)*(y0-y2)
	if d == 0 {
		return 0, false
	}
	a := ((y1-y2)*(x-x2) + (x2-x1)*(y-y2)) / d
	b := ((y2-y0)*(x-x2) + (x0-x2)*(y-y2)) / d
	c := 1 - a - b
	if a < 0 || b < 0 || c < 0 {
		return 0, false
	}
	return a*t.V[0].Z + b*t.V[1].Z + c*t.V[2].Z, true
}
