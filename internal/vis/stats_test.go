package vis

import (
	"math"
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

func constantField(nx, ny, nz int, ux float64) *core.MacroField {
	m := &core.MacroField{
		NX: nx, NY: ny, NZ: nz,
		Rho: make([]float64, nx*ny*nz),
		Ux:  make([]float64, nx*ny*nz),
		Uy:  make([]float64, nx*ny*nz),
		Uz:  make([]float64, nx*ny*nz),
	}
	for i := range m.Ux {
		m.Rho[i] = 1
		m.Ux[i] = ux
	}
	return m
}

func TestStatisticsMeanAndVariance(t *testing.T) {
	s := NewStatistics(3, 2, 2)
	// A deterministic oscillation: ux alternates 0.04 ± 0.01.
	for i := 0; i < 100; i++ {
		v := 0.04 + 0.01*float64(1-2*(i%2))
		if err := s.Add(constantField(3, 2, 2, v)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Samples() != 100 {
		t.Fatalf("samples = %d", s.Samples())
	}
	mean := s.Mean()
	if math.Abs(mean.Ux[0]-0.04) > 1e-12 {
		t.Errorf("mean ux = %v, want 0.04", mean.Ux[0])
	}
	// Variance of ±0.01 alternation: 0.0001 (sample variance ≈ 1e-4).
	varX := s.Variance(0)
	if math.Abs(varX[0]-1e-4*100.0/99.0) > 1e-9 {
		t.Errorf("var ux = %v, want ≈1.0101e-4", varX[0])
	}
	if v := s.Variance(1); v[0] != 0 {
		t.Errorf("uy variance = %v, want 0", v[0])
	}
	// TKE = ½ var(ux) here.
	k := s.TKE()
	if math.Abs(k[0]-varX[0]/2) > 1e-12 {
		t.Errorf("TKE = %v, want %v", k[0], varX[0]/2)
	}
	ti := s.TurbulenceIntensity(0, 0.04)
	want := math.Sqrt(2*k[0]/3) / 0.04
	if math.Abs(ti-want) > 1e-12 {
		t.Errorf("TI = %v, want %v", ti, want)
	}
}

func TestStatisticsDegenerate(t *testing.T) {
	s := NewStatistics(2, 2, 1)
	if v := s.Variance(0); v[0] != 0 {
		t.Error("variance of zero samples must be 0")
	}
	if k := s.TKE(); k[0] != 0 {
		t.Error("TKE of zero samples must be 0")
	}
	if s.TurbulenceIntensity(0, 1) != 0 {
		t.Error("TI of zero samples must be 0")
	}
	if err := s.Add(constantField(3, 3, 3, 0)); err == nil {
		t.Error("dimension mismatch must error")
	}
}

// TestStatisticsOnLES: accumulate statistics over a real turbulent-ish LES
// run; the TKE behind an obstacle exceeds the TKE in the free stream.
func TestStatisticsOnLES(t *testing.T) {
	if testing.Short() {
		t.Skip("long physics test")
	}
	l, err := core.NewLattice(&lattice.D3Q19, 48, 16, 1, 0.52)
	if err != nil {
		t.Fatal(err)
	}
	l.Smagorinsky = 0.17
	// Sustain the flow through the periodic box with a body force.
	l.Force = [3]float64{8e-6, 0, 0}
	// A bluff plate generating an unsteady wake.
	for y := 5; y <= 10; y++ {
		l.SetWall(12, y, 0)
	}
	for y := 0; y < 16; y++ {
		for x := 0; x < 48; x++ {
			if l.CellTypeAt(x, y, 0) == core.Fluid {
				uy := 0.0
				if x > 12 && x < 20 && y > 8 {
					uy = 0.01
				}
				l.SetCell(x, y, 0, 1, 0.1, uy, 0)
			}
		}
	}
	stats := NewStatistics(48, 16, 1)
	for s := 0; s < 1500; s++ {
		l.PeriodicAll()
		l.StepFused()
		if s > 500 {
			if err := stats.Add(l.ComputeMacro()); err != nil {
				t.Fatal(err)
			}
		}
	}
	k := stats.TKE()
	m := stats.Mean()
	// The mean wake velocity lags the bypass flow (recirculation).
	if m.Ux[m.Idx(14, 8, 0)] >= m.Ux[m.Idx(14, 1, 0)] {
		t.Errorf("mean wake velocity should lag the bypass: %v vs %v",
			m.Ux[m.Idx(14, 8, 0)], m.Ux[m.Idx(14, 1, 0)])
	}
	// Turbulence is produced in the plate's shear layers: the global TKE
	// maximum sits downstream of the plate, off the wake centreline, and
	// the field is strongly inhomogeneous.
	maxK, maxI, sumK := 0.0, 0, 0.0
	for i, v := range k {
		sumK += v
		if v > maxK {
			maxK, maxI = v, i
		}
	}
	meanK := sumK / float64(len(k))
	if maxK < 1.5*meanK {
		t.Errorf("TKE field too homogeneous: max %v vs mean %v", maxK, meanK)
	}
	mz := maxI % m.NZ
	mx := (maxI / m.NZ) % m.NX
	my := maxI / (m.NZ * m.NX)
	_ = mz
	if mx <= 12 {
		t.Errorf("TKE maximum at x=%d, want downstream of the plate (x>12)", mx)
	}
	if my >= 6 && my <= 9 {
		t.Errorf("TKE maximum at y=%d sits in the bubble core, want the shear layers", my)
	}
}
