package vis

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestWriteVTK(t *testing.T) {
	m := solidRotation(4, 3, 2, 0.01)
	var buf bytes.Buffer
	if err := WriteVTK(&buf, m, "test field"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET STRUCTURED_POINTS",
		"DIMENSIONS 4 3 2",
		"POINT_DATA 24",
		"SCALARS density double 1",
		"VECTORS velocity double",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	// 24 density lines + 24 vector lines between the markers.
	sc := bufio.NewScanner(strings.NewReader(out))
	counting := false
	n := 0
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "LOOKUP_TABLE") {
			counting = true
			continue
		}
		if strings.HasPrefix(line, "VECTORS") {
			break
		}
		if counting {
			n++
		}
	}
	if n != 24 {
		t.Errorf("VTK has %d density values, want 24", n)
	}
}

func TestWriteTecplot(t *testing.T) {
	m := solidRotation(3, 3, 2, 0.01)
	var buf bytes.Buffer
	if err := WriteTecplot(&buf, m, "tp"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ZONE I=3, J=3, K=2, DATAPACKING=POINT") {
		t.Errorf("Tecplot header wrong:\n%s", out[:120])
	}
	lines := strings.Count(out, "\n")
	// 3 header lines + 18 data rows.
	if lines != 3+18 {
		t.Errorf("Tecplot has %d lines, want 21", lines)
	}
	// First data row is the origin point with rho=1.
	sc := bufio.NewScanner(strings.NewReader(out))
	for i := 0; i < 4; i++ {
		sc.Scan()
	}
	var x, y, z int
	var rho, u, v, w float64
	if _, err := fmt.Sscan(sc.Text(), &x, &y, &z, &rho, &u, &v, &w); err != nil {
		t.Fatalf("parsing data row %q: %v", sc.Text(), err)
	}
	if x != 0 || y != 0 || z != 0 || rho != 1 {
		t.Errorf("first row = %s", sc.Text())
	}
}

// TestStreamlinesSolidRotation: streamlines of a solid rotation close on
// themselves (circles): after one period the line returns near its seed.
func TestStreamlinesSolidRotation(t *testing.T) {
	const n = 33
	omega := 0.02
	m := solidRotation(n, n, 1, omega)
	seed := Point2{X: float64(n-1)/2 + 8, Y: float64(n-1) / 2}
	// One revolution takes 2π/ω time units; with h=1 each step advances
	// one time unit.
	period := int(2*math.Pi/omega + 0.5)
	lines := Streamlines2D(m, AxisZ, 0, []Point2{seed}, 1, period)
	if len(lines) != 1 {
		t.Fatalf("%d lines", len(lines))
	}
	line := lines[0]
	if len(line) < period-5 {
		t.Fatalf("line stopped early: %d points", len(line))
	}
	// Radius is conserved along the line (midpoint integrator drift is
	// small).
	cx, cy := float64(n-1)/2, float64(n-1)/2
	r0 := math.Hypot(seed.X-cx, seed.Y-cy)
	for i, p := range line {
		r := math.Hypot(p.X-cx, p.Y-cy)
		if math.Abs(r-r0) > 0.35 {
			t.Fatalf("radius drifted at point %d: %v vs %v", i, r, r0)
		}
	}
	// The final point has completed roughly one revolution: close to the
	// seed.
	last := line[len(line)-1]
	if math.Hypot(last.X-seed.X, last.Y-seed.Y) > 2.5 {
		t.Errorf("streamline did not close: end %v vs seed %v", last, seed)
	}
}

func TestStreamlineStopsAtSolid(t *testing.T) {
	m := solidRotation(16, 16, 1, 0)
	// Uniform +x flow with a solid column at x=10.
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			i := m.Idx(x, y, 0)
			m.Ux[i] = 0.05
			m.Uy[i] = 0
			if x == 10 {
				m.Rho[i] = 0 // solid marker
			}
		}
	}
	lines := Streamlines2D(m, AxisZ, 0, []Point2{{X: 2, Y: 8}}, 1, 1000)
	last := lines[0][len(lines[0])-1]
	if last.X > 11 {
		t.Errorf("streamline passed through the solid: end %v", last)
	}
	if len(lines[0]) < 5 {
		t.Errorf("streamline stopped immediately: %d points", len(lines[0]))
	}
}

func TestDrawStreamlines(t *testing.T) {
	lines := [][]Point2{{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 3, Y: 1}}}
	s := DrawStreamlines(6, 4, lines)
	if s.At(2, 1) != 1 || s.At(0, 0) != 0 {
		t.Error("raster wrong")
	}
	// Out-of-range points are clipped, not panicking.
	DrawStreamlines(2, 2, [][]Point2{{{X: -5, Y: 99}}})
}
