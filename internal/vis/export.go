package vis

import (
	"bufio"
	"fmt"
	"io"

	"sunwaylb/internal/core"
)

// This file implements the post-processing export formats §IV-B promises:
// "several kinds of post processing interfaces are supported by our
// framework, providing proper formats of data, data analysis and
// visualization tools such as ParaView and Tecplot".

// WriteVTK writes the macroscopic field as a legacy-ASCII VTK structured-
// points dataset (readable by ParaView): density as a scalar field and
// velocity as a vector field on the cell-centre grid.
func WriteVTK(w io.Writer, m *core.MacroField, title string) error {
	bw := bufio.NewWriter(w)
	n := m.NX * m.NY * m.NZ
	fmt.Fprintf(bw, "# vtk DataFile Version 3.0\n%s\nASCII\n", title)
	fmt.Fprintf(bw, "DATASET STRUCTURED_POINTS\n")
	fmt.Fprintf(bw, "DIMENSIONS %d %d %d\n", m.NX, m.NY, m.NZ)
	fmt.Fprintf(bw, "ORIGIN 0 0 0\nSPACING 1 1 1\n")
	fmt.Fprintf(bw, "POINT_DATA %d\n", n)

	// VTK structured points iterate x fastest, then y, then z.
	fmt.Fprintf(bw, "SCALARS density double 1\nLOOKUP_TABLE default\n")
	for z := 0; z < m.NZ; z++ {
		for y := 0; y < m.NY; y++ {
			for x := 0; x < m.NX; x++ {
				fmt.Fprintf(bw, "%g\n", m.Rho[m.Idx(x, y, z)])
			}
		}
	}
	fmt.Fprintf(bw, "VECTORS velocity double\n")
	for z := 0; z < m.NZ; z++ {
		for y := 0; y < m.NY; y++ {
			for x := 0; x < m.NX; x++ {
				i := m.Idx(x, y, z)
				fmt.Fprintf(bw, "%g %g %g\n", m.Ux[i], m.Uy[i], m.Uz[i])
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("vis: writing VTK: %w", err)
	}
	return nil
}

// WriteTecplot writes the field as a Tecplot ASCII POINT-format zone with
// variables x, y, z, rho, u, v, w.
func WriteTecplot(w io.Writer, m *core.MacroField, title string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "TITLE = \"%s\"\n", title)
	fmt.Fprintf(bw, "VARIABLES = \"x\", \"y\", \"z\", \"rho\", \"u\", \"v\", \"w\"\n")
	fmt.Fprintf(bw, "ZONE I=%d, J=%d, K=%d, DATAPACKING=POINT\n", m.NX, m.NY, m.NZ)
	for z := 0; z < m.NZ; z++ {
		for y := 0; y < m.NY; y++ {
			for x := 0; x < m.NX; x++ {
				i := m.Idx(x, y, z)
				fmt.Fprintf(bw, "%d %d %d %g %g %g %g\n",
					x, y, z, m.Rho[i], m.Ux[i], m.Uy[i], m.Uz[i])
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("vis: writing Tecplot: %w", err)
	}
	return nil
}

// Point2 is a point of a 2-D streamline in slice coordinates.
type Point2 struct{ X, Y float64 }

// Streamlines2D integrates streamlines of the in-plane velocity on the
// plane axis=pos, starting from the given seeds, with second-order
// (midpoint) steps of size h. Integration stops when a line leaves the
// domain, enters a solid (zero-density) cell, or stalls. These are the
// streamlines of the paper's Fig. 18(1).
func Streamlines2D(m *core.MacroField, axis Axis, pos int, seeds []Point2, h float64, maxSteps int) [][]Point2 {
	u := ComponentSlice(m, axis, pos, inPlane(axis, 0))
	v := ComponentSlice(m, axis, pos, inPlane(axis, 1))
	rho := RhoSlice(m, axis, pos)

	sample := func(s *Slice, x, y float64) (float64, bool) {
		// Bilinear interpolation on cell centres.
		if x < 0 || y < 0 || x > float64(s.W-1) || y > float64(s.H-1) {
			return 0, false
		}
		i0, j0 := int(x), int(y)
		i1, j1 := i0+1, j0+1
		if i1 >= s.W {
			i1 = i0
		}
		if j1 >= s.H {
			j1 = j0
		}
		fx, fy := x-float64(i0), y-float64(j0)
		return s.At(i0, j0)*(1-fx)*(1-fy) + s.At(i1, j0)*fx*(1-fy) +
			s.At(i0, j1)*(1-fx)*fy + s.At(i1, j1)*fx*fy, true
	}

	var out [][]Point2
	for _, seed := range seeds {
		line := []Point2{seed}
		p := seed
		for step := 0; step < maxSteps; step++ {
			r, ok := sample(rho, p.X, p.Y)
			if !ok || r < 0.5 {
				// Outside, or inside/adjacent to a solid cell
				// (solid cells carry zero density; interpolation
				// dips below ½ within one cell of them).
				break
			}
			ux, ok1 := sample(u, p.X, p.Y)
			uy, ok2 := sample(v, p.X, p.Y)
			if !ok1 || !ok2 {
				break
			}
			speed := ux*ux + uy*uy
			if speed < 1e-20 {
				break // stagnation
			}
			// Midpoint step.
			mx, my := p.X+0.5*h*ux, p.Y+0.5*h*uy
			ux2, ok3 := sample(u, mx, my)
			uy2, ok4 := sample(v, mx, my)
			if !ok3 || !ok4 {
				break
			}
			p = Point2{p.X + h*ux2, p.Y + h*uy2}
			line = append(line, p)
		}
		out = append(out, line)
	}
	return out
}

// inPlane maps a slice axis to the velocity components lying in the plane
// (matching the i/j ordering of extract).
func inPlane(axis Axis, k int) int {
	switch axis {
	case AxisX: // plane (y, z)
		return []int{1, 2}[k]
	case AxisY: // plane (x, z)
		return []int{0, 2}[k]
	default: // AxisZ: plane (x, y)
		return []int{0, 1}[k]
	}
}

// DrawStreamlines rasterises streamlines onto a slice-sized scalar mask
// (1 on the line, 0 elsewhere) that can be blended or rendered with
// WritePPM.
func DrawStreamlines(w, h int, lines [][]Point2) *Slice {
	s := &Slice{W: w, H: h, Data: make([]float64, w*h)}
	for _, line := range lines {
		for _, p := range line {
			i, j := int(p.X+0.5), int(p.Y+0.5)
			if i >= 0 && i < w && j >= 0 && j < h {
				s.Data[j*w+i] = 1
			}
		}
	}
	return s
}
