package vis

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sunwaylb/internal/core"
)

// solidRotation builds a macro field with u = ω × r around the z axis —
// known vorticity 2ω and positive Q everywhere.
func solidRotation(nx, ny, nz int, omega float64) *core.MacroField {
	m := &core.MacroField{
		NX: nx, NY: ny, NZ: nz,
		Rho: make([]float64, nx*ny*nz),
		Ux:  make([]float64, nx*ny*nz),
		Uy:  make([]float64, nx*ny*nz),
		Uz:  make([]float64, nx*ny*nz),
	}
	cx, cy := float64(nx-1)/2, float64(ny-1)/2
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			for z := 0; z < nz; z++ {
				i := m.Idx(x, y, z)
				m.Rho[i] = 1
				m.Ux[i] = -omega * (float64(y) - cy)
				m.Uy[i] = omega * (float64(x) - cx)
			}
		}
	}
	return m
}

// pureShear builds u = (γy, 0, 0): zero Q… actually Q = −γ²/4 < 0 (strain
// equals rotation gives Q=0 only for irrotational strain; simple shear has
// ‖S‖²=‖Ω‖², so Q = 0). Used to check the sign conventions.
func pureShear(nx, ny, nz int, gamma float64) *core.MacroField {
	m := solidRotation(nx, ny, nz, 0)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			for z := 0; z < nz; z++ {
				i := m.Idx(x, y, z)
				m.Ux[i] = gamma * float64(y)
				m.Uy[i] = 0
			}
		}
	}
	return m
}

func TestVorticitySolidRotation(t *testing.T) {
	omega := 0.01
	m := solidRotation(9, 9, 3, omega)
	w := VorticityZ(m)
	// Interior points: ω_z = 2ω exactly (linear field, central diffs).
	got := w[m.Idx(4, 4, 1)]
	if math.Abs(got-2*omega) > 1e-12 {
		t.Errorf("vorticity = %v, want %v", got, 2*omega)
	}
}

func TestQCriterionSigns(t *testing.T) {
	rot := QCriterion(solidRotation(9, 9, 3, 0.01))
	m := solidRotation(9, 9, 3, 0.01)
	if q := rot[m.Idx(4, 4, 1)]; q <= 0 {
		t.Errorf("solid rotation Q = %v, want > 0", q)
	}
	shear := QCriterion(pureShear(9, 9, 3, 0.01))
	if q := shear[m.Idx(4, 4, 1)]; math.Abs(q) > 1e-12 {
		t.Errorf("simple shear Q = %v, want 0", q)
	}
}

func TestSlices(t *testing.T) {
	m := solidRotation(5, 7, 3, 0.02)
	s := SpeedSlice(m, AxisZ, 1)
	if s.W != 5 || s.H != 7 {
		t.Fatalf("z slice dims %d×%d", s.W, s.H)
	}
	// The rotation centre is slow, the corner fast.
	if s.At(2, 3) > s.At(0, 0) {
		t.Error("speed profile of solid rotation wrong")
	}
	sx := RhoSlice(m, AxisX, 2)
	if sx.W != 7 || sx.H != 3 {
		t.Fatalf("x slice dims %d×%d", sx.W, sx.H)
	}
	lo, hi := sx.MinMax()
	if lo != 1 || hi != 1 {
		t.Errorf("rho slice range [%v,%v], want [1,1]", lo, hi)
	}
	sy := ComponentSlice(m, AxisY, 3, 0)
	if sy.W != 5 || sy.H != 3 {
		t.Fatalf("y slice dims %d×%d", sy.W, sy.H)
	}
}

func TestFieldSlice(t *testing.T) {
	m := solidRotation(4, 4, 4, 0.01)
	q := QCriterion(m)
	s := FieldSlice(m, q, AxisZ, 2)
	if s.W != 4 || s.H != 4 {
		t.Fatal("field slice dims")
	}
	if s.At(1, 1) != q[m.Idx(1, 1, 2)] {
		t.Error("field slice values wrong")
	}
}

func TestWritePPM(t *testing.T) {
	m := solidRotation(8, 6, 3, 0.02)
	s := SpeedSlice(m, AxisZ, 1)
	var buf bytes.Buffer
	if err := WritePPM(&buf, s, 0, 0); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !strings.HasPrefix(string(data), "P6\n8 6\n255\n") {
		t.Errorf("PPM header wrong: %q", data[:20])
	}
	wantLen := len("P6\n8 6\n255\n") + 8*6*3
	if len(data) != wantLen {
		t.Errorf("PPM length %d, want %d", len(data), wantLen)
	}
	// Constant slice must not divide by zero.
	var buf2 bytes.Buffer
	if err := WritePPM(&buf2, RhoSlice(m, AxisZ, 1), 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDivergingColormapEnds(t *testing.T) {
	r, g, b := diverging(0)
	if r != 0 || g != 0 || b != 255 {
		t.Errorf("t=0 -> (%d,%d,%d), want blue", r, g, b)
	}
	r, g, b = diverging(1)
	if r != 255 || g != 0 || b != 0 {
		t.Errorf("t=1 -> (%d,%d,%d), want red", r, g, b)
	}
	r, g, b = diverging(0.5)
	if r != 255 || g != 255 || b != 255 {
		t.Errorf("t=0.5 -> (%d,%d,%d), want white", r, g, b)
	}
	// Clamping.
	if r, _, _ := diverging(-3); r != 0 {
		t.Error("clamp low failed")
	}
	if _, g, _ := diverging(7); g != 0 {
		t.Error("clamp high failed")
	}
}

func TestMIP(t *testing.T) {
	m := solidRotation(6, 5, 4, 0.01)
	q := QCriterion(m)
	s := MIP(m, q, AxisZ)
	if s.W != 6 || s.H != 5 {
		t.Fatalf("MIP dims %dx%d", s.W, s.H)
	}
	// The projection holds the per-column maximum.
	want := math.Inf(-1)
	for z := 0; z < 4; z++ {
		if v := q[m.Idx(2, 2, z)]; v > want {
			want = v
		}
	}
	if s.At(2, 2) != want {
		t.Errorf("MIP(2,2) = %v, want %v", s.At(2, 2), want)
	}
	sx := MIP(m, q, AxisX)
	if sx.W != 5 || sx.H != 4 {
		t.Fatalf("MIP x dims %dx%d", sx.W, sx.H)
	}
	sy := MIP(m, q, AxisY)
	if sy.W != 6 || sy.H != 4 {
		t.Fatalf("MIP y dims %dx%d", sy.W, sy.H)
	}
}

func TestIsoCount(t *testing.T) {
	field := []float64{-1, 0, 0.5, 2, 3}
	if got := IsoCount(field, 0); got != 3 {
		t.Errorf("IsoCount = %d, want 3", got)
	}
	if got := IsoCount(field, 10); got != 0 {
		t.Errorf("IsoCount above max = %d", got)
	}
	// Solid rotation has positive Q everywhere in the interior.
	m := solidRotation(8, 8, 3, 0.01)
	q := QCriterion(m)
	if IsoCount(q, 0) == 0 {
		t.Error("solid rotation must have Q>0 cells")
	}
}
