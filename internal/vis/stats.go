package vis

import (
	"fmt"
	"math"

	"sunwaylb/internal/core"
)

// Statistics accumulates time-averaged turbulence statistics over a run —
// mean velocity, velocity variance (the diagonal Reynolds stresses) and
// turbulent kinetic energy — using Welford's numerically stable online
// update. This is the post-processing an LES like the paper's urban wind
// case (§V-C) feeds into wind-resource assessment.
type Statistics struct {
	NX, NY, NZ int
	n          int
	meanU      [3][]float64
	m2U        [3][]float64
}

// NewStatistics allocates an accumulator matching the field dimensions.
func NewStatistics(nx, ny, nz int) *Statistics {
	s := &Statistics{NX: nx, NY: ny, NZ: nz}
	for c := 0; c < 3; c++ {
		s.meanU[c] = make([]float64, nx*ny*nz)
		s.m2U[c] = make([]float64, nx*ny*nz)
	}
	return s
}

// Add accumulates one snapshot; dimensions must match.
func (s *Statistics) Add(m *core.MacroField) error {
	if m.NX != s.NX || m.NY != s.NY || m.NZ != s.NZ {
		return fmt.Errorf("vis: statistics field %d×%d×%d does not match %d×%d×%d",
			m.NX, m.NY, m.NZ, s.NX, s.NY, s.NZ)
	}
	s.n++
	comp := [3][]float64{m.Ux, m.Uy, m.Uz}
	for c := 0; c < 3; c++ {
		mean, m2, u := s.meanU[c], s.m2U[c], comp[c]
		for i := range u {
			delta := u[i] - mean[i]
			mean[i] += delta / float64(s.n)
			m2[i] += delta * (u[i] - mean[i])
		}
	}
	return nil
}

// Samples returns the number of accumulated snapshots.
func (s *Statistics) Samples() int { return s.n }

// Mean returns the time-averaged velocity field.
func (s *Statistics) Mean() *core.MacroField {
	out := &core.MacroField{
		NX: s.NX, NY: s.NY, NZ: s.NZ,
		Rho: make([]float64, s.NX*s.NY*s.NZ),
		Ux:  append([]float64(nil), s.meanU[0]...),
		Uy:  append([]float64(nil), s.meanU[1]...),
		Uz:  append([]float64(nil), s.meanU[2]...),
	}
	for i := range out.Rho {
		out.Rho[i] = 1
	}
	return out
}

// Variance returns the velocity variance ⟨u′_c u′_c⟩ of one component
// (0=x, 1=y, 2=z) — the diagonal Reynolds stresses.
func (s *Statistics) Variance(c int) []float64 {
	out := make([]float64, len(s.m2U[c]))
	if s.n < 2 {
		return out
	}
	for i, v := range s.m2U[c] {
		out[i] = v / float64(s.n-1)
	}
	return out
}

// TKE returns the turbulent kinetic energy field k = ½ Σ_c ⟨u′_c u′_c⟩.
func (s *Statistics) TKE() []float64 {
	out := make([]float64, s.NX*s.NY*s.NZ)
	if s.n < 2 {
		return out
	}
	for c := 0; c < 3; c++ {
		for i, v := range s.m2U[c] {
			out[i] += 0.5 * v / float64(s.n-1)
		}
	}
	return out
}

// TurbulenceIntensity returns sqrt(2k/3)/uRef at one cell of the macro
// index space, a standard wind-engineering metric.
func (s *Statistics) TurbulenceIntensity(i int, uRef float64) float64 {
	if uRef == 0 || s.n < 2 {
		return 0
	}
	k := 0.0
	for c := 0; c < 3; c++ {
		k += 0.5 * s.m2U[c][i] / float64(s.n-1)
	}
	return math.Sqrt(2*k/3) / uRef
}
