// Package gpu models the paper's GPU-cluster port of SunwayLB (§IV-E):
// nodes with 2 Xeon 6248R CPUs and 8 RTX 3090 GPUs, the CUDA kernel with
// the same fused D3Q19 update, pageable vs pinned host transfers,
// host-staged MPI vs NCCL-direct halo exchange, the
// computation-optimization pass (precomputed divisions/squares), and the
// cluster strong scaling over InfiniBand.
//
// The physics of the GPU port is the same fused kernel validated in
// internal/core and internal/swlb; what differs — and what Figs. 11 and 17
// measure — is where the bytes travel, so this package is a data-path
// timing model in the same spirit as internal/scaling.
package gpu

import (
	"math"

	"sunwaylb/internal/network"
	"sunwaylb/internal/perf"
)

// Spec holds the node and device constants.
type Spec struct {
	Name string
	// DeviceBandwidth is one GPU's memory bandwidth (RTX 3090: 936 GB/s).
	DeviceBandwidth float64
	// GPUsPerNode is the device count per node.
	GPUsPerNode int
	// CPUBandwidth is the effective stream bandwidth of one CPU socket
	// running the plain MPI stencil (the Fig. 11 baseline).
	CPUBandwidth float64
	// PageableBandwidth and PinnedBandwidth are host↔device copy rates;
	// a cudaMemcpy from pageable memory first bounces through a pinned
	// staging buffer (§IV-E), roughly halving throughput.
	PageableBandwidth float64
	PinnedBandwidth   float64
	// P2PBandwidth is the direct GPU↔GPU rate NCCL uses inside a node.
	P2PBandwidth float64
	// KernelLaunch is the per-kernel launch latency.
	KernelLaunch float64
	// BaseKernelEff and TunedKernelEff are the fractions of device
	// bandwidth the fused kernel sustains before and after the
	// computation optimization (precomputing divisions and squares —
	// GPUs have no hardware instruction for FP64 division, §IV-E).
	BaseKernelEff, TunedKernelEff float64
}

// RTX3090Cluster is the paper's test system, calibrated to its §IV-E
// numbers (191× node speedup, 83.8% kernel bandwidth utilization, 200×
// 1-GPU-vs-1-core).
var RTX3090Cluster = Spec{
	Name:              "2×Xeon 6248R + 8×RTX 3090 per node",
	DeviceBandwidth:   936e9,
	GPUsPerNode:       8,
	CPUBandwidth:      60e9,
	PageableBandwidth: 6e9,
	PinnedBandwidth:   12e9,
	P2PBandwidth:      20e9,
	KernelLaunch:      6e-6,
	BaseKernelEff:     0.60,
	TunedKernelEff:    0.838,
}

// Options selects the optimization stages of Fig. 11.
type Options struct {
	// KernelFusion fuses propagation and collision (stage 2; applies on
	// both the CPU baseline and the GPU).
	KernelFusion bool
	// Offload moves the kernels to the GPUs with pinned-memory copies
	// and domain decomposition across the devices (stage 3,
	// "Parallelization" in Fig. 11).
	Offload bool
	// ComputeOpt applies the division/square precomputation (stage 4).
	ComputeOpt bool
	// NCCL exchanges intra-node halos GPU-to-GPU instead of staging
	// through host memory and MPI (stage 5).
	NCCL bool
	// Pageable forces the host-staged copies through pageable memory
	// (an extra bounce via the CUDA staging buffer); Offload normally
	// allocates with cudaMallocHost (§IV-E), i.e. pinned.
	Pageable bool
	// Overlap runs the halo exchange concurrently with the interior
	// kernel on separate CUDA streams (used by the cluster runs).
	Overlap bool
}

// Fig11Final is the fully optimized single-node configuration.
func Fig11Final() Options {
	return Options{KernelFusion: true, Offload: true, ComputeOpt: true, NCCL: true}
}

// popBytes is the wire size of one halo cell's populations.
const popBytes = 19 * 8

// NodeStepTime models one time step of a nx×ny×nz subdomain on one node.
// The subdomain is decomposed across the node's GPUs along y (the shorter
// faces), matching the blocking described in §IV-E.
func (s Spec) NodeStepTime(nx, ny, nz int, opt Options) float64 {
	cells := float64(nx) * float64(ny) * float64(nz)
	bytesPerCell := perf.BytesPerLUP
	if !opt.KernelFusion {
		// Unfused: the intermediate field round-trips through memory.
		bytesPerCell *= 2
	}
	if !opt.Offload {
		// CPU baseline: one socket streams the whole subdomain.
		return cells * bytesPerCell / s.CPUBandwidth
	}
	eff := s.BaseKernelEff
	if opt.ComputeOpt {
		eff = s.TunedKernelEff
	}
	perGPU := cells / float64(s.GPUsPerNode)
	kernelT := perGPU*bytesPerCell/(s.DeviceBandwidth*eff) + s.KernelLaunch

	// Intra-node halo exchange: each interior GPU swaps two y faces of
	// nx×nz cells with its neighbours.
	faceBytes := float64(nx) * float64(nz) * popBytes
	var commT float64
	if opt.NCCL {
		// Direct device-to-device transfers.
		commT = 2 * faceBytes / s.P2PBandwidth
	} else {
		// Staged: device→host, host-side MPI copy, host→device.
		// Offload normally implies cudaMallocHost-pinned buffers
		// (§IV-E); pageable memory bounces through a staging buffer
		// at roughly half the throughput.
		hostBW := s.PinnedBandwidth
		if opt.Pageable {
			hostBW = s.PageableBandwidth
		}
		commT = 2 * (faceBytes/hostBW + faceBytes/s.CPUBandwidth + faceBytes/hostBW)
	}
	if opt.Overlap {
		return math.Max(kernelT, commT) + s.KernelLaunch
	}
	return kernelT + commT
}

// PhaseTime is one modelled phase of a node step (trace decomposition).
type PhaseTime struct {
	Name string
	Sec  float64
}

// StepPhases decomposes the NodeStepTime model into its traced phases:
// "cpu-kernel" for the no-offload baseline; otherwise "kernel" plus the
// halo-exchange path — "p2p" under NCCL, or the staged
// "d2h"/"host-mpi"/"h2d" triple. The phases are the model's components
// (each face swap counted once per direction, hence the 2× factors);
// NodeStepTime remains the authoritative total, which under Overlap is
// max(kernel, comm) + launch rather than the sum.
func (s Spec) StepPhases(nx, ny, nz int, opt Options) []PhaseTime {
	cells := float64(nx) * float64(ny) * float64(nz)
	bytesPerCell := perf.BytesPerLUP
	if !opt.KernelFusion {
		bytesPerCell *= 2
	}
	if !opt.Offload {
		return []PhaseTime{{Name: "cpu-kernel", Sec: cells * bytesPerCell / s.CPUBandwidth}}
	}
	eff := s.BaseKernelEff
	if opt.ComputeOpt {
		eff = s.TunedKernelEff
	}
	perGPU := cells / float64(s.GPUsPerNode)
	kernelT := perGPU*bytesPerCell/(s.DeviceBandwidth*eff) + s.KernelLaunch
	faceBytes := float64(nx) * float64(nz) * popBytes
	phases := []PhaseTime{{Name: "kernel", Sec: kernelT}}
	if opt.NCCL {
		phases = append(phases, PhaseTime{Name: "p2p", Sec: 2 * faceBytes / s.P2PBandwidth})
		return phases
	}
	hostBW := s.PinnedBandwidth
	if opt.Pageable {
		hostBW = s.PageableBandwidth
	}
	return append(phases,
		PhaseTime{Name: "d2h", Sec: 2 * faceBytes / hostBW},
		PhaseTime{Name: "host-mpi", Sec: 2 * faceBytes / s.CPUBandwidth},
		PhaseTime{Name: "h2d", Sec: 2 * faceBytes / hostBW},
	)
}

// NodeRate returns the node's update rate for the subdomain.
func (s Spec) NodeRate(nx, ny, nz int, opt Options) perf.LUPS {
	t := s.NodeStepTime(nx, ny, nz, opt)
	return perf.Rate(int64(nx)*int64(ny)*int64(nz), t)
}

// Stage is one bar of the Fig. 11 ablation.
type Stage struct {
	Name     string
	StepTime float64
	Speedup  float64
}

// Fig11Domain is the wind-field subdomain computed by one node in the
// Fig. 11 measurement (the Fig. 17 mesh).
var Fig11Domain = [3]int{1400, 2800, 100}

// Fig11Ablation reproduces the GPU-node optimization staircase: CPU →
// kernel fusion → parallelization (GPU offload + pinned memory) →
// computation optimization → communication optimization (NCCL). The paper
// reports 191× total.
func Fig11Ablation(s Spec) []Stage {
	nx, ny, nz := Fig11Domain[0], Fig11Domain[1], Fig11Domain[2]
	cfgs := []struct {
		name string
		opt  Options
	}{
		{"CPU", Options{}},
		{"Kernel Fusion", Options{KernelFusion: true}},
		{"Parallelization", Options{KernelFusion: true, Offload: true}},
		{"Computation Opt.", Options{KernelFusion: true, Offload: true, ComputeOpt: true}},
		{"Communication Opt.", Fig11Final()},
	}
	stages := make([]Stage, 0, len(cfgs))
	var base float64
	for i, c := range cfgs {
		t := s.NodeStepTime(nx, ny, nz, c.opt)
		if i == 0 {
			base = t
		}
		stages = append(stages, Stage{Name: c.name, StepTime: t, Speedup: base / t})
	}
	return stages
}

// Headline returns the Fig. 11 endpoint: the cumulative node speedup and
// the kernel's device-bandwidth utilization (the paper's 191× and 83.8%).
func (s Spec) Headline() (speedup, kernelUtil float64) {
	stages := Fig11Ablation(s)
	return stages[len(stages)-1].Speedup, s.TunedKernelEff
}

// SpeedupOneGPUvsOneCore reproduces the §IV-E claim of "a speedup of 200×
// over the CPU version (1 CPU core + 1 GPU vs 1 CPU core)", measured at
// the porting stage (kernels on the GPU with pinned memory, before the
// computation optimization). The single-core baseline runs the unfused
// code and sustains roughly a tenth of the socket's effective stream
// bandwidth.
func (s Spec) SpeedupOneGPUvsOneCore() float64 {
	coreBW := s.CPUBandwidth / 10.7
	coreT := 2 * perf.BytesPerLUP / coreBW // unfused: 2× traffic
	gpuT := perf.BytesPerLUP / (s.DeviceBandwidth * s.BaseKernelEff)
	return coreT / gpuT
}

// ClusterPoint is one measurement of the Fig. 17 strong scaling.
type ClusterPoint struct {
	Nodes, GPUs int
	StepTime    float64
	Rate        perf.LUPS
	Efficiency  float64
	// BWUtil is the whole-step aggregate device-bandwidth utilization.
	BWUtil float64
}

// StrongScaling models the Fig. 17 experiment: a fixed global mesh split
// along y across nodes (and along y again across each node's GPUs), halos
// exchanged with NCCL inside nodes and over InfiniBand between nodes,
// overlapped with the interior kernel.
func (s Spec) StrongScaling(gnx, gny, gnz int, nodes []int, net network.Topology) []ClusterPoint {
	var pts []ClusterPoint
	var base ClusterPoint
	cells := int64(gnx) * int64(gny) * int64(gnz)
	opt := Fig11Final()
	opt.Overlap = true
	for i, n := range nodes {
		bny := (gny + n - 1) / n
		stepT := s.NodeStepTime(gnx, bny, gnz, opt)
		if n > 1 {
			// Two inter-node y faces, overlapped with the kernel
			// alongside the intra-node exchange: whichever of the
			// already-overlapped step or the inter-node wire is
			// longer paces the step.
			faceBytes := int64(gnx) * int64(gnz) * popBytes
			interT := net.MessageTime(faceBytes, false) * 2
			stepT = math.Max(stepT, interT)
		}
		p := ClusterPoint{
			Nodes: n, GPUs: n * s.GPUsPerNode,
			StepTime: stepT,
			Rate:     perf.Rate(cells, stepT),
		}
		p.BWUtil = perf.BandwidthUtilization(p.Rate, s.DeviceBandwidth*float64(p.GPUs))
		if i == 0 {
			base = p
		}
		p.Efficiency = perf.ParallelEfficiency(base.Rate, p.Rate, base.Nodes, p.Nodes)
		pts = append(pts, p)
	}
	return pts
}
