package gpu

import (
	"math"
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/network"
)

// TestFig11Ablation: the optimization staircase is monotone and each stage
// contributes; the final speedup lands near the paper's 191×.
func TestFig11Ablation(t *testing.T) {
	stages := Fig11Ablation(RTX3090Cluster)
	if len(stages) != 5 {
		t.Fatalf("%d stages, want 5", len(stages))
	}
	names := []string{"CPU", "Kernel Fusion", "Parallelization", "Computation Opt.", "Communication Opt."}
	for i, s := range stages {
		if s.Name != names[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, names[i])
		}
		if i > 0 && s.StepTime >= stages[i-1].StepTime {
			t.Errorf("stage %q no faster than %q", s.Name, stages[i-1].Name)
		}
		t.Logf("Fig11 %-20s %10.4f s  %6.1f×", s.Name, s.StepTime, s.Speedup)
	}
	// Fusion halves the CPU traffic.
	if r := stages[0].StepTime / stages[1].StepTime; math.Abs(r-2) > 0.01 {
		t.Errorf("fusion speedup = %.2f, want 2.0", r)
	}
	// Offload to 8 GPUs is the dominant jump.
	if r := stages[1].StepTime / stages[2].StepTime; r < 20 {
		t.Errorf("parallelization speedup = %.1f, want large (>20)", r)
	}
	final := stages[len(stages)-1]
	if math.Abs(final.Speedup-191)/191 > 0.10 {
		t.Errorf("final speedup = %.0f×, paper says 191× (±10%%)", final.Speedup)
	}
}

func TestHeadline(t *testing.T) {
	speedup, util := RTX3090Cluster.Headline()
	if math.Abs(speedup-191)/191 > 0.10 {
		t.Errorf("headline speedup = %.0f, want ≈191", speedup)
	}
	if math.Abs(util-0.838) > 1e-9 {
		t.Errorf("kernel utilization = %.3f, paper says 0.838", util)
	}
}

func TestSpeedupOneGPUvsOneCore(t *testing.T) {
	got := RTX3090Cluster.SpeedupOneGPUvsOneCore()
	if math.Abs(got-200)/200 > 0.15 {
		t.Errorf("1 GPU vs 1 core = %.0f×, paper says ≈200×", got)
	}
}

// TestFig17StrongScaling: 1→8 nodes on the 1400×2800×100 wind field, 86.3%
// efficiency at 8 nodes (64 GPUs).
func TestFig17StrongScaling(t *testing.T) {
	pts := RTX3090Cluster.StrongScaling(1400, 2800, 100,
		[]int{1, 2, 4, 8}, network.GPUClusterNet)
	last := pts[len(pts)-1]
	if last.Nodes != 8 || last.GPUs != 64 {
		t.Fatalf("endpoint = %d nodes / %d GPUs", last.Nodes, last.GPUs)
	}
	if math.Abs(last.Efficiency-0.863) > 0.08 {
		t.Errorf("8-node efficiency = %.3f, paper says 0.863 (±0.08)", last.Efficiency)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Rate <= pts[i-1].Rate {
			t.Errorf("rate non-increasing at %d nodes", pts[i].Nodes)
		}
		if pts[i].Efficiency > pts[i-1].Efficiency+1e-9 {
			t.Errorf("efficiency increased at %d nodes", pts[i].Nodes)
		}
	}
	for _, p := range pts {
		t.Logf("Fig17 %d nodes (%2d GPUs): %8.2f ms/step, eff %.1f%%, BW %.1f%%",
			p.Nodes, p.GPUs, p.StepTime*1e3, p.Efficiency*100, p.BWUtil*100)
	}
}

// TestNCCLBeatsStagedComm: the NCCL path must be faster than host staging
// for the same subdomain (the premise of the communication optimization).
func TestNCCLBeatsStagedComm(t *testing.T) {
	s := RTX3090Cluster
	base := Options{KernelFusion: true, Offload: true, ComputeOpt: true}
	nccl := base
	nccl.NCCL = true
	tStaged := s.NodeStepTime(1400, 2800, 100, base)
	tNCCL := s.NodeStepTime(1400, 2800, 100, nccl)
	if tNCCL >= tStaged {
		t.Errorf("NCCL (%v) must beat host-staged exchange (%v)", tNCCL, tStaged)
	}
}

// TestOverlapHidesComm: with overlap the step approaches the kernel time.
func TestOverlapHidesComm(t *testing.T) {
	s := RTX3090Cluster
	opt := Fig11Final()
	plain := s.NodeStepTime(1400, 2800, 100, opt)
	opt.Overlap = true
	overlapped := s.NodeStepTime(1400, 2800, 100, opt)
	if overlapped >= plain {
		t.Errorf("overlap (%v) must beat sequential (%v)", overlapped, plain)
	}
}

// TestComputeOptEffect: the division-precomputation stage improves the
// kernel by the efficiency ratio.
func TestComputeOptEffect(t *testing.T) {
	s := RTX3090Cluster
	base := Options{KernelFusion: true, Offload: true, NCCL: true}
	tuned := base
	tuned.ComputeOpt = true
	r := s.NodeStepTime(1400, 2800, 100, base) / s.NodeStepTime(1400, 2800, 100, tuned)
	want := s.TunedKernelEff / s.BaseKernelEff
	if r < 1.1 || r > want+0.1 {
		t.Errorf("compute-opt speedup = %.2f, want within (1.1, %.2f]", r, want+0.1)
	}
}

// TestPinnedBeatsPageable: the §IV-E pinned-memory claim — avoiding the
// pageable staging bounce speeds up the host-staged halo exchange.
func TestPinnedBeatsPageable(t *testing.T) {
	s := RTX3090Cluster
	pinned := Options{KernelFusion: true, Offload: true, ComputeOpt: true}
	pageable := pinned
	pageable.Pageable = true
	tPinned := s.NodeStepTime(1400, 2800, 100, pinned)
	tPageable := s.NodeStepTime(1400, 2800, 100, pageable)
	if tPinned >= tPageable {
		t.Errorf("pinned (%v) must beat pageable (%v)", tPinned, tPageable)
	}
	// The kernel time is unchanged; only the comm term shrinks, by the
	// bandwidth ratio.
	savings := tPageable - tPinned
	faceBytes := 1400.0 * 100 * popBytes
	want := 4 * (faceBytes/s.PageableBandwidth - faceBytes/s.PinnedBandwidth)
	if diff := savings - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("pinned savings = %v, want %v", savings, want)
	}
}

// TestEngineFunctional: the functional GPU engine steps the lattice and
// reports modelled node time (the psolve.Stepper contract used by the
// cluster full-stack tests).
func TestEngineFunctional(t *testing.T) {
	l, err := core.NewLattice(&lattice.D3Q19, 12, 8, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	l.InitEquilibrium(1, 0.03, 0, 0)
	eng, err := NewEngine(l, RTX3090Cluster, Fig11Final())
	if err != nil {
		t.Fatal(err)
	}
	eng.Rebuild() // no-op, part of the contract
	var total float64
	for s := 0; s < 3; s++ {
		l.PeriodicAll()
		total += eng.Step()
	}
	if eng.TotalTime != total || total <= 0 {
		t.Errorf("TotalTime = %v, sum = %v", eng.TotalTime, total)
	}
	if l.Step() != 3 {
		t.Errorf("lattice stepped %d times", l.Step())
	}
	// Rate helper agrees with step time.
	r := RTX3090Cluster.NodeRate(12, 8, 4, Fig11Final())
	want := float64(12*8*4) / RTX3090Cluster.NodeStepTime(12, 8, 4, Fig11Final())
	if math.Abs(float64(r)-want) > 1e-6 {
		t.Errorf("NodeRate = %v, want %v", float64(r), want)
	}
	// Invalid specs are rejected.
	bad := RTX3090Cluster
	bad.GPUsPerNode = 0
	if _, err := NewEngine(l, bad, Fig11Final()); err == nil {
		t.Error("invalid spec must be rejected")
	}
}
