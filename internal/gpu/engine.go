package gpu

import (
	"fmt"
	"math"

	"sunwaylb/internal/core"
	"sunwaylb/internal/trace"
)

// Engine drives a lattice functionally (the same fused kernel validated in
// internal/core — the CUDA port computes the identical update) while
// charging the GPU node's data-path timing. It implements the
// psolve.Stepper contract, so a distributed run can model a multi-node GPU
// cluster the same way swlb.Engine models Sunway core groups.
type Engine struct {
	Lat  *core.Lattice
	Spec Spec
	Opt  Options

	// LastTime is the modelled node time of the last step; TotalTime
	// accumulates.
	LastTime  float64
	TotalTime float64

	// tr records per-step kernel vs H2D/D2H/NCCL phase spans on the
	// rank's Sim-clock timeline; simCursor is the engine's position on
	// that clock. Nil disables recording.
	tr        *trace.RankTracer
	simCursor float64
}

// NewEngine validates the configuration and builds the engine.
func NewEngine(lat *core.Lattice, spec Spec, opt Options) (*Engine, error) {
	if spec.GPUsPerNode < 1 || spec.DeviceBandwidth <= 0 {
		return nil, fmt.Errorf("gpu: invalid spec %+v", spec)
	}
	return &Engine{Lat: lat, Spec: spec, Opt: opt}, nil
}

// SetTrace binds the engine to a rank's trace handle (psolve calls it
// through the traceSetter interface); nil disables recording. The Sim
// cursor resumes at the rank's watermark so supervised restarts extend
// the modelled timeline instead of overlapping it.
func (e *Engine) SetTrace(tr *trace.RankTracer) {
	e.tr = tr
	e.simCursor = tr.SimWatermark()
}

// Step advances the lattice one time step (halos must be prepared by the
// caller) and returns the modelled GPU-node step time.
func (e *Engine) Step() float64 {
	e.Lat.StepFusedParallel(0)
	e.LastTime = e.Spec.NodeStepTime(e.Lat.NX, e.Lat.NY, e.Lat.NZ, e.Opt)
	e.TotalTime += e.LastTime
	e.traceStep()
	return e.LastTime
}

// traceStep lays the step's phase decomposition onto the Sim clock:
// kernel phases on the gpu-kernel track, copies/NCCL/host MPI on the
// gpu-comm track. With Overlap the comm chain starts alongside the
// kernel (separate CUDA streams); otherwise it follows the kernel. The
// cursor then advances by the authoritative NodeStepTime, clamped so
// ulp-level drift between the phase sum and the model total can never
// break per-track timestamp monotonicity.
func (e *Engine) traceStep() {
	if e.tr == nil {
		return
	}
	t0 := e.simCursor
	kCur, cCur := t0, t0
	for _, p := range e.Spec.StepPhases(e.Lat.NX, e.Lat.NY, e.Lat.NZ, e.Opt) {
		switch p.Name {
		case "kernel", "cpu-kernel":
			e.tr.Span(trace.Sim, trace.TrackGPU, p.Name, kCur, kCur+p.Sec)
			kCur += p.Sec
			if !e.Opt.Overlap {
				cCur = kCur // single stream: comm follows the kernel
			}
		default:
			e.tr.Span(trace.Sim, trace.TrackGPUIO, p.Name, cCur, cCur+p.Sec)
			cCur += p.Sec
		}
	}
	e.simCursor = math.Max(t0+e.LastTime, math.Max(kCur, cCur))
}

// Rebuild implements the psolve.Stepper contract; the GPU timing model has
// no geometry-derived state.
func (e *Engine) Rebuild() {}
