package gpu

import (
	"fmt"

	"sunwaylb/internal/core"
)

// Engine drives a lattice functionally (the same fused kernel validated in
// internal/core — the CUDA port computes the identical update) while
// charging the GPU node's data-path timing. It implements the
// psolve.Stepper contract, so a distributed run can model a multi-node GPU
// cluster the same way swlb.Engine models Sunway core groups.
type Engine struct {
	Lat  *core.Lattice
	Spec Spec
	Opt  Options

	// LastTime is the modelled node time of the last step; TotalTime
	// accumulates.
	LastTime  float64
	TotalTime float64
}

// NewEngine validates the configuration and builds the engine.
func NewEngine(lat *core.Lattice, spec Spec, opt Options) (*Engine, error) {
	if spec.GPUsPerNode < 1 || spec.DeviceBandwidth <= 0 {
		return nil, fmt.Errorf("gpu: invalid spec %+v", spec)
	}
	return &Engine{Lat: lat, Spec: spec, Opt: opt}, nil
}

// Step advances the lattice one time step (halos must be prepared by the
// caller) and returns the modelled GPU-node step time.
func (e *Engine) Step() float64 {
	e.Lat.StepFusedParallel(0)
	e.LastTime = e.Spec.NodeStepTime(e.Lat.NX, e.Lat.NY, e.Lat.NZ, e.Opt)
	e.TotalTime += e.LastTime
	return e.LastTime
}

// Rebuild implements the psolve.Stepper contract; the GPU timing model has
// no geometry-derived state.
func (e *Engine) Rebuild() {}
