package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func queuedJob(id, tenant string, priority int) *Job {
	return &Job{
		ID:        id,
		Spec:      JobSpec{Tenant: tenant, Priority: priority},
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
}

// TestAdmissionWRR: with weights a:2 b:1 and three jobs queued per
// tenant, the dequeue order is the expanded cycle a a b a b b — tenant a
// gets exactly its weighted share, and an exhausted tenant forfeits its
// turns without stalling anyone.
func TestAdmissionWRR(t *testing.T) {
	a := newAdmission(8, map[string]int{"a": 2, "b": 1})
	for i := 0; i < 3; i++ {
		if err := a.submit(queuedJob(fmt.Sprintf("a%d", i), "a", 0)); err != nil {
			t.Fatal(err)
		}
		if err := a.submit(queuedJob(fmt.Sprintf("b%d", i), "b", 0)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"a0", "a1", "b0", "a2", "b1", "b2"}
	for i, w := range want {
		j := a.next()
		if j == nil {
			t.Fatalf("dequeue %d: queue dry, want %s", i, w)
		}
		if j.ID != w {
			t.Errorf("dequeue %d = %s, want %s", i, j.ID, w)
		}
	}
	if j := a.next(); j != nil {
		t.Errorf("drained queue still produced %s", j.ID)
	}
	if a.size() != 0 {
		t.Errorf("size = %d after drain, want 0", a.size())
	}
}

// TestAdmissionTenantBound: the per-tenant bound rejects the overflow
// submit with ErrQueueFull while other tenants stay admissible.
func TestAdmissionTenantBound(t *testing.T) {
	a := newAdmission(2, nil)
	if err := a.submit(queuedJob("x0", "x", 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.submit(queuedJob("x1", "x", 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.submit(queuedJob("x2", "x", 0)); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if err := a.submit(queuedJob("y0", "y", 0)); err != nil {
		t.Errorf("other tenant rejected alongside the full one: %v", err)
	}
	// requeueFront ignores the bound: a job pulled out for a worker lease
	// that fell through must never be lost, and it goes back to its
	// tenant's head, ahead of work submitted after it.
	solo := newAdmission(1, nil)
	if err := solo.submit(queuedJob("first", "z", 0)); err != nil {
		t.Fatal(err)
	}
	j := solo.next()
	solo.requeueFront(j)
	if got := solo.next(); got != j {
		t.Errorf("requeueFront did not restore %s to the head", j.ID)
	}
}

// TestAdmissionShedLowest: shedding picks the lowest priority and, on
// ties, the newest submission — the work whose loss costs least.
func TestAdmissionShedLowest(t *testing.T) {
	a := newAdmission(8, nil)
	older := queuedJob("old", "t", 1)
	older.submitted = time.Now().Add(-time.Minute)
	for _, j := range []*Job{queuedJob("hi", "t", 5), older, queuedJob("new", "t", 1)} {
		if err := a.submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if v := a.shedLowest(); v == nil || v.ID != "new" {
		t.Fatalf("shed %v, want the newest priority-1 job", v)
	}
	if v := a.shedLowest(); v == nil || v.ID != "old" {
		t.Fatalf("shed %v, want the remaining priority-1 job", v)
	}
	if v := a.shedLowest(); v == nil || v.ID != "hi" {
		t.Fatalf("shed %v, want the last job", v)
	}
	if v := a.shedLowest(); v != nil {
		t.Errorf("empty controller shed %s", v.ID)
	}
}

// TestAdmissionRemove: tenant cancellation plucks a job out of the middle
// of its queue; unknown IDs report false.
func TestAdmissionRemove(t *testing.T) {
	a := newAdmission(8, nil)
	for i := 0; i < 3; i++ {
		if err := a.submit(queuedJob(fmt.Sprintf("j%d", i), "t", 0)); err != nil {
			t.Fatal(err)
		}
	}
	if !a.remove("j1") {
		t.Fatal("remove(j1) = false")
	}
	if a.remove("j1") {
		t.Error("double remove reported true")
	}
	if got := a.next().ID; got != "j0" {
		t.Errorf("head = %s, want j0", got)
	}
	if got := a.next().ID; got != "j2" {
		t.Errorf("next = %s, want j2 (j1 removed)", got)
	}
}
