// Package serve implements lbmserve: an always-on multi-tenant
// simulation service wrapped around the self-healing distributed solver
// (internal/psolve). Tenants submit jobs — the same JSON case schema the
// CLI reads — over HTTP; a sharded scheduler leases worker slots from a
// shared pool and runs each job in its own bulkhead: a panic-containing
// goroutine with a private fault injector, a private snapshot store and
// its own supervisor, so one tenant's crash (or fault plan) cannot touch
// a neighbour's run or the daemon itself.
//
// The control plane is built for overload and restarts, not just the
// happy path: admission control with bounded per-tenant queues and
// weighted round-robin dequeue, 429 + Retry-After backpressure, shedding
// that only ever takes the lowest-priority *queued* work, deadline-aware
// scheduling with per-job timeouts, retry-with-backoff for worker-loss
// kills, and a crash-safe append-only journal that replays pending work
// after a daemon restart. SIGTERM drains: admission closes, running jobs
// checkpoint through the L1–L4 hierarchy, and the process exits cleanly.
package serve

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"sunwaylb/internal/config"
	"sunwaylb/internal/core"
	"sunwaylb/internal/fault"
	"sunwaylb/internal/perf"
	"sunwaylb/internal/resil"
)

// JobSpec is the submit payload: the CLI's case schema plus the
// service-level envelope (tenant, priority, decomposition, fault plan,
// resilience knobs, deadline).
type JobSpec struct {
	// Tenant names the submitting tenant; every tenant gets its own
	// bounded admission queue. Empty maps to "default".
	Tenant string `json:"tenant,omitempty"`
	// Priority orders shedding under overload: when the global queue cap
	// is hit, the lowest-priority queued job is shed first. Higher is
	// more important. Running jobs are never shed.
	Priority int `json:"priority,omitempty"`
	// Case is the simulation description (same schema as cases/*.json).
	Case config.Case `json:"case"`
	// Decomp is the process grid, e.g. "2x2" (default "2x1"), or "patch"
	// / "patchN" for the patch-decomposed world on N workers (default 2).
	Decomp string `json:"decomp,omitempty"`
	// FaultPlan optionally injects deterministic faults into this job
	// only (the CLI's -fault-plan DSL). Validated at admission against
	// the job's own world size.
	FaultPlan string `json:"fault_plan,omitempty"`
	// MaxRestarts is the job's supervisor recovery budget (default 2;
	// -1 means zero — the first unrecovered failure kills the attempt).
	MaxRestarts int `json:"max_restarts,omitempty"`
	// SnapshotEvery/Levels/GroupSize/SpareRanks configure the multi-level
	// checkpoint hierarchy (defaults: every 5 steps, levels 1234, group
	// 2, one spare).
	SnapshotEvery int    `json:"snapshot_every,omitempty"`
	Levels        string `json:"levels,omitempty"`
	GroupSize     int    `json:"group_size,omitempty"`
	SpareRanks    int    `json:"spare_ranks,omitempty"`
	// Detector selects the job's failure detector: "deadline" (default)
	// or "phi" (accrual heartbeats — what a flap@ fault plan needs to be
	// noticed).
	Detector string `json:"detector,omitempty"`
	// TimeoutSec bounds the job's wall-clock run time (0 = the server's
	// default deadline). A job that exceeds it is canceled — its drain
	// checkpoint is preserved — and reported as failed with a deadline
	// cause.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// Retries is how many times a job killed by worker loss (its
	// supervisor exhausted the restart budget on rank deaths) is
	// re-queued with backoff before being declared failed (default 0).
	Retries int `json:"retries,omitempty"`
}

// patchWorkerCount reports the worker count of a "patch"/"patchN"
// decomp spec: 0 when the spec is not patch-decomposed, -1 when it is
// malformed ("patchx", "patch0").
func patchWorkerCount(decomp string) int {
	d := strings.ToLower(strings.TrimSpace(decomp))
	if !strings.HasPrefix(d, "patch") {
		return 0
	}
	rest := d[len("patch"):]
	if rest == "" {
		return 2
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return -1
	}
	return n
}

// normalize fills defaults and validates the spec, returning the parsed
// process grid. Patch-decomposed jobs report their worker roster as an
// N×1 grid so world-sized validation (fault plans name workers the job
// actually has) works unchanged.
func (sp *JobSpec) normalize() (px, py int, err error) {
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if sp.Decomp == "" {
		sp.Decomp = "2x1"
	}
	if n := patchWorkerCount(sp.Decomp); n != 0 {
		if n < 0 || n > 64 {
			return 0, 0, fmt.Errorf("serve: bad decomp %q, want patch or patchN with N in [1,64]", sp.Decomp)
		}
		px, py = n, 1
	} else if _, err := fmt.Sscanf(strings.ToLower(sp.Decomp), "%dx%d", &px, &py); err != nil || px < 1 || py < 1 {
		return 0, 0, fmt.Errorf("serve: bad decomp %q, want e.g. 2x2 or patchN", sp.Decomp)
	}
	if err := sp.Case.Validate(); err != nil {
		return 0, 0, err
	}
	if sp.Case.Steps < 1 {
		return 0, 0, fmt.Errorf("serve: case %q has no steps to run", sp.Case.Name)
	}
	if sp.MaxRestarts == 0 {
		sp.MaxRestarts = 2
	} else if sp.MaxRestarts < 0 {
		sp.MaxRestarts = 0
	}
	if sp.SnapshotEvery == 0 {
		sp.SnapshotEvery = 5
	}
	if sp.Levels == "" {
		sp.Levels = "1234"
	}
	if _, err := resil.ParseLevels(sp.Levels); err != nil {
		return 0, 0, err
	}
	if sp.GroupSize == 0 {
		sp.GroupSize = 2
	}
	if sp.SpareRanks == 0 {
		sp.SpareRanks = 1
	}
	if sp.FaultPlan != "" {
		plan, perr := fault.ParsePlan(sp.FaultPlan)
		if perr != nil {
			return 0, 0, perr
		}
		// A tenant's faults must stay inside its own world: reject plans
		// that name ranks the job does not have.
		if verr := plan.Validate(px * py); verr != nil {
			return 0, 0, verr
		}
	}
	switch sp.Detector {
	case "", "deadline", "phi":
	default:
		return 0, 0, fmt.Errorf("serve: unknown detector %q (want deadline or phi)", sp.Detector)
	}
	if sp.Retries < 0 || sp.Retries > 5 {
		return 0, 0, fmt.Errorf("serve: retries %d outside [0,5]", sp.Retries)
	}
	return px, py, nil
}

// JobState is the lifecycle of a job inside the service.
type JobState string

const (
	// StateQueued: admitted, waiting for a worker slot.
	StateQueued JobState = "queued"
	// StateRunning: executing under its own supervisor in a bulkhead.
	StateRunning JobState = "running"
	// StateDone: finished; results available.
	StateDone JobState = "done"
	// StateFailed: exhausted its recovery and retry budgets, hit its
	// deadline, or panicked.
	StateFailed JobState = "failed"
	// StateCanceled: canceled by the tenant or by daemon drain; a drain
	// checkpoint is preserved where possible.
	StateCanceled JobState = "canceled"
	// StateShed: dropped from the queue under overload (never ran).
	StateShed JobState = "shed"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateShed
}

// Job is the service-side record of one submitted simulation.
type Job struct {
	mu sync.Mutex

	// Immutable after admission.
	ID     string
	Spec   JobSpec
	px, py int

	state     JobState
	err       string
	attempts  int // service-level runs (1 + retries consumed)
	submitted time.Time
	started   time.Time
	finished  time.Time
	deadline  time.Time
	stats     perf.RecoveryStats
	result    *core.MacroField
	cancel    func(reason error)

	done chan struct{} // closed on entering a terminal state
}

// Status is the JSON view of a job served by GET /jobs/{id}.
type Status struct {
	ID        string             `json:"id"`
	Tenant    string             `json:"tenant"`
	Name      string             `json:"name"`
	State     JobState           `json:"state"`
	Error     string             `json:"error,omitempty"`
	Attempts  int                `json:"attempts"`
	Priority  int                `json:"priority"`
	QueuedSec float64            `json:"queued_sec"`
	RunSec    float64            `json:"run_sec"`
	Recovery  perf.RecoveryStats `json:"recovery"`
}

// Snapshot returns a consistent copy of the job's externally visible
// state.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:       j.ID,
		Tenant:   j.Spec.Tenant,
		Name:     j.Spec.Case.Name,
		State:    j.state,
		Error:    j.err,
		Attempts: j.attempts,
		Priority: j.Spec.Priority,
		Recovery: j.stats,
	}
	switch {
	case j.started.IsZero():
		if j.state == StateQueued {
			st.QueuedSec = time.Since(j.submitted).Seconds()
		}
	default:
		st.QueuedSec = j.started.Sub(j.submitted).Seconds()
		if j.finished.IsZero() {
			st.RunSec = time.Since(j.started).Seconds()
		} else {
			st.RunSec = j.finished.Sub(j.started).Seconds()
		}
	}
	return st
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the finished field (nil unless StateDone).
func (j *Job) Result() *core.MacroField {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.result
}

// Stats returns the job's recovery scorecard.
func (j *Job) Stats() perf.RecoveryStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// finish moves the job into a terminal state exactly once; later calls
// are ignored (e.g. a cancel racing a natural completion). The done
// channel is NOT closed here — the server closes it after the fleet
// accounting is updated, so an observer woken by Done() never reads
// metrics that have not yet counted this job.
func (j *Job) finish(state JobState, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.state = state
	j.err = errMsg
	j.finished = time.Now()
	return true
}
