package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"sunwaylb/internal/core"
	"sunwaylb/internal/fault"
	"sunwaylb/internal/mpi"
	"sunwaylb/internal/patch"
	"sunwaylb/internal/perf"
	"sunwaylb/internal/psolve"
	"sunwaylb/internal/resil"
	"sunwaylb/internal/swio"
	"sunwaylb/internal/trace"
)

// shardLoop is one scheduler lane: WRR-dequeue jobs, lease a slot from
// the shared worker pool, and hand each job to its own bulkhead
// goroutine. The loop sleeps until woken by a submit (or retry) and
// exits on daemon shutdown.
func (s *Server) shardLoop(sh *shard) {
	defer s.wg.Done()
	for {
		select {
		case <-s.rootCtx.Done():
			return
		case <-sh.wake:
		}
		for {
			j := sh.adm.next()
			if j == nil {
				break
			}
			// Deadline-aware scheduling: a job whose deadline lapsed
			// while it sat in the queue — or lapses while it waits for
			// a worker slot below — fails right here, never wasting a
			// slot on a run that cannot finish in time.
			if j.State().terminal() {
				continue // canceled while queued
			}
			if time.Now().After(j.deadline) {
				s.finishJob(j, StateFailed, "deadline expired while queued", perf.RecoveryStats{})
				continue
			}
			dl := time.NewTimer(time.Until(j.deadline))
			select {
			case s.pool <- struct{}{}: // lease a worker slot
				dl.Stop()
			case <-dl.C:
				s.finishJob(j, StateFailed, "deadline expired waiting for a worker slot", perf.RecoveryStats{})
				continue
			case <-s.rootCtx.Done():
				dl.Stop()
				// Shutdown while waiting for a slot: the job stays open
				// in the journal and is re-admitted at the next start.
				sh.adm.requeueFront(j)
				return
			}
			s.wg.Add(1)
			go s.runJob(sh, j)
		}
	}
}

// runJob executes one job inside its bulkhead: a dedicated goroutine
// whose panics are contained, with a private injector, snapshot store
// and supervisor. The worker slot is released when the run ends, for
// any reason.
func (s *Server) runJob(sh *shard, j *Job) {
	defer s.wg.Done()
	defer func() { <-s.pool }() // release the worker slot
	// Bulkhead of last resort: the supervisor already contains rank
	// panics, but a bug in the service-side plumbing itself must also
	// fail only this job, never the daemon.
	defer func() {
		if p := recover(); p != nil {
			s.logf("serve: job %s bulkhead caught panic: %v", j.ID, p)
			s.finishJob(j, StateFailed, fmt.Sprintf("panic: %v", p), perf.RecoveryStats{})
		}
	}()

	// Claim the run; a cancel that won the race already finished it.
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	if j.started.IsZero() {
		j.started = time.Now()
	}
	j.attempts++
	attempt := j.attempts
	deadline := j.deadline
	jobCtx, cancelCause := context.WithCancelCause(s.rootCtx)
	j.cancel = cancelCause
	j.mu.Unlock()
	defer cancelCause(nil)
	ctx, cancelT := context.WithDeadline(jobCtx, deadline)
	defer cancelT()

	s.mu.Lock()
	s.running++
	running := s.running
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}()
	if attempt == 1 {
		s.journal.append(journalEntry{Op: "start", ID: j.ID})
	}
	s.ctl.Counter(trace.Wall, trace.TrackServe, "running", s.ctl.Now(), float64(running))

	field, stats, err := s.superviseJob(ctx, j)

	switch {
	case err == nil:
		j.mu.Lock()
		j.result = field
		j.mu.Unlock()
		s.finishJob(j, StateDone, "", stats)

	case errors.Is(err, psolve.ErrCanceled):
		cause := context.Cause(jobCtx)
		switch {
		case errors.Is(cause, errDrainStop) || errors.Is(cause, errKilled):
			// Shutdown interruption: terminal in this process, open in
			// the journal — the restart picks it up again, resuming
			// from the drain checkpoint the supervisor just wrote.
			s.finishJob(j, StateCanceled, "interrupted by daemon shutdown", stats)
		case errors.Is(cause, errTenantCanceled):
			s.finishJob(j, StateCanceled, "canceled by tenant", stats)
		case ctx.Err() == context.DeadlineExceeded:
			s.finishJob(j, StateFailed, fmt.Sprintf("deadline exceeded: %v", err), stats)
		default:
			s.finishJob(j, StateCanceled, err.Error(), stats)
		}

	case workerLoss(err) && attempt <= j.Spec.Retries:
		// The job's supervisor exhausted its restart budget on rank
		// deaths. Re-queue with full-jitter backoff: transient capacity
		// loss deserves another chance, deterministic bugs do not (they
		// are not workerLoss and fail immediately below).
		policy := s.cfg.Retry
		policy.Seed = jobSeed(j.ID)
		delay := policy.Delay(attempt - 1)
		s.logf("serve: job %s lost its workers (%v); retry %d/%d in %v",
			j.ID, err, attempt, j.Spec.Retries, delay)
		j.mu.Lock()
		j.state = StateQueued
		j.cancel = nil
		j.mu.Unlock()
		s.ctl.Instant(trace.Wall, trace.TrackServe, "job-retry", s.ctl.Now())
		s.wg.Add(1)
		time.AfterFunc(delay, func() {
			defer s.wg.Done()
			if s.rootCtx.Err() != nil {
				return // shutdown: the journal re-admits it next start
			}
			sh.adm.requeueFront(j)
			wakeShard(sh)
		})

	default:
		s.finishJob(j, StateFailed, err.Error(), stats)
	}
}

// workerLoss classifies errors that mean the job's simulated workers
// died (injected crashes, rank deaths, phi suspicion) rather than the
// job itself being defective — the retryable class.
func workerLoss(err error) bool {
	return errors.Is(err, fault.ErrInjectedCrash) ||
		(errors.Is(err, mpi.ErrRankDead) && !errors.Is(err, mpi.ErrRankPanic))
}

// jobSeed derives a stable backoff seed from the job ID so replays of
// the same job back off identically while distinct jobs decorrelate.
func jobSeed(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64())
}

// superviseJob runs the job under its own supervisor with per-job fault
// isolation: a private injector (or none), a private snapshot store, a
// private checkpoint file, and panic containment on.
func (s *Server) superviseJob(ctx context.Context, j *Job) (*core.MacroField, perf.RecoveryStats, error) {
	if patchWorkerCount(j.Spec.Decomp) != 0 {
		return s.supervisePatchJob(ctx, j)
	}
	opts, err := BuildOptions(j.Spec)
	if err != nil {
		return nil, perf.RecoveryStats{}, err
	}
	cpPath := s.checkpointPath(j)
	if lat, rerr := swio.Restart(cpPath); rerr == nil && lat.Step() < j.Spec.Case.Steps {
		// A drain checkpoint from an earlier life of this job: resume.
		opts.Restore = lat
		s.logf("serve: job %s resuming from drain checkpoint at step %d", j.ID, lat.Step())
	}
	var inj *fault.Injector
	if j.Spec.FaultPlan != "" {
		plan, perr := fault.ParsePlan(j.Spec.FaultPlan)
		if perr != nil {
			return nil, perf.RecoveryStats{}, perr
		}
		inj = fault.NewInjector(plan)
	}
	levels, lerr := resil.ParseLevels(j.Spec.Levels)
	if lerr != nil {
		return nil, perf.RecoveryStats{}, lerr
	}
	retry := s.cfg.Retry
	retry.Seed = jobSeed(j.ID)
	return psolve.Supervise(psolve.SupervisorOptions{
		Ctx:             ctx,
		ContainPanics:   true,
		Opts:            opts,
		Steps:           j.Spec.Case.Steps,
		CheckpointEvery: j.Spec.Case.CheckpointEvery,
		CheckpointPath:  cpPath,
		MaxRestarts:     j.Spec.MaxRestarts,
		SnapshotEvery:   j.Spec.SnapshotEvery,
		Levels:          levels,
		GroupSize:       j.Spec.GroupSize,
		SpareRanks:      j.Spec.SpareRanks,
		Detector:        j.Spec.Detector,
		Injector:        inj,
		Retry:           retry,
	})
}

// supervisePatchJob is superviseJob for patch-decomposed jobs: the same
// periodic shear box runs through the patch world's own supervisor,
// where owner death is repaired by migrating the dead worker's patches
// to survivors from the in-memory snapshot wave. The patch stats are
// folded into the fleet's patch gauges (served by /metrics) and mapped
// onto the recovery scorecard (memory-plan recoveries as hot swaps,
// full restarts as disk rollbacks).
func (s *Server) supervisePatchJob(ctx context.Context, j *Job) (*core.MacroField, perf.RecoveryStats, error) {
	opts, err := BuildPatchOptions(j.Spec)
	if err != nil {
		return nil, perf.RecoveryStats{}, err
	}
	var inj *fault.Injector
	if j.Spec.FaultPlan != "" {
		plan, perr := fault.ParsePlan(j.Spec.FaultPlan)
		if perr != nil {
			return nil, perf.RecoveryStats{}, perr
		}
		inj = fault.NewInjector(plan)
	}
	levels, lerr := resil.ParseLevels(j.Spec.Levels)
	if lerr != nil {
		return nil, perf.RecoveryStats{}, lerr
	}
	retry := s.cfg.Retry
	retry.Seed = jobSeed(j.ID)
	field, pst, err := patch.Supervise(patch.SupervisorOptions{
		Ctx:             ctx,
		Opts:            opts,
		Steps:           j.Spec.Case.Steps,
		CheckpointEvery: j.Spec.Case.CheckpointEvery,
		CheckpointPath:  s.checkpointPath(j),
		MaxRestarts:     j.Spec.MaxRestarts,
		SnapshotEvery:   j.Spec.SnapshotEvery,
		Levels:          levels,
		GroupSize:       j.Spec.GroupSize,
		Injector:        inj,
		Retry:           retry,
	})
	var rec perf.RecoveryStats
	if pst != nil {
		rec.HotSwaps = pst.Recoveries
		rec.DiskRollbacks = pst.Restarts
		rec.Restarts = pst.Recoveries + pst.Restarts
		s.mu.Lock()
		s.patchJobs++
		s.patchMigrations += int64(pst.Migrations)
		s.patchRebalances += int64(pst.Rebalances)
		if pst.ImbalancePost > 0 {
			s.patchLastImbalance = pst.ImbalancePost
		}
		if len(pst.PatchesPerOwner) > 0 {
			s.patchPerOwner = append([]int(nil), pst.PatchesPerOwner...)
		}
		s.mu.Unlock()
	}
	if errors.Is(err, patch.ErrCanceled) {
		// The runner's lifecycle switch speaks psolve's cancel sentinel.
		err = fmt.Errorf("%w: %v", psolve.ErrCanceled, err)
	}
	return field, rec, err
}

// BuildPatchOptions translates a patch-decomposed job spec into the
// patch world configuration: the same periodic shear box BuildOptions
// produces, tiled so every worker can own at least one patch (clamped
// to the halo protocol's two-cell minimum extent). Exported so tests
// can run the exact solo configuration a service job runs.
func BuildPatchOptions(spec JobSpec) (patch.Options, error) {
	n, _, err := (&spec).normalize()
	if err != nil {
		return patch.Options{}, err
	}
	if patchWorkerCount(spec.Decomp) == 0 {
		return patch.Options{}, fmt.Errorf("serve: decomp %q is not patch-decomposed", spec.Decomp)
	}
	clamp := func(t, nCells int) int {
		if t > nCells/2 {
			t = nCells / 2
		}
		if t < 1 {
			t = 1
		}
		return t
	}
	return patch.Options{
		GNX: spec.Case.NX, GNY: spec.Case.NY, GNZ: spec.Case.NZ,
		TX: clamp(n, spec.Case.NX), TY: clamp(2, spec.Case.NY), TZ: 1,
		Tau:         spec.Case.Tau,
		Smagorinsky: spec.Case.Smagorinsky,
		PeriodicX:   true, PeriodicY: true, PeriodicZ: true,
		Init:    ShearInit,
		Workers: make([]patch.Worker, n),
	}, nil
}

// ShearInit is the deterministic initial condition of every service job:
// a sinusoidal shear exercising all axes on the periodic box. It is
// exported so conformance tests can run bit-identical solo references.
func ShearInit(gx, gy, gz int) (rho, ux, uy, uz float64) {
	return 1.0 + 0.01*math.Sin(0.3*float64(gx)),
		0.03 * math.Sin(0.2*float64(gy)),
		0.02 * math.Cos(0.25*float64(gz)),
		0.01 * math.Sin(0.15*float64(gx+gy))
}

// BuildOptions translates a job spec into solver options: a fully
// periodic box with the shear initial condition, decomposed on the
// spec's process grid. Exported so tests can run the exact solo
// configuration a service job runs.
func BuildOptions(spec JobSpec) (psolve.Options, error) {
	px, py, err := (&spec).normalize()
	if err != nil {
		return psolve.Options{}, err
	}
	return psolve.Options{
		GNX: spec.Case.NX, GNY: spec.Case.NY, GNZ: spec.Case.NZ,
		PX: px, PY: py,
		Tau:         spec.Case.Tau,
		Smagorinsky: spec.Case.Smagorinsky,
		PeriodicX:   true, PeriodicY: true, PeriodicZ: true,
		Init:     ShearInit,
		OnTheFly: true,
	}, nil
}
