package serve

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"sunwaylb/internal/conform"
	"sunwaylb/internal/swio"
)

// TestJournalReplayRestart is the daemon crash-recovery acceptance test:
// kill a server mid-flight (no terminal journal records, exactly what
// SIGKILL leaves behind), start a fresh server over the same data dir,
// and require that (a) interrupted work is re-admitted under its
// original IDs, (b) the job that was running resumes from the drain
// checkpoint it wrote on the way down, and (c) jobs that never started
// run to completion bit-identical to solo runs.
func TestJournalReplayRestart(t *testing.T) {
	dir := t.TempDir()

	s1 := testServer(t, Config{Workers: 1, DataDir: dir})
	blockSpec := JobSpec{Tenant: "t", Case: smallCase("blocker", 1_000_000), Decomp: "2x1", SnapshotEvery: 2}
	blocker, err := s1.Submit(blockSpec)
	if err != nil {
		t.Fatal(err)
	}
	q1Spec := JobSpec{Tenant: "t", Case: smallCase("replay-1", 10), Decomp: "2x1"}
	// Same tenant as the blocker: all three share one shard's FIFO, so the
	// blocker deterministically holds the only worker when the kill lands.
	q2Spec := JobSpec{Tenant: "t", Case: smallCase("replay-2", 12), Decomp: "2x1"}
	q1, err := s1.Submit(q1Spec)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s1.Submit(q2Spec)
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for blocker.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started (state %s)", blocker.State())
		}
		time.Sleep(time.Millisecond)
	}
	// Let it cross a few snapshot waves so the kill-path drain has a
	// complete wave to assemble.
	time.Sleep(30 * time.Millisecond)

	s1.Kill()

	// The dying supervisor drained a checkpoint for the running job.
	cpk := filepath.Join(dir, blocker.ID+".cpk")
	lat, err := swio.Restart(cpk)
	if err != nil {
		t.Fatalf("no drain checkpoint after kill: %v", err)
	}
	drainStep := lat.Step()
	if drainStep < 1 {
		t.Fatalf("drain checkpoint at step %d, want progress", drainStep)
	}

	// Restart over the same data dir.
	s2 := testServer(t, Config{Workers: 2, DataDir: dir})
	defer s2.Drain(context.Background())

	if m := s2.MetricsSnapshot(); m.JournalReplay == 0 {
		t.Error("restarted server replayed no journal records")
	}
	// Original IDs survive the restart — that is what keys the drain
	// checkpoint back to its job.
	rb, ok := s2.Job(blocker.ID)
	if !ok {
		t.Fatalf("blocker %s not re-admitted", blocker.ID)
	}
	rq1, ok := s2.Job(q1.ID)
	if !ok {
		t.Fatalf("queued job %s not re-admitted", q1.ID)
	}
	rq2, ok := s2.Job(q2.ID)
	if !ok {
		t.Fatalf("queued job %s not re-admitted", q2.ID)
	}

	// The never-started jobs now run to completion, bit-identical to the
	// solo reference: a daemon crash costs time, never correctness.
	if st := waitJob(t, rq1); st.State != StateDone {
		t.Fatalf("replayed %s finished %s: %s", rq1.ID, st.State, st.Error)
	}
	if err := conform.Compare(soloField(t, q1Spec), rq1.Result(), conform.Exact); err != nil {
		t.Errorf("replayed %s diverged from solo: %v", rq1.ID, err)
	}
	if st := waitJob(t, rq2); st.State != StateDone {
		t.Fatalf("replayed %s finished %s: %s", rq2.ID, st.State, st.Error)
	}
	if err := conform.Compare(soloField(t, q2Spec), rq2.Result(), conform.Exact); err != nil {
		t.Errorf("replayed %s diverged from solo: %v", rq2.ID, err)
	}

	// The blocker resumed from its drain checkpoint; drain the daemon and
	// require its fresh checkpoint to be at or past the old one — resumed
	// progress, not a restart from zero.
	deadline = time.Now().Add(10 * time.Second)
	for rb.State() != StateRunning {
		if rb.State().terminal() {
			t.Fatalf("replayed blocker finished early: %s", rb.State())
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed blocker never started (state %s)", rb.State())
		}
		time.Sleep(time.Millisecond)
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if st := rb.Snapshot(); st.State != StateCanceled {
		t.Errorf("blocker after drain: %s, want canceled", st.State)
	}
	lat2, err := swio.Restart(cpk)
	if err != nil {
		t.Fatalf("no drain checkpoint after second drain: %v", err)
	}
	if lat2.Step() < drainStep {
		t.Errorf("second drain checkpoint at step %d regressed below the first (%d): resume went back to zero",
			lat2.Step(), drainStep)
	}
}
