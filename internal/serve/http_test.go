package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sunwaylb/internal/config"
)

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (*http.Response, Status) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestHTTPLifecycle drives a job through the whole API: submit (202),
// status, list, result digest after completion, cancel conflict on a
// finished job, healthz and metrics.
func TestHTTPLifecycle(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Malformed and invalid submissions are 400s.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed spec: %d, want 400", resp.StatusCode)
	}
	resp, _ = postJob(t, ts, JobSpec{Tenant: "t", Case: config.Case{Name: "flat", Steps: 10}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid case: %d, want 400", resp.StatusCode)
	}
	// A fault plan naming a rank outside the job's own world is rejected
	// at admission: tenants cannot aim faults past their bulkhead.
	resp, _ = postJob(t, ts, JobSpec{
		Tenant: "t", Case: smallCase("outside", 10), Decomp: "2x1",
		FaultPlan: "seed=1;crash@rank=7,step=2",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-world fault plan: %d, want 400", resp.StatusCode)
	}

	spec := JobSpec{Tenant: "t", Case: smallCase("http-ok", 8), Decomp: "2x1"}
	resp, st := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d, want 202", resp.StatusCode)
	}
	if st.ID == "" {
		t.Fatal("submit returned no job ID")
	}

	if code := getJSON(t, ts.URL+"/jobs/"+st.ID, &st); code != http.StatusOK {
		t.Errorf("status: %d, want 200", code)
	}
	if code := getJSON(t, ts.URL+"/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	var list []Status
	if code := getJSON(t, ts.URL+"/jobs", &list); code != http.StatusOK || len(list) == 0 {
		t.Errorf("list: code %d, %d jobs", code, len(list))
	}

	j, _ := s.Job(st.ID)
	waitJob(t, j)

	var dig ResultDigest
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &dig); code != http.StatusOK {
		t.Fatalf("result: %d, want 200", code)
	}
	if want := FieldChecksum(soloField(t, spec)); dig.Checksum != want {
		t.Errorf("result checksum %s, solo run %s: not reproducible", dig.Checksum, want)
	}
	if dig.NX != 12 || dig.NY != 10 || dig.NZ != 6 || dig.Steps != 8 {
		t.Errorf("digest dims wrong: %+v", dig)
	}

	// Cancel after completion conflicts.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Errorf("cancel finished job: %d, want 409", dresp.StatusCode)
	}

	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz: %d, want 200", code)
	}
	var m Metrics
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Errorf("metrics: %d, want 200", code)
	}
	if m.Submitted < 1 || m.Completed < 1 || m.Workers != 2 {
		t.Errorf("metrics look wrong: %+v", m)
	}
}

// TestHTTPBackpressure fills a tiny service until admission pushes back
// with 429 + Retry-After, then shows a higher-priority submit shedding a
// queued job instead of being turned away — and the shed victim is never
// one that is running.
func TestHTTPBackpressure(t *testing.T) {
	s := testServer(t, Config{Workers: 1, Shards: 1, QueuePerTenant: 4, MaxQueued: 2})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	long := JobSpec{Tenant: "flood", Case: smallCase("block", 1_000_000), Decomp: "2x1"}
	resp, blocker := postJob(t, ts, long)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: %d", resp.StatusCode)
	}

	// Flood until the cap bites. One dequeued job can sit in slot-wait
	// limbo outside the queue, so the 429 lands within a few submissions.
	var got429 bool
	for i := 0; i < 6 && !got429; i++ {
		resp, _ := postJob(t, ts, JobSpec{Tenant: "flood", Case: smallCase(fmt.Sprintf("q%d", i), 10), Decomp: "2x1"})
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			got429 = true
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("429 without a Retry-After header")
			}
		default:
			t.Fatalf("flood submit %d: %d", i, resp.StatusCode)
		}
	}
	if !got429 {
		t.Fatal("queue cap never produced a 429")
	}

	// Graceful degradation: a higher-priority job evicts queued work.
	resp, vip := postJob(t, ts, JobSpec{Tenant: "vip", Priority: 5, Case: smallCase("vip", 10), Decomp: "2x1"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("priority submit under overload: %d, want 202 via shed", resp.StatusCode)
	}
	var list []Status
	getJSON(t, ts.URL+"/jobs", &list)
	shedSeen := false
	for _, st := range list {
		if st.State == StateShed {
			shedSeen = true
			if st.ID == blocker.ID || st.ID == vip.ID {
				t.Errorf("shed the wrong job: %s", st.ID)
			}
			if st.Priority >= 5 {
				t.Errorf("shed a priority-%d job for a priority-5 submit", st.Priority)
			}
		}
		if st.ID == blocker.ID && st.State == StateShed {
			t.Error("running blocker was shed; running jobs are untouchable")
		}
	}
	if !shedSeen {
		t.Error("no job was shed for the priority submit")
	}

	// Equal-priority submits keep shedding the remaining cheap work, but
	// once only priority-5 jobs are queued there is nothing strictly
	// cheaper to evict and the submit is rejected instead.
	var equal429 bool
	for i := 0; i < 8 && !equal429; i++ {
		resp, _ = postJob(t, ts, JobSpec{Tenant: "vip", Priority: 5, Case: smallCase(fmt.Sprintf("vip%d", 2+i), 10), Decomp: "2x1"})
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			equal429 = true
		default:
			t.Fatalf("priority flood %d: %d", i, resp.StatusCode)
		}
	}
	if !equal429 {
		t.Error("equal-priority submits were never rejected; shedding must be strictly-lower-priority only")
	}

	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPDrain: a draining daemon answers 503 on healthz and refuses new
// submissions, and Drain itself returns cleanly with jobs in flight.
func TestHTTPDrain(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := JobSpec{Tenant: "t", Case: smallCase("drainee", 1_000_000), Decomp: "2x1", SnapshotEvery: 2}
	resp, st := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	j, _ := s.Job(st.ID)
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", j.State())
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: %d, want 503", code)
	}
	resp, _ = postJob(t, ts, JobSpec{Tenant: "t", Case: smallCase("late", 5), Decomp: "2x1"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503", resp.StatusCode)
	}
	if got := j.State(); got != StateCanceled {
		t.Errorf("in-flight job after drain: %s, want canceled", got)
	}
}
