package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrQueueFull rejects a submit whose tenant queue (or the global cap)
// is out of room and nothing cheaper could be shed. The HTTP layer maps
// it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("serve: admission queue full")

// admission is the admission controller of one scheduler shard: bounded
// FIFO queues per tenant, drained by weighted round-robin so a tenant
// that floods its queue gets its weight's share of worker slots and not
// one slot more. All methods are safe for concurrent use.
type admission struct {
	mu        sync.Mutex
	perTenant int            // queue cap per tenant
	weights   map[string]int // tenant → WRR weight (missing = 1)
	queues    map[string][]*Job
	// cycle is the expanded WRR schedule: each tenant appears weight
	// times, rebuilt (sorted, deterministic) when the tenant set changes.
	cycle  []string
	cursor int
	depth  int
}

func newAdmission(perTenant int, weights map[string]int) *admission {
	if perTenant < 1 {
		perTenant = 16
	}
	return &admission{
		perTenant: perTenant,
		weights:   weights,
		queues:    make(map[string][]*Job),
	}
}

// submit enqueues the job at its tenant's tail, rejecting with
// ErrQueueFull when the tenant's bound is hit.
func (a *admission) submit(j *Job) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	tenant := j.Spec.Tenant
	q := a.queues[tenant]
	if len(q) >= a.perTenant {
		return fmt.Errorf("%w: tenant %q at its bound of %d queued jobs", ErrQueueFull, tenant, a.perTenant)
	}
	if _, known := a.queues[tenant]; !known {
		a.queues[tenant] = nil
		a.rebuildCycle()
	}
	a.queues[tenant] = append(a.queues[tenant], j)
	a.depth++
	return nil
}

// rebuildCycle regenerates the expanded WRR schedule. Callers hold mu.
// Tenants are visited in sorted-name order, each weight times per full
// cycle, so the schedule is deterministic and fair regardless of map
// iteration order.
func (a *admission) rebuildCycle() {
	names := make([]string, 0, len(a.queues))
	for t := range a.queues {
		names = append(names, t)
	}
	sort.Strings(names)
	a.cycle = a.cycle[:0]
	for _, t := range names {
		w := a.weights[t]
		if w < 1 {
			w = 1
		}
		for i := 0; i < w; i++ {
			a.cycle = append(a.cycle, t)
		}
	}
	if len(a.cycle) > 0 {
		a.cursor %= len(a.cycle)
	} else {
		a.cursor = 0
	}
}

// next dequeues the next job under the WRR discipline, or nil when every
// queue is empty. Empty queues forfeit their turn without stalling the
// cycle.
func (a *admission) next() *Job {
	a.mu.Lock()
	defer a.mu.Unlock()
	for scanned := 0; scanned < len(a.cycle); scanned++ {
		tenant := a.cycle[a.cursor]
		a.cursor = (a.cursor + 1) % len(a.cycle)
		if q := a.queues[tenant]; len(q) > 0 {
			j := q[0]
			a.queues[tenant] = q[1:]
			a.depth--
			return j
		}
	}
	return nil
}

// requeueFront puts a job back at its tenant's head (a dequeued job
// whose worker lease was interrupted, or a retry) ignoring the bound:
// the job already held a queue slot and must not be lost to a race.
func (a *admission) requeueFront(j *Job) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tenant := j.Spec.Tenant
	if _, known := a.queues[tenant]; !known {
		a.queues[tenant] = nil
		a.rebuildCycle()
	}
	a.queues[tenant] = append([]*Job{j}, a.queues[tenant]...)
	a.depth++
}

// remove deletes a queued job by ID (tenant cancel); false if it is no
// longer queued here.
func (a *admission) remove(id string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for tenant, q := range a.queues {
		for i, j := range q {
			if j.ID == id {
				a.queues[tenant] = append(q[:i:i], q[i+1:]...)
				a.depth--
				return true
			}
		}
	}
	return false
}

// shedLowest removes and returns the lowest-priority queued job (FIFO
// tail within equal priorities: the newest cheap work goes first), or
// nil when nothing is queued. Graceful degradation only ever sheds
// queued work — running jobs are untouchable.
func (a *admission) shedLowest() *Job {
	a.mu.Lock()
	defer a.mu.Unlock()
	var victimTenant string
	victimIdx := -1
	var victim *Job
	for tenant, q := range a.queues {
		for i, j := range q {
			if victim == nil ||
				j.Spec.Priority < victim.Spec.Priority ||
				(j.Spec.Priority == victim.Spec.Priority && j.submitted.After(victim.submitted)) {
				victim, victimTenant, victimIdx = j, tenant, i
			}
		}
	}
	if victim == nil {
		return nil
	}
	q := a.queues[victimTenant]
	a.queues[victimTenant] = append(q[:victimIdx:victimIdx], q[victimIdx+1:]...)
	a.depth--
	return victim
}

// size returns the number of queued jobs.
func (a *admission) size() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.depth
}

// byTenant returns the queue depth per tenant.
func (a *admission) byTenant(out map[string]int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for tenant, q := range a.queues {
		if len(q) > 0 {
			out[tenant] += len(q)
		}
	}
}
