package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// The journal is the daemon's crash-safety story: one JSON line per job
// lifecycle transition, appended and fsynced before the transition is
// acknowledged anywhere else. On restart, replaying the journal rebuilds
// the job table: jobs with a submit record but no terminal record were
// queued or running when the daemon died, and are re-admitted (the
// solver is deterministic, so a re-run converges to the same answer; a
// job that had already drained a checkpoint resumes from it via the
// supervisor's normal restore path).
type journalEntry struct {
	// Op is the transition: "submit", "start", "done", "fail", "cancel",
	// "shed".
	Op string `json:"op"`
	ID string `json:"id"`
	// Spec rides along on submit records only — it is everything needed
	// to re-create the job at replay.
	Spec *JobSpec `json:"spec,omitempty"`
	// Err carries the failure cause on fail/cancel records.
	Err string `json:"err,omitempty"`
}

type journal struct {
	mu   sync.Mutex
	f    *os.File
	enc  *json.Encoder
	path string
}

// openJournal opens (or creates) the journal for appending.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	return &journal{f: f, enc: json.NewEncoder(f), path: path}, nil
}

// append writes one entry and fsyncs. A journal write failure is
// returned to the caller (a submit that cannot be journaled must not be
// acknowledged: it would vanish on restart).
func (jl *journal) append(e journalEntry) error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if err := jl.enc.Encode(e); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	return nil
}

func (jl *journal) close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.f.Close()
}

// pendingJob is an interrupted job recovered from the journal: its
// original ID is preserved so a drain checkpoint written under that ID
// is found again at resume.
type pendingJob struct {
	ID   string
	Spec JobSpec
}

// replayJournal reads a journal and returns the jobs that never reached
// a terminal state (in submit order) plus the count of records
// replayed. A truncated final line — the crash happened mid-append — is
// tolerated: everything before it is intact by construction.
func replayJournal(path string) (pending []pendingJob, replayed int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("serve: opening journal for replay: %w", err)
	}
	defer f.Close()

	type rec struct {
		spec JobSpec
		open bool
	}
	byID := make(map[string]*rec)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if jerr := json.Unmarshal(line, &e); jerr != nil {
			// Torn tail write: stop replaying here.
			break
		}
		replayed++
		switch e.Op {
		case "submit":
			if e.Spec != nil {
				byID[e.ID] = &rec{spec: *e.Spec, open: true}
				order = append(order, e.ID)
			}
		case "done", "fail", "cancel", "shed":
			if r := byID[e.ID]; r != nil {
				r.open = false
			}
		}
	}
	for _, id := range order {
		if r := byID[id]; r != nil && r.open {
			pending = append(pending, pendingJob{ID: id, Spec: r.spec})
		}
	}
	return pending, replayed, nil
}
