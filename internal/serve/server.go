package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sunwaylb/internal/perf"
	"sunwaylb/internal/swio"
	"sunwaylb/internal/trace"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the shared worker-slot pool: at most this many jobs run
	// concurrently across all shards (default 2).
	Workers int
	// Shards is the number of scheduler shards; tenants map to shards by
	// stable hash, so one tenant's queue churn never contends with
	// another shard's lock (default 2).
	Shards int
	// QueuePerTenant bounds each tenant's admission queue (default 16).
	QueuePerTenant int
	// MaxQueued caps queued jobs across all tenants; past it, admission
	// sheds the lowest-priority queued job to make room for a
	// higher-priority submit, and otherwise rejects with ErrQueueFull
	// (default Shards × QueuePerTenant).
	MaxQueued int
	// TenantWeights sets WRR dequeue weights (missing tenants weigh 1).
	TenantWeights map[string]int
	// DataDir holds the job journal and per-job drain checkpoints
	// (required).
	DataDir string
	// DefaultTimeout bounds jobs that set no timeout_sec (default 10 min).
	DefaultTimeout time.Duration
	// Retry is the backoff policy for re-queueing jobs killed by worker
	// loss (zero = swio defaults; the seed is re-derived per job).
	Retry swio.RetryPolicy
	// TraceBuf bounds the service tracer's per-rank ring buffer so an
	// always-on daemon's telemetry memory is O(1) (default 4096).
	TraceBuf int
	// Logf receives service diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) norm() error {
	if c.DataDir == "" {
		return errors.New("serve: Config.DataDir is required")
	}
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.Shards < 1 {
		c.Shards = 2
	}
	if c.QueuePerTenant < 1 {
		c.QueuePerTenant = 16
	}
	if c.MaxQueued < 1 {
		c.MaxQueued = c.Shards * c.QueuePerTenant
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Minute
	}
	if c.TraceBuf < 1 {
		c.TraceBuf = 4096
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// ErrDraining rejects submissions while the daemon is shutting down.
var ErrDraining = errors.New("serve: draining, not admitting new jobs")

// errTenantCanceled is the cancellation cause of a DELETE /jobs/{id}.
var errTenantCanceled = errors.New("serve: canceled by tenant")

// errDrainStop is the cancellation cause of a graceful drain.
var errDrainStop = errors.New("serve: daemon draining")

// errKilled is the cancellation cause of a hard stop (crash simulation).
var errKilled = errors.New("serve: daemon killed")

// shard is one scheduler lane: its own admission controller and wake
// signal. Tenants are hashed onto shards, so per-shard lock contention
// is bounded by the tenants that share the shard, not the whole fleet.
type shard struct {
	idx  int
	adm  *admission
	wake chan struct{}
}

// Server is the lbmserve daemon: job table, sharded scheduler, shared
// worker pool, journal and metrics.
type Server struct {
	cfg    Config
	logf   func(string, ...any)
	tracer *trace.Tracer
	ctl    *trace.RankTracer

	journal  *journal
	replayed int

	pool   chan struct{} // worker slots: send = lease, receive = release
	shards []*shard

	rootCtx    context.Context
	rootCancel context.CancelCauseFunc
	wg         sync.WaitGroup

	draining atomic.Bool
	killed   atomic.Bool

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID int
	// Fleet counters (under mu).
	submitted, completed, failed, canceled, shed, rejected int64
	running                                                int
	agg                                                    perf.RecoveryStats
	latency                                                *perf.Monitor
	// Patch-mode gauges (under mu): accumulated across every
	// patch-decomposed job that produced stats.
	patchJobs, patchMigrations, patchRebalances int64
	patchLastImbalance                          float64
	patchPerOwner                               []int
}

// NewServer builds a daemon over DataDir, replaying any existing journal:
// jobs that were queued or running when the previous process died are
// re-admitted and run again (resuming from their drain checkpoint when
// one exists).
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.norm(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating data dir: %w", err)
	}
	jpath := filepath.Join(cfg.DataDir, "jobs.journal")
	pending, replayed, err := replayJournal(jpath)
	if err != nil {
		return nil, err
	}
	jl, err := openJournal(jpath)
	if err != nil {
		return nil, err
	}

	tracer := trace.New(trace.Options{MaxEventsPerRank: cfg.TraceBuf})
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		logf:       cfg.Logf,
		tracer:     tracer,
		ctl:        tracer.ForRank(trace.RankService),
		journal:    jl,
		replayed:   replayed,
		pool:       make(chan struct{}, cfg.Workers),
		rootCtx:    ctx,
		rootCancel: cancel,
		jobs:       make(map[string]*Job),
		latency:    perf.NewMonitor(0),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shard{
			idx:  i,
			adm:  newAdmission(cfg.QueuePerTenant, cfg.TenantWeights),
			wake: make(chan struct{}, 1),
		})
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.shardLoop(sh)
	}
	// Re-admit interrupted work under its original IDs (drain checkpoints
	// are keyed by ID). Journal records already exist for these jobs, so
	// enqueueJob is told not to append fresh submit records; the ID
	// counter is advanced past every replayed ID first.
	for i := range pending {
		var n int
		if _, serr := fmt.Sscanf(pending[i].ID, "j%06d", &n); serr == nil && n > s.nextID {
			s.nextID = n
		}
	}
	for i := range pending {
		if _, rerr := s.enqueueJob(pending[i].Spec, pending[i].ID); rerr != nil {
			s.logf("serve: journal replay: dropping job %s (%q): %v",
				pending[i].ID, pending[i].Spec.Case.Name, rerr)
		}
	}
	if replayed > 0 {
		s.logf("serve: journal replay: %d records, %d jobs re-admitted", replayed, len(pending))
	}
	return s, nil
}

// shardFor maps a tenant to its scheduler shard by stable hash.
func (s *Server) shardFor(tenant string) *shard {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// Submit admits a job: validate, journal, enqueue, wake the shard.
// Under overload it either sheds strictly-lower-priority queued work to
// make room or rejects with ErrQueueFull.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	return s.enqueueJob(spec, "")
}

// enqueueJob admits a job. A non-empty replayID re-admits a journaled
// job under its original ID (no fresh submit record); empty allocates
// the next ID and journals the submission.
func (s *Server) enqueueJob(spec JobSpec, replayID string) (*Job, error) {
	px, py, err := spec.normalize()
	if err != nil {
		s.bumpRejected()
		return nil, err
	}

	id := replayID
	if id == "" {
		s.mu.Lock()
		s.nextID++
		id = fmt.Sprintf("j%06d", s.nextID)
		s.mu.Unlock()
	}

	j := &Job{
		ID:        id,
		Spec:      spec,
		px:        px,
		py:        py,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	// The deadline covers the job's whole life — queue wait plus run —
	// so a queue stuck behind slow work cannot silently starve a job
	// past the point its tenant stopped caring.
	timeout := time.Duration(spec.TimeoutSec * float64(time.Second))
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	j.deadline = j.submitted.Add(timeout)

	// Global cap with graceful degradation: shed the cheapest queued job
	// if — and only if — it is strictly lower priority than the new one.
	if s.queuedTotal() >= s.cfg.MaxQueued {
		if victim := s.shedBelow(spec.Priority); victim != nil {
			s.finishJob(victim, StateShed, "shed under overload for higher-priority work", perf.RecoveryStats{})
			s.logf("serve: shed %s (tenant %s, priority %d) for incoming priority %d",
				victim.ID, victim.Spec.Tenant, victim.Spec.Priority, spec.Priority)
		} else {
			s.bumpRejected()
			return nil, fmt.Errorf("%w: %d jobs queued (cap %d), nothing cheaper to shed",
				ErrQueueFull, s.queuedTotal(), s.cfg.MaxQueued)
		}
	}

	if replayID == "" {
		if jerr := s.journal.append(journalEntry{Op: "submit", ID: id, Spec: &spec}); jerr != nil {
			s.bumpRejected()
			return nil, jerr
		}
	}
	sh := s.shardFor(spec.Tenant)
	if aerr := sh.adm.submit(j); aerr != nil {
		// Close the journal record so replay does not resurrect it.
		s.journal.append(journalEntry{Op: "shed", ID: id, Err: aerr.Error()})
		s.bumpRejected()
		return nil, aerr
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.submitted++
	s.mu.Unlock()
	s.ctl.InstantV(trace.Wall, trace.TrackServe, "job-submit", s.ctl.Now(), float64(j.Spec.Priority))
	s.ctl.Counter(trace.Wall, trace.TrackServe, "queued", s.ctl.Now(), float64(s.queuedTotal()))
	wakeShard(sh)
	return j, nil
}

func wakeShard(sh *shard) {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

func (s *Server) bumpRejected() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

// queuedTotal sums queue depth across shards.
func (s *Server) queuedTotal() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.adm.size()
	}
	return n
}

// shedBelow removes the globally lowest-priority queued job if its
// priority is strictly below p.
func (s *Server) shedBelow(p int) *Job {
	// Two-phase across shards: shed per shard, keep the cheapest, put
	// the others back. Shards are few; jobs move, never vanish.
	var victims []*Job
	for _, sh := range s.shards {
		if v := sh.adm.shedLowest(); v != nil {
			victims = append(victims, v)
		}
	}
	var cheapest *Job
	for _, v := range victims {
		if cheapest == nil || v.Spec.Priority < cheapest.Spec.Priority ||
			(v.Spec.Priority == cheapest.Spec.Priority && v.submitted.After(cheapest.submitted)) {
			cheapest = v
		}
	}
	for _, v := range victims {
		if v != cheapest {
			s.shardFor(v.Spec.Tenant).adm.requeueFront(v)
		}
	}
	if cheapest == nil || cheapest.Spec.Priority >= p {
		if cheapest != nil {
			s.shardFor(cheapest.Spec.Tenant).adm.requeueFront(cheapest)
		}
		return nil
	}
	return cheapest
}

// RetryAfter estimates (in whole seconds, ≥ 1) when a rejected submit is
// worth retrying: the current backlog divided by the worker pool.
func (s *Server) RetryAfter() int {
	sec := 1 + s.queuedTotal()/s.cfg.Workers
	return sec
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns a snapshot of every job's status, newest first.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Snapshot())
	}
	// Deterministic order: by ID (IDs are zero-padded sequence numbers).
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].ID < out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Cancel cancels a job: a queued job (in its shard's queue, waiting for
// a worker slot, or in retry backoff) is finished directly; a running
// job's context is canceled and its supervisor drains a checkpoint
// before it finishes. Unknown or already-finished jobs report false.
func (s *Server) Cancel(id string) (bool, error) {
	j, ok := s.Job(id)
	if !ok {
		return false, nil
	}
	j.mu.Lock()
	terminal := j.state.terminal()
	cancel := j.cancel
	j.mu.Unlock()
	switch {
	case terminal:
		return false, nil
	case cancel != nil:
		// Running: the runner observes ErrCanceled and finishes it.
		cancel(errTenantCanceled)
		return true, nil
	default:
		// Queued in any of its forms. Best-effort dequeue; if the job is
		// in slot-wait limbo or retry backoff instead, the terminal
		// state makes the scheduler skip it when it resurfaces.
		s.shardFor(j.Spec.Tenant).adm.remove(id)
		s.finishJob(j, StateCanceled, "canceled while queued", perf.RecoveryStats{})
		return true, nil
	}
}

// finishJob moves a job to a terminal state, updates fleet accounting
// and appends the journal record. Safe to call from any goroutine;
// first terminal transition wins.
func (s *Server) finishJob(j *Job, state JobState, errMsg string, stats perf.RecoveryStats) {
	j.mu.Lock()
	j.stats = stats
	j.mu.Unlock()
	if !j.finish(state, errMsg) {
		return
	}
	var op string
	switch state {
	case StateDone:
		op = "done"
	case StateFailed:
		op = "fail"
	case StateCanceled:
		op = "cancel"
	case StateShed:
		op = "shed"
	}
	// A kill (crash simulation) and a drain both leave interrupted jobs
	// open in the journal on purpose: replay re-admits them.
	interrupted := (state == StateCanceled) && (s.killed.Load() || s.draining.Load())
	if !interrupted && !s.killed.Load() {
		s.journal.append(journalEntry{Op: op, ID: j.ID, Err: errMsg})
	}
	s.mu.Lock()
	switch state {
	case StateDone:
		s.completed++
	case StateFailed:
		s.failed++
	case StateCanceled:
		s.canceled++
	case StateShed:
		s.shed++
	}
	s.agg.Merge(stats)
	j.mu.Lock()
	if !j.started.IsZero() && !j.finished.IsZero() {
		s.latency.Record(j.finished.Sub(j.started).Seconds())
	}
	j.mu.Unlock()
	s.mu.Unlock()
	s.ctl.Instant(trace.Wall, trace.TrackServe, "job-"+string(state), s.ctl.Now())
	// Wake waiters last: anyone unblocked by Done() sees the fleet
	// counters already including this job.
	close(j.done)
}

// Drain is graceful shutdown: stop admitting, cancel running jobs (each
// supervisor preserves a drain checkpoint through the L1–L4 hierarchy),
// wait for every worker to exit, and close the journal. Interrupted
// jobs stay open in the journal, so the next start resumes them. The
// context bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.logf("serve: draining: %d queued, %d running", s.queuedTotal(), s.Running())
	s.rootCancel(errDrainStop)
	waitDone := make(chan struct{})
	// The waiter is bounded: rootCancel above stops every worker the wg
	// counts, and if one wedges anyway the goroutine is the process's
	// last — Drain returns via ctx.Done and the daemon exits.
	//lint:ignore goleak wg.Wait is bounded by rootCancel stopping all counted workers
	go func() { s.wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-ctx.Done():
		s.journal.close()
		return fmt.Errorf("serve: drain timed out with %d jobs still running: %w", s.Running(), ctx.Err())
	}
	err := s.journal.close()
	s.logf("serve: drained cleanly")
	return err
}

// Kill is the crash simulation used by restart tests: hard-stop the
// scheduler and running jobs without journaling any terminal records —
// exactly what a SIGKILL'd daemon leaves behind. The journal file is
// closed (the OS would have done it) and the in-memory state abandoned.
func (s *Server) Kill() {
	if !s.killed.CompareAndSwap(false, true) {
		return
	}
	s.draining.Store(true) // refuse new submits
	s.rootCancel(errKilled)
	s.wg.Wait()
	s.journal.close()
}

// Running returns the number of jobs currently executing.
func (s *Server) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Draining reports whether the daemon has begun shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// checkpointPath is the job's drain/L4 checkpoint file.
func (s *Server) checkpointPath(j *Job) string {
	return filepath.Join(s.cfg.DataDir, j.ID+".cpk")
}
