package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"runtime"

	"sunwaylb/internal/core"
	"sunwaylb/internal/perf"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs             submit (202; 429 + Retry-After when full; 503 draining)
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        job status
//	DELETE /jobs/{id}        cancel (queued: dequeued; running: drained)
//	GET    /jobs/{id}/result result digest (409 until done)
//	GET    /healthz          liveness (503 while draining)
//	GET    /metrics          fleet metrics JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	j, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, j.Snapshot())
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrQueueFull):
		// Backpressure, not failure: tell the tenant when capacity is
		// plausibly back.
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.RetryAfter()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	canceled, err := s.Cancel(id)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	if !canceled {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job already finished"})
		return
	}
	j, _ := s.Job(id)
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// ResultDigest is the JSON result payload: dimensions, step count and a
// checksum over the exact field bits. Two runs that agree on the digest
// checksum agree on every bit of every value (FNV-1a over the IEEE-754
// representations) — enough for tenants to verify reproducibility
// without shipping the full field.
type ResultDigest struct {
	ID       string             `json:"id"`
	Name     string             `json:"name"`
	NX       int                `json:"nx"`
	NY       int                `json:"ny"`
	NZ       int                `json:"nz"`
	Steps    int                `json:"steps"`
	Checksum string             `json:"checksum"`
	Recovery perf.RecoveryStats `json:"recovery"`
}

// FieldChecksum hashes the field's exact bit content (FNV-1a, 64-bit).
func FieldChecksum(m *core.MacroField) string {
	h := fnv.New64a()
	var b [8]byte
	sum := func(vals []float64) {
		for _, v := range vals {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
	}
	sum(m.Rho)
	sum(m.Ux)
	sum(m.Uy)
	sum(m.Uz)
	return fmt.Sprintf("%016x", h.Sum64())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	st := j.Snapshot()
	if st.State != StateDone {
		writeJSON(w, http.StatusConflict, errorBody{
			Error: fmt.Sprintf("job is %s, results exist only for done jobs", st.State)})
		return
	}
	m := j.Result()
	writeJSON(w, http.StatusOK, ResultDigest{
		ID:       j.ID,
		Name:     j.Spec.Case.Name,
		NX:       m.NX,
		NY:       m.NY,
		NZ:       m.NZ,
		Steps:    j.Spec.Case.Steps,
		Checksum: FieldChecksum(m),
		Recovery: st.Recovery,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Metrics is the fleet view served by GET /metrics: queue and worker
// gauges, lifecycle counters, the aggregate recovery scorecard merged
// across every finished job, job-latency percentiles, and the state of
// the bounded service trace ring.
type Metrics struct {
	Queued        int            `json:"queued"`
	QueuedTenant  map[string]int `json:"queued_by_tenant,omitempty"`
	Running       int            `json:"running"`
	Workers       int            `json:"workers"`
	WorkersBusy   int            `json:"workers_busy"`
	Submitted     int64          `json:"submitted"`
	Completed     int64          `json:"completed"`
	Failed        int64          `json:"failed"`
	Canceled      int64          `json:"canceled"`
	Shed          int64          `json:"shed"`
	Rejected      int64          `json:"rejected"`
	Draining      bool           `json:"draining"`
	JournalReplay int            `json:"journal_replayed_records"`
	// Recovery is every job's perf.RecoveryStats merged: the fleet's
	// fault-tolerance scorecard.
	Recovery perf.RecoveryStats `json:"recovery"`
	// JobSec summarises job run durations (seconds) over finished jobs.
	JobSec perf.Summary `json:"job_sec"`
	// TraceEvents/TraceDropped report the bounded telemetry ring: events
	// currently buffered and events overwritten since start.
	TraceEvents  int   `json:"trace_events"`
	TraceDropped int64 `json:"trace_dropped"`
	Goroutines   int   `json:"goroutines"`
	// Patch aggregates the patch-decomposed jobs' balancer activity;
	// omitted until the first patch-mode job runs.
	Patch *PatchMetrics `json:"patch,omitempty"`
}

// PatchMetrics is the fleet's patch-mode scorecard: how many jobs ran
// patch-decomposed, how much the balancer and the recovery path moved
// patches, and the last finished job's placement and imbalance.
type PatchMetrics struct {
	Jobs       int64 `json:"jobs"`
	Migrations int64 `json:"migrations"`
	Rebalances int64 `json:"rebalances"`
	// LastImbalance is the final measured max/mean worker-load ratio of
	// the most recent patch job that reported one.
	LastImbalance float64 `json:"last_imbalance,omitempty"`
	// PatchesPerOwner is the final patch placement of the most recent
	// patch job (index = worker).
	PatchesPerOwner []int `json:"patches_per_owner,omitempty"`
}

// MetricsSnapshot assembles the current fleet metrics.
func (s *Server) MetricsSnapshot() Metrics {
	byTenant := make(map[string]int)
	for _, sh := range s.shards {
		sh.adm.byTenant(byTenant)
	}
	s.mu.Lock()
	m := Metrics{
		Running:       s.running,
		Workers:       s.cfg.Workers,
		Submitted:     s.submitted,
		Completed:     s.completed,
		Failed:        s.failed,
		Canceled:      s.canceled,
		Shed:          s.shed,
		Rejected:      s.rejected,
		Recovery:      s.agg,
		JobSec:        s.latency.SummaryStats(),
		JournalReplay: s.replayed,
	}
	if s.patchJobs > 0 {
		m.Patch = &PatchMetrics{
			Jobs:            s.patchJobs,
			Migrations:      s.patchMigrations,
			Rebalances:      s.patchRebalances,
			LastImbalance:   s.patchLastImbalance,
			PatchesPerOwner: append([]int(nil), s.patchPerOwner...),
		}
	}
	s.mu.Unlock()
	m.Queued = s.queuedTotal()
	if len(byTenant) > 0 {
		m.QueuedTenant = byTenant
	}
	m.WorkersBusy = len(s.pool)
	m.Draining = s.Draining()
	m.TraceEvents = len(s.tracer.Events())
	m.TraceDropped = s.tracer.Dropped()
	m.Goroutines = runtime.NumGoroutine()
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}
