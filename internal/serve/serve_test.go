package serve

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"sunwaylb/internal/config"
	"sunwaylb/internal/conform"
	"sunwaylb/internal/core"
	"sunwaylb/internal/psolve"
)

// smallCase is the shared tiny job for service tests: fully periodic,
// two ranks, a handful of steps — small enough that a fleet of them
// runs in milliseconds, large enough to cross rank boundaries.
func smallCase(name string, steps int) config.Case {
	return config.Case{Name: name, NX: 12, NY: 10, NZ: 6, Tau: 0.7, Steps: steps}
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitJob(t *testing.T, j *Job) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s stuck in state %s", j.ID, j.State())
	}
	return j.Snapshot()
}

// soloField runs the job's exact configuration outside the service —
// same options builder, no supervisor, no faults — as the bit-identity
// reference.
func soloField(t *testing.T, spec JobSpec) *core.MacroField {
	t.Helper()
	opts, err := BuildOptions(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := psolve.Run(opts, spec.Case.Steps)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestChaosIsolation is the acceptance scenario for per-job fault
// isolation: 8 concurrent jobs across 4 tenants, half carrying
// crash@/flap@ fault plans. Every clean job's field must be
// bit-identical (MaxULP = 0) to a solo run of the same configuration —
// a neighbour's faults must not perturb so much as one ULP — and every
// single-loss fault job must recover purely from memory
// (DiskRollbacks == 0) and still converge to the solo answer.
func TestChaosIsolation(t *testing.T) {
	s := testServer(t, Config{Workers: 4, Shards: 2})
	defer s.Drain(context.Background())

	const steps = 12
	var specs []JobSpec
	for i := 0; i < 8; i++ {
		spec := JobSpec{
			Tenant: fmt.Sprintf("tenant-%c", 'a'+i%4),
			Case:   smallCase(fmt.Sprintf("chaos-%d", i), steps),
			Decomp: "2x1",
		}
		switch {
		case i%2 == 0:
			// clean
		case i == 7:
			// Heartbeat flap, noticed only by the phi detector; the rank
			// stays alive, so the run completes either way.
			spec.FaultPlan = "seed=9;flap@rank=1,step=6,len=3"
			spec.Detector = "phi"
		default:
			// Single rank loss per job: must hot-swap from memory.
			spec.FaultPlan = fmt.Sprintf("seed=%d;crash@rank=1,step=7", 40+i)
		}
		specs = append(specs, spec)
	}

	var jobs []*Job
	for _, spec := range specs {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %s: %v", spec.Case.Name, err)
		}
		jobs = append(jobs, j)
	}

	for i, j := range jobs {
		st := waitJob(t, j)
		if st.State != StateDone {
			t.Fatalf("job %s (%s) finished %s: %s", j.ID, specs[i].Case.Name, st.State, st.Error)
		}
		ref := soloField(t, specs[i])
		if err := conform.Compare(ref, j.Result(), conform.Exact); err != nil {
			t.Errorf("job %s (%s) diverged from its solo run: %v", j.ID, specs[i].Case.Name, err)
		}
		stats := j.Stats()
		if specs[i].FaultPlan == "" && !stats.Clean() {
			t.Errorf("clean job %s needed recovery: %s", j.ID, stats)
		}
		if specs[i].FaultPlan != "" && specs[i].Detector != "phi" {
			// Single loss within the parity group: memory repair only.
			if stats.DiskRollbacks != 0 {
				t.Errorf("job %s escalated to %d disk rollbacks; single loss must hot-swap", j.ID, stats.DiskRollbacks)
			}
			if stats.HotSwaps < 1 {
				t.Errorf("job %s recovered without a hot swap (restarts=%d)", j.ID, stats.Restarts)
			}
		}
	}
}

// TestPatchJobConformance: a patch-decomposed job — including one that
// loses a worker mid-run and repairs by migrating its patches — must be
// bit-identical to a psolve solo run of the same periodic shear box,
// and the fleet metrics must expose the patch gauges.
func TestPatchJobConformance(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	defer s.Drain(context.Background())

	clean := JobSpec{Tenant: "pat", Case: smallCase("patch-clean", 10), Decomp: "patch3"}
	faulted := JobSpec{
		Tenant: "pat",
		Case:   smallCase("patch-chaos", 12),
		Decomp: "patch3",
		// Valid only because patch3 presents a 3-worker world: worker 2
		// dies and its patches migrate to the survivors from memory.
		FaultPlan: "seed=5;crash@rank=2,step=6",
	}

	jc, err := s.Submit(clean)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := s.Submit(faulted)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		j    *Job
		spec JobSpec
	}{{jc, clean}, {jf, faulted}} {
		st := waitJob(t, tc.j)
		if st.State != StateDone {
			t.Fatalf("patch job %s finished %s: %s", tc.spec.Case.Name, st.State, st.Error)
		}
		// The psolve solo run of the same box is the cross-subsystem
		// reference: patch world and rank world must agree on every bit.
		solo := tc.spec
		solo.Decomp = "1x1"
		solo.FaultPlan = "" // the reference runs the same physics, unfaulted
		if err := conform.Compare(soloField(t, solo), tc.j.Result(), conform.Exact); err != nil {
			t.Errorf("patch job %s diverged from the psolve solo run: %v", tc.spec.Case.Name, err)
		}
	}
	if st := jf.Stats(); st.HotSwaps < 1 || st.DiskRollbacks != 0 {
		t.Errorf("faulted patch job recovery: %+v, want memory-plan migration only", st)
	}

	m := s.MetricsSnapshot()
	if m.Patch == nil {
		t.Fatal("metrics missing patch gauges after patch jobs ran")
	}
	if m.Patch.Jobs != 2 {
		t.Errorf("patch jobs gauge = %d, want 2", m.Patch.Jobs)
	}
	if m.Patch.Migrations < 1 {
		t.Errorf("patch migrations gauge = %d, want ≥1 from the recovery", m.Patch.Migrations)
	}
	if len(m.Patch.PatchesPerOwner) == 0 {
		t.Error("patch placement gauge empty")
	}

	if _, err := s.Submit(JobSpec{Case: smallCase("bad", 5), Decomp: "patch0"}); err == nil {
		t.Error("accepted malformed patch decomp")
	}
	if _, err := s.Submit(JobSpec{
		Case: smallCase("bad", 5), Decomp: "patch2",
		FaultPlan: "seed=1;crash@rank=5,step=2",
	}); err == nil {
		t.Error("accepted fault plan naming a worker outside the patch world")
	}
}

// TestTenantPanicContained: a job whose fault plan cannot exist — here a
// panic planted via a defective case — must fail alone. The daemon and
// a concurrently running clean job are untouched.
func TestTenantPanicContained(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	defer s.Drain(context.Background())

	// NZ=0 would be rejected at validation; instead plant a panic through
	// the one richness the spec allows — an absurd decomposition that
	// psolve rejects — no, rejection is an error, not a panic. The panic
	// path is exercised through psolve directly in its own tests; here we
	// verify the service-level classification of a *failing* neighbour.
	bad := JobSpec{
		Tenant: "mallory",
		Case:   smallCase("doomed", 10),
		Decomp: "2x1",
		// Crash both ranks of the only parity group at once: multi-loss,
		// not memory-repairable, no disk checkpoint, zero budget left.
		FaultPlan:   "seed=1;crash@rank=0,step=3;crash@rank=1,step=3",
		MaxRestarts: -1,
	}
	good := JobSpec{Tenant: "alice", Case: smallCase("fine", 10), Decomp: "2x1"}

	jb, err := s.Submit(bad)
	if err != nil {
		t.Fatal(err)
	}
	jg, err := s.Submit(good)
	if err != nil {
		t.Fatal(err)
	}

	if st := waitJob(t, jb); st.State != StateFailed {
		t.Errorf("doomed job finished %s, want failed", st.State)
	}
	st := waitJob(t, jg)
	if st.State != StateDone {
		t.Fatalf("clean neighbour finished %s: %s", st.State, st.Error)
	}
	if err := conform.Compare(soloField(t, good), jg.Result(), conform.Exact); err != nil {
		t.Errorf("neighbour of a failing job diverged: %v", err)
	}
}

// TestWorkerLossRetry: a job that keeps losing its workers is re-queued
// with backoff until its retry budget runs out, then fails with the
// worker-loss cause; the attempt count is 1 + retries.
func TestWorkerLossRetry(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	defer s.Drain(context.Background())

	j, err := s.Submit(JobSpec{
		Tenant:      "retry",
		Case:        smallCase("lossy", 10),
		Decomp:      "2x1",
		FaultPlan:   "seed=3;crash@rank=0,step=3",
		MaxRestarts: -1, // every rank loss kills the whole service attempt
		Retries:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateFailed {
		t.Fatalf("lossy job finished %s, want failed", st.State)
	}
	if st.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", st.Attempts)
	}
	if !strings.Contains(st.Error, "injected rank crash") {
		t.Errorf("failure cause should carry the injected crash, got: %s", st.Error)
	}
}

// TestCancelQueuedAndRunning: a queued job cancels instantly; a running
// job cancels through its context and leaves a resumable drain
// checkpoint.
func TestCancelQueuedAndRunning(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	defer s.Drain(context.Background())

	// Worker 1 is busy with a long job; the second stays queued.
	long := JobSpec{Tenant: "t", Case: smallCase("long", 100000), Decomp: "2x1", SnapshotEvery: 2}
	jRun, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	jQueued, err := s.Submit(JobSpec{Tenant: "t", Case: smallCase("waiting", 10), Decomp: "2x1"})
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the first is actually running.
	deadline := time.Now().Add(10 * time.Second)
	for jRun.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("first job never started (state %s)", jRun.State())
		}
		time.Sleep(time.Millisecond)
	}

	if ok, err := s.Cancel(jQueued.ID); err != nil || !ok {
		t.Fatalf("cancel queued: ok=%v err=%v", ok, err)
	}
	if st := waitJob(t, jQueued); st.State != StateCanceled {
		t.Errorf("queued job finished %s, want canceled", st.State)
	}

	if ok, err := s.Cancel(jRun.ID); err != nil || !ok {
		t.Fatalf("cancel running: ok=%v err=%v", ok, err)
	}
	if st := waitJob(t, jRun); st.State != StateCanceled {
		t.Errorf("running job finished %s, want canceled", st.State)
	}
}

// TestDeadlineWhileQueued: a job with a tiny timeout sitting behind a
// long run must fail with the deadline cause without ever wasting a
// worker slot.
func TestDeadlineWhileQueued(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	defer s.Drain(context.Background())

	blocker, err := s.Submit(JobSpec{Tenant: "t", Case: smallCase("blocker", 100000), Decomp: "2x1"})
	if err != nil {
		t.Fatal(err)
	}
	impatient, err := s.Submit(JobSpec{
		Tenant:     "t",
		Case:       smallCase("impatient", 10),
		Decomp:     "2x1",
		TimeoutSec: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, impatient)
	if st.State != StateFailed {
		t.Fatalf("impatient job finished %s, want failed (deadline)", st.State)
	}
	s.Cancel(blocker.ID)
	waitJob(t, blocker)
}
