package serve

import (
	"os"
	"path/filepath"
	"testing"
)

// TestJournalReplayTornTail: a crash mid-append leaves a torn final line;
// replay must keep every record before it and ignore the fragment — the
// journal's whole crash-safety contract.
func TestJournalReplayTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	spec := JobSpec{Tenant: "t", Case: smallCase("a", 5)}

	jl, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	must := func(e journalEntry) {
		t.Helper()
		if err := jl.append(e); err != nil {
			t.Fatal(err)
		}
	}
	must(journalEntry{Op: "submit", ID: "j000001", Spec: &spec})
	must(journalEntry{Op: "submit", ID: "j000002", Spec: &spec})
	must(journalEntry{Op: "start", ID: "j000001"})
	must(journalEntry{Op: "done", ID: "j000001"})
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}
	// The torn tail: a submit record the crash cut off mid-write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"submit","id":"j0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	pending, replayed, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 4 {
		t.Errorf("replayed %d records, want 4 (torn tail excluded)", replayed)
	}
	if len(pending) != 1 || pending[0].ID != "j000002" {
		t.Fatalf("pending = %+v, want exactly the unfinished j000002", pending)
	}
	if pending[0].Spec.Case.Name != "a" {
		t.Errorf("replayed spec lost its case: %+v", pending[0].Spec)
	}
}

// TestJournalReplayMissing: no journal file means a clean first start.
func TestJournalReplayMissing(t *testing.T) {
	pending, replayed, err := replayJournal(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil || len(pending) != 0 || replayed != 0 {
		t.Fatalf("fresh start: pending=%v replayed=%d err=%v", pending, replayed, err)
	}
}

// TestJournalTerminalOps: every terminal op closes its job; only open
// jobs come back, in submit order.
func TestJournalTerminalOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	spec := JobSpec{Tenant: "t", Case: smallCase("a", 5)}
	jl, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"j000001", "j000002", "j000003", "j000004", "j000005"}
	for _, id := range ids {
		jl.append(journalEntry{Op: "submit", ID: id, Spec: &spec})
	}
	jl.append(journalEntry{Op: "done", ID: "j000001"})
	jl.append(journalEntry{Op: "fail", ID: "j000002", Err: "boom"})
	jl.append(journalEntry{Op: "cancel", ID: "j000003"})
	jl.append(journalEntry{Op: "shed", ID: "j000004"})
	jl.close()

	pending, _, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ID != "j000005" {
		t.Fatalf("pending = %+v, want only j000005", pending)
	}
}
