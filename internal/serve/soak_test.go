package serve

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"sunwaylb/internal/conform"
)

// TestServeLoadSoak floods the daemon with hundreds of queued jobs across
// six tenants, a third of them carrying fault plans, and holds the
// service to its always-on contract: every job completes, the bounded
// trace ring stays bounded (drops counted, memory O(1)), heap stays
// sane, and spot-checked results remain bit-identical to solo runs even
// at full load. Run by the `serve` CI tier; skipped under -short.
func TestServeLoadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("load soak skipped in -short mode")
	}
	const (
		jobs     = 240
		tenants  = 6
		traceBuf = 512
	)
	s := testServer(t, Config{
		Workers:        4,
		Shards:         2,
		QueuePerTenant: 64,
		MaxQueued:      512,
		TraceBuf:       traceBuf,
		Logf:           nil, // silent: hundreds of jobs would drown the log
	})
	s.logf = func(string, ...any) {}
	defer s.Drain(context.Background())

	var specs []JobSpec
	var handles []*Job
	for i := 0; i < jobs; i++ {
		spec := JobSpec{
			Tenant:        fmt.Sprintf("soak-%d", i%tenants),
			Case:          smallCase(fmt.Sprintf("soak-%d", i), 6),
			Decomp:        "2x1",
			SnapshotEvery: 2,
		}
		switch {
		case i%3 == 1:
			// Single rank loss: hot-swap recovery under load.
			spec.FaultPlan = fmt.Sprintf("seed=%d;crash@rank=1,step=3", 100+i)
		case i%9 == 4:
			spec.FaultPlan = fmt.Sprintf("seed=%d;flap@rank=1,step=2,len=2", 200+i)
			spec.Detector = "phi"
		}
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		specs = append(specs, spec)
		handles = append(handles, j)
	}

	for i, j := range handles {
		st := waitJob(t, j)
		if st.State != StateDone {
			t.Fatalf("soak job %d (%s) finished %s: %s", i, j.ID, st.State, st.Error)
		}
	}

	// Spot-check bit-identity at full load: one clean, one crashing, one
	// flapping job against their solo references.
	for _, i := range []int{0, 1, 4} {
		if err := conform.Compare(soloField(t, specs[i]), handles[i].Result(), conform.Exact); err != nil {
			t.Errorf("soak job %d diverged from solo under load: %v", i, err)
		}
	}

	m := s.MetricsSnapshot()
	if m.Completed != jobs {
		t.Errorf("completed %d of %d jobs", m.Completed, jobs)
	}
	if m.Failed != 0 || m.Shed != 0 {
		t.Errorf("soak lost work: failed=%d shed=%d", m.Failed, m.Shed)
	}
	// The always-on telemetry ring must stay bounded no matter how much
	// the fleet churns: events capped, overflow counted, not grown.
	if m.TraceEvents > traceBuf {
		t.Errorf("trace ring grew to %d events, bound is %d", m.TraceEvents, traceBuf)
	}
	if m.TraceDropped == 0 {
		t.Errorf("soak produced no trace drops; ring bound of %d was never exercised", traceBuf)
	}
	if m.Recovery.HotSwaps == 0 {
		t.Error("a third of jobs crashed a rank but the fleet recorded no hot swaps")
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 512<<20 {
		t.Errorf("heap at %d MiB after soak; daemon memory is not bounded", ms.HeapAlloc>>20)
	}
}
