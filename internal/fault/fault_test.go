package fault

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParsePlanFull(t *testing.T) {
	p, err := ParsePlan("seed=42;crash@rank=2,step=13;drop@src=0,dst=1,p=0.3,max=3;" +
		"dup@p=0.1;flip@src=-1,dst=2,p=0.05;straggle@rank=1,x=4;corrupt@ckpt=2")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Seed:    42,
		Crashes: []Crash{{Rank: 2, Step: 13}},
		Links: []Link{
			{Src: 0, Dst: 1, Drop: 0.3, Max: 3},
			{Src: -1, Dst: -1, Dup: 0.1},
			{Src: -1, Dst: 2, Flip: 0.05},
		},
		Stragglers:   []Straggler{{Rank: 1, Factor: 4}},
		CorruptCkpts: []int{2},
	}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("parsed %+v, want %+v", p, want)
	}
}

// TestPlanStringRoundTrip: Plan.String renders a DSL that parses back to
// the same plan (so logged plans are replayable).
func TestPlanStringRoundTrip(t *testing.T) {
	orig, err := ParsePlan("seed=7;crash@rank=0,step=5;drop@src=1,dst=0,p=0.25,max=2;straggle@rank=3,x=2.5;corrupt@ckpt=1")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParsePlan(orig.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", orig.String(), err)
	}
	if !reflect.DeepEqual(orig, again) {
		t.Errorf("round trip changed the plan:\n  orig  %+v\n  again %+v", orig, again)
	}
}

func TestParsePlanEmpty(t *testing.T) {
	p, err := ParsePlan("")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Errorf("empty string parsed to non-empty plan %+v", p)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus@x=1",
		"crash@rank=1",          // missing step
		"drop@src=0,dst=1",      // missing p
		"drop@src=0,dst=1,p=2",  // p out of range
		"straggle@rank=1,x=0.5", // x < 1
		"corrupt@ckpt=0",        // ckpt < 1
		"seed=abc",
		"crash@rank",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad plan", bad)
		}
	}
}

// TestCrashOneShot: a crash entry fires exactly once, so a supervised
// replay of the same step does not die again.
func TestCrashOneShot(t *testing.T) {
	in := NewInjector(Plan{Crashes: []Crash{{Rank: 1, Step: 5}}})
	if in.CrashNow(0, 5) || in.CrashNow(1, 4) {
		t.Error("crash fired for wrong rank/step")
	}
	if !in.CrashNow(1, 5) {
		t.Error("crash did not fire at its coordinates")
	}
	if in.CrashNow(1, 5) {
		t.Error("crash fired twice (must be one-shot)")
	}
	if s := in.Stats(); s.Crashes != 1 {
		t.Errorf("stats.Crashes = %d, want 1", s.Crashes)
	}
}

// TestOnSendDeterminism: two injectors with the same seed make identical
// per-message decisions; a different seed diverges somewhere.
func TestOnSendDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, Links: []Link{{Src: -1, Dst: -1, Drop: 0.3}}}
	run := func(p Plan) []int {
		in := NewInjector(p)
		out := make([]int, 200)
		for i := range out {
			out[i] = in.OnSend(0, 1, 0, []float64{1, 2, 3}, nil)
		}
		return out
	}
	a, b := run(plan), run(plan)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault decisions")
	}
	drops := 0
	for _, c := range a {
		if c == 0 {
			drops++
		}
	}
	if drops < 30 || drops > 90 {
		t.Errorf("drop rate %d/200 implausible for p=0.3", drops)
	}
	plan.Seed = 43
	if reflect.DeepEqual(a, run(plan)) {
		t.Error("different seeds produced identical decisions")
	}
}

// TestOnSendMaxBudget: Max bounds the total faults of one entry.
func TestOnSendMaxBudget(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Links: []Link{{Src: -1, Dst: -1, Drop: 1, Max: 2}}})
	drops := 0
	for i := 0; i < 10; i++ {
		if in.OnSend(0, 1, 0, []float64{1}, nil) == 0 {
			drops++
		}
	}
	if drops != 2 {
		t.Errorf("dropped %d messages, want exactly Max=2", drops)
	}
}

// TestFlipMutatesPayload: a certain flip changes exactly the payload (in
// place) and never produces Inf/NaN on its own.
func TestFlipMutatesPayload(t *testing.T) {
	in := NewInjector(Plan{Seed: 9, Links: []Link{{Src: -1, Dst: -1, Flip: 1, Max: 1}}})
	data := []float64{1.5, -2.25, 0.125}
	orig := append([]float64(nil), data...)
	if c := in.OnSend(0, 1, 0, data, nil); c != 1 {
		t.Fatalf("flip returned %d copies, want 1", c)
	}
	changed := 0
	for i := range data {
		if data[i] != orig[i] {
			changed++
			if math.IsInf(data[i], 0) || math.IsNaN(data[i]) {
				t.Errorf("flip produced non-finite %v", data[i])
			}
		}
	}
	if changed != 1 {
		t.Errorf("flip changed %d values, want exactly 1", changed)
	}
	if s := in.Stats(); s.Flips != 1 {
		t.Errorf("stats.Flips = %d, want 1", s.Flips)
	}
}

// TestFlipAux: with an empty float payload the flip lands in the byte
// sidecar instead.
func TestFlipAux(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, Links: []Link{{Src: -1, Dst: -1, Flip: 1, Max: 1}}})
	aux := []byte{0, 0, 0, 0}
	in.OnSend(0, 1, 0, nil, aux)
	changed := 0
	for _, b := range aux {
		if b != 0 {
			changed++
		}
	}
	if changed != 1 {
		t.Errorf("aux flip changed %d bytes, want 1", changed)
	}
}

// TestLinkMatching: src/dst filters restrict an entry to its link; -1
// wildcards match any rank.
func TestLinkMatching(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Links: []Link{{Src: 0, Dst: 1, Drop: 1}}})
	if c := in.OnSend(1, 0, 0, []float64{1}, nil); c != 1 {
		t.Error("entry for link 0→1 fired on link 1→0")
	}
	if c := in.OnSend(0, 2, 0, []float64{1}, nil); c != 1 {
		t.Error("entry for link 0→1 fired on link 0→2")
	}
	if c := in.OnSend(0, 1, 0, []float64{1}, nil); c != 0 {
		t.Error("entry for link 0→1 did not fire on its own link")
	}
}

func TestStragglerMultipliers(t *testing.T) {
	in := NewInjector(Plan{Stragglers: []Straggler{{Rank: 1, Factor: 4}, {Rank: 9, Factor: 3}}})
	if f := in.StragglerFactor(1); f != 4 {
		t.Errorf("StragglerFactor(1) = %v, want 4", f)
	}
	if f := in.StragglerFactor(0); f != 1 {
		t.Errorf("StragglerFactor(0) = %v, want 1", f)
	}
	got := in.StragglerMultipliers(4) // rank 9 is out of range
	want := []float64{1, 4, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("StragglerMultipliers(4) = %v, want %v", got, want)
	}
}

// TestCorruptCheckpointBytes: one-shot, deterministic single-byte
// corruption of the matching write index only.
func TestCorruptCheckpointBytes(t *testing.T) {
	mk := func() []byte { return []byte{1, 2, 3, 4, 5, 6, 7, 8} }
	in := NewInjector(Plan{Seed: 5, CorruptCkpts: []int{2}})
	b1 := mk()
	if in.CorruptCheckpointBytes(b1, 1) {
		t.Error("write 1 corrupted but plan targets write 2")
	}
	b2 := mk()
	if !in.CorruptCheckpointBytes(b2, 2) {
		t.Fatal("write 2 not corrupted")
	}
	diff := 0
	for i := range b2 {
		if b2[i] != mk()[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption changed %d bytes, want 1", diff)
	}
	if in.CorruptCheckpointBytes(mk(), 2) {
		t.Error("write-2 corruption fired twice (must be one-shot)")
	}
	// Same seed ⇒ same corrupted byte.
	in2 := NewInjector(Plan{Seed: 5, CorruptCkpts: []int{2}})
	b3 := mk()
	in2.CorruptCheckpointBytes(b3, 2)
	if !reflect.DeepEqual(b2, b3) {
		t.Error("same seed corrupted different bytes")
	}
}

func TestCorruptCheckpointFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.cpk")
	orig := []byte("checkpoint-payload-bytes")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(Plan{Seed: 5, CorruptCkpts: []int{1}})
	ok, err := in.CorruptCheckpointFile(path, 1)
	if err != nil || !ok {
		t.Fatalf("corrupt: ok=%v err=%v", ok, err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("file corruption changed %d bytes, want 1", diff)
	}
	if s := in.Stats(); s.CkptsCorrupted != 1 {
		t.Errorf("stats.CkptsCorrupted = %d, want 1", s.CkptsCorrupted)
	}
	// Non-matching index touches nothing and is not an error.
	if ok, err := in.CorruptCheckpointFile(path, 3); err != nil || ok {
		t.Errorf("non-matching index: ok=%v err=%v, want no-op", ok, err)
	}
}

func TestParsePlanFlapAndGroupCrash(t *testing.T) {
	p, err := ParsePlan("seed=7;flap@rank=3,step=10,len=5;crash@group=1,count=2,step=4;crash@rank=0,step=9")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Flaps) != 1 || p.Flaps[0] != (Flap{Rank: 3, Step: 10, Len: 5}) {
		t.Fatalf("flaps = %+v", p.Flaps)
	}
	if len(p.GroupCrashes) != 1 || p.GroupCrashes[0] != (GroupCrash{Group: 1, Count: 2, Step: 4}) {
		t.Fatalf("group crashes = %+v", p.GroupCrashes)
	}
	if len(p.Crashes) != 1 || p.Crashes[0] != (Crash{Rank: 0, Step: 9}) {
		t.Fatalf("crashes = %+v", p.Crashes)
	}
	// Group step defaults to 1 when omitted.
	p2, err := ParsePlan("crash@group=0,count=1")
	if err != nil {
		t.Fatal(err)
	}
	if p2.GroupCrashes[0].Step != 1 {
		t.Fatalf("default group-crash step = %d, want 1", p2.GroupCrashes[0].Step)
	}
}

func TestFlapGroupCrashRoundTrip(t *testing.T) {
	const src = "seed=9;crash@rank=1,step=2;crash@group=2,count=2,step=6;flap@rank=4,step=3,len=7"
	p, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if back.String() != p.String() {
		t.Fatalf("round trip drifted:\n first  %q\n second %q", p.String(), back.String())
	}
	if len(back.Flaps) != 1 || len(back.GroupCrashes) != 1 || len(back.Crashes) != 1 {
		t.Fatalf("round trip lost clauses: %+v", back)
	}
}

func TestParsePlanFlapErrors(t *testing.T) {
	for _, bad := range []string{
		"flap@rank=1,step=2",       // missing len
		"flap@rank=1,len=3",        // missing step
		"flap@step=2,len=3",        // missing rank
		"flap@rank=1,step=2,len=0", // zero window
		"crash@group=1",            // missing count
		"crash@group=1,count=0",    // zero count
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted an invalid clause", bad)
		}
	}
}

func TestFlapNowWindow(t *testing.T) {
	in := NewInjector(Plan{Flaps: []Flap{{Rank: 2, Step: 5, Len: 3}}})
	for step, want := range map[int]bool{4: false, 5: true, 6: true, 7: true, 8: false} {
		if got := in.FlapNow(2, step); got != want {
			t.Errorf("FlapNow(2, %d) = %v, want %v", step, got, want)
		}
	}
	if in.FlapNow(1, 6) {
		t.Error("flap fired for the wrong rank")
	}
	// The entry is counted once no matter how many steps it covers.
	if s := in.Stats(); s.Flaps != 1 {
		t.Errorf("stats.Flaps = %d, want 1", s.Flaps)
	}
}

func TestExpandGroups(t *testing.T) {
	in := NewInjector(Plan{GroupCrashes: []GroupCrash{
		{Group: 1, Count: 2, Step: 4},
		{Group: 3, Count: 1, Step: 9}, // group partially past the world edge
	}})
	in.ExpandGroups(2, 7) // groups: {0,1} {2,3} {4,5} {6}
	p := in.Plan()
	if len(p.GroupCrashes) != 0 {
		t.Fatalf("group crashes not consumed: %+v", p.GroupCrashes)
	}
	want := []Crash{{Rank: 2, Step: 4}, {Rank: 3, Step: 4}, {Rank: 6, Step: 9}}
	if len(p.Crashes) != len(want) {
		t.Fatalf("crashes = %+v, want %+v", p.Crashes, want)
	}
	for i, c := range want {
		if p.Crashes[i] != c {
			t.Fatalf("crashes[%d] = %+v, want %+v", i, p.Crashes[i], c)
		}
	}
	// The expanded entries must actually fire, one-shot.
	if !in.CrashNow(2, 4) || in.CrashNow(2, 4) {
		t.Fatal("expanded crash not one-shot")
	}
}
