package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePlan decodes the compact fault-plan DSL used by the sunwaylb CLI's
// -fault-plan flag. A plan is a ';'-separated list of clauses:
//
//	seed=SEED                         RNG seed (default 1)
//	crash@rank=R,step=S               kill rank R before step S (one-shot)
//	crash@group=G,count=C[,step=S]    kill the first C members of parity
//	                                  group G before step S (default 1)
//	drop@src=A,dst=B,p=P[,max=M]      drop messages on link A→B with prob P
//	dup@src=A,dst=B,p=P[,max=M]       duplicate messages with prob P
//	flip@src=A,dst=B,p=P[,max=M]      flip one payload bit with prob P
//	straggle@rank=R,x=F               rank R's compute is F× slower (model)
//	corrupt@ckpt=K                    corrupt the K-th checkpoint write
//	flap@rank=R,step=S,len=L          rank R's heartbeats go silent for
//	                                  steps [S, S+L) without it dying
//
// src/dst may be -1 (or omitted) to match any rank. Example:
//
//	seed=42;crash@rank=2,step=13;corrupt@ckpt=2;straggle@rank=1,x=4
func ParsePlan(s string) (Plan, error) {
	p := Plan{Seed: 1}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, args, _ := strings.Cut(clause, "@")
		kv, err := parseArgs(args)
		if err != nil {
			return Plan{}, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		switch {
		case strings.HasPrefix(kind, "seed="):
			v, err := strconv.ParseInt(strings.TrimPrefix(kind, "seed="), 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: bad seed in %q: %w", clause, err)
			}
			p.Seed = v
		case kind == "crash":
			if g, okG := kv["group"]; okG {
				cnt, okC := kv["count"]
				if !okC || cnt < 1 {
					return Plan{}, fmt.Errorf("fault: crash clause %q needs count=≥1 with group=", clause)
				}
				p.GroupCrashes = append(p.GroupCrashes, GroupCrash{
					Group: int(g), Count: int(cnt), Step: intOr(kv, "step", 1)})
				break
			}
			r, okR := kv["rank"]
			st, okS := kv["step"]
			if !okR || !okS {
				return Plan{}, fmt.Errorf("fault: crash clause %q needs rank= and step= (or group= and count=)", clause)
			}
			p.Crashes = append(p.Crashes, Crash{Rank: int(r), Step: int(st)})
		case kind == "flap":
			r, okR := kv["rank"]
			st, okS := kv["step"]
			l, okL := kv["len"]
			if !okR || !okS || !okL || l < 1 {
				return Plan{}, fmt.Errorf("fault: flap clause %q needs rank=, step= and len=≥1", clause)
			}
			p.Flaps = append(p.Flaps, Flap{Rank: int(r), Step: int(st), Len: int(l)})
		case kind == "drop" || kind == "dup" || kind == "flip":
			prob, ok := kv["p"]
			if !ok || prob < 0 || prob > 1 {
				return Plan{}, fmt.Errorf("fault: %s clause %q needs p= in [0,1]", kind, clause)
			}
			lf := Link{Src: intOr(kv, "src", -1), Dst: intOr(kv, "dst", -1), Max: intOr(kv, "max", 0)}
			switch kind {
			case "drop":
				lf.Drop = prob
			case "dup":
				lf.Dup = prob
			case "flip":
				lf.Flip = prob
			}
			p.Links = append(p.Links, lf)
		case kind == "straggle":
			r, okR := kv["rank"]
			x, okX := kv["x"]
			if !okR || !okX || x < 1 {
				return Plan{}, fmt.Errorf("fault: straggle clause %q needs rank= and x=≥1", clause)
			}
			p.Stragglers = append(p.Stragglers, Straggler{Rank: int(r), Factor: x})
		case kind == "corrupt":
			k, ok := kv["ckpt"]
			if !ok || k < 1 {
				return Plan{}, fmt.Errorf("fault: corrupt clause %q needs ckpt=≥1", clause)
			}
			p.CorruptCkpts = append(p.CorruptCkpts, int(k))
		default:
			return Plan{}, fmt.Errorf("fault: unknown clause %q (want seed=|crash@|drop@|dup@|flip@|straggle@|corrupt@|flap@)", clause)
		}
	}
	return p, nil
}

func parseArgs(args string) (map[string]float64, error) {
	kv := make(map[string]float64)
	if strings.TrimSpace(args) == "" {
		return kv, nil
	}
	for _, pair := range strings.Split(args, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad key=value pair %q", pair)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %w", pair, err)
		}
		kv[strings.TrimSpace(k)] = f
	}
	return kv, nil
}

func intOr(kv map[string]float64, key string, def int) int {
	if v, ok := kv[key]; ok {
		return int(v)
	}
	return def
}

// Validate checks that every rank-targeted clause fits a world of the
// given size. The service layer calls it at admission time so a tenant's
// plan is rejected up front (HTTP 400) instead of silently never firing —
// or, worse, being trusted to stay inside its own job's world.
func (p Plan) Validate(ranks int) error {
	checkRank := func(kind string, r int) error {
		if r < 0 || r >= ranks {
			return fmt.Errorf("fault: %s targets rank %d outside world [0,%d)", kind, r, ranks)
		}
		return nil
	}
	for _, c := range p.Crashes {
		if err := checkRank("crash", c.Rank); err != nil {
			return err
		}
	}
	for _, s := range p.Stragglers {
		if err := checkRank("straggle", s.Rank); err != nil {
			return err
		}
	}
	for _, f := range p.Flaps {
		if err := checkRank("flap", f.Rank); err != nil {
			return err
		}
	}
	for _, l := range p.Links {
		if l.Src < -1 || l.Src >= ranks {
			return fmt.Errorf("fault: link src %d outside world [0,%d) (or -1 for any)", l.Src, ranks)
		}
		if l.Dst < -1 || l.Dst >= ranks {
			return fmt.Errorf("fault: link dst %d outside world [0,%d) (or -1 for any)", l.Dst, ranks)
		}
	}
	// Group bounds depend on the parity-group size, which only the
	// supervisor knows; the loosest size (1) still requires the group
	// index to name at least one rank.
	for _, g := range p.GroupCrashes {
		if g.Group < 0 || g.Group >= ranks {
			return fmt.Errorf("fault: group crash targets group %d outside world of %d ranks", g.Group, ranks)
		}
	}
	return nil
}

// String renders the plan back into the DSL (parseable by ParsePlan).
func (p Plan) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	for _, c := range p.Crashes {
		parts = append(parts, fmt.Sprintf("crash@rank=%d,step=%d", c.Rank, c.Step))
	}
	for _, g := range p.GroupCrashes {
		parts = append(parts, fmt.Sprintf("crash@group=%d,count=%d,step=%d", g.Group, g.Count, g.Step))
	}
	for _, l := range p.Links {
		emit := func(kind string, prob float64) {
			s := fmt.Sprintf("%s@src=%d,dst=%d,p=%g", kind, l.Src, l.Dst, prob)
			if l.Max > 0 {
				s += fmt.Sprintf(",max=%d", l.Max)
			}
			parts = append(parts, s)
		}
		if l.Drop > 0 {
			emit("drop", l.Drop)
		}
		if l.Dup > 0 {
			emit("dup", l.Dup)
		}
		if l.Flip > 0 {
			emit("flip", l.Flip)
		}
	}
	for _, s := range p.Stragglers {
		parts = append(parts, fmt.Sprintf("straggle@rank=%d,x=%g", s.Rank, s.Factor))
	}
	for _, k := range p.CorruptCkpts {
		parts = append(parts, fmt.Sprintf("corrupt@ckpt=%d", k))
	}
	for _, f := range p.Flaps {
		parts = append(parts, fmt.Sprintf("flap@rank=%d,step=%d,len=%d", f.Rank, f.Step, f.Len))
	}
	return strings.Join(parts, ";")
}
