// Package fault is a deterministic fault-injection runtime for chaos
// testing the distributed solver. At the paper's target scale (160 000
// processes, §V-C) node loss, link errors and silent data corruption are
// routine operating conditions, not exceptions; the checkpoint/restart
// controller of §IV-B only earns its keep if the failure paths are
// actually exercised. This package supplies the failures: a seeded
// Injector evaluates a composable Plan — rank crashes at a given step,
// per-link message drop/duplicate/bit-flip, straggler slow-down
// multipliers, and checkpoint-file corruption — with every decision
// derived from a counter-indexed hash of the seed, so a failure scenario
// replays bit-identically regardless of goroutine scheduling.
//
// The Injector plugs into internal/mpi as a FaultHook (message faults),
// into internal/psolve's supervisor (crashes, checkpoint corruption) and
// into internal/network (straggler-inflated step times). It has no
// dependency on any of them.
package fault

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync"

	"sunwaylb/internal/trace"
)

// ErrInjectedCrash marks a rank death caused by the injector (as opposed
// to a genuine solver failure). The supervisor uses it to decide that
// shrinking recovery is applicable.
var ErrInjectedCrash = errors.New("fault: injected rank crash")

// Crash kills one rank at the start of the given step. Each entry fires
// at most once, so a supervised restart that replays the same step does
// not die again (the simulated node has been "replaced").
type Crash struct {
	Rank int
	Step int
}

// Link describes message faults on a directed (src, dst) link. Src/Dst
// of -1 match any rank. Probabilities are evaluated independently per
// message; Max bounds how many times this entry may fire in total
// (0 = unlimited).
type Link struct {
	Src, Dst int
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Dup is the probability a message is delivered twice.
	Dup float64
	// Flip is the probability one payload bit is inverted in transit
	// (silent data corruption).
	Flip float64
	// Max caps the number of faults this entry injects (0 = unlimited).
	Max int
}

// Straggler multiplies one rank's modelled compute time.
type Straggler struct {
	Rank   int
	Factor float64
}

// Flap silences one rank's heartbeats for a window of steps without
// killing it — the rank keeps computing and answering messages but
// looks dead to a phi-accrual detector. Flaps exercise the detector's
// false-positive/true-positive boundary: a short flap must ride out the
// suspicion threshold, a long one must be declared dead even though the
// process never crashed.
type Flap struct {
	Rank int
	Step int // first silent step
	Len  int // number of consecutive silent steps
}

// GroupCrash kills the first Count members of parity group Group at
// step Step (one-shot each, like Crash). The group → rank expansion
// needs the world's parity-group size, so it happens in ExpandGroups
// once the supervisor knows the layout; count=1 exercises the memory
// recovery path, count=2 the multi-loss escalation to disk.
type GroupCrash struct {
	Group int
	Count int
	Step  int
}

// Plan is a composable, fully deterministic fault scenario.
type Plan struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// Crashes kill ranks at given steps (one-shot each).
	Crashes []Crash
	// Links inject message drop/duplicate/bit-flip faults.
	Links []Link
	// Stragglers slow ranks down in the performance model.
	Stragglers []Straggler
	// CorruptCkpts lists 1-based checkpoint-write indices whose files
	// are corrupted after writing (one-shot each).
	CorruptCkpts []int
	// Flaps silence rank heartbeats for step windows (detector chaos).
	Flaps []Flap
	// GroupCrashes kill the first Count members of a parity group;
	// expanded into Crashes by ExpandGroups once the layout is known.
	GroupCrashes []GroupCrash
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return len(p.Crashes) == 0 && len(p.Links) == 0 &&
		len(p.Stragglers) == 0 && len(p.CorruptCkpts) == 0 &&
		len(p.Flaps) == 0 && len(p.GroupCrashes) == 0
}

// Stats counts the faults an Injector has actually delivered.
type Stats struct {
	Crashes        int
	Drops          int
	Dups           int
	Flips          int
	CkptsCorrupted int
	Flaps          int
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("crashes=%d drops=%d dups=%d flips=%d ckpts-corrupted=%d flaps=%d",
		s.Crashes, s.Drops, s.Dups, s.Flips, s.CkptsCorrupted, s.Flaps)
}

// Injector evaluates a Plan. It is safe for concurrent use by every rank
// goroutine of a world, and it is stateful: one-shot faults stay fired
// across supervised restarts, which is exactly the semantics of a real
// machine (the node that died has been replaced, the flipped bit has
// passed by).
type Injector struct {
	plan Plan

	mu         sync.Mutex
	crashFired []bool
	flapSeen   []bool            // per flap entry: counted in stats
	flapArmed  []bool            // per flap entry: entered in current attempt
	flapDone   []bool            // per flap entry: consumed by a previous attempt
	linkFired  []int             // per plan entry: times fired
	linkCount  map[[2]int]uint64 // per observed (src,dst): messages seen
	ckptFired  map[int]bool
	stats      Stats
	tracer     *trace.Tracer
}

// SetTracer makes the injector record every delivered fault as an
// instant event on the affected rank's fault track (nil disables).
func (in *Injector) SetTracer(t *trace.Tracer) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tracer = t
}

// instantLocked records a fault instant; callers hold in.mu. Safe: the
// tracer takes only its own per-rank lock and never calls back into the
// injector.
func (in *Injector) instantLocked(rank int, name string, v float64) {
	if in.tracer == nil {
		return
	}
	tr := in.tracer.ForRank(rank)
	tr.InstantV(trace.Wall, trace.TrackFault, name, tr.Now(), v)
}

// NewInjector builds an injector for the plan.
func NewInjector(p Plan) *Injector {
	return &Injector{
		plan:       p,
		crashFired: make([]bool, len(p.Crashes)),
		flapSeen:   make([]bool, len(p.Flaps)),
		flapArmed:  make([]bool, len(p.Flaps)),
		flapDone:   make([]bool, len(p.Flaps)),
		linkFired:  make([]int, len(p.Links)),
		linkCount:  make(map[[2]int]uint64),
		ckptFired:  make(map[int]bool),
	}
}

// ExpandGroups resolves every GroupCrash into concrete Crash entries for
// a world of the given parity-group size and rank count: the first Count
// members of group G die at the group's step. The supervisor calls this
// once the layout is known, before ranks start. Already-expanded plans
// (or plans without group crashes) are no-ops.
func (in *Injector) ExpandGroups(groupSize, ranks int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.plan.GroupCrashes) == 0 || groupSize < 1 {
		return
	}
	for _, gc := range in.plan.GroupCrashes {
		lo := gc.Group * groupSize
		for i := 0; i < gc.Count; i++ {
			r := lo + i
			if r < 0 || r >= ranks {
				continue
			}
			in.plan.Crashes = append(in.plan.Crashes, Crash{Rank: r, Step: gc.Step})
			in.crashFired = append(in.crashFired, false)
		}
	}
	in.plan.GroupCrashes = nil
}

// Plan returns the plan the injector evaluates.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash mixes the seed with an arbitrary decision coordinate. Decisions
// are pure functions of (seed, coordinates), never of evaluation order,
// which is what makes concurrent runs reproducible.
func (in *Injector) hash(vs ...uint64) uint64 {
	h := splitmix64(uint64(in.plan.Seed) ^ 0x5357_4c42) // "SWLB"
	for _, v := range vs {
		h = splitmix64(h ^ v)
	}
	return h
}

// u01 returns a uniform [0,1) draw for a decision coordinate.
func (in *Injector) u01(vs ...uint64) float64 {
	return float64(in.hash(vs...)>>11) / float64(1<<53)
}

// CrashNow reports whether the given rank must die before executing the
// given step. Each plan entry fires once.
func (in *Injector) CrashNow(rank, step int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, c := range in.plan.Crashes {
		if !in.crashFired[i] && c.Rank == rank && c.Step == step {
			in.crashFired[i] = true
			in.stats.Crashes++
			in.instantLocked(rank, "fault-crash", float64(step))
			return true
		}
	}
	return false
}

// FlapNow reports whether the given rank must suppress its heartbeat at
// the given step: true while any flap window [Step, Step+Len) covers it.
// A window stays active for its whole span within one attempt, but once
// an attempt that entered the window ends (BeginAttempt), the episode is
// consumed — the flaky moment happened on the wall clock, and a restart
// replaying the same step range does not re-trigger it, mirroring the
// one-shot semantics of crashes. Each entry counts once in Stats.
func (in *Injector) FlapNow(rank, step int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	active := false
	for i, f := range in.plan.Flaps {
		if in.flapDone[i] || f.Rank != rank || step < f.Step || step >= f.Step+f.Len {
			continue
		}
		active = true
		in.flapArmed[i] = true
		if !in.flapSeen[i] {
			in.flapSeen[i] = true
			in.stats.Flaps++
			in.instantLocked(rank, "fault-flap", float64(step))
		}
	}
	return active
}

// BeginAttempt marks the start of a new supervised attempt: flap windows
// entered during the previous attempt are consumed so a replay does not
// flap again. Call once before each world is started.
func (in *Injector) BeginAttempt() {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, armed := range in.flapArmed {
		if armed {
			in.flapDone[i] = true
			in.flapArmed[i] = false
		}
	}
}

// OnSend implements the mpi.FaultHook contract structurally: it decides
// the fate of one message on the (src, dst) link and returns the number
// of copies to deliver (0 = dropped, 1 = normal, 2 = duplicated). A
// bit-flip mutates data (or aux when data is empty) in place.
func (in *Injector) OnSend(src, dst, tag int, data []float64, aux []byte) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	key := [2]int{src, dst}
	n := in.linkCount[key]
	in.linkCount[key] = n + 1

	copies := 1
	for i, lf := range in.plan.Links {
		if lf.Src >= 0 && lf.Src != src {
			continue
		}
		if lf.Dst >= 0 && lf.Dst != dst {
			continue
		}
		if lf.Max > 0 && in.linkFired[i] >= lf.Max {
			continue
		}
		fi := uint64(i)
		s, d := uint64(src), uint64(dst)
		switch {
		case lf.Drop > 0 && in.u01(fi, 1, s, d, n) < lf.Drop:
			in.linkFired[i]++
			in.stats.Drops++
			in.instantLocked(src, "fault-drop", float64(dst))
			return 0
		case lf.Dup > 0 && in.u01(fi, 2, s, d, n) < lf.Dup:
			in.linkFired[i]++
			in.stats.Dups++
			in.instantLocked(src, "fault-dup", float64(dst))
			copies = 2
		case lf.Flip > 0 && in.u01(fi, 3, s, d, n) < lf.Flip:
			in.linkFired[i]++
			in.stats.Flips++
			in.flipBit(data, aux, in.hash(fi, 4, s, d, n))
			in.instantLocked(src, "fault-flip", float64(dst))
		}
	}
	return copies
}

// flipBit inverts one deterministic bit of the payload.
func (in *Injector) flipBit(data []float64, aux []byte, h uint64) {
	if len(data) > 0 {
		i := int(h % uint64(len(data)))
		bit := uint((h >> 32) % 52) // mantissa bits: corrupts, never Inf/NaN by itself
		data[i] = math.Float64frombits(math.Float64bits(data[i]) ^ (1 << bit))
		return
	}
	if len(aux) > 0 {
		i := int(h % uint64(len(aux)))
		aux[i] ^= byte(1 << ((h >> 32) % 8))
	}
}

// StragglerFactor returns the compute-time multiplier of a rank (1 when
// the rank is not a straggler).
func (in *Injector) StragglerFactor(rank int) float64 {
	for _, s := range in.plan.Stragglers {
		if s.Rank == rank && s.Factor > 1 {
			return s.Factor
		}
	}
	return 1
}

// StragglerMultipliers returns the per-rank multipliers for an n-rank
// world, ready for network.Topology.StepTimeWithStragglers.
func (in *Injector) StragglerMultipliers(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	for _, s := range in.plan.Stragglers {
		if s.Rank >= 0 && s.Rank < n && s.Factor > 1 {
			out[s.Rank] = s.Factor
		}
	}
	return out
}

// CorruptCheckpointBytes flips one deterministic bit of a serialised
// checkpoint if the plan corrupts the writeIndex-th write (1-based).
// It reports whether a corruption was applied.
func (in *Injector) CorruptCheckpointBytes(data []byte, writeIndex int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.ckptMatchLocked(writeIndex) || len(data) == 0 {
		return false
	}
	h := in.hash(0xc0, uint64(writeIndex))
	data[h%uint64(len(data))] ^= byte(1 << ((h >> 32) % 8))
	in.stats.CkptsCorrupted++
	in.instantLocked(trace.RankSupervisor, "fault-ckpt-corrupt", float64(writeIndex))
	return true
}

// CorruptCheckpointFile flips one deterministic bit of the file at path
// if the plan corrupts the writeIndex-th checkpoint write (1-based).
// It reports whether a corruption was applied.
func (in *Injector) CorruptCheckpointFile(path string, writeIndex int) (bool, error) {
	in.mu.Lock()
	match := in.ckptMatchLocked(writeIndex)
	in.mu.Unlock()
	if !match {
		return false, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("fault: corrupting checkpoint: %w", err)
	}
	if len(data) == 0 {
		return false, nil
	}
	h := in.hash(0xc0, uint64(writeIndex))
	data[h%uint64(len(data))] ^= byte(1 << ((h >> 32) % 8))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return false, fmt.Errorf("fault: corrupting checkpoint: %w", err)
	}
	in.mu.Lock()
	in.stats.CkptsCorrupted++
	in.instantLocked(trace.RankSupervisor, "fault-ckpt-corrupt", float64(writeIndex))
	in.mu.Unlock()
	return true, nil
}

// ckptMatchLocked consumes a matching one-shot corruption entry.
func (in *Injector) ckptMatchLocked(writeIndex int) bool {
	for _, k := range in.plan.CorruptCkpts {
		if k == writeIndex && !in.ckptFired[k] {
			in.ckptFired[k] = true
			return true
		}
	}
	return false
}
