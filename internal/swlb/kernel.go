package swlb

import (
	"math"

	"sunwaylb/internal/lattice"
	"sunwaylb/internal/sunway"
)

// sharePlan partitions the directions by their y component. In the
// paper's data-sharing scheme (Fig. 5(4)), each CPE owns one y row per
// pass and DMA-loads, besides its own cy=0 runs, the runs its y-neighbour
// CPEs will pull from this row; those travel over register communication
// (RMA on SW26010-Pro) instead of being re-loaded from main memory by the
// neighbour. The no-sharing baseline is the tile-plus-halo implementation,
// where each CPE loads its y-halo runs itself — the same values its
// neighbours also load, i.e. redundant main-memory traffic.
type sharePlan struct {
	cy0 []int // directions with cy == 0 (always DMA-loaded locally)
	cyP []int // directions with cy == +1 (their sources lie in row y−1)
	cyM []int // directions with cy == −1 (their sources lie in row y+1)
}

// buildSharePlan returns the plan, or nil if the descriptor has |cy| > 1
// velocities (no standard DnQm does).
func buildSharePlan(d *lattice.Descriptor) *sharePlan {
	p := &sharePlan{}
	for i := 0; i < d.Q; i++ {
		switch d.C[i][1] {
		case 0:
			p.cy0 = append(p.cy0, i)
		case 1:
			p.cyP = append(p.cyP, i)
		case -1:
			p.cyM = append(p.cyM, i)
		default:
			return nil
		}
	}
	return p
}

// cpeKernel builds the CPE-side kernel closure for the current buffers and
// options.
//
// The LDM working set is bounded statically by lbmvet's ldmbudget rule.
// The sizes below are not compile-time constants (they come from the
// lattice descriptor and the block option), so the assumption pins them
// at the paper's design point — D3Q19 with the BZ=70 blocking of §IV-C —
// which is also the largest configuration the engine tunes for. Footprint:
// (2·nq·bz runs/out + 2·nq·bz double-buffer + 2·nq f/feq)·8 B ≈ 42.9 KB,
// within the SW26010's 64 KB CPE scratchpad.
//
//lbm:ldm assume nq=19 bz=70
func (e *Engine) cpeKernel() func(p *sunway.CPE) {
	l := e.Lat
	d := l.Desc
	nq := d.Q
	NY, NZ, N := l.NY, l.NZ, l.N
	src, dst := l.Src(), l.Dst()
	bz := e.Opt.BZ
	if bz > NZ {
		bz = NZ
	}
	clean := e.cleanCols
	plan := buildSharePlan(d)
	ysharing := e.Opt.YSharing && plan != nil
	async := e.Opt.AsyncDMA
	fused := e.Opt.Fused
	eff := e.Opt.ComputeEff
	invTau := 1.0 / l.Tau
	les := l.Smagorinsky > 0
	csmag2 := l.Smagorinsky * l.Smagorinsky
	tau0 := l.Tau
	fxF, fyF, fzF := l.Force[0], l.Force[1], l.Force[2]
	forced := fxF != 0 || fyF != 0 || fzF != 0

	return func(p *sunway.CPE) {
		P := p.NumCPEs()
		runs := make([][]float64, nq)
		out := make([][]float64, nq)
		for i := 0; i < nq; i++ {
			runs[i] = p.MustAllocFloat64(bz)
			out[i] = p.MustAllocFloat64(bz)
		}
		if async {
			// Double-buffering reserves a second copy in LDM; the
			// simulator reuses the same slices but the capacity
			// must exist on the real chip.
			p.MustAllocFloat64(2 * nq * bz)
		}
		f := p.MustAllocFloat64(nq)
		feq := p.MustAllocFloat64(nq)
		var pendingPut sunway.DMAHandle

		// loadRun DMAs the shifted z-run of direction q for column
		// (x, y), block [z0, z0+bzE).
		loadRun := func(q, x, y, z0, bzE int) {
			c := d.C[q]
			base := q*N + l.Idx(x-c[0], y-c[1], z0-c[2])
			if async {
				h := p.DMAGetAsync(runs[q][:bzE], src[base:base+bzE])
				p.Wait(h) // loads queue; the final Wait aligns
			} else {
				p.DMAGet(runs[q][:bzE], src[base:base+bzE])
			}
		}

		// collideBlock relaxes the gathered runs into out. It performs
		// exactly the arithmetic of core.stepRegion so results are
		// bit-identical.
		collideBlock := func(bzE int) {
			for zi := 0; zi < bzE; zi++ {
				for i := 0; i < nq; i++ {
					f[i] = runs[i][zi]
				}
				var rho, jx, jy, jz float64
				for i := 0; i < nq; i++ {
					fi := f[i]
					rho += fi
					c := d.C[i]
					jx += fi * float64(c[0])
					jy += fi * float64(c[1])
					jz += fi * float64(c[2])
				}
				invRho := 1.0 / rho
				ux, uy, uz := jx*invRho, jy*invRho, jz*invRho
				if forced {
					half := 0.5 * invRho
					ux += half * fxF
					uy += half * fyF
					uz += half * fzF
				}
				// Canonical FMA evaluation order (lattice.Equilibrium).
				onem := 1 - 1.5*math.FMA(uz, uz, math.FMA(uy, uy, ux*ux))
				for i := 0; i < nq; i++ {
					c := d.C[i]
					cu := float64(c[0])*ux + float64(c[1])*uy + float64(c[2])*uz
					h := 4.5 * cu
					feq[i] = d.W[i] * rho * (math.FMA(h, cu, onem) + 3*cu)
				}
				omega := invTau
				if les {
					var pxx, pyy, pzz, pxy, pxz, pyz float64
					for i := 0; i < nq; i++ {
						fneq := f[i] - feq[i]
						c := d.C[i]
						cx, cy, cz := float64(c[0]), float64(c[1]), float64(c[2])
						pxx += fneq * cx * cx
						pyy += fneq * cy * cy
						pzz += fneq * cz * cz
						pxy += fneq * cx * cy
						pxz += fneq * cx * cz
						pyz += fneq * cy * cz
					}
					piNorm := math.Sqrt(pxx*pxx + pyy*pyy + pzz*pzz + 2*(pxy*pxy+pxz*pxz+pyz*pyz))
					omega = 1.0 / (0.5 * (tau0 + math.Sqrt(tau0*tau0+18*math.Sqrt2*csmag2*piNorm/rho)))
				}
				if forced {
					fw := 1 - 0.5*omega
					for i := 0; i < nq; i++ {
						c := d.C[i]
						cx, cy, cz := float64(c[0]), float64(c[1]), float64(c[2])
						cu := cx*ux + cy*uy + cz*uz
						si := d.W[i] * (3*((cx-ux)*fxF+(cy-uy)*fyF+(cz-uz)*fzF) +
							9*cu*(cx*fxF+cy*fyF+cz*fzF))
						out[i][zi] = math.FMA(-omega, f[i]-feq[i], f[i]) + fw*si
					}
				} else {
					for i := 0; i < nq; i++ {
						out[i][zi] = math.FMA(-omega, f[i]-feq[i], f[i])
					}
				}
			}
			p.Compute(float64(bzE)*FlopsPerCell, eff)
		}

		storeOut := func(x, y, z0, bzE int) {
			for i := 0; i < nq; i++ {
				base := i*N + l.Idx(x, y, z0)
				if async {
					pendingPut = p.DMAPutAsync(dst[base:base+bzE], out[i][:bzE])
				} else {
					p.DMAPut(dst[base:base+bzE], out[i][:bzE])
				}
			}
		}

		for g := 0; g*P < len(clean); g++ {
			myIdx := g*P + p.ID
			if myIdx >= len(clean) {
				continue
			}
			col := int(clean[myIdx])
			x, y := col/NY, col%NY
			upOK := ysharing && p.ID+1 < P && myIdx+1 < len(clean) &&
				int(clean[myIdx+1]) == col+1 && y+1 < NY
			downOK := ysharing && p.ID > 0 &&
				int(clean[myIdx-1]) == col-1 && y > 0

			for z0 := 0; z0 < NZ; z0 += bz {
				bzE := bz
				if z0+bzE > NZ {
					bzE = NZ - z0
				}
				if ysharing {
					// Own cy=0 runs.
					for _, q := range plan.cy0 {
						loadRun(q, x, y, z0, bzE)
					}
					// Load the runs the neighbours pull from
					// this row and ship them over register
					// communication; Send copies at call time,
					// so the buffers can be reused below.
					if upOK {
						for _, q := range plan.cyP {
							loadRun(q, x, y+1, z0, bzE)
							p.Send(p.ID+1, runs[q][:bzE])
						}
					}
					if downOK {
						for _, q := range plan.cyM {
							loadRun(q, x, y-1, z0, bzE)
							p.Send(p.ID-1, runs[q][:bzE])
						}
					}
					// Own cy=+1 runs come from the y−1 CPE,
					// cy=−1 from the y+1 CPE; edges fall back
					// to DMA.
					if downOK {
						for _, q := range plan.cyP {
							copy(runs[q][:bzE], p.Recv(p.ID-1))
						}
					} else {
						for _, q := range plan.cyP {
							loadRun(q, x, y, z0, bzE)
						}
					}
					if upOK {
						for _, q := range plan.cyM {
							copy(runs[q][:bzE], p.Recv(p.ID+1))
						}
					} else {
						for _, q := range plan.cyM {
							loadRun(q, x, y, z0, bzE)
						}
					}
				} else {
					// Tile-plus-halo baseline: the y-halo runs
					// (cy≠0) are also loaded by the neighbour
					// CPEs for their own tiles — redundant
					// traffic that the sharing scheme removes.
					for q := 0; q < nq; q++ {
						loadRun(q, x, y, z0, bzE)
					}
					if plan != nil {
						for _, q := range plan.cyP {
							loadRun(q, x, y, z0, bzE)
						}
						for _, q := range plan.cyM {
							loadRun(q, x, y, z0, bzE)
						}
					}
				}

				if fused {
					collideBlock(bzE)
					storeOut(x, y, z0, bzE)
					continue
				}
				// Unfused: the streamed populations round-trip
				// through main memory before the collision pass
				// (the pre-fusion baseline: 2× the traffic).
				for i := 0; i < nq; i++ {
					base := i*N + l.Idx(x, y, z0)
					p.DMAPut(dst[base:base+bzE], runs[i][:bzE])
				}
				for i := 0; i < nq; i++ {
					base := i*N + l.Idx(x, y, z0)
					p.DMAGet(runs[i][:bzE], dst[base:base+bzE])
				}
				collideBlock(bzE)
				storeOut(x, y, z0, bzE)
			}
		}
		if async {
			p.Wait(pendingPut)
		}
	}
}
