package swlb

import (
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/sunway"
)

// Tests of the SW26010-Pro-specific behaviour (§IV-D): four times the LDM
// allows much longer z-runs, RMA replaces register communication for the
// y-sharing, and the higher per-CG bandwidth raises the roofline to
// 134.7 MLUPS.

func TestProEngineEquivalence(t *testing.T) {
	ref := buildLat(t, 5, 11, 24, true)
	lat := buildLat(t, 5, 11, 24, true)
	spec := sunway.SW26010Pro
	spec.CPEs = 4 // keep the functional run small
	eng, err := New(lat, spec, Options{UseCPEs: true, Fused: true, YSharing: true, AsyncDMA: true, ComputeEff: 0.5, BZ: 24})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		ref.PeriodicAll()
		ref.StepFused()
		lat.PeriodicAll()
		eng.Step()
	}
	fa, fb := ref.Src(), lat.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("Pro engine diverged at %d", i)
		}
	}
}

// TestProLDMAllowsLongRuns: BZ=256 needs ≈156 KB of LDM with double
// buffering — impossible on SW26010, routine on SW26010-Pro.
func TestProLDMAllowsLongRuns(t *testing.T) {
	lat := buildLat(t, 4, 8, 256, false)
	opt := Options{UseCPEs: true, Fused: true, ComputeEff: 0.5, BZ: 256}
	if _, err := New(lat, sunway.SW26010, opt); err == nil {
		t.Error("BZ=256 must overflow the SW26010's 64 KB LDM")
	}
	if _, err := New(lat, sunway.SW26010Pro, opt); err != nil {
		t.Errorf("BZ=256 must fit the Pro's 256 KB LDM: %v", err)
	}
}

// TestProUtilization: the fully optimized engine on the Pro reaches the
// neighbourhood of the paper's 81.4% of the 134.7 MLUPS/CG roofline.
func TestProUtilization(t *testing.T) {
	lat := buildLat(t, 8, 64, 70, false)
	eng, err := New(lat, sunway.SW26010Pro, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lat.PeriodicAll()
	tm := eng.Step()
	cells := float64(lat.NX * lat.NY * lat.NZ)
	mlups := cells / tm / 1e6
	roofline := sunway.SW26010Pro.DMABandwidth / BytesPerCell / 1e6
	util := mlups / roofline
	if util < 0.60 || util > 1.0 {
		t.Errorf("Pro utilization = %.1f%% (%.1f MLUPS), want 60-100%% of %.1f MLUPS (paper: 81.4%%)",
			util*100, mlups, roofline)
	}
	t.Logf("Pro simulated: %.1f MLUPS/CG = %.1f%% of roofline (paper: 81.4%%)", mlups, util*100)
}

// TestProFasterThanSW26010: the same block steps faster on the Pro
// (more bandwidth, bigger LDM, faster inter-CPE path).
func TestProFasterThanSW26010(t *testing.T) {
	run := func(spec sunway.ChipSpec) float64 {
		lat := buildLat(t, 4, 64, 70, false)
		eng, err := New(lat, spec, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		lat.PeriodicAll()
		return eng.Step()
	}
	t26010 := run(sunway.SW26010)
	tPro := run(sunway.SW26010Pro)
	if tPro >= t26010 {
		t.Errorf("Pro (%v) must beat SW26010 (%v)", tPro, t26010)
	}
	// The bandwidth ratio bounds the gain for a memory-bound kernel.
	ratio := t26010 / tPro
	bwRatio := sunway.SW26010Pro.DMABandwidth / sunway.SW26010.DMABandwidth
	if ratio > bwRatio*1.3 {
		t.Errorf("speedup %.2f implausibly exceeds bandwidth ratio %.2f", ratio, bwRatio)
	}
}

// TestRMACheaperThanRegisterComm: the Pro's inter-CPE path (RMA) is
// charged less than the SW26010's register communication for the same
// transfer, per the spec constants.
func TestRMACheaperThanRegisterComm(t *testing.T) {
	cost := func(spec sunway.ChipSpec) float64 {
		cg := sunway.NewCoreGroup(spec)
		return cg.Run(func(p *sunway.CPE) {
			if p.ID == 0 {
				p.Send(1, make([]float64, 70))
			} else if p.ID == 1 {
				p.Recv(0)
			}
		})
	}
	if c26010, cPro := cost(sunway.SW26010), cost(sunway.SW26010Pro); cPro >= c26010 {
		t.Errorf("RMA (%v) must beat register communication (%v)", cPro, c26010)
	}
}

// TestEngineRejectsNonD3Q19 is not required — the engine is
// descriptor-generic; prove it with D3Q15.
func TestEngineD3Q15(t *testing.T) {
	mk := func() *core.Lattice {
		l, err := core.NewLattice(&lattice.D3Q15, 4, 9, 16, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				for z := 0; z < l.NZ; z++ {
					l.SetCell(x, y, z, 1.0, 0.01*float64(x%3), 0.02, 0)
				}
			}
		}
		return l
	}
	ref, lat := mk(), mk()
	eng, err := New(lat, testSpec(), Options{UseCPEs: true, Fused: true, YSharing: true, ComputeEff: 0.5, BZ: 8})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		ref.PeriodicAll()
		ref.StepFused()
		lat.PeriodicAll()
		eng.Step()
	}
	fa, fb := ref.Src(), lat.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("D3Q15 engine diverged at %d", i)
		}
	}
}
