// Package swlb is the Sunway-optimized LBM solver of the paper (§IV-C and
// §IV-D): the fused pull collide–stream kernel mapped onto a simulated
// SW26010/SW26010-Pro core group.
//
// The mapping follows the paper's multi-level scheme:
//
//   - The subdomain is processed as (x, y) columns of NZ contiguous cells;
//     each CPE owns one column per pass and loads the 19 shifted z-runs it
//     needs as long contiguous DMA descriptors (the z-blocking of
//     Fig. 5(2), which is what makes the DMA efficient).
//   - Columns whose 3×3 column neighbourhood is obstacle-free run on the
//     CPE cluster; columns touching walls are computed by the MPE
//     concurrently — the MPE/CPE collaboration of Fig. 9(2).
//   - With YSharing enabled, the 10 runs that originate from the y±1
//     columns are obtained from the neighbouring CPEs over register
//     communication (SW26010) or RMA (SW26010-Pro) instead of DMA — the
//     data-sharing scheme of Fig. 5(4)/Fig. 10(1).
//   - With AsyncDMA enabled, the next z-block's loads and the previous
//     block's stores overlap with computation on the dual pipelines
//     (Fig. 10(2)).
//   - With Fused disabled, streaming and collision run as separate passes
//     whose intermediate state round-trips through main memory — the
//     pre-fusion baseline of the Fig. 8 ablation.
//
// Every configuration produces bit-identical physics to core.StepFused;
// the options change only the simulated time and traffic.
package swlb

import (
	"fmt"
	"math"

	"sunwaylb/internal/core"
	"sunwaylb/internal/sunway"
	"sunwaylb/internal/trace"
)

// FlopsPerCell is the floating-point work of one D3Q19 LBGK cell update
// (moments, equilibrium, relaxation); it matches the paper's implied
// ~420 flops/LUP (4.7 PFlops / 11245 GLUPS).
const FlopsPerCell = 418

// BytesPerCell is the paper's roofline traffic constant: 19 loads +
// 19 stores of 8 B plus write-allocate, §IV-C-3 and §V-A.
const BytesPerCell = 380

// Options selects the optimization stages (the Fig. 8 ablation axes).
type Options struct {
	// UseCPEs offloads clean columns to the CPE cluster; false is the
	// MPE-only baseline.
	UseCPEs bool
	// Fused runs collide and stream in one pass (no intermediate
	// main-memory round trip).
	Fused bool
	// YSharing fetches y-neighbour runs from adjacent CPEs over
	// register communication/RMA instead of DMA.
	YSharing bool
	// AsyncDMA overlaps DMA with computation (dual-pipeline /
	// double-buffering).
	AsyncDMA bool
	// ComputeEff is the fraction of CPE peak the collision loop
	// achieves: ≈0.08 for plain scalar code, ≈0.55 after the manual
	// vectorization/unrolling/reordering of §IV-C-4.
	ComputeEff float64
	// BZ is the z-block length per DMA descriptor (70 in the paper).
	BZ int
}

// DefaultOptions returns the fully optimized configuration.
func DefaultOptions() Options {
	return Options{UseCPEs: true, Fused: true, YSharing: true, AsyncDMA: true,
		ComputeEff: 0.55, BZ: 70}
}

// BaselineOptions returns the MPE-only starting point of Fig. 8.
func BaselineOptions() Options {
	return Options{ComputeEff: 0.08, BZ: 70}
}

// Engine drives one core group over one subdomain lattice.
type Engine struct {
	Lat  *core.Lattice
	CG   *sunway.CoreGroup
	Opt  Options
	Spec sunway.ChipSpec

	// cleanCols and mixedCols partition the interior (x,y) columns:
	// clean ones have no Wall/MovingWall cell in their 3×3 column
	// neighbourhood and run on CPEs; mixed ones run on the MPE.
	cleanCols []int32
	mixedCols []int32
	// allCols is cleanCols followed by mixedCols, precomputed by Rebuild
	// so the MPE-only Step path iterates the whole domain without
	// per-step concatenation (Step is //lbm:hot).
	allCols []int32

	// done carries the CPE cluster's simulated time back to the rank
	// goroutine; allocated once in New so Step stays allocation-free.
	done chan float64

	// Last step timing breakdown (simulated seconds).
	LastCPETime float64
	LastMPETime float64
	LastTime    float64

	// tr records per-step MPE/CPE spans and DMA counters on the rank's
	// Sim-clock timeline; simCursor is the engine's position on that
	// clock. Nil tr disables recording at the cost of one branch.
	tr        *trace.RankTracer
	simCursor float64
}

// SetTrace binds the engine to a rank's trace handle (psolve calls it
// through the traceSetter interface); nil disables recording. The Sim
// cursor resumes at the rank's watermark so supervised restarts extend
// the modelled timeline instead of overlapping it.
func (e *Engine) SetTrace(tr *trace.RankTracer) {
	e.tr = tr
	e.simCursor = tr.SimWatermark()
}

// New builds an engine for the lattice on the given chip. Geometry (wall
// flags) must be final; call Rebuild after changing it.
func New(lat *core.Lattice, spec sunway.ChipSpec, opt Options) (*Engine, error) {
	if opt.BZ <= 0 {
		opt.BZ = 70
	}
	if opt.ComputeEff <= 0 {
		opt.ComputeEff = 0.55
	}
	e := &Engine{Lat: lat, CG: sunway.NewCoreGroup(spec), Opt: opt, Spec: spec,
		done: make(chan float64, 1)}
	if err := e.checkLDM(); err != nil {
		return nil, err
	}
	e.Rebuild()
	return e, nil
}

// checkLDM verifies the kernel's LDM footprint fits the chip before any
// CPE panics mid-run.
func (e *Engine) checkLDM() error {
	bz := e.Opt.BZ
	if e.Lat.NZ < bz {
		bz = e.Lat.NZ
	}
	q := e.Lat.Desc.Q
	// runs + out, double-buffered under AsyncDMA, plus scratch.
	bufs := 2 * q * bz
	if e.Opt.AsyncDMA {
		bufs *= 2
	}
	need := (bufs + 2*q) * 8
	if need > e.Spec.LDMBytes {
		return fmt.Errorf("swlb: kernel footprint %d B exceeds %s LDM %d B (reduce BZ=%d)",
			need, e.Spec.Name, e.Spec.LDMBytes, e.Opt.BZ)
	}
	return nil
}

// Rebuild re-partitions the columns after a geometry change.
func (e *Engine) Rebuild() {
	l := e.Lat
	e.cleanCols = e.cleanCols[:0]
	e.mixedCols = e.mixedCols[:0]
	for x := 0; x < l.NX; x++ {
		for y := 0; y < l.NY; y++ {
			if e.columnClean(x, y) {
				e.cleanCols = append(e.cleanCols, int32(x*l.NY+y))
			} else {
				e.mixedCols = append(e.mixedCols, int32(x*l.NY+y))
			}
		}
	}
	e.allCols = append(e.allCols[:0], e.cleanCols...)
	e.allCols = append(e.allCols, e.mixedCols...)
}

// columnClean reports whether the 3×3 column neighbourhood of (x, y)
// contains no solid cell over the full allocated z extent.
func (e *Engine) columnClean(x, y int) bool {
	l := e.Lat
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			for z := -1; z <= l.NZ; z++ {
				switch l.Flags[l.Idx(x+dx, y+dy, z)] {
				case core.Wall, core.MovingWall:
					return false
				}
			}
		}
	}
	return true
}

// CleanColumns and MixedColumns report the partition sizes.
func (e *Engine) CleanColumns() int { return len(e.cleanCols) }

// MixedColumns reports the number of MPE-handled columns.
func (e *Engine) MixedColumns() int { return len(e.mixedCols) }

// mpeColumnTime is the simulated MPE cost of updating n cells through the
// plain cache path.
func (e *Engine) mpeColumnTime(cells int) float64 {
	bw := float64(cells) * BytesPerCell / e.Spec.MPEBandwidth
	fl := float64(cells) * FlopsPerCell / e.Spec.MPEFlops
	return math.Max(bw, fl)
}

// Step advances the lattice one time step. Halo values (periodic wrap or
// boundary conditions) must have been applied to the source buffer by the
// caller, exactly as for core.StepFused. It returns the simulated step
// time on the Sunway core group.
//
// Step's own loops only dispatch columns (one int32 id per column);
// the lattice traffic they trigger is budgeted on core's kernels.
//
//lbm:hot traffic budget=8
func (e *Engine) Step() float64 {
	l := e.Lat
	if !e.Opt.UseCPEs {
		// MPE-only baseline: the whole domain through the cache path.
		for _, col := range e.allCols {
			x, y := int(col)/l.NY, int(col)%l.NY
			l.StepRegion(x, x+1, y, y+1)
		}
		e.LastMPETime = e.mpeColumnTime(l.NX * l.NY * l.NZ)
		e.LastCPETime = 0
		e.LastTime = e.LastMPETime
		l.CompleteStep()
		e.traceStep()
		return e.LastTime
	}

	// CPE cluster handles the clean columns...
	go func() {
		e.done <- e.CG.Run(e.cpeKernel())
	}()
	// ...while the MPE concurrently computes the mixed columns
	// (collaboration scheme, Fig. 9(2)). The column sets are disjoint,
	// so the destination writes never overlap.
	for _, col := range e.mixedCols {
		x, y := int(col)/l.NY, int(col)%l.NY
		l.StepRegion(x, x+1, y, y+1)
	}
	e.LastMPETime = e.mpeColumnTime(len(e.mixedCols) * l.NZ)
	e.LastCPETime = <-e.done
	// MPE and CPEs run concurrently; the step ends when both finish.
	e.LastTime = math.Max(e.LastCPETime, e.LastMPETime)
	l.CompleteStep()
	e.traceStep()
	return e.LastTime
}

// traceStep records the step's MPE/CPE breakdown on the Sim clock: both
// engines start together at the cursor (they run concurrently, Fig.
// 9(2)) on their own tracks, and the cumulative DMA / register-
// communication traffic is sampled as counters — the paper's
// data-movement story, per step. Recording happens on the rank
// goroutine after the CPE join, so each track stays single-writer.
func (e *Engine) traceStep() {
	if e.tr == nil {
		return
	}
	t0 := e.simCursor
	if e.LastMPETime > 0 {
		e.tr.Span(trace.Sim, trace.TrackMPE, "mpe-kernel", t0, t0+e.LastMPETime)
	}
	if e.LastCPETime > 0 {
		e.tr.Span(trace.Sim, trace.TrackCPE, "cpe-kernel", t0, t0+e.LastCPETime)
	}
	e.simCursor = t0 + e.LastTime
	e.tr.Counter(trace.Sim, trace.TrackDMA, "dma_bytes", e.simCursor, float64(e.CG.Counters.DMABytes))
	e.tr.Counter(trace.Sim, trace.TrackDMA, "intercpe_bytes", e.simCursor, float64(e.CG.Counters.InterCPEBytes))
}

// StepCount returns cumulative simulated time on the core group.
func (e *Engine) TotalTime() float64 { return e.CG.TotalTime }

// Report summarises the engine's cumulative activity in the paper's
// reporting units.
type Report struct {
	// Steps, SimTime: step count and simulated seconds on the CG.
	Steps   int
	SimTime float64
	// Rate is the average simulated update rate; BWUtil the fraction of
	// the chip's roofline (DMABandwidth ÷ 380 B/LUP) achieved.
	Rate   float64 // LUPS
	BWUtil float64
	// DMABytes and InterCPEBytes are total traffic counters.
	DMABytes, InterCPEBytes int64
}

// Report computes the summary; cellsPerStep is the subdomain size.
func (e *Engine) Report(steps int) Report {
	r := Report{
		Steps:         steps,
		SimTime:       e.CG.TotalTime,
		DMABytes:      e.CG.Counters.DMABytes,
		InterCPEBytes: e.CG.Counters.InterCPEBytes,
	}
	if e.CG.TotalTime > 0 {
		cells := float64(e.Lat.NX) * float64(e.Lat.NY) * float64(e.Lat.NZ)
		r.Rate = cells * float64(steps) / e.CG.TotalTime
		r.BWUtil = r.Rate * BytesPerCell / e.Spec.DMABandwidth
	}
	return r
}
