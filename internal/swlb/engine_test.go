package swlb

import (
	"math"
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
	"sunwaylb/internal/sunway"
)

// buildLat constructs a lattice with a shear-wave initial condition and an
// obstacle box (so both the CPE fast path and the MPE mixed-column path
// are exercised).
func buildLat(t testing.TB, nx, ny, nz int, withObstacle bool) *core.Lattice {
	t.Helper()
	l, err := core.NewLattice(&lattice.D3Q19, nx, ny, nz, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if withObstacle {
		for x := 1; x <= 2; x++ {
			for y := 1; y <= 2; y++ {
				for z := nz/2 - 1; z <= nz/2; z++ {
					l.SetWall(x, y, z)
				}
			}
		}
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			for z := 0; z < nz; z++ {
				if l.CellTypeAt(x, y, z) != core.Fluid {
					continue
				}
				l.SetCell(x, y, z, 1.0+0.005*math.Sin(float64(x+z)),
					0.02*math.Sin(0.4*float64(y)), 0.01*math.Cos(0.3*float64(z)),
					0.015*math.Sin(0.2*float64(x)))
			}
		}
	}
	return l
}

func testSpec() sunway.ChipSpec { return sunway.TestChip(4, 64*1024) }

// stepsEqual runs `steps` steps on a reference lattice (core kernel) and on
// an engine-driven lattice with the given options, then compares all
// populations bit-for-bit.
func stepsEqual(t *testing.T, opt Options, steps int, withObstacle bool) {
	t.Helper()
	ref := buildLat(t, 5, 11, 24, withObstacle)
	lat := buildLat(t, 5, 11, 24, withObstacle)
	eng, err := New(lat, testSpec(), opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for s := 0; s < steps; s++ {
		ref.PeriodicAll()
		ref.StepFused()
		lat.PeriodicAll()
		eng.Step()
	}
	fa, fb := ref.Src(), lat.Src()
	diff := 0
	for i := range fa {
		if fa[i] != fb[i] {
			diff++
		}
	}
	if diff != 0 {
		t.Fatalf("engine (%+v) diverged from core kernel in %d population values", opt, diff)
	}
}

func TestEngineMatchesCoreAllConfigs(t *testing.T) {
	base := Options{UseCPEs: true, Fused: true, ComputeEff: 0.5, BZ: 8}
	configs := map[string]Options{
		"fused":            base,
		"unfused":          {UseCPEs: true, Fused: false, ComputeEff: 0.5, BZ: 8},
		"ysharing":         {UseCPEs: true, Fused: true, YSharing: true, ComputeEff: 0.5, BZ: 8},
		"async":            {UseCPEs: true, Fused: true, AsyncDMA: true, ComputeEff: 0.5, BZ: 8},
		"all-opts":         {UseCPEs: true, Fused: true, YSharing: true, AsyncDMA: true, ComputeEff: 0.5, BZ: 8},
		"mpe-only":         {UseCPEs: false, ComputeEff: 0.5, BZ: 8},
		"unfused-ysharing": {UseCPEs: true, Fused: false, YSharing: true, ComputeEff: 0.5, BZ: 8},
	}
	for name, opt := range configs {
		opt := opt
		t.Run(name, func(t *testing.T) {
			stepsEqual(t, opt, 6, true)
		})
		t.Run(name+"-clean", func(t *testing.T) {
			stepsEqual(t, opt, 4, false)
		})
	}
}

func TestEngineWithLESAndForce(t *testing.T) {
	ref := buildLat(t, 4, 9, 16, true)
	lat := buildLat(t, 4, 9, 16, true)
	for _, l := range []*core.Lattice{ref, lat} {
		l.Smagorinsky = 0.17
		l.Force = [3]float64{1e-6, 0, 2e-6}
	}
	eng, err := New(lat, testSpec(), Options{UseCPEs: true, Fused: true, YSharing: true, ComputeEff: 0.5, BZ: 6})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		ref.PeriodicAll()
		ref.StepFused()
		lat.PeriodicAll()
		eng.Step()
	}
	fa, fb := ref.Src(), lat.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("LES+force run diverged at %d: %v vs %v", i, fa[i], fb[i])
		}
	}
}

func TestColumnPartition(t *testing.T) {
	lat := buildLat(t, 5, 11, 24, true)
	eng, err := New(lat, testSpec(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if eng.CleanColumns()+eng.MixedColumns() != 5*11 {
		t.Errorf("partition does not cover all columns: %d + %d != 55",
			eng.CleanColumns(), eng.MixedColumns())
	}
	// The obstacle at x∈[1,2], y∈[1,2] taints columns x∈[0,3], y∈[0,3]:
	// 16 mixed columns.
	if eng.MixedColumns() != 16 {
		t.Errorf("mixed columns = %d, want 16", eng.MixedColumns())
	}
	// Clearing the obstacle and rebuilding makes everything clean.
	for x := 1; x <= 2; x++ {
		for y := 1; y <= 2; y++ {
			for z := 0; z < lat.NZ; z++ {
				if lat.CellTypeAt(x, y, z) == core.Wall {
					lat.SetFluid(x, y, z)
				}
			}
		}
	}
	eng.Rebuild()
	if eng.MixedColumns() != 0 {
		t.Errorf("after clearing walls, mixed = %d, want 0", eng.MixedColumns())
	}
}

func TestLDMGuard(t *testing.T) {
	lat := buildLat(t, 4, 8, 512, false)
	// BZ=512 needs 2*19*512*8 ≈ 156 KB — over the 64 KB LDM.
	if _, err := New(lat, sunway.TestChip(4, 64*1024), Options{UseCPEs: true, Fused: true, ComputeEff: 0.5, BZ: 512}); err == nil {
		t.Error("want LDM-overflow error for BZ=512 on 64 KB LDM")
	}
	// The same block fits the SW26010-Pro's 256 KB.
	if _, err := New(lat, sunway.SW26010Pro, Options{UseCPEs: true, Fused: true, ComputeEff: 0.5, BZ: 512}); err != nil {
		t.Errorf("BZ=512 must fit 256 KB LDM: %v", err)
	}
}

// TestOptimizationOrdering: each optimization stage must not be slower
// than its predecessor (the monotone staircase of Fig. 8).
func TestOptimizationOrdering(t *testing.T) {
	stages := []Options{
		{UseCPEs: false, ComputeEff: 0.08, BZ: 70},                                             // MPE baseline
		{UseCPEs: true, Fused: false, ComputeEff: 0.08, BZ: 70},                                // +CPE offload
		{UseCPEs: true, Fused: true, ComputeEff: 0.08, BZ: 70},                                 // +kernel fusion
		{UseCPEs: true, Fused: true, YSharing: true, ComputeEff: 0.08, BZ: 70},                 // +register comm
		{UseCPEs: true, Fused: true, YSharing: true, AsyncDMA: true, ComputeEff: 0.08, BZ: 70}, // +pipelining
		{UseCPEs: true, Fused: true, YSharing: true, AsyncDMA: true, ComputeEff: 0.55, BZ: 70}, // +assembly
	}
	var prev float64 = math.Inf(1)
	for i, opt := range stages {
		lat := buildLat(t, 4, 16, 70, false)
		eng, err := New(lat, sunway.SW26010, opt)
		if err != nil {
			t.Fatalf("stage %d: %v", i, err)
		}
		lat.PeriodicAll()
		tm := eng.Step()
		if tm <= 0 {
			t.Fatalf("stage %d: non-positive step time %v", i, tm)
		}
		if tm > prev*1.001 {
			t.Errorf("stage %d (%+v) slower than previous: %v > %v", i, opt, tm, prev)
		}
		prev = tm
	}
}

// TestCPESpeedupMagnitude: offloading to the 64-CPE cluster must yield a
// large speedup over the MPE baseline (paper: >75×), and the full
// optimization stack lands in the right order of magnitude of the paper's
// 172×.
func TestCPESpeedupMagnitude(t *testing.T) {
	mk := func(opt Options) float64 {
		lat := buildLat(t, 4, 64, 70, false)
		eng, err := New(lat, sunway.SW26010, opt)
		if err != nil {
			t.Fatal(err)
		}
		lat.PeriodicAll()
		return eng.Step()
	}
	baseline := mk(BaselineOptions())
	full := mk(DefaultOptions())
	speedup := baseline / full
	if speedup < 80 || speedup > 400 {
		t.Errorf("full-stack speedup = %.0f×, want order of the paper's 172×", speedup)
	}
}

// TestBandwidthUtilization: the fully optimized engine on SW26010 should
// reach the neighbourhood of the paper's 77% of the 90.4 MLUPS/CG roofline.
func TestBandwidthUtilization(t *testing.T) {
	lat := buildLat(t, 8, 64, 70, false)
	eng, err := New(lat, sunway.SW26010, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lat.PeriodicAll()
	tm := eng.Step()
	cells := float64(lat.NX * lat.NY * lat.NZ)
	mlups := cells / tm / 1e6
	roofline := sunway.SW26010.DMABandwidth / BytesPerCell / 1e6 // 84.2... with 32e9/380 = 88.6? recomputed in test below
	util := mlups / roofline
	if util < 0.60 || util > 1.0 {
		t.Errorf("bandwidth utilization = %.1f%% (%.1f MLUPS), want 60-100%% of the %.1f MLUPS roofline",
			util*100, mlups, roofline)
	}
	t.Logf("simulated: %.1f MLUPS/CG = %.1f%% of roofline (paper: 77%%)", mlups, util*100)
}

func TestYSharingReducesDMA(t *testing.T) {
	run := func(ysharing bool) sunway.Counters {
		lat := buildLat(t, 4, 16, 70, false)
		eng, err := New(lat, sunway.SW26010, Options{UseCPEs: true, Fused: true, YSharing: ysharing, ComputeEff: 0.5, BZ: 70})
		if err != nil {
			t.Fatal(err)
		}
		lat.PeriodicAll()
		eng.Step()
		return eng.CG.Counters
	}
	without := run(false)
	with := run(true)
	if with.DMABytes >= without.DMABytes {
		t.Errorf("y-sharing must cut DMA traffic: %d vs %d bytes", with.DMABytes, without.DMABytes)
	}
	if with.InterCPEBytes == 0 {
		t.Error("y-sharing must use inter-CPE communication")
	}
	if without.InterCPEBytes != 0 {
		t.Error("without y-sharing there must be no inter-CPE traffic")
	}
}

func TestUnfusedDoublesTraffic(t *testing.T) {
	run := func(fused bool) int64 {
		lat := buildLat(t, 4, 8, 70, false)
		eng, err := New(lat, sunway.SW26010, Options{UseCPEs: true, Fused: fused, ComputeEff: 0.5, BZ: 70})
		if err != nil {
			t.Fatal(err)
		}
		lat.PeriodicAll()
		eng.Step()
		return eng.CG.Counters.DMABytes
	}
	fused := run(true)
	unfused := run(false)
	// Unfused adds a full store+load round trip of the block (38 runs on
	// top of the tile-halo baseline's 48): ≈1.8× the traffic.
	ratio := float64(unfused) / float64(fused)
	if ratio < 1.5 || ratio > 2.2 {
		t.Errorf("unfused/fused traffic ratio = %.2f, want 1.5-2.2 (the fusion saving)", ratio)
	}
}

func TestSharePlanD3Q19(t *testing.T) {
	p := buildSharePlan(&lattice.D3Q19)
	if p == nil {
		t.Fatal("D3Q19 must support the y-sharing plan")
	}
	if len(p.cy0) != 9 || len(p.cyP) != 5 || len(p.cyM) != 5 {
		t.Errorf("plan sizes = %d/%d/%d, want 9/5/5", len(p.cy0), len(p.cyP), len(p.cyM))
	}
	// The partition must cover every direction exactly once.
	seen := map[int]bool{}
	for _, qs := range [][]int{p.cy0, p.cyP, p.cyM} {
		for _, q := range qs {
			if seen[q] {
				t.Errorf("direction %d appears twice in the plan", q)
			}
			seen[q] = true
		}
	}
	if len(seen) != 19 {
		t.Errorf("plan covers %d directions, want 19", len(seen))
	}
}

func BenchmarkEngineStepFullOpt(b *testing.B) {
	lat := buildLat(b, 4, 64, 70, false)
	eng, err := New(lat, sunway.SW26010, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lat.PeriodicAll()
		eng.Step()
	}
}

func TestEngineReport(t *testing.T) {
	lat := buildLat(t, 4, 16, 70, false)
	eng, err := New(lat, sunway.SW26010, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		lat.PeriodicAll()
		eng.Step()
	}
	r := eng.Report(3)
	if r.Steps != 3 || r.SimTime <= 0 || r.DMABytes <= 0 {
		t.Errorf("report = %+v", r)
	}
	if r.BWUtil < 0.4 || r.BWUtil > 1 {
		t.Errorf("report BW util = %v", r.BWUtil)
	}
	if r.InterCPEBytes <= 0 {
		t.Error("y-sharing must register inter-CPE traffic")
	}
}
