package sunway

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSpecConstants(t *testing.T) {
	// Peak performance cross-checks against the paper's §III-B numbers.
	if got := SW26010.ChipPeakFlops(); math.Abs(got-3.06e12)/3.06e12 > 0.03 {
		t.Errorf("SW26010 chip peak = %.3g, paper says 3.06 TFlops", got)
	}
	if got := SW26010Pro.ChipPeakFlops(); math.Abs(got-14.03e12)/14.03e12 > 0.02 {
		t.Errorf("SW26010-Pro chip peak = %.3g, paper says 14.03 TFlops", got)
	}
	// Aggregate Pro memory bandwidth: 6 CGs × 51.2 GB/s = 307.2 GB/s.
	if got := float64(SW26010Pro.CGs) * SW26010Pro.DMABandwidth; got != 307.2e9 {
		t.Errorf("Pro aggregate bandwidth = %v, paper says 307.2 GB/s", got)
	}
	if SW26010.LDMBytes != 64*1024 || SW26010Pro.LDMBytes != 256*1024 {
		t.Error("LDM capacities must be 64 KB / 256 KB")
	}
	if SW26010.String() == "" || SW26010Pro.String() == "" {
		t.Error("String() must be non-empty")
	}
}

func TestRunExecutesAllCPEs(t *testing.T) {
	cg := NewCoreGroup(TestChip(8, 64*1024))
	var n atomic.Int64
	cg.Run(func(p *CPE) {
		n.Add(1)
		if p.NumCPEs() != 8 {
			t.Errorf("NumCPEs = %d", p.NumCPEs())
		}
	})
	if n.Load() != 8 {
		t.Errorf("ran %d CPEs, want 8", n.Load())
	}
}

func TestLDMCapacityEnforced(t *testing.T) {
	cg := NewCoreGroup(TestChip(2, 1024)) // 1 KB LDM = 128 float64
	cg.Run(func(p *CPE) {
		if _, err := p.AllocFloat64(100); err != nil {
			t.Errorf("100 floats must fit 1 KB: %v", err)
		}
		if _, err := p.AllocFloat64(100); err == nil {
			t.Error("second 100 floats must overflow 1 KB")
		}
		p.FreeFloat64(100)
		if _, err := p.AllocFloat64(28); err != nil {
			t.Errorf("after free, 28 floats must fit: %v", err)
		}
	})
}

func TestMustAllocPanics(t *testing.T) {
	cg := NewCoreGroup(TestChip(1, 64))
	cg.Run(func(p *CPE) {
		defer func() {
			if recover() == nil {
				t.Error("MustAllocFloat64 must panic on overflow")
			}
		}()
		p.MustAllocFloat64(1000)
	})
}

func TestDMAMovesDataAndChargesTime(t *testing.T) {
	spec := TestChip(1, 64*1024)
	cg := NewCoreGroup(spec)
	mem := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	elapsed := cg.Run(func(p *CPE) {
		buf := p.MustAllocFloat64(8)
		p.DMAGet(buf, mem)
		for i := range buf {
			buf[i] *= 2
		}
		p.Compute(8, 1)
		p.DMAPut(mem, buf)
	})
	for i, v := range mem {
		if v != 2*float64(i+1) {
			t.Errorf("mem[%d] = %v", i, v)
		}
	}
	// Expected time: a 64 B get, a 64 B put (with write-allocate) and
	// the compute charge.
	share := spec.DMABandwidth / float64(spec.CPEs)
	wantDMA := (64+spec.DMAStartupBytes)/share +
		(64*spec.StoreWriteAllocate+spec.DMAStartupBytes)/share
	wantCompute := 8 / spec.CPEPeakFlops
	if math.Abs(elapsed-(wantDMA+wantCompute)) > 1e-12 {
		t.Errorf("elapsed = %v, want %v", elapsed, wantDMA+wantCompute)
	}
	if cg.Counters.DMABytes != 128 || cg.Counters.DMADescriptors != 2 {
		t.Errorf("counters = %+v", cg.Counters)
	}
}

// TestDMAEfficiencyShape: longer contiguous runs approach full bandwidth —
// the reason the paper blocks 70 cells along z (§IV-C-2).
func TestDMAEfficiencyShape(t *testing.T) {
	spec := SW26010
	cg := NewCoreGroup(spec)
	eff := func(runFloats int) float64 {
		mem := make([]float64, runFloats)
		elapsed := cg.Run(func(p *CPE) {
			buf := p.MustAllocFloat64(runFloats)
			p.DMAGet(buf, mem)
		})
		bytes := float64(runFloats * 8)
		share := spec.DMABandwidth / float64(spec.CPEs)
		return bytes / share / elapsed
	}
	e8, e70, e512 := eff(8), eff(70), eff(512)
	if !(e8 < e70 && e70 < e512) {
		t.Errorf("efficiency must grow with run length: %v %v %v", e8, e70, e512)
	}
	// A 70-cell z-run (560 B) lands near the paper's 77% bandwidth
	// utilisation.
	if e70 < 0.70 || e70 > 0.85 {
		t.Errorf("70-float run efficiency = %v, want ≈0.77", e70)
	}
}

func TestAsyncDMAOverlap(t *testing.T) {
	spec := TestChip(1, 64*1024)
	cg := NewCoreGroup(spec)
	mem := make([]float64, 1024)
	var serialT, overlapT float64
	serialT = cg.Run(func(p *CPE) {
		buf := p.MustAllocFloat64(1024)
		p.DMAGet(buf, mem)
		p.Compute(1e5, 1)
	})
	overlapT = cg.Run(func(p *CPE) {
		buf := p.MustAllocFloat64(1024)
		h := p.DMAGetAsync(buf, mem)
		p.Compute(1e5, 1)
		p.Wait(h)
	})
	if overlapT >= serialT {
		t.Errorf("async overlap must be faster: %v vs %v", overlapT, serialT)
	}
	// Overlap is bounded below by the slower of the two parts.
	share := spec.DMABandwidth / float64(spec.CPEs)
	dmaT := (1024*8 + spec.DMAStartupBytes) / share
	compT := 1e5 / spec.CPEPeakFlops
	if overlapT < math.Max(dmaT, compT)-1e-12 {
		t.Errorf("overlap %v below max(dma=%v, comp=%v)", overlapT, dmaT, compT)
	}
}

func TestGlobalLoadSlowerThanDMA(t *testing.T) {
	spec := SW26010
	cg := NewCoreGroup(spec)
	mem := make([]float64, 512)
	dmaT := cg.Run(func(p *CPE) {
		buf := p.MustAllocFloat64(512)
		p.DMAGet(buf, mem)
	})
	gldT := cg.Run(func(p *CPE) {
		buf := p.MustAllocFloat64(512)
		p.GlobalLoad(buf, mem)
	})
	if gldT <= dmaT {
		t.Errorf("direct global load (%v) must be slower than DMA (%v)", gldT, dmaT)
	}
}

func TestSendRecvBetweenCPEs(t *testing.T) {
	cg := NewCoreGroup(TestChip(4, 64*1024))
	out := make([]float64, 4)
	cg.Run(func(p *CPE) {
		// Ring shift: CPE i sends its ID to i+1.
		next := (p.ID + 1) % 4
		prev := (p.ID + 3) % 4
		p.Send(next, []float64{float64(p.ID)})
		got := p.Recv(prev)
		out[p.ID] = got[0]
	})
	for i := 0; i < 4; i++ {
		want := float64((i + 3) % 4)
		if out[i] != want {
			t.Errorf("CPE %d received %v, want %v", i, out[i], want)
		}
	}
	if cg.Counters.InterCPETransfers != 4 {
		t.Errorf("transfers = %d, want 4", cg.Counters.InterCPETransfers)
	}
}

func TestSendIsCheaperThanDMARoundTrip(t *testing.T) {
	// The premise of the y-sharing optimization (§IV-C-2): register
	// communication beats fetching the same data from main memory.
	spec := SW26010
	cg := NewCoreGroup(spec)
	mem := make([]float64, 72)
	dmaT := cg.Run(func(p *CPE) {
		if p.ID != 0 {
			return
		}
		buf := p.MustAllocFloat64(72)
		p.DMAGet(buf, mem)
	})
	commT := cg.Run(func(p *CPE) {
		switch p.ID {
		case 0:
			p.Send(1, mem)
		case 1:
			p.Recv(0)
		}
	})
	if commT >= dmaT {
		t.Errorf("register comm (%v) must beat DMA (%v) for a 72-value run", commT, dmaT)
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	cg := NewCoreGroup(TestChip(4, 64*1024))
	clocks := make([]float64, 4)
	cg.Run(func(p *CPE) {
		// Unequal work before the barrier.
		p.Compute(float64(p.ID+1)*1e4, 1)
		p.Barrier()
		clocks[p.ID] = p.Clock()
	})
	for i := 1; i < 4; i++ {
		if clocks[i] != clocks[0] {
			t.Errorf("clock %d = %v != clock 0 = %v after barrier", i, clocks[i], clocks[0])
		}
	}
	// The aligned clock equals the slowest CPE's pre-barrier time.
	want := 4e4 / TestChip(4, 0).CPEPeakFlops
	if math.Abs(clocks[0]-want) > 1e-15 {
		t.Errorf("barrier time = %v, want %v", clocks[0], want)
	}
}

func TestRowBroadcast(t *testing.T) {
	cg := NewCoreGroup(SW26010) // full 8×8 mesh
	var received atomic.Int64
	cg.Run(func(p *CPE) {
		if p.Row != 0 {
			return
		}
		if p.Col == 0 {
			p.RowBroadcast([]float64{42})
			return
		}
		if got := p.Recv(0); got[0] == 42 {
			received.Add(1)
		}
	})
	if received.Load() != 7 {
		t.Errorf("row broadcast reached %d CPEs, want 7", received.Load())
	}
}

func TestRunElapsedIsMaxOverCPEs(t *testing.T) {
	spec := TestChip(4, 64*1024)
	cg := NewCoreGroup(spec)
	elapsed := cg.Run(func(p *CPE) {
		p.Compute(float64(p.ID+1)*1e6, 1)
	})
	want := 4e6 / spec.CPEPeakFlops
	if math.Abs(elapsed-want) > 1e-15 {
		t.Errorf("elapsed = %v, want max CPE time %v", elapsed, want)
	}
	if cg.TotalTime != elapsed {
		t.Errorf("TotalTime = %v, want %v", cg.TotalTime, elapsed)
	}
}

// TestDMACostProperty: DMA cost is monotone in bytes and descriptor count.
func TestDMACostProperty(t *testing.T) {
	cg := NewCoreGroup(SW26010)
	p := cg.cpes[0]
	f := func(a, b uint16, d1, d2 uint8) bool {
		n1, n2 := int(a)+1, int(b)+1
		k1, k2 := int(d1)+1, int(d2)+1
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		if k1 > k2 {
			k1, k2 = k2, k1
		}
		return p.dmaCost(n1, k1) <= p.dmaCost(n2, k2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSendValidation(t *testing.T) {
	cg := NewCoreGroup(TestChip(2, 1024))
	cg.Run(func(p *CPE) {
		if p.ID != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("Send to invalid CPE must panic")
			}
		}()
		p.Send(99, []float64{1})
	})
}
