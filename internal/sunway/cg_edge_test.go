package sunway

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

// TestLDMExhaustionSequence drives the allocator to its exact capacity,
// over it, and back down — the bookkeeping the swlb LDM budget relies on.
func TestLDMExhaustionSequence(t *testing.T) {
	cg := NewCoreGroup(TestChip(1, 1024)) // 128 float64
	cg.Run(func(p *CPE) {
		if _, err := p.AllocFloat64(128); err != nil {
			t.Errorf("exact-capacity alloc failed: %v", err)
		}
		if p.LDMUsed() != 1024 {
			t.Errorf("LDMUsed = %d, want 1024", p.LDMUsed())
		}
		_, err := p.AllocFloat64(1)
		if err == nil {
			t.Fatal("allocation beyond capacity accepted")
		}
		if !strings.Contains(err.Error(), "LDM overflow") {
			t.Errorf("overflow error lacks diagnosis: %v", err)
		}
		p.FreeFloat64(64)
		if _, err := p.AllocFloat64(64); err != nil {
			t.Errorf("free did not return capacity: %v", err)
		}
		// Over-freeing clamps at zero rather than minting capacity.
		p.FreeFloat64(1 << 20)
		if p.LDMUsed() != 0 {
			t.Errorf("over-free left LDMUsed = %d", p.LDMUsed())
		}
		if _, err := p.AllocFloat64(129); err == nil {
			t.Error("over-free minted capacity beyond the chip's LDM")
		}
	})
}

// TestStridedDMAGetAccounting: a strided gather moves the right values and
// charges one descriptor per run — runs × startup instead of one.
func TestStridedDMAGetAccounting(t *testing.T) {
	spec := TestChip(1, 64*1024)
	cg := NewCoreGroup(spec)
	const runLen, stride, runs = 8, 16, 4
	src := make([]float64, (runs-1)*stride+runLen)
	for i := range src {
		src[i] = float64(i)
	}
	elapsed := cg.Run(func(p *CPE) {
		dst := p.MustAllocFloat64(runs * runLen)
		p.DMAGetStrided(dst, src, runLen, stride)
		for r := 0; r < runs; r++ {
			for i := 0; i < runLen; i++ {
				if got, want := dst[r*runLen+i], float64(r*stride+i); got != want {
					t.Fatalf("dst[%d] = %v, want %v", r*runLen+i, got, want)
				}
			}
		}
	})
	bytes := float64(runs * runLen * 8)
	share := spec.DMABandwidth / float64(spec.CPEs)
	want := (bytes + runs*spec.DMAStartupBytes) / share
	if math.Abs(elapsed-want) > 1e-15 {
		t.Errorf("strided get elapsed = %v, want %v", elapsed, want)
	}
	if cg.Counters.DMADescriptors != runs {
		t.Errorf("descriptors = %d, want %d", cg.Counters.DMADescriptors, runs)
	}
	if cg.Counters.DMABytes != runs*runLen*8 {
		t.Errorf("bytes = %d, want %d", cg.Counters.DMABytes, runs*runLen*8)
	}
}

// TestStridedDMAPutAccounting: the scatter lands runs at the right main
// memory offsets and pays write-allocate on every byte plus a startup per
// run.
func TestStridedDMAPutAccounting(t *testing.T) {
	spec := TestChip(1, 64*1024)
	cg := NewCoreGroup(spec)
	const runLen, stride, runs = 5, 9, 3
	dst := make([]float64, (runs-1)*stride+runLen)
	elapsed := cg.Run(func(p *CPE) {
		src := p.MustAllocFloat64(runs * runLen)
		for i := range src {
			src[i] = 100 + float64(i)
		}
		p.DMAPutStrided(dst, src, runLen, stride)
	})
	for r := 0; r < runs; r++ {
		for i := 0; i < runLen; i++ {
			if got, want := dst[r*stride+i], 100+float64(r*runLen+i); got != want {
				t.Fatalf("dst[%d] = %v, want %v", r*stride+i, got, want)
			}
		}
	}
	// Untouched gap cells stay zero.
	if dst[runLen] != 0 || dst[stride-1] != 0 {
		t.Errorf("scatter wrote into the stride gap: %v", dst)
	}
	bytes := float64(runs * runLen * 8)
	share := spec.DMABandwidth / float64(spec.CPEs)
	want := (bytes*spec.StoreWriteAllocate + runs*spec.DMAStartupBytes) / share
	if math.Abs(elapsed-want) > 1e-15 {
		t.Errorf("strided put elapsed = %v, want %v", elapsed, want)
	}
	if cg.Counters.DMADescriptors != runs {
		t.Errorf("descriptors = %d, want %d", cg.Counters.DMADescriptors, runs)
	}
}

// TestStridedCostExceedsContiguous pins the architectural fact the paper's
// z-contiguous blocking exploits: moving the same bytes in r runs costs
// exactly (r-1) extra startups over one contiguous descriptor.
func TestStridedCostExceedsContiguous(t *testing.T) {
	spec := SW26010
	const n = 512
	mem := make([]float64, 2*n)
	timeOf := func(kernel func(p *CPE)) float64 {
		return NewCoreGroup(spec).Run(kernel)
	}
	contig := timeOf(func(p *CPE) {
		p.DMAGet(p.MustAllocFloat64(n), mem[:n])
	})
	strided := timeOf(func(p *CPE) {
		p.DMAGetStrided(p.MustAllocFloat64(n), mem, 8, 16)
	})
	share := spec.DMABandwidth / float64(spec.CPEs)
	extra := float64(n/8-1) * spec.DMAStartupBytes / share
	if math.Abs((strided-contig)-extra) > 1e-15 {
		t.Errorf("strided-contiguous gap = %v, want %v", strided-contig, extra)
	}
	if strided <= contig {
		t.Error("strided transfer must cost more than contiguous")
	}
}

// TestStridedDMAValidation: malformed geometries panic with a diagnostic
// instead of silently corrupting main memory.
func TestStridedDMAValidation(t *testing.T) {
	cg := NewCoreGroup(TestChip(1, 64*1024))
	mustPanic := func(f func()) (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		f()
		return ""
	}
	cg.Run(func(p *CPE) {
		dst := p.MustAllocFloat64(16)
		src := make([]float64, 64)
		for name, bad := range map[string]func(){
			"zero runLen":         func() { p.DMAGetStrided(dst, src, 0, 8) },
			"stride < runLen":     func() { p.DMAGetStrided(dst, src, 8, 4) },
			"ragged LDM buffer":   func() { p.DMAGetStrided(dst[:15], src, 8, 16) },
			"main memory overrun": func() { p.DMAGetStrided(dst, src[:20], 8, 16) },
			"put overrun":         func() { p.DMAPutStrided(src[:20], dst, 8, 16) },
		} {
			msg := mustPanic(bad)
			if msg == "" {
				t.Errorf("%s: no panic", name)
			} else if !strings.Contains(msg, "strided") {
				t.Errorf("%s: undiagnostic panic %q", name, msg)
			}
		}
		// Valid geometry after the failures still works.
		p.DMAGetStrided(dst, src, 8, 16)
	})
}

// TestKernelPanicPropagatesFromRun: a trap on one CPE surfaces as a panic
// from Run with the original value, and the core group stays usable.
func TestKernelPanicPropagatesFromRun(t *testing.T) {
	cg := NewCoreGroup(TestChip(4, 1024))
	got := func() (r any) {
		defer func() { r = recover() }()
		cg.Run(func(p *CPE) {
			if p.ID == 2 {
				panic("cpe trap")
			}
		})
		return nil
	}()
	if got != "cpe trap" {
		t.Fatalf("Run propagated %v, want the kernel's panic value", got)
	}
	// The abort state resets: the next Run is healthy.
	var n atomic.Int64
	cg.Run(func(p *CPE) { n.Add(1) })
	if n.Load() != 4 {
		t.Fatalf("post-panic Run executed %d CPEs, want 4", n.Load())
	}
}

// TestPanicReleasesBarrierWaiters: CPEs parked at a Barrier when another
// CPE dies must unwind instead of deadlocking, and the reported panic is
// the root cause, never the internal abort sentinel.
func TestPanicReleasesBarrierWaiters(t *testing.T) {
	cg := NewCoreGroup(TestChip(4, 1024))
	got := func() (r any) {
		defer func() { r = recover() }()
		cg.Run(func(p *CPE) {
			if p.ID == 0 {
				panic("dead CPE")
			}
			p.Barrier() // would hang forever waiting for CPE 0
		})
		return nil
	}()
	if got != "dead CPE" {
		t.Fatalf("Run propagated %v, want the root-cause panic", got)
	}
}
