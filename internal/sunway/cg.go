package sunway

import (
	"fmt"
	"sync"
)

// Counters aggregates the activity of a core group.
type Counters struct {
	// DMABytes is the total traffic between main memory and LDM.
	DMABytes int64
	// DMADescriptors counts individual DMA transfers (startup charges).
	DMADescriptors int64
	// Flops counts floating-point operations charged via Compute.
	Flops int64
	// InterCPEBytes counts register-communication/RMA traffic.
	InterCPEBytes int64
	// InterCPETransfers counts individual transfers.
	InterCPETransfers int64
	// GlobalLoadBytes counts slow direct global accesses.
	GlobalLoadBytes int64
}

// add accumulates other into c.
func (c *Counters) add(o Counters) {
	c.DMABytes += o.DMABytes
	c.DMADescriptors += o.DMADescriptors
	c.Flops += o.Flops
	c.InterCPEBytes += o.InterCPEBytes
	c.InterCPETransfers += o.InterCPETransfers
	c.GlobalLoadBytes += o.GlobalLoadBytes
}

// CoreGroup is a functional simulator of one CG: an 8×8 (by default) CPE
// mesh with per-CPE LDM, a DMA engine and inter-CPE communication.
type CoreGroup struct {
	Spec ChipSpec

	cpes []*CPE

	// mailboxes[src][dst] queues inter-CPE messages.
	mail map[[2]int]*cpeMailbox

	mailMu sync.Mutex

	barrier struct {
		sync.Mutex
		cond     *sync.Cond
		count    int
		gen      int
		maxT     float64
		releaseT float64
	}

	// TotalTime accumulates the simulated elapsed time of all Run calls.
	TotalTime float64
	// Counters accumulates activity over all Run calls.
	Counters Counters

	abort struct {
		sync.Mutex
		val any  // first kernel panic value, nil while healthy
		cpe int  // CPE the first panic happened on
		set bool // distinguishes panic(nil) from no panic
	}
}

// aborted reports whether a kernel panic has been recorded for the
// in-flight Run, and on which CPE.
func (cg *CoreGroup) aborted() (int, bool) {
	cg.abort.Lock()
	defer cg.abort.Unlock()
	return cg.abort.cpe, cg.abort.set
}

// cpeAborted is the sentinel panic that unwinds CPEs parked at a barrier
// after another CPE has panicked. It is never reported to the caller —
// the original panic value is.
type cpeAborted struct{ cpe int }

func (a cpeAborted) Error() string {
	return fmt.Sprintf("sunway: CPE kernel aborted (another CPE panicked; first failure on CPE %d)", a.cpe)
}

type cpeMailbox struct {
	mu      sync.Mutex
	queue   [][]float64
	waiters []chan []float64
}

func (mb *cpeMailbox) put(d []float64) {
	mb.mu.Lock()
	if len(mb.waiters) > 0 {
		w := mb.waiters[0]
		mb.waiters = mb.waiters[1:]
		mb.mu.Unlock()
		w <- d
		return
	}
	mb.queue = append(mb.queue, d)
	mb.mu.Unlock()
}

func (mb *cpeMailbox) get() []float64 {
	mb.mu.Lock()
	if len(mb.queue) > 0 {
		d := mb.queue[0]
		mb.queue = mb.queue[1:]
		mb.mu.Unlock()
		return d
	}
	ch := make(chan []float64, 1)
	mb.waiters = append(mb.waiters, ch)
	mb.mu.Unlock()
	return <-ch
}

// NewCoreGroup builds a core group simulator for the given chip model.
func NewCoreGroup(spec ChipSpec) *CoreGroup {
	cg := &CoreGroup{
		Spec: spec,
		mail: make(map[[2]int]*cpeMailbox),
	}
	cg.barrier.cond = sync.NewCond(&cg.barrier.Mutex)
	cg.cpes = make([]*CPE, spec.CPEs)
	for i := range cg.cpes {
		cg.cpes[i] = &CPE{cg: cg, ID: i, Row: i / 8, Col: i % 8}
	}
	return cg
}

func (cg *CoreGroup) mailbox(src, dst int) *cpeMailbox {
	k := [2]int{src, dst}
	cg.mailMu.Lock()
	defer cg.mailMu.Unlock()
	mb, ok := cg.mail[k]
	if !ok {
		mb = &cpeMailbox{}
		cg.mail[k] = mb
	}
	return mb
}

// Run executes the kernel on every CPE concurrently (the Athread
// spawn/join pattern) and returns the simulated elapsed time: the maximum
// CPE clock. LDM allocations and clocks are reset at entry.
//
// A panic inside the kernel on any CPE is recovered on that CPE's
// goroutine, recorded, and re-raised on the goroutine that called Run once
// every CPE has unwound — the analogue of the whole core group faulting
// when one CPE traps. CPEs parked at a Barrier when the fault happens are
// released with an internal abort panic so Run cannot deadlock; the value
// re-raised is always the first kernel panic, not the abort sentinel.
func (cg *CoreGroup) Run(kernel func(p *CPE)) float64 {
	cg.barrier.Lock()
	cg.barrier.count = 0
	cg.barrier.maxT = 0
	cg.barrier.releaseT = 0
	cg.barrier.Unlock()
	cg.abort.Lock()
	cg.abort.val = nil
	cg.abort.set = false
	cg.abort.Unlock()
	var wg sync.WaitGroup
	for _, p := range cg.cpes {
		p.clock = 0
		p.dmaBusyUntil = 0
		p.ldmUsed = 0
		p.counters = Counters{}
		wg.Add(1)
		go func(p *CPE) {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if _, sentinel := r.(cpeAborted); sentinel {
					return // secondary unwind, not the root cause
				}
				cg.abort.Lock()
				if !cg.abort.set {
					cg.abort.set = true
					cg.abort.val = r
					cg.abort.cpe = p.ID
				}
				cg.abort.Unlock()
				// Release any CPEs waiting at the barrier so the
				// group can unwind instead of deadlocking.
				cg.barrier.Lock()
				cg.barrier.gen++
				cg.barrier.cond.Broadcast()
				cg.barrier.Unlock()
			}()
			kernel(p)
		}(p)
	}
	wg.Wait()
	cg.abort.Lock()
	failed, val := cg.abort.set, cg.abort.val
	cg.abort.Unlock()
	if failed {
		panic(val)
	}
	elapsed := 0.0
	for _, p := range cg.cpes {
		if p.clock > elapsed {
			elapsed = p.clock
		}
		cg.Counters.add(p.counters)
	}
	cg.TotalTime += elapsed
	return elapsed
}

// CPE is one computing processing element inside a core group.
type CPE struct {
	cg *CoreGroup
	// ID is the CPE index (0..CPEs-1); Row and Col are its mesh
	// coordinates.
	ID, Row, Col int

	clock float64
	// dmaBusyUntil serialises the CPE's DMA engine: transfers queue
	// behind one another even when issued asynchronously, so bandwidth
	// is never double-counted.
	dmaBusyUntil float64
	ldmUsed      int
	counters     Counters
}

// NumCPEs returns the number of CPEs in this CPE's core group.
func (p *CPE) NumCPEs() int { return p.cg.Spec.CPEs }

// Clock returns the CPE's current simulated time within the running
// kernel.
func (p *CPE) Clock() float64 { return p.clock }

// LDMUsed returns the bytes currently allocated in this CPE's LDM.
func (p *CPE) LDMUsed() int { return p.ldmUsed }

// AllocFloat64 reserves an LDM buffer of n float64s. It returns an error
// if the allocation would exceed the chip's LDM capacity — kernels that do
// not fit the real chip do not fit here.
func (p *CPE) AllocFloat64(n int) ([]float64, error) {
	bytes := n * 8
	if p.ldmUsed+bytes > p.cg.Spec.LDMBytes {
		return nil, fmt.Errorf("sunway: CPE %d LDM overflow: %d + %d > %d bytes",
			p.ID, p.ldmUsed, bytes, p.cg.Spec.LDMBytes)
	}
	p.ldmUsed += bytes
	return make([]float64, n), nil
}

// MustAllocFloat64 is AllocFloat64 that panics on overflow; for kernels
// whose footprint is statically known to fit.
func (p *CPE) MustAllocFloat64(n int) []float64 {
	b, err := p.AllocFloat64(n)
	if err != nil {
		panic(err)
	}
	return b
}

// FreeFloat64 returns an LDM buffer's bytes to the allocator (buffers are
// not tracked individually; the caller frees what it allocated).
func (p *CPE) FreeFloat64(n int) {
	p.ldmUsed -= n * 8
	if p.ldmUsed < 0 {
		p.ldmUsed = 0
	}
}

// dmaShare is the per-CPE share of the CG DMA bandwidth under the
// all-CPEs-streaming assumption the LBM kernels satisfy.
func (p *CPE) dmaShare() float64 {
	return p.cg.Spec.DMABandwidth / float64(p.cg.Spec.CPEs)
}

// dmaCost returns the simulated duration of a DMA transfer consisting of
// descriptors contiguous runs totalling bytes.
func (p *CPE) dmaCost(bytes, descriptors int) float64 {
	return (float64(bytes) + float64(descriptors)*p.cg.Spec.DMAStartupBytes) / p.dmaShare()
}

// dmaSchedule queues a transfer of the given duration on the CPE's DMA
// engine starting no earlier than the current clock, and returns its
// completion time.
func (p *CPE) dmaSchedule(cost float64) float64 {
	start := p.clock
	if p.dmaBusyUntil > start {
		start = p.dmaBusyUntil
	}
	p.dmaBusyUntil = start + cost
	return p.dmaBusyUntil
}

// DMAGet copies len(dst) values from main memory (src) into the LDM buffer
// dst as one contiguous descriptor and blocks until it completes.
func (p *CPE) DMAGet(dst, src []float64) {
	copy(dst, src)
	n := len(dst) * 8
	p.clock = p.dmaSchedule(p.dmaCost(n, 1))
	p.counters.DMABytes += int64(n)
	p.counters.DMADescriptors++
}

// DMAPut copies len(src) values from the LDM buffer src into main memory
// (dst) as one contiguous descriptor and blocks until it completes. Stores
// pay the write-allocate factor.
func (p *CPE) DMAPut(dst, src []float64) {
	copy(dst, src)
	n := len(src) * 8
	p.clock = p.dmaSchedule(p.putCost(n, 1))
	p.counters.DMABytes += int64(n)
	p.counters.DMADescriptors++
}

// putCost is the store cost of descriptors contiguous runs totalling
// bytes, including write-allocate traffic.
func (p *CPE) putCost(bytes, descriptors int) float64 {
	wa := p.cg.Spec.StoreWriteAllocate
	if wa <= 0 {
		wa = 1
	}
	return (float64(bytes)*wa + float64(descriptors)*p.cg.Spec.DMAStartupBytes) / p.dmaShare()
}

// stridedRuns validates the geometry of a strided transfer between a
// contiguous LDM buffer of ldmLen values and a main-memory buffer of
// memLen values, and returns the number of runs (= DMA descriptors).
func (p *CPE) stridedRuns(ldmLen, memLen, runLen, stride int, op string) int {
	if runLen <= 0 || stride < runLen || ldmLen%runLen != 0 {
		panic(fmt.Sprintf("sunway: CPE %d strided %s: invalid geometry runLen=%d stride=%d ldm=%d",
			p.ID, op, runLen, stride, ldmLen))
	}
	runs := ldmLen / runLen
	if runs > 0 && (runs-1)*stride+runLen > memLen {
		panic(fmt.Sprintf("sunway: CPE %d strided %s overruns main memory: %d runs of %d at stride %d > %d values",
			p.ID, op, runs, runLen, stride, memLen))
	}
	return runs
}

// DMAGetStrided gathers runs of runLen float64s from main memory into the
// contiguous LDM buffer dst: run r starts at src[r*stride]. The hardware
// issues one descriptor per run, so a strided gather of the same bytes as
// a contiguous DMAGet pays len(dst)/runLen startup charges instead of one
// — the accounting behind the paper's preference for layouts that keep
// the innermost (z) dimension contiguous (§IV-B).
func (p *CPE) DMAGetStrided(dst, src []float64, runLen, stride int) {
	runs := p.stridedRuns(len(dst), len(src), runLen, stride, "get")
	for r := 0; r < runs; r++ {
		copy(dst[r*runLen:(r+1)*runLen], src[r*stride:r*stride+runLen])
	}
	n := len(dst) * 8
	p.clock = p.dmaSchedule(p.dmaCost(n, runs))
	p.counters.DMABytes += int64(n)
	p.counters.DMADescriptors += int64(runs)
}

// DMAPutStrided scatters the contiguous LDM buffer src into main memory:
// run r of runLen values lands at dst[r*stride]. Like DMAGetStrided each
// run is a separate descriptor, and stores additionally pay the
// write-allocate factor.
func (p *CPE) DMAPutStrided(dst, src []float64, runLen, stride int) {
	runs := p.stridedRuns(len(src), len(dst), runLen, stride, "put")
	for r := 0; r < runs; r++ {
		copy(dst[r*stride:r*stride+runLen], src[r*runLen:(r+1)*runLen])
	}
	n := len(src) * 8
	p.clock = p.dmaSchedule(p.putCost(n, runs))
	p.counters.DMABytes += int64(n)
	p.counters.DMADescriptors += int64(runs)
}

// DMAHandle represents an asynchronous DMA in flight.
type DMAHandle struct {
	completeAt float64
}

// DMAGetAsync starts an asynchronous get: the transfer queues on the DMA
// engine while the CPE clock keeps running (dual-pipeline overlap,
// Fig. 10(2)). Call Wait before using dst.
func (p *CPE) DMAGetAsync(dst, src []float64) DMAHandle {
	copy(dst, src)
	n := len(dst) * 8
	p.counters.DMABytes += int64(n)
	p.counters.DMADescriptors++
	return DMAHandle{completeAt: p.dmaSchedule(p.dmaCost(n, 1))}
}

// DMAPutAsync starts an asynchronous put.
func (p *CPE) DMAPutAsync(dst, src []float64) DMAHandle {
	copy(dst, src)
	n := len(src) * 8
	p.counters.DMABytes += int64(n)
	p.counters.DMADescriptors++
	return DMAHandle{completeAt: p.dmaSchedule(p.putCost(n, 1))}
}

// Wait blocks the CPE until the DMA has completed: the clock advances to
// the completion time if it has not already passed it.
func (p *CPE) Wait(h DMAHandle) {
	if h.completeAt > p.clock {
		p.clock = h.completeAt
	}
}

// GlobalLoad models the slow direct global-memory access path that
// bypasses LDM (the anti-pattern the REG-LDM-MEM hierarchy exists to
// avoid); used by the optimization-ablation baselines.
func (p *CPE) GlobalLoad(dst, src []float64) {
	copy(dst, src)
	n := len(dst) * 8
	p.clock += float64(n) / p.cg.Spec.GlobalLoadBandwidth
	p.counters.GlobalLoadBytes += int64(n)
}

// Compute charges flops of floating-point work at the given efficiency
// (fraction of the CPE's peak; e.g. unvectorised scalar code ≈ 1/8 on a
// 256-bit machine, hand-tuned assembly ≈ 0.5+).
func (p *CPE) Compute(flops float64, efficiency float64) {
	if efficiency <= 0 {
		efficiency = 1
	}
	p.clock += flops / (p.cg.Spec.CPEPeakFlops * efficiency)
	p.counters.Flops += int64(flops)
}

// Send transfers data to another CPE over the register-communication bus
// (SW26010) or RMA (SW26010-Pro), charging latency plus bandwidth on the
// sender; the receiver pays on Recv. The InterCPEBandwidth constant is an
// effective per-link figure that already accounts for average sharing of
// the 8 row/8 column buses — a causally correct per-bus contention model
// would need a globally ordered event-driven simulation, which the
// deterministic per-CPE clocks deliberately avoid (see DESIGN.md §7).
func (p *CPE) Send(dst int, data []float64) {
	if dst < 0 || dst >= p.cg.Spec.CPEs {
		panic(fmt.Sprintf("sunway: CPE %d send to invalid CPE %d", p.ID, dst))
	}
	n := len(data) * 8
	p.clock += p.cg.Spec.InterCPELatency + float64(n)/p.cg.Spec.InterCPEBandwidth
	p.counters.InterCPEBytes += int64(n)
	p.counters.InterCPETransfers++
	buf := append([]float64(nil), data...)
	p.cg.mailbox(p.ID, dst).put(buf)
}

// Recv receives the next transfer from src (FIFO per src→dst pair),
// charging the receive cost.
func (p *CPE) Recv(src int) []float64 {
	if src < 0 || src >= p.cg.Spec.CPEs {
		panic(fmt.Sprintf("sunway: CPE %d recv from invalid CPE %d", p.ID, src))
	}
	d := p.cg.mailbox(src, p.ID).get()
	p.clock += p.cg.Spec.InterCPELatency + float64(len(d)*8)/p.cg.Spec.InterCPEBandwidth
	return d
}

// RowBroadcast sends data to every CPE in the same mesh row (an RMA
// feature of SW26010-Pro; register communication on SW26010 supports row
// broadcast too, §III-B).
func (p *CPE) RowBroadcast(data []float64) {
	for c := 0; c < 8; c++ {
		dst := p.Row*8 + c
		if dst == p.ID || dst >= p.cg.Spec.CPEs {
			continue
		}
		p.Send(dst, data)
	}
}

// Barrier synchronises all CPEs of the core group and aligns their clocks
// to the latest arrival (which is what a hardware barrier costs). If
// another CPE's kernel has panicked, Barrier unwinds instead of waiting
// for an arrival that will never come.
func (p *CPE) Barrier() {
	b := &p.cg.barrier
	b.Lock()
	if cpe, dead := p.cg.aborted(); dead {
		b.Unlock()
		panic(cpeAborted{cpe: cpe})
	}
	if p.clock > b.maxT {
		b.maxT = p.clock
	}
	gen := b.gen
	b.count++
	if b.count == p.cg.Spec.CPEs {
		// Last arrival releases the generation and publishes its time.
		b.count = 0
		b.releaseT = b.maxT
		b.maxT = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
		if cpe, dead := p.cg.aborted(); dead {
			b.Unlock()
			panic(cpeAborted{cpe: cpe})
		}
	}
	p.clock = b.releaseT
	b.Unlock()
}
