// Package sunway is a functional-plus-performance model of the Shenwei
// many-core processors that SunwayLB targets: the SW26010 (Sunway
// TaihuLight) and the SW26010-Pro (the new Sunway supercomputer).
//
// The functional half executes real kernels: each CPE of a core group runs
// as a goroutine with an explicit LDM byte budget, data moves between main
// memory (ordinary Go slices) and LDM through a DMA engine, and CPEs share
// data over the register-communication buses (SW26010) or RMA
// (SW26010-Pro). Capacity limits are enforced, so a kernel that would not
// fit on the real chip does not fit here either.
//
// The performance half charges simulated time for every operation — DMA
// descriptors and bytes, floating-point work, register/RMA transfers,
// pipeline issue — using the published machine constants (§III-B of the
// paper). A core group's step time is the maximum over its CPE clocks,
// which is what the scaling experiments consume.
package sunway

import "fmt"

// ChipSpec holds the architectural constants of one processor model.
type ChipSpec struct {
	// Name identifies the model.
	Name string
	// CGs is the number of core groups per chip.
	CGs int
	// CPEs is the number of computing processing elements per CG.
	CPEs int
	// LDMBytes is the local data memory per CPE.
	LDMBytes int
	// DMABandwidth is the aggregate main-memory DMA bandwidth per CG in
	// bytes/second.
	DMABandwidth float64
	// DMAStartupBytes models the per-descriptor overhead as equivalent
	// bytes: a transfer of n contiguous bytes costs (n+DMAStartupBytes)
	// bandwidth-seconds, so long runs approach full bandwidth (this is
	// why the paper blocks 70 cells contiguously along z).
	DMAStartupBytes float64
	// MPEFreq and CPEFreq are clock frequencies in Hz.
	MPEFreq, CPEFreq float64
	// VectorBits is the SIMD width of the CPE.
	VectorBits int
	// CPEPeakFlops is the peak FP64 rate of one CPE (FMA counted as 2).
	CPEPeakFlops float64
	// GlobalLoadBandwidth is the bandwidth of direct (non-DMA) global
	// loads from a CPE — the slow path the REG-LDM-MEM hierarchy avoids.
	GlobalLoadBandwidth float64

	// Register communication (SW26010) or RMA (SW26010-Pro) between
	// CPEs inside a CG.
	InterCPELatency   float64 // seconds per transfer
	InterCPEBandwidth float64 // bytes/second per link
	// HasRMA marks SW26010-Pro-style one-sided communication with
	// row/column broadcast.
	HasRMA bool

	// MemBytesPerCG is the main memory attached to one CG.
	MemBytesPerCG int64

	// MPEBandwidth is the effective memory bandwidth of the management
	// processing element running the plain (cache-path) stencil code —
	// the resource that bounds the MPE-only baseline of Fig. 8.
	MPEBandwidth float64
	// MPEFlops is the MPE's effective scalar floating-point rate.
	MPEFlops float64

	// StoreWriteAllocate multiplies the cost of DMA stores: writing a
	// cache line from LDM to memory first fetches it (the "write
	// allocate" traffic the paper's 380 B/LUP accounting includes).
	StoreWriteAllocate float64
}

// CGPeakFlops returns the aggregate FP64 peak of one core group's CPEs.
func (s ChipSpec) CGPeakFlops() float64 { return float64(s.CPEs) * s.CPEPeakFlops }

// ChipPeakFlops returns the chip's aggregate FP64 peak.
func (s ChipSpec) ChipPeakFlops() float64 { return float64(s.CGs) * s.CGPeakFlops() }

// String implements fmt.Stringer.
func (s ChipSpec) String() string {
	return fmt.Sprintf("%s (%d CGs × %d CPEs, %.1f GB/s/CG, %d KB LDM)",
		s.Name, s.CGs, s.CPEs, s.DMABandwidth/1e9, s.LDMBytes/1024)
}

// SW26010 is the Sunway TaihuLight processor: 4 CGs × (1 MPE + 64 CPEs),
// 64 KB LDM, 256-bit vectors, 3.06 TFlops peak, ~32 GB/s DMA per CG
// (§III-B and the paper's roofline, which uses 32 GB/s).
var SW26010 = ChipSpec{
	Name:                "SW26010",
	CGs:                 4,
	CPEs:                64,
	LDMBytes:            64 * 1024,
	DMABandwidth:        32 << 30, // the paper's roofline uses binary GB: 32·1024³ B/s
	DMAStartupBytes:     168,
	MPEFreq:             1.45e9,
	CPEFreq:             1.45e9,
	VectorBits:          256,
	CPEPeakFlops:        1.45e9 * 8, // 256-bit FMA: 4 doubles × 2 flops
	GlobalLoadBandwidth: 8e9 / 64,   // paper: 8 GB/s shared direct access
	InterCPELatency:     11e-9,      // ~16 cycles register communication
	InterCPEBandwidth:   6e9,
	HasRMA:              false,
	MemBytesPerCG:       8 << 30,
	MPEBandwidth:        0.17e9, // plain cache-path stencil rate (Fig. 8 baseline)
	MPEFlops:            1.45e9,
	StoreWriteAllocate:  1.5,
}

// SW26010Pro is the new Sunway supercomputer's processor: 6 CGs ×
// (1 MPE + 64 CPEs), 256 KB LDM, 512-bit vectors, 14.03 TFlops FP64 peak,
// 51.2 GB/s DMA per CG, RMA instead of register communication.
var SW26010Pro = ChipSpec{
	Name:                "SW26010-Pro",
	CGs:                 6,
	CPEs:                64,
	LDMBytes:            256 * 1024,
	DMABandwidth:        51.2e9,
	DMAStartupBytes:     128, // improved DMA engine
	MPEFreq:             2.1e9,
	CPEFreq:             2.25e9,
	VectorBits:          512,
	CPEPeakFlops:        2.25e9 * 16, // 512-bit FMA: 8 doubles × 2 flops
	GlobalLoadBandwidth: 16e9 / 64,
	InterCPELatency:     8e-9,
	InterCPEBandwidth:   10e9,
	HasRMA:              true,
	MemBytesPerCG:       16 << 30,
	MPEBandwidth:        0.4e9,
	MPEFlops:            2.1e9,
	StoreWriteAllocate:  1.5,
}

// TestChip returns a scaled-down spec for functional tests: fewer CPEs and
// a small LDM so capacity violations surface on tiny domains.
func TestChip(cpes, ldmBytes int) ChipSpec {
	s := SW26010
	s.Name = fmt.Sprintf("test-chip-%dcpe", cpes)
	s.CPEs = cpes
	s.LDMBytes = ldmBytes
	return s
}
