package lattice

import (
	"math"
	"testing"
	"testing/quick"
)

var allDescriptors = []*Descriptor{&D3Q19, &D2Q9, &D3Q15, &D3Q27}

func TestDescriptorShapes(t *testing.T) {
	want := map[string]struct{ d, q int }{
		"D3Q19": {3, 19},
		"D2Q9":  {2, 9},
		"D3Q15": {3, 15},
		"D3Q27": {3, 27},
	}
	for _, d := range allDescriptors {
		w := want[d.Name]
		if d.D != w.d || d.Q != w.q {
			t.Errorf("%s: got D=%d Q=%d, want D=%d Q=%d", d.Name, d.D, d.Q, w.d, w.q)
		}
		if len(d.C) != d.Q || len(d.W) != d.Q || len(d.Opp) != d.Q {
			t.Errorf("%s: table lengths inconsistent", d.Name)
		}
	}
}

func TestWeightsSumToOne(t *testing.T) {
	for _, d := range allDescriptors {
		sum := 0.0
		for _, w := range d.W {
			sum += w
		}
		if math.Abs(sum-1) > 1e-14 {
			t.Errorf("%s: weights sum to %v", d.Name, sum)
		}
	}
}

func TestOppositeTable(t *testing.T) {
	for _, d := range allDescriptors {
		for i := 0; i < d.Q; i++ {
			j := d.Opp[i]
			if d.Opp[j] != i {
				t.Errorf("%s: Opp not an involution at %d", d.Name, i)
			}
			for k := 0; k < 3; k++ {
				if d.C[j][k] != -d.C[i][k] {
					t.Errorf("%s: C[Opp[%d]] != -C[%d]", d.Name, i, i)
				}
			}
		}
	}
}

// TestLatticeIsotropy verifies the standard moment conditions of the
// quadrature: Σw c = 0, Σw c_a c_b = c_s² δ_ab, Σw c_a c_b c_c = 0 and
// Σw c_a c_b c_c c_d = c_s⁴ (δab δcd + δac δbd + δad δbc). These are the
// conditions under which the LBGK model recovers Navier–Stokes.
func TestLatticeIsotropy(t *testing.T) {
	for _, d := range allDescriptors {
		// First moment.
		for a := 0; a < 3; a++ {
			m := 0.0
			for i := 0; i < d.Q; i++ {
				m += d.W[i] * float64(d.C[i][a])
			}
			if math.Abs(m) > 1e-14 {
				t.Errorf("%s: first moment [%d] = %v", d.Name, a, m)
			}
		}
		// Second moment.
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				m := 0.0
				for i := 0; i < d.Q; i++ {
					m += d.W[i] * float64(d.C[i][a]) * float64(d.C[i][b])
				}
				want := 0.0
				if a == b && (d.D == 3 || a < 2) {
					want = CS2
				}
				if math.Abs(m-want) > 1e-14 {
					t.Errorf("%s: second moment [%d][%d] = %v, want %v", d.Name, a, b, m, want)
				}
			}
		}
		// Third moment vanishes by symmetry.
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				for c := 0; c < 3; c++ {
					m := 0.0
					for i := 0; i < d.Q; i++ {
						m += d.W[i] * float64(d.C[i][a]) * float64(d.C[i][b]) * float64(d.C[i][c])
					}
					if math.Abs(m) > 1e-14 {
						t.Errorf("%s: third moment [%d][%d][%d] = %v", d.Name, a, b, c, m)
					}
				}
			}
		}
	}
}

// TestFourthMomentD3Q19 checks the fourth-order isotropy condition that
// distinguishes Navier–Stokes-capable lattices.
func TestFourthMomentD3Q19(t *testing.T) {
	d := &D3Q19
	delta := func(a, b int) float64 {
		if a == b {
			return 1
		}
		return 0
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 3; c++ {
				for e := 0; e < 3; e++ {
					m := 0.0
					for i := 0; i < d.Q; i++ {
						m += d.W[i] * float64(d.C[i][a]) * float64(d.C[i][b]) *
							float64(d.C[i][c]) * float64(d.C[i][e])
					}
					want := CS2 * CS2 * (delta(a, b)*delta(c, e) + delta(a, c)*delta(b, e) + delta(a, e)*delta(b, c))
					if math.Abs(m-want) > 1e-14 {
						t.Errorf("fourth moment [%d%d%d%d] = %v, want %v", a, b, c, e, m, want)
					}
				}
			}
		}
	}
}

// TestEquilibriumMoments: the equilibrium distribution must reproduce the
// macroscopic density and momentum it was built from, for arbitrary
// (bounded) inputs. Property-based.
func TestEquilibriumMoments(t *testing.T) {
	for _, d := range allDescriptors {
		d := d
		f := func(rho0, ux0, uy0, uz0 float64) bool {
			// Map arbitrary floats into the physically meaningful range.
			rho := 0.5 + math.Abs(math.Mod(rho0, 1.0)) // (0.5, 1.5)
			ux := math.Mod(ux0, 0.1)
			uy := math.Mod(uy0, 0.1)
			uz := math.Mod(uz0, 0.1)
			if d.D == 2 {
				uz = 0
			}
			feq := make([]float64, d.Q)
			d.EquilibriumAll(feq, rho, ux, uy, uz)
			r, jx, jy, jz := d.Moments(feq)
			tol := 1e-12
			return math.Abs(r-rho) < tol &&
				math.Abs(jx-rho*ux) < tol*10 &&
				math.Abs(jy-rho*uy) < tol*10 &&
				math.Abs(jz-rho*uz) < tol*10
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestEquilibriumAllMatchesEquilibrium(t *testing.T) {
	d := &D3Q19
	feq := make([]float64, d.Q)
	d.EquilibriumAll(feq, 1.1, 0.03, -0.02, 0.01)
	for i := 0; i < d.Q; i++ {
		if got := d.Equilibrium(i, 1.1, 0.03, -0.02, 0.01); math.Abs(got-feq[i]) > 1e-15 {
			t.Errorf("direction %d: Equilibrium=%v EquilibriumAll=%v", i, got, feq[i])
		}
	}
}

func TestEquilibriumAtRest(t *testing.T) {
	// At zero velocity f_i^eq = w_i ρ exactly.
	for _, d := range allDescriptors {
		feq := make([]float64, d.Q)
		d.EquilibriumAll(feq, 2.0, 0, 0, 0)
		for i := 0; i < d.Q; i++ {
			if math.Abs(feq[i]-2*d.W[i]) > 1e-15 {
				t.Errorf("%s: rest equilibrium wrong at %d", d.Name, i)
			}
		}
	}
}

func TestViscosityTauRoundTrip(t *testing.T) {
	f := func(nu0 float64) bool {
		nu := math.Abs(math.Mod(nu0, 10))
		return math.Abs(Viscosity(Tau(nu))-nu) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := Viscosity(1.0); math.Abs(got-1.0/6.0) > 1e-15 {
		t.Errorf("Viscosity(1) = %v, want 1/6", got)
	}
}

func TestMomentsZero(t *testing.T) {
	d := &D3Q19
	f := make([]float64, d.Q)
	rho, jx, jy, jz := d.Moments(f)
	if rho != 0 || jx != 0 || jy != 0 || jz != 0 {
		t.Error("moments of zero populations must be zero")
	}
}

func BenchmarkEquilibriumAllD3Q19(b *testing.B) {
	d := &D3Q19
	feq := make([]float64, d.Q)
	for i := 0; i < b.N; i++ {
		d.EquilibriumAll(feq, 1.0, 0.05, 0.01, -0.02)
	}
}
