// Package lattice defines the DnQm velocity-set descriptors used by the
// lattice Boltzmann solver: the discrete velocity vectors, quadrature
// weights, opposite-direction tables and the equilibrium distribution of
// the LBGK model (Qian et al., 1992).
//
// The primary descriptor is D3Q19, matching Fig. 3 of the SunwayLB paper;
// D2Q9, D3Q15 and D3Q27 are provided for completeness and testing.
package lattice

import (
	"fmt"
	"math"
)

// Descriptor describes a DnQm lattice: the dimension, the discrete velocity
// set, the quadrature weights and the index of the opposite velocity for
// each direction (used by bounce-back boundaries).
type Descriptor struct {
	// Name is the conventional scheme name, e.g. "D3Q19".
	Name string
	// D is the spatial dimension (2 or 3).
	D int
	// Q is the number of discrete velocities.
	Q int
	// C holds the lattice velocity vectors; C[i] is the i-th velocity.
	// For 2-D descriptors the z component is zero.
	C [][3]int
	// W holds the quadrature weight of each velocity.
	W []float64
	// Opp[i] is the index j such that C[j] == -C[i].
	Opp []int
}

// CS2 is the squared lattice speed of sound, c_s² = 1/3, shared by all
// standard DnQm descriptors.
const CS2 = 1.0 / 3.0

// InvCS2 is 1/c_s² = 3.
const InvCS2 = 3.0

// buildOpp computes the opposite-direction table and verifies the weights
// sum to one. It panics on a malformed table; descriptors are package-level
// constants so this runs (and is exercised) at init time.
func buildOpp(name string, c [][3]int, w []float64) Descriptor {
	q := len(c)
	if len(w) != q {
		panic(fmt.Sprintf("lattice: %s has %d velocities but %d weights", name, q, len(w)))
	}
	sum := 0.0
	for _, wi := range w {
		sum += wi
	}
	if diff := sum - 1.0; diff > 1e-12 || diff < -1e-12 {
		panic(fmt.Sprintf("lattice: %s weights sum to %v, want 1", name, sum))
	}
	opp := make([]int, q)
	for i := range opp {
		opp[i] = -1
	}
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			if c[j][0] == -c[i][0] && c[j][1] == -c[i][1] && c[j][2] == -c[i][2] {
				opp[i] = j
				break
			}
		}
		if opp[i] < 0 {
			panic(fmt.Sprintf("lattice: %s direction %d has no opposite", name, i))
		}
	}
	d := 3
	if name[1] == '2' {
		d = 2
	}
	return Descriptor{Name: name, D: d, Q: q, C: c, W: w, Opp: opp}
}

// D3Q19 is the three-dimensional 19-velocity descriptor used throughout the
// paper: the rest velocity, the 6 face neighbours and the 12 edge
// neighbours of the unit cube.
var D3Q19 = buildOpp("D3Q19",
	[][3]int{
		{0, 0, 0},
		{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1},
		{1, 1, 0}, {-1, -1, 0}, {1, -1, 0}, {-1, 1, 0},
		{1, 0, 1}, {-1, 0, -1}, {1, 0, -1}, {-1, 0, 1},
		{0, 1, 1}, {0, -1, -1}, {0, 1, -1}, {0, -1, 1},
	},
	[]float64{
		1.0 / 3.0,
		1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0,
		1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
		1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
		1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
	})

// D2Q9 is the standard two-dimensional 9-velocity descriptor.
var D2Q9 = buildOpp("D2Q9",
	[][3]int{
		{0, 0, 0},
		{1, 0, 0}, {0, 1, 0}, {-1, 0, 0}, {0, -1, 0},
		{1, 1, 0}, {-1, 1, 0}, {-1, -1, 0}, {1, -1, 0},
	},
	[]float64{
		4.0 / 9.0,
		1.0 / 9.0, 1.0 / 9.0, 1.0 / 9.0, 1.0 / 9.0,
		1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
	})

// D3Q15 is the three-dimensional 15-velocity descriptor (rest, 6 faces,
// 8 cube corners).
var D3Q15 = buildOpp("D3Q15",
	[][3]int{
		{0, 0, 0},
		{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1},
		{1, 1, 1}, {-1, -1, -1}, {1, 1, -1}, {-1, -1, 1},
		{1, -1, 1}, {-1, 1, -1}, {-1, 1, 1}, {1, -1, -1},
	},
	[]float64{
		2.0 / 9.0,
		1.0 / 9.0, 1.0 / 9.0, 1.0 / 9.0, 1.0 / 9.0, 1.0 / 9.0, 1.0 / 9.0,
		1.0 / 72.0, 1.0 / 72.0, 1.0 / 72.0, 1.0 / 72.0,
		1.0 / 72.0, 1.0 / 72.0, 1.0 / 72.0, 1.0 / 72.0,
	})

// D3Q27 is the full three-dimensional 27-velocity descriptor.
var D3Q27 = buildD3Q27()

func buildD3Q27() Descriptor {
	var c [][3]int
	var w []float64
	for z := -1; z <= 1; z++ {
		for y := -1; y <= 1; y++ {
			for x := -1; x <= 1; x++ {
				c = append(c, [3]int{x, y, z})
				switch x*x + y*y + z*z {
				case 0:
					w = append(w, 8.0/27.0)
				case 1:
					w = append(w, 2.0/27.0)
				case 2:
					w = append(w, 1.0/54.0)
				case 3:
					w = append(w, 1.0/216.0)
				}
			}
		}
	}
	return buildOpp("D3Q27", c, w)
}

// Equilibrium computes the LBGK equilibrium distribution f_i^eq for density
// rho and velocity (ux, uy, uz) in direction i:
//
//	f_i^eq = w_i ρ (1 + 3 c·u + 4.5 (c·u)² − 1.5 u²)
//
// The expression is evaluated in the repo's canonical fused-multiply-add
// order — w_i·ρ · (fma(4.5·cu, cu, 1 − 1.5|u|²) + 3·cu) — which every
// kernel (generic, unrolled, AA, vectorized) reproduces exactly, so any
// two backends agree bit-for-bit. math.FMA is correctly rounded on every
// platform, so the canon is portable-deterministic.
func (d *Descriptor) Equilibrium(i int, rho, ux, uy, uz float64) float64 {
	c := d.C[i]
	cu := float64(c[0])*ux + float64(c[1])*uy + float64(c[2])*uz
	onem := 1 - 1.5*math.FMA(uz, uz, math.FMA(uy, uy, ux*ux))
	h := 4.5 * cu
	return d.W[i] * rho * (math.FMA(h, cu, onem) + 3*cu)
}

// EquilibriumAll fills feq (length Q) with the equilibrium distribution for
// the given macroscopic state, in the canonical FMA evaluation order (see
// Equilibrium). It allocates nothing.
func (d *Descriptor) EquilibriumAll(feq []float64, rho, ux, uy, uz float64) {
	onem := 1 - 1.5*math.FMA(uz, uz, math.FMA(uy, uy, ux*ux))
	for i := 0; i < d.Q; i++ {
		c := d.C[i]
		cu := float64(c[0])*ux + float64(c[1])*uy + float64(c[2])*uz
		h := 4.5 * cu
		feq[i] = d.W[i] * rho * (math.FMA(h, cu, onem) + 3*cu)
	}
}

// Moments computes the macroscopic density and momentum from a set of
// populations f (length Q). The velocity is momentum divided by density.
func (d *Descriptor) Moments(f []float64) (rho, jx, jy, jz float64) {
	for i := 0; i < d.Q; i++ {
		fi := f[i]
		rho += fi
		c := d.C[i]
		jx += fi * float64(c[0])
		jy += fi * float64(c[1])
		jz += fi * float64(c[2])
	}
	return
}

// Viscosity returns the lattice kinematic viscosity corresponding to the
// relaxation time τ: ν = (2τ−1)/6.
func Viscosity(tau float64) float64 { return (2*tau - 1) / 6 }

// Tau returns the relaxation time corresponding to the lattice kinematic
// viscosity ν: τ = 3ν + 1/2.
func Tau(nu float64) float64 { return 3*nu + 0.5 }
