// Package trace is the rank-level tracing and telemetry subsystem: a
// low-overhead, concurrency-safe event recorder in the spirit of the PERF
// performance monitor the paper uses on Sunway TaihuLight (§V), extended
// from scalar aggregates to full timelines. Where internal/perf answers
// "how fast was the run", trace answers "where did the time go, per rank,
// per phase" — the question behind every figure of the paper's
// data-movement story (DMA vs register communication vs MPI halo time,
// MPE/CPE overlap, communication/computation overlap; §IV-C/D, Figs. 8–10).
//
// The model is the Chrome trace-event model specialised to a
// bulk-synchronous solver:
//
//   - A Tracer owns one append/ring buffer per rank. Each rank goroutine
//     writes only to its own buffer under a per-rank mutex, so recording
//     never contends across ranks ("lock-free-ish": the lock is
//     uncontended in the common case and protects only a slice append).
//   - Spans (Begin/End) mark phases: step, halo exchange, collectives,
//     checkpoint write/verify, CPE/MPE kernels, DMA, GPU copies.
//   - Instants mark point events: injected crashes, dropped messages,
//     dead ranks, restarts, rollbacks, shrinks.
//   - Counters sample monotonic or gauge values: DMA bytes, register
//     communication bytes, step rates.
//   - Flows connect a send on one rank to the matching receive on
//     another — the cross-rank arrows in the timeline view.
//
// Every event carries a clock domain: Wall for host-measured phases and
// Sim for modelled phases (the simulated Sunway core-group clock, the GPU
// data-path model, straggler-inflated step times). The two domains are
// never mixed on one timeline; exporters keep them on separate tracks.
//
// A nil *Tracer (and the nil *RankTracer it hands out) is fully inert:
// every method is a nil-checked no-op, so instrumented hot paths pay one
// predictable branch when tracing is disabled.
//
// Exporters live in chrome.go (Chrome trace-event JSON, loadable in
// Perfetto or chrome://tracing) and analysis in analyze.go (per-phase time
// shares, critical-path estimate, load-imbalance ratio, straggler flags).
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock identifies the time domain of an event.
type Clock uint8

const (
	// Wall timestamps are host wall-clock seconds since the tracer
	// started.
	Wall Clock = iota
	// Sim timestamps are simulated seconds on a modelled device clock
	// (Sunway core group, GPU data path, straggler model).
	Sim
)

// String implements fmt.Stringer.
func (c Clock) String() string {
	if c == Sim {
		return "sim"
	}
	return "wall"
}

// Kind discriminates event records.
type Kind uint8

const (
	// KindBegin opens a span on a (rank, clock, track) timeline.
	KindBegin Kind = iota
	// KindEnd closes the innermost open span on the timeline.
	KindEnd
	// KindInstant is a zero-duration point event.
	KindInstant
	// KindCounter samples a named value.
	KindCounter
	// KindFlowOut starts a cross-rank flow (e.g. a message send).
	KindFlowOut
	// KindFlowIn terminates a cross-rank flow (e.g. the matching receive).
	KindFlowIn
)

// Standard track names. Instrumented packages agree on these so exports
// and analysis group phases consistently; any other string is a valid
// track too.
const (
	TrackStep  = "step"       // whole-step spans (the BSP superstep)
	TrackMPI   = "mpi"        // halo exchange, collectives, p2p
	TrackMPE   = "mpe"        // management-core compute (mixed columns)
	TrackCPE   = "cpe"        // CPE-cluster kernel time
	TrackDMA   = "dma"        // DMA / register-communication counters
	TrackGPU   = "gpu-kernel" // GPU device kernel
	TrackGPUIO = "gpu-comm"   // H2D/D2H copies, NCCL/p2p, host MPI
	TrackCkpt  = "checkpoint" // gather, write, verify phases
	TrackFault = "fault"      // injected faults (instants)
	TrackCtl   = "control"    // supervisor restarts, rollbacks, shrinks
	TrackServe = "serve"      // service-level job lifecycle + queue gauges
	TrackPatch = "patch"      // per-patch cost samples, migrations, imbalance
)

// RankSupervisor is the pseudo-rank used for events that belong to the
// run's control plane rather than any solver rank.
const RankSupervisor = -1

// RankService is the pseudo-rank used by the lbmserve daemon for
// service-level telemetry (job submit/start/done instants, queue-depth
// gauges) — one layer above any single run's supervisor.
const RankService = -2

// Event is one trace record. TS is seconds in the event's clock domain.
type Event struct {
	Rank  int
	Track string
	Clock Clock
	Kind  Kind
	Name  string
	TS    float64
	// Value carries the sample of a KindCounter event and is free
	// auxiliary data (e.g. the peer rank of a send) otherwise.
	Value float64
	// Flow links a KindFlowOut to its KindFlowIn.
	Flow uint64
}

// Options configures a Tracer.
type Options struct {
	// MaxEventsPerRank bounds each rank's buffer; once full, the oldest
	// events are overwritten ring-style (and counted as dropped).
	// 0 means unbounded append.
	MaxEventsPerRank int
}

// Tracer records events for any number of ranks. All methods are safe for
// concurrent use; all methods on a nil Tracer are no-ops (the zero-cost
// tracing-off contract — lbmvet's spanpair rule enforces the guards).
//
//lbm:nilsafe
type Tracer struct {
	opt   Options
	start time.Time
	flow  atomic.Uint64

	mu    sync.RWMutex
	ranks map[int]*RankTracer
}

// New creates an enabled tracer. The wall clock starts now.
func New(opt Options) *Tracer {
	return &Tracer{opt: opt, start: time.Now(), ranks: make(map[int]*RankTracer)}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns wall-clock seconds since the tracer started (0 when nil).
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Seconds()
}

// NextFlow allocates a fresh flow id (0 when nil; valid ids start at 1).
func (t *Tracer) NextFlow() uint64 {
	if t == nil {
		return 0
	}
	return t.flow.Add(1)
}

// ForRank returns the rank-bound recording handle, creating it on first
// use. ForRank on a nil tracer returns a nil handle, whose methods are
// all no-ops, so call sites never need a nil check of their own.
func (t *Tracer) ForRank(rank int) *RankTracer {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	r := t.ranks[rank]
	t.mu.RUnlock()
	if r != nil {
		return r
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r = t.ranks[rank]; r == nil {
		r = &RankTracer{t: t, rank: rank}
		t.ranks[rank] = r
	}
	return r
}

// Events returns a snapshot of all recorded events in per-rank
// chronological recording order, ranks ascending. Ring-overwritten
// buffers are unrolled so the snapshot is oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	ranks := make([]*RankTracer, 0, len(t.ranks))
	for _, r := range t.ranks {
		ranks = append(ranks, r)
	}
	t.mu.RUnlock()
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].rank < ranks[j].rank })
	var out []Event
	for _, r := range ranks {
		out = append(out, r.snapshot()...)
	}
	return out
}

// Dropped returns the number of events lost to ring overwrites.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, r := range t.ranks {
		r.mu.Lock()
		n += r.dropped
		r.mu.Unlock()
	}
	return n
}

// RankTracer is one rank's recording handle. It is safe for concurrent
// use (a rank's helper goroutines — async receives, the CPE pool — may
// record alongside the rank goroutine), but spans on one (clock, track)
// timeline must be emitted from a single goroutine so they nest; helpers
// should stick to instants, counters and flows. A nil *RankTracer is a
// valid no-op recorder; every method nil-guards its receiver.
//
//lbm:nilsafe
type RankTracer struct {
	t    *Tracer
	rank int

	mu      sync.Mutex
	buf     []Event
	next    int // ring cursor once len(buf) == cap
	wrapped bool
	dropped int64
	simMax  float64 // highest Sim timestamp recorded on this rank
}

// SimWatermark returns the highest Sim-clock timestamp recorded on this
// rank so far (0 when nil or nothing recorded). Restarted solvers seed
// their Sim cursor from it, so a supervised run's attempts lay out
// consecutively on the modelled timeline instead of overlapping.
func (r *RankTracer) SimWatermark() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.simMax
}

// Rank returns the rank this handle records for (0 when nil).
func (r *RankTracer) Rank() int {
	if r == nil {
		return 0
	}
	return r.rank
}

// Now returns wall-clock seconds since the tracer started (0 when nil).
func (r *RankTracer) Now() float64 {
	if r == nil {
		return 0
	}
	return r.t.Now()
}

// NextFlow allocates a fresh flow id (0 when nil).
func (r *RankTracer) NextFlow() uint64 {
	if r == nil {
		return 0
	}
	return r.t.NextFlow()
}

func (r *RankTracer) record(e Event) {
	if r == nil {
		return
	}
	e.Rank = r.rank
	r.mu.Lock()
	if e.Clock == Sim && e.TS > r.simMax {
		r.simMax = e.TS
	}
	if max := r.t.opt.MaxEventsPerRank; max > 0 && len(r.buf) >= max {
		r.buf[r.next] = e
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
		}
		r.wrapped = true
		r.dropped++
	} else {
		r.buf = append(r.buf, e)
	}
	r.mu.Unlock()
}

// snapshot returns the buffered events oldest-first (nil when nil).
func (r *RankTracer) snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]Event(nil), r.buf...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Begin opens a span at ts on the (clock, track) timeline.
func (r *RankTracer) Begin(clock Clock, track, name string, ts float64) {
	r.record(Event{Track: track, Clock: clock, Kind: KindBegin, Name: name, TS: ts})
}

// End closes the innermost open span on the (clock, track) timeline.
func (r *RankTracer) End(clock Clock, track string, ts float64) {
	r.record(Event{Track: track, Clock: clock, Kind: KindEnd, TS: ts})
}

// Span records a complete [begin, end] span in one call.
func (r *RankTracer) Span(clock Clock, track, name string, begin, end float64) {
	if r == nil {
		return
	}
	r.Begin(clock, track, name, begin)
	r.End(clock, track, end)
}

// Scope opens a wall-clock span now and returns the closure that ends it;
// idiomatic as `defer tr.Scope(track, name)()`. On a nil handle both the
// call and the returned closure are no-ops.
func (r *RankTracer) Scope(track, name string) func() {
	if r == nil {
		return func() {}
	}
	r.Begin(Wall, track, name, r.Now())
	return func() { r.End(Wall, track, r.Now()) }
}

// Instant records a point event.
func (r *RankTracer) Instant(clock Clock, track, name string, ts float64) {
	r.record(Event{Track: track, Clock: clock, Kind: KindInstant, Name: name, TS: ts})
}

// InstantV records a point event with an auxiliary value.
func (r *RankTracer) InstantV(clock Clock, track, name string, ts, v float64) {
	r.record(Event{Track: track, Clock: clock, Kind: KindInstant, Name: name, TS: ts, Value: v})
}

// Counter samples a named value.
func (r *RankTracer) Counter(clock Clock, track, name string, ts, value float64) {
	r.record(Event{Track: track, Clock: clock, Kind: KindCounter, Name: name, TS: ts, Value: value})
}

// FlowOut starts cross-rank flow id at ts (e.g. on message send). The
// auxiliary value conventionally holds the peer rank.
func (r *RankTracer) FlowOut(clock Clock, track, name string, ts float64, id uint64, v float64) {
	r.record(Event{Track: track, Clock: clock, Kind: KindFlowOut, Name: name, TS: ts, Flow: id, Value: v})
}

// FlowIn terminates cross-rank flow id at ts (e.g. on message receipt).
func (r *RankTracer) FlowIn(clock Clock, track, name string, ts float64, id uint64, v float64) {
	r.record(Event{Track: track, Clock: clock, Kind: KindFlowIn, Name: name, TS: ts, Flow: id, Value: v})
}
