// Timeline analysis: the aggregated per-rank report of the tentpole —
// per-phase time shares, a bulk-synchronous critical-path estimate, the
// load-imbalance ratio, and straggler flags. This is the textual
// counterpart of the Perfetto view: the numbers a scaling PR quotes and a
// chaos experiment asserts on.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// StragglerThreshold is the default mean-step-time ratio above which a
// rank is flagged as a straggler (matching the spirit of
// internal/network's straggler model, where one slow rank paces the
// whole bulk-synchronous machine).
const StragglerThreshold = 1.5

// PhaseShare aggregates span time for one (clock, track, name) phase
// across all ranks.
type PhaseShare struct {
	Clock Clock
	Track string
	Name  string
	// Total is summed span seconds across ranks; Count the span count.
	Total float64
	Count int
	// Share is Total over the summed span time of the phase's clock
	// domain (phases on one clock add up to 1 modulo nesting).
	Share float64
}

// RankStat summarises one rank on one clock domain.
type RankStat struct {
	Rank  int
	Clock Clock
	// Busy is the summed top-level span time (nested spans count once).
	Busy float64
	// Steps and StepTime summarise spans on TrackStep.
	Steps    int
	StepTime float64
	// MeanStep is StepTime/Steps.
	MeanStep float64
}

// StragglerFlag marks one rank whose mean step time exceeds the across-
// rank mean by Ratio (≥ the analysis threshold).
type StragglerFlag struct {
	Rank  int
	Clock Clock
	// MeanStep is the rank's mean step-span seconds; Ratio its multiple
	// of the across-rank mean.
	MeanStep float64
	Ratio    float64
}

// Report is the aggregated timeline analysis.
type Report struct {
	// Ranks holds per-rank per-clock summaries (supervisor excluded),
	// sorted by clock then rank.
	Ranks []RankStat
	// Phases holds per-phase time shares sorted by descending total.
	Phases []PhaseShare
	// Steps is the maximum step-span count observed on any rank.
	Steps int
	// CriticalPath estimates the run's lower-bound makespan per clock
	// domain: the sum over step indices of the slowest rank's step span
	// (bulk-synchronous steps cannot overlap across ranks).
	CriticalPath map[Clock]float64
	// Imbalance is max/mean of per-rank step time per clock domain
	// (1 = perfectly balanced); 0 when a domain has no step spans.
	Imbalance map[Clock]float64
	// Stragglers lists ranks flagged against StragglerThreshold.
	Stragglers []StragglerFlag
	// Instants counts point events by name (crashes, drops, restarts…).
	Instants map[string]int
	// Flows counts started and terminated cross-rank flows.
	FlowsOut, FlowsIn int
	// Counters holds the last sample of each (rank, track, name) counter
	// summed over ranks — for monotonic counters (bytes), the total.
	Counters map[string]float64
}

// Analyze aggregates a timeline (as recorded by a Tracer or re-read by
// ReadChrome) into a Report. Events on each (rank, clock, track) timeline
// are sorted by timestamp first, so recording order does not matter.
func Analyze(events []Event) *Report {
	r := &Report{
		CriticalPath: make(map[Clock]float64),
		Imbalance:    make(map[Clock]float64),
		Instants:     make(map[string]int),
		Counters:     make(map[string]float64),
	}

	type tlKey struct {
		rank  int
		clock Clock
		track string
	}
	timelines := make(map[tlKey][]Event)
	var keys []tlKey
	for _, e := range events {
		switch e.Kind {
		case KindInstant:
			r.Instants[e.Name]++
			continue
		case KindFlowOut:
			r.FlowsOut++
			continue
		case KindFlowIn:
			r.FlowsIn++
			continue
		}
		k := tlKey{e.Rank, e.Clock, e.Track}
		if _, seen := timelines[k]; !seen {
			keys = append(keys, k)
		}
		timelines[k] = append(timelines[k], e)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.clock != b.clock {
			return a.clock < b.clock
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.track < b.track
	})

	type phaseKey struct {
		clock Clock
		track string
		name  string
	}
	phases := make(map[phaseKey]*PhaseShare)
	clockSpanTotal := make(map[Clock]float64)
	type rcKey struct {
		rank  int
		clock Clock
	}
	rankStats := make(map[rcKey]*RankStat)
	// stepDur[clock][rank] = ordered step-span durations.
	stepDur := make(map[Clock]map[int][]float64)
	lastCounter := make(map[tlKey]map[string]float64)

	for _, k := range keys {
		evs := timelines[k]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
		type openSpan struct {
			name string
			ts   float64
		}
		var stack []openSpan
		for _, e := range evs {
			switch e.Kind {
			case KindBegin:
				stack = append(stack, openSpan{e.Name, e.TS})
			case KindEnd:
				if len(stack) == 0 {
					continue
				}
				sp := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				dur := e.TS - sp.ts
				if dur < 0 {
					dur = 0
				}
				pk := phaseKey{k.clock, k.track, sp.name}
				ps := phases[pk]
				if ps == nil {
					ps = &PhaseShare{Clock: k.clock, Track: k.track, Name: sp.name}
					phases[pk] = ps
				}
				ps.Total += dur
				ps.Count++
				clockSpanTotal[k.clock] += dur
				if len(stack) == 0 && k.rank != RankSupervisor {
					rk := rcKey{k.rank, k.clock}
					rs := rankStats[rk]
					if rs == nil {
						rs = &RankStat{Rank: k.rank, Clock: k.clock}
						rankStats[rk] = rs
					}
					rs.Busy += dur
					if k.track == TrackStep {
						rs.Steps++
						rs.StepTime += dur
						if stepDur[k.clock] == nil {
							stepDur[k.clock] = make(map[int][]float64)
						}
						stepDur[k.clock][k.rank] = append(stepDur[k.clock][k.rank], dur)
					}
				}
			case KindCounter:
				if lastCounter[k] == nil {
					lastCounter[k] = make(map[string]float64)
				}
				lastCounter[k][e.Name] = e.Value
			}
		}
	}

	// Counters: sum each timeline's final sample over ranks. Iterate in
	// the sorted timeline-key order (and sorted counter names within each
	// timeline) so the float sum is bit-identical across runs — map order
	// is randomised and float addition does not commute in rounding.
	for _, k := range keys {
		per := lastCounter[k]
		if per == nil {
			continue
		}
		names := make([]string, 0, len(per))
		for name := range per {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			r.Counters[name] += per[name]
		}
	}

	// Phase shares.
	for _, ps := range phases {
		if tot := clockSpanTotal[ps.Clock]; tot > 0 {
			ps.Share = ps.Total / tot
		}
		r.Phases = append(r.Phases, *ps)
	}
	sort.Slice(r.Phases, func(i, j int) bool {
		if r.Phases[i].Total != r.Phases[j].Total {
			return r.Phases[i].Total > r.Phases[j].Total
		}
		a, b := r.Phases[i], r.Phases[j]
		return a.Track+"/"+a.Name < b.Track+"/"+b.Name
	})

	// Rank stats.
	for _, rs := range rankStats {
		if rs.Steps > 0 {
			rs.MeanStep = rs.StepTime / float64(rs.Steps)
		}
		if rs.Steps > r.Steps {
			r.Steps = rs.Steps
		}
		r.Ranks = append(r.Ranks, *rs)
	}
	sort.Slice(r.Ranks, func(i, j int) bool {
		if r.Ranks[i].Clock != r.Ranks[j].Clock {
			return r.Ranks[i].Clock < r.Ranks[j].Clock
		}
		return r.Ranks[i].Rank < r.Ranks[j].Rank
	})

	// Critical path, imbalance and stragglers per clock domain. Rank maps
	// are iterated in sorted-rank order wherever floats accumulate so the
	// report is bit-deterministic across runs (see detfloat in lbmvet).
	for clock, perRank := range stepDur {
		ranks := make([]int, 0, len(perRank))
		for rank := range perRank {
			ranks = append(ranks, rank)
		}
		sort.Ints(ranks)

		// Critical path: Σ_i max_r dur[r][i].
		maxSteps := 0
		for _, d := range perRank {
			if len(d) > maxSteps {
				maxSteps = len(d)
			}
		}
		cp := 0.0
		for i := 0; i < maxSteps; i++ {
			worst := 0.0
			for _, d := range perRank {
				if i < len(d) && d[i] > worst {
					worst = d[i]
				}
			}
			cp += worst
		}
		r.CriticalPath[clock] = cp

		// Imbalance: max/mean of per-rank total step time.
		var maxT, sumT float64
		n := 0
		for _, rank := range ranks {
			d := perRank[rank]
			t := 0.0
			for _, v := range d {
				t += v
			}
			sumT += t
			if t > maxT {
				maxT = t
			}
			n++
		}
		if n > 0 && sumT > 0 {
			r.Imbalance[clock] = maxT / (sumT / float64(n))
		}

		// Stragglers: mean step time vs across-rank mean.
		var meanSum float64
		means := make(map[int]float64, len(perRank))
		for _, rank := range ranks {
			d := perRank[rank]
			t := 0.0
			for _, v := range d {
				t += v
			}
			m := t / float64(len(d))
			means[rank] = m
			meanSum += m
		}
		if len(means) > 1 {
			grand := meanSum / float64(len(means))
			if grand > 0 {
				for _, rank := range ranks {
					m := means[rank]
					if ratio := m / grand; ratio >= StragglerThreshold {
						r.Stragglers = append(r.Stragglers, StragglerFlag{
							Rank: rank, Clock: clock, MeanStep: m, Ratio: ratio})
					}
				}
			}
		}
	}
	sort.Slice(r.Stragglers, func(i, j int) bool {
		if r.Stragglers[i].Clock != r.Stragglers[j].Clock {
			return r.Stragglers[i].Clock < r.Stragglers[j].Clock
		}
		return r.Stragglers[i].Rank < r.Stragglers[j].Rank
	})
	return r
}

// String renders the report as the summary table the CLI prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace analysis: %d step(s) on the busiest rank\n", r.Steps)

	if len(r.Ranks) > 0 {
		fmt.Fprintf(&b, "%-6s %-5s %10s %7s %12s %12s\n",
			"rank", "clock", "busy", "steps", "step total", "mean step")
		for _, rs := range r.Ranks {
			fmt.Fprintf(&b, "%-6d %-5s %9.4gs %7d %11.4gs %11.4gs\n",
				rs.Rank, rs.Clock, rs.Busy, rs.Steps, rs.StepTime, rs.MeanStep)
		}
	}
	for _, clock := range []Clock{Wall, Sim} {
		cp, imb := r.CriticalPath[clock], r.Imbalance[clock]
		if cp == 0 && imb == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s clock: critical path %.4gs, load imbalance %.2f×\n", clock, cp, imb)
	}

	if len(r.Phases) > 0 {
		fmt.Fprintf(&b, "phase shares (top %d):\n", minInt(8, len(r.Phases)))
		fmt.Fprintf(&b, "  %-5s %-24s %10s %8s %7s\n", "clock", "track/phase", "total", "count", "share")
		for i, p := range r.Phases {
			if i >= 8 {
				break
			}
			fmt.Fprintf(&b, "  %-5s %-24s %9.4gs %8d %6.1f%%\n",
				p.Clock, p.Track+"/"+p.Name, p.Total, p.Count, p.Share*100)
		}
	}

	if len(r.Stragglers) > 0 {
		for _, s := range r.Stragglers {
			fmt.Fprintf(&b, "STRAGGLER rank %d (%s clock): mean step %.4gs = %.2f× the fleet mean\n",
				s.Rank, s.Clock, s.MeanStep, s.Ratio)
		}
	} else if len(r.Ranks) > 0 {
		fmt.Fprintf(&b, "no stragglers flagged (threshold %.2f×)\n", StragglerThreshold)
	}

	if len(r.Instants) > 0 {
		names := make([]string, 0, len(r.Instants))
		for n := range r.Instants {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "events:")
		for _, n := range names {
			fmt.Fprintf(&b, " %s=%d", n, r.Instants[n])
		}
		fmt.Fprintln(&b)
	}
	if r.FlowsOut > 0 || r.FlowsIn > 0 {
		fmt.Fprintf(&b, "message flows: %d sent, %d received\n", r.FlowsOut, r.FlowsIn)
	}
	if len(r.Counters) > 0 {
		names := make([]string, 0, len(r.Counters))
		for n := range r.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "counters (final, summed over ranks):")
		for _, n := range names {
			fmt.Fprintf(&b, " %s=%.4g", n, r.Counters[n])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// HasStraggler reports whether any rank was flagged (math.IsNaN-safe
// convenience for tests and the CLI).
func (r *Report) HasStraggler() bool { return len(r.Stragglers) > 0 }

// StepImbalance returns the worst imbalance ratio across clock domains
// (1 when balanced, 0 when no step spans were recorded).
func (r *Report) StepImbalance() float64 {
	worst := 0.0
	for _, v := range r.Imbalance {
		if !math.IsNaN(v) && v > worst {
			worst = v
		}
	}
	return worst
}
