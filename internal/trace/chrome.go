// Chrome trace-event JSON export and import. The emitted file loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing: each
// (rank, clock) pair becomes one process row, each track one named
// thread, spans become B/E duration events, instants i, counters C and
// cross-rank messages s/f flow arrows. ReadChrome inverts the mapping so
// a written trace round-trips through Analyze — which is what the CI
// smoke tier checks.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the trace-event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`  // instant scope
	BP   string         `json:"bp,omitempty"` // flow bind point
	ID   string         `json:"id,omitempty"` // flow id
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format ({"traceEvents": [...]}),
// the variant Perfetto and chrome://tracing both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// processID maps a (rank, clock) pair to a stable Chrome pid. Ranks are
// ≥ RankSupervisor (-1), so the mapping is collision-free and keeps
// processes sorted by rank, wall before sim.
func processID(rank int, clock Clock) int {
	return (rank+2)*2 + int(clock)
}

// processName renders the (rank, clock) display name; parseProcessName
// inverts it.
func processName(rank int, clock Clock) string {
	if rank == RankSupervisor {
		return fmt.Sprintf("supervisor (%s clock)", clock)
	}
	return fmt.Sprintf("rank %d (%s clock)", rank, clock)
}

func parseProcessName(s string) (rank int, clock Clock, ok bool) {
	var cs string
	if _, err := fmt.Sscanf(s, "rank %d (%s clock)", &rank, &cs); err != nil {
		if _, err := fmt.Sscanf(s, "supervisor (%s clock)", &cs); err != nil {
			return 0, Wall, false
		}
		rank = RankSupervisor
	}
	switch cs {
	case "wall":
		return rank, Wall, true
	case "sim":
		return rank, Sim, true
	}
	return 0, Wall, false
}

const secToMicros = 1e6

// WriteChrome serialises events as Chrome trace-event JSON. Events are
// grouped into per-(rank, clock) processes and per-track threads, sorted
// by timestamp within each track (stable, so same-timestamp events keep
// recording order and span nesting survives). End events with no open
// span on their track — possible after a ring buffer overwrote the
// matching Begin — are dropped so the output always nests.
func WriteChrome(w io.Writer, events []Event) error {
	type tlKey struct {
		rank  int
		clock Clock
		track string
	}
	// Partition into timelines, preserving per-rank recording order.
	timelines := make(map[tlKey][]Event)
	var keys []tlKey
	for _, e := range events {
		k := tlKey{e.Rank, e.Clock, e.Track}
		if _, seen := timelines[k]; !seen {
			keys = append(keys, k)
		}
		timelines[k] = append(timelines[k], e)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		if a.clock != b.clock {
			return a.clock < b.clock
		}
		return a.track < b.track
	})

	out := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"generator": "sunwaylb internal/trace"},
	}
	// Metadata: name processes and threads, order processes by rank.
	seenPID := make(map[int]bool)
	tids := make(map[tlKey]int)
	nextTID := make(map[int]int)
	for _, k := range keys {
		pid := processID(k.rank, k.clock)
		if !seenPID[pid] {
			seenPID[pid] = true
			out.TraceEvents = append(out.TraceEvents,
				chromeEvent{Name: "process_name", Ph: "M", PID: pid,
					Args: map[string]any{"name": processName(k.rank, k.clock)}},
				chromeEvent{Name: "process_sort_index", Ph: "M", PID: pid,
					Args: map[string]any{"sort_index": pid}},
			)
		}
		tid := nextTID[pid]
		nextTID[pid] = tid + 1
		tids[k] = tid
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": k.track}})
	}

	for _, k := range keys {
		evs := timelines[k]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
		pid, tid := processID(k.rank, k.clock), tids[k]
		depth := 0
		var open []string // names of open spans, for orphan-End recovery
		for _, e := range evs {
			ce := chromeEvent{TS: e.TS * secToMicros, PID: pid, TID: tid}
			switch e.Kind {
			case KindBegin:
				ce.Ph, ce.Name = "B", e.Name
				depth++
				open = append(open, e.Name)
			case KindEnd:
				if depth == 0 {
					continue // orphaned by a ring overwrite
				}
				depth--
				ce.Ph, ce.Name = "E", open[len(open)-1]
				open = open[:len(open)-1]
			case KindInstant:
				ce.Ph, ce.Name, ce.S = "i", e.Name, "t"
				if e.Value != 0 {
					ce.Args = map[string]any{"value": e.Value}
				}
			case KindCounter:
				ce.Ph, ce.Name = "C", e.Name
				ce.Args = map[string]any{"value": e.Value}
			case KindFlowOut:
				ce.Ph, ce.Name, ce.Cat = "s", e.Name, "flow"
				ce.ID = strconv.FormatUint(e.Flow, 10)
				if e.Value != 0 {
					ce.Args = map[string]any{"peer": e.Value}
				}
			case KindFlowIn:
				ce.Ph, ce.Name, ce.Cat, ce.BP = "f", e.Name, "flow", "e"
				ce.ID = strconv.FormatUint(e.Flow, 10)
				if e.Value != 0 {
					ce.Args = map[string]any{"peer": e.Value}
				}
			default:
				continue
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
		// Close any spans left open (e.g. a crash mid-step) at their
		// track's last timestamp so the file always validates.
		if depth > 0 && len(evs) > 0 {
			last := evs[len(evs)-1].TS * secToMicros
			for ; depth > 0; depth-- {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: open[depth-1], Ph: "E", TS: last, PID: pid, TID: tid})
			}
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadChrome parses a Chrome trace-event JSON file written by WriteChrome
// back into events (per-timeline, timestamp-ordered). Unknown phases and
// processes without a parseable name are skipped, so hand-edited files
// degrade gracefully.
func ReadChrome(r io.Reader) ([]Event, error) {
	var ct chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ct); err != nil {
		return nil, fmt.Errorf("trace: parsing chrome trace: %w", err)
	}
	type pidInfo struct {
		rank  int
		clock Clock
		ok    bool
	}
	pids := make(map[int]pidInfo)
	tracks := make(map[[2]int]string)
	for _, ce := range ct.TraceEvents {
		if ce.Ph != "M" {
			continue
		}
		switch ce.Name {
		case "process_name":
			if name, ok := ce.Args["name"].(string); ok {
				rank, clock, ok := parseProcessName(name)
				pids[ce.PID] = pidInfo{rank, clock, ok}
			}
		case "thread_name":
			if name, ok := ce.Args["name"].(string); ok {
				tracks[[2]int{ce.PID, ce.TID}] = name
			}
		}
	}
	var events []Event
	for _, ce := range ct.TraceEvents {
		pi, known := pids[ce.PID]
		if ce.Ph == "M" || !known || !pi.ok {
			continue
		}
		track, ok := tracks[[2]int{ce.PID, ce.TID}]
		if !ok {
			track = fmt.Sprintf("tid%d", ce.TID)
		}
		e := Event{Rank: pi.rank, Clock: pi.clock, Track: track,
			Name: ce.Name, TS: ce.TS / secToMicros}
		switch ce.Ph {
		case "B":
			e.Kind = KindBegin
		case "E":
			e.Kind = KindEnd
		case "i", "I":
			e.Kind = KindInstant
			if v, ok := ce.Args["value"].(float64); ok {
				e.Value = v
			}
		case "C":
			e.Kind = KindCounter
			if v, ok := ce.Args["value"].(float64); ok {
				e.Value = v
			}
		case "s", "f":
			if ce.Ph == "s" {
				e.Kind = KindFlowOut
			} else {
				e.Kind = KindFlowIn
			}
			if id, err := strconv.ParseUint(ce.ID, 10, 64); err == nil {
				e.Flow = id
			}
			if v, ok := ce.Args["peer"].(float64); ok {
				e.Value = v
			}
		default:
			continue
		}
		events = append(events, e)
	}
	return events, nil
}

// Validate checks the invariants the exporter guarantees: on every
// (rank, clock, track) timeline, in slice order, timestamps are
// monotonically non-decreasing, Begin/End pairs are strictly well nested
// (never an End without an open Begin, never a span left open), and every
// flow id seen on a FlowIn was started by a FlowOut.
func Validate(events []Event) error {
	type tlKey struct {
		rank  int
		clock Clock
		track string
	}
	depth := make(map[tlKey]int)
	lastTS := make(map[tlKey]float64)
	seenTL := make(map[tlKey]bool)
	flows := make(map[uint64]bool)
	var flowIns []Event
	for i, e := range events {
		k := tlKey{e.Rank, e.Clock, e.Track}
		if seenTL[k] && e.TS < lastTS[k] {
			return fmt.Errorf("trace: event %d (%s on rank %d %s/%s): timestamp %g before %g",
				i, e.Name, e.Rank, e.Clock, e.Track, e.TS, lastTS[k])
		}
		seenTL[k], lastTS[k] = true, e.TS
		switch e.Kind {
		case KindBegin:
			depth[k]++
		case KindEnd:
			depth[k]--
			if depth[k] < 0 {
				return fmt.Errorf("trace: event %d: End without Begin on rank %d %s/%s",
					i, e.Rank, e.Clock, e.Track)
			}
		case KindFlowOut:
			flows[e.Flow] = true
		case KindFlowIn:
			flowIns = append(flowIns, e)
		}
	}
	for k, d := range depth {
		if d != 0 {
			return fmt.Errorf("trace: %d span(s) left open on rank %d %s/%s",
				d, k.rank, k.clock, k.track)
		}
	}
	for _, e := range flowIns {
		if !flows[e.Flow] {
			return fmt.Errorf("trace: flow %d terminates on rank %d without a start", e.Flow, e.Rank)
		}
	}
	return nil
}
