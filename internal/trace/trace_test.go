package trace

import (
	"fmt"
	"sync"
	"testing"
)

// TestNilTracerIsInert exercises every method on nil handles: none may
// panic, allocate state or return garbage — disabled tracing is free.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Now() != 0 || tr.NextFlow() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer returned non-zero values")
	}
	if ev := tr.Events(); ev != nil {
		t.Fatalf("nil tracer returned events: %v", ev)
	}
	r := tr.ForRank(3)
	if r != nil {
		t.Fatal("ForRank on nil tracer must return nil handle")
	}
	// All RankTracer methods must be nil-safe no-ops.
	if r.Rank() != 0 || r.Now() != 0 || r.NextFlow() != 0 || r.SimWatermark() != 0 {
		t.Fatal("nil rank tracer returned non-zero values")
	}
	r.Begin(Wall, TrackStep, "step", 0)
	r.End(Wall, TrackStep, 1)
	r.Span(Sim, TrackCPE, "kernel", 0, 1)
	r.Instant(Wall, TrackFault, "crash", 0)
	r.InstantV(Wall, TrackCtl, "restart", 0, 1)
	r.Counter(Sim, TrackDMA, "bytes", 0, 42)
	r.FlowOut(Wall, TrackMPI, "send", 0, 1, 2)
	r.FlowIn(Wall, TrackMPI, "recv", 1, 1, 0)
	end := r.Scope(TrackStep, "step")
	end() // must be a no-op closure, not nil
}

// TestEventsOrderAndContent checks the snapshot is per-rank recording
// order with ranks ascending, and events carry what was recorded.
func TestEventsOrderAndContent(t *testing.T) {
	tr := New(Options{})
	r1 := tr.ForRank(1)
	r0 := tr.ForRank(0)
	r1.Span(Wall, TrackStep, "step", 0.0, 1.0)
	r0.Instant(Wall, TrackFault, "crash", 0.5)
	r0.Counter(Sim, TrackDMA, "dma_bytes", 1.0, 380)

	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	// Rank 0 first (ranks ascending), then rank 1.
	if ev[0].Rank != 0 || ev[0].Kind != KindInstant || ev[0].Name != "crash" {
		t.Fatalf("ev[0] = %+v", ev[0])
	}
	if ev[1].Rank != 0 || ev[1].Kind != KindCounter || ev[1].Value != 380 {
		t.Fatalf("ev[1] = %+v", ev[1])
	}
	if ev[2].Rank != 1 || ev[2].Kind != KindBegin || ev[2].Name != "step" {
		t.Fatalf("ev[2] = %+v", ev[2])
	}
	if ev[3].Rank != 1 || ev[3].Kind != KindEnd || ev[3].TS != 1.0 {
		t.Fatalf("ev[3] = %+v", ev[3])
	}
}

// TestForRankIdempotent checks the per-rank handle is a singleton.
func TestForRankIdempotent(t *testing.T) {
	tr := New(Options{})
	if tr.ForRank(7) != tr.ForRank(7) {
		t.Fatal("ForRank returned two different handles for one rank")
	}
	if tr.ForRank(RankSupervisor).Rank() != RankSupervisor {
		t.Fatal("supervisor pseudo-rank not preserved")
	}
}

// TestRingOverflow checks the bounded buffer overwrites oldest-first,
// counts drops, and unrolls the ring so snapshots stay chronological.
func TestRingOverflow(t *testing.T) {
	tr := New(Options{MaxEventsPerRank: 4})
	r := tr.ForRank(0)
	for i := 0; i < 10; i++ {
		r.Instant(Wall, TrackStep, fmt.Sprintf("i%d", i), float64(i))
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	for i, e := range ev {
		want := fmt.Sprintf("i%d", 6+i) // oldest surviving is i6
		if e.Name != want {
			t.Fatalf("ev[%d].Name = %s, want %s", i, e.Name, want)
		}
		if i > 0 && e.TS < ev[i-1].TS {
			t.Fatalf("ring snapshot not chronological: %v", ev)
		}
	}
}

// TestSimWatermark checks restarts can resume the Sim cursor: the
// watermark tracks the highest Sim timestamp and ignores Wall events.
func TestSimWatermark(t *testing.T) {
	tr := New(Options{})
	r := tr.ForRank(2)
	if r.SimWatermark() != 0 {
		t.Fatal("fresh watermark not 0")
	}
	r.Span(Sim, TrackStep, "step", 0, 2.5)
	r.Span(Wall, TrackStep, "step", 0, 99) // wall must not move it
	if got := r.SimWatermark(); got != 2.5 {
		t.Fatalf("SimWatermark = %g, want 2.5", got)
	}
	r.Counter(Sim, TrackDMA, "bytes", 3.25, 1)
	if got := r.SimWatermark(); got != 3.25 {
		t.Fatalf("SimWatermark = %g, want 3.25", got)
	}
}

// TestConcurrentRanks hammers one tracer from many rank goroutines (plus
// a helper goroutine per rank, as async receives do) while a reader takes
// snapshots — run under -race this is the data-race proof for the
// per-rank buffer design.
func TestConcurrentRanks(t *testing.T) {
	tr := New(Options{})
	const ranks, steps = 8, 200
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(2)
		go func(rank int) {
			defer wg.Done()
			r := tr.ForRank(rank)
			for s := 0; s < steps; s++ {
				end := r.Scope(TrackStep, "step")
				r.Counter(Wall, TrackDMA, "bytes", r.Now(), float64(s))
				end()
			}
		}(rank)
		go func(rank int) { // helper goroutine: flows only
			defer wg.Done()
			r := tr.ForRank(rank)
			for s := 0; s < steps; s++ {
				r.FlowIn(Wall, TrackMPI, "recv", r.Now(), uint64(rank*steps+s+1), 0)
			}
		}(rank)
	}
	done := make(chan struct{})
	go func() { // concurrent reader
		for {
			select {
			case <-done:
				return
			default:
				tr.Events()
				tr.Dropped()
			}
		}
	}()
	wg.Wait()
	close(done)

	ev := tr.Events()
	want := ranks * steps * 4 // begin+end+counter+flowin per step
	if len(ev) != want {
		t.Fatalf("got %d events, want %d", len(ev), want)
	}
}

// TestSnapshotIsCopy checks Events returns an independent copy.
func TestSnapshotIsCopy(t *testing.T) {
	tr := New(Options{})
	tr.ForRank(0).Instant(Wall, TrackStep, "a", 1)
	ev := tr.Events()
	ev[0].Name = "mutated"
	if tr.Events()[0].Name != "a" {
		t.Fatal("Events snapshot aliases the internal buffer")
	}
}
