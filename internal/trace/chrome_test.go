package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// buildSampleTracer records a small but representative timeline: two
// ranks with nested wall spans, sim-clock kernel spans, counters, fault
// instants and one cross-rank flow, plus a supervisor control event.
func buildSampleTracer() *Tracer {
	tr := New(Options{})
	for rank := 0; rank < 2; rank++ {
		r := tr.ForRank(rank)
		base := float64(rank) * 0.001
		for s := 0; s < 3; s++ {
			t0 := base + float64(s)*0.01
			r.Begin(Wall, TrackStep, "step", t0)
			r.Begin(Wall, TrackStep, "compute", t0+0.001)
			r.End(Wall, TrackStep, t0+0.008)
			r.End(Wall, TrackStep, t0+0.009)
			r.Span(Sim, TrackCPE, "cpe-kernel", float64(s)*0.5, float64(s)*0.5+0.4)
			r.Counter(Sim, TrackDMA, "dma_bytes", float64(s)*0.5+0.4, float64((s+1)*380))
		}
	}
	id := tr.NextFlow()
	tr.ForRank(0).FlowOut(Wall, TrackMPI, "send", 0.002, id, 1)
	tr.ForRank(1).FlowIn(Wall, TrackMPI, "recv", 0.003, id, 0)
	tr.ForRank(1).Instant(Wall, TrackFault, "fault-crash", 0.02)
	sup := tr.ForRank(RankSupervisor)
	sup.InstantV(Wall, TrackCtl, "restart", 0.025, 2)
	return tr
}

// TestWriteChromeParses checks the export is a syntactically valid
// Chrome trace-event JSON object with the expected envelope and
// per-process/thread metadata.
func TestWriteChromeParses(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, buildSampleTracer().Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayUnit)
	}
	var meta, begins, ends, instants, counters, flowS, flowF int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			meta++
		case "B":
			begins++
		case "E":
			ends++
		case "i":
			instants++
			if e["s"] != "t" {
				t.Fatalf("instant without thread scope: %v", e)
			}
		case "C":
			counters++
		case "s":
			flowS++
		case "f":
			flowF++
			if e["bp"] != "e" {
				t.Fatalf("flow-in without bp=e bind point: %v", e)
			}
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("spans unbalanced in export: %d B vs %d E", begins, ends)
	}
	if instants != 2 || counters != 6 || flowS != 1 || flowF != 1 {
		t.Fatalf("event mix wrong: i=%d C=%d s=%d f=%d", instants, counters, flowS, flowF)
	}
	if meta == 0 {
		t.Fatal("no process/thread metadata emitted")
	}
	if !strings.Contains(buf.String(), `"supervisor (wall clock)"`) {
		t.Fatal("supervisor pseudo-rank missing from process names")
	}
}

// TestChromeRoundTrip checks WriteChrome→ReadChrome preserves the
// timeline (kinds, names, ranks, clocks, timestamps within µs rounding)
// and that the re-read stream passes Validate — the same round trip the
// CI trace tier and postproc -tracestat perform.
func TestChromeRoundTrip(t *testing.T) {
	events := buildSampleTracer().Events()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(back); err != nil {
		t.Fatalf("round-tripped trace fails validation: %v", err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip changed event count: %d → %d", len(events), len(back))
	}
	// Aggregate comparison (order differs: export sorts per timeline).
	count := func(evs []Event) map[string]int {
		m := make(map[string]int)
		for _, e := range evs {
			m[e.Clock.String()+"/"+e.Track]++
		}
		return m
	}
	want, got := count(events), count(back)
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("timeline %s: %d events became %d", k, n, got[k])
		}
	}
	// Analysis must agree on the headline numbers after the round trip.
	a, b := Analyze(events), Analyze(back)
	if a.Steps != b.Steps || a.FlowsOut != b.FlowsOut || a.FlowsIn != b.FlowsIn {
		t.Fatalf("analysis diverged: %d/%d/%d vs %d/%d/%d",
			a.Steps, a.FlowsOut, a.FlowsIn, b.Steps, b.FlowsOut, b.FlowsIn)
	}
	if a.Instants["fault-crash"] != 1 || b.Instants["fault-crash"] != 1 {
		t.Fatal("fault instant lost in round trip")
	}
}

// TestWriteChromeClosesOpenSpans checks a span left open by a mid-step
// crash is auto-closed so the file still validates.
func TestWriteChromeClosesOpenSpans(t *testing.T) {
	tr := New(Options{})
	r := tr.ForRank(0)
	r.Begin(Wall, TrackStep, "step", 0)
	r.Begin(Wall, TrackStep, "compute", 0.001) // crash here: neither closed
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(back); err != nil {
		t.Fatalf("auto-closed export fails validation: %v", err)
	}
	var ends int
	for _, e := range back {
		if e.Kind == KindEnd {
			ends++
		}
	}
	if ends != 2 {
		t.Fatalf("got %d auto-closing Ends, want 2", ends)
	}
}

// TestWriteChromeDropsOrphanEnds checks an End whose Begin was lost to a
// ring overwrite is dropped rather than corrupting nesting.
func TestWriteChromeDropsOrphanEnds(t *testing.T) {
	events := []Event{
		{Rank: 0, Track: TrackStep, Clock: Wall, Kind: KindEnd, TS: 0.5},
		{Rank: 0, Track: TrackStep, Clock: Wall, Kind: KindBegin, Name: "step", TS: 1},
		{Rank: 0, Track: TrackStep, Clock: Wall, Kind: KindEnd, TS: 2},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(back); err != nil {
		t.Fatalf("orphan End leaked into export: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d events, want 2 (orphan End dropped)", len(back))
	}
}

// TestChromeRoundTripProperty is the property test: random well-nested
// multi-rank timelines always export to a file that re-reads and
// validates, for any mix of spans, instants, counters and flows.
func TestChromeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tracks := []string{TrackStep, TrackMPI, TrackCkpt}
	for trial := 0; trial < 50; trial++ {
		tr := New(Options{})
		nextFlow := func() uint64 { return tr.NextFlow() }
		for rank := 0; rank < 1+rng.Intn(4); rank++ {
			r := tr.ForRank(rank)
			for _, track := range tracks {
				ts := rng.Float64() * 0.01
				depth := 0
				for op := 0; op < 5+rng.Intn(20); op++ {
					ts += rng.Float64() * 0.01
					switch rng.Intn(5) {
					case 0:
						r.Begin(Wall, track, "phase", ts)
						depth++
					case 1:
						if depth > 0 {
							r.End(Wall, track, ts)
							depth--
						}
					case 2:
						r.Instant(Wall, track, "mark", ts)
					case 3:
						r.Counter(Wall, track, "gauge", ts, rng.Float64())
					case 4:
						id := nextFlow()
						r.FlowOut(Wall, track, "send", ts, id, 0)
						tr.ForRank(rank+1).FlowIn(Wall, track, "recv", ts+0.001, id, float64(rank))
					}
				}
				for ; depth > 0; depth-- { // leave some trials unbalanced
					if rng.Intn(2) == 0 {
						ts += rng.Float64() * 0.01
						r.End(Wall, track, ts)
					}
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteChrome(&buf, tr.Events()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		back, err := ReadChrome(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Validate(back); err != nil {
			t.Fatalf("trial %d: round-tripped trace invalid: %v", trial, err)
		}
	}
}
