package trace

import (
	"math"
	"strings"
	"testing"
)

// stepTimeline records n uniform steps of the given duration on a rank.
func stepTimeline(tr *Tracer, rank, n int, dur float64) {
	r := tr.ForRank(rank)
	ts := 0.0
	for s := 0; s < n; s++ {
		r.Span(Wall, TrackStep, "step", ts, ts+dur)
		ts += dur
	}
}

// TestAnalyzeBalanced checks the no-straggler baseline: equal ranks give
// imbalance ≈ 1, critical path = steps × dur, and no flags.
func TestAnalyzeBalanced(t *testing.T) {
	tr := New(Options{})
	for rank := 0; rank < 4; rank++ {
		stepTimeline(tr, rank, 10, 0.01)
	}
	r := Analyze(tr.Events())
	if r.Steps != 10 {
		t.Fatalf("Steps = %d, want 10", r.Steps)
	}
	if got := r.Imbalance[Wall]; math.Abs(got-1) > 1e-9 {
		t.Fatalf("Imbalance = %g, want 1", got)
	}
	if got := r.CriticalPath[Wall]; math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("CriticalPath = %g, want 0.1", got)
	}
	if r.HasStraggler() {
		t.Fatalf("balanced run flagged stragglers: %+v", r.Stragglers)
	}
	if len(r.Ranks) != 4 || math.Abs(r.Ranks[0].MeanStep-0.01) > 1e-9 {
		t.Fatalf("rank stats wrong: %+v", r.Ranks)
	}
}

// TestAnalyzeFlagsStraggler is the acceptance property: one rank 3×
// slower than its three peers must be flagged with the right ratio
// (3 / mean(1,1,1,3)·… = 2.0 with four ranks).
func TestAnalyzeFlagsStraggler(t *testing.T) {
	tr := New(Options{})
	for rank := 0; rank < 3; rank++ {
		stepTimeline(tr, rank, 10, 0.01)
	}
	stepTimeline(tr, 3, 10, 0.03) // injected straggler
	r := Analyze(tr.Events())
	if !r.HasStraggler() {
		t.Fatal("3× straggler not flagged")
	}
	if len(r.Stragglers) != 1 {
		t.Fatalf("flagged %d stragglers, want 1: %+v", len(r.Stragglers), r.Stragglers)
	}
	s := r.Stragglers[0]
	if s.Rank != 3 || s.Clock != Wall {
		t.Fatalf("flag = %+v, want rank 3 wall", s)
	}
	// mean step of the fleet = (0.01·3 + 0.03)/4 = 0.015 → ratio 2.0.
	if math.Abs(s.Ratio-2.0) > 1e-9 {
		t.Fatalf("Ratio = %g, want 2.0", s.Ratio)
	}
	if math.Abs(r.StepImbalance()-2.0) > 1e-9 {
		t.Fatalf("StepImbalance = %g, want 2.0", r.StepImbalance())
	}
	if !strings.Contains(r.String(), "STRAGGLER rank 3") {
		t.Fatalf("report text misses the flag:\n%s", r.String())
	}
}

// TestAnalyzeBelowThresholdNotFlagged pins the threshold semantics: a
// rank just under StragglerThreshold× the fleet mean stays unflagged.
func TestAnalyzeBelowThresholdNotFlagged(t *testing.T) {
	tr := New(Options{})
	// ratios: slow rank mean 0.013, fleet mean (3·0.01+0.013)/4=0.01075
	// → 1.21×, well under 1.5.
	for rank := 0; rank < 3; rank++ {
		stepTimeline(tr, rank, 10, 0.01)
	}
	stepTimeline(tr, 3, 10, 0.013)
	if r := Analyze(tr.Events()); r.HasStraggler() {
		t.Fatalf("mild skew flagged as straggler: %+v", r.Stragglers)
	}
}

// TestAnalyzePhasesNestedOnce checks phase accounting: nested spans are
// charged to their own phase, but rank Busy counts top-level time once.
func TestAnalyzePhasesNestedOnce(t *testing.T) {
	tr := New(Options{})
	r := tr.ForRank(0)
	r.Begin(Wall, TrackStep, "step", 0)
	r.Span(Wall, TrackStep, "compute", 0.001, 0.009)
	r.End(Wall, TrackStep, 0.01)
	rep := Analyze(tr.Events())
	var stepTotal, computeTotal float64
	for _, p := range rep.Phases {
		switch p.Name {
		case "step":
			stepTotal = p.Total
		case "compute":
			computeTotal = p.Total
		}
	}
	if math.Abs(stepTotal-0.01) > 1e-9 || math.Abs(computeTotal-0.008) > 1e-9 {
		t.Fatalf("phase totals step=%g compute=%g", stepTotal, computeTotal)
	}
	if len(rep.Ranks) != 1 || math.Abs(rep.Ranks[0].Busy-0.01) > 1e-9 {
		t.Fatalf("Busy double-counted nested span: %+v", rep.Ranks)
	}
}

// TestAnalyzeInstantsFlowsCounters checks the non-span aggregations.
func TestAnalyzeInstantsFlowsCounters(t *testing.T) {
	tr := New(Options{})
	r0, r1 := tr.ForRank(0), tr.ForRank(1)
	r0.Instant(Wall, TrackFault, "fault-crash", 0.1)
	r0.Instant(Wall, TrackFault, "fault-crash", 0.2)
	tr.ForRank(RankSupervisor).InstantV(Wall, TrackCtl, "restart", 0.3, 1)
	id := tr.NextFlow()
	r0.FlowOut(Wall, TrackMPI, "send", 0.1, id, 1)
	r1.FlowIn(Wall, TrackMPI, "recv", 0.2, id, 0)
	// Monotonic counter: the last sample per rank is summed over ranks.
	r0.Counter(Sim, TrackDMA, "dma_bytes", 1, 100)
	r0.Counter(Sim, TrackDMA, "dma_bytes", 2, 300)
	r1.Counter(Sim, TrackDMA, "dma_bytes", 2, 50)

	rep := Analyze(tr.Events())
	if rep.Instants["fault-crash"] != 2 || rep.Instants["restart"] != 1 {
		t.Fatalf("instants = %v", rep.Instants)
	}
	if rep.FlowsOut != 1 || rep.FlowsIn != 1 {
		t.Fatalf("flows = %d/%d", rep.FlowsOut, rep.FlowsIn)
	}
	if got := rep.Counters["dma_bytes"]; got != 350 {
		t.Fatalf("dma_bytes = %g, want 350 (last per rank, summed)", got)
	}
}

// TestAnalyzeClockDomainsSeparate checks wall and sim step spans yield
// independent critical paths and imbalance figures.
func TestAnalyzeClockDomainsSeparate(t *testing.T) {
	tr := New(Options{})
	for rank := 0; rank < 2; rank++ {
		r := tr.ForRank(rank)
		r.Span(Wall, TrackStep, "step", 0, 0.01)
		r.Span(Sim, TrackStep, "step", 0, float64(1+rank)) // sim skewed
	}
	rep := Analyze(tr.Events())
	if math.Abs(rep.Imbalance[Wall]-1) > 1e-9 {
		t.Fatalf("wall imbalance = %g, want 1", rep.Imbalance[Wall])
	}
	if math.Abs(rep.Imbalance[Sim]-2.0/1.5) > 1e-9 {
		t.Fatalf("sim imbalance = %g, want %g", rep.Imbalance[Sim], 2.0/1.5)
	}
	if math.Abs(rep.CriticalPath[Sim]-2) > 1e-9 {
		t.Fatalf("sim critical path = %g, want 2", rep.CriticalPath[Sim])
	}
}

// TestAnalyzeEmpty checks the zero-input path.
func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(nil)
	if rep.Steps != 0 || rep.HasStraggler() || rep.StepImbalance() != 0 {
		t.Fatalf("empty analysis not zero: %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty report renders nothing")
	}
}
