package decomp

import "testing"

// TestSplitFairness asserts the fairness contract documented on Split,
// which every Decompose* variant and the patch tiler in internal/patch
// rely on: contiguous in-order pieces, no two extents differing by more
// than one cell, and the remainder going to the leading pieces.
func TestSplitFairness(t *testing.T) {
	for n := 1; n <= 97; n++ {
		for parts := 1; parts <= n; parts++ {
			base := n / parts
			rem := n % parts
			end := 0
			minSize, maxSize := n+1, -1
			for i := 0; i < parts; i++ {
				start, size := Split(n, parts, i)
				if start != end {
					t.Fatalf("Split(%d,%d,%d): start=%d, want contiguous %d", n, parts, i, start, end)
				}
				if size != base && size != base+1 {
					t.Fatalf("Split(%d,%d,%d): size=%d, want %d or %d", n, parts, i, size, base, base+1)
				}
				// Remainder cells belong to the leading pieces.
				if wantBig := i < rem; (size == base+1) != wantBig {
					t.Fatalf("Split(%d,%d,%d): size=%d, remainder must go to the first %d pieces",
						n, parts, i, size, rem)
				}
				if size < minSize {
					minSize = size
				}
				if size > maxSize {
					maxSize = size
				}
				end = start + size
			}
			if end != n {
				t.Fatalf("Split(%d,%d,·): pieces end at %d, want %d", n, parts, end, n)
			}
			if maxSize-minSize > 1 {
				t.Fatalf("Split(%d,%d,·): extents differ by %d > 1 cell", n, parts, maxSize-minSize)
			}
		}
	}
}
