package decomp

import (
	"testing"
	"testing/quick"
)

func TestWeightedUniformMatchesEqual(t *testing.T) {
	uniform := func(x, y int) float64 { return 1 }
	blocks, err := DecomposeWeighted2D(uniform, 40, 30, 10, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Cover(blocks, 40, 30, 10); err != nil {
		t.Fatal(err)
	}
	if imb := WeightImbalance(blocks, uniform); imb > 0.05 {
		t.Errorf("uniform weighted imbalance = %v, want ≈0", imb)
	}
}

// TestWeightedBeatsEqualOnSkewedLoad: with the workload concentrated in
// one corner (a dense city district in an otherwise open domain), the
// weighted cuts balance far better than equal-size blocks.
func TestWeightedBeatsEqualOnSkewedLoad(t *testing.T) {
	// Fluid-cell weight: the left third of the domain is 80% solid.
	weight := func(x, y int) float64 {
		if x < 30 {
			return 0.2
		}
		return 1.0
	}
	const gnx, gny, gnz = 90, 60, 5
	equal, err := Decompose2D(gnx, gny, gnz, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := DecomposeWeighted2D(weight, gnx, gny, gnz, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Cover(weighted, gnx, gny, gnz); err != nil {
		t.Fatal(err)
	}
	imbEq := WeightImbalance(equal, weight)
	imbW := WeightImbalance(weighted, weight)
	if imbW >= imbEq {
		t.Errorf("weighted imbalance %v should beat equal-split %v", imbW, imbEq)
	}
	if imbW > 0.15 {
		t.Errorf("weighted imbalance %v too high", imbW)
	}
	t.Logf("imbalance: equal split %.3f, weighted split %.3f", imbEq, imbW)
}

// TestWeightedCoverageProperty: any weight field yields an exact tiling.
func TestWeightedCoverageProperty(t *testing.T) {
	f := func(seed uint32, pxs, pys uint8) bool {
		px := int(pxs%3) + 1
		py := int(pys%3) + 1
		const gnx, gny, gnz = 24, 18, 3
		s := uint64(seed)
		weight := func(x, y int) float64 {
			s2 := s ^ uint64(x*31+y*17)
			s2 = s2*6364136223846793005 + 1442695040888963407
			return float64(s2 % 7)
		}
		blocks, err := DecomposeWeighted2D(weight, gnx, gny, gnz, px, py)
		if err != nil {
			return false
		}
		return Cover(blocks, gnx, gny, gnz) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestWeightedDegenerateWeights: all-zero and front-loaded weights still
// produce valid decompositions.
func TestWeightedDegenerateWeights(t *testing.T) {
	zero := func(x, y int) float64 { return 0 }
	blocks, err := DecomposeWeighted2D(zero, 12, 12, 2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Cover(blocks, 12, 12, 2); err != nil {
		t.Fatal(err)
	}
	// All the weight on the first column.
	front := func(x, y int) float64 {
		if x == 0 {
			return 1
		}
		return 0
	}
	blocks, err = DecomposeWeighted2D(front, 12, 12, 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Cover(blocks, 12, 12, 2); err != nil {
		t.Fatal(err)
	}
	// Negative weights rejected; nil weight falls back to equal split.
	if _, err := DecomposeWeighted2D(func(x, y int) float64 { return -1 }, 8, 8, 2, 2, 2); err == nil {
		t.Error("negative weight must be rejected")
	}
	blocks, err = DecomposeWeighted2D(nil, 8, 8, 2, 2, 2)
	if err != nil || len(blocks) != 4 {
		t.Errorf("nil weight fallback: %v %v", blocks, err)
	}
}
