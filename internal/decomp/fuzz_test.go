package decomp

import "testing"

// fuzzClamp folds an arbitrary fuzzed int into a range the quadratic
// Cover check can afford, while preserving zero and negative values so
// the error paths stay exercised.
func fuzzClamp(v, m int) int {
	if v > m || v < -m {
		return v % m
	}
	return v
}

// checkFair asserts the defining fairness property of split: every block
// extent along an axis of n cells over p parts is floor(n/p) or
// ceil(n/p).
func checkFair(t *testing.T, what string, size, n, p int) {
	t.Helper()
	lo := n / p
	hi := lo
	if n%p != 0 {
		hi++
	}
	if size < lo || size > hi {
		t.Fatalf("%s: block extent %d outside fair range [%d,%d] for %d/%d", what, size, lo, hi, n, p)
	}
}

// FuzzDecompose: for arbitrary domain and grid shapes, every factorizer
// either rejects the input (only when it is genuinely unsplittable) or
// returns blocks that exactly tile the domain with fair extents — the
// contract psolve's rank layout and the conformance block3d driver build
// on.
func FuzzDecompose(f *testing.F) {
	f.Add(16, 16, 16, 2, 2, 2)
	f.Add(8, 9, 10, 3, 2, 1)
	f.Add(1, 1, 1, 1, 1, 1)
	f.Add(7, 5, 3, 7, 5, 3)
	f.Add(100, 37, 2, 8, 1, 2)
	f.Add(0, 4, 4, 1, 1, 1)
	f.Add(4, 4, 4, 0, -3, 2)

	f.Fuzz(func(t *testing.T, gnx, gny, gnz, px, py, pz int) {
		gnx, gny, gnz = fuzzClamp(gnx, 4096), fuzzClamp(gny, 4096), fuzzClamp(gnz, 4096)
		px, py, pz = fuzzClamp(px, 8), fuzzClamp(py, 8), fuzzClamp(pz, 8)

		if blocks, err := Decompose1D(gnx, gny, gnz, px); err == nil {
			if gnx < px || px < 1 {
				t.Fatalf("1D accepted unsplittable nx=%d p=%d", gnx, px)
			}
			if len(blocks) != px {
				t.Fatalf("1D returned %d blocks, want %d", len(blocks), px)
			}
			// 1-D blocks keep full y,z; Cover only holds on valid domains.
			if gny >= 1 && gnz >= 1 {
				if cerr := Cover(blocks, gnx, gny, gnz); cerr != nil {
					t.Fatalf("1D cover: %v", cerr)
				}
			}
			for _, b := range blocks {
				checkFair(t, "1D x", b.NX, gnx, px)
			}
		} else if gnx >= px && px >= 1 {
			t.Fatalf("1D rejected splittable nx=%d p=%d: %v", gnx, px, err)
		}

		if blocks, err := Decompose2D(gnx, gny, gnz, px, py); err == nil {
			if gnx < px || gny < py || px < 1 || py < 1 || gnz < 1 {
				t.Fatalf("2D accepted unsplittable %dx%dx%d / %dx%d", gnx, gny, gnz, px, py)
			}
			if len(blocks) != px*py {
				t.Fatalf("2D returned %d blocks, want %d", len(blocks), px*py)
			}
			if cerr := Cover(blocks, gnx, gny, gnz); cerr != nil {
				t.Fatalf("2D cover: %v", cerr)
			}
			st := Analyze(blocks, 8)
			if st.MinCells < 1 {
				t.Fatal("2D produced an empty block")
			}
			for _, b := range blocks {
				checkFair(t, "2D x", b.NX, gnx, px)
				checkFair(t, "2D y", b.NY, gny, py)
				if b.NZ != gnz || b.Z0 != 0 {
					t.Fatalf("2D block does not keep the full z extent: %+v", b)
				}
			}
		} else if gnx >= px && gny >= py && px >= 1 && py >= 1 && gnz >= 1 {
			t.Fatalf("2D rejected splittable input: %v", err)
		}

		if blocks, err := Decompose3D(gnx, gny, gnz, px, py, pz); err == nil {
			if gnx < px || gny < py || gnz < pz || px < 1 || py < 1 || pz < 1 {
				t.Fatalf("3D accepted unsplittable %dx%dx%d / %dx%dx%d", gnx, gny, gnz, px, py, pz)
			}
			if len(blocks) != px*py*pz {
				t.Fatalf("3D returned %d blocks, want %d", len(blocks), px*py*pz)
			}
			if cerr := Cover(blocks, gnx, gny, gnz); cerr != nil {
				t.Fatalf("3D cover: %v", cerr)
			}
			for _, b := range blocks {
				checkFair(t, "3D x", b.NX, gnx, px)
				checkFair(t, "3D y", b.NY, gny, py)
				checkFair(t, "3D z", b.NZ, gnz, pz)
			}
		} else if gnx >= px && gny >= py && gnz >= pz && px >= 1 && py >= 1 && pz >= 1 {
			t.Fatalf("3D rejected splittable input: %v", err)
		}
	})
}
