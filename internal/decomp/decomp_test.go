package decomp

import (
	"testing"
	"testing/quick"
)

func TestDecompose2DCoverage(t *testing.T) {
	blocks, err := Decompose2D(100, 70, 30, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 12 {
		t.Fatalf("got %d blocks, want 12", len(blocks))
	}
	if err := Cover(blocks, 100, 70, 30); err != nil {
		t.Fatal(err)
	}
	// Full z per block.
	for i, b := range blocks {
		if b.Z0 != 0 || b.NZ != 30 {
			t.Errorf("block %d does not keep full z: %+v", i, b)
		}
	}
}

func TestDecompose2DRemainder(t *testing.T) {
	// 10 cells across 3 parts -> sizes 4,3,3.
	blocks, err := Decompose2D(10, 5, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{blocks[0].NX, blocks[1].NX, blocks[2].NX}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Errorf("remainder distribution = %v, want [4 3 3]", sizes)
	}
	if err := Cover(blocks, 10, 5, 2); err != nil {
		t.Fatal(err)
	}
}

// TestDecompositionCoverageProperty: any valid (gnx,gny,gnz,px,py) yields
// an exact tiling.
func TestDecompositionCoverageProperty(t *testing.T) {
	f := func(a, b, c, p, q uint8) bool {
		gnx := int(a%50) + 4
		gny := int(b%50) + 4
		gnz := int(c%20) + 1
		px := int(p%4) + 1
		py := int(q%4) + 1
		if gnx < px || gny < py {
			return true
		}
		blocks, err := Decompose2D(gnx, gny, gnz, px, py)
		if err != nil {
			return false
		}
		return Cover(blocks, gnx, gny, gnz) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecompose1D3D(t *testing.T) {
	b1, err := Decompose1D(64, 32, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Cover(b1, 64, 32, 16); err != nil {
		t.Fatal(err)
	}
	b3, err := Decompose3D(64, 32, 16, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Cover(b3, 64, 32, 16); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose2D(2, 2, 2, 4, 1); err == nil {
		t.Error("want error: more parts than cells")
	}
	if _, err := Decompose1D(4, 4, 4, 8); err == nil {
		t.Error("want error: 1D overdecomposition")
	}
	if _, err := Decompose3D(4, 4, 4, 8, 1, 1); err == nil {
		t.Error("want error: 3D overdecomposition")
	}
}

func TestSurfaceCells(t *testing.T) {
	b := Block{NX: 4, NY: 4, NZ: 4}
	// 4³ − 2³ = 56.
	if got := b.SurfaceCells(); got != 56 {
		t.Errorf("SurfaceCells = %d, want 56", got)
	}
	thin := Block{NX: 1, NY: 5, NZ: 5}
	if got := thin.SurfaceCells(); got != 25 {
		t.Errorf("thin SurfaceCells = %d, want 25 (all cells)", got)
	}
}

func TestAnalyze(t *testing.T) {
	blocks, _ := Decompose2D(100, 100, 50, 5, 2)
	s := Analyze(blocks, 8)
	if s.Blocks != 10 || s.MaxNeighbors != 8 {
		t.Errorf("stats = %+v", s)
	}
	if s.Imbalance != 0 {
		t.Errorf("even split imbalance = %v, want 0", s.Imbalance)
	}
	// Uneven split has positive imbalance.
	blocks2, _ := Decompose2D(101, 100, 50, 5, 2)
	if s2 := Analyze(blocks2, 8); s2.Imbalance <= 0 {
		t.Errorf("uneven imbalance = %v, want > 0", s2.Imbalance)
	}
}

// TestDecompositionTradeoffs encodes the paper's §IV-C-1 argument
// quantitatively: for a wide-flat domain, 2-D xy decomposition has less
// total surface than 3-D for the same process count only when z is kept
// whole and thin; and 1-D runs out of parallelism. What we check: 1-D
// cannot even split the x axis into 160000 parts, while 2-D can expose
// 160000-way parallelism, and 2-D's max fan-out (8) is below 3-D's (26).
func TestDecompositionTradeoffs(t *testing.T) {
	// The paper's weak-scaling global mesh at 160000 CGs: 400×400 grid
	// of 500×700×100 blocks.
	const gnx, gny, gnz = 500 * 400, 700 * 400, 100
	if _, err := Decompose1D(1000, gny, gnz, 160000); err == nil {
		t.Error("1-D should fail to expose 160000-way parallelism on a 1000-cell axis")
	}
	blocks, err := Decompose2D(gnx, gny, gnz, 400, 400)
	if err != nil {
		t.Fatalf("2-D decomposition must handle 160000 ranks: %v", err)
	}
	s2 := Analyze(blocks, 8)
	if s2.Blocks != 160000 {
		t.Fatalf("blocks = %d", s2.Blocks)
	}
	if s2.MaxNeighbors >= 26 {
		t.Error("2-D fan-out must stay below 3-D's 26")
	}
}

func TestBlockContains(t *testing.T) {
	b := Block{X0: 10, Y0: 20, Z0: 0, NX: 5, NY: 5, NZ: 5}
	if !b.Contains(10, 20, 0) || !b.Contains(14, 24, 4) {
		t.Error("corner cells must be inside")
	}
	if b.Contains(15, 20, 0) || b.Contains(10, 19, 0) {
		t.Error("outside cells must be outside")
	}
}

func TestCoverDetectsOverlap(t *testing.T) {
	blocks := []Block{
		{X0: 0, NX: 5, NY: 4, NZ: 4},
		{X0: 4, NX: 5, NY: 4, NZ: 4}, // overlaps x=4
	}
	// Total is 160 vs domain 9*4*4=144 -> count mismatch caught first.
	if err := Cover(blocks, 9, 4, 4); err == nil {
		t.Error("want overlap/count error")
	}
	// Craft an overlap with matching total: two 1-wide blocks on the
	// same spot plus a gap.
	blocks = []Block{
		{X0: 0, NX: 1, NY: 1, NZ: 1},
		{X0: 0, NX: 1, NY: 1, NZ: 1},
	}
	if err := Cover(blocks, 2, 1, 1); err == nil {
		t.Error("want overlap error")
	}
}
