package decomp

import "fmt"

// DecomposeWeighted2D splits the domain into a px×py grid of blocks whose
// cut positions balance a per-column workload weight (e.g. fluid-cell
// counts: solid building interiors cost nothing, so the urban case of
// §V-C is unbalanced under an equal-size split). The cuts are separable —
// x cuts balance the x-marginal weight and y cuts the y-marginal — which
// is how production partitioners keep the subdomains rectangular.
func DecomposeWeighted2D(weight func(x, y int) float64, gnx, gny, gnz, px, py int) ([]Block, error) {
	if gnx < px || gny < py || px < 1 || py < 1 || gnz < 1 {
		return nil, fmt.Errorf("decomp: cannot split %d×%d×%d into %d×%d", gnx, gny, gnz, px, py)
	}
	if weight == nil {
		return Decompose2D(gnx, gny, gnz, px, py)
	}
	// Marginals.
	wx := make([]float64, gnx)
	wy := make([]float64, gny)
	for y := 0; y < gny; y++ {
		for x := 0; x < gnx; x++ {
			w := weight(x, y)
			if w < 0 {
				return nil, fmt.Errorf("decomp: negative weight at (%d,%d)", x, y)
			}
			wx[x] += w
			wy[y] += w
		}
	}
	xCuts, err := balancedCuts(wx, px)
	if err != nil {
		return nil, err
	}
	yCuts, err := balancedCuts(wy, py)
	if err != nil {
		return nil, err
	}
	blocks := make([]Block, 0, px*py)
	for j := 0; j < py; j++ {
		for i := 0; i < px; i++ {
			blocks = append(blocks, Block{
				X0: xCuts[i], NX: xCuts[i+1] - xCuts[i],
				Y0: yCuts[j], NY: yCuts[j+1] - yCuts[j],
				Z0: 0, NZ: gnz,
			})
		}
	}
	return blocks, nil
}

// balancedCuts returns parts+1 cut positions over [0, len(w)) such that
// each interval holds roughly equal total weight and at least one cell.
func balancedCuts(w []float64, parts int) ([]int, error) {
	n := len(w)
	total := 0.0
	for _, v := range w {
		total += v
	}
	cuts := make([]int, parts+1)
	cuts[parts] = n
	if total <= 0 {
		// Degenerate: fall back to equal sizes.
		for i := 1; i < parts; i++ {
			cuts[i], _ = Split(n, parts, i)
		}
		return cuts, nil
	}
	target := total / float64(parts)
	acc := 0.0
	c := 1
	for x := 0; x < n && c < parts; x++ {
		acc += w[x]
		// Cut after x once this part has reached its share, keeping
		// enough cells for the remaining parts.
		remainingCells := n - (x + 1)
		remainingParts := parts - c
		if (acc >= float64(c)*target && x+1 > cuts[c-1]) || remainingCells == remainingParts {
			cuts[c] = x + 1
			c++
		}
	}
	// Any unset cuts (possible when all weight sits at the front):
	// distribute the remaining cells one per part.
	for ; c < parts; c++ {
		cuts[c] = cuts[c-1] + 1
	}
	// Validate monotonicity and minimum sizes.
	for i := 0; i < parts; i++ {
		if cuts[i+1] <= cuts[i] {
			return nil, fmt.Errorf("decomp: weighted cuts degenerate at part %d", i)
		}
	}
	return cuts, nil
}

// WeightImbalance returns max/mean block weight − 1 for a decomposition
// under the given column weight.
func WeightImbalance(blocks []Block, weight func(x, y int) float64) float64 {
	if len(blocks) == 0 {
		return 0
	}
	sums := make([]float64, len(blocks))
	total := 0.0
	for i, b := range blocks {
		for y := b.Y0; y < b.Y0+b.NY; y++ {
			for x := b.X0; x < b.X0+b.NX; x++ {
				sums[i] += weight(x, y)
			}
		}
		total += sums[i]
	}
	if total <= 0 {
		return 0
	}
	mean := total / float64(len(blocks))
	maxW := 0.0
	for _, s := range sums {
		if s > maxW {
			maxW = s
		}
	}
	return maxW/mean - 1
}
