// Package decomp implements the multi-level domain decomposition of the
// paper (§IV-C-1): the global lattice is divided into equal cuboid
// subdomains — 2-D in x,y with the full z axis per subdomain — plus the
// 1-D and 3-D alternatives the paper argues against, so the trade-off
// (exposed parallelism vs. communication surface) can be measured.
package decomp

import "fmt"

// Block is one subdomain: a cuboid [X0,X0+NX)×[Y0,Y0+NY)×[Z0,Z0+NZ) of the
// global lattice.
type Block struct {
	X0, Y0, Z0 int
	NX, NY, NZ int
}

// Cells returns the number of lattice cells in the block.
func (b Block) Cells() int { return b.NX * b.NY * b.NZ }

// Contains reports whether the global cell (x, y, z) is in the block.
func (b Block) Contains(x, y, z int) bool {
	return x >= b.X0 && x < b.X0+b.NX &&
		y >= b.Y0 && y < b.Y0+b.NY &&
		z >= b.Z0 && z < b.Z0+b.NZ
}

// SurfaceCells returns the number of cells on the six faces of the block —
// proportional to the halo-exchange volume.
func (b Block) SurfaceCells() int {
	if b.NX <= 0 || b.NY <= 0 || b.NZ <= 0 {
		return 0
	}
	total := b.Cells()
	ix, iy, iz := b.NX-2, b.NY-2, b.NZ-2
	if ix <= 0 || iy <= 0 || iz <= 0 {
		return total
	}
	return total - ix*iy*iz
}

// Split divides n cells into parts contiguous pieces and returns the
// start offset and size of piece i (0 ≤ i < parts).
//
// Fairness contract (asserted by TestSplitFairness and FuzzDecompose,
// relied on by every Decompose* variant and the patch tiler in
// internal/patch):
//
//   - pieces are contiguous and in order: piece i ends where piece i+1
//     starts, piece 0 starts at 0 and piece parts−1 ends at n;
//   - no two pieces differ in size by more than one cell — every piece
//     is ⌊n/parts⌋ or ⌈n/parts⌉ cells;
//   - the n mod parts remainder cells go to the leading pieces, so the
//     mapping from (n, parts, i) to extents is deterministic.
func Split(n, parts, i int) (start, size int) {
	base := n / parts
	rem := n % parts
	if i < rem {
		return i * (base + 1), base + 1
	}
	return rem*(base+1) + (i-rem)*base, base
}

// Decompose2D produces the paper's decomposition: a px×py grid of
// subdomains in x,y, each keeping the full z extent. Blocks are indexed
// rank-major (rank = y·px + x, matching mpi.Cart2D).
func Decompose2D(gnx, gny, gnz, px, py int) ([]Block, error) {
	if gnx < px || gny < py || px < 1 || py < 1 || gnz < 1 {
		return nil, fmt.Errorf("decomp: cannot split %d×%d×%d into %d×%d", gnx, gny, gnz, px, py)
	}
	blocks := make([]Block, 0, px*py)
	for y := 0; y < py; y++ {
		for x := 0; x < px; x++ {
			x0, nx := Split(gnx, px, x)
			y0, ny := Split(gny, py, y)
			blocks = append(blocks, Block{X0: x0, Y0: y0, Z0: 0, NX: nx, NY: ny, NZ: gnz})
		}
	}
	return blocks, nil
}

// Decompose1D slices the domain along x only (the scheme the paper rejects
// for exposing too little parallelism: "the x or y dimension usually has
// less than 1000 elements").
func Decompose1D(gnx, gny, gnz, p int) ([]Block, error) {
	if gnx < p || p < 1 {
		return nil, fmt.Errorf("decomp: cannot split nx=%d into %d slabs", gnx, p)
	}
	blocks := make([]Block, 0, p)
	for i := 0; i < p; i++ {
		x0, nx := Split(gnx, p, i)
		blocks = append(blocks, Block{X0: x0, NX: nx, NY: gny, NZ: gnz})
	}
	return blocks, nil
}

// Decompose3D splits along all three axes (the scheme the paper rejects
// for its communication complexity: up to 26 neighbours).
func Decompose3D(gnx, gny, gnz, px, py, pz int) ([]Block, error) {
	if gnx < px || gny < py || gnz < pz || px < 1 || py < 1 || pz < 1 {
		return nil, fmt.Errorf("decomp: cannot split %d×%d×%d into %d×%d×%d",
			gnx, gny, gnz, px, py, pz)
	}
	blocks := make([]Block, 0, px*py*pz)
	for z := 0; z < pz; z++ {
		for y := 0; y < py; y++ {
			for x := 0; x < px; x++ {
				x0, nx := Split(gnx, px, x)
				y0, ny := Split(gny, py, y)
				z0, nz := Split(gnz, pz, z)
				blocks = append(blocks, Block{X0: x0, Y0: y0, Z0: z0, NX: nx, NY: ny, NZ: nz})
			}
		}
	}
	return blocks, nil
}

// Stats summarises the quality of a decomposition.
type Stats struct {
	// Blocks is the number of subdomains.
	Blocks int
	// MinCells, MaxCells bound the per-block cell counts.
	MinCells, MaxCells int
	// Imbalance is MaxCells/MeanCells − 1 (0 = perfect).
	Imbalance float64
	// TotalSurface sums the per-block surface cells — the aggregate
	// halo-communication volume of one time step.
	TotalSurface int
	// MaxNeighbors is the worst-case neighbour count (communication
	// fan-out) implied by the block arrangement.
	MaxNeighbors int
}

// Analyze computes decomposition statistics. maxNeighbors is supplied by
// the caller (8 for 2-D xy, 2 for 1-D, 26 for 3-D) since the block list
// alone does not carry the topology.
func Analyze(blocks []Block, maxNeighbors int) Stats {
	if len(blocks) == 0 {
		return Stats{}
	}
	s := Stats{Blocks: len(blocks), MinCells: blocks[0].Cells(), MaxNeighbors: maxNeighbors}
	total := 0
	for _, b := range blocks {
		c := b.Cells()
		total += c
		if c < s.MinCells {
			s.MinCells = c
		}
		if c > s.MaxCells {
			s.MaxCells = c
		}
		s.TotalSurface += b.SurfaceCells()
	}
	mean := float64(total) / float64(len(blocks))
	s.Imbalance = float64(s.MaxCells)/mean - 1
	return s
}

// Cover verifies that the blocks exactly tile the global domain: every
// global cell belongs to exactly one block. It returns an error describing
// the first violation found.
func Cover(blocks []Block, gnx, gny, gnz int) error {
	total := 0
	for _, b := range blocks {
		if b.X0 < 0 || b.Y0 < 0 || b.Z0 < 0 ||
			b.X0+b.NX > gnx || b.Y0+b.NY > gny || b.Z0+b.NZ > gnz {
			return fmt.Errorf("decomp: block %+v outside %d×%d×%d", b, gnx, gny, gnz)
		}
		total += b.Cells()
	}
	if want := gnx * gny * gnz; total != want {
		return fmt.Errorf("decomp: blocks cover %d cells, domain has %d", total, want)
	}
	// With the total matching and all blocks in bounds, overlap would
	// require a matching hole; check pairwise disjointness to be exact.
	for i := range blocks {
		for j := i + 1; j < len(blocks); j++ {
			a, b := blocks[i], blocks[j]
			if a.X0 < b.X0+b.NX && b.X0 < a.X0+a.NX &&
				a.Y0 < b.Y0+b.NY && b.Y0 < a.Y0+a.NY &&
				a.Z0 < b.Z0+b.NZ && b.Z0 < a.Z0+a.NZ {
				return fmt.Errorf("decomp: blocks %d and %d overlap", i, j)
			}
		}
	}
	return nil
}
