package boundary

import (
	"math"
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

func TestNEEInletUniformFixedPoint(t *testing.T) {
	l := newLat(t, 10, 6, 6)
	l.InitEquilibrium(1.0, 0.05, 0, 0)
	var s Set
	s.Add(
		&NEEInlet{Face: core.FaceXMin, U: [3]float64{0.05, 0, 0}},
		&PressureOutlet{Face: core.FaceXMax, Rho: 1},
		&Periodic{Axis: 1}, &Periodic{Axis: 2},
	)
	for i := 0; i < 300; i++ {
		s.Apply(l)
		l.StepFused()
	}
	m := l.MacroAt(5, 3, 3)
	if math.Abs(m.Ux-0.05) > 1e-4 || math.Abs(m.Rho-1) > 1e-4 {
		t.Errorf("uniform flow drifted: %+v", m)
	}
}

// poiseuilleError drives a channel with a body force while imposing the
// analytic parabolic profile at the inlet with the given condition, and
// returns the max relative error of the developed profile.
func poiseuilleError(t *testing.T, mkInlet func(profile func(x, y, z int) [3]float64) Condition) float64 {
	t.Helper()
	const h = 12
	l, err := core.NewLattice(&lattice.D3Q19, 20, h, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	g := 5e-6
	l.Force = [3]float64{g, 0, 0}
	nu := lattice.Viscosity(l.Tau)
	analytic := func(y int) float64 {
		yy := float64(y) + 0.5
		return g / (2 * nu) * yy * (float64(h) - yy)
	}
	profile := func(x, y, z int) [3]float64 { return [3]float64{analytic(y), 0, 0} }
	var s Set
	s.Add(
		&Periodic{Axis: 2},
		mkInlet(profile),
		&Outflow{Face: core.FaceXMax},
		&NoSlip{Face: core.FaceYMin}, &NoSlip{Face: core.FaceYMax},
	)
	for y := 0; y < h; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				l.SetCell(x, y, z, 1, analytic(y), 0, 0)
			}
		}
	}
	for i := 0; i < 3000; i++ {
		s.Apply(l)
		l.StepFused()
	}
	worst := 0.0
	for y := 0; y < h; y++ {
		got := l.MacroAt(2, y, 2).Ux // near the inlet, where the BC order matters
		want := analytic(y)
		if rel := math.Abs(got-want) / want; rel > worst {
			worst = rel
		}
	}
	return worst
}

// TestNEEInletBeatsEquilibriumInlet: with the analytic Poiseuille profile
// imposed at the inlet, the non-equilibrium-extrapolation ghost preserves
// the solution visibly better than the plain equilibrium ghost, which
// zeroes the boundary stress.
func TestNEEInletBeatsEquilibriumInlet(t *testing.T) {
	if testing.Short() {
		t.Skip("long physics test")
	}
	eqErr := poiseuilleError(t, func(p func(x, y, z int) [3]float64) Condition {
		return &VelocityInlet{Face: core.FaceXMin, Profile: p}
	})
	neeErr := poiseuilleError(t, func(p func(x, y, z int) [3]float64) Condition {
		return &NEEInlet{Face: core.FaceXMin, Profile: p}
	})
	if neeErr >= eqErr {
		t.Errorf("NEE inlet error %.4f should beat equilibrium inlet error %.4f", neeErr, eqErr)
	}
	if neeErr > 0.05 {
		t.Errorf("NEE inlet error %.4f too large", neeErr)
	}
	t.Logf("near-inlet Poiseuille error: equilibrium ghost %.4f, NEE ghost %.4f", eqErr, neeErr)
}

func TestNEEInletName(t *testing.T) {
	c := &NEEInlet{Face: core.FaceXMin}
	if c.Name() == "" {
		t.Error("empty name")
	}
}
