// Package boundary implements the boundary conditions of SunwayLB's
// pre-processing module: velocity inlets, pressure outlets, zero-gradient
// outflow, free-slip and no-slip planes, and periodic axes.
//
// All conditions operate on the halo (ghost) layer of a core.Lattice: they
// are applied once per time step, before the fused collide–stream kernel,
// so the pull streaming picks the boundary populations up naturally. This
// matches the paper's halo-cell scheme (Fig. 9(1)) where boundary cells
// obtain their data from a single layer of externally-maintained halo
// cells.
package boundary

import (
	"fmt"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

// Condition is a boundary condition applied to the lattice halo before
// each time step.
type Condition interface {
	// Name identifies the condition for diagnostics.
	Name() string
	// Apply fills the relevant halo cells of the current buffer.
	Apply(l *core.Lattice)
}

// Set is an ordered collection of boundary conditions applied together.
// Order matters where conditions touch overlapping halo edges: later
// conditions win.
type Set struct {
	conds []Condition
}

// Add appends conditions to the set.
func (s *Set) Add(c ...Condition) { s.conds = append(s.conds, c...) }

// Apply applies every condition in order.
func (s *Set) Apply(l *core.Lattice) {
	for _, c := range s.conds {
		c.Apply(l)
	}
}

// Len reports the number of conditions.
func (s *Set) Len() int { return len(s.conds) }

// faceHalo iterates over the halo cells of a face, calling fn with the
// halo cell index and the index of the adjacent cell one step inward
// (normal direction). The iteration covers the FULL allocated plane,
// including the halo edges and corners shared with other faces — D3Q19
// streaming pulls diagonally from those edge cells, so they must be owned
// by some condition. Where two faces meet, whichever condition is applied
// later wins; put wall-type conditions last for watertight corners.
func faceHalo(l *core.Lattice, f core.Face, fn func(halo, inner int)) {
	ax, ay, az := l.AX, l.AY, l.AZ
	plane := func(haloOf func(a, b int) int, innerOf func(a, b int) int, na, nb int) {
		for a := 0; a < na; a++ {
			for b := 0; b < nb; b++ {
				fn(haloOf(a, b), innerOf(a, b))
			}
		}
	}
	switch f {
	case core.FaceXMin:
		plane(func(y, z int) int { return (y*ax+0)*az + z },
			func(y, z int) int { return (y*ax+1)*az + z }, ay, az)
	case core.FaceXMax:
		plane(func(y, z int) int { return (y*ax+ax-1)*az + z },
			func(y, z int) int { return (y*ax+ax-2)*az + z }, ay, az)
	case core.FaceYMin:
		plane(func(x, z int) int { return (0*ax+x)*az + z },
			func(x, z int) int { return (1*ax+x)*az + z }, ax, az)
	case core.FaceYMax:
		plane(func(x, z int) int { return ((ay-1)*ax+x)*az + z },
			func(x, z int) int { return ((ay-2)*ax+x)*az + z }, ax, az)
	case core.FaceZMin:
		plane(func(y, x int) int { return (y*ax+x)*az + 0 },
			func(y, x int) int { return (y*ax+x)*az + 1 }, ay, ax)
	case core.FaceZMax:
		plane(func(y, x int) int { return (y*ax+x)*az + az - 1 },
			func(y, x int) int { return (y*ax+x)*az + az - 2 }, ay, ax)
	}
}

// VelocityInlet imposes a uniform velocity (and density) on a face by
// filling the halo with the corresponding equilibrium distribution. This
// is the standard equilibrium-ghost inlet; for small Mach numbers it is
// accurate and unconditionally stable.
type VelocityInlet struct {
	Face core.Face
	Rho  float64
	U    [3]float64
	// Profile, if non-nil, overrides U per halo cell; it receives the
	// interior-facing coordinates of the halo cell.
	Profile func(x, y, z int) [3]float64
}

// Name implements Condition.
func (v *VelocityInlet) Name() string { return fmt.Sprintf("velocity-inlet(%v)", v.Face) }

// Apply implements Condition.
func (v *VelocityInlet) Apply(l *core.Lattice) {
	rho := v.Rho
	if rho == 0 {
		rho = 1
	}
	src := l.Src()
	q := l.Desc.Q
	feq := make([]float64, q)
	if v.Profile == nil {
		l.Desc.EquilibriumAll(feq, rho, v.U[0], v.U[1], v.U[2])
		faceHalo(l, v.Face, func(halo, _ int) {
			for i := 0; i < q; i++ {
				src[l.PopIndex(i, halo)] = feq[i]
			}
			l.Flags[halo] = core.Ghost
		})
		return
	}
	clamp := func(v, n int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	faceHalo(l, v.Face, func(halo, _ int) {
		x, y, z := l.Coords(halo)
		u := v.Profile(clamp(x, l.NX), clamp(y, l.NY), clamp(z, l.NZ))
		l.Desc.EquilibriumAll(feq, rho, u[0], u[1], u[2])
		for i := 0; i < q; i++ {
			src[l.PopIndex(i, halo)] = feq[i]
		}
		l.Flags[halo] = core.Ghost
	})
}

// PressureOutlet imposes a density (pressure p = ρ c_s²) on a face; the
// outgoing velocity is extrapolated from the adjacent interior cell.
type PressureOutlet struct {
	Face core.Face
	Rho  float64
}

// Name implements Condition.
func (p *PressureOutlet) Name() string { return fmt.Sprintf("pressure-outlet(%v)", p.Face) }

// Apply implements Condition.
func (p *PressureOutlet) Apply(l *core.Lattice) {
	rho := p.Rho
	if rho == 0 {
		rho = 1
	}
	src := l.Src()
	q := l.Desc.Q
	d := l.Desc
	feq := make([]float64, q)
	faceHalo(l, p.Face, func(halo, inner int) {
		var r, jx, jy, jz float64
		for i := 0; i < q; i++ {
			fi := src[l.PopIndex(i, inner)]
			r += fi
			c := d.C[i]
			jx += fi * float64(c[0])
			jy += fi * float64(c[1])
			jz += fi * float64(c[2])
		}
		var ux, uy, uz float64
		if r > 0 {
			ux, uy, uz = jx/r, jy/r, jz/r
		}
		d.EquilibriumAll(feq, rho, ux, uy, uz)
		for i := 0; i < q; i++ {
			src[l.PopIndex(i, halo)] = feq[i]
		}
		l.Flags[halo] = core.Ghost
	})
}

// Outflow is a zero-gradient (copy) outflow: the halo mirrors the adjacent
// interior cell's populations exactly.
type Outflow struct {
	Face core.Face
}

// Name implements Condition.
func (o *Outflow) Name() string { return fmt.Sprintf("outflow(%v)", o.Face) }

// Apply implements Condition.
func (o *Outflow) Apply(l *core.Lattice) {
	src := l.Src()
	q := l.Desc.Q
	faceHalo(l, o.Face, func(halo, inner int) {
		for i := 0; i < q; i++ {
			src[l.PopIndex(i, halo)] = src[l.PopIndex(i, inner)]
		}
		l.Flags[halo] = core.Ghost
	})
}

// NoSlip marks the halo of a face as a solid wall, turning the face into a
// bounce-back plate positioned half a cell outside the first fluid layer.
type NoSlip struct {
	Face core.Face
}

// Name implements Condition.
func (w *NoSlip) Name() string { return fmt.Sprintf("no-slip(%v)", w.Face) }

// Apply implements Condition.
func (w *NoSlip) Apply(l *core.Lattice) {
	faceHalo(l, w.Face, func(halo, _ int) {
		l.Flags[halo] = core.Wall
	})
}

// MovingNoSlip is a bounce-back plate moving tangentially with velocity U
// (e.g. the lid of a lid-driven cavity).
type MovingNoSlip struct {
	Face core.Face
	U    [3]float64
}

// Name implements Condition.
func (w *MovingNoSlip) Name() string { return fmt.Sprintf("moving-no-slip(%v)", w.Face) }

// Apply implements Condition.
func (w *MovingNoSlip) Apply(l *core.Lattice) {
	faceHalo(l, w.Face, func(halo, _ int) {
		if l.Flags[halo] != core.MovingWall {
			x, y, z := l.Coords(halo)
			l.SetMovingWall(x, y, z, w.U[0], w.U[1], w.U[2])
		}
	})
}

// FreeSlip is a specular-reflection plane: the halo receives the interior
// populations with the face-normal velocity component mirrored, producing
// zero normal flux but no tangential drag.
type FreeSlip struct {
	Face core.Face
}

// Name implements Condition.
func (fs *FreeSlip) Name() string { return fmt.Sprintf("free-slip(%v)", fs.Face) }

// Apply implements Condition.
func (fs *FreeSlip) Apply(l *core.Lattice) {
	axis := 0
	switch fs.Face {
	case core.FaceYMin, core.FaceYMax:
		axis = 1
	case core.FaceZMin, core.FaceZMax:
		axis = 2
	}
	mirror := mirrorTable(l.Desc, axis)
	src := l.Src()
	q := l.Desc.Q
	faceHalo(l, fs.Face, func(halo, inner int) {
		for i := 0; i < q; i++ {
			src[l.PopIndex(i, halo)] = src[l.PopIndex(mirror[i], inner)]
		}
		l.Flags[halo] = core.Ghost
	})
}

// Periodic wraps one axis (0=x, 1=y, 2=z) periodically each step.
type Periodic struct {
	Axis int
}

// Name implements Condition.
func (p *Periodic) Name() string { return fmt.Sprintf("periodic(axis=%d)", p.Axis) }

// Apply implements Condition.
func (p *Periodic) Apply(l *core.Lattice) { l.PeriodicAxis(p.Axis) }

// mirrorTable returns, for each direction i, the direction whose velocity
// equals c_i with the given axis component negated.
func mirrorTable(d *lattice.Descriptor, axis int) []int {
	m := make([]int, d.Q)
	for i := 0; i < d.Q; i++ {
		want := d.C[i]
		want[axis] = -want[axis]
		m[i] = -1
		for j := 0; j < d.Q; j++ {
			if d.C[j] == want {
				m[i] = j
				break
			}
		}
		if m[i] < 0 {
			// All standard descriptors are closed under axis
			// mirroring; this is unreachable for them.
			panic(fmt.Sprintf("boundary: %s not closed under axis-%d mirror", d.Name, axis))
		}
	}
	return m
}
