package boundary

import (
	"math"
	"testing"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

func newLat(t testing.TB, nx, ny, nz int) *core.Lattice {
	t.Helper()
	l, err := core.NewLattice(&lattice.D3Q19, nx, ny, nz, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestConditionNames(t *testing.T) {
	conds := []Condition{
		&VelocityInlet{Face: core.FaceXMin},
		&PressureOutlet{Face: core.FaceXMax},
		&Outflow{Face: core.FaceXMax},
		&NoSlip{Face: core.FaceYMin},
		&MovingNoSlip{Face: core.FaceYMax},
		&FreeSlip{Face: core.FaceZMin},
		&Periodic{Axis: 2},
	}
	seen := map[string]bool{}
	for _, c := range conds {
		n := c.Name()
		if n == "" || seen[n] {
			t.Errorf("condition name %q empty or duplicated", n)
		}
		seen[n] = true
	}
}

func TestSetApplyOrder(t *testing.T) {
	l := newLat(t, 4, 4, 4)
	var s Set
	s.Add(&NoSlip{Face: core.FaceXMin}, &VelocityInlet{Face: core.FaceXMin, U: [3]float64{0.1, 0, 0}})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Apply(l)
	// Later condition wins: the x- halo must be Ghost (inlet), not Wall.
	if got := l.Flags[l.Idx(-1, 2, 2)]; got != core.Ghost {
		t.Errorf("x- halo flag = %v, want Ghost", got)
	}
}

// TestVelocityInletDrivesFlow: an inlet on x- with +x velocity and outflow
// on x+ must accelerate the fluid in +x.
func TestVelocityInletDrivesFlow(t *testing.T) {
	l := newLat(t, 12, 6, 6)
	var s Set
	s.Add(
		&VelocityInlet{Face: core.FaceXMin, U: [3]float64{0.05, 0, 0}},
		&PressureOutlet{Face: core.FaceXMax, Rho: 1.0},
		&Periodic{Axis: 1},
		&Periodic{Axis: 2},
	)
	for i := 0; i < 1200; i++ {
		s.Apply(l)
		l.StepFused()
	}
	m := l.MacroAt(6, 3, 3)
	if math.Abs(m.Ux-0.05) > 1e-3 {
		t.Errorf("mid-channel Ux = %v, want ≈0.05", m.Ux)
	}
	if math.Abs(m.Uy) > 0.005 || math.Abs(m.Uz) > 0.005 {
		t.Errorf("transverse velocity too large: %+v", m)
	}
}

// TestVelocityInletProfile: a per-cell profile is honoured.
func TestVelocityInletProfile(t *testing.T) {
	l := newLat(t, 8, 8, 4)
	inlet := &VelocityInlet{
		Face: core.FaceXMin,
		Profile: func(x, y, z int) [3]float64 {
			return [3]float64{0.01 * float64(y+1), 0, 0}
		},
	}
	inlet.Apply(l)
	// Halo equilibrium at y=2 must encode ux = 0.03.
	idx := l.Idx(-1, 2, 2)
	var rho, jx float64
	for q := 0; q < l.Desc.Q; q++ {
		fi := l.Src()[q*l.N+idx]
		rho += fi
		jx += fi * float64(l.Desc.C[q][0])
	}
	if math.Abs(jx/rho-0.03) > 1e-12 {
		t.Errorf("profile inlet ux = %v, want 0.03", jx/rho)
	}
}

// TestPressureOutletSetsDensity: the halo density equals the prescribed
// value while velocity follows the interior.
func TestPressureOutletSetsDensity(t *testing.T) {
	l := newLat(t, 8, 4, 4)
	l.InitEquilibrium(1.05, 0.04, 0, 0)
	out := &PressureOutlet{Face: core.FaceXMax, Rho: 0.98}
	out.Apply(l)
	idx := l.Idx(l.NX, 2, 2)
	var rho, jx float64
	for q := 0; q < l.Desc.Q; q++ {
		fi := l.Src()[q*l.N+idx]
		rho += fi
		jx += fi * float64(l.Desc.C[q][0])
	}
	if math.Abs(rho-0.98) > 1e-12 {
		t.Errorf("outlet rho = %v, want 0.98", rho)
	}
	if math.Abs(jx/rho-0.04) > 1e-12 {
		t.Errorf("outlet ux = %v, want extrapolated 0.04", jx/rho)
	}
}

// TestOutflowZeroGradient: halo populations mirror the interior exactly.
func TestOutflowZeroGradient(t *testing.T) {
	l := newLat(t, 6, 4, 4)
	l.SetCell(5, 2, 2, 1.1, 0.03, 0.01, -0.02)
	(&Outflow{Face: core.FaceXMax}).Apply(l)
	inner := l.Populations(5, 2, 2, nil)
	idx := l.Idx(6, 2, 2)
	for q := 0; q < l.Desc.Q; q++ {
		if got := l.Src()[q*l.N+idx]; got != inner[q] {
			t.Fatalf("outflow halo differs at q=%d", q)
		}
	}
}

// TestNoSlipDecaysFlow: shear flow between two no-slip plates decays to
// rest (Couette decay without driving).
func TestNoSlipDecaysFlow(t *testing.T) {
	l := newLat(t, 10, 6, 6)
	for x := 0; x < l.NX; x++ {
		for y := 0; y < l.NY; y++ {
			for z := 0; z < l.NZ; z++ {
				l.SetCell(x, y, z, 1.0, 0, 0, 0.04)
			}
		}
	}
	var s Set
	s.Add(&Periodic{Axis: 1}, &Periodic{Axis: 2},
		&NoSlip{Face: core.FaceXMin}, &NoSlip{Face: core.FaceXMax})
	v0 := l.MaxVelocity()
	for i := 0; i < 400; i++ {
		s.Apply(l)
		l.StepFused()
	}
	if v1 := l.MaxVelocity(); v1 > v0/2 {
		t.Errorf("no-slip plates should damp the flow: %v -> %v", v0, v1)
	}
}

// TestFreeSlipPreservesTangentialFlow: uniform tangential flow between two
// free-slip planes is a fixed point (no drag).
func TestFreeSlipPreservesTangentialFlow(t *testing.T) {
	l := newLat(t, 8, 6, 6)
	l.InitEquilibrium(1.0, 0, 0, 0.04)
	var s Set
	s.Add(&Periodic{Axis: 1}, &Periodic{Axis: 2},
		&FreeSlip{Face: core.FaceXMin}, &FreeSlip{Face: core.FaceXMax})
	for i := 0; i < 100; i++ {
		s.Apply(l)
		l.StepFused()
	}
	m := l.MacroAt(0, 3, 3) // next to the plane
	if math.Abs(m.Uz-0.04) > 1e-10 {
		t.Errorf("free-slip tangential flow decayed: Uz = %v, want 0.04", m.Uz)
	}
	if math.Abs(m.Ux) > 1e-10 {
		t.Errorf("free-slip normal flow appeared: Ux = %v", m.Ux)
	}
}

// TestFreeSlipBlocksNormalFlow: flow directed at a free-slip plane cannot
// pass through it (zero net normal flux at the plane).
func TestFreeSlipBlocksNormalFlow(t *testing.T) {
	l := newLat(t, 8, 4, 4)
	l.InitEquilibrium(1.0, 0.03, 0, 0)
	var s Set
	s.Add(&Periodic{Axis: 1}, &Periodic{Axis: 2},
		&FreeSlip{Face: core.FaceXMin}, &FreeSlip{Face: core.FaceXMax})
	for i := 0; i < 200; i++ {
		s.Apply(l)
		l.StepFused()
	}
	// Total x-momentum must decay towards zero (flow reflects back).
	jx, _, _ := l.TotalMomentum()
	if math.Abs(jx) > 0.1*0.03*float64(l.FluidCells()) {
		t.Errorf("normal momentum not reflected: jx = %v", jx)
	}
	if v := l.MaxVelocity(); math.IsNaN(v) || v > 0.1 {
		t.Errorf("unstable free-slip reflection: max |u| = %v", v)
	}
}

// TestMovingNoSlipLidCavity: the classic lid-driven cavity spins up.
func TestMovingNoSlipLidCavity(t *testing.T) {
	l := newLat(t, 12, 12, 12)
	var s Set
	s.Add(
		&NoSlip{Face: core.FaceXMin}, &NoSlip{Face: core.FaceXMax},
		&NoSlip{Face: core.FaceZMin}, &NoSlip{Face: core.FaceZMax},
		&NoSlip{Face: core.FaceYMin},
		&MovingNoSlip{Face: core.FaceYMax, U: [3]float64{0.05, 0, 0}},
	)
	for i := 0; i < 300; i++ {
		s.Apply(l)
		l.StepFused()
	}
	// Cells near the lid move with it; cells near the bottom lag or
	// counter-rotate.
	top := l.MacroAt(6, l.NY-1, 6)
	if top.Ux < 0.005 {
		t.Errorf("near-lid Ux = %v, want clearly positive", top.Ux)
	}
	bottom := l.MacroAt(6, 0, 6)
	if bottom.Ux > top.Ux/2 {
		t.Errorf("bottom Ux = %v should lag lid %v", bottom.Ux, top.Ux)
	}
	if v := l.MaxVelocity(); math.IsNaN(v) || v > 0.2 {
		t.Errorf("cavity unstable: max |u| = %v", v)
	}
}

// TestCornersCovered: applying wall conditions on all faces leaves no
// Ghost halo cell that a D3Q19 pull can reach from a fluid cell.
func TestCornersCovered(t *testing.T) {
	l := newLat(t, 5, 5, 5)
	var s Set
	s.Add(
		&NoSlip{Face: core.FaceXMin}, &NoSlip{Face: core.FaceXMax},
		&NoSlip{Face: core.FaceYMin}, &NoSlip{Face: core.FaceYMax},
		&NoSlip{Face: core.FaceZMin}, &NoSlip{Face: core.FaceZMax},
	)
	s.Apply(l)
	d := l.Desc
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				for q := 0; q < d.Q; q++ {
					c := d.C[q]
					sx, sy, sz := x-c[0], y-c[1], z-c[2]
					if sx >= 0 && sx < l.NX && sy >= 0 && sy < l.NY && sz >= 0 && sz < l.NZ {
						continue
					}
					if got := l.Flags[l.Idx(sx, sy, sz)]; got == core.Ghost {
						t.Fatalf("reachable halo (%d,%d,%d) still Ghost", sx, sy, sz)
					}
				}
			}
		}
	}
}
