package boundary

import (
	"fmt"

	"sunwaylb/internal/core"
)

// NEEInlet is a non-equilibrium-extrapolation velocity inlet (Guo et al.
// 2002): the ghost cell receives the equilibrium of the prescribed
// velocity (with the neighbour's density) plus the neighbour's
// non-equilibrium part,
//
//	f_ghost = f^eq(ρ_f, u_w) + [f_f − f^eq(ρ_f, u_f)],
//
// which carries the local stress through the boundary and is second-order
// accurate where the plain equilibrium ghost (VelocityInlet) is first-order
// — visible as a smaller wall-adjacent error in a developing channel.
type NEEInlet struct {
	Face core.Face
	U    [3]float64
	// Profile, if non-nil, overrides U per halo cell (interior-clamped
	// coordinates, like VelocityInlet).
	Profile func(x, y, z int) [3]float64
}

// Name implements Condition.
func (v *NEEInlet) Name() string { return fmt.Sprintf("nee-inlet(%v)", v.Face) }

// Apply implements Condition.
func (v *NEEInlet) Apply(l *core.Lattice) {
	src := l.Src()
	d := l.Desc
	q := d.Q
	feqW := make([]float64, q)
	feqF := make([]float64, q)
	clamp := func(v, n int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	faceHalo(l, v.Face, func(halo, inner int) {
		// Neighbour macroscopic state.
		var rho, jx, jy, jz float64
		for i := 0; i < q; i++ {
			fi := src[l.PopIndex(i, inner)]
			rho += fi
			c := d.C[i]
			jx += fi * float64(c[0])
			jy += fi * float64(c[1])
			jz += fi * float64(c[2])
		}
		if rho <= 0 {
			// Solid or uninitialised neighbour: fall back to the
			// plain equilibrium ghost at unit density.
			rho = 1
			jx, jy, jz = 0, 0, 0
		}
		ux, uy, uz := jx/rho, jy/rho, jz/rho
		uw := v.U
		if v.Profile != nil {
			x, y, z := l.Coords(halo)
			uw = v.Profile(clamp(x, l.NX), clamp(y, l.NY), clamp(z, l.NZ))
		}
		d.EquilibriumAll(feqW, rho, uw[0], uw[1], uw[2])
		d.EquilibriumAll(feqF, rho, ux, uy, uz)
		for i := 0; i < q; i++ {
			src[l.PopIndex(i, halo)] = feqW[i] + (src[l.PopIndex(i, inner)] - feqF[i])
		}
		l.Flags[halo] = core.Ghost
	})
}
