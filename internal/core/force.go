package core

// WallForce computes the hydrodynamic force exerted on all Wall and
// MovingWall cells by the momentum-exchange method: for every fluid→solid
// link, the population leaving the fluid cell towards the wall returns
// reversed, transferring 2·f*_i·c_i of momentum per step (plus the
// moving-wall correction). The current buffer must hold post-collision
// populations, i.e. call this right after a step.
//
// The returned force is in lattice units (momentum per time step); the
// cylinder and Suboff examples turn it into drag and lift coefficients.
func (l *Lattice) WallForce() (fx, fy, fz float64) {
	d := l.Desc
	src := l.F[l.src]
	var baseArr [MaxQ]int
	base := baseArr[:d.Q]
	for i := range base {
		base[i] = l.PopBase(i)
	}
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			rowBase := l.Idx(x, y, 0)
			for z := 0; z < l.NZ; z++ {
				idx := rowBase + z
				if l.Flags[idx] != Fluid {
					continue
				}
				for i := 1; i < d.Q; i++ {
					nb := idx + l.offs[i] // neighbour in direction i
					var transfer float64
					switch l.Flags[nb] {
					case Wall:
						transfer = 2 * src[base[i]+idx]
					case MovingWall:
						uw := l.WallVel[nb]
						c := d.C[i]
						cu := float64(c[0])*uw[0] + float64(c[1])*uw[1] + float64(c[2])*uw[2]
						transfer = 2*src[base[i]+idx] - 6*d.W[i]*cu
					default:
						continue
					}
					c := d.C[i]
					fx += transfer * float64(c[0])
					fy += transfer * float64(c[1])
					fz += transfer * float64(c[2])
				}
			}
		}
	}
	return
}

// WallForceWhere computes the momentum-exchange force restricted to solid
// cells selected by pred — separating, e.g., the drag on a body from the
// forces on channel walls in the same domain. pred receives interior (or
// halo) coordinates of the SOLID cell receiving the momentum.
func (l *Lattice) WallForceWhere(pred func(x, y, z int) bool) (fx, fy, fz float64) {
	d := l.Desc
	src := l.F[l.src]
	var baseArr [MaxQ]int
	base := baseArr[:d.Q]
	for i := range base {
		base[i] = l.PopBase(i)
	}
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			rowBase := l.Idx(x, y, 0)
			for z := 0; z < l.NZ; z++ {
				idx := rowBase + z
				if l.Flags[idx] != Fluid {
					continue
				}
				for i := 1; i < d.Q; i++ {
					nb := idx + l.offs[i]
					var transfer float64
					switch l.Flags[nb] {
					case Wall:
						transfer = 2 * src[base[i]+idx]
					case MovingWall:
						uw := l.WallVel[nb]
						c := d.C[i]
						cu := float64(c[0])*uw[0] + float64(c[1])*uw[1] + float64(c[2])*uw[2]
						transfer = 2*src[base[i]+idx] - 6*d.W[i]*cu
					default:
						continue
					}
					c := d.C[i]
					wx, wy, wz := x+c[0], y+c[1], z+c[2]
					if !pred(wx, wy, wz) {
						continue
					}
					fx += transfer * float64(c[0])
					fy += transfer * float64(c[1])
					fz += transfer * float64(c[2])
				}
			}
		}
	}
	return
}
