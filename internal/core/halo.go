package core

// Face identifies one of the six axis-aligned faces of the domain block.
type Face int

const (
	FaceXMin Face = iota
	FaceXMax
	FaceYMin
	FaceYMax
	FaceZMin
	FaceZMax
	numFaces
)

// String implements fmt.Stringer.
func (f Face) String() string {
	switch f {
	case FaceXMin:
		return "x-"
	case FaceXMax:
		return "x+"
	case FaceYMin:
		return "y-"
	case FaceYMax:
		return "y+"
	case FaceZMin:
		return "z-"
	case FaceZMax:
		return "z+"
	}
	return "?"
}

// PeriodicAll copies the interior boundary layers of the current buffer
// into the opposite halo layers for all three axes, including the edge and
// corner cells (copied transitively by doing the axes in sequence over the
// full allocated extent). Halo cells also inherit the Fluid flag wherever
// the wrapped-around source cell is Fluid, so streaming pulls through the
// periodic image correctly.
func (l *Lattice) PeriodicAll() {
	l.PeriodicAxis(0)
	l.PeriodicAxis(1)
	l.PeriodicAxis(2)
}

// PeriodicAxis wraps the halo of one axis (0=x, 1=y, 2=z) periodically.
// The copy spans the entire allocated extent of the other two axes so that
// successive calls for different axes fill edges and corners correctly.
//
// Each inner iteration copies TWO cells (the low and the high face), so
// the budget is two cells' worth of copy traffic: 2 × (19 reads + 19
// writes of float64 + the flag byte).
//
//lbm:hot traffic budget=616 assume q=19
func (l *Lattice) PeriodicAxis(axis int) {
	if l.aaOddPhase() {
		l.periodicAxisAA(axis)
		return
	}
	src := l.F[l.src]
	n := l.N
	q := l.Desc.Q
	copyCell := func(dstIdx, srcIdx int) {
		for i := 0; i < q; i++ {
			src[i*n+dstIdx] = src[i*n+srcIdx]
		}
		if l.Flags[srcIdx] != Ghost {
			l.Flags[dstIdx] = l.Flags[srcIdx]
		}
	}
	switch axis {
	case 0:
		for ay := 0; ay < l.AY; ay++ {
			for az := 0; az < l.AZ; az++ {
				lo := (ay*l.AX+0)*l.AZ + az
				hi := (ay*l.AX+l.AX-1)*l.AZ + az
				loSrc := (ay*l.AX+l.AX-2)*l.AZ + az
				hiSrc := (ay*l.AX+1)*l.AZ + az
				copyCell(lo, loSrc)
				copyCell(hi, hiSrc)
			}
		}
	case 1:
		for ax := 0; ax < l.AX; ax++ {
			for az := 0; az < l.AZ; az++ {
				lo := (0*l.AX+ax)*l.AZ + az
				hi := ((l.AY-1)*l.AX+ax)*l.AZ + az
				loSrc := ((l.AY-2)*l.AX+ax)*l.AZ + az
				hiSrc := (1*l.AX+ax)*l.AZ + az
				copyCell(lo, loSrc)
				copyCell(hi, hiSrc)
			}
		}
	case 2:
		for ay := 0; ay < l.AY; ay++ {
			for ax := 0; ax < l.AX; ax++ {
				base := (ay*l.AX + ax) * l.AZ
				copyCell(base+0, base+l.AZ-2)
				copyCell(base+l.AZ-1, base+1)
			}
		}
	}
}

// faceRange returns the coordinate ranges (in allocated coordinates) of a
// one-cell-thick layer at the given face. layer=0 selects the interior
// boundary layer (what gets sent), layer=1 selects the halo layer (what
// gets received). The ranges cover the full allocated extent of the
// tangential axes so that diagonal neighbours are satisfied after the x
// and y exchanges run in sequence.
func (l *Lattice) faceRange(f Face, layer int) (x0, x1, y0, y1, z0, z1 int) {
	x0, x1, y0, y1, z0, z1 = 0, l.AX, 0, l.AY, 0, l.AZ
	switch f {
	case FaceXMin:
		x0, x1 = 1, 2
		if layer == 1 {
			x0, x1 = 0, 1
		}
	case FaceXMax:
		x0, x1 = l.AX-2, l.AX-1
		if layer == 1 {
			x0, x1 = l.AX-1, l.AX
		}
	case FaceYMin:
		y0, y1 = 1, 2
		if layer == 1 {
			y0, y1 = 0, 1
		}
	case FaceYMax:
		y0, y1 = l.AY-2, l.AY-1
		if layer == 1 {
			y0, y1 = l.AY-1, l.AY
		}
	case FaceZMin:
		z0, z1 = 1, 2
		if layer == 1 {
			z0, z1 = 0, 1
		}
	case FaceZMax:
		z0, z1 = l.AZ-2, l.AZ-1
		if layer == 1 {
			z0, z1 = l.AZ-1, l.AZ
		}
	}
	return
}

// FaceCells returns the number of cells in one face layer (including the
// tangential halo extent), i.e. the element count of a packed face buffer
// divided by Q.
func (l *Lattice) FaceCells(f Face) int {
	x0, x1, y0, y1, z0, z1 := l.faceRange(f, 0)
	return (x1 - x0) * (y1 - y0) * (z1 - z0)
}

// PackFace serialises the populations (and flags) of the interior boundary
// layer at face f from the current buffer into buf, which must have length
// ≥ Q*FaceCells(f) float64s. It returns the packed flags alongside so the
// receiver can mirror obstacle cells that touch the subdomain boundary.
//
// Per-cell traffic: 19 population reads + 19 buffer writes (the flag
// copy rides on the nil-guard path).
//
//lbm:hot traffic budget=320 assume q=19
func (l *Lattice) PackFace(f Face, buf []float64, flags []CellType) {
	if l.aaOddPhase() {
		l.packFaceAA(f, buf, flags)
		return
	}
	x0, x1, y0, y1, z0, z1 := l.faceRange(f, 0)
	src := l.F[l.src]
	q := l.Desc.Q
	n := l.N
	k := 0
	for ay := y0; ay < y1; ay++ {
		for ax := x0; ax < x1; ax++ {
			for az := z0; az < z1; az++ {
				idx := (ay*l.AX+ax)*l.AZ + az
				for i := 0; i < q; i++ {
					buf[k*q+i] = src[i*n+idx]
				}
				if flags != nil {
					flags[k] = l.Flags[idx]
				}
				k++
			}
		}
	}
}

// UnpackFace writes a packed face buffer into the halo layer at face f of
// the current buffer. Flags, if non-nil, update the halo cell
// classification (so walls spanning subdomain boundaries bounce correctly);
// Ghost flags in the packed data are preserved as Ghost.
//
// Per-cell traffic: 19 buffer reads + 19 population writes plus the
// flag-guard byte.
//
//lbm:hot traffic budget=320 assume q=19
func (l *Lattice) UnpackFace(f Face, buf []float64, flags []CellType) {
	if l.aaOddPhase() {
		l.unpackFaceAA(f, buf, flags)
		return
	}
	x0, x1, y0, y1, z0, z1 := l.faceRange(f, 1)
	src := l.F[l.src]
	q := l.Desc.Q
	n := l.N
	k := 0
	for ay := y0; ay < y1; ay++ {
		for ax := x0; ax < x1; ax++ {
			for az := z0; az < z1; az++ {
				idx := (ay*l.AX+ax)*l.AZ + az
				for i := 0; i < q; i++ {
					src[i*n+idx] = buf[k*q+i]
				}
				if flags != nil && flags[k] != Ghost {
					l.Flags[idx] = flags[k]
				}
				k++
			}
		}
	}
}

// periodicAxisAA is the odd-phase PeriodicAxis: the same wrap-around cell
// copies, but addressing logical populations through the reversed-shifted
// layout. PopIndex is a bijection on the slot space, so the logical
// semantics (and thus the resumed even-phase state) match the natural
// wrap exactly; the sources (interior boundary layers) are never earlier
// destinations (halo layers) within one call, so the in-place copies are
// order-safe.
func (l *Lattice) periodicAxisAA(axis int) {
	src := l.F[l.src]
	q := l.Desc.Q
	copyCell := func(dstIdx, srcIdx, dx, dy, dz, sx, sy, sz int) {
		for i := 0; i < q; i++ {
			src[l.popSlotAA(i, dstIdx, dx, dy, dz)] = src[l.popSlotAA(i, srcIdx, sx, sy, sz)]
		}
		if l.Flags[srcIdx] != Ghost {
			l.Flags[dstIdx] = l.Flags[srcIdx]
		}
	}
	switch axis {
	case 0:
		for ay := 0; ay < l.AY; ay++ {
			y := ay - 1
			for az := 0; az < l.AZ; az++ {
				z := az - 1
				lo := (ay*l.AX+0)*l.AZ + az
				hi := (ay*l.AX+l.AX-1)*l.AZ + az
				loSrc := (ay*l.AX+l.AX-2)*l.AZ + az
				hiSrc := (ay*l.AX+1)*l.AZ + az
				copyCell(lo, loSrc, -1, y, z, l.NX-1, y, z)
				copyCell(hi, hiSrc, l.NX, y, z, 0, y, z)
			}
		}
	case 1:
		for ax := 0; ax < l.AX; ax++ {
			x := ax - 1
			for az := 0; az < l.AZ; az++ {
				z := az - 1
				lo := (0*l.AX+ax)*l.AZ + az
				hi := ((l.AY-1)*l.AX+ax)*l.AZ + az
				loSrc := ((l.AY-2)*l.AX+ax)*l.AZ + az
				hiSrc := (1*l.AX+ax)*l.AZ + az
				copyCell(lo, loSrc, x, -1, z, x, l.NY-1, z)
				copyCell(hi, hiSrc, x, l.NY, z, x, 0, z)
			}
		}
	case 2:
		for ay := 0; ay < l.AY; ay++ {
			y := ay - 1
			for ax := 0; ax < l.AX; ax++ {
				x := ax - 1
				base := (ay*l.AX + ax) * l.AZ
				copyCell(base+0, base+l.AZ-2, x, y, -1, x, y, l.NZ-1)
				copyCell(base+l.AZ-1, base+1, x, y, l.NZ, x, y, 0)
			}
		}
	}
}

// packFaceAA packs the interior boundary layer at odd AA parity: the same
// logical populations as the natural pack, read through PopIndex, so the
// wire format is phase-independent and pack/unpack pairs compose across
// ranks at different storage phases.
func (l *Lattice) packFaceAA(f Face, buf []float64, flags []CellType) {
	x0, x1, y0, y1, z0, z1 := l.faceRange(f, 0)
	src := l.F[l.src]
	q := l.Desc.Q
	k := 0
	for ay := y0; ay < y1; ay++ {
		for ax := x0; ax < x1; ax++ {
			for az := z0; az < z1; az++ {
				idx := (ay*l.AX+ax)*l.AZ + az
				for i := 0; i < q; i++ {
					buf[k*q+i] = src[l.popSlotAA(i, idx, ax-1, ay-1, az-1)]
				}
				if flags != nil {
					flags[k] = l.Flags[idx]
				}
				k++
			}
		}
	}
}

// unpackFaceAA writes a packed face buffer into the halo layer at odd AA
// parity, placing each logical population into its reversed-shifted slot
// (or the natural fallback slot for populations whose shifted home leaves
// the allocation — those park in place and feed the next odd-parity pack
// or capture, never the kernel).
func (l *Lattice) unpackFaceAA(f Face, buf []float64, flags []CellType) {
	x0, x1, y0, y1, z0, z1 := l.faceRange(f, 1)
	src := l.F[l.src]
	q := l.Desc.Q
	k := 0
	for ay := y0; ay < y1; ay++ {
		for ax := x0; ax < x1; ax++ {
			for az := z0; az < z1; az++ {
				idx := (ay*l.AX+ax)*l.AZ + az
				for i := 0; i < q; i++ {
					src[l.popSlotAA(i, idx, ax-1, ay-1, az-1)] = buf[k*q+i]
				}
				if flags != nil && flags[k] != Ghost {
					l.Flags[idx] = flags[k]
				}
				k++
			}
		}
	}
}
