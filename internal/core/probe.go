package core

import "fmt"

// Probe records the time history of the macroscopic state at one lattice
// point — the numerical equivalent of a hot-wire anemometer, used to
// measure shedding frequencies and turbulence statistics.
type Probe struct {
	X, Y, Z int
	// History holds one Macro sample per Sample call.
	History []Macro
}

// Sample appends the probe point's current state.
func (p *Probe) Sample(l *Lattice) {
	p.History = append(p.History, l.MacroAt(p.X, p.Y, p.Z))
}

// Component extracts one velocity component's time series (0=x, 1=y, 2=z).
func (p *Probe) Component(c int) []float64 {
	out := make([]float64, len(p.History))
	for i, m := range p.History {
		switch c {
		case 0:
			out[i] = m.Ux
		case 1:
			out[i] = m.Uy
		default:
			out[i] = m.Uz
		}
	}
	return out
}

// Mean returns the time-averaged state over the recorded history.
func (p *Probe) Mean() Macro {
	var s Macro
	if len(p.History) == 0 {
		return s
	}
	for _, m := range p.History {
		s.Rho += m.Rho
		s.Ux += m.Ux
		s.Uy += m.Uy
		s.Uz += m.Uz
	}
	n := float64(len(p.History))
	return Macro{Rho: s.Rho / n, Ux: s.Ux / n, Uy: s.Uy / n, Uz: s.Uz / n}
}

// ProbeSet samples several probes together.
type ProbeSet struct {
	Probes []*Probe
}

// Add registers a probe point, validating it lies in the interior.
func (ps *ProbeSet) Add(l *Lattice, x, y, z int) (*Probe, error) {
	if x < 0 || x >= l.NX || y < 0 || y >= l.NY || z < 0 || z >= l.NZ {
		return nil, fmt.Errorf("core: probe (%d,%d,%d) outside %d×%d×%d", x, y, z, l.NX, l.NY, l.NZ)
	}
	p := &Probe{X: x, Y: y, Z: z}
	ps.Probes = append(ps.Probes, p)
	return p, nil
}

// Sample records the current state at every probe.
func (ps *ProbeSet) Sample(l *Lattice) {
	for _, p := range ps.Probes {
		p.Sample(l)
	}
}
