package core

import (
	"math"
	"testing"

	"sunwaylb/internal/lattice"
)

// TestCouetteProfile: flow between a moving and a stationary plate
// converges to the linear Couette profile.
func TestCouetteProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("long physics test")
	}
	const h = 16
	uw := 0.05
	l, err := NewLattice(&lattice.D3Q19, h, 4, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Stationary plate at the x− halo, moving plate (+z direction) at x+.
	for y := -1; y <= l.NY; y++ {
		for z := -1; z <= l.NZ; z++ {
			l.Flags[l.Idx(-1, y, z)] = Wall
			l.SetMovingWall(h, y, z, 0, 0, uw)
		}
	}
	for s := 0; s < 8000; s++ {
		l.PeriodicAxis(1)
		l.PeriodicAxis(2)
		l.StepFused()
	}
	// Half-way bounce-back puts the plates at x̂=0 and x̂=h, with cell
	// centres at x̂ = x+0.5: u(x) = uw·(x+0.5)/h.
	worst := 0.0
	for x := 0; x < h; x++ {
		want := uw * (float64(x) + 0.5) / float64(h)
		got := l.MacroAt(x, 2, 2).Uz
		if rel := math.Abs(got-want) / uw; rel > worst {
			worst = rel
		}
	}
	if worst > 0.01 {
		t.Errorf("Couette profile error %.4f of the wall speed (want <1%%)", worst)
	}
}

// TestCavityGhiaBenchmark: the Re=100 lid-driven cavity's centreline
// velocity extrema land near the Ghia, Ghia & Shin (1982) reference values
// (coarse-grid tolerance).
func TestCavityGhiaBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("long physics test")
	}
	const n = 32
	uLid := 0.1
	// Re = uLid·n/ν = 100.
	nu := uLid * float64(n) / 100
	l, err := NewLattice(&lattice.D3Q19, n, n, 3, lattice.Tau(nu))
	if err != nil {
		t.Fatal(err)
	}
	for y := -1; y <= l.NY; y++ {
		for x := -1; x <= l.NX; x++ {
			for z := -1; z <= l.NZ; z++ {
				onX := x < 0 || x >= n
				onY := y < 0 || y >= n
				if !onX && !onY {
					continue
				}
				if y >= n {
					l.SetMovingWall(x, y, z, uLid, 0, 0)
				} else if onX || onY {
					l.Flags[l.Idx(x, y, z)] = Wall
				}
			}
		}
	}
	for s := 0; s < 12000; s++ {
		l.PeriodicAxis(2)
		l.StepFused()
	}
	// Vertical centreline u_x/U: Ghia's Re=100 minimum is −0.2109 near
	// y/H≈0.17; top value approaches the lid.
	minU := math.Inf(1)
	for y := 0; y < n; y++ {
		if u := l.MacroAt(n/2, y, 1).Ux / uLid; u < minU {
			minU = u
		}
	}
	if minU < -0.24 || minU > -0.18 {
		t.Errorf("centreline min u_x/U = %.4f, Ghia Re=100 gives −0.211 (band [−0.24,−0.18])", minU)
	}
	// Horizontal centreline u_y/U extrema: Ghia gives +0.1753 / −0.2453.
	maxV, minV := math.Inf(-1), math.Inf(1)
	for x := 0; x < n; x++ {
		v := l.MacroAt(x, n/2, 1).Uy / uLid
		maxV = math.Max(maxV, v)
		minV = math.Min(minV, v)
	}
	if maxV < 0.15 || maxV > 0.21 {
		t.Errorf("max u_y/U = %.4f, Ghia gives 0.175", maxV)
	}
	if minV > -0.21 || minV < -0.29 {
		t.Errorf("min u_y/U = %.4f, Ghia gives −0.245", minV)
	}
	t.Logf("cavity Re=100 on %d³: min u_x/U=%.3f (Ghia −0.211), u_y/U ∈ [%.3f, %.3f] (Ghia −0.245/+0.175)",
		n, minU, minV, maxV)
}
