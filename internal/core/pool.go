package core

import (
	"runtime"
	"sync"
)

// Pool is a persistent worker-pool stepper for AA lattices: the paper's
// answer to spawn-per-step parallelism (§IV-C-2, the CPE worker model).
// NewPool starts long-lived goroutines, each owning a fixed contiguous
// band of y rows which it processes as a queue of cache-blocked tiles
// (per SetAATiles); Step releases every worker once and waits for them
// all, with no per-step allocation — one channel send/receive pair per
// worker is the whole protocol. Because AA cells never read another
// cell's writes within a step, the pool is bit-identical to the serial
// stepper regardless of scheduling.
type Pool struct {
	l      *Lattice
	start  []chan struct{}
	done   chan struct{}
	quit   chan struct{}
	ranges [][2]int
	once   sync.Once
}

// NewPool creates a pool of the given number of workers (≤ 0 selects
// GOMAXPROCS, capped at the row count) over the lattice, switching it to
// AA storage if it is not already. Close must be called to release the
// worker goroutines.
func NewPool(l *Lattice, workers int) *Pool {
	l.EnableAA()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > l.NY {
		workers = l.NY
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{l: l, done: make(chan struct{}, workers), quit: make(chan struct{})}
	chunk := (l.NY + workers - 1) / workers
	for w := 0; w < workers; w++ {
		y0 := w * chunk
		y1 := y0 + chunk
		if y1 > l.NY {
			y1 = l.NY
		}
		if y0 >= y1 {
			break
		}
		ch := make(chan struct{}, 1)
		p.start = append(p.start, ch)
		p.ranges = append(p.ranges, [2]int{y0, y1})
		go p.worker(ch, y0, y1)
	}
	return p
}

// Workers returns the number of live worker goroutines.
func (p *Pool) Workers() int { return len(p.start) }

// worker processes its fixed row band every time it is released, until
// the pool's quit channel closes. Step and Close are never concurrent
// (the pool contract), so the select never races a release against
// shutdown.
func (p *Pool) worker(start <-chan struct{}, y0, y1 int) {
	for {
		select {
		case <-p.quit:
			return
		case <-start:
			p.l.stepAAYRange(y0, y1)
			p.done <- struct{}{}
		}
	}
}

// Step advances the lattice one time step: release every worker, wait for
// every worker, bump the step counter. The channel handoffs order the
// workers' writes before the counter bump and the caller's subsequent
// reads, so the pool is race-free by construction.
func (p *Pool) Step() {
	for _, ch := range p.start {
		ch <- struct{}{}
	}
	for range p.start {
		<-p.done
	}
	p.l.step++
}

// Run advances n steps.
func (p *Pool) Run(n int) {
	for s := 0; s < n; s++ {
		p.Step()
	}
}

// Close shuts the workers down by closing the shared quit channel —
// closed exactly once. Idempotent; the pool must not be stepped
// afterwards.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.quit) })
}
