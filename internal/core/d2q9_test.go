package core

import (
	"math"
	"testing"

	"sunwaylb/internal/lattice"
)

// The solver core is descriptor-generic; these tests run it end-to-end
// with D2Q9 (NZ=1) and the other 3-D descriptors to make sure nothing in
// the kernel hard-codes D3Q19.

func TestD2Q9TaylorGreenDecay(t *testing.T) {
	if testing.Short() {
		t.Skip("long physics test")
	}
	const n = 32
	tau := 0.8
	l, err := NewLattice(&lattice.D2Q9, n, n, 1, tau)
	if err != nil {
		t.Fatal(err)
	}
	u0 := 0.02
	k := 2 * math.Pi / float64(n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			ux := u0 * math.Sin(k*float64(x)) * math.Cos(k*float64(y))
			uy := -u0 * math.Cos(k*float64(x)) * math.Sin(k*float64(y))
			l.SetCell(x, y, 0, 1.0, ux, uy, 0)
		}
	}
	energy := func() float64 {
		e := 0.0
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				m := l.MacroAt(x, y, 0)
				e += m.Ux*m.Ux + m.Uy*m.Uy
			}
		}
		return e
	}
	e0 := energy()
	steps := 200
	for s := 0; s < steps; s++ {
		l.PeriodicAxis(0)
		l.PeriodicAxis(1)
		l.PeriodicAxis(2)
		l.StepFused()
	}
	nu := lattice.Viscosity(tau)
	want := math.Exp(-4 * nu * k * k * float64(steps))
	got := energy() / e0
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("D2Q9 Taylor–Green decay: got %v, want %v", got, want)
	}
}

func TestD2Q9MassConservation(t *testing.T) {
	l, err := NewLattice(&lattice.D2Q9, 16, 16, 1, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	l.SetWall(8, 8, 0)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if l.CellTypeAt(x, y, 0) == Fluid {
				l.SetCell(x, y, 0, 1, 0.03*math.Sin(float64(y)), 0.01, 0)
			}
		}
	}
	m0 := l.TotalMass()
	for s := 0; s < 50; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	if m1 := l.TotalMass(); math.Abs(m1-m0)/m0 > 1e-12 {
		t.Errorf("D2Q9 mass drift %v -> %v", m0, m1)
	}
}

// TestAllDescriptorsStationary: the uniform equilibrium is a fixed point
// under every shipped descriptor.
func TestAllDescriptorsStationary(t *testing.T) {
	for _, d := range []*lattice.Descriptor{&lattice.D3Q19, &lattice.D3Q15, &lattice.D3Q27, &lattice.D2Q9} {
		nz := 4
		if d.D == 2 {
			nz = 1
		}
		l, err := NewLattice(d, 6, 6, nz, 0.8)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		l.InitEquilibrium(1.0, 0.02, -0.01, 0.005*float64(d.D-2))
		before := append([]float64(nil), l.Src()...)
		for s := 0; s < 5; s++ {
			l.PeriodicAll()
			l.StepFused()
		}
		after := l.Src()
		for i := range before {
			if math.Abs(before[i]-after[i]) > 1e-13 {
				t.Fatalf("%s: population %d drifted", d.Name, i)
			}
		}
	}
}

// TestD3Q27MatchesD3Q19Diffusion: the two lattices give the same effective
// viscosity (same Taylor–Green decay) since both satisfy the isotropy
// conditions.
func TestD3Q27MatchesD3Q19Diffusion(t *testing.T) {
	if testing.Short() {
		t.Skip("long physics test")
	}
	decay := func(d *lattice.Descriptor) float64 {
		const n = 24
		l, err := NewLattice(d, n, n, 2, 0.75)
		if err != nil {
			t.Fatal(err)
		}
		u0 := 0.02
		k := 2 * math.Pi / float64(n)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				ux := u0 * math.Sin(k*float64(x)) * math.Cos(k*float64(y))
				uy := -u0 * math.Cos(k*float64(x)) * math.Sin(k*float64(y))
				for z := 0; z < 2; z++ {
					l.SetCell(x, y, z, 1.0, ux, uy, 0)
				}
			}
		}
		e := func() float64 {
			s := 0.0
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					m := l.MacroAt(x, y, 0)
					s += m.Ux*m.Ux + m.Uy*m.Uy
				}
			}
			return s
		}
		e0 := e()
		for s := 0; s < 120; s++ {
			l.PeriodicAll()
			l.StepFused()
		}
		return e() / e0
	}
	d19 := decay(&lattice.D3Q19)
	d27 := decay(&lattice.D3Q27)
	if math.Abs(d19-d27)/d19 > 0.01 {
		t.Errorf("D3Q19 decay %v vs D3Q27 %v: same viscosity expected", d19, d27)
	}
}
