package core

// Consistent initialization (Mei, Luo, Lallemand & d'Humières 2006): a
// lattice initialised with bare equilibria carries zero non-equilibrium
// stress, so the first steps relax towards the true strain field through
// an artificial transient (visible, e.g., as a startup error in the
// Taylor–Green decay). InitFromMacro adds the leading-order non-equilibrium
// part. The pre-collision Chapman–Enskog result is
//
//	f_i^neq ≈ −w_i τ ρ/c_s² · (Q_i : ∇u),  Q_i = c_i c_i − c_s² I,
//
// but this solver's A–B buffers hold POST-collision states, whose
// non-equilibrium part is scaled by (1 − 1/τ); the stored correction is
// therefore (1−τ)·w_i ρ/c_s²·(Q_i : ∇u) — verified against the measured
// non-equilibrium populations of a settled simulation.

// InitFromMacro initialises every interior fluid cell of the current
// buffer from the macroscopic field m (dimensions must match), including
// the non-equilibrium correction. Halo cells keep their previous values;
// apply boundary conditions before stepping as usual.
func (l *Lattice) InitFromMacro(m *MacroField) error {
	if m.NX != l.NX || m.NY != l.NY || m.NZ != l.NZ {
		return errDimMismatch(l, m)
	}
	d := l.Desc
	src := l.F[l.src]
	feq := make([]float64, d.Q)
	base := make([]int, d.Q)
	for i := range base {
		base[i] = l.PopBase(i)
	}

	// Central-difference velocity gradient ∂u_a/∂x_b with one-sided
	// stencils at domain edges.
	comp := [3][]float64{m.Ux, m.Uy, m.Uz}
	dims := [3]int{m.NX, m.NY, m.NZ}
	grad := func(x, y, z, a, b int) float64 {
		lo := [3]int{x, y, z}
		hi := [3]int{x, y, z}
		denom := 2.0
		if hi[b]+1 < dims[b] {
			hi[b]++
		} else {
			denom--
		}
		if lo[b]-1 >= 0 {
			lo[b]--
		} else {
			denom--
		}
		if denom <= 0 {
			return 0
		}
		return (comp[a][m.Idx(hi[0], hi[1], hi[2])] -
			comp[a][m.Idx(lo[0], lo[1], lo[2])]) / denom
	}

	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				idx := l.Idx(x, y, z)
				if l.Flags[idx] != Fluid {
					continue
				}
				mi := m.Idx(x, y, z)
				rho := m.Rho[mi]
				if rho <= 0 {
					rho = 1
				}
				ux, uy, uz := m.Ux[mi], m.Uy[mi], m.Uz[mi]
				d.EquilibriumAll(feq, rho, ux, uy, uz)
				divU := grad(x, y, z, 0, 0) + grad(x, y, z, 1, 1) + grad(x, y, z, 2, 2)
				for i := 0; i < d.Q; i++ {
					c := d.C[i]
					cv := [3]float64{float64(c[0]), float64(c[1]), float64(c[2])}
					// Q_i : ∇u = Σ_ab c_a c_b ∂u_a/∂x_b − c_s² ∇·u.
					cgu := -divU / InvCS2loc
					for a := 0; a < 3; a++ {
						if cv[a] == 0 {
							continue
						}
						for b := 0; b < 3; b++ {
							if cv[b] == 0 {
								continue
							}
							cgu += cv[a] * cv[b] * grad(x, y, z, a, b)
						}
					}
					fneq := (1 - l.Tau) * d.W[i] * rho * InvCS2loc * cgu
					src[base[i]+idx] = feq[i] + fneq
				}
			}
		}
	}
	return nil
}

// InvCS2loc is 1/c_s² = 3 (local alias avoiding an import cycle with
// package lattice's constant).
const InvCS2loc = 3.0

func errDimMismatch(l *Lattice, m *MacroField) error {
	return &MacroDimError{LNX: l.NX, LNY: l.NY, LNZ: l.NZ, MNX: m.NX, MNY: m.NY, MNZ: m.NZ}
}

// MacroDimError reports a lattice/field dimension mismatch.
type MacroDimError struct{ LNX, LNY, LNZ, MNX, MNY, MNZ int }

// Error implements error.
func (e *MacroDimError) Error() string {
	return "core: macro field dimensions do not match lattice"
}
