package core

import (
	"math"
	"testing"
)

// TestPackFaceWireFormatPhaseIndependent packs every face of an AA
// lattice and its bit-identical double-buffer twin after each of the
// first two steps (even and odd storage parity) and requires the wire
// buffers to match bit-exactly on fluid cells: the packed format is the
// logical population order regardless of the sender's storage phase, so
// pack/unpack pairs compose across ranks at different phases.
func TestPackFaceWireFormatPhaseIndependent(t *testing.T) {
	ref, aa := buildPair(t, 6, 5, 7, 0.8, false)
	for step := 1; step <= 2; step++ {
		ref.PeriodicAll()
		aa.PeriodicAll()
		ref.StepFused()
		aa.StepFused()
		// Refresh the halo so the tangential halo extent of each face
		// layer is well-defined (as the distributed drivers do before
		// packing); the storage parity of the step is unaffected.
		ref.PeriodicAll()
		aa.PeriodicAll()
		parity := []string{"even", "odd"}[step%2]
		for f := FaceXMin; f < numFaces; f++ {
			nc := ref.FaceCells(f)
			q := ref.Desc.Q
			bufR := make([]float64, q*nc)
			bufA := make([]float64, q*nc)
			flagsR := make([]CellType, nc)
			flagsA := make([]CellType, nc)
			ref.PackFace(f, bufR, flagsR)
			aa.PackFace(f, bufA, flagsA)
			for k := 0; k < nc; k++ {
				if flagsR[k] != flagsA[k] {
					t.Fatalf("step %d (%s parity) face %v cell %d: flag %v (ref) != %v (aa)",
						step, parity, f, k, flagsR[k], flagsA[k])
				}
				if flagsR[k] != Fluid {
					continue // non-fluid populations are undefined
				}
				for i := 0; i < q; i++ {
					r, a := bufR[k*q+i], bufA[k*q+i]
					if math.Float64bits(r) != math.Float64bits(a) {
						t.Fatalf("step %d (%s parity) face %v cell %d pop %d: %v (ref) != %v (aa)",
							step, parity, f, k, i, r, a)
					}
				}
			}
		}
	}
}

// TestPackUnpackFaceAAOddParity transfers an AA sender's x+ boundary
// into an AA receiver's x- halo while both sit at odd storage parity
// (the reversed-shifted layout), then checks the receiver's logical
// halo populations and flags against the sender's boundary — the
// odd-parity analogue of TestPackUnpackFaceRoundTrip, exercising
// packFaceAA and unpackFaceAA including the natural-slot fallback for
// halo cells whose shifted home leaves the allocation.
func TestPackUnpackFaceAAOddParity(t *testing.T) {
	mk := func() *Lattice {
		l := newTestLattice(t, 6, 5, 4, 0.8)
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				for z := 0; z < l.NZ; z++ {
					l.SetCell(x, y, z, 1+0.01*float64(x+2*y+3*z),
						0.01*float64(x), 0.01*float64(y), 0.01*float64(z))
				}
			}
		}
		l.SetWall(5, 2, 2) // wall on the x+ boundary layer
		l.EnableAA()
		l.PeriodicAll()
		l.StepFused() // step 1: odd parity
		return l
	}
	a, b := mk(), mk()
	if !a.aaOddPhase() {
		t.Fatal("sender must be at odd AA parity")
	}
	nc := a.FaceCells(FaceXMax)
	buf := make([]float64, a.Desc.Q*nc)
	flags := make([]CellType, nc)
	a.PackFace(FaceXMax, buf, flags)
	b.UnpackFace(FaceXMin, buf, flags)
	var fa []float64
	for y := 0; y < a.NY; y++ {
		for z := 0; z < a.NZ; z++ {
			if a.Flags[a.Idx(a.NX-1, y, z)] != Fluid {
				continue
			}
			fa = a.Populations(a.NX-1, y, z, fa)
			ib := b.Idx(-1, y, z)
			for q := 0; q < b.Desc.Q; q++ {
				got := b.Src()[b.PopIndex(q, ib)]
				if math.Float64bits(got) != math.Float64bits(fa[q]) {
					t.Fatalf("halo mismatch at y=%d z=%d q=%d: %v != %v", y, z, q, got, fa[q])
				}
			}
		}
	}
	if b.Flags[b.Idx(-1, 2, 2)] != Wall {
		t.Error("wall flag must propagate through odd-parity pack/unpack")
	}
}
