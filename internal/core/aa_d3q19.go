package core

import "math"

// D3Q19-specialised AA kernels. The key structural trick: at both
// parities, the scatter slot of population i for a row of cells is
// exactly the gather slice of population Opp[i] for the same row —
//
//	even: gather_i    = src[i*n + idx − off[i]]
//	      scatter_i   = src[Opp[i]*n + idx + off[i]] = gather_{Opp[i]}
//	odd:  gather_i    = src[Opp[i]*n + idx]
//	      scatter_i   = src[i*n + idx]               = gather_{Opp[i]}
//
// (using off[Opp[i]] = −off[i]). So one shared row body, aaRowD3Q19,
// serves both parities: the caller prepares the 19 gather slices for its
// phase, and the body loads f_i from g[i][k] and stores the relaxed
// population i into g[Opp[i]][k]. Per cell it touches the scatter slot
// only after gathering the cell's full stencil, and no other cell ever
// reads a slot this cell writes (the AA disjointness invariant, see
// aa.go), so the in-place row sweep is exact in any order.
//
// Hoisting each direction's row into a slice gives the inner z loop
// constant-bound indexing (bounds checks hoisted), contiguous streaming
// loads/stores, and none of the per-cell neighbour-flag probing of the
// double-buffer fast path: mixed rows — any wall in the 3×3 neighbouring
// rows or a non-fluid cell in the row itself — fall back to the generic
// AA kernel for exactly that row segment, preserving bit-identity.

// aaRowMixed reports whether the row of nz cells starting at rowBase
// needs the flag-aware generic path: a non-fluid cell in the row, or a
// Wall/MovingWall among any cell's gather stencil (conservatively, the
// nine neighbouring z-rows padded by one cell on each end).
func (l *Lattice) aaRowMixed(rowBase, nz int) bool {
	flags := l.Flags
	rowStride := l.AZ
	planeStride := l.AX * l.AZ
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			b := rowBase + dy*planeStride + dx*rowStride - 1
			row := flags[b : b+nz+2]
			for _, fl := range row {
				if fl == Wall || fl == MovingWall {
					return true
				}
			}
		}
	}
	ctr := flags[rowBase : rowBase+nz]
	for _, fl := range ctr {
		if fl != Fluid {
			return true
		}
	}
	return false
}

// stepAAEvenD3Q19 is the unrolled even-phase AA kernel: double-buffer
// pull gather, reversed-shifted scatter, per z-row over hoisted slices.
//
// Per-cell traffic on the clean path: 19 pulls + 19 pushes of float64
// within the single AA array plus ~10 flag bytes of the row prescan —
// below the two-buffer 380 B/cell budget because the second stream of
// write-allocated destination lines is gone.
//
//lbm:hot traffic budget=360
func (l *Lattice) stepAAEvenD3Q19(x0, x1, y0, y1, z0, z1 int) {
	src := l.F[l.src]
	n := l.N
	nTau := -1.0 / l.Tau
	nz := z1 - z0
	if nz <= 0 {
		return
	}
	var off [19]int
	copy(off[:], l.offs)
	var g [19][]float64
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			rowBase := l.Idx(x, y, z0)
			if l.aaRowMixed(rowBase, nz) {
				l.stepAAEvenGeneric(x, x+1, y, y+1, z0, z1)
				continue
			}
			for i := 0; i < 19; i++ {
				b := i*n + rowBase - off[i]
				g[i] = src[b : b+nz]
			}
			aaRowD3Q19(&g, nz, nTau)
		}
	}
}

// stepAAOddD3Q19 is the unrolled odd-phase AA kernel: gather from the
// cell's own reversed-shifted slots, natural write-back.
//
//lbm:hot traffic budget=360
func (l *Lattice) stepAAOddD3Q19(x0, x1, y0, y1, z0, z1 int) {
	src := l.F[l.src]
	n := l.N
	nTau := -1.0 / l.Tau
	d := l.Desc
	nz := z1 - z0
	if nz <= 0 {
		return
	}
	var g [19][]float64
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			rowBase := l.Idx(x, y, z0)
			if l.aaRowMixed(rowBase, nz) {
				l.stepAAOddGeneric(x, x+1, y, y+1, z0, z1)
				continue
			}
			for i := 0; i < 19; i++ {
				b := d.Opp[i]*n + rowBase
				g[i] = src[b : b+nz]
			}
			aaRowD3Q19(&g, nz, nTau)
		}
	}
}

// aaRowD3Q19 collide-streams one clean (all-fluid stencil) row of nz
// cells in place: f_i comes from g[i][k] and the relaxed population i is
// stored into g[Opp[i]][k]. When the CPU supports AVX-512F the bulk of
// the row runs 8 cells wide in aaRowD3Q19AVX512 — the vector kernel
// executes the identical per-lane operation order, so its results stay
// bit-identical to the scalar canon — and aaRowD3Q19Scalar sweeps the
// nz mod 8 tail.
func aaRowD3Q19(g *[19][]float64, nz int, nTau float64) {
	lo := 0
	if useAVX512 && nz >= 8 {
		blocks := nz / 8
		aaRowD3Q19AVX512(g, blocks, nTau, &aaKTab)
		lo = blocks * 8
	}
	if lo < nz {
		aaRowD3Q19Scalar(g, lo, nz, nTau)
	}
}

// aaRowD3Q19Scalar is the scalar row body for cells [lo, hi). The
// floating-point operation order is exactly that of stepRegionD3Q19
// (itself exactly the generic kernel's), so the results are
// bit-identical to the double-buffer reference.
//
// Per-cell traffic: 19 float64 loads + 19 float64 stores in one array.
//
//lbm:hot traffic budget=360
func aaRowD3Q19Scalar(g *[19][]float64, lo, hi int, nTau float64) {
	g0 := g[0][:hi]
	g1 := g[1][:hi]
	g2 := g[2][:hi]
	g3 := g[3][:hi]
	g4 := g[4][:hi]
	g5 := g[5][:hi]
	g6 := g[6][:hi]
	g7 := g[7][:hi]
	g8 := g[8][:hi]
	g9 := g[9][:hi]
	g10 := g[10][:hi]
	g11 := g[11][:hi]
	g12 := g[12][:hi]
	g13 := g[13][:hi]
	g14 := g[14][:hi]
	g15 := g[15][:hi]
	g16 := g[16][:hi]
	g17 := g[17][:hi]
	g18 := g[18][:hi]
	for k := lo; k < hi; k++ {
		f0 := g0[k]
		f1 := g1[k]
		f2 := g2[k]
		f3 := g3[k]
		f4 := g4[k]
		f5 := g5[k]
		f6 := g6[k]
		f7 := g7[k]
		f8 := g8[k]
		f9 := g9[k]
		f10 := g10[k]
		f11 := g11[k]
		f12 := g12[k]
		f13 := g13[k]
		f14 := g14[k]
		f15 := g15[k]
		f16 := g16[k]
		f17 := g17[k]
		f18 := g18[k]

		rho := f0 + f1 + f2 + f3 + f4 + f5 + f6 +
			f7 + f8 + f9 + f10 + f11 + f12 + f13 +
			f14 + f15 + f16 + f17 + f18
		jx := f1 - f2 + f7 - f8 + f9 - f10 + f11 - f12 + f13 - f14
		jy := f3 - f4 + f7 - f8 - f9 + f10 + f15 - f16 + f17 - f18
		jz := f5 - f6 + f11 - f12 - f13 + f14 + f15 - f16 - f17 + f18
		invRho := 1.0 / rho
		ux, uy, uz := jx*invRho, jy*invRho, jz*invRho
		onem := 1 - 1.5*math.FMA(uz, uz, math.FMA(uy, uy, ux*ux))
		wr1, wr2 := w1*rho, w2*rho

		// Canonical FMA collide (see lattice.Equilibrium); each ±
		// direction pair shares the symmetric part s of its two
		// equilibria, and the relaxed population i lands in slice
		// Opp[i] (1↔2, 3↔4, 5↔6, 7↔8, 9↔10, 11↔12, 13↔14, 15↔16,
		// 17↔18), which is the AA scatter for both parities.
		g0[k] = math.FMA(nTau, f0-w0*rho*onem, f0)
		cu := ux
		h := 4.5 * cu
		s := math.FMA(h, cu, onem)
		c3 := 3 * cu
		g2[k] = math.FMA(nTau, f1-wr1*(s+c3), f1)
		g1[k] = math.FMA(nTau, f2-wr1*(s-c3), f2)
		cu = uy
		h = 4.5 * cu
		s = math.FMA(h, cu, onem)
		c3 = 3 * cu
		g4[k] = math.FMA(nTau, f3-wr1*(s+c3), f3)
		g3[k] = math.FMA(nTau, f4-wr1*(s-c3), f4)
		cu = uz
		h = 4.5 * cu
		s = math.FMA(h, cu, onem)
		c3 = 3 * cu
		g6[k] = math.FMA(nTau, f5-wr1*(s+c3), f5)
		g5[k] = math.FMA(nTau, f6-wr1*(s-c3), f6)
		cu = ux + uy
		h = 4.5 * cu
		s = math.FMA(h, cu, onem)
		c3 = 3 * cu
		g8[k] = math.FMA(nTau, f7-wr2*(s+c3), f7)
		g7[k] = math.FMA(nTau, f8-wr2*(s-c3), f8)
		cu = ux - uy
		h = 4.5 * cu
		s = math.FMA(h, cu, onem)
		c3 = 3 * cu
		g10[k] = math.FMA(nTau, f9-wr2*(s+c3), f9)
		g9[k] = math.FMA(nTau, f10-wr2*(s-c3), f10)
		cu = ux + uz
		h = 4.5 * cu
		s = math.FMA(h, cu, onem)
		c3 = 3 * cu
		g12[k] = math.FMA(nTau, f11-wr2*(s+c3), f11)
		g11[k] = math.FMA(nTau, f12-wr2*(s-c3), f12)
		cu = ux - uz
		h = 4.5 * cu
		s = math.FMA(h, cu, onem)
		c3 = 3 * cu
		g14[k] = math.FMA(nTau, f13-wr2*(s+c3), f13)
		g13[k] = math.FMA(nTau, f14-wr2*(s-c3), f14)
		cu = uy + uz
		h = 4.5 * cu
		s = math.FMA(h, cu, onem)
		c3 = 3 * cu
		g16[k] = math.FMA(nTau, f15-wr2*(s+c3), f15)
		g15[k] = math.FMA(nTau, f16-wr2*(s-c3), f16)
		cu = uy - uz
		h = 4.5 * cu
		s = math.FMA(h, cu, onem)
		c3 = 3 * cu
		g18[k] = math.FMA(nTau, f17-wr2*(s+c3), f17)
		g17[k] = math.FMA(nTau, f18-wr2*(s-c3), f18)
	}
}
