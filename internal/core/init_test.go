package core

import (
	"math"
	"testing"

	"sunwaylb/internal/lattice"
)

// taylorGreenField builds the analytic TG macro field.
func taylorGreenField(n int, u0 float64) *MacroField {
	m := &MacroField{
		NX: n, NY: n, NZ: 1,
		Rho: make([]float64, n*n),
		Ux:  make([]float64, n*n),
		Uy:  make([]float64, n*n),
		Uz:  make([]float64, n*n),
	}
	k := 2 * math.Pi / float64(n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := m.Idx(x, y, 0)
			m.Rho[i] = 1
			m.Ux[i] = u0 * math.Sin(k*float64(x)) * math.Cos(k*float64(y))
			m.Uy[i] = -u0 * math.Cos(k*float64(x)) * math.Sin(k*float64(y))
		}
	}
	return m
}

// tgStartupError measures how far the first-step decay rate deviates from
// the asymptotic rate — the artificial startup transient that consistent
// initialization should largely remove.
func tgStartupError(t *testing.T, consistent bool) float64 {
	t.Helper()
	const n, u0, tau = 32, 0.01, 0.8
	l, err := NewLattice(&lattice.D2Q9, n, n, 1, tau)
	if err != nil {
		t.Fatal(err)
	}
	m := taylorGreenField(n, u0)
	if consistent {
		if err := l.InitFromMacro(m); err != nil {
			t.Fatal(err)
		}
	} else {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				i := m.Idx(x, y, 0)
				l.SetCell(x, y, 0, m.Rho[i], m.Ux[i], m.Uy[i], 0)
			}
		}
	}
	energy := func() float64 {
		e := 0.0
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				mm := l.MacroAt(x, y, 0)
				e += mm.Ux*mm.Ux + mm.Uy*mm.Uy
			}
		}
		return e
	}
	// First-step decay vs the settled per-step decay.
	e0 := energy()
	l.PeriodicAll()
	l.StepFused()
	e1 := energy()
	for s := 0; s < 60; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	ea := energy()
	l.PeriodicAll()
	l.StepFused()
	eb := energy()
	first := e1 / e0
	settled := eb / ea
	return math.Abs(first-settled) / (1 - settled)
}

// TestInitFromMacroRemovesStartupTransient: the consistent initialization
// brings the first-step decay much closer to the asymptotic rate.
func TestInitFromMacroRemovesStartupTransient(t *testing.T) {
	bare := tgStartupError(t, false)
	consistent := tgStartupError(t, true)
	if consistent >= bare/2 {
		t.Errorf("consistent init transient %.4f should be well below bare-equilibrium %.4f", consistent, bare)
	}
	t.Logf("first-step decay error: bare equilibrium %.4f, consistent init %.4f", bare, consistent)
}

// TestInitFromMacroMoments: the initialised state reproduces the requested
// density and velocity (the non-equilibrium part has zero moments up to
// first order... exactly zero density moment, and first moment zero since
// Σ w c (c·∇)(c·u) has no odd-order term).
func TestInitFromMacroMoments(t *testing.T) {
	l, err := NewLattice(&lattice.D3Q19, 8, 8, 4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	m := l.ComputeMacro()
	for i := range m.Rho {
		m.Rho[i] = 1.02
		m.Ux[i] = 0.01 * float64(i%7)
		m.Uy[i] = -0.005
	}
	if err := l.InitFromMacro(m); err != nil {
		t.Fatal(err)
	}
	got := l.MacroAt(4, 4, 2)
	want := m.Idx(4, 4, 2)
	if math.Abs(got.Rho-m.Rho[want]) > 1e-12 {
		t.Errorf("rho = %v, want %v", got.Rho, m.Rho[want])
	}
	if math.Abs(got.Ux-m.Ux[want]) > 1e-12 || math.Abs(got.Uy-m.Uy[want]) > 1e-12 {
		t.Errorf("u = (%v,%v), want (%v,%v)", got.Ux, got.Uy, m.Ux[want], m.Uy[want])
	}
	// Dimension mismatch is rejected.
	bad := &MacroField{NX: 2, NY: 2, NZ: 2}
	if err := l.InitFromMacro(bad); err == nil {
		t.Error("want dimension-mismatch error")
	}
}

func TestCheckHealth(t *testing.T) {
	l, err := NewLattice(&lattice.D3Q19, 6, 6, 6, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	l.InitEquilibrium(1.0, 0.05, 0, 0)
	h, err := l.CheckHealth()
	if err != nil {
		t.Fatalf("healthy state flagged: %v", err)
	}
	if math.Abs(h.MaxSpeed-0.05) > 1e-12 || h.BadCells != 0 {
		t.Errorf("health = %+v", h)
	}
	// Inject a NaN.
	l.Src()[5*l.N+l.Idx(3, 3, 3)] = math.NaN()
	if _, err := l.CheckHealth(); err == nil {
		t.Error("NaN not detected")
	}
	// Trans-sonic velocity.
	l2, _ := NewLattice(&lattice.D3Q19, 4, 4, 4, 0.8)
	l2.SetCell(2, 2, 2, 1.0, 0.7, 0, 0)
	if _, err := l2.CheckHealth(); err == nil {
		t.Error("trans-sonic speed not detected")
	}
}
