package core

import (
	"math"
	"testing"

	"sunwaylb/internal/lattice"
)

// buildKernelTestLattice builds a state exercising walls, moving walls and
// shear so every gather branch runs.
func buildKernelTestLattice(t testing.TB) *Lattice {
	t.Helper()
	l, err := NewLattice(&lattice.D3Q19, 10, 9, 8, 0.63)
	if err != nil {
		t.Fatal(err)
	}
	l.SetWall(4, 4, 4)
	l.SetWall(5, 4, 4)
	l.SetMovingWall(2, 7, 3, 0.04, 0, 0.01)
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				if l.CellTypeAt(x, y, z) == Fluid {
					l.SetCell(x, y, z, 1+0.01*math.Sin(float64(x+2*y)),
						0.03*math.Sin(0.5*float64(z)), -0.02*math.Cos(0.4*float64(x)),
						0.01*math.Sin(0.3*float64(y)))
				}
			}
		}
	}
	return l
}

// TestUnrolledKernelBitIdentical: the D3Q19 fast path must reproduce the
// generic kernel bit for bit, including around static and moving walls.
func TestUnrolledKernelBitIdentical(t *testing.T) {
	fast := buildKernelTestLattice(t)
	slow := buildKernelTestLattice(t)
	slow.noFastPath = true
	if !fast.useFastPath() {
		t.Fatal("fast path must be active for plain D3Q19")
	}
	if slow.useFastPath() {
		t.Fatal("testing hook must disable the fast path")
	}
	for s := 0; s < 12; s++ {
		fast.PeriodicAll()
		fast.StepFused()
		slow.PeriodicAll()
		slow.StepFused()
	}
	fa, fb := fast.Src(), slow.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("unrolled kernel diverged from generic at %d: %v vs %v", i, fa[i], fb[i])
		}
	}
}

// TestFastPathGating: LES, body forces and non-D3Q19 descriptors must fall
// back to the generic kernel.
func TestFastPathGating(t *testing.T) {
	l, err := NewLattice(&lattice.D3Q19, 4, 4, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !l.useFastPath() {
		t.Error("plain D3Q19 must use the fast path")
	}
	l.Smagorinsky = 0.17
	if l.useFastPath() {
		t.Error("LES must disable the fast path")
	}
	l.Smagorinsky = 0
	l.Force = [3]float64{1e-6, 0, 0}
	if l.useFastPath() {
		t.Error("body force must disable the fast path")
	}
	l2, err := NewLattice(&lattice.D3Q15, 4, 4, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if l2.useFastPath() {
		t.Error("D3Q15 must not use the D3Q19 fast path")
	}
}

// TestUnrolledKernelParallelIdentical: the parallel driver with the fast
// path matches the serial generic kernel.
func TestUnrolledKernelParallelIdentical(t *testing.T) {
	fast := buildKernelTestLattice(t)
	slow := buildKernelTestLattice(t)
	slow.noFastPath = true
	for s := 0; s < 8; s++ {
		fast.PeriodicAll()
		fast.StepFusedParallel(3)
		slow.PeriodicAll()
		slow.StepFused()
	}
	fa, fb := fast.Src(), slow.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("parallel fast path diverged at %d", i)
		}
	}
}

func BenchmarkKernelGeneric48(b *testing.B) {
	l, err := NewLattice(&lattice.D3Q19, 48, 48, 48, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	l.noFastPath = true
	cells := float64(48 * 48 * 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PeriodicAll()
		l.StepFused()
	}
	b.StopTimer()
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUPS")
}

func BenchmarkKernelUnrolled48(b *testing.B) {
	l, err := NewLattice(&lattice.D3Q19, 48, 48, 48, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	cells := float64(48 * 48 * 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PeriodicAll()
		l.StepFused()
	}
	b.StopTimer()
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUPS")
}
