package core_test

import (
	"fmt"

	"sunwaylb/internal/core"
	"sunwaylb/internal/lattice"
)

// ExampleNewLattice shows the minimal solve loop: build a lattice, impose
// periodic boundaries, step, and read a macroscopic value.
func ExampleNewLattice() {
	lat, err := core.NewLattice(&lattice.D3Q19, 8, 8, 8, 0.8)
	if err != nil {
		panic(err)
	}
	lat.InitEquilibrium(1.0, 0.05, 0, 0)
	for step := 0; step < 10; step++ {
		lat.PeriodicAll()
		lat.StepFused()
	}
	m := lat.MacroAt(4, 4, 4)
	fmt.Printf("rho=%.3f ux=%.3f after %d steps\n", m.Rho, m.Ux, lat.Step())
	// Output: rho=1.000 ux=0.050 after 10 steps
}

// ExampleLattice_SetWall shows obstacle placement and the momentum-exchange
// force readout.
func ExampleLattice_SetWall() {
	lat, _ := core.NewLattice(&lattice.D3Q19, 12, 8, 8, 0.8)
	for y := 0; y < 8; y++ {
		for z := 0; z < 8; z++ {
			lat.SetWall(6, y, z) // a plate across the channel
		}
	}
	lat.InitEquilibrium(1.0, 0.05, 0, 0)
	for step := 0; step < 8; step++ {
		lat.PeriodicAll()
		lat.StepFused()
	}
	fx, _, _ := lat.WallForce()
	fmt.Printf("drag is %v\n", fx > 0)
	// Output: drag is true
}
