package core

import (
	"math"
	"testing"

	"sunwaylb/internal/lattice"
)

// TestWallForceDirection: uniform flow hitting a plate pushes it
// downstream.
func TestWallForceDirection(t *testing.T) {
	l, err := NewLattice(&lattice.D3Q19, 20, 8, 8, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// A plate at x=12 spanning y,z.
	for y := 0; y < l.NY; y++ {
		for z := 0; z < l.NZ; z++ {
			l.SetWall(12, y, z)
		}
	}
	l.InitEquilibrium(1.0, 0.05, 0, 0)
	for s := 0; s < 30; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	fx, fy, fz := l.WallForce()
	if fx <= 0 {
		t.Errorf("drag on plate = %v, want > 0 (downstream)", fx)
	}
	if math.Abs(fy) > math.Abs(fx)/10 || math.Abs(fz) > math.Abs(fx)/10 {
		t.Errorf("transverse force too large: (%v, %v, %v)", fx, fy, fz)
	}
}

// TestWallForceZeroAtRest: a quiescent fluid exerts no net force on a
// symmetric obstacle.
func TestWallForceZeroAtRest(t *testing.T) {
	l, err := NewLattice(&lattice.D3Q19, 12, 12, 12, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for x := 5; x <= 6; x++ {
		for y := 5; y <= 6; y++ {
			for z := 5; z <= 6; z++ {
				l.SetWall(x, y, z)
			}
		}
	}
	for s := 0; s < 10; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	fx, fy, fz := l.WallForce()
	if math.Abs(fx)+math.Abs(fy)+math.Abs(fz) > 1e-12 {
		t.Errorf("force at rest = (%v, %v, %v), want 0", fx, fy, fz)
	}
}

// TestWallForceMatchesMomentumLoss: in a closed periodic system with one
// obstacle, the momentum the fluid loses per step equals the force on the
// obstacle.
func TestWallForceMatchesMomentumLoss(t *testing.T) {
	l, err := NewLattice(&lattice.D3Q19, 16, 8, 8, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for y := 2; y <= 5; y++ {
		for z := 2; z <= 5; z++ {
			l.SetWall(8, y, z)
		}
	}
	l.InitEquilibrium(1.0, 0.04, 0, 0)
	// Let transients settle.
	for s := 0; s < 20; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	jx0, _, _ := l.TotalMomentum()
	fx, _, _ := l.WallForce()
	l.PeriodicAll()
	l.StepFused()
	jx1, _, _ := l.TotalMomentum()
	loss := jx0 - jx1
	if math.Abs(loss-fx)/math.Abs(fx) > 0.05 {
		t.Errorf("momentum loss %v vs wall force %v (5%% tol)", loss, fx)
	}
}

// TestWallForceWhere: restricting the force to one of two obstacles
// separates their contributions, and the parts sum to the total.
func TestWallForceWhere(t *testing.T) {
	l, err := NewLattice(&lattice.D3Q19, 24, 8, 8, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Two plates at x=8 and x=16.
	for y := 0; y < l.NY; y++ {
		for z := 0; z < l.NZ; z++ {
			l.SetWall(8, y, z)
			l.SetWall(16, y, z)
		}
	}
	l.InitEquilibrium(1.0, 0.05, 0, 0)
	for s := 0; s < 12; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	totalX, totalY, totalZ := l.WallForce()
	f1x, f1y, f1z := l.WallForceWhere(func(x, y, z int) bool { return x == 8 })
	f2x, f2y, f2z := l.WallForceWhere(func(x, y, z int) bool { return x == 16 })
	if math.Abs(f1x+f2x-totalX) > 1e-12 ||
		math.Abs(f1y+f2y-totalY) > 1e-12 ||
		math.Abs(f1z+f2z-totalZ) > 1e-12 {
		t.Errorf("per-object forces do not sum to the total: (%v+%v) vs %v", f1x, f2x, totalX)
	}
	if f1x <= 0 {
		t.Errorf("upstream plate drag = %v, want > 0", f1x)
	}
}
