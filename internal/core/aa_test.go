package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sunwaylb/internal/lattice"
)

// buildPair returns two identically-prepared lattices: a double-buffer
// reference and an AA twin (converted by EnableAA at step 0). A perturbed
// non-uniform initial state, a couple of wall cells and a moving-wall cell
// exercise every gather branch.
func buildPair(t testing.TB, nx, ny, nz int, tau float64, walls bool) (ref, aa *Lattice) {
	t.Helper()
	mk := func() *Lattice {
		l, err := NewLattice(&lattice.D3Q19, nx, ny, nz, tau)
		if err != nil {
			t.Fatalf("NewLattice: %v", err)
		}
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				for z := 0; z < nz; z++ {
					rho := 1 + 0.05*math.Sin(float64(x+2*y+3*z))
					ux := 0.02 * math.Cos(float64(x-z))
					uy := 0.01 * math.Sin(float64(y+z))
					uz := 0.015 * math.Cos(float64(x+y))
					l.SetCell(x, y, z, rho, ux, uy, uz)
				}
			}
		}
		if walls && nx > 2 && ny > 2 && nz > 2 {
			l.SetWall(nx/2, ny/2, nz/2)
			l.SetWall(1, 1, 1)
			l.SetMovingWall(nx-2, ny-2, nz-2, 0.03, -0.01, 0.02)
		}
		return l
	}
	ref, aa = mk(), mk()
	aa.EnableAA()
	return ref, aa
}

// compareLogical fails the test unless every logical population of every
// interior fluid cell matches bit-exactly. Non-fluid cells are skipped:
// their populations are semantically undefined in both schemes (the
// reference leaves stale buffer contents there, the AA scheme parks
// bounced values), and no observable quantity reads them.
func compareLogical(t *testing.T, ref, aa *Lattice, step int) {
	t.Helper()
	var fr, fa []float64
	for y := 0; y < ref.NY; y++ {
		for x := 0; x < ref.NX; x++ {
			for z := 0; z < ref.NZ; z++ {
				if ref.Flags[ref.Idx(x, y, z)] != Fluid {
					continue
				}
				fr = ref.Populations(x, y, z, fr)
				fa = aa.Populations(x, y, z, fa)
				for q := range fr {
					if math.Float64bits(fr[q]) != math.Float64bits(fa[q]) {
						t.Fatalf("step %d cell (%d,%d,%d) pop %d: ref %v aa %v",
							step, x, y, z, q, fr[q], fa[q])
					}
				}
			}
		}
	}
}

// stepBoth applies identical periodic halo fills and advances both
// lattices one step with the given AA driver.
func stepBoth(ref, aa *Lattice, stepAA func(*Lattice)) {
	ref.PeriodicAll()
	aa.PeriodicAll()
	ref.StepFused()
	stepAA(aa)
}

// TestAAStepBitIdentical checks the AA stepper against the double-buffer
// reference after every single step (both parities), for the D3Q19 fast
// path, the generic path, walls, LES and body forces.
func TestAAStepBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		walls bool
		prep  func(l *Lattice)
	}{
		{"fastpath", false, nil},
		{"walls", true, nil},
		{"generic", true, func(l *Lattice) { l.noFastPath = true }},
		{"les", true, func(l *Lattice) { l.Smagorinsky = 0.17 }},
		{"forced", false, func(l *Lattice) { l.Force = [3]float64{1e-5, -2e-5, 3e-6} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, aa := buildPair(t, 6, 5, 7, 0.7, tc.walls)
			if tc.prep != nil {
				tc.prep(ref)
				tc.prep(aa)
			}
			for s := 1; s <= 5; s++ {
				stepBoth(ref, aa, (*Lattice).StepFused)
				compareLogical(t, ref, aa, s)
				if ref.Step() != aa.Step() {
					t.Fatalf("step counters diverged: %d vs %d", ref.Step(), aa.Step())
				}
			}
		})
	}
}

// TestAABlockedBitIdentical checks that cache-blocked tilings are
// bit-identical to the unblocked AA sweep (and the reference) at every
// step, for several tile shapes including ragged ones.
func TestAABlockedBitIdentical(t *testing.T) {
	for _, tiles := range [][2]int{{1, 1}, {2, 3}, {4, 8}, {3, 100}} {
		t.Run(fmt.Sprintf("ty%d_tz%d", tiles[0], tiles[1]), func(t *testing.T) {
			ref, aa := buildPair(t, 6, 5, 7, 0.62, true)
			aa.SetAATiles(tiles[0], tiles[1])
			for s := 1; s <= 4; s++ {
				stepBoth(ref, aa, (*Lattice).StepFused)
				compareLogical(t, ref, aa, s)
			}
		})
	}
}

// TestAAPoolBitIdentical checks the persistent worker pool against the
// reference at every step, with more workers than rows in one case.
func TestAAPoolBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			ref, aa := buildPair(t, 6, 5, 7, 0.8, true)
			aa.SetAATiles(2, 4)
			p := NewPool(aa, workers)
			defer p.Close()
			for s := 1; s <= 4; s++ {
				stepBoth(ref, aa, func(l *Lattice) { p.Step() })
				compareLogical(t, ref, aa, s)
			}
		})
	}
}

// TestAAParallelBitIdentical checks the spawn-per-step parallel driver's
// AA path.
func TestAAParallelBitIdentical(t *testing.T) {
	ref, aa := buildPair(t, 6, 6, 6, 0.75, true)
	for s := 1; s <= 4; s++ {
		stepBoth(ref, aa, func(l *Lattice) { l.StepFusedParallel(3) })
		compareLogical(t, ref, aa, s)
	}
}

// TestAAOnTheFlyRegions drives the AA lattice through the
// StepRegion/CompleteStep API (the on-the-fly overlap path) and compares
// against the reference at both parities.
func TestAAOnTheFlyRegions(t *testing.T) {
	ref, aa := buildPair(t, 6, 5, 7, 0.7, true)
	for s := 1; s <= 4; s++ {
		ref.PeriodicAll()
		aa.PeriodicAll()
		ref.StepFused()
		// Inner block first, then the boundary strips, as psolve does.
		aa.StepRegion(1, aa.NX-1, 1, aa.NY-1)
		aa.StepRegion(0, aa.NX, 0, 1)
		aa.StepRegion(0, aa.NX, aa.NY-1, aa.NY)
		aa.StepRegion(0, 1, 1, aa.NY-1)
		aa.StepRegion(aa.NX-1, aa.NX, 1, aa.NY-1)
		aa.CompleteStep()
		compareLogical(t, ref, aa, s)
	}
}

// TestEnableAAOddStep converts a lattice mid-run at an odd step count and
// checks the state survives the layout permutation and further stepping.
func TestEnableAAOddStep(t *testing.T) {
	ref, plain := buildPair(t, 5, 6, 5, 0.9, true)
	// plain was converted at step 0 by buildPair; build a third lattice
	// that converts only after an odd number of steps.
	late, _ := buildPair(t, 5, 6, 5, 0.9, true)
	for s := 1; s <= 3; s++ {
		stepBoth(ref, plain, (*Lattice).StepFused)
		late.PeriodicAll()
		late.StepFused()
	}
	late.EnableAA() // step count is 3: odd-phase conversion
	compareLogical(t, ref, late, 3)
	for s := 4; s <= 6; s++ {
		stepBoth(ref, late, (*Lattice).StepFused)
		compareLogical(t, ref, late, s)
	}
	if !late.AA() {
		t.Fatal("late.AA() = false after EnableAA")
	}
	late.EnableAA() // idempotent
	compareLogical(t, ref, late, 6)
}

// TestAASwapBuffersPanics pins the single-buffer contract.
func TestAASwapBuffersPanics(t *testing.T) {
	_, aa := buildPair(t, 4, 4, 4, 0.8, false)
	defer func() {
		if recover() == nil {
			t.Fatal("SwapBuffers on an AA lattice did not panic")
		}
	}()
	aa.SwapBuffers()
}

// TestAAMassMomentumConserved checks the physical oracles at arbitrary
// even and odd stopping points of a fully periodic, unforced AA run.
func TestAAMassMomentumConserved(t *testing.T) {
	_, aa := buildPair(t, 6, 6, 6, 0.6, false)
	m0 := aa.TotalMass()
	jx0, jy0, jz0 := aa.TotalMomentum()
	tol := 1e-12 * math.Abs(m0)
	for s := 1; s <= 5; s++ {
		aa.PeriodicAll()
		aa.StepFused()
		if d := math.Abs(aa.TotalMass() - m0); d > tol {
			t.Fatalf("step %d (parity %d): mass drifted by %g", s, s&1, d)
		}
		jx, jy, jz := aa.TotalMomentum()
		if math.Abs(jx-jx0)+math.Abs(jy-jy0)+math.Abs(jz-jz0) > 1e-11 {
			t.Fatalf("step %d: momentum drifted to (%g,%g,%g) from (%g,%g,%g)",
				s, jx, jy, jz, jx0, jy0, jz0)
		}
	}
}

// FuzzAAStep drives random small grids for random step counts through the
// AA stepper (randomly blocked) and asserts bit-identity with the
// double-buffer reference plus the mass/momentum oracles at the stopping
// parity.
func FuzzAAStep(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(4), uint8(4), uint8(3), false)
	f.Add(int64(2), uint8(6), uint8(3), uint8(8), uint8(4), true)
	f.Add(int64(3), uint8(2), uint8(2), uint8(2), uint8(1), false)
	f.Add(int64(4), uint8(5), uint8(5), uint8(5), uint8(6), true)
	f.Fuzz(func(t *testing.T, seed int64, nx, ny, nz, steps uint8, walls bool) {
		dim := func(v uint8) int { return 2 + int(v)%7 }
		NX, NY, NZ := dim(nx), dim(ny), dim(nz)
		nsteps := 1 + int(steps)%6
		rng := rand.New(rand.NewSource(seed))
		tau := 0.55 + 0.5*rng.Float64()

		mk := func() *Lattice {
			l, err := NewLattice(&lattice.D3Q19, NX, NY, NZ, tau)
			if err != nil {
				t.Fatalf("NewLattice: %v", err)
			}
			r := rand.New(rand.NewSource(seed + 1))
			for y := 0; y < NY; y++ {
				for x := 0; x < NX; x++ {
					for z := 0; z < NZ; z++ {
						l.SetCell(x, y, z, 1+0.1*(r.Float64()-0.5),
							0.04*(r.Float64()-0.5), 0.04*(r.Float64()-0.5), 0.04*(r.Float64()-0.5))
					}
				}
			}
			if walls && NX > 2 && NY > 2 && NZ > 2 {
				r2 := rand.New(rand.NewSource(seed + 2))
				l.SetWall(1+r2.Intn(NX-2), 1+r2.Intn(NY-2), 1+r2.Intn(NZ-2))
			}
			return l
		}
		ref, aa := mk(), mk()
		aa.EnableAA()
		if rng.Intn(2) == 0 {
			aa.SetAATiles(1+rng.Intn(4), 1+rng.Intn(8))
		}
		m0 := aa.TotalMass()
		for s := 0; s < nsteps; s++ {
			ref.PeriodicAll()
			aa.PeriodicAll()
			ref.StepFused()
			aa.StepFused()
		}
		var fr, fa []float64
		for y := 0; y < NY; y++ {
			for x := 0; x < NX; x++ {
				for z := 0; z < NZ; z++ {
					if ref.Flags[ref.Idx(x, y, z)] != Fluid {
						continue
					}
					fr = ref.Populations(x, y, z, fr)
					fa = aa.Populations(x, y, z, fa)
					for q := range fr {
						if math.Float64bits(fr[q]) != math.Float64bits(fa[q]) {
							t.Fatalf("cell (%d,%d,%d) pop %d after %d steps: ref %v aa %v",
								x, y, z, q, nsteps, fr[q], fa[q])
						}
					}
				}
			}
		}
		if !walls { // walls break exact mass conservation bookkeeping here
			if d := math.Abs(aa.TotalMass() - m0); d > 1e-12*math.Abs(m0) {
				t.Fatalf("mass drifted by %g after %d steps (parity %d)", d, nsteps, nsteps&1)
			}
		}
	})
}

func benchAALattice(b *testing.B, ty, tz int) *Lattice {
	b.Helper()
	l, err := NewLattice(&lattice.D3Q19, 48, 48, 48, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	l.InitEquilibrium(1, 0.02, 0.01, 0.005)
	l.EnableAA()
	if ty > 0 || tz > 0 {
		l.SetAATiles(ty, tz)
	}
	return l
}

func BenchmarkAAStep48(b *testing.B) {
	l := benchAALattice(b, 0, 0)
	cells := float64(48 * 48 * 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PeriodicAll()
		l.StepFused()
	}
	b.StopTimer()
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUPS")
}

func BenchmarkAABlocked48(b *testing.B) {
	l := benchAALattice(b, 8, 48)
	cells := float64(48 * 48 * 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PeriodicAll()
		l.StepFused()
	}
	b.StopTimer()
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUPS")
}

func BenchmarkAAPool48(b *testing.B) {
	l := benchAALattice(b, 8, 48)
	p := NewPool(l, 4)
	defer p.Close()
	cells := float64(48 * 48 * 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PeriodicAll()
		p.Step()
	}
	b.StopTimer()
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUPS")
}
