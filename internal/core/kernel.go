package core

import "math"

// MaxQ is the largest velocity set the kernels support (D3Q27). The hot
// kernels keep their per-cell scratch in fixed-size stack arrays of this
// length so the inner loops stay allocation-free (the //lbm:hot contract,
// enforced by lbmvet's hotalloc rule); NewLattice rejects descriptors
// that exceed it.
const MaxQ = 27

// StepFused advances the lattice one time step using the fused pull-scheme
// collide–stream kernel (§IV-A of the paper): a single loop over the
// domain gathers the post-collision populations of the previous step from
// the neighbouring cells (streaming), relaxes them towards equilibrium
// (collision) and stores the result into the other A–B buffer.
//
// Populations pulled from Wall/MovingWall neighbours are replaced by the
// half-way bounce-back reflection, with the moving-wall momentum correction
// where applicable.
func (l *Lattice) StepFused() {
	if l.aa {
		l.stepAAYRange(0, l.NY)
		l.step++
		return
	}
	l.stepRange(0, l.NY)
	l.src = 1 - l.src
	l.step++
}

// StepRegion applies the fused update to the sub-block x0 ≤ x < x1,
// y0 ≤ y < y1 (all z), writing into the destination buffer WITHOUT
// swapping. It enables the paper's on-the-fly halo exchange (§IV-C-1,
// Fig. 6): compute the inner region while communication is in flight,
// then the boundary strips, then CompleteStep. Regions must tile the
// interior exactly once before CompleteStep is called.
func (l *Lattice) StepRegion(x0, x1, y0, y1 int) {
	if l.aa {
		l.stepAARegionZ(x0, x1, y0, y1, 0, l.NZ)
		return
	}
	l.stepRegion(x0, x1, y0, y1)
}

// CompleteStep swaps the A–B buffers after a set of StepRegion calls that
// together covered the whole interior (for AA lattices there is nothing
// to swap — the step counter advances, flipping the layout phase).
func (l *Lattice) CompleteStep() {
	if l.aa {
		l.step++
		return
	}
	l.src = 1 - l.src
	l.step++
}

// stepRange applies the fused kernel to interior rows y0 ≤ y < y1. It is
// the unit of work for the goroutine-parallel driver.
func (l *Lattice) stepRange(y0, y1 int) {
	l.stepRegion(0, l.NX, y0, y1)
}

// stepRegion dispatches to the unrolled D3Q19 kernel when it applies
// (bit-identical, faster) and to the generic kernel otherwise.
func (l *Lattice) stepRegion(x0, x1, y0, y1 int) {
	if l.useFastPath() {
		l.stepRegionD3Q19(x0, x1, y0, y1)
		return
	}
	l.stepRegionGeneric(x0, x1, y0, y1)
}

// stepRegionGeneric is the descriptor-generic fused pull collide–stream
// kernel over an x/y sub-range.
//
// Per-cell traffic (bulk path, D3Q19): 19 population pulls + 19 pushes
// of float64 plus ~20 flag bytes — within the paper's §III-B ~380 B/cell
// roofline budget for the fused step.
//
//lbm:hot traffic budget=380 assume q=19
func (l *Lattice) stepRegionGeneric(x0, x1, y0, y1 int) {
	d := l.Desc
	q := d.Q
	n := l.N
	src := l.F[l.src]
	dst := l.F[1-l.src]
	invTau := 1.0 / l.Tau
	les := l.Smagorinsky > 0
	fx, fy, fz := l.Force[0], l.Force[1], l.Force[2]
	forced := fx != 0 || fy != 0 || fz != 0

	// Per-goroutine scratch on the stack (q ≤ MaxQ by construction; no
	// heap allocation anywhere in the kernel).
	var fArr, feqArr [MaxQ]float64
	f, feq := fArr[:q], feqArr[:q]

	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			rowBase := l.Idx(x, y, 0)
			for z := 0; z < l.NZ; z++ {
				idx := rowBase + z
				if l.Flags[idx] != Fluid {
					continue
				}
				// Gather (pull streaming) with bounce-back.
				for i := 0; i < q; i++ {
					from := idx - l.offs[i]
					switch l.Flags[from] {
					case Wall:
						f[i] = src[d.Opp[i]*n+idx]
					case MovingWall:
						uw := l.WallVel[from]
						c := d.C[i]
						cu := float64(c[0])*uw[0] + float64(c[1])*uw[1] + float64(c[2])*uw[2]
						f[i] = src[d.Opp[i]*n+idx] + 6*d.W[i]*cu
					default:
						f[i] = src[i*n+from]
					}
				}
				// Moments.
				var rho, jx, jy, jz float64
				for i := 0; i < q; i++ {
					fi := f[i]
					rho += fi
					c := d.C[i]
					jx += fi * float64(c[0])
					jy += fi * float64(c[1])
					jz += fi * float64(c[2])
				}
				invRho := 1.0 / rho
				ux, uy, uz := jx*invRho, jy*invRho, jz*invRho
				if forced {
					// Guo forcing: the velocity entering the
					// equilibrium is shifted by half the force.
					half := 0.5 * invRho
					ux += half * fx
					uy += half * fy
					uz += half * fz
				}
				// Equilibrium.
				// Canonical FMA evaluation order (lattice.Equilibrium).
				onem := 1 - 1.5*math.FMA(uz, uz, math.FMA(uy, uy, ux*ux))
				for i := 0; i < q; i++ {
					c := d.C[i]
					cu := float64(c[0])*ux + float64(c[1])*uy + float64(c[2])*uz
					h := 4.5 * cu
					feq[i] = d.W[i] * rho * (math.FMA(h, cu, onem) + 3*cu)
				}
				omega := invTau
				if les {
					omega = 1.0 / l.smagorinskyTau(f, feq, rho)
				}
				// Relax and store (collision).
				if forced {
					fw := 1 - 0.5*omega
					for i := 0; i < q; i++ {
						c := d.C[i]
						cx, cy, cz := float64(c[0]), float64(c[1]), float64(c[2])
						cu := cx*ux + cy*uy + cz*uz
						si := d.W[i] * (3*((cx-ux)*fx+(cy-uy)*fy+(cz-uz)*fz) +
							9*cu*(cx*fx+cy*fy+cz*fz))
						dst[i*n+idx] = math.FMA(-omega, f[i]-feq[i], f[i]) + fw*si
					}
				} else {
					for i := 0; i < q; i++ {
						dst[i*n+idx] = math.FMA(-omega, f[i]-feq[i], f[i])
					}
				}
			}
		}
	}
}

// smagorinskyTau returns the effective relaxation time of the Smagorinsky
// LES model: the self-consistent solution of
//
//	τ_eff = ½ (τ₀ + sqrt(τ₀² + 18√2 C² |Π|/ρ)),
//
// where Π is the non-equilibrium momentum flux tensor Σ c c (f − f^eq).
//
// O(Q) over stack scratch only — no per-cell main-memory traffic of its
// own (the caller's gather already paid for f/feq).
//
//lbm:hot traffic budget=0 assume d.Q=19
func (l *Lattice) smagorinskyTau(f, feq []float64, rho float64) float64 {
	d := l.Desc
	var pxx, pyy, pzz, pxy, pxz, pyz float64
	for i := 0; i < d.Q; i++ {
		fneq := f[i] - feq[i]
		c := d.C[i]
		cx, cy, cz := float64(c[0]), float64(c[1]), float64(c[2])
		pxx += fneq * cx * cx
		pyy += fneq * cy * cy
		pzz += fneq * cz * cz
		pxy += fneq * cx * cy
		pxz += fneq * cx * cz
		pyz += fneq * cy * cz
	}
	piNorm := math.Sqrt(pxx*pxx + pyy*pyy + pzz*pzz + 2*(pxy*pxy+pxz*pxz+pyz*pyz))
	c2 := l.Smagorinsky * l.Smagorinsky
	t0 := l.Tau
	return 0.5 * (t0 + math.Sqrt(t0*t0+18*math.Sqrt2*c2*piNorm/rho))
}

// CollideOnly performs the collision phase in place on the current buffer
// without streaming. Together with StreamOnly it forms the unfused
// two-pass update used as the baseline in the kernel-fusion ablation
// (Fig. 8); StepFused is exactly equivalent to StreamOnly followed by
// CollideOnly (both conventions keep post-collision values in the buffer).
//
// Per-cell traffic: 19 reads + 19 writes of the same buffer plus the
// flag byte — cheaper than the fused step only because the gather needs
// no neighbour flag checks.
//
//lbm:hot traffic budget=380 assume q=19
func (l *Lattice) CollideOnly() {
	d := l.Desc
	q := d.Q
	n := l.N
	src := l.F[l.src]
	invTau := 1.0 / l.Tau
	les := l.Smagorinsky > 0
	fx, fy, fz := l.Force[0], l.Force[1], l.Force[2]
	forced := fx != 0 || fy != 0 || fz != 0
	var fArr, feqArr [MaxQ]float64
	f, feq := fArr[:q], feqArr[:q]
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			rowBase := l.Idx(x, y, 0)
			for z := 0; z < l.NZ; z++ {
				idx := rowBase + z
				if l.Flags[idx] != Fluid {
					continue
				}
				for i := 0; i < q; i++ {
					f[i] = src[i*n+idx]
				}
				var rho, jx, jy, jz float64
				for i := 0; i < q; i++ {
					fi := f[i]
					rho += fi
					c := d.C[i]
					jx += fi * float64(c[0])
					jy += fi * float64(c[1])
					jz += fi * float64(c[2])
				}
				invRho := 1.0 / rho
				ux, uy, uz := jx*invRho, jy*invRho, jz*invRho
				if forced {
					half := 0.5 * invRho
					ux += half * fx
					uy += half * fy
					uz += half * fz
				}
				// Canonical FMA evaluation order (lattice.Equilibrium).
				onem := 1 - 1.5*math.FMA(uz, uz, math.FMA(uy, uy, ux*ux))
				for i := 0; i < q; i++ {
					c := d.C[i]
					cu := float64(c[0])*ux + float64(c[1])*uy + float64(c[2])*uz
					h := 4.5 * cu
					feq[i] = d.W[i] * rho * (math.FMA(h, cu, onem) + 3*cu)
				}
				omega := invTau
				if les {
					omega = 1.0 / l.smagorinskyTau(f, feq, rho)
				}
				if forced {
					fw := 1 - 0.5*omega
					for i := 0; i < q; i++ {
						c := d.C[i]
						cx, cy, cz := float64(c[0]), float64(c[1]), float64(c[2])
						cu := cx*ux + cy*uy + cz*uz
						si := d.W[i] * (3*((cx-ux)*fx+(cy-uy)*fy+(cz-uz)*fz) +
							9*cu*(cx*fx+cy*fy+cz*fz))
						src[i*n+idx] = math.FMA(-omega, f[i]-feq[i], f[i]) + fw*si
					}
				} else {
					for i := 0; i < q; i++ {
						src[i*n+idx] = math.FMA(-omega, f[i]-feq[i], f[i])
					}
				}
			}
		}
	}
}

// StreamOnly performs the streaming phase (pull, with bounce-back) from the
// current buffer into the other A–B buffer and swaps. CollideOnly must run
// afterwards to complete one unfused time step.
//
// Per-cell traffic: 19 neighbour pulls + 19 pushes plus ~20 flag bytes,
// the same roofline class as the fused step — which is exactly why the
// two-pass baseline loses (Fig. 8): it pays this twice per time step.
//
//lbm:hot traffic budget=380 assume q=19
func (l *Lattice) StreamOnly() {
	d := l.Desc
	q := d.Q
	n := l.N
	src := l.F[l.src]
	dst := l.F[1-l.src]
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			rowBase := l.Idx(x, y, 0)
			for z := 0; z < l.NZ; z++ {
				idx := rowBase + z
				if l.Flags[idx] != Fluid {
					continue
				}
				for i := 0; i < q; i++ {
					from := idx - l.offs[i]
					switch l.Flags[from] {
					case Wall:
						dst[i*n+idx] = src[d.Opp[i]*n+idx]
					case MovingWall:
						uw := l.WallVel[from]
						c := d.C[i]
						cu := float64(c[0])*uw[0] + float64(c[1])*uw[1] + float64(c[2])*uw[2]
						dst[i*n+idx] = src[d.Opp[i]*n+idx] + 6*d.W[i]*cu
					default:
						dst[i*n+idx] = src[i*n+from]
					}
				}
			}
		}
	}
	l.src = 1 - l.src
	l.step++
}

// StepUnfused advances one time step with the separate stream and collide
// passes (the pre-fusion baseline of Fig. 8). It produces bit-identical
// results to StepFused.
func (l *Lattice) StepUnfused() {
	l.StreamOnly()
	l.CollideOnly()
}
