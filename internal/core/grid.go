// Package core implements the heart of SunwayLB: the D3Q19 lattice
// Boltzmann solver with structure-of-arrays population storage, the A–B
// (ping-pong) double-buffer memory layout and the fused pull-scheme
// collide–stream kernel described in §IV of the paper.
//
// The computational domain is a block of NX×NY×NZ interior cells surrounded
// by a single layer of halo (ghost) cells. Populations are stored with the
// z coordinate contiguous in memory (the paper blocks data along z for DMA
// efficiency), then x, then y.
package core

import (
	"fmt"

	"sunwaylb/internal/lattice"
)

// CellType classifies a lattice cell.
type CellType uint8

const (
	// Fluid cells are updated by the collide–stream kernel.
	Fluid CellType = iota
	// Wall cells are solid no-slip obstacles handled by half-way
	// bounce-back: a population pulled from a Wall neighbour reflects.
	Wall
	// MovingWall cells are solid cells with a prescribed wall velocity
	// (e.g. the lid of a lid-driven cavity); bounce-back picks up a
	// momentum correction term.
	MovingWall
	// Ghost cells form the halo ring. Their populations are supplied
	// externally (by periodic wrap, halo exchange or a boundary
	// condition) and are pulled from directly during streaming.
	Ghost
)

// String implements fmt.Stringer for diagnostics.
func (c CellType) String() string {
	switch c {
	case Fluid:
		return "Fluid"
	case Wall:
		return "Wall"
	case MovingWall:
		return "MovingWall"
	case Ghost:
		return "Ghost"
	}
	return fmt.Sprintf("CellType(%d)", uint8(c))
}

// Lattice is a block of D3Q19 (or other descriptor) lattice cells with
// double-buffered SoA population storage.
//
// Interior cells have coordinates 0 ≤ x < NX, 0 ≤ y < NY, 0 ≤ z < NZ.
// The halo ring has coordinates −1 and NX (resp. NY, NZ).
type Lattice struct {
	Desc *lattice.Descriptor

	// NX, NY, NZ are the interior dimensions.
	NX, NY, NZ int
	// AX, AY, AZ are the allocated dimensions (interior + 2 halo layers).
	AX, AY, AZ int
	// N is the number of allocated cells (AX·AY·AZ).
	N int

	// F holds the two population copies of the A–B pattern. Population q
	// of cell idx lives at F[b][q*N+idx]. F[src] holds the post-collision
	// values of the previous step; the fused kernel gathers from it and
	// writes into F[1−src].
	F [2][]float64

	// Flags holds the cell classification for every allocated cell.
	Flags []CellType

	// WallVel maps MovingWall cell indices to their wall velocity.
	WallVel map[int][3]float64

	// Tau is the LBGK relaxation time.
	Tau float64
	// Force is a constant body force density applied via the Guo forcing
	// scheme (zero disables forcing). Used to drive channel flows and
	// wind fields.
	Force [3]float64
	// Smagorinsky is the Smagorinsky constant C_s of the LES model;
	// zero disables the subgrid model (pure DNS/LBGK).
	Smagorinsky float64

	// src selects which of the two buffers holds the current state.
	src int
	// step counts completed time steps.
	step int

	// offs[q] is the linear index offset of neighbour c_q.
	offs []int

	// aa selects single-array AA-pattern storage (see aa.go): F[0] is the
	// only buffer and the in-array layout alternates with step parity.
	aa bool
	// aaTileY, aaTileZ are the cache-blocking tile extents of the AA
	// stepper (0 = unblocked).
	aaTileY, aaTileZ int

	// noFastPath disables the unrolled D3Q19 kernel (testing hook).
	noFastPath bool
}

// NewLattice allocates a lattice of nx×ny×nz interior cells using the given
// descriptor and relaxation time. All interior cells start as Fluid and all
// halo cells as Ghost; populations are initialised to the rest equilibrium
// (ρ=1, u=0).
func NewLattice(desc *lattice.Descriptor, nx, ny, nz int, tau float64) (*Lattice, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("core: invalid dimensions %d×%d×%d", nx, ny, nz)
	}
	if tau <= 0.5 {
		return nil, fmt.Errorf("core: relaxation time %v must exceed 0.5 for positive viscosity", tau)
	}
	if desc.Q > MaxQ {
		return nil, fmt.Errorf("core: descriptor %s has %d velocities, more than the supported maximum %d", desc.Name, desc.Q, MaxQ)
	}
	ax, ay, az := nx+2, ny+2, nz+2
	n := ax * ay * az
	lat := &Lattice{
		Desc: desc,
		NX:   nx, NY: ny, NZ: nz,
		AX: ax, AY: ay, AZ: az,
		N:       n,
		Flags:   make([]CellType, n),
		WallVel: make(map[int][3]float64),
		Tau:     tau,
	}
	lat.F[0] = make([]float64, desc.Q*n)
	lat.F[1] = make([]float64, desc.Q*n)
	lat.offs = make([]int, desc.Q)
	for q := 0; q < desc.Q; q++ {
		c := desc.C[q]
		lat.offs[q] = c[1]*ax*az + c[0]*az + c[2]
	}
	for i := range lat.Flags {
		lat.Flags[i] = Ghost
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			for z := 0; z < nz; z++ {
				lat.Flags[lat.Idx(x, y, z)] = Fluid
			}
		}
	}
	lat.InitEquilibrium(1.0, 0, 0, 0)
	return lat, nil
}

// Idx returns the linear index of interior coordinates (x, y, z); halo
// coordinates −1 and N{X,Y,Z} are also valid.
func (l *Lattice) Idx(x, y, z int) int {
	return ((y+1)*l.AX+(x+1))*l.AZ + (z + 1)
}

// Coords inverts Idx, returning interior coordinates (halo cells yield −1
// or the interior dimension).
func (l *Lattice) Coords(idx int) (x, y, z int) {
	z = idx%l.AZ - 1
	idx /= l.AZ
	x = idx%l.AX - 1
	y = idx/l.AX - 1
	return
}

// Step returns the number of completed time steps.
func (l *Lattice) Step() int { return l.step }

// SetStep overrides the step counter; used by checkpoint restart.
func (l *Lattice) SetStep(s int) { l.step = s }

// Src returns the buffer currently holding the lattice state (the
// post-collision populations of the last completed step). For AA lattices
// at an odd step count the in-array layout is the reversed-shifted one —
// index logical populations through PopIndex/PopBase, not i*N+idx.
func (l *Lattice) Src() []float64 { return l.F[l.src] }

// Dst returns the buffer the next fused step will write into (nil for AA
// lattices, which update in place).
func (l *Lattice) Dst() []float64 { return l.F[1-l.src] }

// SwapBuffers flips the A–B buffers; used by kernels that run the update
// out-of-place externally (e.g. the Sunway-simulated solver). AA lattices
// have a single buffer and panic here.
func (l *Lattice) SwapBuffers() {
	if l.aa {
		panic("core: SwapBuffers on an AA-pattern lattice (single buffer; use StepFused)")
	}
	l.src = 1 - l.src
	l.step++
}

// InitEquilibrium sets every allocated cell of both buffers (or of the
// single AA array, phase-aware) to the equilibrium distribution of the
// given uniform state.
func (l *Lattice) InitEquilibrium(rho, ux, uy, uz float64) {
	feq := make([]float64, l.Desc.Q)
	l.Desc.EquilibriumAll(feq, rho, ux, uy, uz)
	if l.aaOddPhase() {
		for idx := 0; idx < l.N; idx++ {
			for q := 0; q < l.Desc.Q; q++ {
				l.F[0][l.PopIndex(q, idx)] = feq[q]
			}
		}
		return
	}
	for q := 0; q < l.Desc.Q; q++ {
		base := q * l.N
		for i := 0; i < l.N; i++ {
			l.F[0][base+i] = feq[q]
			if l.F[1] != nil {
				l.F[1][base+i] = feq[q]
			}
		}
	}
}

// SetCell sets the populations of one cell (in the current buffer) to the
// equilibrium of the given state. Used to impose initial conditions.
func (l *Lattice) SetCell(x, y, z int, rho, ux, uy, uz float64) {
	feq := make([]float64, l.Desc.Q)
	l.Desc.EquilibriumAll(feq, rho, ux, uy, uz)
	idx := l.Idx(x, y, z)
	for q := 0; q < l.Desc.Q; q++ {
		l.F[l.src][l.PopIndex(q, idx)] = feq[q]
	}
}

// SetWall marks the cell as a solid no-slip wall.
func (l *Lattice) SetWall(x, y, z int) {
	idx := l.Idx(x, y, z)
	l.Flags[idx] = Wall
	delete(l.WallVel, idx)
}

// SetMovingWall marks the cell as a solid wall moving with velocity u.
func (l *Lattice) SetMovingWall(x, y, z int, ux, uy, uz float64) {
	idx := l.Idx(x, y, z)
	l.Flags[idx] = MovingWall
	l.WallVel[idx] = [3]float64{ux, uy, uz}
}

// SetFluid marks the cell as ordinary fluid.
func (l *Lattice) SetFluid(x, y, z int) {
	idx := l.Idx(x, y, z)
	l.Flags[idx] = Fluid
	delete(l.WallVel, idx)
}

// CellTypeAt returns the flag of the given (possibly halo) cell.
func (l *Lattice) CellTypeAt(x, y, z int) CellType { return l.Flags[l.Idx(x, y, z)] }

// FluidCells counts the interior fluid cells.
func (l *Lattice) FluidCells() int {
	n := 0
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				if l.Flags[l.Idx(x, y, z)] == Fluid {
					n++
				}
			}
		}
	}
	return n
}

// Populations copies the Q populations of a cell from the current buffer
// into out (length ≥ Q) and returns it; out==nil allocates.
func (l *Lattice) Populations(x, y, z int, out []float64) []float64 {
	if out == nil {
		out = make([]float64, l.Desc.Q)
	}
	idx := l.Idx(x, y, z)
	for q := 0; q < l.Desc.Q; q++ {
		out[q] = l.F[l.src][l.PopIndex(q, idx)]
	}
	return out
}

// SetPopulations writes the Q populations of a cell into the current buffer.
func (l *Lattice) SetPopulations(x, y, z int, f []float64) {
	idx := l.Idx(x, y, z)
	for q := 0; q < l.Desc.Q; q++ {
		l.F[l.src][l.PopIndex(q, idx)] = f[q]
	}
}
