package core

import (
	"runtime"
	"sync"
)

// StepFusedParallel advances one time step with the fused kernel, splitting
// the y rows across the given number of worker goroutines. workers ≤ 0
// selects GOMAXPROCS. The pull scheme writes only into the destination
// buffer and reads only the source buffer (and the AA kernels' write sets
// are read only by the owning cell), so rows are embarrassingly parallel;
// results are bit-identical to StepFused. This spawns goroutines per step;
// long-running multi-core loops should prefer the persistent Pool.
func (l *Lattice) StepFusedParallel(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > l.NY {
		workers = l.NY
	}
	if workers <= 1 {
		l.StepFused()
		return
	}
	var wg sync.WaitGroup
	chunk := (l.NY + workers - 1) / workers
	for w := 0; w < workers; w++ {
		y0 := w * chunk
		y1 := y0 + chunk
		if y1 > l.NY {
			y1 = l.NY
		}
		if y0 >= y1 {
			break
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			if l.aa {
				l.stepAAYRange(a, b)
			} else {
				l.stepRange(a, b)
			}
		}(y0, y1)
	}
	wg.Wait()
	if !l.aa {
		l.src = 1 - l.src
	}
	l.step++
}
