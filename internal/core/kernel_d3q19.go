package core

// This file is the host-level analogue of the paper's assembly-code
// optimization (§IV-C-4: "manual loop unroll and instruction scheduling"):
// a D3Q19-specialised fused kernel with the direction loops unrolled,
// the ±1/0 velocity components folded into the address arithmetic and the
// moment sums, and the per-direction equilibrium expressions expanded.
//
// The unrolling is arranged so every floating-point operation happens in
// exactly the order of the generic kernel (terms multiplied by zero are
// exact no-ops and may be dropped; ±1 multiplications are exact), so the
// results are bit-identical to stepRegionGeneric — verified by tests.
// The fast path covers the common DNS configuration (no LES, no body
// force); other configurations fall back to the generic kernel.

import (
	"math"

	"sunwaylb/internal/lattice"
)

// D3Q19 direction index map (see lattice.D3Q19):
//
//	 0: ( 0, 0, 0)   1: (+1, 0, 0)   2: (−1, 0, 0)   3: ( 0,+1, 0)
//	 4: ( 0,−1, 0)   5: ( 0, 0,+1)   6: ( 0, 0,−1)   7: (+1,+1, 0)
//	 8: (−1,−1, 0)   9: (+1,−1, 0)  10: (−1,+1, 0)  11: (+1, 0,+1)
//	12: (−1, 0,−1)  13: (+1, 0,−1)  14: (−1, 0,+1)  15: ( 0,+1,+1)
//	16: ( 0,−1,−1)  17: ( 0,+1,−1)  18: ( 0,−1,+1)
const (
	w0 = 1.0 / 3.0
	w1 = 1.0 / 18.0
	w2 = 1.0 / 36.0
)

// useFastPath reports whether the unrolled kernel applies.
func (l *Lattice) useFastPath() bool {
	return l.Desc == &lattice.D3Q19 && l.Smagorinsky == 0 &&
		l.Force == [3]float64{} && !l.noFastPath
}

// stepRegionD3Q19 is the unrolled fused pull collide–stream kernel.
//
// Per-cell traffic on the clean (all-fluid-neighbour) path: 19 pulls +
// 19 pushes of float64 plus the ~20 flag bytes of the clean check — the
// paper's §III-B ~380 B/cell fused-step budget.
//
//lbm:hot traffic budget=380
func (l *Lattice) stepRegionD3Q19(x0, x1, y0, y1 int) {
	src := l.F[l.src]
	dst := l.F[1-l.src]
	n := l.N
	nTau := -1.0 / l.Tau
	flags := l.Flags
	d := l.Desc

	// Neighbour offsets, hoisted.
	var off [19]int
	copy(off[:], l.offs)

	var f [19]float64
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			rowBase := l.Idx(x, y, 0)
			for z := 0; z < l.NZ; z++ {
				idx := rowBase + z
				if flags[idx] != Fluid {
					continue
				}
				// Gather with bounce-back, unrolled. A wall
				// neighbour reflects the cell's own opposite
				// population; a moving wall is rare enough to
				// share the generic helper.
				clean := true
				for i := 1; i < 19; i++ {
					from := idx - off[i]
					if fl := flags[from]; fl == Wall || fl == MovingWall {
						clean = false
						break
					}
				}
				if clean {
					f[0] = src[idx]
					f[1] = src[1*n+idx-off[1]]
					f[2] = src[2*n+idx-off[2]]
					f[3] = src[3*n+idx-off[3]]
					f[4] = src[4*n+idx-off[4]]
					f[5] = src[5*n+idx-off[5]]
					f[6] = src[6*n+idx-off[6]]
					f[7] = src[7*n+idx-off[7]]
					f[8] = src[8*n+idx-off[8]]
					f[9] = src[9*n+idx-off[9]]
					f[10] = src[10*n+idx-off[10]]
					f[11] = src[11*n+idx-off[11]]
					f[12] = src[12*n+idx-off[12]]
					f[13] = src[13*n+idx-off[13]]
					f[14] = src[14*n+idx-off[14]]
					f[15] = src[15*n+idx-off[15]]
					f[16] = src[16*n+idx-off[16]]
					f[17] = src[17*n+idx-off[17]]
					f[18] = src[18*n+idx-off[18]]
				} else {
					for i := 0; i < 19; i++ {
						from := idx - off[i]
						switch flags[from] {
						case Wall:
							f[i] = src[d.Opp[i]*n+idx]
						case MovingWall:
							uw := l.WallVel[from]
							c := d.C[i]
							cu := float64(c[0])*uw[0] + float64(c[1])*uw[1] + float64(c[2])*uw[2]
							f[i] = src[d.Opp[i]*n+idx] + 6*d.W[i]*cu
						default:
							f[i] = src[i*n+from]
						}
					}
				}

				// Moments, unrolled in ascending direction order
				// (the +0 terms of the generic loop are exact
				// no-ops).
				rho := f[0] + f[1] + f[2] + f[3] + f[4] + f[5] + f[6] +
					f[7] + f[8] + f[9] + f[10] + f[11] + f[12] + f[13] +
					f[14] + f[15] + f[16] + f[17] + f[18]
				jx := f[1] - f[2] + f[7] - f[8] + f[9] - f[10] + f[11] - f[12] + f[13] - f[14]
				jy := f[3] - f[4] + f[7] - f[8] - f[9] + f[10] + f[15] - f[16] + f[17] - f[18]
				jz := f[5] - f[6] + f[11] - f[12] - f[13] + f[14] + f[15] - f[16] - f[17] + f[18]
				invRho := 1.0 / rho
				ux, uy, uz := jx*invRho, jy*invRho, jz*invRho
				onem := 1 - 1.5*math.FMA(uz, uz, math.FMA(uy, uy, ux*ux))
				wr1, wr2 := w1*rho, w2*rho

				// Canonical FMA collide (see lattice.Equilibrium), with
				// every ± direction pair sharing the symmetric part
				// s = fma(4.5cu, cu, 1−1.5|u|²) of its two equilibria:
				// feq_± = wr·(s ± 3cu). Negation, the 4.5cu·cu product
				// and s are sign-symmetric, so this reproduces the
				// per-direction canon — and the generic kernel — bit
				// for bit.
				dst[idx] = math.FMA(nTau, f[0]-w0*rho*onem, f[0])
				pair := func(i, o int, cu, wr float64) {
					h := 4.5 * cu
					s := math.FMA(h, cu, onem)
					c3 := 3 * cu
					dst[i*n+idx] = math.FMA(nTau, f[i]-wr*(s+c3), f[i])
					dst[o*n+idx] = math.FMA(nTau, f[o]-wr*(s-c3), f[o])
				}
				pair(1, 2, ux, wr1)
				pair(3, 4, uy, wr1)
				pair(5, 6, uz, wr1)
				pair(7, 8, ux+uy, wr2)
				pair(9, 10, ux-uy, wr2)
				pair(11, 12, ux+uz, wr2)
				pair(13, 14, ux-uz, wr2)
				pair(15, 16, uy+uz, wr2)
				pair(17, 18, uy-uz, wr2)
			}
		}
	}
}
