package core

import "math"

// AA-pattern in-place streaming (Bailey et al.; miniLB): one distribution
// array instead of the A–B pair, with the storage layout alternating
// between two phases keyed off the step-count parity.
//
// Even phase (after an even number of completed steps) the array is in the
// natural layout — population i of cell y lives at F[0][i*N+idx(y)],
// exactly the Src() layout of the double-buffer scheme, so every consumer
// (macro moments, halo packing, checkpoints, boundary conditions) works
// unchanged at even parity.
//
// Odd phase (after an odd number of steps) population i of cell y lives in
// the reversed-shifted slot
//
//	F[0][Opp[i]*N + idx(y) + offs[i]]        (slot Opp[i] of cell y+c_i)
//
// whenever y+c_i is still inside the allocated extent, and in the cell's
// own natural slot i otherwise. The fallback is exact, not a compromise:
// slot i of cell y is unused by the shifted rule precisely when y+c_i
// leaves the allocation, so the combined map is a bijection on the whole
// q×N slot space and every logical population of every allocated cell has
// exactly one home at both parities. PopIndex implements the map;
// phase-dependent code (halo wrap, face pack/unpack, boundary conditions,
// snapshot capture) goes through it and inherits correctness from the
// bijection.
//
// The even-step kernel gathers exactly like the double-buffer pull kernel
// and scatters each post-collision population i into slot Opp[i] of the
// downwind neighbour y+c_i (writes into wall and halo cells deliberately
// park outbound populations where the odd step and the halo exchange
// expect them). The odd-step kernel gathers from the cell's own slots and
// writes back in natural order, restoring the even layout. Both steps read
// and write disjoint slot sets across cells (only the owning cell reads
// what it writes), so rows, tiles and worker pools may process cells in
// any order and remain bit-identical to the serial kernel.

// AA reports whether the lattice uses single-array AA-pattern storage.
func (l *Lattice) AA() bool { return l.aa }

// aaOddPhase reports whether the storage is currently in the odd
// (reversed-shifted) layout.
func (l *Lattice) aaOddPhase() bool { return l.aa && l.step&1 == 1 }

// EnableAA switches the lattice to single-array AA-pattern storage,
// releasing the second buffer. The current state is preserved: at an even
// step count the source buffer already is the even-phase layout; at an odd
// step count the populations are permuted into the odd-phase layout so a
// checkpointed odd-parity state can resume in place. Calling it again is a
// no-op. AA lattices advance through StepFused / StepRegion+CompleteStep /
// StepFusedParallel / Pool exactly like double-buffered ones, but
// SwapBuffers (an out-of-place-update escape hatch) panics.
func (l *Lattice) EnableAA() {
	if l.aa {
		return
	}
	cur := l.F[l.src]
	if l.step&1 == 1 {
		tmp := l.F[1-l.src]
		if tmp == nil {
			tmp = make([]float64, len(cur))
		}
		l.aa = true // PopIndex must use the odd-phase map below
		q := l.Desc.Q
		for idx := 0; idx < l.N; idx++ {
			for i := 0; i < q; i++ {
				tmp[l.PopIndex(i, idx)] = cur[i*l.N+idx]
			}
		}
		l.F[0] = tmp
	} else {
		l.aa = true
		l.F[0] = cur
	}
	l.F[1] = nil
	l.src = 0
}

// PopIndex returns the flat index in Src() holding logical population i of
// the allocated cell idx under the current storage phase. For non-AA
// lattices and at even AA parity this is the natural i*N+idx; at odd AA
// parity it applies the reversed-shifted map with the natural-slot
// fallback for populations whose shifted home would leave the allocation
// (possible only for halo cells). Valid for every allocated cell,
// including halo and wall cells.
func (l *Lattice) PopIndex(i, idx int) int {
	if !l.aaOddPhase() {
		return i*l.N + idx
	}
	c := l.Desc.C[i]
	x, y, z := l.Coords(idx)
	x, y, z = x+c[0], y+c[1], z+c[2]
	if x >= -1 && x <= l.NX && y >= -1 && y <= l.NY && z >= -1 && z <= l.NZ {
		return l.Desc.Opp[i]*l.N + idx + l.offs[i]
	}
	return i*l.N + idx
}

// popSlotAA is PopIndex for callers that already know the interior
// coordinates (x, y, z) of cell idx (halo coordinates −1 and N{X,Y,Z}
// included): it skips the div/mod coordinate recovery, which dominates
// PopIndex's cost in halo-layer loops. Valid at odd AA parity only.
func (l *Lattice) popSlotAA(i, idx, x, y, z int) int {
	c := l.Desc.C[i]
	x, y, z = x+c[0], y+c[1], z+c[2]
	if x >= -1 && x <= l.NX && y >= -1 && y <= l.NY && z >= -1 && z <= l.NZ {
		return l.Desc.Opp[i]*l.N + idx + l.offs[i]
	}
	return i*l.N + idx
}

// PopBase returns the base offset b such that Src()[b+idx] is logical
// population i of cell idx, valid for interior cells only (an interior
// cell's shifted slot never leaves the allocation, so the base is uniform
// across the interior). Hot interior loops hoist the Q bases once instead
// of calling PopIndex per cell.
func (l *Lattice) PopBase(i int) int {
	if l.aaOddPhase() {
		return l.Desc.Opp[i]*l.N + l.offs[i]
	}
	return i * l.N
}

// SetAATiles sets the cache-blocking tile extents of the AA stepper: the
// y and z loops are processed in ty×tz blocks so a tile's populations stay
// resident across the gather and scatter of neighbouring rows. Values ≤ 0
// (the default) disable blocking along that axis. Cells never interact
// within a step, so any tiling is bit-identical to the unblocked sweep.
func (l *Lattice) SetAATiles(ty, tz int) { l.aaTileY, l.aaTileZ = ty, tz }

// AATiles returns the configured tile extents (0 meaning unblocked).
func (l *Lattice) AATiles() (ty, tz int) { return l.aaTileY, l.aaTileZ }

// stepAAYRange applies the current-parity AA kernel to interior rows
// y0 ≤ y < y1, tiled per SetAATiles. It does not advance the step counter;
// it is the unit of work for the serial, spawn-parallel and pool drivers.
func (l *Lattice) stepAAYRange(y0, y1 int) {
	ty, tz := l.aaTileY, l.aaTileZ
	if ty <= 0 || ty > y1-y0 {
		ty = y1 - y0
	}
	if tz <= 0 || tz > l.NZ {
		tz = l.NZ
	}
	for yt := y0; yt < y1; yt += ty {
		ye := yt + ty
		if ye > y1 {
			ye = y1
		}
		for zt := 0; zt < l.NZ; zt += tz {
			ze := zt + tz
			if ze > l.NZ {
				ze = l.NZ
			}
			l.stepAARegionZ(0, l.NX, yt, ye, zt, ze)
		}
	}
}

// stepAARegionZ dispatches one sub-block to the unrolled D3Q19 AA kernel
// of the current parity when the fast path applies, and to the generic
// kernel otherwise.
func (l *Lattice) stepAARegionZ(x0, x1, y0, y1, z0, z1 int) {
	even := l.step&1 == 0
	if l.useFastPath() {
		if even {
			l.stepAAEvenD3Q19(x0, x1, y0, y1, z0, z1)
		} else {
			l.stepAAOddD3Q19(x0, x1, y0, y1, z0, z1)
		}
		return
	}
	if even {
		l.stepAAEvenGeneric(x0, x1, y0, y1, z0, z1)
	} else {
		l.stepAAOddGeneric(x0, x1, y0, y1, z0, z1)
	}
}

// stepAAEvenGeneric is the descriptor-generic even-phase AA kernel over an
// x/y/z sub-block: gather exactly as the double-buffer pull kernel (the
// even layout is the natural one), collide with the same operation order,
// then scatter population i into slot Opp[i] of the downwind neighbour.
//
// Per-cell traffic: 19 pulls + 19 pushes of float64 into a single array
// plus ~20 flag bytes; the single array is what drops the fused step
// below the paper's two-buffer 380 B/cell budget, since the scatter hits
// lines the neighbouring gathers already own instead of a second buffer.
//
//lbm:hot traffic budget=360 assume q=19
func (l *Lattice) stepAAEvenGeneric(x0, x1, y0, y1, z0, z1 int) {
	d := l.Desc
	q := d.Q
	n := l.N
	src := l.F[l.src]
	invTau := 1.0 / l.Tau
	les := l.Smagorinsky > 0
	fx, fy, fz := l.Force[0], l.Force[1], l.Force[2]
	forced := fx != 0 || fy != 0 || fz != 0

	var fArr, feqArr, outArr [MaxQ]float64
	f, feq, out := fArr[:q], feqArr[:q], outArr[:q]

	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			rowBase := l.Idx(x, y, 0)
			for z := z0; z < z1; z++ {
				idx := rowBase + z
				if l.Flags[idx] != Fluid {
					continue
				}
				// Gather (pull streaming) with bounce-back — identical
				// to the double-buffer kernel at even parity.
				for i := 0; i < q; i++ {
					from := idx - l.offs[i]
					switch l.Flags[from] {
					case Wall:
						f[i] = src[d.Opp[i]*n+idx]
					case MovingWall:
						uw := l.WallVel[from]
						c := d.C[i]
						cu := float64(c[0])*uw[0] + float64(c[1])*uw[1] + float64(c[2])*uw[2]
						f[i] = src[d.Opp[i]*n+idx] + 6*d.W[i]*cu
					default:
						f[i] = src[i*n+from]
					}
				}
				// Moments.
				var rho, jx, jy, jz float64
				for i := 0; i < q; i++ {
					fi := f[i]
					rho += fi
					c := d.C[i]
					jx += fi * float64(c[0])
					jy += fi * float64(c[1])
					jz += fi * float64(c[2])
				}
				invRho := 1.0 / rho
				ux, uy, uz := jx*invRho, jy*invRho, jz*invRho
				if forced {
					half := 0.5 * invRho
					ux += half * fx
					uy += half * fy
					uz += half * fz
				}
				// Canonical FMA evaluation order (lattice.Equilibrium).
				onem := 1 - 1.5*math.FMA(uz, uz, math.FMA(uy, uy, ux*ux))
				for i := 0; i < q; i++ {
					c := d.C[i]
					cu := float64(c[0])*ux + float64(c[1])*uy + float64(c[2])*uz
					h := 4.5 * cu
					feq[i] = d.W[i] * rho * (math.FMA(h, cu, onem) + 3*cu)
				}
				omega := invTau
				if les {
					omega = 1.0 / l.smagorinskyTau(f, feq, rho)
				}
				if forced {
					fw := 1 - 0.5*omega
					for i := 0; i < q; i++ {
						c := d.C[i]
						cx, cy, cz := float64(c[0]), float64(c[1]), float64(c[2])
						cu := cx*ux + cy*uy + cz*uz
						si := d.W[i] * (3*((cx-ux)*fx+(cy-uy)*fy+(cz-uz)*fz) +
							9*cu*(cx*fx+cy*fy+cz*fz))
						out[i] = math.FMA(-omega, f[i]-feq[i], f[i]) + fw*si
					}
				} else {
					for i := 0; i < q; i++ {
						out[i] = math.FMA(-omega, f[i]-feq[i], f[i])
					}
				}
				// Reversed-shifted scatter: population i parks in slot
				// Opp[i] of cell idx+c_i (wall and halo cells included).
				for i := 0; i < q; i++ {
					src[d.Opp[i]*n+idx+l.offs[i]] = out[i]
				}
			}
		}
	}
}

// stepAAOddGeneric is the descriptor-generic odd-phase AA kernel: gather
// each population from the cell's own reversed-shifted slots (where the
// even step parked the upwind neighbours' outbound populations), collide,
// and write back in natural order, restoring the even layout. A wall
// neighbour's reflection reads the wall cell's natural slot i — exactly
// where the even scatter of this same cell parked the outbound population.
//
//lbm:hot traffic budget=360 assume q=19
func (l *Lattice) stepAAOddGeneric(x0, x1, y0, y1, z0, z1 int) {
	d := l.Desc
	q := d.Q
	n := l.N
	src := l.F[l.src]
	invTau := 1.0 / l.Tau
	les := l.Smagorinsky > 0
	fx, fy, fz := l.Force[0], l.Force[1], l.Force[2]
	forced := fx != 0 || fy != 0 || fz != 0

	var fArr, feqArr, outArr [MaxQ]float64
	f, feq, out := fArr[:q], feqArr[:q], outArr[:q]

	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			rowBase := l.Idx(x, y, 0)
			for z := z0; z < z1; z++ {
				idx := rowBase + z
				if l.Flags[idx] != Fluid {
					continue
				}
				for i := 0; i < q; i++ {
					from := idx - l.offs[i]
					switch l.Flags[from] {
					case Wall:
						f[i] = src[i*n+from]
					case MovingWall:
						uw := l.WallVel[from]
						c := d.C[i]
						cu := float64(c[0])*uw[0] + float64(c[1])*uw[1] + float64(c[2])*uw[2]
						f[i] = src[i*n+from] + 6*d.W[i]*cu
					default:
						f[i] = src[d.Opp[i]*n+idx]
					}
				}
				var rho, jx, jy, jz float64
				for i := 0; i < q; i++ {
					fi := f[i]
					rho += fi
					c := d.C[i]
					jx += fi * float64(c[0])
					jy += fi * float64(c[1])
					jz += fi * float64(c[2])
				}
				invRho := 1.0 / rho
				ux, uy, uz := jx*invRho, jy*invRho, jz*invRho
				if forced {
					half := 0.5 * invRho
					ux += half * fx
					uy += half * fy
					uz += half * fz
				}
				// Canonical FMA evaluation order (lattice.Equilibrium).
				onem := 1 - 1.5*math.FMA(uz, uz, math.FMA(uy, uy, ux*ux))
				for i := 0; i < q; i++ {
					c := d.C[i]
					cu := float64(c[0])*ux + float64(c[1])*uy + float64(c[2])*uz
					h := 4.5 * cu
					feq[i] = d.W[i] * rho * (math.FMA(h, cu, onem) + 3*cu)
				}
				omega := invTau
				if les {
					omega = 1.0 / l.smagorinskyTau(f, feq, rho)
				}
				if forced {
					fw := 1 - 0.5*omega
					for i := 0; i < q; i++ {
						c := d.C[i]
						cx, cy, cz := float64(c[0]), float64(c[1]), float64(c[2])
						cu := cx*ux + cy*uy + cz*uz
						si := d.W[i] * (3*((cx-ux)*fx+(cy-uy)*fy+(cz-uz)*fz) +
							9*cu*(cx*fx+cy*fy+cz*fz))
						out[i] = math.FMA(-omega, f[i]-feq[i], f[i]) + fw*si
					}
				} else {
					for i := 0; i < q; i++ {
						out[i] = math.FMA(-omega, f[i]-feq[i], f[i])
					}
				}
				// Natural write-back: the even layout is restored.
				for i := 0; i < q; i++ {
					src[i*n+idx] = out[i]
				}
			}
		}
	}
}
