//go:build !amd64

package core

// Non-amd64 builds always take the scalar row kernel.
var useAVX512 = false

var aaKTab [7]float64

func aaRowD3Q19AVX512(gp *[19][]float64, blocks int, nTau float64, k *[7]float64) {
	panic("core: aaRowD3Q19AVX512 called without amd64 AVX-512 support")
}
