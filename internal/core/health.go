package core

import (
	"fmt"
	"math"
)

// Health summarises the numerical state of the simulation.
type Health struct {
	// MaxSpeed is the largest velocity magnitude (must stay well below
	// the lattice sound speed 1/√3 ≈ 0.577).
	MaxSpeed float64
	// MinRho, MaxRho bound the density.
	MinRho, MaxRho float64
	// BadCells counts NaN/Inf or non-positive-density cells.
	BadCells int
}

// CheckHealth scans the interior fluid cells and returns an error when the
// simulation has gone unstable (NaN/Inf populations, non-positive density,
// or trans-sonic velocities) — the guard a long production run needs to
// abort early instead of writing garbage checkpoints.
func (l *Lattice) CheckHealth() (Health, error) {
	h := Health{MinRho: math.Inf(1), MaxRho: math.Inf(-1)}
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				if l.Flags[l.Idx(x, y, z)] != Fluid {
					continue
				}
				m := l.MacroAt(x, y, z)
				speed := math.Sqrt(m.Ux*m.Ux + m.Uy*m.Uy + m.Uz*m.Uz)
				if math.IsNaN(m.Rho) || math.IsInf(m.Rho, 0) ||
					math.IsNaN(speed) || m.Rho <= 0 {
					h.BadCells++
					continue
				}
				h.MinRho = math.Min(h.MinRho, m.Rho)
				h.MaxRho = math.Max(h.MaxRho, m.Rho)
				h.MaxSpeed = math.Max(h.MaxSpeed, speed)
			}
		}
	}
	if h.BadCells > 0 {
		return h, fmt.Errorf("core: %d cells hold NaN/Inf or non-positive density (diverged)", h.BadCells)
	}
	const soundSpeed = 0.5773502691896258
	if h.MaxSpeed >= soundSpeed {
		return h, fmt.Errorf("core: max speed %.3f exceeds the lattice sound speed %.3f (unstable; reduce velocity or refine)", h.MaxSpeed, soundSpeed)
	}
	return h, nil
}
