//go:build amd64

package core

import (
	"math"
	"math/rand"
	"testing"

	"sunwaylb/internal/lattice"
)

// TestAARowAVX512BitIdentical drives the AVX-512 row kernel and the
// scalar row body over identical random rows and requires bitwise-equal
// results, including rows whose length is not a multiple of the 8-wide
// vector (exercising the scalar tail via the aaRowD3Q19 dispatcher).
func TestAARowAVX512BitIdentical(t *testing.T) {
	if !useAVX512 {
		t.Skip("AVX-512F unavailable (or disabled via LBM_NOAVX512)")
	}
	rng := rand.New(rand.NewSource(42))
	for _, nz := range []int{8, 16, 64, 1, 7, 9, 23, 40, 129} {
		var vec, ref [19][]float64
		for i := 0; i < 19; i++ {
			vec[i] = make([]float64, nz)
			ref[i] = make([]float64, nz)
			for k := 0; k < nz; k++ {
				// Near-equilibrium positive populations, as in a real run.
				v := (0.02 + 0.08*rng.Float64()) * (1 + 0.1*rng.NormFloat64())
				vec[i][k] = v
				ref[i][k] = v
			}
		}
		nTau := -1.0 / 0.8
		aaRowD3Q19(&vec, nz, nTau) // AVX-512 bulk + scalar tail
		aaRowD3Q19Scalar(&ref, 0, nz, nTau)
		for i := 0; i < 19; i++ {
			for k := 0; k < nz; k++ {
				if math.Float64bits(vec[i][k]) != math.Float64bits(ref[i][k]) {
					t.Fatalf("nz=%d: g[%d][%d] = %x (avx512) != %x (scalar)",
						nz, i, k, vec[i][k], ref[i][k])
				}
			}
		}
	}
}

// TestAAStepAVX512MatchesScalar runs full AA steps with the vector
// kernel enabled and disabled and requires every fluid cell's logical
// populations to stay bitwise identical at both parities — the
// end-to-end version of the row test above.
func TestAAStepAVX512MatchesScalar(t *testing.T) {
	if !useAVX512 {
		t.Skip("AVX-512F unavailable (or disabled via LBM_NOAVX512)")
	}
	build := func() *Lattice {
		l, err := NewLattice(&lattice.D3Q19, 12, 10, 11, 0.7)
		if err != nil {
			t.Fatalf("NewLattice: %v", err)
		}
		l.InitEquilibrium(1, 0.03, -0.02, 0.01)
		l.SetWall(6, 5, 5)
		l.EnableAA()
		return l
	}
	vec, sca := build(), build()
	defer func() { useAVX512 = true }()
	var fv, fs []float64
	for step := 0; step < 6; step++ {
		useAVX512 = true
		vec.PeriodicAll()
		vec.StepFused()
		useAVX512 = false
		sca.PeriodicAll()
		sca.StepFused()
		for y := 0; y < vec.NY; y++ {
			for x := 0; x < vec.NX; x++ {
				for z := 0; z < vec.NZ; z++ {
					if vec.Flags[vec.Idx(x, y, z)] != Fluid {
						continue
					}
					fv = vec.Populations(x, y, z, fv)
					fs = sca.Populations(x, y, z, fs)
					for q := range fv {
						if math.Float64bits(fv[q]) != math.Float64bits(fs[q]) {
							t.Fatalf("step %d cell (%d,%d,%d) pop %d: avx512 %v scalar %v",
								step, x, y, z, q, fv[q], fs[q])
						}
					}
				}
			}
		}
	}
	useAVX512 = true
}
