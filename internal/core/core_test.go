package core

import (
	"math"
	"testing"
	"testing/quick"

	"sunwaylb/internal/lattice"
)

func newTestLattice(t testing.TB, nx, ny, nz int, tau float64) *Lattice {
	t.Helper()
	l, err := NewLattice(&lattice.D3Q19, nx, ny, nz, tau)
	if err != nil {
		t.Fatalf("NewLattice: %v", err)
	}
	return l
}

func TestNewLatticeValidation(t *testing.T) {
	if _, err := NewLattice(&lattice.D3Q19, 0, 4, 4, 0.8); err == nil {
		t.Error("want error for zero dimension")
	}
	if _, err := NewLattice(&lattice.D3Q19, 4, 4, 4, 0.5); err == nil {
		t.Error("want error for tau <= 0.5")
	}
	if _, err := NewLattice(&lattice.D3Q19, 4, 4, 4, 0.51); err != nil {
		t.Errorf("tau=0.51 should be accepted: %v", err)
	}
}

func TestIdxCoordsRoundTrip(t *testing.T) {
	l := newTestLattice(t, 5, 7, 3, 0.8)
	f := func(x0, y0, z0 uint8) bool {
		// Include halo coordinates −1..N.
		x := int(x0)%(l.NX+2) - 1
		y := int(y0)%(l.NY+2) - 1
		z := int(z0)%(l.NZ+2) - 1
		gx, gy, gz := l.Coords(l.Idx(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIdxUniqueInBounds(t *testing.T) {
	l := newTestLattice(t, 4, 5, 6, 0.9)
	seen := make(map[int]bool)
	for y := -1; y <= l.NY; y++ {
		for x := -1; x <= l.NX; x++ {
			for z := -1; z <= l.NZ; z++ {
				idx := l.Idx(x, y, z)
				if idx < 0 || idx >= l.N {
					t.Fatalf("Idx(%d,%d,%d)=%d out of [0,%d)", x, y, z, idx, l.N)
				}
				if seen[idx] {
					t.Fatalf("Idx(%d,%d,%d)=%d duplicated", x, y, z, idx)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != l.N {
		t.Errorf("covered %d cells, want %d", len(seen), l.N)
	}
}

func TestZContiguous(t *testing.T) {
	// The paper stores data consecutively along the z axis (§IV-C-2).
	l := newTestLattice(t, 4, 4, 8, 0.8)
	if l.Idx(1, 2, 4)+1 != l.Idx(1, 2, 5) {
		t.Error("z must be the fastest-varying index")
	}
}

func TestInitEquilibriumMoments(t *testing.T) {
	l := newTestLattice(t, 4, 4, 4, 0.8)
	l.InitEquilibrium(1.2, 0.05, -0.02, 0.01)
	m := l.MacroAt(2, 2, 2)
	if math.Abs(m.Rho-1.2) > 1e-12 || math.Abs(m.Ux-0.05) > 1e-12 ||
		math.Abs(m.Uy+0.02) > 1e-12 || math.Abs(m.Uz-0.01) > 1e-12 {
		t.Errorf("macro after init = %+v", m)
	}
}

// TestEquilibriumStationary: a uniform equilibrium state with periodic
// boundaries is an exact fixed point of the update.
func TestEquilibriumStationary(t *testing.T) {
	l := newTestLattice(t, 6, 5, 4, 0.7)
	l.InitEquilibrium(1.0, 0.03, 0.02, -0.01)
	before := append([]float64(nil), l.Src()...)
	for s := 0; s < 5; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	after := l.Src()
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-13 {
			t.Fatalf("population %d drifted: %v -> %v", i, before[i], after[i])
		}
	}
}

// TestFusedUnfusedEquivalence: the fused pull collide–stream kernel must be
// bit-identical to the separate stream+collide passes, including around
// obstacles.
func TestFusedUnfusedEquivalence(t *testing.T) {
	build := func() *Lattice {
		l := newTestLattice(t, 8, 8, 8, 0.6)
		// A small box obstacle.
		for x := 3; x <= 4; x++ {
			for y := 3; y <= 4; y++ {
				for z := 3; z <= 4; z++ {
					l.SetWall(x, y, z)
				}
			}
		}
		// Non-trivial initial condition: a shear wave.
		for y := 0; y < l.NY; y++ {
			ux := 0.04 * math.Sin(2*math.Pi*float64(y)/float64(l.NY))
			for x := 0; x < l.NX; x++ {
				for z := 0; z < l.NZ; z++ {
					if l.CellTypeAt(x, y, z) == Fluid {
						l.SetCell(x, y, z, 1.0, ux, 0, 0.01)
					}
				}
			}
		}
		return l
	}
	a, b := build(), build()
	for s := 0; s < 10; s++ {
		a.PeriodicAll()
		a.StepFused()
		b.PeriodicAll()
		b.StepUnfused()
	}
	fa, fb := a.Src(), b.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("fused and unfused kernels diverged at %d: %v vs %v", i, fa[i], fb[i])
		}
	}
}

// TestParallelEquivalence: the goroutine-parallel driver must produce
// bit-identical results to the serial kernel.
func TestParallelEquivalence(t *testing.T) {
	build := func() *Lattice {
		l := newTestLattice(t, 10, 12, 6, 0.65)
		l.SetWall(5, 6, 3)
		l.SetMovingWall(2, 2, 2, 0.05, 0, 0)
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				for z := 0; z < l.NZ; z++ {
					if l.CellTypeAt(x, y, z) == Fluid {
						l.SetCell(x, y, z, 1.0,
							0.02*math.Sin(float64(x)), 0.02*math.Cos(float64(z)), 0)
					}
				}
			}
		}
		return l
	}
	a, b := build(), build()
	for s := 0; s < 8; s++ {
		a.PeriodicAll()
		a.StepFused()
		b.PeriodicAll()
		b.StepFusedParallel(4)
	}
	fa, fb := a.Src(), b.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("parallel kernel diverged at %d", i)
		}
	}
}

// TestMassMomentumConservationPeriodic: with periodic boundaries and no
// walls, total mass and momentum are conserved to rounding.
func TestMassMomentumConservationPeriodic(t *testing.T) {
	l := newTestLattice(t, 8, 8, 8, 0.8)
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				l.SetCell(x, y, z, 1.0+0.01*math.Sin(float64(x+y)),
					0.03*math.Sin(float64(z)), -0.02*math.Cos(float64(x)), 0.01)
			}
		}
	}
	mass0 := l.TotalMass()
	jx0, jy0, jz0 := l.TotalMomentum()
	for s := 0; s < 20; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	mass1 := l.TotalMass()
	jx1, jy1, jz1 := l.TotalMomentum()
	if math.Abs(mass1-mass0)/mass0 > 1e-12 {
		t.Errorf("mass drift: %v -> %v", mass0, mass1)
	}
	for _, d := range []float64{jx1 - jx0, jy1 - jy0, jz1 - jz0} {
		if math.Abs(d) > 1e-10 {
			t.Errorf("momentum drift: (%v,%v,%v) -> (%v,%v,%v)", jx0, jy0, jz0, jx1, jy1, jz1)
		}
	}
}

// TestMassConservationBounceBack: stationary walls conserve mass exactly.
func TestMassConservationBounceBack(t *testing.T) {
	l := newTestLattice(t, 8, 8, 8, 0.8)
	// Solid shell: a closed box.
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				if x == 0 || y == 0 || z == 0 || x == l.NX-1 || y == l.NY-1 || z == l.NZ-1 {
					l.SetWall(x, y, z)
				}
			}
		}
	}
	for y := 1; y < l.NY-1; y++ {
		for x := 1; x < l.NX-1; x++ {
			for z := 1; z < l.NZ-1; z++ {
				l.SetCell(x, y, z, 1.0, 0.02*math.Sin(float64(y)), 0, 0.01*math.Cos(float64(x)))
			}
		}
	}
	mass0 := l.TotalMass()
	for s := 0; s < 30; s++ {
		l.StepFused()
	}
	if mass1 := l.TotalMass(); math.Abs(mass1-mass0)/mass0 > 1e-12 {
		t.Errorf("bounce-back mass drift: %v -> %v", mass0, mass1)
	}
}

// TestCollisionConservesInvariants (property-based): a single collision
// conserves density and momentum of each cell exactly.
func TestCollisionConservesInvariants(t *testing.T) {
	d := &lattice.D3Q19
	f := func(seed int64) bool {
		// Build a random positive population set from the seed.
		fs := make([]float64, d.Q)
		s := uint64(seed)
		for i := range fs {
			s = s*6364136223846793005 + 1442695040888963407
			fs[i] = 0.01 + float64(s%1000)/5000.0
		}
		rho0, jx0, jy0, jz0 := d.Moments(fs)
		// Collide with τ=0.9.
		feq := make([]float64, d.Q)
		d.EquilibriumAll(feq, rho0, jx0/rho0, jy0/rho0, jz0/rho0)
		omega := 1.0 / 0.9
		post := make([]float64, d.Q)
		for i := range fs {
			post[i] = fs[i] - omega*(fs[i]-feq[i])
		}
		rho1, jx1, jy1, jz1 := d.Moments(post)
		tol := 1e-11
		return math.Abs(rho1-rho0) < tol && math.Abs(jx1-jx0) < tol &&
			math.Abs(jy1-jy0) < tol && math.Abs(jz1-jz0) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPoiseuilleProfile: body-force-driven channel flow between two
// bounce-back plates converges to the parabolic Poiseuille profile.
func TestPoiseuilleProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("long physics test")
	}
	const h = 24 // channel height (x direction), plates at x walls
	l := newTestLattice(t, h, 4, 4, 0.9)
	g := 1e-6
	l.Force = [3]float64{0, 0, g} // drive along z
	// Plates: wall cells added beyond the channel via halo flags — use
	// interior walls at x=0 and x=h-1? That would eat two layers.
	// Instead mark the x halo layers as walls.
	for y := -1; y <= l.NY; y++ {
		for z := -1; z <= l.NZ; z++ {
			l.Flags[l.Idx(-1, y, z)] = Wall
			l.Flags[l.Idx(h, y, z)] = Wall
		}
	}
	nu := lattice.Viscosity(l.Tau)
	for s := 0; s < 15000; s++ {
		l.PeriodicAxis(1)
		l.PeriodicAxis(2)
		l.StepFused()
	}
	// Analytic: u(x) = g/(2ν) · x̂(H−x̂) with x̂ measured from the wall
	// plane; half-way bounce-back puts the wall half a cell outside the
	// first fluid cell, so x̂ = x+0.5 and H = h.
	worst := 0.0
	for x := 0; x < h; x++ {
		xx := float64(x) + 0.5
		want := g / (2 * nu) * xx * (float64(h) - xx)
		got := l.MacroAt(x, 2, 2).Uz
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.02 {
		t.Errorf("Poiseuille profile relative error %.4f > 2%%", worst)
	}
}

// TestTaylorGreenDecay: the Taylor–Green vortex decays exponentially at
// rate 2νk²; measuring the decay checks the effective viscosity of the
// scheme (and hence the τ–ν relation).
func TestTaylorGreenDecay(t *testing.T) {
	if testing.Short() {
		t.Skip("long physics test")
	}
	const n = 32
	tau := 0.8
	l := newTestLattice(t, n, n, 4, tau)
	u0 := 0.02
	k := 2 * math.Pi / float64(n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			ux := u0 * math.Sin(k*float64(x)) * math.Cos(k*float64(y))
			uy := -u0 * math.Cos(k*float64(x)) * math.Sin(k*float64(y))
			for z := 0; z < l.NZ; z++ {
				l.SetCell(x, y, z, 1.0, ux, uy, 0)
			}
		}
	}
	energy := func() float64 {
		e := 0.0
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				m := l.MacroAt(x, y, 2)
				e += m.Ux*m.Ux + m.Uy*m.Uy
			}
		}
		return e
	}
	e0 := energy()
	steps := 200
	for s := 0; s < steps; s++ {
		l.PeriodicAll()
		l.StepFused()
	}
	e1 := energy()
	nu := lattice.Viscosity(tau)
	// Kinetic energy decays as exp(−4νk²t) (velocity decays at 2νk²).
	want := math.Exp(-4 * nu * k * k * float64(steps))
	got := e1 / e0
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("Taylor–Green decay: got %v, want %v (3%% tol)", got, want)
	}
}

// TestSmagorinskyReducesToLBGK: with |Π|=0 (equilibrium state) the LES
// model leaves τ unchanged, and a sheared state increases it.
func TestSmagorinskyReducesToLBGK(t *testing.T) {
	l := newTestLattice(t, 4, 4, 4, 0.7)
	l.Smagorinsky = 0.17
	d := l.Desc
	feq := make([]float64, d.Q)
	d.EquilibriumAll(feq, 1.0, 0.02, 0, 0)
	f := append([]float64(nil), feq...)
	if got := l.smagorinskyTau(f, feq, 1.0); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("equilibrium LES tau = %v, want 0.7", got)
	}
	// Perturb to create non-equilibrium normal stress (Π_xx ≠ 0):
	// adding to both +x and −x populations keeps momentum but not the
	// second moment.
	f[1] += 0.01
	f[2] += 0.01
	if got := l.smagorinskyTau(f, feq, 1.0); got <= 0.7 {
		t.Errorf("sheared LES tau = %v, want > 0.7", got)
	}
}

func TestMovingWallTransfersMomentum(t *testing.T) {
	// A closed cavity with a moving lid must gain momentum in the lid
	// direction.
	const n = 10
	l := newTestLattice(t, n, n, n, 0.7)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for z := 0; z < n; z++ {
				onBoundary := x == 0 || x == n-1 || y == 0 || z == 0 || z == n-1
				if y == n-1 {
					l.SetMovingWall(x, y, z, 0.1, 0, 0)
				} else if onBoundary {
					l.SetWall(x, y, z)
				}
			}
		}
	}
	for s := 0; s < 50; s++ {
		l.StepFused()
	}
	jx, _, _ := l.TotalMomentum()
	if jx <= 0 {
		t.Errorf("lid-driven cavity x momentum = %v, want > 0", jx)
	}
	// The flow must stay stable.
	if v := l.MaxVelocity(); v > 0.2 || math.IsNaN(v) {
		t.Errorf("max velocity %v out of range", v)
	}
}

func TestPackUnpackFaceRoundTrip(t *testing.T) {
	a := newTestLattice(t, 6, 5, 4, 0.8)
	b := newTestLattice(t, 6, 5, 4, 0.8)
	for y := 0; y < a.NY; y++ {
		for x := 0; x < a.NX; x++ {
			for z := 0; z < a.NZ; z++ {
				a.SetCell(x, y, z, 1.0, 0.01*float64(x), 0.01*float64(y), 0.01*float64(z))
			}
		}
	}
	a.SetWall(5, 2, 2) // wall on the x+ boundary layer
	// Transfer a's x+ boundary into b's x- halo (as neighbouring ranks
	// would).
	nc := a.FaceCells(FaceXMax)
	buf := make([]float64, a.Desc.Q*nc)
	flags := make([]CellType, nc)
	a.PackFace(FaceXMax, buf, flags)
	b.UnpackFace(FaceXMin, buf, flags)
	// Check: b's halo at x=-1 matches a's boundary at x=NX-1.
	for y := 0; y < a.NY; y++ {
		for z := 0; z < a.NZ; z++ {
			fa := a.Populations(a.NX-1, y, z, nil)
			ib := b.Idx(-1, y, z)
			for q := 0; q < b.Desc.Q; q++ {
				if fb := b.Src()[q*b.N+ib]; fb != fa[q] {
					t.Fatalf("halo mismatch at y=%d z=%d q=%d", y, z, q)
				}
			}
		}
	}
	if b.Flags[b.Idx(-1, 2, 2)] != Wall {
		t.Error("wall flag must propagate through pack/unpack")
	}
}

func TestPeriodicAxisFillsCorners(t *testing.T) {
	l := newTestLattice(t, 3, 3, 3, 0.8)
	l.SetCell(0, 0, 0, 1.5, 0, 0, 0) // distinctive corner value
	l.PeriodicAll()
	// The far corner halo (NX, NY, NZ) must equal cell (0,0,0).
	f0 := l.Populations(0, 0, 0, nil)
	idx := l.Idx(l.NX, l.NY, l.NZ)
	for q := 0; q < l.Desc.Q; q++ {
		if got := l.Src()[q*l.N+idx]; got != f0[q] {
			t.Fatalf("corner halo not periodic at q=%d", q)
		}
	}
}

func TestCellTypeString(t *testing.T) {
	for ct, want := range map[CellType]string{Fluid: "Fluid", Wall: "Wall", MovingWall: "MovingWall", Ghost: "Ghost"} {
		if ct.String() != want {
			t.Errorf("%d.String() = %q", ct, ct.String())
		}
	}
}

func TestFluidCells(t *testing.T) {
	l := newTestLattice(t, 4, 4, 4, 0.8)
	if got := l.FluidCells(); got != 64 {
		t.Errorf("FluidCells = %d, want 64", got)
	}
	l.SetWall(1, 1, 1)
	l.SetWall(2, 2, 2)
	if got := l.FluidCells(); got != 62 {
		t.Errorf("FluidCells = %d, want 62", got)
	}
	l.SetFluid(1, 1, 1)
	if got := l.FluidCells(); got != 63 {
		t.Errorf("FluidCells = %d, want 63", got)
	}
}

func BenchmarkStepFused16(b *testing.B) {
	l := newTestLattice(b, 16, 16, 16, 0.8)
	b.SetBytes(int64(16 * 16 * 16 * l.Desc.Q * 8 * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PeriodicAll()
		l.StepFused()
	}
}

func BenchmarkStepFusedParallel32(b *testing.B) {
	l := newTestLattice(b, 32, 32, 32, 0.8)
	b.SetBytes(int64(32 * 32 * 32 * l.Desc.Q * 8 * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PeriodicAll()
		l.StepFusedParallel(0)
	}
}

func TestProbeRecordsHistory(t *testing.T) {
	l := newTestLattice(t, 8, 8, 8, 0.8)
	l.InitEquilibrium(1.0, 0.04, 0, 0)
	var ps ProbeSet
	p, err := ps.Add(l, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Add(l, 99, 0, 0); err == nil {
		t.Error("out-of-range probe must be rejected")
	}
	for s := 0; s < 10; s++ {
		l.PeriodicAll()
		l.StepFused()
		ps.Sample(l)
	}
	if len(p.History) != 10 {
		t.Fatalf("history length %d", len(p.History))
	}
	ux := p.Component(0)
	if math.Abs(ux[9]-0.04) > 1e-12 {
		t.Errorf("probe ux = %v", ux[9])
	}
	mean := p.Mean()
	if math.Abs(mean.Ux-0.04) > 1e-12 || math.Abs(mean.Rho-1) > 1e-12 {
		t.Errorf("probe mean = %+v", mean)
	}
	var empty Probe
	if m := empty.Mean(); m.Rho != 0 {
		t.Error("empty probe mean must be zero")
	}
}

// TestRegionAPITilesExactly: covering the interior with StepRegion calls
// plus CompleteStep reproduces StepFused exactly (the API the on-the-fly
// distributed scheme builds on).
func TestRegionAPITilesExactly(t *testing.T) {
	build := func() *Lattice {
		l := newTestLattice(t, 9, 7, 5, 0.7)
		l.SetWall(4, 3, 2)
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				for z := 0; z < l.NZ; z++ {
					if l.CellTypeAt(x, y, z) == Fluid {
						l.SetCell(x, y, z, 1, 0.02*math.Sin(float64(x)), 0.01, 0)
					}
				}
			}
		}
		return l
	}
	a, b := build(), build()
	for s := 0; s < 5; s++ {
		a.PeriodicAll()
		a.StepFused()
		b.PeriodicAll()
		// Four regions tiling 9×7.
		b.StepRegion(0, 4, 0, 3)
		b.StepRegion(4, 9, 0, 3)
		b.StepRegion(0, 4, 3, 7)
		b.StepRegion(4, 9, 3, 7)
		b.CompleteStep()
	}
	fa, fb := a.Src(), b.Src()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("region tiling diverged at %d", i)
		}
	}
	if a.Step() != b.Step() {
		t.Errorf("step counters differ: %d vs %d", a.Step(), b.Step())
	}
}

// TestBufferAndStateAccessors covers the small state-management surface
// used by external engines and checkpointing.
func TestBufferAndStateAccessors(t *testing.T) {
	l := newTestLattice(t, 4, 4, 4, 0.8)
	l.SetStep(41)
	if l.Step() != 41 {
		t.Errorf("SetStep/Step = %d", l.Step())
	}
	src, dst := l.Src(), l.Dst()
	if &src[0] == &dst[0] {
		t.Error("Src and Dst must be distinct buffers")
	}
	dst[0] = 123
	l.SwapBuffers()
	if l.Src()[0] != 123 || l.Step() != 42 {
		t.Error("SwapBuffers must flip buffers and count a step")
	}
	// Populations round trip.
	f := make([]float64, l.Desc.Q)
	for i := range f {
		f[i] = float64(i) * 0.01
	}
	l.SetPopulations(2, 2, 2, f)
	got := l.Populations(2, 2, 2, nil)
	for i := range f {
		if got[i] != f[i] {
			t.Fatalf("population %d: %v vs %v", i, got[i], f[i])
		}
	}
	// Face names.
	names := map[Face]string{FaceXMin: "x-", FaceXMax: "x+", FaceYMin: "y-",
		FaceYMax: "y+", FaceZMin: "z-", FaceZMax: "z+"}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), want)
		}
	}
	if Face(99).String() != "?" {
		t.Error("unknown face must stringify to ?")
	}
	// MacroDimError formats.
	var err error = &MacroDimError{}
	if err.Error() == "" {
		t.Error("empty MacroDimError message")
	}
	// FaceCells and pack buffers for each face.
	for f := range names {
		if l.FaceCells(f) <= 0 {
			t.Errorf("FaceCells(%v) = %d", f, l.FaceCells(f))
		}
	}
}
