package core

import (
	"math"
	"runtime"
	"testing"
	"time"

	"sunwaylb/internal/lattice"
)

// TestPoolSoak drives a worker pool for many steps against a serial AA
// twin, verifying bit-identity and mass conservation throughout, then
// rebuilds a pool of a different width over the same lattice and keeps
// going. Designed to run under -race (ci.sh perf): the per-step channel
// handoffs are the only synchronisation between the workers and the
// caller, so any missing happens-before edge in Pool shows up here.
func TestPoolSoak(t *testing.T) {
	mk := func() *Lattice {
		l, err := NewLattice(&lattice.D3Q19, 10, 12, 9, 0.75)
		if err != nil {
			t.Fatalf("NewLattice: %v", err)
		}
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				for z := 0; z < l.NZ; z++ {
					l.SetCell(x, y, z, 1+0.03*math.Sin(float64(x+y+z)),
						0.02*math.Cos(float64(x)), 0.01*math.Sin(float64(y)), 0)
				}
			}
		}
		l.EnableAA()
		return l
	}
	ser, par := mk(), mk()
	mass0 := ser.TotalMass()

	run := func(pool *Pool, steps int) {
		t.Helper()
		for s := 0; s < steps; s++ {
			ser.PeriodicAll()
			par.PeriodicAll()
			ser.StepFused()
			pool.Step()
		}
	}

	p1 := NewPool(par, 4)
	if got := p1.Workers(); got != 4 {
		t.Fatalf("Workers() = %d, want 4", got)
	}
	run(p1, 25)
	p1.Close()
	p1.Close() // idempotent

	// A second pool over the same lattice must pick up mid-run (odd
	// parity included) without disturbing the state.
	p2 := NewPool(par, 3)
	run(p2, 25)
	defer p2.Close()

	if ser.Step() != par.Step() || ser.Step() != 50 {
		t.Fatalf("step counters diverged: serial %d, pool %d", ser.Step(), par.Step())
	}
	var fs, fp []float64
	for y := 0; y < ser.NY; y++ {
		for x := 0; x < ser.NX; x++ {
			for z := 0; z < ser.NZ; z++ {
				fs = ser.Populations(x, y, z, fs)
				fp = par.Populations(x, y, z, fp)
				for q := range fs {
					if math.Float64bits(fs[q]) != math.Float64bits(fp[q]) {
						t.Fatalf("cell (%d,%d,%d) pop %d: serial %v pool %v",
							x, y, z, q, fs[q], fp[q])
					}
				}
			}
		}
	}
	if mass := par.TotalMass(); math.Abs(mass-mass0) > 1e-9*mass0 {
		t.Fatalf("mass drifted: %v -> %v", mass0, mass)
	}
}

// TestPoolSpeedup requires the persistent worker pool to beat the
// serial AA stepper at 4 workers. A pool cannot outrun serial without
// real parallel hardware, so hosts with fewer than 4 CPUs skip (the
// benchsuite still records the kernel-aa-pool-4 case there, with
// workers and num_cpu counters exposing the environment).
func TestPoolSpeedup(t *testing.T) {
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("need ≥4 CPUs for a meaningful pool-vs-serial race, have %d", n)
	}
	mk := func() *Lattice {
		l, err := NewLattice(&lattice.D3Q19, 48, 48, 48, 0.8)
		if err != nil {
			t.Fatalf("NewLattice: %v", err)
		}
		l.InitEquilibrium(1, 0.02, 0.01, 0.005)
		l.EnableAA()
		return l
	}
	const steps = 8
	timeIt := func(step func()) time.Duration {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			for s := 0; s < steps; s++ {
				step()
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	ser := mk()
	serial := timeIt(func() { ser.PeriodicAll(); ser.StepFused() })
	par := mk()
	pool := NewPool(par, 4)
	defer pool.Close()
	pooled := timeIt(func() { par.PeriodicAll(); pool.Step() })
	t.Logf("serial %v, pool(4) %v over %d steps (best of 3)", serial, pooled, steps)
	if pooled >= serial {
		t.Errorf("pool(4) %v not faster than serial %v with %d CPUs",
			pooled, serial, runtime.NumCPU())
	}
}
