//go:build amd64

package core

import "os"

// aaKTab is the broadcast-constant table handed to the AVX-512 row
// kernel. It is built in Go so every slot carries exactly the bit
// pattern of the Go constant the scalar kernel uses.
//
// Layout (byte offsets the assembly reads): 0: 1.0, 8: 1.5, 16: 4.5,
// 24: 3.0, 32: w0, 40: w1, 48: w2.
var aaKTab = [7]float64{1, 1.5, 4.5, 3, w0, w1, w2}

// useAVX512 gates the vector row kernel. LBM_NOAVX512 (any non-empty
// value) is the kill switch forcing the scalar path; the conform and
// bitwise-equivalence tests flip it directly.
var useAVX512 = avx512Available() && os.Getenv("LBM_NOAVX512") == ""

// avx512Available reports whether the CPU and OS support the AVX-512F
// instructions aaRowD3Q19AVX512 uses: CPUID.1:ECX must advertise
// OSXSAVE+AVX+FMA, XCR0 must enable x87/SSE/AVX and the opmask+ZMM
// state (bits 0xE6), and CPUID.7:EBX must advertise AVX512F.
func avx512Available() bool {
	maxID, _, _, _ := cpuidx(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx, _ := cpuidx(1, 0)
	const osxsave, avx, fma = 1 << 27, 1 << 28, 1 << 12
	if ecx&osxsave == 0 || ecx&avx == 0 || ecx&fma == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0xe6 != 0xe6 {
		return false
	}
	_, ebx, _, _ := cpuidx(7, 0)
	return ebx&(1<<16) != 0 // AVX512F
}

// aaRowD3Q19AVX512 collide-streams 8·blocks cells of one clean row in
// place, bit-identically to aaRowD3Q19Scalar (see aa_avx512_amd64.s).
//
//go:noescape
func aaRowD3Q19AVX512(gp *[19][]float64, blocks int, nTau float64, k *[7]float64)

//go:noescape
func cpuidx(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)
