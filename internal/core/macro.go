package core

import "math"

// Macro holds the macroscopic fields of one cell.
type Macro struct {
	Rho        float64
	Ux, Uy, Uz float64
}

// MacroAt computes density and velocity of an interior cell from the
// current buffer.
func (l *Lattice) MacroAt(x, y, z int) Macro {
	d := l.Desc
	idx := l.Idx(x, y, z)
	src := l.F[l.src]
	var rho, jx, jy, jz float64
	for i := 0; i < d.Q; i++ {
		fi := src[l.PopBase(i)+idx]
		rho += fi
		c := d.C[i]
		jx += fi * float64(c[0])
		jy += fi * float64(c[1])
		jz += fi * float64(c[2])
	}
	if rho == 0 {
		return Macro{}
	}
	// With Guo forcing the physical velocity is (j + F/2)/ρ.
	jx += 0.5 * l.Force[0]
	jy += 0.5 * l.Force[1]
	jz += 0.5 * l.Force[2]
	return Macro{Rho: rho, Ux: jx / rho, Uy: jy / rho, Uz: jz / rho}
}

// MacroField holds the macroscopic fields of the whole interior domain in
// z-fastest order (the same ordering as the population storage, without
// halo).
type MacroField struct {
	NX, NY, NZ int
	Rho        []float64
	Ux, Uy, Uz []float64
}

// Idx returns the linear index of (x, y, z) in the macro field arrays.
func (m *MacroField) Idx(x, y, z int) int { return (y*m.NX+x)*m.NZ + z }

// ComputeMacro extracts the macroscopic fields of all interior cells.
// Solid cells yield zeros.
func (l *Lattice) ComputeMacro() *MacroField {
	m := &MacroField{
		NX: l.NX, NY: l.NY, NZ: l.NZ,
		Rho: make([]float64, l.NX*l.NY*l.NZ),
		Ux:  make([]float64, l.NX*l.NY*l.NZ),
		Uy:  make([]float64, l.NX*l.NY*l.NZ),
		Uz:  make([]float64, l.NX*l.NY*l.NZ),
	}
	d := l.Desc
	src := l.F[l.src]
	var baseArr [MaxQ]int
	base := baseArr[:d.Q]
	for i := range base {
		base[i] = l.PopBase(i)
	}
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				idx := l.Idx(x, y, z)
				if l.Flags[idx] != Fluid {
					continue
				}
				var rho, jx, jy, jz float64
				for i := 0; i < d.Q; i++ {
					fi := src[base[i]+idx]
					rho += fi
					c := d.C[i]
					jx += fi * float64(c[0])
					jy += fi * float64(c[1])
					jz += fi * float64(c[2])
				}
				mi := m.Idx(x, y, z)
				m.Rho[mi] = rho
				if rho != 0 {
					m.Ux[mi] = (jx + 0.5*l.Force[0]) / rho
					m.Uy[mi] = (jy + 0.5*l.Force[1]) / rho
					m.Uz[mi] = (jz + 0.5*l.Force[2]) / rho
				}
			}
		}
	}
	return m
}

// TotalMass sums the density over all interior fluid cells. The LBGK
// collision conserves it exactly (up to FP rounding); with pure bounce-back
// walls and periodic boundaries it is conserved across steps too.
func (l *Lattice) TotalMass() float64 {
	d := l.Desc
	src := l.F[l.src]
	var baseArr [MaxQ]int
	base := baseArr[:d.Q]
	for i := range base {
		base[i] = l.PopBase(i)
	}
	total := 0.0
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				idx := l.Idx(x, y, z)
				if l.Flags[idx] != Fluid {
					continue
				}
				for i := 0; i < d.Q; i++ {
					total += src[base[i]+idx]
				}
			}
		}
	}
	return total
}

// TotalMomentum sums the momentum over all interior fluid cells.
func (l *Lattice) TotalMomentum() (jx, jy, jz float64) {
	d := l.Desc
	src := l.F[l.src]
	var baseArr [MaxQ]int
	base := baseArr[:d.Q]
	for i := range base {
		base[i] = l.PopBase(i)
	}
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				idx := l.Idx(x, y, z)
				if l.Flags[idx] != Fluid {
					continue
				}
				for i := 0; i < d.Q; i++ {
					fi := src[base[i]+idx]
					c := d.C[i]
					jx += fi * float64(c[0])
					jy += fi * float64(c[1])
					jz += fi * float64(c[2])
				}
			}
		}
	}
	return
}

// MaxVelocity returns the maximum velocity magnitude over interior fluid
// cells; useful as a stability diagnostic (must stay well below c_s≈0.577).
func (l *Lattice) MaxVelocity() float64 {
	maxSq := 0.0
	for y := 0; y < l.NY; y++ {
		for x := 0; x < l.NX; x++ {
			for z := 0; z < l.NZ; z++ {
				if l.Flags[l.Idx(x, y, z)] != Fluid {
					continue
				}
				m := l.MacroAt(x, y, z)
				sq := m.Ux*m.Ux + m.Uy*m.Uy + m.Uz*m.Uz
				if sq > maxSq {
					maxSq = sq
				}
			}
		}
	}
	return math.Sqrt(maxSq)
}
