package analysis

// Structural tests for the CFG builder: reachability through loops,
// branches, selects and gotos, panic-edge marking, defer collection and
// select-arm tagging — the properties goleak/locksafe/chanproto lean on.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse %q: %v", body, err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

func TestCFGExitReachable(t *testing.T) {
	cases := []struct {
		name, body string
		want       bool
	}{
		{"straight line", "x := 1\n_ = x", true},
		{"infinite loop", "for {\n\tx := 1\n\t_ = x\n}", false},
		{"loop with break", "for {\n\tif true {\n\t\tbreak\n\t}\n}", true},
		{"loop with return", "for {\n\treturn\n}", true},
		{"bounded loop", "for i := 0; i < 3; i++ {\n\t_ = i\n}", true},
		{"empty select blocks forever", "select {}", false},
		{"select with arms", "var c chan int\nselect {\ncase c <- 1:\ncase <-c:\n}", true},
		{"labeled continue never exits", "L:\nfor {\n\tcontinue L\n}", false},
		{"labeled break exits", "L:\nfor {\n\tfor {\n\t\tbreak L\n\t}\n}", true},
		{"goto forward", "goto done\ndone:\n\treturn", true},
		{"panic unwinds to exit", "panic(\"boom\")", true},
		{"range loop", "var xs []int\nfor _, v := range xs {\n\t_ = v\n}", true},
		{"switch all arms return", "switch 1 {\ncase 1:\n\treturn\ndefault:\n\treturn\n}", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := buildCFG(parseBody(t, c.body))
			if got := g.exitReachable(); got != c.want {
				t.Errorf("exitReachable(%q) = %v, want %v", c.body, got, c.want)
			}
		})
	}
}

func TestCFGPanicMarked(t *testing.T) {
	g := buildCFG(parseBody(t, "if true {\n\tpanic(\"boom\")\n}\nreturn"))
	var panics int
	for _, n := range g.nodes {
		if n.isPanic {
			panics++
			if len(n.succs) != 1 || n.succs[0] != g.exit {
				t.Errorf("panic node should edge to exit, got %d succs", len(n.succs))
			}
		}
	}
	if panics != 1 {
		t.Errorf("want exactly one panic-marked node, got %d", panics)
	}
}

func TestCFGDefersCollected(t *testing.T) {
	g := buildCFG(parseBody(t, "var c chan int\ndefer close(c)\nif true {\n\tdefer print()\n}"))
	if len(g.defers) != 2 {
		t.Errorf("want 2 collected defers, got %d", len(g.defers))
	}
}

func TestCFGSelectArmsMarked(t *testing.T) {
	g := buildCFG(parseBody(t, "var c chan int\nselect {\ncase c <- 1:\ncase v := <-c:\n\t_ = v\n}"))
	var inSelect int
	for _, n := range g.nodes {
		if n.inSelect {
			inSelect++
		}
	}
	if inSelect != 2 {
		t.Errorf("want both comm clauses marked inSelect, got %d", inSelect)
	}
}

func TestCFGSwitchFallout(t *testing.T) {
	// Without a default clause the tag node keeps a fall-out edge, so the
	// break after the switch is reachable; adding a default whose arms all
	// continue removes it.
	g := buildCFG(parseBody(t, "for {\n\tswitch 1 {\n\tcase 1:\n\t\tcontinue\n\t}\n\tbreak\n}"))
	if !g.exitReachable() {
		t.Error("switch without default must keep its fall-out edge")
	}
	g = buildCFG(parseBody(t, "for {\n\tswitch 1 {\n\tcase 1:\n\t\tcontinue\n\tdefault:\n\t\tcontinue\n\t}\n\tbreak\n}"))
	if g.exitReachable() {
		t.Error("exhaustive switch with all arms continuing must not invent an exit path")
	}
}
