package analysis

// spanpair enforces the tracing contracts of internal/trace:
//
//  1. Scope misuse — `tr.Scope(track, name)` returns the closing closure;
//     calling it as a statement opens a span that is never closed, and
//     `defer tr.Scope(...)` (without the trailing call) defers the *open*
//     instead of the close. The idiom is `defer tr.Scope(track, name)()`.
//  2. Begin/End pairing — within one function (including its nested
//     closures, which is where deferred Ends live), every
//     `tr.Begin(clock, track, ...)` must be matched by a `tr.End(clock,
//     track, ...)` on the same receiver and track, and vice versa. An
//     unmatched Begin corrupts the rank's span stack for every event that
//     follows; Validate only catches it at run time on a traced path.
//  3. Nil-safety — types annotated //lbm:nilsafe (the Tracer/RankTracer
//     zero-cost-off contract) must nil-guard the receiver in every
//     pointer-receiver method before touching receiver fields, so a nil
//     handle stays a no-op recorder instead of a panic.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

const tracePkgPath = "sunwaylb/internal/trace"

// AnalyzerSpanPair is the spanpair rule.
var AnalyzerSpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "trace spans must pair Begin/End; nil-safe tracer types must guard receivers",
	Run:  runSpanPair,
}

func runSpanPair(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkScopeMisuse(pass, fn.Body)
			checkBeginEndBalance(pass, fn)
		}
	}
	checkNilSafe(pass)
}

// isTraceMethodCall reports whether call invokes the named method on a
// trace.RankTracer or trace.Tracer receiver.
func isTraceMethodCall(pass *Pass, call *ast.CallExpr, name string) (recv ast.Expr, yes bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	t, ok := pass.Info().Types[sel.X]
	if !ok {
		return nil, false
	}
	if isNamed(t.Type, tracePkgPath, "RankTracer") || isNamed(t.Type, tracePkgPath, "Tracer") {
		return sel.X, true
	}
	return nil, false
}

// checkScopeMisuse flags Scope calls whose returned closer is lost.
func checkScopeMisuse(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			// `tr.Scope(a, b)` as a bare statement: the span opens now
			// and the closer is dropped. (`tr.Scope(a, b)()` parses as a
			// call whose Fun is the Scope call — that form is fine.)
			if call, ok := st.X.(*ast.CallExpr); ok {
				if _, yes := isTraceMethodCall(pass, call, "Scope"); yes {
					pass.Reportf(call.Pos(),
						"Scope's closing closure is discarded, the span never ends; use `defer %s()` or capture the closer",
						exprString(call.Fun))
				}
			}
		case *ast.DeferStmt:
			// `defer tr.Scope(a, b)` defers the open, not the close.
			if _, yes := isTraceMethodCall(pass, st.Call, "Scope"); yes {
				pass.Reportf(st.Call.Pos(),
					"defer runs Scope (the open) at return, not the close; write `defer %s(...)()`",
					exprString(st.Call.Fun))
			}
		}
		return true
	})
}

// spanKey identifies one span timeline: receiver expression + clock +
// track, rendered as stable strings.
type spanKey struct{ recv, clock, track string }

// checkBeginEndBalance counts Begin/End per (receiver, clock, track)
// across the whole function body, nested closures included.
func checkBeginEndBalance(pass *Pass, fn *ast.FuncDecl) {
	type site struct {
		pos token.Pos
		n   int
	}
	begins := make(map[spanKey]*site)
	ends := make(map[spanKey]*site)
	bump := func(m map[spanKey]*site, k spanKey, pos token.Pos) {
		s := m[k]
		if s == nil {
			s = &site{pos: pos}
			m[k] = s
		}
		s.n++
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, yes := isTraceMethodCall(pass, call, "Begin"); yes && len(call.Args) >= 2 {
			bump(begins, keyFor(recv, call.Args[0], call.Args[1]), call.Pos())
		}
		if recv, yes := isTraceMethodCall(pass, call, "End"); yes && len(call.Args) >= 2 {
			bump(ends, keyFor(recv, call.Args[0], call.Args[1]), call.Pos())
		}
		return true
	})
	for k, b := range begins {
		e := ends[k]
		if e == nil {
			pass.Reportf(b.pos,
				"Begin on track %s has no matching End in %s (or its deferred closures)", k.track, fn.Name.Name)
			continue
		}
		if b.n != e.n {
			pass.Reportf(b.pos,
				"%d Begin vs %d End calls on track %s in %s; spans must pair on every path", b.n, e.n, k.track, fn.Name.Name)
		}
	}
	for k, e := range ends {
		if begins[k] == nil {
			pass.Reportf(e.pos,
				"End on track %s has no matching Begin in %s", k.track, fn.Name.Name)
		}
	}
}

func keyFor(recv, clock, track ast.Expr) spanKey {
	return spanKey{recv: exprString(recv), clock: exprString(clock), track: exprString(track)}
}

// checkNilSafe verifies the //lbm:nilsafe contract.
func checkNilSafe(pass *Pass) {
	marked := nilsafeTypes(pass.Pkg)
	if len(marked) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) != 1 {
				continue
			}
			recvField := fn.Recv.List[0]
			tname := receiverTypeName(recvField.Type)
			if !marked[tname] {
				continue
			}
			if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
				continue // receiver unused: trivially nil-safe
			}
			recvObj := pass.Info().Defs[recvField.Names[0]]
			if recvObj == nil {
				continue
			}
			guardPos := nilGuardPos(pass, fn.Body, recvObj)
			reportFieldAccessBefore(pass, fn, recvObj, guardPos, tname)
		}
	}
}

func receiverTypeName(t ast.Expr) string {
	switch v := t.(type) {
	case *ast.StarExpr:
		return receiverTypeName(v.X)
	case *ast.Ident:
		return v.Name
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(v.X)
	}
	return ""
}

// nilGuardPos returns the position of the first `recv == nil` /
// `recv != nil` comparison in the body, or token.NoPos.
func nilGuardPos(pass *Pass, body *ast.BlockStmt, recvObj types.Object) token.Pos {
	var pos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		for x, y := range map[ast.Expr]ast.Expr{be.X: be.Y, be.Y: be.X} {
			id, ok := x.(*ast.Ident)
			if !ok || pass.Info().Uses[id] != recvObj {
				continue
			}
			if yid, ok := y.(*ast.Ident); ok && yid.Name == "nil" {
				pos = be.Pos()
				return false
			}
		}
		return true
	})
	return pos
}

// reportFieldAccessBefore flags receiver field accesses that precede the
// nil guard (or any field access when there is no guard at all).
func reportFieldAccessBefore(pass *Pass, fn *ast.FuncDecl, recvObj types.Object, guard token.Pos, tname string) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.Info().Uses[id] != recvObj {
			return true
		}
		s := pass.Info().Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true // method calls are responsible for their own guard
		}
		if guard.IsValid() && sel.Pos() > guard {
			return true
		}
		what := fmt.Sprintf("field %s.%s", id.Name, sel.Sel.Name)
		if !guard.IsValid() {
			pass.Reportf(sel.Pos(),
				"%s accessed in %s without a nil guard; %s is //lbm:nilsafe (nil handles must stay no-ops)",
				what, fn.Name.Name, tname)
		} else {
			pass.Reportf(sel.Pos(),
				"%s accessed in %s before the nil guard; move the `if %s == nil` check first",
				what, fn.Name.Name, id.Name)
		}
		return true
	})
}
