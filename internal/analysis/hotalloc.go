package analysis

// hotalloc enforces the steady-state contract on functions annotated
// //lbm:hot (the collide/stream/halo/bounce-back inner loops): no heap
// allocation, no fmt/log formatting, no interface boxing. These are the
// host-side analogues of the paper's §IV-C-4 kernel discipline — a hot
// loop that allocates per step turns a memory-bandwidth-bound kernel into
// a GC benchmark, and an interface conversion hides an allocation plus a
// dynamic dispatch inside an innocent-looking call.
//
// Flagged inside hot functions (nested closures included):
//
//   - make / new / append calls
//   - slice, map and &composite literals (value struct literals are
//     allowed: they can live in registers or on the stack)
//   - string concatenation
//   - any call into fmt or log
//   - passing a concrete value where an interface parameter is declared
//     (implicit boxing), and conversions to interface types
//
// The analyzer is intra-procedural: callees are not inspected, so keep
// hot functions leaf-like (which the kernel structure already does).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerHotAlloc is the hotalloc rule.
var AnalyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//lbm:hot functions must not allocate, box interfaces, or call fmt",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, fn := range hotFuncs(pass.Pkg) {
		if fn.Body == nil {
			continue
		}
		name := fn.Name.Name
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				checkHotCall(pass, v, name)
			case *ast.CompositeLit:
				checkHotComposite(pass, v, name)
			case *ast.BinaryExpr:
				if v.Op == token.ADD && isStringExpr(pass, v.X) {
					pass.Reportf(v.Pos(), "string concatenation allocates in hot function %s", name)
				}
			}
			return true
		})
	}
}

func isStringExpr(pass *Pass, e ast.Expr) bool {
	t, ok := pass.Info().Types[e]
	if !ok || t.Type == nil {
		return false
	}
	b, ok := t.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func checkHotComposite(pass *Pass, lit *ast.CompositeLit, name string) {
	t, ok := pass.Info().Types[lit]
	if !ok {
		return
	}
	switch t.Type.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates in hot function %s", name)
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates in hot function %s", name)
	}
}

func checkHotCall(pass *Pass, call *ast.CallExpr, name string) {
	info := pass.Info()
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make", "new", "append":
				pass.Reportf(call.Pos(), "%s allocates in hot function %s; hoist the buffer out of the hot path",
					obj.Name(), name)
				return
			}
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "fmt", "log":
				pass.Reportf(call.Pos(), "%s.%s call in hot function %s; formatting allocates and boxes every argument",
					obj.Pkg().Name(), obj.Name(), name)
				return
			}
		}
	}
	// Interface boxing at call boundaries: a concrete argument passed in
	// an interface-typed parameter slot.
	sig := callSignature(info, call)
	if sig == nil {
		// Conversions: T(x) where T is an interface type.
		if len(call.Args) == 1 {
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && types.IsInterface(tv.Type) {
				if argBoxes(info, call.Args[0]) {
					pass.Reportf(call.Pos(), "conversion to interface boxes its operand in hot function %s", name)
				}
			}
		}
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && argBoxes(info, arg) {
			pass.Reportf(arg.Pos(),
				"argument boxes a concrete value into an interface parameter in hot function %s", name)
		}
	}
}

// callSignature resolves the signature of an ordinary (non-conversion,
// non-builtin) call.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// argBoxes reports whether passing arg into an interface slot allocates:
// true for concrete (non-interface) typed values other than untyped nil.
func argBoxes(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type)
}
