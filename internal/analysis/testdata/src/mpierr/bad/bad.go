// Package fixture is an lbmvet test fixture: every marked line must
// produce the quoted mpierr finding.
package fixture

import (
	"time"

	"sunwaylb/internal/mpi"
)

func discards(c *mpi.Comm) {
	c.BarrierE()                            // want "error from mpi.BarrierE is discarded"
	c.RecvE(0, 1)                           // want "error from mpi.RecvE is discarded"
	go c.BarrierE()                         // want "discarded by go statement"
	defer c.BarrierE()                      // want "discarded by defer statement"
	_, _ = c.RecvTimeout(0, 1, time.Second) // want "assigned to _"
	msg, _ := c.RecvE(0, 2)                 // want "assigned to _"
	_ = msg
}

func compares(c *mpi.Comm) {
	err := c.BarrierE()
	if err == mpi.ErrRankDead { // want "use errors.Is"
		return
	}
	if mpi.ErrTimeout != err { // want "use errors.Is"
		return
	}
}

func waitDiscard(r *mpi.Request) {
	_, _ = r.WaitE() // want "assigned to _"
}
