// Package fixture is an lbmvet test fixture: mpierr must report nothing
// here — every error is handled and sentinel checks go through errors.Is.
package fixture

import (
	"errors"

	"sunwaylb/internal/mpi"
)

func handled(c *mpi.Comm) error {
	if err := c.BarrierE(); err != nil {
		if errors.Is(err, mpi.ErrRankDead) || errors.Is(err, mpi.ErrWorldDown) {
			return err
		}
		return err
	}
	msg, err := c.RecvE(0, 1)
	if err != nil {
		return err
	}
	_ = msg
	// The panic-based API needs no error handling at the call site.
	c.Barrier()
	m := c.Recv(0, 2)
	_ = m
	return nil
}
