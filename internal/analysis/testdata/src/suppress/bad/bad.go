// Package fixture exercises the //lint:ignore machinery: the first two
// accumulations are suppressed (trailing and preceding comment forms),
// the third survives, the malformed comment is itself a finding, and
// the rand-based cases pin down the multi-line widening rules.
package fixture

import "math/rand"

func accum(m map[string]float64) (float64, float64, float64) {
	var a, b, c float64
	for _, v := range m {
		a += v //lint:ignore detfloat fixture exercises trailing suppression
	}
	for _, v := range m {
		//lint:ignore * fixture exercises preceding wildcard suppression
		b += v
	}
	for _, v := range m {
		c += v // want "order-dependent"
	}
	//lint:ignore
	return a, b, c
}

// wrapped's suppression sits above a statement that spans two lines; the
// flagged call lands on the continuation line and is only silenced
// because the suppression widens over the whole simple statement.
func wrapped(scale float64) float64 {
	//lint:ignore detfloat fixture exercises multi-line statement widening
	v := scale * (1.0 +
		rand.Float64())
	return v
}

// branches suppresses one arm of the if and keeps the other: compound
// statements are never widened, so the suppression stays on its line.
func branches(hot bool) float64 {
	if hot {
		//lint:ignore detfloat fixture suppresses only this branch
		return rand.Float64()
	}
	return rand.Float64() // want "auto-seeded global source"
}

// literals shows the function-literal carve-out: the assignment spans
// several lines but contains a FuncLit, so the suppression does NOT
// widen into the literal's body.
func literals() float64 {
	//lint:ignore detfloat the carve-out keeps function literals out of the widening
	f := func() float64 {
		return rand.Float64() // want "auto-seeded global source"
	}
	return f()
}
