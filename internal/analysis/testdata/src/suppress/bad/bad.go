// Package fixture exercises the //lint:ignore machinery: the first two
// accumulations are suppressed (trailing and preceding comment forms),
// the third survives, and the malformed comment is itself a finding.
package fixture

func accum(m map[string]float64) (float64, float64, float64) {
	var a, b, c float64
	for _, v := range m {
		a += v //lint:ignore detfloat fixture exercises trailing suppression
	}
	for _, v := range m {
		//lint:ignore * fixture exercises preceding wildcard suppression
		b += v
	}
	for _, v := range m {
		c += v // want "order-dependent"
	}
	//lint:ignore
	return a, b, c
}
