// Package fixture is an lbmvet test fixture: every marked line must
// produce the quoted chanproto finding.
package fixture

func doubleClose(c chan int) {
	close(c)
	close(c) // want "double close of c: closed on every path here"
}

func maybeClosed(c chan int, early bool) {
	if early {
		close(c)
	}
	close(c) // want "c may already be closed on some path here"
}

func sendClosed(c chan int) {
	close(c)
	c <- 1 // want "send on c which is closed on every path here"
}

func sendBeforeReceiver() {
	ready := make(chan struct{})
	ready <- struct{}{} // want "send on unbuffered ready before any receiver can exist"
	go func() {
		<-ready
	}()
}

func leakedConsumer(items []int) {
	feed := make(chan int) // want "feed is ranged by a spawned goroutine but never closed"
	go func() {
		for v := range feed {
			_ = v
		}
	}()
	for _, v := range items {
		feed <- v
	}
}

// hotSend blocks the lattice step if the channel is full.
//
//lbm:hot
func hotSend(out chan int, v int) {
	out <- v // want "blocking send in //lbm:hot function hotSend"
}
