// Package fixture holds channel protocols chanproto must accept.
package fixture

// orderedHandoff spawns the consumer before the first send and closes
// the channel exactly once when done.
func orderedHandoff(items []int, done chan struct{}) {
	feed := make(chan int)
	go func() {
		for v := range feed {
			_ = v
		}
		close(done)
	}()
	for _, v := range items {
		feed <- v
	}
	close(feed)
	<-done
}

// bufferedSend never blocks: the buffer provably holds the one value.
func bufferedSend() int {
	reply := make(chan int, 1)
	reply <- 42
	return <-reply
}

// remake is the restart-loop shape: each round closes the previous
// generation's channel and makes a fresh one, so no close ever sees a
// stale closed-state from an earlier generation.
func remake(rounds int, run func(chan struct{})) {
	var stop chan struct{}
	for i := 0; i < rounds; i++ {
		if stop != nil {
			close(stop)
		}
		stop = make(chan struct{})
		go run(stop)
	}
	if stop != nil {
		close(stop)
	}
}

// hotSelectSend drops the sample instead of stalling the step.
//
//lbm:hot
func hotSelectSend(out chan float64, v float64) {
	select {
	case out <- v:
	default:
	}
}

// hotBufferedSend is allowed: the channel is provably buffered.
//
//lbm:hot
func hotBufferedSend(v float64) chan float64 {
	out := make(chan float64, 4)
	out <- v
	return out
}
