// Package fixture is an lbmvet test fixture: every marked line must
// produce the quoted locksafe finding.
package fixture

import (
	"errors"
	"sync"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

func doubleLock(g *guarded) {
	g.mu.Lock()
	g.mu.Lock() // want "double lock of g.mu: already held on every path here"
	g.mu.Unlock()
}

func doubleUnlock(g *guarded) {
	g.mu.Lock()
	g.mu.Unlock()
	g.mu.Unlock() // want "Unlock of g.mu: already unlocked on every path here"
}

func missesUnlock(g *guarded, bad bool) error {
	g.mu.Lock() // want "g.mu may still be held when missesUnlock returns"
	if bad {
		return errors.New("early return skips the unlock")
	}
	g.mu.Unlock()
	return nil
}

func panicsHolding(g *guarded) {
	g.mu.Lock()
	if g.n < 0 {
		panic("negative count") // want "panics while holding g.mu with no deferred unlock"
	}
	g.n++
	g.mu.Unlock()
}

func byValue(g guarded) int { // want "parameter of byValue passes a lock by value"
	return g.n
}

func (g guarded) valueMethod() int { // want "receiver of valueMethod passes a lock by value"
	return g.n
}

func copies(g *guarded) int {
	snapshot := *g // want "assignment copies a lock value"
	return snapshot.n
}
