// Package fixture holds locking shapes locksafe must accept.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// deferred is the canonical pairing.
func deferred(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// branchPaired unlocks on every path explicitly.
func branchPaired(g *guarded, flip bool) {
	g.mu.Lock()
	if flip {
		g.n++
		g.mu.Unlock()
		return
	}
	g.n--
	g.mu.Unlock()
}

// readers pairs the reader lock; the /R key keeps it distinct from a
// writer cycle in the same function.
func readers(t *table, k string) int {
	t.mu.RLock()
	v := t.m[k]
	t.mu.RUnlock()
	t.mu.Lock()
	t.m[k] = v + 1
	t.mu.Unlock()
	return v
}

// earlyExit is the mailbox pattern: unlock-then-return on the fast path.
func earlyExit(g *guarded) bool {
	g.mu.Lock()
	if g.n == 0 {
		g.mu.Unlock()
		return false
	}
	g.n--
	g.mu.Unlock()
	return true
}

// tryLock poisons the key: the lattice cannot see the conditional hold,
// so the rule stays quiet rather than guessing.
func tryLock(g *guarded) bool {
	if g.mu.TryLock() {
		g.n++
		g.mu.Unlock()
		return true
	}
	return false
}

// unlockBeforePanic releases before raising, so the panic check is
// satisfied without a defer.
func unlockBeforePanic(g *guarded) {
	g.mu.Lock()
	if g.n < 0 {
		g.mu.Unlock()
		panic("negative count")
	}
	g.mu.Unlock()
}

// closures lock and unlock within their own body and are checked as
// functions of their own.
func closures(g *guarded) func() int {
	return func() int {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.n
	}
}

// deferredClosure releases through a deferred closure body.
func deferredClosure(g *guarded) int {
	g.mu.Lock()
	defer func() {
		g.n++
		g.mu.Unlock()
	}()
	return g.n
}
