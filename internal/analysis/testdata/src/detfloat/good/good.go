// Package fixture is an lbmvet test fixture: detfloat must report
// nothing here.
package fixture

import (
	"math/rand"
	"sort"
)

func sortedAccum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k] // slice iteration: order is deterministic
	}
	return sum
}

func loopLocal(m map[string]float64) float64 {
	worst := 0.0
	for _, v := range m {
		// A variable declared inside the body resets every iteration;
		// accumulating into it is order-independent.
		scaled := 0.0
		scaled += 2 * v
		if scaled > worst {
			worst = scaled // comparison, not accumulation
		}
	}
	return worst
}

func intCount(m map[string]int) int {
	n := 0
	for range m {
		n++ // integer addition commutes exactly
	}
	return n
}

func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
