// Package fixture is an lbmvet test fixture: every marked line must
// produce the quoted detfloat finding.
package fixture

import "math/rand"

func mapAccum(m map[string]float64, w map[string]float64) (float64, float64) {
	var sum float64
	for _, v := range m {
		sum += v // want "order-dependent"
	}
	total := 0.0
	for k := range m {
		total = total + w[k] // want "order-dependent"
	}
	return sum, total
}

func fieldAccum(m map[int]float64, acc *struct{ x float64 }) {
	for _, v := range m {
		acc.x += v // want "order-dependent"
	}
}

func globalRand() float64 {
	return rand.Float64() // want "auto-seeded global source"
}
