// Package fixture is an lbmvet test fixture: every marked line must
// produce the quoted spanpair finding.
package fixture

import "sunwaylb/internal/trace"

func scopeMisuse(tr *trace.RankTracer) {
	tr.Scope("step", "collide")      // want "closing closure is discarded"
	defer tr.Scope("step", "stream") // want "not the close"
}

func unbalanced(tr *trace.RankTracer) {
	tr.Begin(trace.Wall, "step", "collide", tr.Now()) // want "no matching End"
	tr.End(trace.Wall, "halo", tr.Now())              // want "no matching Begin"
}

// Guardless is marked nil-safe but touches its field without a guard.
//
//lbm:nilsafe
type Guardless struct{ n int }

func (g *Guardless) Count() int { return g.n } // want "without a nil guard"

// LateGuard checks nil only after the field access.
//
//lbm:nilsafe
type LateGuard struct{ n int }

func (g *LateGuard) Count() int {
	v := g.n // want "before the nil guard"
	if g == nil {
		return 0
	}
	return v
}
