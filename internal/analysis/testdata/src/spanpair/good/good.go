// Package fixture is an lbmvet test fixture: spanpair must report
// nothing here.
package fixture

import "sunwaylb/internal/trace"

func scoped(tr *trace.RankTracer) {
	defer tr.Scope("step", "collide")()
	end := tr.Scope("step", "stream")
	end()
}

func balanced(tr *trace.RankTracer) {
	tr.Begin(trace.Wall, "step", "collide", tr.Now())
	tr.End(trace.Wall, "step", tr.Now())
	tr.Begin(trace.Sim, "halo", "pack", 0)
	defer func() { tr.End(trace.Sim, "halo", 1) }()
}

// Guarded is nil-safe the right way: the guard precedes every field use.
//
//lbm:nilsafe
type Guarded struct{ n int }

func (g *Guarded) Count() int {
	if g == nil {
		return 0
	}
	return g.n
}

// Methods that never touch receiver fields need no guard.
func (g *Guarded) Zero() int { return 0 }
