// Package fixture is an lbmvet test fixture: hotalloc must report
// nothing here.
package fixture

const maxQ = 27

func relax(f []float64, omega float64) {
	for i := range f {
		f[i] *= 1 - omega
	}
}

// hotKernel keeps its scratch on the stack, calls only concrete-typed
// helpers and builds no strings: the steady-state contract.
//
//lbm:hot
func hotKernel(q int, omega float64) float64 {
	var fArr [maxQ]float64
	f := fArr[:q]
	for i := 0; i < q; i++ {
		f[i] = float64(i)
	}
	relax(f, omega)
	// Value struct literals may live in registers; they are allowed.
	type pair struct{ a, b float64 }
	p := pair{f[0], omega}
	return p.a + p.b
}

// forwarding an existing []any through a variadic interface parameter
// does not box per argument.
//
//lbm:hot
func forward(args []any) {
	variadic(args...)
}

func variadic(vs ...any) {}
