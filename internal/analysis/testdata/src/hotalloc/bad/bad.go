// Package fixture is an lbmvet test fixture: every marked line must
// produce the quoted hotalloc finding.
package fixture

import "fmt"

func sink(v any) { _ = v }

// hotLoop is annotated hot, so every allocation below is a finding.
//
//lbm:hot
func hotLoop(q int, name string) {
	f := make([]float64, q) // want "make allocates in hot function"
	f = append(f, 1)        // want "append allocates in hot function"
	_ = new(int)            // want "new allocates in hot function"
	s := []int{1, 2}        // want "slice literal allocates"
	_ = s
	m := map[string]int{} // want "map literal allocates"
	_ = m
	label := name + ":z" // want "string concatenation allocates"
	_ = label
	fmt.Println(q) // want "formatting allocates"
	sink(q)        // want "boxes a concrete value"
	_ = any(q)     // want "conversion to interface boxes"
}

// coldLoop is not annotated: the same code is fine here.
func coldLoop(q int) {
	f := make([]float64, q)
	_ = append(f, 1)
	fmt.Println(q)
}
