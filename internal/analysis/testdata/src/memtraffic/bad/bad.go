// Package fixture is an lbmvet test fixture: every marked line must
// produce the quoted memtraffic finding.
package fixture

// missingBudget is hot and loops over cells but declares no budget; the
// finding carries the model's estimate (8 B load + 8 B store).
//
//lbm:hot
func missingBudget(dst, src []float64) { // want "kernel missingBudget has no per-cell traffic budget (estimate: 16 B/cell)"
	for i := range dst {
		dst[i] = src[i]
	}
}

// overBudget declares less than the copy loop moves.
//
//lbm:hot traffic budget=8
func overBudget(dst, src []float64) { // want "overBudget: estimated per-cell traffic 16 B exceeds the declared //lbm:traffic budget=8 B"
	for i := range dst {
		dst[i] = src[i]
	}
}

// badAssume has a valid budget but a malformed assume pin; the
// diagnostic points at the offending key, not the whole line.
//
//lbm:hot
//lbm:traffic budget=16 assume q=lots // want "want an integer or byte size like 64KiB"
func badAssume(dst, src []float64) {
	for i := range dst {
		dst[i] = src[i]
	}
}
