// Package fixture holds hot kernels whose declared //lbm:traffic
// budgets the memtraffic model must accept.
package fixture

// copyCells moves exactly one load and one store per cell.
//
//lbm:hot traffic budget=16
func copyCells(dst, src []float64) {
	for i := range dst {
		dst[i] = src[i]
	}
}

// gather prices the q-direction pull inside the cell once the assume
// pin folds the inner loops: 19 pulls of 8 B plus the 8 B store. The
// scratch array f is indexed only by the bounded direction loop and is
// register/LDM-class, so it costs nothing.
//
//lbm:hot traffic budget=160 assume q=19
func gather(q int, dst, src []float64, offs []int) {
	var f [32]float64
	for cell := 0; cell < len(dst)/q; cell++ {
		base := cell * q
		for i := 0; i < q; i++ {
			f[i] = src[base+offs[i]]
		}
		sum := 0.0
		for i := 0; i < q; i++ {
			sum += f[i]
		}
		dst[base] = sum
	}
}

// stream prices the switch as tag (1 B flag) plus the default bulk arm
// (8 B load + 8 B store); the boundary arm is not bulk traffic.
//
//lbm:hot traffic budget=17
func stream(cells []float64, flags []byte) {
	for i := range cells {
		switch flags[i] {
		case 1:
			cells[i] = 0
			cells[i] += 1
		default:
			cells[i] = cells[i] + 1
		}
	}
}

// lerp has no loops at all: O(1) per call, nothing to budget.
//
//lbm:hot
func lerp(a, b, t float64) float64 {
	return a + (b-a)*t
}

// relaxAll's only loop folds bounded under the assume pin, so no
// per-cell candidate survives and no budget is required.
//
//lbm:hot traffic assume n=4
func relaxAll(m *[4]float64, n int) {
	for i := 0; i < n; i++ {
		m[i] *= 0.5
	}
}
