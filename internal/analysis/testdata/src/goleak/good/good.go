// Package fixture holds goroutine-lifecycle shapes goleak must accept.
package fixture

import "context"

// spawnLoop is the canonical cancellable worker: every loop iteration
// can exit through the done channel.
func spawnLoop(done chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// drainRange terminates when the producer closes the channel.
func drainRange(work chan int) {
	go func() {
		for v := range work {
			_ = v
		}
	}()
}

// watchDeferred discharges its watcher on every path via defer.
func watchDeferred(run func()) {
	done := make(chan struct{})
	defer close(done)
	go func() {
		<-done
	}()
	run()
}

// watchGuarded is the psolve supervisor pattern: the watcher only
// exists when the context does, and the nil guard on the close mirrors
// the nil guard on the spawn. The nil-edge refinement must keep this
// quiet.
func watchGuarded(ctx context.Context, run func() error) error {
	var stop chan struct{}
	if ctx != nil {
		stop = make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
			case <-stop:
			}
		}()
	}
	err := run()
	if stop != nil {
		close(stop)
	}
	return err
}

// handoff passes the watched channel to another owner; the callee now
// owes the close.
func handoff(register func(chan struct{}), run func()) {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	register(done)
	run()
}
