// Package fixture is an lbmvet test fixture: every marked line must
// produce the quoted goleak finding. The package path contains /goleak/
// so the rule's serve/patch/psolve scoping admits it.
package fixture

import (
	"errors"
	"sync"
)

// spin can never return.
func spin(work chan int) {
	for {
		v := <-work
		_ = v
	}
}

// spawnForever starts a loop with no return path at all.
func spawnForever(work chan int) {
	go func() { // want "goroutine can never terminate"
		for {
			v := <-work
			_ = v
		}
	}()
	go spin(work) // want "goroutine can never terminate"
}

// waitForever parks on a WaitGroup with no cancellation channel.
func waitForever(wg *sync.WaitGroup) {
	go func() { // want "goroutine blocks on wg.Wait with no channel receive or select"
		wg.Wait()
	}()
}

// watcherLeak spawns a watchdog on a local channel but returns early
// without discharging it.
func watcherLeak(fail bool, run func()) error {
	done := make(chan struct{})
	go func() { // want "watcher goroutine on done may leak"
		select {
		case <-done:
		}
	}()
	if fail {
		return errors.New("aborted before the watcher was signalled")
	}
	run()
	close(done)
	return nil
}
