// Package fixture is an lbmvet test fixture: every marked line must
// produce the quoted ldmbudget finding.
package fixture

import "sunwaylb/internal/sunway"

func runtimeSize() int { return 128 }

// unpinnedKernel allocates from a size the analyzer cannot bound.
func unpinnedKernel(p *sunway.CPE) {
	n := runtimeSize()
	p.MustAllocFloat64(n) // want "cannot statically bound this LDM allocation"
}

// overBudgetKernel pins its size but exceeds the 64 KiB default budget.
//
//lbm:ldm assume n=10000
func overBudgetKernel(p *sunway.CPE, n int) { // want "LDM working set 80000 B exceeds the 65536 B budget"
	p.MustAllocFloat64(n)
}

// heapKernel bypasses the LDM accounting with a Go heap slice.
func heapKernel(p *sunway.CPE) {
	buf := make([]float64, 4) // want "bypassing LDM accounting"
	_ = buf
	_ = p
}

// rangeKernel allocates inside a loop with no static trip count.
func rangeKernel(p *sunway.CPE, xs []int) {
	for range xs { // want "range loop cannot be bounded"
		p.MustAllocFloat64(1)
	}
}
