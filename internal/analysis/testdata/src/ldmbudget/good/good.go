// Package fixture is an lbmvet test fixture: ldmbudget must report
// nothing here.
package fixture

import "sunwaylb/internal/sunway"

// constKernel allocates compile-time-constant sizes inside a counted
// loop: 19 × (2×70) × 8 B = 21280 B, within the 64 KiB budget.
func constKernel(p *sunway.CPE) {
	const q, bz = 19, 70
	for i := 0; i < q; i++ {
		p.MustAllocFloat64(bz)
		p.MustAllocFloat64(bz)
	}
}

// pinnedKernel pins runtime sizes to their contract maxima; branches
// contribute the max, not the sum.
//
//lbm:ldm assume nq=19 bz=70
func pinnedKernel(p *sunway.CPE, nq, bz int, async bool) {
	for i := 0; i < nq; i++ {
		p.MustAllocFloat64(bz)
	}
	if async {
		p.MustAllocFloat64(2 * nq * bz)
	} else {
		p.MustAllocFloat64(nq * bz)
	}
}

// proKernel raises the budget for an SW26010-Pro-only configuration.
//
//lbm:ldm assume n=16384 budget=256KiB
func proKernel(p *sunway.CPE, n int) {
	p.MustAllocFloat64(n)
}

// closureKernel is the cpeKernel pattern: the kernel is a closure and the
// sizes come from the enclosing function's single assignments.
func closureKernel() func(p *sunway.CPE) {
	bz := 70
	return func(p *sunway.CPE) {
		p.MustAllocFloat64(bz)
	}
}
