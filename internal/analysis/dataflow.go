package analysis

// A small forward dataflow framework over the CFG of cfg.go, plus the one
// generic analysis every consumer needs: reaching definitions. Facts are
// joined at control-flow merges (path-insensitive, may-analysis), and the
// worklist iterates to a fixpoint, so loops converge as long as the
// lattice is finite — which every client here guarantees by tracking
// finitely many keys with small bit states.
//
// Transfer functions must be pure: they run an unpredictable number of
// times while the worklist converges, so diagnostics are emitted by a
// separate reporting pass over the final facts.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// flowFact is one analysis' abstract state (a client-defined map, treated
// immutably by convention: transfer returns a fresh fact when it changes
// anything).
type flowFact any

// flowAnalysis defines a forward dataflow problem.
type flowAnalysis interface {
	// entryFact is the state on entry to the function.
	entryFact() flowFact
	// transfer computes the state after executing node n.
	transfer(n *cfgNode, in flowFact) flowFact
	// join merges the states of two incoming edges.
	join(a, b flowFact) flowFact
	// equal reports whether two facts are identical (fixpoint test).
	equal(a, b flowFact) bool
}

// edgeTransferrer is an optional refinement: a client that implements it
// can specialise the fact flowing along one particular successor edge
// (e.g. "on the else-edge of `ch != nil`, ch is nil"). succIdx indexes
// from.succs.
type edgeTransferrer interface {
	transferEdge(from *cfgNode, succIdx int, out flowFact) flowFact
}

// forward solves the dataflow problem and returns every reachable node's
// IN fact. Unreachable nodes have no entry in the result.
func forward(c *cfg, a flowAnalysis) map[*cfgNode]flowFact {
	in := make(map[*cfgNode]flowFact)
	et, hasEdges := a.(edgeTransferrer)
	in[c.entry] = a.entryFact()
	work := []*cfgNode{c.entry}
	queued := map[*cfgNode]bool{c.entry: true}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n] = false
		out := a.transfer(n, in[n])
		for i, succ := range n.succs {
			edgeOut := out
			if hasEdges {
				edgeOut = et.transferEdge(n, i, out)
			}
			cur, seen := in[succ]
			var next flowFact
			if !seen {
				next = edgeOut
			} else {
				next = a.join(cur, edgeOut)
			}
			if !seen || !a.equal(cur, next) {
				in[succ] = next
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return in
}

// ---- reaching definitions ----

// defsFact maps each variable to the set of right-hand sides that may
// currently define it; a nil expression in the set stands for a definition
// the analysis cannot name (parameter, compound assignment, closure
// capture, ...).
type defsFact map[types.Object]map[ast.Expr]bool

// reachingDefs is the reaching-definitions problem: which assignment(s)
// may have produced each variable's current value at a program point.
type reachingDefs struct {
	info *types.Info
}

func (r *reachingDefs) entryFact() flowFact { return defsFact{} }

func (r *reachingDefs) equal(a, b flowFact) bool {
	fa, fb := a.(defsFact), b.(defsFact)
	if len(fa) != len(fb) {
		return false
	}
	for obj, da := range fa {
		db, ok := fb[obj]
		if !ok || len(da) != len(db) {
			return false
		}
		for e := range da {
			if !db[e] {
				return false
			}
		}
	}
	return true
}

func (r *reachingDefs) join(a, b flowFact) flowFact {
	fa, fb := a.(defsFact), b.(defsFact)
	out := make(defsFact, len(fa)+len(fb))
	for obj, d := range fa {
		set := make(map[ast.Expr]bool, len(d))
		for e := range d {
			set[e] = true
		}
		out[obj] = set
	}
	for obj, d := range fb {
		set := out[obj]
		if set == nil {
			set = make(map[ast.Expr]bool, len(d))
			out[obj] = set
		}
		for e := range d {
			set[e] = true
		}
	}
	return out
}

func (r *reachingDefs) transfer(n *cfgNode, in flowFact) flowFact {
	fact := in.(defsFact)
	var defs []struct {
		id  *ast.Ident
		rhs ast.Expr
	}
	record := func(e ast.Expr, rhs ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			defs = append(defs, struct {
				id  *ast.Ident
				rhs ast.Expr
			}{id, rhs})
		}
	}
	switch s := n.stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) && (s.Tok == token.DEFINE || s.Tok == token.ASSIGN) {
			for i, lhs := range s.Lhs {
				record(lhs, s.Rhs[i])
			}
		} else {
			// Multi-value, compound (+=, ...): definitions are opaque.
			for _, lhs := range s.Lhs {
				record(lhs, nil)
			}
		}
	case *ast.IncDecStmt:
		record(s.X, nil)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							record(name, vs.Values[i])
						} else {
							record(name, nil)
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		record(s.Key, nil)
		record(s.Value, nil)
	}
	if len(defs) == 0 {
		return in
	}
	out := make(defsFact, len(fact)+len(defs))
	for obj, d := range fact {
		out[obj] = d
	}
	for _, d := range defs {
		obj := r.info.Defs[d.id]
		if obj == nil {
			obj = r.info.Uses[d.id]
		}
		if obj == nil {
			continue
		}
		out[obj] = map[ast.Expr]bool{d.rhs: true}
	}
	return out
}

// soleDef returns the unique reaching definition of obj at the fact, or
// nil when there are none, several, or an unknown one.
func soleDef(fact defsFact, obj types.Object) ast.Expr {
	set := fact[obj]
	if len(set) != 1 {
		return nil
	}
	for e := range set {
		return e // may be nil (unknown), which the caller treats as "no"
	}
	return nil
}

// objectOf resolves an identifier to its object, trying uses then defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
