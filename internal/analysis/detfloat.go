package analysis

// detfloat enforces bit-determinism in the physics and checkpoint paths.
// The whole recovery architecture rests on it: the supervisor replays
// steps from a checkpoint and expects bit-identical states (DESIGN.md
// §7), the swlb engine is validated cell-for-cell against core.StepFused,
// and cross-backend comparisons assume one canonical summation order.
// Two classes of nondeterminism are caught statically:
//
//	detfloat/maporder — accumulating a float across `for range m` over a
//	    map: Go randomises map iteration order, and float addition does
//	    not commute in rounding, so the same state can sum to different
//	    bits on different runs. Collect keys and sort, or index
//	    deterministically.
//	detfloat/rand — calls through math/rand's package-level functions
//	    (auto-seeded since Go 1.20, nondeterministic across runs).
//	    Deterministic code must use rand.New(rand.NewSource(seed)).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerDetFloat is the detfloat rule.
var AnalyzerDetFloat = &Analyzer{
	Name: "detfloat",
	Doc:  "physics/checkpoint paths must stay bit-deterministic",
	Run:  runDetFloat,
}

func runDetFloat(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.RangeStmt:
				checkMapOrderAccum(pass, v)
			case *ast.CallExpr:
				checkGlobalRand(pass, v)
			}
			return true
		})
	}
}

// checkMapOrderAccum flags float accumulation into variables declared
// outside a range-over-map loop.
func checkMapOrderAccum(pass *Pass, rng *ast.RangeStmt) {
	t, ok := pass.Info().Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := t.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(st.Lhs) == 1 && isOuterFloat(pass, st.Lhs[0], rng) {
				pass.Reportf(st.Pos(),
					"float accumulation across map iteration is order-dependent (map order is randomised); sort the keys first")
			}
		case token.ASSIGN:
			// x = x + v (or x - v, …) spelled out.
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			be, ok := st.Rhs[0].(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
			default:
				return true
			}
			if sameObject(pass, st.Lhs[0], be.X) && isOuterFloat(pass, st.Lhs[0], rng) {
				pass.Reportf(st.Pos(),
					"float accumulation across map iteration is order-dependent (map order is randomised); sort the keys first")
			}
		}
		return true
	})
}

// isOuterFloat reports whether e is a float32/float64 variable declared
// outside the range statement.
func isOuterFloat(pass *Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	t, ok := pass.Info().Types[e]
	if !ok || t.Type == nil {
		return false
	}
	b, ok := t.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return false
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		// Selector or index expression: the container necessarily
		// outlives the loop body → order-dependent.
		return true
	}
	obj := pass.Info().Uses[id]
	if obj == nil {
		return false
	}
	// Declared inside the loop body → reset every iteration → safe.
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

func sameObject(pass *Pass, a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	if aok && bok {
		ao := pass.Info().Uses[ai]
		return ao != nil && ao == pass.Info().Uses[bi]
	}
	return exprString(a) == exprString(b)
}

// checkGlobalRand flags package-level math/rand calls (global, auto-
// seeded source); constructing an explicit seeded source is allowed.
func checkGlobalRand(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Info().Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return // methods on an explicit *rand.Rand are fine
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return
	}
	pass.Reportf(call.Pos(),
		"%s.%s uses the auto-seeded global source and is nondeterministic across runs; use rand.New(rand.NewSource(seed))",
		fn.Pkg().Name(), fn.Name())
}
