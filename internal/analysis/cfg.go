package analysis

// An intra-procedural control-flow graph over one function body, built
// directly from the AST. Each node executes at most one "atomic unit": a
// simple statement (assignment, call, send, return, defer, go, ...) or a
// guard expression (if/for condition, switch tag, range operand). Compound
// statements contribute edges, not nodes, so a dataflow transfer function
// never has to worry about descending into nested control flow.
//
// Modelling decisions, chosen for the analyzers that consume the graph
// (goleak, locksafe, chanproto):
//
//   - return statements and calls to the builtin panic edge to the shared
//     exit node; panic edges are marked so exit-state checks can treat
//     unwinding differently from returning.
//   - function literals are opaque: their bodies get their own CFGs and
//     are analyzed as independent functions.
//   - defer statements are ordinary nodes (their arguments are evaluated
//     in-line) and are additionally collected in cfg.defers so exit checks
//     can apply deferred cleanup.
//   - select commits to one of its communication clauses; a select with no
//     clauses blocks forever (no successors).
//   - switch case guards are not modelled; control edges go from the tag
//     node straight to each clause body (plus the fall-out edge when there
//     is no default clause).

import (
	"go/ast"
	"go/token"
)

// cfgNode is one CFG vertex.
type cfgNode struct {
	index int
	// stmt is the simple statement executed here (nil for synthetic
	// nodes: entry, exit, condition-less loop heads).
	stmt ast.Stmt
	// cond is the guard expression evaluated here (if/for conditions,
	// switch tags, range operands); nil otherwise.
	cond ast.Expr
	// inSelect marks communication statements that are select arms: a
	// send here does not commit the goroutine the way a bare send does.
	inSelect bool
	// isPanic marks nodes that leave the function by panicking rather
	// than returning.
	isPanic bool
	succs   []*cfgNode
}

// shallowNodes returns the AST nodes evaluated at this node, without any
// nested statements — safe for transfer functions to ast.Inspect.
func (n *cfgNode) shallowNodes() []ast.Node {
	var out []ast.Node
	if rs, ok := n.stmt.(*ast.RangeStmt); ok {
		// The head of a range loop evaluates the operand and assigns the
		// iteration variables; the body is separate nodes.
		if rs.Key != nil {
			out = append(out, rs.Key)
		}
		if rs.Value != nil {
			out = append(out, rs.Value)
		}
		out = append(out, rs.X)
		return out
	}
	if n.stmt != nil {
		out = append(out, n.stmt)
	}
	if n.cond != nil {
		out = append(out, n.cond)
	}
	return out
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	entry, exit *cfgNode
	nodes       []*cfgNode
	// defers lists the defer statements in source order; whether a given
	// defer actually runs is path-dependent, which exit checks treat
	// conservatively.
	defers []*ast.DeferStmt
}

// buildCFG constructs the CFG of a function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{c: &cfg{}}
	b.c.entry = b.newNode(nil, nil)
	b.c.exit = b.newNode(nil, nil)
	first := b.block(body.List, b.c.exit)
	b.c.entry.succs = []*cfgNode{first}
	// Resolve goto targets now that every label has been seen.
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			g.node.succs = []*cfgNode{target}
		} else {
			g.node.succs = []*cfgNode{b.c.exit}
		}
	}
	return b.c
}

// reachable returns the node set reachable from entry.
func (c *cfg) reachable() map[*cfgNode]bool {
	seen := make(map[*cfgNode]bool)
	stack := []*cfgNode{c.entry}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.succs...)
	}
	return seen
}

// exitReachable reports whether any return path exists: a goroutine whose
// body's exit is unreachable can never terminate.
func (c *cfg) exitReachable() bool {
	return c.reachable()[c.exit]
}

type loopTarget struct {
	label string
	node  *cfgNode
}

type pendingGoto struct {
	node  *cfgNode
	label string
}

type cfgBuilder struct {
	c         *cfg
	breaks    []loopTarget
	continues []loopTarget
	labels    map[string]*cfgNode
	gotos     []pendingGoto
	// fallthroughTarget is the body entry of the next switch clause.
	fallthroughTarget *cfgNode
	// pendingLabel is the label of the labeled statement being built, so
	// loops and switches can register labeled break/continue targets.
	pendingLabel string
}

func (b *cfgBuilder) newNode(stmt ast.Stmt, cond ast.Expr) *cfgNode {
	n := &cfgNode{index: len(b.c.nodes), stmt: stmt, cond: cond}
	b.c.nodes = append(b.c.nodes, n)
	return n
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) breakTarget(label string) *cfgNode {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if label == "" || b.breaks[i].label == label {
			return b.breaks[i].node
		}
	}
	return b.c.exit // malformed input; keep the graph connected
}

func (b *cfgBuilder) continueTarget(label string) *cfgNode {
	for i := len(b.continues) - 1; i >= 0; i-- {
		if b.continues[i].node != nil && (label == "" || b.continues[i].label == label) {
			return b.continues[i].node
		}
	}
	return b.c.exit
}

// block builds stmts so control falls through to next, returning the
// entry node of the sequence.
func (b *cfgBuilder) block(stmts []ast.Stmt, next *cfgNode) *cfgNode {
	for i := len(stmts) - 1; i >= 0; i-- {
		next = b.stmt(stmts[i], next)
	}
	return next
}

func (b *cfgBuilder) stmt(s ast.Stmt, next *cfgNode) *cfgNode {
	switch s := s.(type) {
	case nil:
		return next
	case *ast.EmptyStmt:
		return next
	case *ast.BlockStmt:
		return b.block(s.List, next)

	case *ast.LabeledStmt:
		// A synthetic label node keeps goto resolution independent of
		// build order; the labeled statement hangs off it.
		lbl := b.newNode(nil, nil)
		if b.labels == nil {
			b.labels = make(map[string]*cfgNode)
		}
		b.labels[s.Label.Name] = lbl
		b.pendingLabel = s.Label.Name
		inner := b.stmt(s.Stmt, next)
		b.pendingLabel = ""
		lbl.succs = []*cfgNode{inner}
		return lbl

	case *ast.ReturnStmt:
		n := b.newNode(s, nil)
		n.succs = []*cfgNode{b.c.exit}
		return n

	case *ast.BranchStmt:
		n := b.newNode(s, nil)
		switch s.Tok {
		case token.BREAK:
			n.succs = []*cfgNode{b.breakTarget(labelName(s.Label))}
		case token.CONTINUE:
			n.succs = []*cfgNode{b.continueTarget(labelName(s.Label))}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{node: n, label: labelName(s.Label)})
		case token.FALLTHROUGH:
			if b.fallthroughTarget != nil {
				n.succs = []*cfgNode{b.fallthroughTarget}
			} else {
				n.succs = []*cfgNode{next}
			}
		}
		return n

	case *ast.DeferStmt:
		b.c.defers = append(b.c.defers, s)
		n := b.newNode(s, nil)
		n.succs = []*cfgNode{next}
		return n

	case *ast.ExprStmt:
		n := b.newNode(s, nil)
		if isPanicCall(s.X) {
			n.isPanic = true
			n.succs = []*cfgNode{b.c.exit}
		} else {
			n.succs = []*cfgNode{next}
		}
		return n

	case *ast.IfStmt:
		cond := b.newNode(nil, s.Cond)
		thenEntry := b.block(s.Body.List, next)
		elseEntry := next
		if s.Else != nil {
			elseEntry = b.stmt(s.Else, next)
		}
		cond.succs = []*cfgNode{thenEntry, elseEntry}
		if s.Init != nil {
			return b.stmt(s.Init, cond)
		}
		return cond

	case *ast.ForStmt:
		label := b.takeLabel()
		head := b.newNode(nil, s.Cond)
		cont := head
		if s.Post != nil {
			cont = b.stmt(s.Post, head)
		}
		b.breaks = append(b.breaks, loopTarget{label, next})
		b.continues = append(b.continues, loopTarget{label, cont})
		bodyEntry := b.block(s.Body.List, cont)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		if s.Cond != nil {
			head.succs = []*cfgNode{bodyEntry, next}
		} else {
			head.succs = []*cfgNode{bodyEntry}
		}
		if s.Init != nil {
			return b.stmt(s.Init, head)
		}
		return head

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newNode(s, nil)
		b.breaks = append(b.breaks, loopTarget{label, next})
		b.continues = append(b.continues, loopTarget{label, head})
		bodyEntry := b.block(s.Body.List, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		head.succs = []*cfgNode{bodyEntry, next}
		return head

	case *ast.SwitchStmt:
		return b.switchStmt(s.Init, s.Tag, nil, s.Body, next)
	case *ast.TypeSwitchStmt:
		return b.switchStmt(s.Init, nil, s.Assign, s.Body, next)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.newNode(nil, nil)
		b.breaks = append(b.breaks, loopTarget{label, next})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			bodyEntry := b.block(cc.Body, next)
			if cc.Comm != nil {
				comm := b.stmt(cc.Comm, bodyEntry)
				comm.inSelect = true
				head.succs = append(head.succs, comm)
			} else {
				head.succs = append(head.succs, bodyEntry)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		// A select with no clauses blocks forever: head keeps no succs.
		return head

	default:
		// Assign, IncDec, Send, Go, Decl, ...: one node, one successor.
		n := b.newNode(s, nil)
		n.succs = []*cfgNode{next}
		return n
	}
}

// switchStmt builds expression and type switches: the tag/assign node
// fans out to each clause body; fallthrough edges to the following clause.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, next *cfgNode) *cfgNode {
	label := b.takeLabel()
	head := b.newNode(assign, tag)
	b.breaks = append(b.breaks, loopTarget{label, next})
	hasDefault := false
	// Build clauses in reverse so each knows its fallthrough target.
	entries := make([]*cfgNode, len(body.List))
	following := next
	for i := len(body.List) - 1; i >= 0; i-- {
		cc := body.List[i].(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		saved := b.fallthroughTarget
		b.fallthroughTarget = following
		entries[i] = b.block(cc.Body, next)
		b.fallthroughTarget = saved
		following = entries[i]
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	head.succs = append(head.succs, entries...)
	if !hasDefault {
		head.succs = append(head.succs, next)
	}
	if init != nil {
		return b.stmt(init, head)
	}
	return head
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// inspectShallow walks n like ast.Inspect but does not descend into
// function literals: a closure's statements belong to its own CFG.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return f(m)
	})
}
