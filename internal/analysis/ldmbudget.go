package analysis

// ldmbudget enforces the paper's §III-B hardware contract: a CPE kernel's
// LDM working set must fit the chip's scratchpad (64 KiB on SW26010,
// 256 KiB on SW26010-Pro). It finds every function whose parameter is a
// *sunway.CPE — the kernel entry-point shape of the Athread model — and
// constant-propagates the sizes of all AllocFloat64/MustAllocFloat64
// calls reachable in its body, multiplying allocations inside counted
// loops by their trip counts and taking the max over if/switch branches.
//
// Sizes that depend on runtime values must be pinned to their
// contract-maximum via the //lbm:ldm directive on the enclosing
// declaration, e.g.:
//
//	//lbm:ldm assume nq=19 bz=70
//
// An unpinned, unboundable allocation is itself a finding: if the
// analyzer cannot bound the working set, neither can a reviewer.

import (
	"go/ast"
	"go/token"
	"go/types"
)

const sunwayPkgPath = "sunwaylb/internal/sunway"

// defaultLDMBudget is the SW26010 LDM capacity — the smallest chip the
// kernels must fit (SW26010-Pro-only kernels may raise it via
// //lbm:ldm budget=256KiB).
const defaultLDMBudget = 64 * 1024

// AnalyzerLDMBudget is the ldmbudget rule.
var AnalyzerLDMBudget = &Analyzer{
	Name: "ldmbudget",
	Doc:  "CPE kernel LDM working sets must fit the chip's 64 KiB scratchpad",
	Run:  runLDMBudget,
}

func runLDMBudget(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			dir := funcDirective(fn, "ldm")
			assume, budget := parseLDMDirective(pass, dir)
			// The declaration itself may be a kernel...
			if isCPEKernelFunc(pass, fn.Type) {
				checkKernel(pass, fn.Type, fn.Body, fn, assume, budget)
			}
			// ...and kernels are routinely built as closures returned
			// from an engine method (swlb's cpeKernel pattern).
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok || !isCPEKernelFunc(pass, lit.Type) {
					return true
				}
				checkKernel(pass, lit.Type, lit.Body, fn, assume, budget)
				return false // nested kernels are counted by their own check
			})
		}
	}
}

// parseLDMDirective extracts the assume map and budget from //lbm:ldm.
// Malformed values are findings at the offending key=value, not silent
// no-ops: an ignored budget is a disabled contract.
func parseLDMDirective(pass *Pass, dir *directive) (map[string]int64, int64) {
	assume := make(map[string]int64)
	budget := int64(defaultLDMBudget)
	if dir == nil {
		return assume, budget
	}
	for k, v := range dir.Args {
		if v == "true" {
			continue // bare marker word (assume, ...)
		}
		n, ok := parseByteSize(v)
		if !ok {
			pass.Reportf(dir.keyPos(k),
				"malformed //lbm:%s value %s=%s: want an integer or byte size like 64KiB", dir.Kind, k, v)
			continue
		}
		if k == "budget" {
			budget = n
		} else {
			assume[k] = n
		}
	}
	return assume, budget
}

// isCPEKernelFunc reports whether the function type has a *sunway.CPE
// parameter (the kernel entry-point shape).
func isCPEKernelFunc(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t, ok := pass.Info().Types[field.Type]; ok && isNamed(t.Type, sunwayPkgPath, "CPE") {
			return true
		}
	}
	return false
}

// checkKernel bounds one kernel body and reports violations.
func checkKernel(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt, enclosing *ast.FuncDecl,
	assume map[string]int64, budget int64) {
	env := newEvalEnv(pass.Info(), enclosing, assume)
	c := &ldmChecker{pass: pass, env: env}
	total, bounded := c.blockCost(body.List)
	if !bounded {
		return // the unboundable sites were already reported
	}
	if total > budget {
		name := "CPE kernel"
		if enclosing != nil {
			name = enclosing.Name.Name
		}
		pass.Reportf(ft.Pos(),
			"%s: LDM working set %d B exceeds the %d B budget (reduce block size or raise //lbm:ldm budget=)",
			name, total, budget)
	}
	// Independently: heap slices of float64 inside a kernel bypass the
	// LDM accounting entirely.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 2 {
			if t, ok := pass.Info().Types[call.Args[0]]; ok {
				if sl, ok := t.Type.Underlying().(*types.Slice); ok {
					if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Float64 {
						pass.Reportf(call.Pos(),
							"CPE kernel allocates a []float64 from the Go heap, bypassing LDM accounting; use p.AllocFloat64")
					}
				}
			}
		}
		return true
	})
}

// ldmChecker folds a kernel body into a byte bound.
type ldmChecker struct {
	pass *Pass
	env  *evalEnv
}

// blockCost returns the LDM bytes allocated by the statements, and
// whether the bound is sound (false after reporting an unboundable site).
func (c *ldmChecker) blockCost(stmts []ast.Stmt) (int64, bool) {
	var total int64
	ok := true
	for _, st := range stmts {
		n, sok := c.stmtCost(st)
		total += n
		ok = ok && sok
	}
	return total, ok
}

func (c *ldmChecker) stmtCost(st ast.Stmt) (int64, bool) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		return c.blockCost(s.List)
	case *ast.LabeledStmt:
		return c.stmtCost(s.Stmt)
	case *ast.IfStmt:
		thenC, okT := c.stmtCost(s.Body)
		var elseC int64
		okE := true
		if s.Else != nil {
			elseC, okE = c.stmtCost(s.Else)
		}
		return max(thenC, elseC), okT && okE
	case *ast.SwitchStmt:
		return c.caseMax(s.Body)
	case *ast.TypeSwitchStmt:
		return c.caseMax(s.Body)
	case *ast.ForStmt:
		body, okB := c.stmtCost(s.Body)
		if body == 0 {
			return 0, okB
		}
		trip, okT := loopTripCount(c.env, s)
		if !okT {
			c.pass.Reportf(s.Pos(),
				"LDM allocation inside a loop whose trip count cannot be bounded; use a counted loop or //lbm:ldm assume")
			return body, false
		}
		return body * trip, okB
	case *ast.RangeStmt:
		body, okB := c.stmtCost(s.Body)
		if body == 0 {
			return 0, okB
		}
		c.pass.Reportf(s.Pos(),
			"LDM allocation inside a range loop cannot be bounded; use a counted loop")
		return body, false
	default:
		return c.leafCost(st)
	}
}

func (c *ldmChecker) caseMax(body *ast.BlockStmt) (int64, bool) {
	var m int64
	ok := true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
		case *ast.CommClause:
			stmts = cc.Body
		}
		n, sok := c.blockCost(stmts)
		m = max(m, n)
		ok = ok && sok
	}
	return m, ok
}

// loopTripCount folds the canonical counted loop `for i := A; i < B; i++`
// (and the <= / i += k variants) into an iteration bound. Shared by
// ldmbudget (LDM working sets) and memtraffic (per-cell byte estimates).
func loopTripCount(env *evalEnv, s *ast.ForStmt) (int64, bool) {
	init, iOK := s.Init.(*ast.AssignStmt)
	cond, cOK := s.Cond.(*ast.BinaryExpr)
	if !iOK || !cOK || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return 0, false
	}
	lo, ok := env.eval(init.Rhs[0])
	if !ok {
		return 0, false
	}
	hi, ok := env.eval(cond.Y)
	if !ok {
		return 0, false
	}
	span := hi - lo
	switch cond.Op {
	case token.LSS:
	case token.LEQ:
		span++
	default:
		return 0, false
	}
	if span < 0 {
		span = 0
	}
	step := int64(1)
	switch post := s.Post.(type) {
	case *ast.IncDecStmt:
		// step 1
	case *ast.AssignStmt:
		if len(post.Rhs) != 1 {
			return 0, false
		}
		st, ok := env.eval(post.Rhs[0])
		if !ok || st <= 0 {
			return 0, false
		}
		step = st
	default:
		return 0, false
	}
	return (span + step - 1) / step, true
}

// leafCost sums the LDM allocations syntactically inside one simple
// statement, descending into function literals once (helper closures
// defined in the kernel body).
func (c *ldmChecker) leafCost(st ast.Stmt) (int64, bool) {
	var total int64
	ok := true
	ast.Inspect(st, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel || (sel.Sel.Name != "AllocFloat64" && sel.Sel.Name != "MustAllocFloat64") {
			return true
		}
		if t, tok := c.pass.Info().Types[sel.X]; !tok || !isNamed(t.Type, sunwayPkgPath, "CPE") {
			return true
		}
		if len(call.Args) != 1 {
			return true
		}
		nElems, eok := c.env.eval(call.Args[0])
		if !eok {
			c.pass.Reportf(call.Pos(),
				"cannot statically bound this LDM allocation; pin its size variables with //lbm:ldm assume name=value on the enclosing declaration")
			ok = false
			return true
		}
		total += nElems * 8
		return true
	})
	return total, ok
}
