package analysis

// locksafe checks sync.Mutex/RWMutex discipline on the CFG: the serve
// scheduler and patch balancer guard shared tables with manual
// Lock/Unlock pairs across early returns, and the race detector only
// catches a missed unlock when a schedule happens to contend. The rule
// runs a per-function forward dataflow with a tiny lattice per lock key
// ({may-locked, may-unlocked}, joined at merges) and reports only
// definite states, so divergent-but-correct branch patterns stay quiet:
//
//   - a Lock where the lock is definitely held — double lock, deadlock;
//   - an Unlock where the lock is definitely not held — double unlock,
//     runtime fatal;
//   - a function exit where the lock may still be held and no defer
//     releases it — the missing-unlock-on-error-path bug class;
//   - an explicit panic while definitely holding a lock that no defer
//     releases — the unlock-on-panic-path contract;
//   - lock values copied: by-value receivers/params/results of
//     lock-bearing types, and assignments that copy a lock-bearing value
//     (the go vet copylocks classes that matter here).
//
// Function literals are analyzed as functions of their own: a closure
// that locks and unlocks internally is checked internally, and a
// `defer mu.Unlock()` (or a deferred closure that unlocks) discharges
// the exit check.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerLockSafe is the locksafe rule.
var AnalyzerLockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "Lock/Unlock must pair on every path; no double lock/unlock or lock copies",
	Run:  runLockSafe,
}

const (
	lockMayHeld = 1 << iota
	lockMayFree
)

func runLockSafe(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(pass, fn)
			if fn.Body == nil {
				continue
			}
			checkLockFlow(pass, fn.Name.Name, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLockFlow(pass, fn.Name.Name+" closure", lit.Body)
				}
				return true
			})
		}
	}
}

// syncLockCall classifies a call as a sync lock operation, returning the
// lock key ("s.mu", "b.cond.L", ... with an /R suffix for reader locks)
// and the method name; ok is false for anything else.
func syncLockCall(pass *Pass, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	obj := pass.Info().Uses[sel.Sel]
	if obj == nil || !isPkgPath(obj, "sync") {
		return "", "", false
	}
	key = exprString(sel.X)
	if strings.HasPrefix(sel.Sel.Name, "R") || sel.Sel.Name == "TryRLock" {
		key += "/R"
	}
	return key, sel.Sel.Name, true
}

// lockFact maps lock keys to their may-state bits.
type lockFact map[string]uint8

type lockFlow struct {
	pass     *Pass
	poisoned map[string]bool // keys touched by TryLock: state unknowable
}

func (l *lockFlow) entryFact() flowFact { return lockFact{} }

func (l *lockFlow) equal(a, b flowFact) bool {
	fa, fb := a.(lockFact), b.(lockFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if fb[k] != v {
			return false
		}
	}
	return true
}

func (l *lockFlow) join(a, b flowFact) flowFact {
	fa, fb := a.(lockFact), b.(lockFact)
	out := make(lockFact, len(fa)+len(fb))
	for k, v := range fa {
		out[k] = v
	}
	for k, v := range fb {
		if cur, ok := out[k]; ok {
			out[k] = cur | v
		} else {
			// Touched on one path only: the other path left it free.
			out[k] = v | lockMayFree
		}
	}
	for k, v := range fa {
		if _, ok := fb[k]; !ok {
			out[k] = v | lockMayFree
		}
	}
	return out
}

func (l *lockFlow) transfer(n *cfgNode, in flowFact) flowFact {
	// A defer's lock ops run at exit, not here; deferUnlockKeys accounts
	// for them in the exit and panic checks.
	if _, isDefer := n.stmt.(*ast.DeferStmt); isDefer {
		return in
	}
	fact := in.(lockFact)
	var out lockFact
	mutate := func() lockFact {
		if out == nil {
			out = make(lockFact, len(fact)+1)
			for k, v := range fact {
				out[k] = v
			}
		}
		return out
	}
	for _, sn := range n.shallowNodes() {
		inspectShallow(sn, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			key, method, ok := syncLockCall(l.pass, call)
			if !ok || l.poisoned[key] {
				return true
			}
			switch method {
			case "Lock", "RLock":
				mutate()[key] = lockMayHeld
			case "Unlock", "RUnlock":
				mutate()[key] = lockMayFree
			}
			return true
		})
	}
	if out == nil {
		return in
	}
	return out
}

// checkLockFlow runs the pairing dataflow over one function body.
func checkLockFlow(pass *Pass, name string, body *ast.BlockStmt) {
	g := buildCFG(body)
	flow := &lockFlow{pass: pass, poisoned: make(map[string]bool)}
	// TryLock makes a key's state branch-dependent in a way the lattice
	// cannot see; give up on those keys entirely.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if key, method, ok := syncLockCall(pass, call); ok && strings.HasPrefix(method, "Try") {
				flow.poisoned[key] = true
				flow.poisoned[strings.TrimSuffix(key, "/R")] = true
			}
		}
		return true
	})
	in := forward(g, flow)
	deferred := deferUnlockKeys(pass, g)

	// Report pass over the converged facts, in source order.
	nodes := make([]*cfgNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		if _, reached := in[n]; reached {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodePos(nodes[i]) < nodePos(nodes[j]) })

	lockSite := make(map[string]ast.Node)
	exitHeld := make(map[string]bool)
	for _, n := range nodes {
		fact := in[n].(lockFact)
		if _, isDefer := n.stmt.(*ast.DeferStmt); !isDefer {
			for _, sn := range n.shallowNodes() {
				inspectShallow(sn, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					key, method, ok := syncLockCall(pass, call)
					if !ok || flow.poisoned[key] {
						return true
					}
					state, tracked := fact[key]
					switch method {
					case "Lock", "RLock":
						if lockSite[key] == nil {
							lockSite[key] = call
						}
						if tracked && state == lockMayHeld {
							pass.Reportf(call.Pos(), "double lock of %s: already held on every path here (deadlock)", key)
						}
					case "Unlock", "RUnlock":
						if tracked && state == lockMayFree {
							pass.Reportf(call.Pos(), "%s of %s: already unlocked on every path here (double unlock or never locked)", method, key)
						}
					}
					return true
				})
			}
		}
		// Explicit panic while definitely holding an undeferred lock.
		if n.isPanic {
			for key, state := range fact {
				if state == lockMayHeld && !deferred[key] && !flow.poisoned[key] {
					pass.Reportf(n.stmt.Pos(), "panics while holding %s with no deferred unlock", key)
				}
			}
		}
		// Exit state: join over non-panic predecessors of exit.
		if !n.isPanic {
			for _, s := range n.succs {
				if s == g.exit {
					out := flow.transfer(n, in[n]).(lockFact)
					for key, state := range out {
						if state&lockMayHeld != 0 && !deferred[key] && !flow.poisoned[key] {
							exitHeld[key] = true
						}
					}
				}
			}
		}
	}
	for key := range exitHeld {
		site := lockSite[key]
		if site == nil {
			continue // lock inherited from the caller: not ours to pair
		}
		pass.Reportf(site.Pos(),
			"%s may still be held when %s returns: some path misses the unlock (or use defer)", key, name)
	}
}

// deferUnlockKeys returns the lock keys a function's defers release:
// direct `defer mu.Unlock()` calls and deferred closures whose body
// unlocks a key more often than it locks it.
func deferUnlockKeys(pass *Pass, g *cfg) map[string]bool {
	out := make(map[string]bool)
	for _, d := range g.defers {
		if key, method, ok := syncLockCall(pass, d.Call); ok {
			if method == "Unlock" || method == "RUnlock" {
				out[key] = true
			}
			continue
		}
		lit, ok := d.Call.Fun.(*ast.FuncLit)
		if !ok {
			continue
		}
		locks := make(map[string]int)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, method, ok := syncLockCall(pass, call); ok {
					switch method {
					case "Lock", "RLock":
						locks[key]++
					case "Unlock", "RUnlock":
						locks[key]--
					}
				}
			}
			return true
		})
		for key, n := range locks {
			if n < 0 {
				out[key] = true
			}
		}
	}
	return out
}

func nodePos(n *cfgNode) int {
	if n.stmt != nil {
		return int(n.stmt.Pos())
	}
	if n.cond != nil {
		return int(n.cond.Pos())
	}
	return 1 << 30
}

// ---- lock copies (AST-level) ----

// containsLockType reports whether t holds a sync.Mutex or sync.RWMutex
// by value (directly, embedded, or in an array).
func containsLockType(t types.Type, depth int) bool {
	if depth > 6 {
		return false
	}
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if isPkgPath(obj, "sync") && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
		return containsLockType(u.Underlying(), depth+1)
	case *types.Alias:
		return containsLockType(types.Unalias(u), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockType(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLockType(u.Elem(), depth+1)
	}
	return false
}

// checkLockCopies flags by-value lock passing on a function signature and
// lock-copying assignments in its body.
func checkLockCopies(pass *Pass, fn *ast.FuncDecl) {
	checkFields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t, ok := pass.Info().Types[f.Type]
			if !ok {
				continue
			}
			if _, isPtr := t.Type.(*types.Pointer); isPtr {
				continue
			}
			if containsLockType(t.Type, 0) {
				pass.Reportf(f.Pos(), "%s of %s passes a lock by value; use a pointer", what, fn.Name.Name)
			}
		}
	}
	checkFields(fn.Recv, "receiver")
	if fn.Type.Params != nil {
		checkFields(fn.Type.Params, "parameter")
	}
	if fn.Type.Results != nil {
		checkFields(fn.Type.Results, "result")
	}
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			switch rhs.(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			default:
				continue // fresh values (literals, calls) are not copies
			}
			if t, ok := pass.Info().Types[rhs]; ok && containsLockType(t.Type, 0) {
				pass.Reportf(rhs.Pos(), "assignment copies a lock value (%s)", exprString(rhs))
			}
		}
		return true
	})
}
