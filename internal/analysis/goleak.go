package analysis

// goleak enforces the service subsystems' goroutine-lifecycle discipline
// (the SupervisorOptions.Ctx contract): every goroutine spawned in
// internal/serve, internal/patch or internal/psolve must be cancellable
// or provably terminating. Three checks, all on the CFG of cfg.go:
//
//  1. termination — the spawned body's exit node must be reachable: a
//     bare `for { work() }` (or `for { v := <-ch; ... }` with no break)
//     can never return and leaks once its inputs dry up.
//  2. bounded blocking — a body that parks on sync.WaitGroup.Wait or
//     sync.Cond.Wait and contains no channel receive/select has no
//     cancellation path; if the wait is bounded by construction, say so
//     with a //lint:ignore and a reason.
//  3. watcher close — when a function spawns a goroutine that receives
//     from a locally made channel (the watchdog pattern), every exit path
//     of the spawner must close or signal that channel, or the watcher
//     outlives the work it watches. The dataflow is nil-guard aware: on
//     the nil edge of `if ch != nil`, the channel was never made, so no
//     watcher exists either.
//
// Other packages are out of scope: batch-style code (mpi rank loops, CPE
// fan-out) joins its goroutines with WaitGroups inside one call and has
// no daemon lifecycle to violate.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerGoLeak is the goleak rule.
var AnalyzerGoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines in serve/patch/psolve must have a cancellation or termination path",
	Run:  runGoLeak,
}

// goleakScoped limits the rule to the daemon-style subsystems (and its
// own fixtures).
func goleakScoped(path string) bool {
	for _, frag := range []string{"/serve", "/patch", "/psolve", "/goleak/"} {
		if strings.Contains(path+"/", frag) {
			return true
		}
	}
	return false
}

func runGoLeak(pass *Pass) {
	if !goleakScoped(pass.Pkg.Path) {
		return
	}
	decls := packageFuncDecls(pass.Pkg)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpawnsIn(pass, decls, fn.Body)
		}
	}
}

// packageFuncDecls maps function and method objects to their
// declarations, so `go s.loop()` resolves to the body it runs.
func packageFuncDecls(pkg *Package) map[types.Object]*ast.FuncDecl {
	out := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pkg.Info.Defs[fn.Name]; obj != nil {
					out[obj] = fn
				}
			}
		}
	}
	return out
}

// checkSpawnsIn runs the three lifecycle checks on every go statement in
// one function body (including spawns inside nested closures — each
// closure body is scanned once, from its lexical position here).
func checkSpawnsIn(pass *Pass, decls map[types.Object]*ast.FuncDecl, body *ast.BlockStmt) {
	var watchers []watcherSpawn
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		spawned := spawnedBody(pass, decls, gs)
		if spawned == nil {
			return true
		}
		g := buildCFG(spawned)
		if !g.exitReachable() {
			pass.Reportf(gs.Pos(),
				"goroutine can never terminate: no return path from its loop; select on a ctx.Done()/done channel (SupervisorOptions.Ctx discipline)")
		} else if prim := unboundedWait(pass, spawned); prim != "" {
			pass.Reportf(gs.Pos(),
				"goroutine blocks on %s with no channel receive or select to cancel it; if the wait is bounded by construction, document why with //lint:ignore goleak", prim)
		}
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			for _, obj := range watchedChannels(pass, lit.Body) {
				// Only channels the spawner itself declares: a channel
				// passed in from outside is its caller's to close.
				if obj.Pos() >= body.Pos() && obj.Pos() < body.End() {
					watchers = append(watchers, watcherSpawn{gs: gs, ch: obj})
				}
			}
		}
		return true
	})
	if len(watchers) > 0 {
		checkWatcherClose(pass, body, watchers)
	}
}

// spawnedBody resolves the body a go statement runs: a literal's body, or
// the declaration of a same-package function/method.
func spawnedBody(pass *Pass, decls map[types.Object]*ast.FuncDecl, gs *ast.GoStmt) *ast.BlockStmt {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn := decls[objectOf(pass.Info(), fun)]; fn != nil {
			return fn.Body
		}
	case *ast.SelectorExpr:
		if fn := decls[objectOf(pass.Info(), fun.Sel)]; fn != nil {
			return fn.Body
		}
	}
	return nil
}

// unboundedWait returns the description of a blocking sync wait
// (WaitGroup.Wait / Cond.Wait) in a body that has no channel operation at
// all, or "" when the body can be cancelled.
func unboundedWait(pass *Pass, body *ast.BlockStmt) string {
	hasChanOp := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectStmt:
			hasChanOp = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				hasChanOp = true
			}
		case *ast.RangeStmt:
			if t, ok := pass.Info().Types[e.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					hasChanOp = true
				}
			}
		}
		return !hasChanOp
	})
	if hasChanOp {
		return ""
	}
	wait := ""
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		if obj := pass.Info().Uses[sel.Sel]; obj != nil && isPkgPath(obj, "sync") {
			wait = exprString(sel.X) + ".Wait"
			return false
		}
		return true
	})
	return wait
}

type watcherSpawn struct {
	gs *ast.GoStmt
	ch types.Object
}

// watchedChannels returns the local channel variables a goroutine body
// receives from — the channels whose close the spawner owes.
func watchedChannels(pass *Pass, body *ast.BlockStmt) []types.Object {
	seen := make(map[types.Object]bool)
	var out []types.Object
	note := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		obj := objectOf(pass.Info(), id)
		if obj == nil || seen[obj] {
			return
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
			return
		}
		seen[obj] = true
		out = append(out, obj)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				note(e.X)
			}
		case *ast.RangeStmt:
			note(e.X)
		}
		return true
	})
	return out
}

// watcherFact tracks, per watched channel, whether an un-signalled
// watcher goroutine may be outstanding at a program point.
type watcherFact map[types.Object]bool

type watcherFlow struct {
	pass     *Pass
	spawns   map[*ast.GoStmt][]types.Object
	watched  map[types.Object]bool
	funcLits map[*ast.FuncLit]bool // go-statement literals: not escapes
}

func (w *watcherFlow) entryFact() flowFact { return watcherFact{} }

func (w *watcherFlow) equal(a, b flowFact) bool {
	fa, fb := a.(watcherFact), b.(watcherFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if fb[k] != v {
			return false
		}
	}
	return true
}

func (w *watcherFlow) join(a, b flowFact) flowFact {
	fa, fb := a.(watcherFact), b.(watcherFact)
	out := make(watcherFact, len(fa)+len(fb))
	for k, v := range fa {
		out[k] = v
	}
	for k, v := range fb {
		out[k] = out[k] || v
	}
	return out
}

func (w *watcherFlow) transfer(n *cfgNode, in flowFact) flowFact {
	fact := in.(watcherFact)
	var set, clear []types.Object
	if gs, ok := n.stmt.(*ast.GoStmt); ok {
		set = w.spawns[gs]
	}
	for _, sn := range n.shallowNodes() {
		ast.Inspect(sn, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok && w.funcLits[lit] {
				return false
			}
			switch e := m.(type) {
			case *ast.CallExpr:
				// close(ch) discharges the watcher; so does handing ch to
				// any other function (ownership transfer).
				if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "close" && len(e.Args) == 1 {
					if obj := chanIdentObj(w.pass, e.Args[0]); obj != nil && w.watched[obj] {
						clear = append(clear, obj)
					}
					return true
				}
				for _, arg := range e.Args {
					if obj := chanIdentObj(w.pass, arg); obj != nil && w.watched[obj] {
						clear = append(clear, obj)
					}
				}
			case *ast.SendStmt:
				if obj := chanIdentObj(w.pass, e.Chan); obj != nil && w.watched[obj] {
					clear = append(clear, obj)
				}
			case *ast.ReturnStmt:
				for _, res := range e.Results {
					if obj := chanIdentObj(w.pass, res); obj != nil && w.watched[obj] {
						clear = append(clear, obj)
					}
				}
			}
			return true
		})
	}
	if len(set) == 0 && len(clear) == 0 {
		return in
	}
	out := make(watcherFact, len(fact)+len(set))
	for k, v := range fact {
		out[k] = v
	}
	for _, obj := range set {
		out[obj] = true
	}
	for _, obj := range clear {
		out[obj] = false
	}
	return out
}

// transferEdge refines nil tests: on the edge where `ch == nil` holds,
// the channel was never made, so no watcher was spawned on it.
func (w *watcherFlow) transferEdge(from *cfgNode, succIdx int, out flowFact) flowFact {
	cmp, ok := from.cond.(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
		return out
	}
	var chExpr ast.Expr
	if isNilIdent(cmp.Y) {
		chExpr = cmp.X
	} else if isNilIdent(cmp.X) {
		chExpr = cmp.Y
	} else {
		return out
	}
	obj := chanIdentObj(w.pass, chExpr)
	if obj == nil || !w.watched[obj] {
		return out
	}
	// succs[0] is the then-edge. ch==nil on: then-edge of EQL, else-edge
	// of NEQ.
	nilEdge := (cmp.Op == token.EQL) == (succIdx == 0)
	if !nilEdge {
		return out
	}
	fact := out.(watcherFact)
	if !fact[obj] {
		return out
	}
	refined := make(watcherFact, len(fact))
	for k, v := range fact {
		refined[k] = v
	}
	refined[obj] = false
	return refined
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func chanIdentObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := objectOf(pass.Info(), id)
	if obj == nil {
		return nil
	}
	if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
		return nil
	}
	return obj
}

// checkWatcherClose verifies that every exit path of the spawning
// function discharges its watcher channels.
func checkWatcherClose(pass *Pass, body *ast.BlockStmt, watchers []watcherSpawn) {
	g := buildCFG(body)
	flow := &watcherFlow{
		pass:     pass,
		spawns:   make(map[*ast.GoStmt][]types.Object),
		watched:  make(map[types.Object]bool),
		funcLits: make(map[*ast.FuncLit]bool),
	}
	for _, w := range watchers {
		flow.spawns[w.gs] = append(flow.spawns[w.gs], w.ch)
		flow.watched[w.ch] = true
		if lit, ok := w.gs.Call.Fun.(*ast.FuncLit); ok {
			flow.funcLits[lit] = true
		}
	}
	// Deferred closes discharge watchers on every path.
	deferClosed := make(map[types.Object]bool)
	for _, d := range g.defers {
		if id, ok := d.Call.Fun.(*ast.Ident); ok && id.Name == "close" && len(d.Call.Args) == 1 {
			if obj := chanIdentObj(pass, d.Call.Args[0]); obj != nil {
				deferClosed[obj] = true
			}
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
					if obj := chanIdentObj(pass, call.Args[0]); obj != nil {
						deferClosed[obj] = true
					}
				}
				return true
			})
		}
	}
	in := forward(g, flow)
	// Join the facts flowing into exit from non-panic edges (panics unwind
	// the whole group; the watcher dies with the process).
	leaked := make(map[types.Object]bool)
	for _, n := range g.nodes {
		if n.isPanic {
			continue
		}
		inFact, reached := in[n]
		if !reached {
			continue
		}
		exits := false
		for _, s := range n.succs {
			if s == g.exit {
				exits = true
			}
		}
		if !exits {
			continue
		}
		out := flow.transfer(n, inFact).(watcherFact)
		for obj, pending := range out {
			if pending && !deferClosed[obj] {
				leaked[obj] = true
			}
		}
	}
	for _, w := range watchers {
		if leaked[w.ch] && !deferClosed[w.ch] {
			pass.Reportf(w.gs.Pos(),
				"watcher goroutine on %s may leak: some exit path of the spawner neither closes nor signals %s", w.ch.Name(), w.ch.Name())
			leaked[w.ch] = false // one report per channel
		}
	}
}
