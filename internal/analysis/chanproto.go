package analysis

// chanproto checks channel protocol discipline on the CFG — the bug
// classes of the patch migration protocol (owner → recipient handoff
// over per-patch channels) and the serve job lifecycle:
//
//   - double close: close(ch) where ch is already closed on every path
//     (panic), or may be closed on some path (latent panic);
//   - send on closed: a send reachable only after a close;
//   - sends before receivers: a send on an unbuffered channel made in
//     this function before any goroutine or callee that could receive
//     exists — the protocol must spawn the receiving side first;
//   - leaked consumer: a spawned goroutine ranges over a locally made
//     channel that nothing ever closes, so the consumer never exits;
//   - hot-path blocking sends: inside //lbm:hot functions a bare send
//     must be provably buffered or wrapped in a select (a full channel
//     would stall the lattice step).
//
// As everywhere in lbmvet the analysis is path-insensitive with joins at
// merges: "may already be closed" findings point at protocol shapes
// where one branch closes and another path can still reach the close.

import (
	"go/ast"
	"go/types"
	"sort"
)

// AnalyzerChanProto is the chanproto rule.
var AnalyzerChanProto = &Analyzer{
	Name: "chanproto",
	Doc:  "channel protocol: no double close, send-on-closed, orphan sends or hot blocking sends",
	Run:  runChanProto,
}

const (
	chanMayOpen = 1 << iota
	chanMayClosed
)

func runChanProto(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkChanFlow(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkChanFlow(pass, lit.Body)
				}
				return true
			})
			if funcDirective(fn, "hot") != nil {
				checkHotSends(pass, fn)
			}
		}
	}
}

// localChan describes a channel made in the analyzed function.
type localChan struct {
	def      ast.Node // the statement or spec that makes it
	buffered bool     // capacity provably > 0
	sole     bool     // exactly one definition, and it is a make
}

// localChans finds the function's own channels: objects declared in body
// whose definitions are make(chan ...) calls.
func localChans(pass *Pass, body *ast.BlockStmt) map[types.Object]*localChan {
	out := make(map[types.Object]*localChan)
	env := newEvalEnv(pass.Info(), body, nil)
	record := func(id *ast.Ident, rhs ast.Expr, at ast.Node) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := pass.Info().Defs[id]
		if obj == nil {
			if obj = pass.Info().Uses[id]; obj == nil {
				return
			}
		}
		if obj.Pos() < body.Pos() || obj.Pos() >= body.End() {
			return
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
			return
		}
		lc := out[obj]
		if lc == nil {
			lc = &localChan{def: at, sole: true}
			out[obj] = lc
		} else {
			lc.sole = false
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			lc.sole = false
			return
		}
		if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "make" {
			lc.sole = false
			return
		}
		if len(call.Args) >= 2 {
			if n, ok := env.eval(call.Args[1]); ok && n > 0 {
				lc.buffered = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, s.Rhs[i], s)
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					record(name, s.Values[i], s)
				}
			}
		}
		return true
	})
	return out
}

// chanFact is the dataflow fact: close-state bits per channel key, plus a
// "receiver may exist" bit per local channel.
type chanFact struct {
	state map[string]uint8
	peer  map[types.Object]bool
}

type chanFlow struct {
	pass   *Pass
	locals map[types.Object]*localChan
}

func (c *chanFlow) entryFact() flowFact {
	return &chanFact{state: map[string]uint8{}, peer: map[types.Object]bool{}}
}

func (c *chanFlow) equal(a, b flowFact) bool {
	fa, fb := a.(*chanFact), b.(*chanFact)
	if len(fa.state) != len(fb.state) || len(fa.peer) != len(fb.peer) {
		return false
	}
	for k, v := range fa.state {
		if fb.state[k] != v {
			return false
		}
	}
	for k, v := range fa.peer {
		if fb.peer[k] != v {
			return false
		}
	}
	return true
}

func (c *chanFlow) join(a, b flowFact) flowFact {
	fa, fb := a.(*chanFact), b.(*chanFact)
	out := &chanFact{
		state: make(map[string]uint8, len(fa.state)+len(fb.state)),
		peer:  make(map[types.Object]bool, len(fa.peer)+len(fb.peer)),
	}
	for k, v := range fa.state {
		out.state[k] = v
	}
	for k, v := range fb.state {
		if cur, ok := out.state[k]; ok {
			out.state[k] = cur | v
		} else {
			out.state[k] = v | chanMayOpen
		}
	}
	for k, v := range fa.state {
		if _, ok := fb.state[k]; !ok {
			out.state[k] = v | chanMayOpen
		}
	}
	for k, v := range fa.peer {
		out.peer[k] = v
	}
	for k, v := range fb.peer {
		out.peer[k] = out.peer[k] || v
	}
	return out
}

func (c *chanFlow) transfer(n *cfgNode, in flowFact) flowFact {
	if _, isDefer := n.stmt.(*ast.DeferStmt); isDefer {
		return in // defers run at exit
	}
	fact := in.(*chanFact)
	var out *chanFact
	mutate := func() *chanFact {
		if out == nil {
			out = &chanFact{
				state: make(map[string]uint8, len(fact.state)+1),
				peer:  make(map[types.Object]bool, len(fact.peer)+1),
			}
			for k, v := range fact.state {
				out.state[k] = v
			}
			for k, v := range fact.peer {
				out.peer[k] = v
			}
		}
		return out
	}
	markPeer := func(e ast.Expr) {
		ast.Inspect(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := objectOf(c.pass.Info(), id); obj != nil && c.locals[obj] != nil {
					mutate().peer[obj] = true
				}
			}
			return true
		})
	}
	// A go statement hands every referenced channel to another goroutine,
	// including channels captured by its function literal.
	if gs, ok := n.stmt.(*ast.GoStmt); ok {
		markPeer(gs.Call.Fun)
		for _, arg := range gs.Call.Args {
			markPeer(arg)
		}
		return factOr(in, out)
	}
	for _, sn := range n.shallowNodes() {
		inspectShallow(sn, func(m ast.Node) bool {
			switch e := m.(type) {
			case *ast.CallExpr:
				if id, ok := e.Fun.(*ast.Ident); ok {
					switch id.Name {
					case "close":
						if len(e.Args) == 1 {
							key := exprString(e.Args[0])
							mutate().state[key] = chanMayClosed
						}
						return true
					case "len", "cap":
						return true
					}
				}
				// Any other call may keep a reference and receive later.
				for _, arg := range e.Args {
					markPeer(arg)
				}
			case *ast.SendStmt:
				markPeer(e.Value)
			case *ast.ReturnStmt:
				for _, res := range e.Results {
					markPeer(res)
				}
			case *ast.AssignStmt:
				for i, rhs := range e.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok {
						if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "make" {
							// Re-making a channel reopens its key.
							if i < len(e.Lhs) {
								key := exprString(e.Lhs[i])
								if _, tracked := fact.state[key]; tracked {
									mutate().state[key] = chanMayOpen
								}
							}
							continue
						}
					}
					markPeer(rhs)
				}
				// Any other assignment to a tracked variable starts a
				// fresh generation: the previous channel's close-state
				// no longer describes the new value (the restart-loop
				// `var ch; ...; close(ch)` pattern).
				for _, lhs := range e.Lhs {
					key := exprString(lhs)
					if st, tracked := fact.state[key]; tracked && st != chanMayOpen {
						mutate().state[key] = chanMayOpen
					}
				}
			case *ast.ValueSpec:
				for _, v := range e.Values {
					if call, ok := v.(*ast.CallExpr); ok {
						if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "make" {
							continue
						}
					}
					markPeer(v)
				}
				// Re-declaration likewise resets the key (a var decl
				// re-entered through a loop back edge).
				for _, name := range e.Names {
					if st, tracked := fact.state[name.Name]; tracked && st != chanMayOpen {
						mutate().state[name.Name] = chanMayOpen
					}
				}
			}
			return true
		})
	}
	return factOr(in, out)
}

func factOr(in flowFact, out *chanFact) flowFact {
	if out == nil {
		return in
	}
	return out
}

// checkChanFlow reports channel-protocol violations in one function body.
func checkChanFlow(pass *Pass, body *ast.BlockStmt) {
	g := buildCFG(body)
	flow := &chanFlow{pass: pass, locals: localChans(pass, body)}
	in := forward(g, flow)

	nodes := make([]*cfgNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		if _, reached := in[n]; reached {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodePos(nodes[i]) < nodePos(nodes[j]) })

	for _, n := range nodes {
		fact := in[n].(*chanFact)
		if _, isDefer := n.stmt.(*ast.DeferStmt); isDefer {
			continue
		}
		// Sends: closed-state and receiver-ordering checks.
		if send, ok := n.stmt.(*ast.SendStmt); ok {
			key := exprString(send.Chan)
			if st, tracked := fact.state[key]; tracked && st == chanMayClosed {
				pass.Reportf(send.Pos(), "send on %s which is closed on every path here (panics)", key)
			}
			if !n.inSelect {
				if id, ok := send.Chan.(*ast.Ident); ok {
					if obj := objectOf(pass.Info(), id); obj != nil {
						if lc := flow.locals[obj]; lc != nil && lc.sole && !lc.buffered && !fact.peer[obj] {
							pass.Reportf(send.Pos(),
								"send on unbuffered %s before any receiver can exist: spawn the receiving goroutine before sending (sends-before-receives)", key)
						}
					}
				}
			}
		}
		for _, sn := range n.shallowNodes() {
			inspectShallow(sn, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "close" || len(call.Args) != 1 {
					return true
				}
				key := exprString(call.Args[0])
				switch st, tracked := fact.state[key]; {
				case tracked && st == chanMayClosed:
					pass.Reportf(call.Pos(), "double close of %s: closed on every path here (panics)", key)
				case tracked && st&chanMayClosed != 0:
					pass.Reportf(call.Pos(), "%s may already be closed on some path here (close exactly once)", key)
				}
				return true
			})
		}
	}
	checkLeakedConsumers(pass, body, flow.locals)
}

// checkLeakedConsumers flags locally made channels that a spawned
// goroutine ranges over but that nothing in the function ever closes or
// hands off.
func checkLeakedConsumers(pass *Pass, body *ast.BlockStmt, locals map[types.Object]*localChan) {
	if len(locals) == 0 {
		return
	}
	ranged := make(map[types.Object]bool)
	closed := make(map[types.Object]bool)
	escaped := make(map[types.Object]bool)
	note := func(m map[types.Object]bool, e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := objectOf(pass.Info(), id); obj != nil && locals[obj] != nil {
				m[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt:
			if lit, ok := e.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if rs, ok := m.(*ast.RangeStmt); ok {
						note(ranged, rs.X)
					}
					return true
				})
			}
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "close":
					if len(e.Args) == 1 {
						note(closed, e.Args[0])
					}
					return true
				case "len", "cap", "make":
					return true
				}
			}
			for _, arg := range e.Args {
				note(escaped, arg)
			}
		case *ast.ReturnStmt:
			for _, res := range e.Results {
				note(escaped, res)
			}
		case *ast.AssignStmt:
			for _, rhs := range e.Rhs {
				note(escaped, rhs)
			}
		}
		return true
	})
	var objs []types.Object
	for obj := range ranged {
		if !closed[obj] && !escaped[obj] {
			objs = append(objs, obj)
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		pass.Reportf(locals[obj].def.Pos(),
			"%s is ranged by a spawned goroutine but never closed: the consumer leaks when this function returns", obj.Name())
	}
}

// checkHotSends forbids bare blocking sends in //lbm:hot functions: a
// send must be inside a select, inside a spawned goroutine, or on a
// provably buffered channel.
func checkHotSends(pass *Pass, fn *ast.FuncDecl) {
	locals := localChans(pass, fn.Body)
	var walk func(n ast.Node, inSelect, inGo bool)
	walk = func(n ast.Node, inSelect, inGo bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch e := m.(type) {
			case *ast.SelectStmt:
				walk(e.Body, true, inGo)
				return false
			case *ast.GoStmt:
				walk(e.Call, inSelect, true)
				return false
			case *ast.SendStmt:
				if inSelect || inGo {
					return true
				}
				if id, ok := e.Chan.(*ast.Ident); ok {
					if obj := objectOf(pass.Info(), id); obj != nil {
						if lc := locals[obj]; lc != nil && lc.sole && lc.buffered {
							return true
						}
					}
				}
				pass.Reportf(e.Pos(),
					"blocking send in //lbm:hot function %s: wrap it in a select with default or use a provably buffered channel", fn.Name.Name)
			}
			return true
		})
	}
	walk(fn.Body, false, false)
}
