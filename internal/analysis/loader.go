package analysis

// The package loader: a minimal, stdlib-only replacement for
// golang.org/x/tools/go/packages. It parses and type-checks the module's
// packages with go/parser + go/types, resolving module-internal imports
// from the repository tree and standard-library imports through the
// source importer (go/importer "source"), so everything works offline
// with nothing but the Go toolchain installed.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path; Dir the directory the files came from.
	Path string
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test Go files, sorted by filename.
	Files []*ast.File
	// Types and Info hold the type-checker output.
	Types *types.Package
	Info  *types.Info
}

// Loader loads and caches packages of one module.
type Loader struct {
	// ModuleDir is the absolute path of the module root (where go.mod
	// lives); ModulePath its declared module path.
	ModuleDir  string
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at dir (the directory
// containing go.mod, found by walking up from dir if necessary).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Fset returns the shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves the patterns ("./..." for the whole module, or explicit
// directory paths relative to the module root) into loaded packages.
// testdata directories and _test.go files are skipped, matching the Go
// tool's conventions.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.walkDirs(l.ModuleDir)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.ModuleDir, strings.TrimSuffix(pat, "/..."))
			walked, err := l.walkDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		default:
			d := pat
			if !filepath.IsAbs(d) {
				d = filepath.Join(l.ModuleDir, pat)
			}
			add(filepath.Clean(d))
		}
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// walkDirs returns every directory under root that contains at least one
// non-test Go file, skipping testdata, hidden and underscore directories.
func (l *Loader) walkDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// matchesBuild reports whether a source file is selected by the host
// build configuration — filename GOOS/GOARCH suffixes and //go:build
// constraints both count. Without this filter, platform-variant pairs
// (e.g. an _amd64.go file and its !amd64 fallback) would both load into
// one package and fail type checking with bogus redeclaration errors.
func matchesBuild(dir, name string) bool {
	ok, err := build.Default.MatchFile(dir, name)
	return err == nil && ok
}

// LoadDir loads and type-checks the package in one directory (which must
// lie inside the module).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, dir)
}

// Import implements types.Importer: module-internal paths load from the
// repository tree, everything else falls through to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.load(path, filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one directory, caching by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) && matchesBuild(dir, e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
