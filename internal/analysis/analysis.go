// Package analysis is lbmvet's stdlib-only static-analysis framework: a
// package loader built on go/parser + go/types (no golang.org/x/tools
// dependency — the repo stays offline-buildable), a finding/diagnostic
// model with file:line positions and //lint:ignore suppressions, an
// intra-procedural CFG + forward-dataflow engine (cfg.go, dataflow.go),
// and the nine domain analyzers that enforce SunwayLB's correctness
// contracts:
//
//	ldmbudget  — CPE kernels must fit the chip's LDM byte budget
//	mpierr     — blocking mpi ops must not drop or mis-compare errors
//	spanpair   — trace spans must pair Begin/End; nil-safe types must guard
//	hotalloc   — //lbm:hot functions must not allocate, box, or call fmt
//	detfloat   — physics paths must stay bit-deterministic
//	goleak     — goroutines in serve/patch/psolve must have a cancellation path
//	locksafe   — Lock/Unlock must pair on every path; no lock copies
//	chanproto  — channel protocols must not drop sends, double-close, or leak consumers
//	memtraffic — //lbm:hot kernels must meet their per-cell traffic budget
//
// The contracts come from the paper's hardware model (§III-B LDM
// capacities and ~380 B/cell traffic budget, §IV-C kernel structure),
// from the failure model of internal/mpi (typed errors instead of
// hangs), from the goroutine lifecycle discipline of the serve/patch
// supervisors, and from the checkpoint/replay determinism requirement
// (DESIGN.md §7). See DESIGN.md "Static-analysis contracts" for the
// rule-to-contract mapping.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named rule over a type-checked package.
type Analyzer struct {
	// Name is the rule identifier used in findings and suppressions.
	Name string
	// Doc is a one-line description shown by lbmvet -help.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(p *Pass)
}

// Pass carries one (analyzer, package) execution.
type Pass struct {
	An   *Analyzer
	Pkg  *Package
	sink *[]Finding
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Finding{
		Rule:    p.An.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Finding is one diagnostic: a rule, a position and a message.
type Finding struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"-"`
	Message string         `json:"message"`
	// File/Line/Col mirror Pos for JSON output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String formats the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Rule)
}

// Run executes the analyzers over the packages and returns the surviving
// findings (suppressed ones removed), sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		var pkgFindings []Finding
		for _, an := range analyzers {
			pass := &Pass{An: an, Pkg: pkg, sink: &pkgFindings}
			an.Run(pass)
		}
		// Malformed suppression comments are findings themselves.
		pkgFindings = append(pkgFindings, sup.malformed...)
		for _, f := range pkgFindings {
			if sup.suppressed(f) {
				continue
			}
			f.File = f.Pos.Filename
			f.Line = f.Pos.Line
			f.Col = f.Pos.Column
			all = append(all, f)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return all
}

// suppressions indexes //lint:ignore comments of one package.
//
// Grammar:  //lint:ignore <rule|*> <reason>
//
// A suppression covers findings of the named rule (or any rule for *) on
// the comment's own line and on the line immediately after it, so it can
// trail the offending statement or sit on its own line directly above.
// When the line after the comment starts a simple statement that spans
// several lines (a wrapped call or assignment), the suppression covers
// the statement's whole line range; compound statements (if/for/switch)
// and statements containing function literals keep the one-line scope,
// so suppressing a finding in one branch never silences the others.
type suppressions struct {
	// byFile maps filename → line → rules silenced at that line.
	byFile    map[string]map[int][]string
	malformed []Finding
}

func (s *suppressions) suppressed(f Finding) bool {
	lines := s.byFile[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, rule := range lines[f.Pos.Line] {
		if rule == "*" || rule == f.Rule {
			return true
		}
	}
	return false
}

func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byFile: make(map[string]map[int][]string)}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Finding{
						Rule:    "suppress",
						Pos:     pos,
						Message: "malformed //lint:ignore: need a rule name and a reason",
					})
					continue
				}
				lines := s.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s.byFile[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
				lines[pos.Line+1] = append(lines[pos.Line+1], fields[0])
			}
		}
	}
	s.extendMultiLine(pkg)
	return s
}

// extendMultiLine widens suppressions over multi-line simple statements:
// a //lint:ignore whose next line starts a wrapped call or assignment
// covers every line of that statement. Compound statements and
// statements containing function literals are excluded so suppressing
// one branch of an if/switch (or one finding inside a closure) never
// silences findings on the other lines.
func (s *suppressions) extendMultiLine(pkg *Package) {
	for _, file := range pkg.Files {
		filename := pkg.Fset.Position(file.Pos()).Filename
		lines := s.byFile[filename]
		if lines == nil {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(ast.Stmt)
			if !ok {
				return true
			}
			switch st.(type) {
			case *ast.AssignStmt, *ast.ExprStmt, *ast.DeclStmt, *ast.ReturnStmt, *ast.SendStmt:
			default:
				return true
			}
			start := pkg.Fset.Position(st.Pos()).Line
			end := pkg.Fset.Position(st.End()).Line
			if end == start || len(lines[start]) == 0 {
				return true
			}
			if hasFuncLit(st) {
				return true
			}
			rules := append([]string(nil), lines[start]...)
			for l := start + 1; l <= end; l++ {
				lines[l] = append(lines[l], rules...)
			}
			return true
		})
	}
}

func hasFuncLit(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			found = true
		}
		return !found
	})
	return found
}

// isPkgPath reports whether obj belongs to the package with the given
// import path.
func isPkgPath(obj types.Object, path string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// namedType unwraps pointers and aliases and returns the *types.Named
// beneath, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && isPkgPath(obj, pkgPath)
}

// exprString renders a short canonical form of an expression for use as a
// matching key (receiver/track identity in spanpair).
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.BasicLit:
		return v.Value
	case *ast.CallExpr:
		return exprString(v.Fun) + "()"
	case *ast.ParenExpr:
		return exprString(v.X)
	case *ast.IndexExpr:
		return exprString(v.X) + "[" + exprString(v.Index) + "]"
	case *ast.UnaryExpr:
		return v.Op.String() + exprString(v.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}
