package analysis

// Golden-file analyzer tests: each rule has a bad/ fixture whose expected
// diagnostics are asserted line-by-line through trailing `// want "…"`
// markers, and a good/ fixture that must stay silent. A final self-check
// runs the full suite over the repository itself, which must be clean —
// the same gate scripts/ci.sh enforces.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

func loadFixture(t *testing.T, l *Loader, rule, variant string) *Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", rule, variant))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s/%s: %v", rule, variant, err)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wantMarkers parses the `// want "substring"` expectations of every file
// in the fixture directory, keyed by absolute filename and line.
func wantMarkers(t *testing.T, pkg *Package) map[string]map[int][]string {
	t.Helper()
	out := make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("read fixture %s: %v", name, err)
		}
		byLine := make(map[int][]string)
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				byLine[i+1] = append(byLine[i+1], m[1])
			}
		}
		if len(byLine) > 0 {
			out[name] = byLine
		}
	}
	return out
}

// checkFindings matches findings against want markers: every finding must
// be expected, and every expectation must be hit.
func checkFindings(t *testing.T, findings []Finding, wants map[string]map[int][]string) {
	t.Helper()
	type slot struct {
		file string
		line int
		idx  int
	}
	used := make(map[slot]bool)
	for _, f := range findings {
		matched := false
		for i, w := range wants[f.Pos.Filename][f.Pos.Line] {
			s := slot{f.Pos.Filename, f.Pos.Line, i}
			if !used[s] && strings.Contains(f.Message, w) {
				used[s] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for i, w := range ws {
				if !used[slot{file, line, i}] {
					t.Errorf("%s:%d: expected finding containing %q, got none", filepath.Base(file), line, w)
				}
			}
		}
	}
}

func TestAnalyzersGolden(t *testing.T) {
	l := newTestLoader(t)
	for _, an := range All() {
		an := an
		t.Run(an.Name, func(t *testing.T) {
			bad := loadFixture(t, l, an.Name, "bad")
			checkFindings(t, Run([]*Package{bad}, []*Analyzer{an}), wantMarkers(t, bad))

			good := loadFixture(t, l, an.Name, "good")
			for _, f := range Run([]*Package{good}, []*Analyzer{an}) {
				t.Errorf("good fixture produced a finding: %s", f)
			}
		})
	}
}

// TestSuppressions exercises //lint:ignore: trailing and preceding
// suppressions silence the finding, an unsuppressed site survives, and a
// malformed comment is reported under the "suppress" pseudo-rule.
func TestSuppressions(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "suppress", "bad")
	findings := Run([]*Package{pkg}, []*Analyzer{AnalyzerDetFloat})

	var det, sup []Finding
	for _, f := range findings {
		switch f.Rule {
		case "detfloat":
			det = append(det, f)
		case "suppress":
			sup = append(sup, f)
		default:
			t.Errorf("unexpected rule %q: %s", f.Rule, f)
		}
	}
	checkFindings(t, det, wantMarkers(t, pkg))
	if len(sup) != 1 || !strings.Contains(sup[0].Message, "malformed") {
		t.Errorf("want exactly one malformed-suppression finding, got %v", sup)
	}
}

func TestByName(t *testing.T) {
	if got, unknown := ByName(nil); len(got) != len(All()) || len(unknown) != 0 {
		t.Fatalf("ByName(nil) = %d analyzers (unknown %v), want %d", len(got), unknown, len(All()))
	}
	got, unknown := ByName([]string{"detfloat", "mpierr"})
	if len(got) != 2 || got[0].Name != "detfloat" || got[1].Name != "mpierr" || len(unknown) != 0 {
		t.Fatalf("ByName subset = %v, unknown %v", got, unknown)
	}
	got, unknown = ByName([]string{"detfloat", "nosuch"})
	if len(got) != 1 || len(unknown) != 1 || unknown[0] != "nosuch" {
		t.Fatalf("ByName(detfloat,nosuch) = %v, unknown %v; want the typo surfaced", got, unknown)
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in  string
		out int64
		ok  bool
	}{
		{"65536", 65536, true},
		{"64KiB", 65536, true},
		{"64KB", 65536, true},
		{"64k", 65536, true},
		{"1MiB", 1 << 20, true},
		{"70", 70, true},
		{"", 0, false},
		{"seventy", 0, false},
	}
	for _, c := range cases {
		got, ok := parseByteSize(c.in)
		if got != c.out || ok != c.ok {
			t.Errorf("parseByteSize(%q) = %d, %v; want %d, %v", c.in, got, ok, c.out, c.ok)
		}
	}
}

// TestRepositoryClean is the self-check: the full analyzer suite over the
// whole module must report nothing. This is the same invariant the
// `scripts/ci.sh analyze` tier enforces with cmd/lbmvet.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	l := newTestLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, f := range Run(pkgs, All()) {
		t.Errorf("repository finding: %s", f)
	}
}
