package analysis

// TestTrafficEstimatesRepo pins the memtraffic model's per-cell byte
// estimate for every //lbm:hot kernel in the lattice packages. The
// numbers are the model's documented output — if a kernel change moves
// one, the budget discussion in DESIGN.md should move with it. Bytes 0
// with Budget -1 means no unbounded loop survives the assume pins
// (nothing to price per cell).

import (
	"path/filepath"
	"testing"
)

func TestTrafficEstimatesRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks repository packages; skipped in -short")
	}
	want := map[string]map[string]TrafficEstimate{
		"../core": {
			"stepRegionGeneric": {Bytes: 324, Budget: 380},
			"smagorinskyTau":    {Bytes: 0, Budget: 0},
			"CollideOnly":       {Bytes: 305, Budget: 380},
			"StreamOnly":        {Bytes: 324, Budget: 380},
			"stepRegionD3Q19":   {Bytes: 342, Budget: 380},
			// AA-pattern in-place kernels: one array serves both stream
			// and collide, so the model prices 19 reads + 19 writes + the
			// flag byte at ~324 B/cell — under the 360 B budget we set to
			// stay below the paper's 380 B/cell double-buffer figure. The
			// D3Q19 drivers delegate their per-cell work to aaRowD3Q19
			// (rows are hoisted, so the drivers themselves price at 0).
			"stepAAEvenGeneric": {Bytes: 324, Budget: 360},
			"stepAAOddGeneric":  {Bytes: 324, Budget: 360},
			"stepAAEvenD3Q19":   {Bytes: 0, Budget: 360},
			"stepAAOddD3Q19":    {Bytes: 0, Budget: 360},
			"aaRowD3Q19Scalar":  {Bytes: 304, Budget: 360},
			"PeriodicAxis":      {Bytes: 610, Budget: 616},
			"PackFace":          {Bytes: 304, Budget: 320},
			"UnpackFace":        {Bytes: 305, Budget: 320},
		},
		"../swlb": {
			"Step": {Bytes: 4, Budget: 8},
		},
		"../resil": {
			"fnvU64":      {Bytes: 0, Budget: -1},
			"checksum":    {Bytes: 8, Budget: 8},
			"captureInto": {Bytes: 306, Budget: 320},
			"xorFloats":   {Bytes: 24, Budget: 24},
			"xorBytes":    {Bytes: 3, Budget: 3},
		},
	}
	l := newTestLoader(t)
	for dir, kernels := range want {
		dir, kernels := dir, kernels
		t.Run(filepath.Base(dir), func(t *testing.T) {
			abs, err := filepath.Abs(dir)
			if err != nil {
				t.Fatalf("abs: %v", err)
			}
			pkg, err := l.LoadDir(abs)
			if err != nil {
				t.Fatalf("load %s: %v", dir, err)
			}
			got := make(map[string]TrafficEstimate)
			for _, e := range trafficEstimates(pkg) {
				got[e.Func] = e
			}
			for fn, w := range kernels {
				g, ok := got[fn]
				if !ok {
					t.Errorf("%s: hot kernel %s missing from estimates", dir, fn)
					continue
				}
				if g.Bytes != w.Bytes || g.Budget != w.Budget {
					t.Errorf("%s.%s = {Bytes:%d Budget:%d}, want {Bytes:%d Budget:%d}",
						filepath.Base(dir), fn, g.Bytes, g.Budget, w.Bytes, w.Budget)
				}
			}
			for fn, g := range got {
				if _, ok := kernels[fn]; !ok {
					t.Errorf("%s: unexpected hot kernel %s (estimate %d B, budget %d) — add it to the table", dir, fn, g.Bytes, g.Budget)
				}
				if g.Budget >= 0 && g.Bytes > g.Budget {
					t.Errorf("%s.%s: estimate %d exceeds budget %d", filepath.Base(dir), fn, g.Bytes, g.Budget)
				}
			}
		})
	}
}
