package analysis

// A small symbolic integer evaluator used by ldmbudget to bound LDM
// allocation sizes. It folds:
//
//   - typed and untyped integer constants (via the type-checker),
//   - identifiers pinned by //lbm:ldm assume name=value,
//   - identifiers with a single statically evaluable assignment in the
//     enclosing function,
//   - parenthesised and binary arithmetic over the above.
//
// Anything else is "unknown", which ldmbudget turns into a finding: a
// kernel whose working set cannot be bounded is as much a contract
// violation as one that overflows.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// evalEnv is the evaluation context for one kernel.
type evalEnv struct {
	info *types.Info
	// assume pins variable names to contract values ( //lbm:ldm assume ).
	assume map[string]int64
	// single maps objects to their unique assignment RHS; objects
	// assigned more than once map to nil (unknown).
	single map[types.Object]ast.Expr
	// visiting guards against self-referential assignment chains.
	visiting map[types.Object]bool
}

// newEvalEnv builds the environment for a kernel: scan holds the widest
// syntax tree whose assignments should be visible (the enclosing function
// declaration, so values captured by kernel closures resolve too).
func newEvalEnv(info *types.Info, scan ast.Node, assume map[string]int64) *evalEnv {
	env := &evalEnv{
		info:     info,
		assume:   assume,
		single:   make(map[types.Object]ast.Expr),
		visiting: make(map[types.Object]bool),
	}
	if scan == nil {
		return env
	}
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, seen := env.single[obj]; seen {
			env.single[obj] = nil // reassigned → unknown
			return
		}
		env.single[obj] = rhs
	}
	ast.Inspect(scan, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						record(id, st.Rhs[i])
					}
				}
			} else {
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						record(id, nil)
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := st.X.(*ast.Ident); ok {
				record(id, nil)
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) {
					record(name, st.Values[i])
				} else {
					record(name, nil)
				}
			}
		}
		return true
	})
	return env
}

// eval attempts to fold e to an int64.
func (env *evalEnv) eval(e ast.Expr) (int64, bool) {
	// The type-checker already folded constants (including named consts).
	if tv, ok := env.info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return v, true
		}
	}
	switch v := e.(type) {
	case *ast.ParenExpr:
		return env.eval(v.X)
	case *ast.SelectorExpr:
		// Field selectors can be pinned by dotted assume keys
		// (//lbm:traffic assume d.Q=19).
		if val, ok := env.assume[exprString(v)]; ok {
			return val, true
		}
		return 0, false
	case *ast.Ident:
		if val, ok := env.assume[v.Name]; ok {
			return val, true
		}
		obj := env.info.Uses[v]
		if obj == nil {
			obj = env.info.Defs[v]
		}
		if obj == nil || env.visiting[obj] {
			return 0, false
		}
		rhs, ok := env.single[obj]
		if !ok || rhs == nil {
			return 0, false
		}
		env.visiting[obj] = true
		val, ok := env.eval(rhs)
		delete(env.visiting, obj)
		return val, ok
	case *ast.BinaryExpr:
		a, okA := env.eval(v.X)
		b, okB := env.eval(v.Y)
		if !okA || !okB {
			return 0, false
		}
		switch v.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case token.REM:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case token.SHL:
			return a << uint(b), true
		case token.SHR:
			return a >> uint(b), true
		}
		return 0, false
	case *ast.UnaryExpr:
		if v.Op == token.SUB {
			if a, ok := env.eval(v.X); ok {
				return -a, true
			}
		}
		return 0, false
	}
	return 0, false
}
